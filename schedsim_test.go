package schedsim

import (
	"testing"
	"time"
)

func TestQuickstartFlow(t *testing.T) {
	m := New(Config{Cores: 8, Scheduler: ULE, Seed: 5})
	app := m.Start(AppByName("MG"))
	m.RunFor(ShellWarmup + 5*time.Second)
	if app.Perf() <= 0 {
		t.Fatal("MG made no progress")
	}
	counts := m.RunnableCounts()
	if len(counts) != 8 {
		t.Fatalf("RunnableCounts len %d", len(counts))
	}
}

func TestDefaultsAndCatalog(t *testing.T) {
	m := New(Config{Cores: 1})
	if m.M.Scheduler().Name() != "cfs" {
		t.Fatalf("default scheduler = %s", m.M.Scheduler().Name())
	}
	if len(Apps()) != 42 {
		t.Fatalf("Apps = %d", len(Apps()))
	}
	if len(AppNames()) != 44 {
		t.Fatalf("AppNames = %d", len(AppNames()))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AppByName should panic on unknown app")
		}
	}()
	AppByName("nonesuch")
}

func TestSchedulerComparison(t *testing.T) {
	// The library's one-paragraph pitch: same machine, same workload, two
	// schedulers, different outcomes.
	perf := map[SchedulerKind]float64{}
	for _, kind := range []SchedulerKind{CFS, ULE} {
		m := New(Config{Cores: 1, Scheduler: kind, Seed: 9})
		app := m.Start(AppByName("apache"))
		m.RunFor(ShellWarmup + 8*time.Second)
		perf[kind] = app.Perf()
	}
	if perf[ULE] <= perf[CFS] {
		t.Fatalf("apache: ULE %.0f ≤ CFS %.0f; expected the §5.3 win", perf[ULE], perf[CFS])
	}
}

func TestRunUntilAndStartAt(t *testing.T) {
	m := New(Config{Cores: 1, Scheduler: ULE, Seed: 2})
	app := m.StartAt(AppByName("fibo"), 3*time.Second)
	ok := m.RunUntil(func() bool { return app.Ops() > 100 }, 30*time.Second)
	if !ok {
		t.Fatal("fibo never reached 100 ops")
	}
	if m.Now() <= 3*time.Second {
		t.Fatalf("clock %v", m.Now())
	}
}

func TestExperimentRegistryExposed(t *testing.T) {
	if len(Experiments()) < 15 {
		t.Fatalf("only %d experiments", len(Experiments()))
	}
	res := RunExperiment("ablation-cgroup", 0.1)
	if res == nil || len(res.Rows) == 0 {
		t.Fatal("empty result")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RunExperiment should panic on unknown id")
		}
	}()
	RunExperiment("nope", 1)
}
