// Command heatmap renders the paper's Figure 6/7 thread-count heatmaps as
// ASCII: one row per core, time on the x-axis, digits/shades for the number
// of runnable threads on the core.
//
// Usage:
//
//	heatmap -exp fig6 -scale 0.25
//	heatmap -exp fig7 -scale 0.5 -width 100
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/probe"
)

func main() {
	var (
		exp   = flag.String("exp", "fig6", "experiment with per-core series: fig6, fig7, or ablation-lbbug")
		scale = flag.Float64("scale", 0.25, "duration scale")
		width = flag.Int("width", 120, "columns of the rendered map")
	)
	flag.Parse()

	e, err := core.ByID(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "heatmap:", err)
		os.Exit(1)
	}
	res := e.Run(*scale)
	fmt.Println(res)

	var names []string
	for name := range res.Series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("--- %s/%s ---\n", res.ID, name)
		render(res.Series[name], *width)
	}
}

// render draws one series set (core0..coreN) as an ASCII heatmap.
func render(set *probe.Set, width int) {
	names := set.Names()
	if len(names) == 0 {
		return
	}
	var tEnd time.Duration
	set.Each(func(s *probe.Series) {
		if p := s.Last(); p.T > tEnd {
			tEnd = p.T
		}
	})
	if tEnd == 0 {
		return
	}
	glyphs := []byte(" .:-=+*#%@")
	var max float64
	set.Each(func(s *probe.Series) {
		if m := s.Max(); m > max {
			max = m
		}
	})
	if max == 0 {
		max = 1
	}
	for _, name := range names {
		s := set.Get(name)
		var b strings.Builder
		for x := 0; x < width; x++ {
			at := time.Duration(float64(tEnd) * float64(x) / float64(width-1))
			v := s.At(at)
			idx := int(v / max * float64(len(glyphs)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(glyphs) {
				idx = len(glyphs) - 1
			}
			b.WriteByte(glyphs[idx])
		}
		fmt.Printf("%-14s|%s|\n", name, b.String())
	}
	fmt.Printf("%-14s 0s%*s\n", "", width-2, fmt.Sprintf("%.1fs", tEnd.Seconds()))
	fmt.Printf("scale: ' '=0 .. '@'=%.0f runnable threads\n\n", max)
}
