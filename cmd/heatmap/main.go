// Command heatmap renders per-core scheduler telemetry as ASCII heatmaps
// in the style of the paper's Figure 6/7: one row per series (core), time
// on the x-axis, shades for the sampled value. It consumes the scenario
// pipeline's series CSV ("trial,series,t_us,value" — the `schedbattle
// -scenario ... -series out.csv` export) or runs a scenario in-process
// and renders the same bytes, so there is exactly one sampling path in
// the tree: the probe attachment inside the scenario engine.
//
// Usage:
//
//	schedbattle -scenario fork-storm -scale 0.25 -series storm.csv
//	heatmap -csv storm.csv
//	heatmap -scenario fork-storm -scale 0.25
//	heatmap -scenario web-tail -scale 0.1 -prefix runq.core -width 100
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/scenario"
)

func main() {
	var (
		csvPath = flag.String("csv", "", "scenario series CSV to render (trial,series,t_us,value)")
		scen    = flag.String("scenario", "", "run this scenario (bundled name or .json path) and render its series")
		scale   = flag.Float64("scale", 0.25, "with -scenario: duration scale in (0,1]")
		prefix  = flag.String("prefix", "runq.core", "series name prefix to render (one row per matching series)")
		width   = flag.Int("width", 120, "columns of the rendered map")
	)
	flag.Parse()

	var data []byte
	switch {
	case *csvPath != "" && *scen != "":
		fmt.Fprintln(os.Stderr, "heatmap: -csv and -scenario are mutually exclusive")
		os.Exit(2)
	case *csvPath != "":
		var err error
		if data, err = os.ReadFile(*csvPath); err != nil {
			fmt.Fprintln(os.Stderr, "heatmap:", err)
			os.Exit(1)
		}
	case *scen != "":
		var err error
		if data, err = runScenarioCSV(*scen, *scale); err != nil {
			fmt.Fprintln(os.Stderr, "heatmap:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "heatmap: need -csv <file> or -scenario <name>")
		flag.Usage()
		os.Exit(2)
	}

	trials, err := parseSeriesCSV(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "heatmap:", err)
		os.Exit(1)
	}
	rendered := 0
	for _, tr := range trials {
		rendered += render(os.Stdout, tr, *prefix, *width)
	}
	if rendered == 0 {
		fmt.Fprintf(os.Stderr, "heatmap: no series matching prefix %q — does the scenario have a series block with the runq probe?\n", *prefix)
		os.Exit(1)
	}
}

// runScenarioCSV runs a scenario in-process and returns its series CSV —
// the same bytes `schedbattle -scenario ... -series` would export. Specs
// without a series block get the runq probe (the heatmap signal) by
// default.
func runScenarioCSV(nameOrPath string, scale float64) ([]byte, error) {
	sp, err := scenario.Load(nameOrPath)
	if err != nil {
		return nil, err
	}
	if sp.Series == nil {
		// Bundled specs are shared read-only; clone before defaulting.
		cp := *sp
		cp.Series = &scenario.SeriesSpec{Probes: []string{"runq"}}
		sp = &cp
	}
	rep, err := sp.Run(scale)
	if err != nil {
		return nil, err
	}
	return rep.SeriesCSV(), nil
}

// point is one retained sample.
type point struct {
	tUS, v float64
}

// trialSeries is one trial's series, keyed by name, in first-seen order.
type trialSeries struct {
	name   string
	order  []string
	series map[string][]point
}

// parseSeriesCSV decodes the scenario series CSV into per-trial series,
// preserving the file's trial and series order.
func parseSeriesCSV(data []byte) ([]*trialSeries, error) {
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) != "trial,series,t_us,value" {
		return nil, fmt.Errorf("not a scenario series CSV (want header \"trial,series,t_us,value\")")
	}
	var out []*trialSeries
	byName := map[string]*trialSeries{}
	for i, line := range lines[1:] {
		if strings.TrimSpace(line) == "" {
			continue
		}
		f := strings.Split(line, ",")
		if len(f) != 4 {
			return nil, fmt.Errorf("line %d: want 4 fields, got %d", i+2, len(f))
		}
		tUS, err1 := strconv.ParseFloat(f[2], 64)
		v, err2 := strconv.ParseFloat(f[3], 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("line %d: bad number in %q", i+2, line)
		}
		tr := byName[f[0]]
		if tr == nil {
			tr = &trialSeries{name: f[0], series: map[string][]point{}}
			byName[f[0]] = tr
			out = append(out, tr)
		}
		if _, ok := tr.series[f[1]]; !ok {
			tr.order = append(tr.order, f[1])
		}
		tr.series[f[1]] = append(tr.series[f[1]], point{tUS, v})
	}
	return out, nil
}

// coreIndex extracts a trailing integer for numeric row ordering
// ("runq.core10" after "runq.core2"); -1 when there is none.
func coreIndex(name string) int {
	i := len(name)
	for i > 0 && name[i-1] >= '0' && name[i-1] <= '9' {
		i--
	}
	if i == len(name) {
		return -1
	}
	n, _ := strconv.Atoi(name[i:])
	return n
}

// at returns the series value at tUS with step (sample-and-hold)
// interpolation; 0 before the first sample.
func at(pts []point, tUS float64) float64 {
	lo := sort.Search(len(pts), func(i int) bool { return pts[i].tUS > tUS })
	if lo == 0 {
		return 0
	}
	return pts[lo-1].v
}

// render draws one trial's matching series as an ASCII heatmap and
// returns the number of rows drawn (0 when nothing matched).
func render(w *os.File, tr *trialSeries, prefix string, width int) int {
	var names []string
	for _, name := range tr.order {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return 0
	}
	sort.SliceStable(names, func(a, b int) bool {
		ia, ib := coreIndex(names[a]), coreIndex(names[b])
		if ia != ib {
			return ia < ib
		}
		return names[a] < names[b]
	})
	var tEnd, max float64
	for _, name := range names {
		for _, p := range tr.series[name] {
			if p.tUS > tEnd {
				tEnd = p.tUS
			}
			if p.v > max {
				max = p.v
			}
		}
	}
	if tEnd == 0 {
		return 0
	}
	if max == 0 {
		max = 1
	}
	glyphs := []byte(" .:-=+*#%@")
	fmt.Fprintf(w, "--- %s ---\n", tr.name)
	for _, name := range names {
		pts := tr.series[name]
		var b strings.Builder
		for x := 0; x < width; x++ {
			v := at(pts, tEnd*float64(x)/float64(width-1))
			idx := int(v / max * float64(len(glyphs)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(glyphs) {
				idx = len(glyphs) - 1
			}
			b.WriteByte(glyphs[idx])
		}
		fmt.Fprintf(w, "%-14s|%s|\n", name, b.String())
	}
	fmt.Fprintf(w, "%-14s 0s%*s\n", "", width-2, fmt.Sprintf("%.1fs", tEnd/1e6))
	fmt.Fprintf(w, "scale: ' '=0 .. '@'=%.3g\n\n", max)
	return len(names)
}
