package main

// The scenario CLI glue: `schedbattle -scenarios` lists the bundled
// library, `-scenario <name|file.json>` compiles a spec into a trial grid,
// runs it on the worker pool, and writes the structured JSON report.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/scenario"
)

// listScenarios prints the bundled library: id, grid size, and the spec's
// one-line description. Trailing hint lines start with "run" so listing
// consumers (the CI smoke loop) can filter them out by first column.
func listScenarios() error {
	specs, err := scenario.Builtin()
	if err != nil {
		return err
	}
	for _, sp := range specs {
		trials, err := sp.Compile(1)
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %2d trials  %s\n", sp.Name, len(trials), sp.Description)
	}
	fmt.Println("\nrun one with:      schedbattle -scenario <name> [-scale 0.1] [-out report.json]")
	fmt.Println("run a battle with: schedbattle -battle <name>[,<name>...] [-replications 5] [-md battle.md]")
	return nil
}

// runScenario loads, runs, and reports one scenario. The report goes to
// outPath ("" or "-" = stdout); a one-line summary per trial goes to
// stderr so a redirected stdout stays pure JSON. seriesPath, when set,
// receives the probe-series CSV export (header-only when the spec has no
// series block). traceDir receives one dtrace/v1 file per trial and
// traceCSV the flat CSV rendering; either one enables tracing with
// default options when the spec has no trace block. Every export failure
// names the path it could not write and fails the run.
func runScenario(nameOrPath string, scale float64, outPath, seriesPath, traceDir, traceCSV string) error {
	sp, err := scenario.Load(nameOrPath)
	if err != nil {
		return err
	}
	if (traceDir != "" || traceCSV != "") && sp.Trace == nil {
		// Bundled specs are shared read-only; clone before enabling the
		// default trace block for this invocation.
		cp := *sp
		cp.Trace = &scenario.TraceSpec{}
		sp = &cp
	}
	rep, err := sp.Run(scale)
	var fails *scenario.TrialFailures
	if err != nil {
		// Partial failure still produced a full report (failed cells carry
		// Error): write it, dump diagnostics, and exit non-zero at the end.
		// Anything else is fatal.
		if !errors.As(err, &fails) {
			return err
		}
	}
	for _, tr := range rep.Trials {
		line := fmt.Sprintf("%-36s events=%d", tr.Name, tr.Events)
		if tr.Error != "" {
			line += "  FAILED: " + tr.Error
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		if tr.Throughput != nil {
			line += fmt.Sprintf("  ops=%d (%.4g/s)", tr.Throughput.TotalOps, tr.Throughput.OpsPerSec)
		}
		if tr.Latency != nil {
			line += fmt.Sprintf("  p50=%.4gus p99=%.4gus", tr.Latency.P50US, tr.Latency.P99US)
		}
		if v, ok := tr.Derived[scenario.MetricConvergenceUS]; ok {
			line += fmt.Sprintf("  conv=%.4gus", v)
		}
		if v, ok := tr.Derived[scenario.MetricRecoveryUS]; ok {
			line += fmt.Sprintf("  recov=%.4gus", v)
		}
		if v, ok := tr.Derived[scenario.MetricHeadroomPct]; ok {
			line += fmt.Sprintf("  headroom=%.3g%%", v)
		}
		fmt.Fprintln(os.Stderr, line)
	}
	if err := scenario.WriteReport(outPath, rep); err != nil {
		if outPath == "" || outPath == "-" {
			return fmt.Errorf("writing report to stdout: %w", err)
		}
		return fmt.Errorf("writing report %s: %w", outPath, err)
	}
	if outPath != "" && outPath != "-" {
		fmt.Fprintf(os.Stderr, "schedbattle: wrote %s\n", outPath)
	}
	if seriesPath != "" {
		if err := os.WriteFile(seriesPath, rep.SeriesCSV(), 0o644); err != nil {
			return fmt.Errorf("writing series CSV %s: %w", seriesPath, err)
		}
		fmt.Fprintf(os.Stderr, "schedbattle: wrote %s\n", seriesPath)
	}
	if traceDir != "" {
		if err := writeTraces(traceDir, rep); err != nil {
			return err
		}
	}
	if traceCSV != "" {
		csv, err := rep.TraceCSV()
		if err != nil {
			return fmt.Errorf("rendering trace CSV: %w", err)
		}
		if err := os.WriteFile(traceCSV, csv, 0o644); err != nil {
			return fmt.Errorf("writing trace CSV %s: %w", traceCSV, err)
		}
		fmt.Fprintf(os.Stderr, "schedbattle: wrote %s\n", traceCSV)
	}
	if fails != nil {
		// Stacks go to stderr only — they carry host addresses and must
		// never enter the (byte-compared) report.
		for _, te := range fails.Errs {
			fmt.Fprintf(os.Stderr, "schedbattle: %v\n%s\n", te, te.Stack)
		}
		return fmt.Errorf("%d of %d trials failed", len(fails.Errs), fails.Total)
	}
	return nil
}

// writeTraces dumps every trial's encoded dtrace/v1 stream as
// "<dir>/<trial>.dtrace", the trial name's path separators flattened to
// underscores ("web-tail/c8/ule/x0.05/s1" → "web-tail_c8_ule_x0.05_s1").
// Trials without trace data (failed cells) are skipped.
func writeTraces(dir string, rep *scenario.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("creating trace directory %s: %w", dir, err)
	}
	n := 0
	for i := range rep.Trials {
		tr := &rep.Trials[i]
		if len(tr.TraceData) == 0 {
			continue
		}
		path := filepath.Join(dir, strings.ReplaceAll(tr.Name, "/", "_")+".dtrace")
		if err := os.WriteFile(path, tr.TraceData, 0o644); err != nil {
			return fmt.Errorf("writing trace %s: %w", path, err)
		}
		n++
	}
	fmt.Fprintf(os.Stderr, "schedbattle: wrote %d trace file(s) to %s\n", n, dir)
	return nil
}
