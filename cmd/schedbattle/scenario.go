package main

// The scenario CLI glue: `schedbattle -scenarios` lists the bundled
// library, `-scenario <name|file.json>` compiles a spec into a trial grid,
// runs it on the worker pool, and writes the structured JSON report.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/scenario"
	"repro/internal/timeline"
)

// listScenarios prints the bundled library: id, grid size, and the spec's
// one-line description. Trailing hint lines start with "run" so listing
// consumers (the CI smoke loop) can filter them out by first column.
func listScenarios() error {
	specs, err := scenario.Builtin()
	if err != nil {
		return err
	}
	for _, sp := range specs {
		trials, err := sp.Compile(1)
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %2d trials  %s\n", sp.Name, len(trials), sp.Description)
	}
	fmt.Println("\nrun one with:      schedbattle -scenario <name> [-scale 0.1] [-out report.json]")
	fmt.Println("run a battle with: schedbattle -battle <name>[,<name>...] [-replications 5] [-md battle.md]")
	return nil
}

// scenarioOutputs bundles the -scenario export destinations. Every file
// and directory path gets mkdir -p semantics: missing parents are created
// rather than failing the run after the grid already executed.
type scenarioOutputs struct {
	// out receives the JSON report ("" or "-" = stdout).
	out string
	// series receives the probe-series CSV export.
	series string
	// traceDir receives one dtrace/v1 file per trial; traceCSV the flat
	// CSV rendering. Either enables tracing with default options when the
	// spec has no trace block.
	traceDir, traceCSV string
	// timelineDir receives one Perfetto .trace.json per trial; timehist
	// renders the per-slice table to stderr. Either enables the timeline
	// with default options when the spec has no timeline block.
	timelineDir string
	timehist    bool
}

// ensureParentDir creates path's missing parent directories (mkdir -p),
// so nested export destinations like out/run3/series.csv just work.
func ensureParentDir(path string) error {
	dir := filepath.Dir(path)
	if dir == "" || dir == "." {
		return nil
	}
	return os.MkdirAll(dir, 0o755)
}

// writeFileP is os.WriteFile with mkdir -p on the parent.
func writeFileP(path string, data []byte) error {
	if err := ensureParentDir(path); err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// runScenario loads, runs, and reports one scenario. The report goes to
// o.out ("" or "-" = stdout); a one-line summary per trial goes to
// stderr so a redirected stdout stays pure JSON. Every export failure
// names the path it could not write and fails the run.
func runScenario(nameOrPath string, scale float64, o scenarioOutputs) error {
	sp, err := scenario.Load(nameOrPath)
	if err != nil {
		return err
	}
	if (o.traceDir != "" || o.traceCSV != "") && sp.Trace == nil {
		// Bundled specs are shared read-only; clone before enabling the
		// default trace block for this invocation.
		cp := *sp
		cp.Trace = &scenario.TraceSpec{}
		sp = &cp
	}
	if (o.timelineDir != "" || o.timehist) && sp.Timeline == nil {
		cp := *sp
		cp.Timeline = &scenario.TimelineSpec{}
		sp = &cp
	}
	rep, err := sp.Run(scale)
	var fails *scenario.TrialFailures
	if err != nil {
		// Partial failure still produced a full report (failed cells carry
		// Error): write it, dump diagnostics, and exit non-zero at the end.
		// Anything else is fatal.
		if !errors.As(err, &fails) {
			return err
		}
	}
	for _, tr := range rep.Trials {
		line := fmt.Sprintf("%-36s events=%d", tr.Name, tr.Events)
		if tr.Error != "" {
			line += "  FAILED: " + tr.Error
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		if tr.Throughput != nil {
			line += fmt.Sprintf("  ops=%d (%.4g/s)", tr.Throughput.TotalOps, tr.Throughput.OpsPerSec)
		}
		if tr.Latency != nil {
			line += fmt.Sprintf("  p50=%.4gus p99=%.4gus", tr.Latency.P50US, tr.Latency.P99US)
		}
		if v, ok := tr.Derived[scenario.MetricConvergenceUS]; ok {
			line += fmt.Sprintf("  conv=%.4gus", v)
		}
		if v, ok := tr.Derived[scenario.MetricRecoveryUS]; ok {
			line += fmt.Sprintf("  recov=%.4gus", v)
		}
		if v, ok := tr.Derived[scenario.MetricHeadroomPct]; ok {
			line += fmt.Sprintf("  headroom=%.3g%%", v)
		}
		if v, ok := tr.Derived[scenario.MetricSchedLatencyP99US]; ok {
			line += fmt.Sprintf("  slat99=%.4gus", v)
		}
		fmt.Fprintln(os.Stderr, line)
	}
	if o.out != "" && o.out != "-" {
		if err := ensureParentDir(o.out); err != nil {
			return fmt.Errorf("creating report directory for %s: %w", o.out, err)
		}
	}
	if err := scenario.WriteReport(o.out, rep); err != nil {
		if o.out == "" || o.out == "-" {
			return fmt.Errorf("writing report to stdout: %w", err)
		}
		return fmt.Errorf("writing report %s: %w", o.out, err)
	}
	if o.out != "" && o.out != "-" {
		fmt.Fprintf(os.Stderr, "schedbattle: wrote %s\n", o.out)
	}
	if o.series != "" {
		if err := writeFileP(o.series, rep.SeriesCSV()); err != nil {
			return fmt.Errorf("writing series CSV %s: %w", o.series, err)
		}
		fmt.Fprintf(os.Stderr, "schedbattle: wrote %s\n", o.series)
	}
	if o.traceDir != "" {
		if err := writeTraces(o.traceDir, rep); err != nil {
			return err
		}
	}
	if o.traceCSV != "" {
		csv, err := rep.TraceCSV()
		if err != nil {
			return fmt.Errorf("rendering trace CSV: %w", err)
		}
		if err := writeFileP(o.traceCSV, csv); err != nil {
			return fmt.Errorf("writing trace CSV %s: %w", o.traceCSV, err)
		}
		fmt.Fprintf(os.Stderr, "schedbattle: wrote %s\n", o.traceCSV)
	}
	if o.timelineDir != "" {
		if err := writeTimelines(o.timelineDir, rep); err != nil {
			return err
		}
	}
	if o.timehist {
		if err := renderTimehist(os.Stderr, rep); err != nil {
			return err
		}
	}
	if fails != nil {
		// Stacks go to stderr only — they carry host addresses and must
		// never enter the (byte-compared) report.
		for _, te := range fails.Errs {
			fmt.Fprintf(os.Stderr, "schedbattle: %v\n%s\n", te, te.Stack)
		}
		return fmt.Errorf("%d of %d trials failed", len(fails.Errs), fails.Total)
	}
	return nil
}

// writeTraces dumps every trial's encoded dtrace/v1 stream as
// "<dir>/<trial>.dtrace", the trial name's path separators flattened to
// underscores ("web-tail/c8/ule/x0.05/s1" → "web-tail_c8_ule_x0.05_s1").
// Trials without trace data (failed cells) are skipped.
func writeTraces(dir string, rep *scenario.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("creating trace directory %s: %w", dir, err)
	}
	n := 0
	for i := range rep.Trials {
		tr := &rep.Trials[i]
		if len(tr.TraceData) == 0 {
			continue
		}
		path := filepath.Join(dir, strings.ReplaceAll(tr.Name, "/", "_")+".dtrace")
		if err := os.WriteFile(path, tr.TraceData, 0o644); err != nil {
			return fmt.Errorf("writing trace %s: %w", path, err)
		}
		n++
	}
	fmt.Fprintf(os.Stderr, "schedbattle: wrote %d trace file(s) to %s\n", n, dir)
	return nil
}

// writeTimelines dumps every trial's Perfetto trace-event JSON as
// "<dir>/<trial>.trace.json" (same name flattening as writeTraces), each
// loadable at ui.perfetto.dev. Trials without timeline data are skipped.
func writeTimelines(dir string, rep *scenario.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("creating timeline directory %s: %w", dir, err)
	}
	n := 0
	for i := range rep.Trials {
		tr := &rep.Trials[i]
		if len(tr.TimelineData) == 0 {
			continue
		}
		path := filepath.Join(dir, strings.ReplaceAll(tr.Name, "/", "_")+".trace.json")
		if err := os.WriteFile(path, tr.TimelineData, 0o644); err != nil {
			return fmt.Errorf("writing timeline %s: %w", path, err)
		}
		n++
	}
	fmt.Fprintf(os.Stderr, "schedbattle: wrote %d timeline file(s) to %s\n", n, dir)
	return nil
}

// timehist render bounds: enough rows to read a trial's shape without
// flooding a terminal when the grid is large.
const (
	timehistMaxRows = 40
	timehistTopN    = 10
)

// renderTimehist prints a perf-sched-timehist-style table per trial,
// decoded from the same bytes -timeline exports.
func renderTimehist(w *os.File, rep *scenario.Report) error {
	for i := range rep.Trials {
		tr := &rep.Trials[i]
		if len(tr.TimelineData) == 0 {
			continue
		}
		dec, err := timeline.DecodeTrace(tr.TimelineData)
		if err != nil {
			return fmt.Errorf("trial %s: decoding timeline: %w", tr.Name, err)
		}
		fmt.Fprintf(w, "\n=== timehist %s ===\n", tr.Name)
		if err := dec.Timehist(w, timehistMaxRows, timehistTopN); err != nil {
			return err
		}
	}
	return nil
}
