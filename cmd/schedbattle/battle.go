package main

// The battle CLI glue: `schedbattle -battle <names>` replicates scenarios
// across a seed axis and writes the JSON battle matrix (-out), the
// markdown rendering (-md, or stdout), and optionally a baseline snapshot
// (-baseline). `schedbattle -check -baseline <file>` re-runs the
// baseline's scenarios at its recorded scale and fails on statistically
// significant regressions — the scenario library as a CI gate.

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/battle"
	"repro/internal/scenario"
)

// BattleFile is the JSON document `-battle -out` writes: one battle
// report per requested scenario, in request order.
type BattleFile struct {
	Schema  string           `json:"schema"`
	Reports []*battle.Report `json:"reports"`
}

// BattleFileSchema versions the multi-scenario battle output.
const BattleFileSchema = "schedbattle/battle-file/v1"

// battleTargets resolves the -battle argument: "all" is every bundled
// scenario; otherwise a comma-separated list of bundled names or spec
// file paths.
func battleTargets(arg string) ([]string, error) {
	if arg == "all" {
		return scenario.BuiltinNames()
	}
	var names []string
	for _, n := range strings.Split(arg, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("-battle needs a scenario name, a spec path, or \"all\"")
	}
	return names, nil
}

// joinMarkdown concatenates per-scenario battle matrices into one
// document, ruled apart — the single rendering both -battle and -check
// share, so their artifacts cannot diverge.
func joinMarkdown(reports []*battle.Report) string {
	var md strings.Builder
	for i, rep := range reports {
		if i > 0 {
			md.WriteString("\n---\n\n")
		}
		md.WriteString(rep.Markdown())
	}
	return md.String()
}

// runBattle executes battle runs for every requested scenario and writes
// the outputs. Markdown goes to mdPath, or stdout when mdPath is empty;
// the JSON battle file to outPath when set; a baseline snapshot to
// baselinePath when set.
func runBattle(arg string, opt battle.Options, outPath, mdPath, baselinePath string) error {
	names, err := battleTargets(arg)
	if err != nil {
		return err
	}
	var (
		reports []*battle.Report
		sources = map[string]string{}
	)
	for _, name := range names {
		sp, err := scenario.Load(name)
		if err != nil {
			return err
		}
		rep, err := battle.Run(sp, opt)
		if err != nil {
			return err
		}
		reports = append(reports, rep)
		sources[rep.Scenario] = name
	}
	md := joinMarkdown(reports)

	switch {
	case mdPath == "" || mdPath == "-":
		// With -out -, the JSON report owns stdout (same contract as the
		// experiment sweep); the markdown moves to stderr so piping into a
		// JSON consumer just works.
		if outPath == "-" {
			fmt.Fprint(os.Stderr, md)
		} else {
			fmt.Print(md)
		}
	default:
		if err := os.WriteFile(mdPath, []byte(md), 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", mdPath, err)
		}
		fmt.Fprintf(os.Stderr, "schedbattle: wrote %s\n", mdPath)
	}

	if outPath != "" {
		file := BattleFile{Schema: BattleFileSchema, Reports: reports}
		if err := scenario.WriteReport(outPath, file); err != nil {
			return fmt.Errorf("writing %s: %w", outPath, err)
		}
		if outPath != "-" {
			fmt.Fprintf(os.Stderr, "schedbattle: wrote %s\n", outPath)
		}
	}

	if baselinePath != "" {
		b := battle.NewBaseline(reports, opt, sources)
		if err := battle.WriteBaseline(baselinePath, b); err != nil {
			return fmt.Errorf("writing %s: %w", baselinePath, err)
		}
		fmt.Fprintf(os.Stderr, "schedbattle: wrote baseline %s\n", baselinePath)
	}
	return nil
}

// runCheck executes the regression gate: re-run the baseline's scenarios
// and compare. Returns the number of regressions (the caller exits
// non-zero on any); the fresh markdown battle report lands in mdPath when
// set, so CI can upload it as an artifact either way.
func runCheck(baselinePath, mdPath string) (int, error) {
	if baselinePath == "" {
		return 0, fmt.Errorf("-check needs -baseline <file>")
	}
	b, err := battle.LoadBaseline(baselinePath)
	if err != nil {
		return 0, err
	}
	regs, reports, err := battle.Check(b)
	if err != nil {
		return 0, err
	}

	// In check mode stdout carries the verdict lines, so markdown is only
	// emitted when asked for: to a file, or to stderr with -md -.
	if mdPath != "" {
		md := joinMarkdown(reports)
		if mdPath == "-" {
			fmt.Fprint(os.Stderr, md)
		} else if err := os.WriteFile(mdPath, []byte(md), 0o644); err != nil {
			return 0, fmt.Errorf("writing %s: %w", mdPath, err)
		} else {
			fmt.Fprintf(os.Stderr, "schedbattle: wrote %s\n", mdPath)
		}
	}

	cells := 0
	for _, bs := range b.Scenarios {
		for _, bg := range bs.Groups {
			cells += len(bg.Entries)
		}
	}
	for _, r := range regs {
		fmt.Printf("REGRESSION %s\n", r)
	}
	if len(regs) > 0 {
		fmt.Printf("check: %d of %d baseline cells regressed (%s, scale %g, %d seeds)\n",
			len(regs), cells, baselinePath, b.CLIScale, b.Replications)
	} else {
		fmt.Printf("check: PASS — %d baseline cells within bounds (%s, scale %g, %d seeds)\n",
			cells, baselinePath, b.CLIScale, b.Replications)
	}
	return len(regs), nil
}
