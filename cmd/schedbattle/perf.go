package main

// The engine perf harness behind `schedbattle -perf`: it times a fixed set
// of simulation scenarios on this machine and writes events/sec and
// sim-seconds-per-wall-second to a JSON file, so the engine's performance
// trajectory is tracked run over run (EXPERIMENTS.md, "Engine perf
// harness").
//
// The output file is a trajectory: each harness run appends (or replaces,
// when the label matches) one dated entry, so BENCH_engine.json accumulates
// the per-PR history the ROADMAP asks for instead of overwriting it.
// `-perf-check` re-times the scenarios and gates against the committed
// trajectory's latest entry, failing on >tolerance events/sec regressions.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/battle"
	"repro/internal/core"
	"repro/internal/dtrace"
	"repro/internal/memo"
	"repro/internal/probe"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/timeline"
)

// perfScenario is one timed simulation: a machine builder plus the
// simulated window to drive it through. traced scenarios additionally
// attach a full decision-trace recorder draining to io.Discard, pricing
// the dtrace layer against its untraced twin; timelined scenarios attach
// the thread-state flight recorder the same way.
type perfScenario struct {
	name      string
	window    time.Duration
	build     func() *sim.Machine
	traced    bool
	timelined bool
}

// perfResult is one timed scenario row of a trajectory entry. Decisions
// and DecisionsPerSec are present for traced scenarios only: scheduler
// decision points observed by the recorder, before sampling.
type perfResult struct {
	Name            string  `json:"name"`
	Events          uint64  `json:"events"`
	WallSeconds     float64 `json:"wall_seconds"`
	SimSeconds      float64 `json:"sim_seconds"`
	EventsPerSec    float64 `json:"events_per_sec"`
	SimPerWall      float64 `json:"sim_seconds_per_wall_second"`
	Decisions       uint64  `json:"decisions,omitempty"`
	DecisionsPerSec float64 `json:"decisions_per_sec,omitempty"`
	// TimelineSlices is present for timelined scenarios only: running
	// slices the flight recorder closed during the run.
	TimelineSlices uint64 `json:"timeline_slices,omitempty"`
}

// perfEntry is one harness run in the trajectory: a label (normally the
// PR's short git head), the run date, and the per-scenario results.
type perfEntry struct {
	Label     string       `json:"label"`
	Date      string       `json:"date"`
	Iters     int          `json:"iters"`
	Scenarios []perfResult `json:"scenarios"`
}

// perfFile is the BENCH_engine.json format: the full trajectory, oldest
// entry first.
type perfFile struct {
	History []perfEntry `json:"history"`
}

// perfOptions carries the harness CLI knobs.
type perfOptions struct {
	iters      int
	label      string
	engine     string // "wheel" (default) or "heap"
	cpuProfile string
	memProfile string
}

// applyEngine points the engine at the requested event queue for the
// duration of the harness, so the wheel and the heap can be A/B-timed on
// the same machine in the same process state.
func (o perfOptions) applyEngine() error {
	switch o.engine {
	case "", "wheel":
		sim.SetForceEventHeap(false)
	case "heap":
		sim.SetForceEventHeap(true)
	default:
		return fmt.Errorf("unknown -perf-engine %q (want wheel or heap)", o.engine)
	}
	return nil
}

// perfScenarios covers the regimes that bound experiment wall-clock time:
// a saturated server workload under each scheduler (event-dense), the
// same workload with the full telemetry probe set attached (pricing the
// probe layer against its zero-probe twin), and a mostly-idle machine
// (tick-dominated before the tickless engine).
func perfScenarios() []perfScenario {
	server := func(kind core.SchedulerKind, probes bool) func() *sim.Machine {
		return func() *sim.Machine {
			m := core.NewMachine(core.MachineConfig{Cores: 32, Kind: kind, Seed: 13, KernelNoise: true})
			spec, err := apps.ByName("sysbench")
			if err != nil {
				panic(err)
			}
			spec.New(m, apps.Env{Cores: 32})
			if probes {
				probe.MustAttach(m, probe.Options{Probes: probe.Names()})
			}
			return m
		}
	}
	return []perfScenario{
		{name: "sysbench-ule-32", window: apps.ShellWarmup + 3*time.Second, build: server(core.ULE, false)},
		{name: "sysbench-ule-32-probed", window: apps.ShellWarmup + 3*time.Second, build: server(core.ULE, true)},
		{name: "sysbench-ule-32-traced", window: apps.ShellWarmup + 3*time.Second, build: server(core.ULE, false), traced: true},
		{name: "sysbench-ule-32-timelined", window: apps.ShellWarmup + 3*time.Second, build: server(core.ULE, false), timelined: true},
		{name: "sysbench-cfs-32", window: apps.ShellWarmup + 3*time.Second, build: server(core.CFS, false)},
		{name: "idle-ule-32", window: 10 * time.Second, build: func() *sim.Machine {
			return core.NewMachine(core.MachineConfig{Cores: 32, Kind: core.ULE, Seed: 13})
		}},
	}
}

// timeScenarios runs every scenario iters times and keeps each scenario's
// best run (events/sec): repeated fresh-machine runs are identical
// simulations, so the minimum wall time is the least-noisy measurement of
// the engine itself.
func timeScenarios(iters int) []perfResult {
	if iters < 1 {
		iters = 1
	}
	var results []perfResult
	for _, sc := range perfScenarios() {
		// One untimed warm-up run: the first timed scenario in a cold
		// process otherwise eats page faults and frequency ramp-up and
		// reads 10-15% slow, which would poison the -perf-check gate.
		{
			m := sc.build()
			perfAttachTrace(&sc, m)
			perfAttachTimeline(&sc, m)
			m.Run(sc.window)
		}
		var best perfResult
		for it := 0; it < iters; it++ {
			m := sc.build()
			rec := perfAttachTrace(&sc, m)
			tlrec := perfAttachTimeline(&sc, m)
			start := time.Now()
			m.Run(sc.window)
			wall := time.Since(start).Seconds()
			r := perfResult{
				Name:        sc.name,
				Events:      m.EventsProcessed(),
				WallSeconds: wall,
				SimSeconds:  sc.window.Seconds(),
			}
			if wall > 0 {
				r.EventsPerSec = float64(r.Events) / wall
				r.SimPerWall = r.SimSeconds / wall
			}
			if rec != nil {
				_ = rec.Close()
				r.Decisions = rec.Summary().Decisions
				if wall > 0 {
					r.DecisionsPerSec = float64(r.Decisions) / wall
				}
			}
			if tlrec != nil {
				tlrec.Close()
				r.TimelineSlices = tlrec.Summary().Slices
			}
			if it == 0 || r.EventsPerSec > best.EventsPerSec {
				best = r
			}
		}
		line := fmt.Sprintf("%-22s %12d events  %8.3fs wall  %10.0f events/s  %8.1f sim-s/wall-s",
			best.Name, best.Events, best.WallSeconds, best.EventsPerSec, best.SimPerWall)
		if best.DecisionsPerSec > 0 {
			line += fmt.Sprintf("  %10.0f decisions/s", best.DecisionsPerSec)
		}
		fmt.Println(line)
		results = append(results, best)
	}
	results = append(results, timeMemoScenario()...)
	return results
}

// timeMemoScenario prices the trial-result cache: one battle replication
// study (web-tail, 5 seeds per scheduler) run cold into a fresh in-memory
// cache, then re-run warm so every trial is a cache hit. The warm row's
// EventsPerSec is deliberately 0 — wall time there measures deserialization,
// not the engine, so the -perf-check gate skips it (its committed baseline
// never has a positive events/sec) while the trajectory still records the
// cold/warm wall ratio.
func timeMemoScenario() []perfResult {
	prev := core.TrialCache()
	cache, err := memo.New("")
	if err != nil {
		panic(err) // memory-only New cannot fail
	}
	core.SetTrialCache(cache)
	defer core.SetTrialCache(prev)

	sp, err := scenario.LoadBuiltin("web-tail")
	if err != nil {
		panic(err) // bundled
	}
	opt := battle.Options{Replications: 5, Scale: 0.05}
	one := func(name string) perfResult {
		start := time.Now()
		if _, err := battle.Run(sp, opt); err != nil {
			panic(err)
		}
		wall := time.Since(start).Seconds()
		return perfResult{Name: name, WallSeconds: wall, SimSeconds: sp.Window.D().Seconds() * opt.Scale}
	}
	cold := one("memo-battle-cold")
	st := cache.Stats()
	warm := one("memo-battle-warm")
	if misses := cache.Stats().Misses - st.Misses; misses > 0 {
		panic(fmt.Sprintf("perf: warm battle pass missed the cache %d times", misses))
	}
	fmt.Printf("%-22s %8.3fs wall (cold)\n", cold.Name, cold.WallSeconds)
	fmt.Printf("%-22s %8.3fs wall (warm, %d hits)  %.1fx speedup\n",
		warm.Name, warm.WallSeconds, cache.Stats().Hits-st.Hits, cold.WallSeconds/warm.WallSeconds)
	return []perfResult{cold, warm}
}

// perfAttachTrace attaches the full-fidelity recorder to traced
// scenarios; nil otherwise. io.Discard keeps encode work in the timing
// without accumulating gigabytes, and the effectively-unbounded byte cap
// prevents mid-run chunk dropping from hiding encode cost.
func perfAttachTrace(sc *perfScenario, m *sim.Machine) *dtrace.Recorder {
	if !sc.traced {
		return nil
	}
	rec, err := dtrace.Attach(m, dtrace.Options{Sink: io.Discard, MaxBytes: 1 << 40})
	if err != nil {
		panic(err) // static options
	}
	return rec
}

// perfAttachTimeline attaches the thread-state flight recorder (default
// options — the realistic 32 MiB event budget) to timelined scenarios;
// nil otherwise. The off/on delta against sysbench-ule-32 prices the
// timeline layer.
func perfAttachTimeline(sc *perfScenario, m *sim.Machine) *timeline.Recorder {
	if !sc.timelined {
		return nil
	}
	rec, err := timeline.Attach(m, timeline.Options{})
	if err != nil {
		panic(err) // static options
	}
	return rec
}

// perfLabelOrDefault resolves the trajectory label: the -perf-label flag,
// else the short git head, else "dev".
func perfLabelOrDefault(label string) string {
	if label != "" {
		return label
	}
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err == nil {
		if head := strings.TrimSpace(string(out)); head != "" {
			return head
		}
	}
	return "dev"
}

// loadPerfFile reads an existing trajectory, accepting both the current
// history format and the pre-PR6 single-snapshot format ({"scenarios":
// [...]}), which becomes a one-entry history labeled "pre-pr6".
func loadPerfFile(path string) (*perfFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return &perfFile{}, nil
		}
		return nil, err
	}
	var pf perfFile
	if err := json.Unmarshal(data, &pf); err == nil && pf.History != nil {
		return &pf, nil
	}
	var legacy struct {
		Scenarios []perfResult `json:"scenarios"`
	}
	if err := json.Unmarshal(data, &legacy); err != nil || legacy.Scenarios == nil {
		return nil, fmt.Errorf("unrecognized format in %s", path)
	}
	return &perfFile{History: []perfEntry{{Label: "pre-pr6", Scenarios: legacy.Scenarios}}}, nil
}

// runPerf executes the harness and appends the entry to the trajectory at
// path (replacing a same-labeled entry, so re-runs do not duplicate).
func runPerf(path string, opt perfOptions) error {
	if err := opt.applyEngine(); err != nil {
		return err
	}
	if opt.cpuProfile != "" {
		f, err := os.Create(opt.cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	results := timeScenarios(opt.iters)
	if opt.memProfile != "" {
		f, err := os.Create(opt.memProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			return err
		}
	}

	pf, err := loadPerfFile(path)
	if err != nil {
		return err
	}
	entry := perfEntry{
		Label:     perfLabelOrDefault(opt.label),
		Date:      time.Now().UTC().Format("2006-01-02"),
		Iters:     opt.iters,
		Scenarios: results,
	}
	replaced := false
	for i := range pf.History {
		if pf.History[i].Label == entry.Label {
			pf.History[i] = entry
			replaced = true
			break
		}
	}
	if !replaced {
		pf.History = append(pf.History, entry)
	}
	out, err := json.MarshalIndent(pf, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%s, %d entries)\n", path, entry.Label, len(pf.History))
	return nil
}

// runPerfCheck is the CI bench smoke: it re-times the scenarios, prints
// the events/sec delta against the committed trajectory's latest entry,
// and returns an error if any scenario regressed by more than tolerance
// (a fraction, e.g. 0.10).
func runPerfCheck(path string, opt perfOptions, tolerance float64) error {
	if err := opt.applyEngine(); err != nil {
		return err
	}
	pf, err := loadPerfFile(path)
	if err != nil {
		return err
	}
	if len(pf.History) == 0 {
		return fmt.Errorf("no committed entries in %s", path)
	}
	base := pf.History[len(pf.History)-1]
	committed := map[string]perfResult{}
	for _, r := range base.Scenarios {
		committed[r.Name] = r
	}
	results := timeScenarios(opt.iters)
	var regressed []string
	fmt.Printf("\nbench smoke vs %s (%s), tolerance %.0f%%:\n", base.Label, path, tolerance*100)
	for _, r := range results {
		c, ok := committed[r.Name]
		if !ok || c.EventsPerSec <= 0 {
			fmt.Printf("%-22s %10.0f events/s  (no committed baseline)\n", r.Name, r.EventsPerSec)
			continue
		}
		delta := r.EventsPerSec/c.EventsPerSec - 1
		status := "ok"
		if delta < -tolerance {
			status = "REGRESSED"
			regressed = append(regressed, r.Name)
		}
		fmt.Printf("%-22s %10.0f events/s  vs %10.0f  %+6.1f%%  %s\n",
			r.Name, r.EventsPerSec, c.EventsPerSec, delta*100, status)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d scenario(s) regressed beyond %.0f%%: %s",
			len(regressed), tolerance*100, strings.Join(regressed, ", "))
	}
	return nil
}
