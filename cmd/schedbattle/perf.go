package main

// The engine perf harness behind `schedbattle -perf`: it times a fixed set
// of simulation scenarios on this machine and writes events/sec and
// sim-seconds-per-wall-second to a JSON file, so the engine's performance
// trajectory is tracked run over run (EXPERIMENTS.md, "Engine perf
// harness").

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/probe"
	"repro/internal/sim"
)

// perfScenario is one timed simulation: a machine builder plus the
// simulated window to drive it through.
type perfScenario struct {
	name   string
	window time.Duration
	build  func() *sim.Machine
}

// perfResult is one BENCH_engine.json row.
type perfResult struct {
	Name         string  `json:"name"`
	Events       uint64  `json:"events"`
	WallSeconds  float64 `json:"wall_seconds"`
	SimSeconds   float64 `json:"sim_seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
	SimPerWall   float64 `json:"sim_seconds_per_wall_second"`
}

// perfScenarios covers the regimes that bound experiment wall-clock time:
// a saturated server workload under each scheduler (event-dense), the
// same workload with the full telemetry probe set attached (pricing the
// probe layer against its zero-probe twin), and a mostly-idle machine
// (tick-dominated before the tickless engine).
func perfScenarios() []perfScenario {
	server := func(kind core.SchedulerKind, probes bool) func() *sim.Machine {
		return func() *sim.Machine {
			m := core.NewMachine(core.MachineConfig{Cores: 32, Kind: kind, Seed: 13, KernelNoise: true})
			spec, err := apps.ByName("sysbench")
			if err != nil {
				panic(err)
			}
			spec.New(m, apps.Env{Cores: 32})
			if probes {
				probe.MustAttach(m, probe.Options{Probes: probe.Names()})
			}
			return m
		}
	}
	return []perfScenario{
		{name: "sysbench-ule-32", window: apps.ShellWarmup + 3*time.Second, build: server(core.ULE, false)},
		{name: "sysbench-ule-32-probed", window: apps.ShellWarmup + 3*time.Second, build: server(core.ULE, true)},
		{name: "sysbench-cfs-32", window: apps.ShellWarmup + 3*time.Second, build: server(core.CFS, false)},
		{name: "idle-ule-32", window: 10 * time.Second, build: func() *sim.Machine {
			return core.NewMachine(core.MachineConfig{Cores: 32, Kind: core.ULE, Seed: 13})
		}},
	}
}

// runPerf executes the harness and writes the JSON report to path.
func runPerf(path string) error {
	var results []perfResult
	for _, sc := range perfScenarios() {
		m := sc.build()
		start := time.Now()
		m.Run(sc.window)
		wall := time.Since(start).Seconds()
		r := perfResult{
			Name:        sc.name,
			Events:      m.EventsProcessed(),
			WallSeconds: wall,
			SimSeconds:  sc.window.Seconds(),
		}
		if wall > 0 {
			r.EventsPerSec = float64(r.Events) / wall
			r.SimPerWall = r.SimSeconds / wall
		}
		fmt.Printf("%-18s %12d events  %8.3fs wall  %10.0f events/s  %8.1f sim-s/wall-s\n",
			r.Name, r.Events, r.WallSeconds, r.EventsPerSec, r.SimPerWall)
		results = append(results, r)
	}
	out, err := json.MarshalIndent(struct {
		Scenarios []perfResult `json:"scenarios"`
	}{results}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
