// Command schedbattle reproduces the paper's evaluation artifacts: it runs
// any registered experiment (figures 1-9, table 2, the §6.3 overhead
// analysis, and the ablations) and prints the same rows/series the paper
// reports. Experiment trial grids execute on a worker pool (-jobs wide);
// output is byte-identical whatever the pool width.
//
// Usage:
//
//	schedbattle -list
//	schedbattle -run table2 -jobs 8
//	schedbattle -run fig6 -scale 0.25 -series /tmp/fig6
//	schedbattle -all -scale 0.2 -jobs 16 -seed 7
//	schedbattle -perf
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"

	"repro/internal/core"
	"repro/internal/runner"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list experiments and exit")
		run       = flag.String("run", "", "experiment id to run")
		all       = flag.Bool("all", false, "run every experiment")
		scale     = flag.Float64("scale", 1.0, "duration scale in (0,1]: 1.0 = paper-sized")
		seriesDir = flag.String("series", "", "directory to write gnuplot series files into")
		jobs      = flag.Int("jobs", runtime.GOMAXPROCS(0), "trial-grid worker pool width")
		seed      = flag.Int64("seed", 0, "base-seed perturbation for every trial (0 = the paper-tuned seeds)")
		perf      = flag.Bool("perf", false, "run the engine perf harness and write -perf-out")
		perfOut   = flag.String("perf-out", "BENCH_engine.json", "engine perf harness output file")
	)
	flag.Parse()

	if *perf {
		if err := runPerf(*perfOut); err != nil {
			fmt.Fprintf(os.Stderr, "schedbattle: perf: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range core.Experiments() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		fmt.Printf("\nschedulers: %v\n", core.SchedulerKinds())
		return
	}

	runner.SetWorkers(*jobs)
	core.SetBaseSeed(*seed)

	var ids []string
	switch {
	case *all:
		for _, e := range core.Experiments() {
			ids = append(ids, e.ID)
		}
	case *run != "":
		ids = []string{*run}
	default:
		fmt.Fprintln(os.Stderr, "schedbattle: need -run <id>, -all, -perf, or -list")
		flag.Usage()
		os.Exit(2)
	}

	// Run every requested experiment even if one fails; report a combined
	// non-zero exit at the end so a sweep surfaces all failures at once.
	var failed []string
	for _, id := range ids {
		if err := runExperiment(id, *scale, *seriesDir); err != nil {
			fmt.Fprintf(os.Stderr, "schedbattle: %s: %v\n", id, err)
			failed = append(failed, id)
		}
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "schedbattle: %d of %d experiments failed: %v\n", len(failed), len(ids), failed)
		os.Exit(1)
	}
}

// runExperiment executes one experiment, converting a driver panic into an
// error so one failing artifact doesn't abort the rest of a sweep.
func runExperiment(id string, scale float64, seriesDir string) (err error) {
	e, err := core.ByID(id)
	if err != nil {
		return err
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("experiment panicked: %v", r)
		}
	}()
	res := e.Run(scale)
	fmt.Println(res)
	if seriesDir != "" {
		return writeSeries(seriesDir, res)
	}
	return nil
}

// writeSeries dumps every series of a result as "<dir>/<id>-<set>-<name>.dat"
// in gnuplot "time value" format, iterating sets in sorted order so runs are
// reproducible file-for-file.
func writeSeries(dir string, res *core.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	setNames := make([]string, 0, len(res.Series))
	for name := range res.Series {
		setNames = append(setNames, name)
	}
	sort.Strings(setNames)
	for _, setName := range setNames {
		set := res.Series[setName]
		for _, name := range set.Names() {
			s := set.Get(name)
			path := filepath.Join(dir, fmt.Sprintf("%s-%s-%s.dat", res.ID, setName, name))
			if err := os.WriteFile(path, []byte(s.Gnuplot()), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}
