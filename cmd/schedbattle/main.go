// Command schedbattle reproduces the paper's evaluation artifacts: it runs
// any registered experiment (figures 1-9, table 2, the §6.3 overhead
// analysis, and the ablations) and prints the same rows/series the paper
// reports.
//
// Usage:
//
//	schedbattle -list
//	schedbattle -run table2
//	schedbattle -run fig6 -scale 0.25 -series /tmp/fig6
//	schedbattle -all -scale 0.2
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list experiments and exit")
		run       = flag.String("run", "", "experiment id to run")
		all       = flag.Bool("all", false, "run every experiment")
		scale     = flag.Float64("scale", 1.0, "duration scale in (0,1]: 1.0 = paper-sized")
		seriesDir = flag.String("series", "", "directory to write gnuplot series files into")
	)
	flag.Parse()

	if *list {
		for _, e := range core.Experiments() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	}

	var ids []string
	switch {
	case *all:
		for _, e := range core.Experiments() {
			ids = append(ids, e.ID)
		}
	case *run != "":
		ids = []string{*run}
	default:
		fmt.Fprintln(os.Stderr, "schedbattle: need -run <id>, -all, or -list")
		flag.Usage()
		os.Exit(2)
	}

	for _, id := range ids {
		e, err := core.ByID(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedbattle:", err)
			os.Exit(1)
		}
		res := e.Run(*scale)
		fmt.Println(res)
		if *seriesDir != "" {
			if err := writeSeries(*seriesDir, res); err != nil {
				fmt.Fprintln(os.Stderr, "schedbattle:", err)
				os.Exit(1)
			}
		}
	}
}

// writeSeries dumps every series of a result as "<dir>/<id>-<set>-<name>.dat"
// in gnuplot "time value" format.
func writeSeries(dir string, res *core.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for setName, set := range res.Series {
		for _, name := range set.Names() {
			s := set.Get(name)
			path := filepath.Join(dir, fmt.Sprintf("%s-%s-%s.dat", res.ID, setName, name))
			if err := os.WriteFile(path, []byte(s.Gnuplot()), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}
