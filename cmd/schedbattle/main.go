// Command schedbattle reproduces the paper's evaluation artifacts: it runs
// any registered experiment (figures 1-9, table 2, the §6.3 overhead
// analysis, and the ablations) and prints the same rows/series the paper
// reports. It also runs declarative scenarios — JSON specs sweeping
// workload mixes over cores × scales × schedulers × seeds — either bundled
// in the binary or loaded from a file. Trial grids execute on a worker
// pool (-jobs wide); output is byte-identical whatever the pool width.
//
// Usage:
//
//	schedbattle -list
//	schedbattle -run table2 -jobs 8
//	schedbattle -run fig6 -scale 0.25 -series /tmp/fig6
//	schedbattle -all -scale 0.2 -jobs 16 -seed 7 -out results.json
//	schedbattle -scenarios
//	schedbattle -scenario web-tail -scale 0.1 -out report.json
//	schedbattle -scenario web-tail -scale 0.1 -series web-tail.csv
//	schedbattle -scenario my-scenario.json
//	schedbattle -battle web-tail -scale 0.1 -out battle.json -md battle.md
//	schedbattle -battle all -scale 0.05 -replications 5 -baseline baselines/ci.json
//	schedbattle -check -baseline baselines/ci.json -md battle-report.md
//	schedbattle -perf
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/battle"
	"repro/internal/core"
	"repro/internal/memo"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list experiments and exit")
		run        = flag.String("run", "", "experiment id to run")
		all        = flag.Bool("all", false, "run every experiment")
		scale      = flag.Float64("scale", 1.0, "duration scale in (0,1]: 1.0 = paper-sized")
		seriesDir  = flag.String("series", "", "with -run/-all: directory for gnuplot series files; with -scenario: path for the probe-series CSV export")
		jobs       = flag.Int("jobs", runtime.GOMAXPROCS(0), "trial-grid worker pool width")
		seed       = flag.Int64("seed", 0, "base-seed perturbation for every trial (0 = the paper-tuned seeds)")
		engine     = flag.String("engine", "wheel", "event queue engine, \"wheel\" or \"heap\" (outputs must be byte-identical — the crossval escape hatch)")
		trialTmo   = flag.Duration("trial-timeout", 0, "per-trial wall-clock watchdog (0 = off): a stuck trial fails itself instead of wedging the grid")
		out        = flag.String("out", "", "write a structured JSON report to this file (\"-\" = stdout)")
		scen       = flag.String("scenario", "", "run a scenario: bundled name or path to a .json spec")
		traceDir   = flag.String("trace", "", "with -scenario: directory for per-trial dtrace/v1 decision-trace files (enables tracing even when the spec has no trace block)")
		traceCSV   = flag.String("trace-csv", "", "with -scenario: path for the decision-trace CSV debug rendering (same enabling rule as -trace)")
		tlDir      = flag.String("timeline", "", "with -scenario: directory for per-trial Perfetto .trace.json timeline exports (enables the timeline even when the spec has no timeline block)")
		timehist   = flag.Bool("timehist", false, "with -scenario: print a perf-sched-timehist-style per-slice table to stderr (same enabling rule as -timeline)")
		scenList   = flag.Bool("scenarios", false, "list bundled scenarios and exit")
		battleArg  = flag.String("battle", "", "battle scenarios (comma-separated names/paths, or \"all\"): multi-seed replication, CIs, win/loss/tie matrix")
		reps       = flag.Int("replications", 5, "battle seed-replication count per scheduler")
		mdOut      = flag.String("md", "", "write the markdown battle matrix to this file (default: stdout)")
		baseline   = flag.String("baseline", "", "with -battle: write a baseline snapshot here; with -check: the baseline to gate against")
		check      = flag.Bool("check", false, "re-run the -baseline file's scenarios and exit non-zero on significant regressions")
		perf       = flag.Bool("perf", false, "run the engine perf harness and write -perf-out")
		perfOut    = flag.String("perf-out", "BENCH_engine.json", "engine perf harness output file")
		perfIters  = flag.Int("perf-iters", 5, "perf harness repetitions per scenario (best run is reported)")
		perfCheck  = flag.Bool("perf-check", false, "re-time the perf scenarios and fail on events/sec regressions beyond -perf-tolerance vs the committed -perf-out trajectory")
		perfTol    = flag.Float64("perf-tolerance", 0.10, "with -perf-check: allowed events/sec regression fraction")
		perfLabel  = flag.String("perf-label", "", "perf harness trajectory label (default: short git head or \"dev\")")
		perfEngine = flag.String("perf-engine", "wheel", "with -perf: event queue to time, \"wheel\" or \"heap\" (A/B the engines on one machine)")
		cpuProf    = flag.String("cpuprofile", "", "with -perf: write a pprof CPU profile of the timed runs here")
		memProf    = flag.String("memprofile", "", "with -perf: write a pprof heap profile taken after the timed runs here")
		cacheDir   = flag.String("cache", "", "persist the trial-result cache in this directory: re-runs of identical trials load stored results instead of simulating")
		noCache    = flag.Bool("no-cache", false, "disable trial-result memoization (in-grid dedup of identical cells stays)")
		cacheStats = flag.Bool("cache-stats", false, "print trial-cache hit/miss statistics to stderr when the run finishes")
	)
	flag.Parse()

	if *perf || *perfCheck {
		opt := perfOptions{
			iters: *perfIters, label: *perfLabel, engine: *perfEngine,
			cpuProfile: *cpuProf, memProfile: *memProf,
		}
		var err error
		if *perfCheck {
			err = runPerfCheck(*perfOut, opt, *perfTol)
		} else {
			err = runPerf(*perfOut, opt)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "schedbattle: perf: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range core.Experiments() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		fmt.Printf("\nschedulers: %v\n", core.SchedulerKinds())
		return
	}

	if *scenList {
		if err := listScenarios(); err != nil {
			fmt.Fprintf(os.Stderr, "schedbattle: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if !(*scale > 0 && *scale <= 1) {
		fmt.Fprintf(os.Stderr, "schedbattle: -scale %g out of range: must be in (0, 1]\n", *scale)
		os.Exit(2)
	}

	switch *engine {
	case "wheel":
	case "heap":
		sim.SetForceEventHeap(true)
	default:
		fmt.Fprintf(os.Stderr, "schedbattle: -engine %q: must be \"wheel\" or \"heap\"\n", *engine)
		os.Exit(2)
	}
	runner.SetWorkers(*jobs)
	core.SetBaseSeed(*seed)
	core.SetTrialTimeout(*trialTmo)

	// Trial-result memoization is on by default (in-memory; -cache adds the
	// persistent layer). One process-wide cache is shared by every scenario,
	// battle replication, and -check re-run, so repeated cells simulate once.
	// Cached and fresh results are byte-identical by construction — tests
	// pin it — so this cannot change any output, only how fast it appears.
	reportCacheStats := func() {
		if !*cacheStats {
			return
		}
		if c := core.TrialCache(); c != nil {
			fmt.Fprintf(os.Stderr, "schedbattle: cache: %s\n", c.Stats())
		}
		if d := core.DedupedTrials(); d > 0 {
			fmt.Fprintf(os.Stderr, "schedbattle: grid dedup: %d duplicate cells served without simulating\n", d)
		}
	}
	if *noCache {
		if *cacheDir != "" {
			fmt.Fprintln(os.Stderr, "schedbattle: -cache and -no-cache are mutually exclusive")
			os.Exit(2)
		}
	} else {
		c, err := memo.New(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "schedbattle: opening cache %s: %v\n", *cacheDir, err)
			os.Exit(2)
		}
		core.SetTrialCache(c)
	}

	if *check {
		regs, err := runCheck(*baseline, *mdOut)
		reportCacheStats()
		if err != nil {
			fmt.Fprintf(os.Stderr, "schedbattle: check: %v\n", err)
			os.Exit(2)
		}
		if regs > 0 {
			os.Exit(1)
		}
		return
	}

	if *battleArg != "" {
		opt := battle.Options{Replications: *reps, Scale: *scale}
		err := runBattle(*battleArg, opt, *out, *mdOut, *baseline)
		reportCacheStats()
		if err != nil {
			fmt.Fprintf(os.Stderr, "schedbattle: battle: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *scen != "" {
		err := runScenario(*scen, *scale, scenarioOutputs{
			out: *out, series: *seriesDir,
			traceDir: *traceDir, traceCSV: *traceCSV,
			timelineDir: *tlDir, timehist: *timehist,
		})
		reportCacheStats()
		if err != nil {
			fmt.Fprintf(os.Stderr, "schedbattle: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var ids []string
	switch {
	case *all:
		for _, e := range core.Experiments() {
			ids = append(ids, e.ID)
		}
	case *run != "":
		ids = []string{*run}
	default:
		fmt.Fprintln(os.Stderr, "schedbattle: need -run <id>, -all, -scenario, -scenarios, -battle, -check, -perf, or -list")
		flag.Usage()
		os.Exit(2)
	}

	// With -out -, the JSON report owns stdout; the human-readable result
	// text moves to stderr so piping into a JSON consumer just works.
	text := os.Stdout
	if *out == "-" {
		text = os.Stderr
	}

	// Run every requested experiment even if one fails; report a combined
	// non-zero exit at the end so a sweep surfaces all failures at once.
	var (
		failed  []string
		outErr  bool
		reports []scenario.ExperimentReport
	)
	for _, id := range ids {
		res, err := runExperiment(id, *scale, *seriesDir, text)
		if err != nil {
			fmt.Fprintf(os.Stderr, "schedbattle: %s: %v\n", id, err)
			failed = append(failed, id)
			continue
		}
		reports = append(reports, scenario.FromResult(res))
	}
	if *out != "" {
		rep := scenario.ExperimentsReport{
			Schema:      scenario.ExperimentsSchema,
			Scale:       *scale,
			BaseSeed:    *seed,
			Experiments: reports,
		}
		if err := scenario.WriteReport(*out, rep); err != nil {
			fmt.Fprintf(os.Stderr, "schedbattle: writing %s: %v\n", *out, err)
			outErr = true
		} else if *out != "-" {
			fmt.Fprintf(os.Stderr, "schedbattle: wrote %s\n", *out)
		}
	}
	reportCacheStats()
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "schedbattle: %d of %d experiments failed: %v\n", len(failed), len(ids), failed)
	}
	if len(failed) > 0 || outErr {
		os.Exit(1)
	}
}

// experimentIDs lists every registered experiment id.
func experimentIDs() []string {
	var ids []string
	for _, e := range core.Experiments() {
		ids = append(ids, e.ID)
	}
	return ids
}

// runExperiment executes one experiment, printing the text result to text
// and converting a driver panic into an error so one failing artifact
// doesn't abort the rest of a sweep.
func runExperiment(id string, scale float64, seriesDir string, text *os.File) (res *core.Result, err error) {
	e, err := core.ByID(id)
	if err != nil {
		return nil, fmt.Errorf("%w (available: %s)", err, strings.Join(experimentIDs(), ", "))
	}
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("experiment panicked: %v", r)
		}
	}()
	res = e.Run(scale)
	fmt.Fprintln(text, res)
	if seriesDir != "" {
		if err := writeSeries(seriesDir, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// writeSeries dumps every series of a result as "<dir>/<id>-<set>-<name>.dat"
// in gnuplot "time value" format, iterating sets in sorted order so runs are
// reproducible file-for-file.
func writeSeries(dir string, res *core.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	setNames := make([]string, 0, len(res.Series))
	for name := range res.Series {
		setNames = append(setNames, name)
	}
	sort.Strings(setNames)
	for _, setName := range setNames {
		set := res.Series[setName]
		for _, name := range set.Names() {
			s := set.Get(name)
			path := filepath.Join(dir, fmt.Sprintf("%s-%s-%s.dat", res.ID, setName, name))
			if err := os.WriteFile(path, []byte(s.Gnuplot()), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}
