package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/timeline"
)

// testSpec is a tiny two-core scenario exercising every export: series,
// trace, and timeline.
const testSpec = `{
  "name": "cli-test",
  "machine": {"cores": [2]},
  "schedulers": [{"kind": "cfs"}],
  "window": "300ms",
  "workload": [
    {"name": "spin", "loop": {"burst": "1ms"}, "count": 2},
    {"name": "web", "openloop": {"workers": 2, "rate": 300, "service": "100us"}}
  ],
  "series": {"probes": ["runq"]},
  "trace": {},
  "timeline": {}
}`

// TestRunScenarioCreatesParentDirs: every -out/-series/-trace/-trace-csv/
// -timeline destination gets mkdir -p semantics — deeply nested paths
// that do not exist yet must not fail the run after the grid executed.
func TestRunScenarioCreatesParentDirs(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "cli-test.json")
	if err := os.WriteFile(spec, []byte(testSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	o := scenarioOutputs{
		out:         filepath.Join(dir, "a/b/report.json"),
		series:      filepath.Join(dir, "c/d/series.csv"),
		traceDir:    filepath.Join(dir, "e/f/traces"),
		traceCSV:    filepath.Join(dir, "g/h/trace.csv"),
		timelineDir: filepath.Join(dir, "i/j/timelines"),
	}
	if err := runScenario(spec, 1, o); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{o.out, o.series, o.traceCSV} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("export %s missing: %v", p, err)
		}
	}
	for _, d := range []string{o.traceDir, o.timelineDir} {
		ents, err := os.ReadDir(d)
		if err != nil {
			t.Fatalf("export dir %s missing: %v", d, err)
		}
		if len(ents) == 0 {
			t.Errorf("export dir %s is empty", d)
		}
	}

	// The timeline export is the Perfetto JSON the recorder rendered:
	// decodable, schema-stamped, flattened trial name with .trace.json.
	ents, _ := os.ReadDir(o.timelineDir)
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".trace.json") || strings.Contains(e.Name(), "/") {
			t.Fatalf("unexpected timeline file name %q", e.Name())
		}
		data, err := os.ReadFile(filepath.Join(o.timelineDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		tr, err := timeline.DecodeTrace(data)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if tr.OtherData.Schema != timeline.SchemaName {
			t.Fatalf("%s: schema = %q", e.Name(), tr.OtherData.Schema)
		}
	}
}

// TestRunScenarioTimehistOnly: -timehist without -timeline enables the
// recorder with default options (the same enabling rule as -trace).
func TestRunScenarioTimehistOnly(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "plain.json")
	// No timeline block at all — the flag must enable it.
	plain := strings.Replace(testSpec, `"timeline": {}`, `"timeline": null`, 1)
	if err := os.WriteFile(spec, []byte(plain), 0o644); err != nil {
		t.Fatal(err)
	}
	o := scenarioOutputs{
		out:         filepath.Join(dir, "report.json"),
		timelineDir: filepath.Join(dir, "tl"),
	}
	if err := runScenario(spec, 1, o); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(o.timelineDir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("-timeline did not enable the recorder: %v (%d files)", err, len(ents))
	}
}
