// Command schedsim runs one or more applications on a simulated machine
// under a chosen scheduler and prints throughput, latency, and scheduler
// statistics — the free-form exploration companion to schedbattle's fixed
// paper artifacts.
//
// Usage:
//
//	schedsim -sched ule -cores 32 -apps MG -for 20s
//	schedsim -sched cfs -cores 1 -apps fibo,sysbench -for 60s -noise=false
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/trace"
)

func main() {
	var (
		sched    = flag.String("sched", "cfs", "scheduler kind: cfs, ule, fifo, or any registered variant (ule-prevcpu, cfs-nocgroups, ...)")
		cores    = flag.Int("cores", 32, "core count (1, 8, 32 map to paper topologies)")
		appsFlag = flag.String("apps", "", "comma-separated application names (see -listapps)")
		runFor   = flag.Duration("for", 20*time.Second, "simulated duration after warmup")
		seed     = flag.Int64("seed", 42, "PRNG seed")
		noise    = flag.Bool("noise", true, "start per-core kernel worker threads")
		listApps = flag.Bool("listapps", false, "list application names and exit")
	)
	flag.Parse()

	if *listApps {
		for _, n := range schedsim.AppNames() {
			fmt.Println(n)
		}
		return
	}
	if *appsFlag == "" {
		fmt.Fprintln(os.Stderr, "schedsim: need -apps (try -listapps)")
		os.Exit(2)
	}

	m := schedsim.New(schedsim.Config{
		Cores:       *cores,
		Scheduler:   schedsim.SchedulerKind(*sched),
		Seed:        *seed,
		KernelNoise: *noise,
	})
	var instances []*schedsim.AppInstance
	for _, name := range strings.Split(*appsFlag, ",") {
		instances = append(instances, m.Start(schedsim.AppByName(strings.TrimSpace(name))))
	}
	m.RunFor(schedsim.ShellWarmup + *runFor)

	fmt.Printf("scheduler=%s cores=%d simulated=%v\n\n", *sched, *cores, m.Now())
	for _, in := range instances {
		fmt.Printf("%-16s ops=%-10d perf=%.1f ops/s", in.Name, in.Ops(), in.Perf())
		if in.Latency != nil && in.Latency.Count() > 0 {
			fmt.Printf("  latency: mean=%v p99=%v", in.Latency.Mean(), in.Latency.Quantile(0.99))
		}
		fmt.Println()
	}

	var busy, schedT, scan time.Duration
	for _, c := range m.M.Cores {
		busy += c.BusyTime
		schedT += c.SchedTime
		scan += c.ScanTime
	}
	fmt.Printf("\ncpu: busy=%v sched=%v scan=%v (%.2f%% of busy cycles in placement scans)\n",
		busy, schedT, scan, 100*float64(scan)/float64(busy+scan+1))
	fmt.Printf("events: switches=%d wakeups=%d migrations=%d preemptions=%d\n",
		m.M.Trace.Count(trace.Switch), m.M.Trace.Count(trace.Wakeup),
		m.M.Trace.Count(trace.Migrate), m.M.Trace.Count(trace.Preempt))
	fmt.Printf("runnable per core: %v\n", m.RunnableCounts())
}
