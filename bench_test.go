// Benchmarks regenerate every table and figure of the paper's evaluation
// at a reduced scale and report the headline numbers as custom metrics, so
// `go test -bench=.` prints the same rows the paper reports. Paper-sized
// runs: `go run ./cmd/schedbattle -all` (scale 1.0).
package schedsim

import (
	"testing"
	"time"

	"repro/internal/core"
)

// benchScale keeps one benchmark iteration in the seconds range; the
// experiment drivers floor durations so shapes survive.
const benchScale = 0.08

func runExp(b *testing.B, id string, scale float64) *core.Result {
	b.Helper()
	var res *core.Result
	for i := 0; i < b.N; i++ {
		res = RunExperiment(id, scale)
	}
	return res
}

func report(b *testing.B, res *core.Result, label, key, unit string) {
	b.Helper()
	for _, row := range res.Rows {
		if row.Label == label {
			b.ReportMetric(row.Values[key], unit)
			return
		}
	}
	b.Fatalf("row %q not found in %s", label, res.ID)
}

// BenchmarkFig1_CoScheduling: fibo+sysbench cumulative runtimes; metric =
// fibo's CPU seconds while sysbench runs, per scheduler.
func BenchmarkFig1_CoScheduling(b *testing.B) {
	res := runExp(b, "fig1", benchScale)
	report(b, res, "cfs", "fibo_runtime_during_sysbench_s", "cfs-fibo-s")
	report(b, res, "ule", "fibo_runtime_during_sysbench_s", "ule-fibo-s")
}

// BenchmarkFig2_Penalty: ULE interactivity penalties.
func BenchmarkFig2_Penalty(b *testing.B) {
	res := runExp(b, "fig2", benchScale)
	report(b, res, "penalty", "fibo_max", "fibo-maxpenalty")
	report(b, res, "penalty", "sysbench_final_mean", "sysbench-penalty")
}

// BenchmarkFig3_IntraAppStarvation: sysbench-alone thread classes under ULE.
func BenchmarkFig3_IntraAppStarvation(b *testing.B) {
	res := runExp(b, "fig3", benchScale)
	report(b, res, "threads", "interactive", "interactive")
	report(b, res, "threads", "batch_starved", "starved")
}

// BenchmarkFig4_PenaltyClasses: the penalty split of the fig3 threads.
func BenchmarkFig4_PenaltyClasses(b *testing.B) {
	res := runExp(b, "fig4", benchScale)
	report(b, res, "sampled-workers", "low_penalty", "low")
	report(b, res, "sampled-workers", "high_penalty", "high")
}

// BenchmarkTable2_FiboSysbench: the paper's Table 2 rows.
func BenchmarkTable2_FiboSysbench(b *testing.B) {
	res := runExp(b, "table2", benchScale)
	report(b, res, "cfs", "sysbench_tx_per_s", "cfs-tx/s")
	report(b, res, "ule", "sysbench_tx_per_s", "ule-tx/s")
	report(b, res, "cfs", "sysbench_avg_latency_ms", "cfs-lat-ms")
	report(b, res, "ule", "sysbench_avg_latency_ms", "ule-lat-ms")
}

// BenchmarkFig5_SingleCore: the 42-bar single-core suite; metric = mean
// ULE-vs-CFS % difference (paper: +1.5%).
func BenchmarkFig5_SingleCore(b *testing.B) {
	res := runExp(b, "fig5", 0.03)
	var sum float64
	for _, row := range res.Rows {
		sum += row.Values["ule_vs_cfs_pct"]
	}
	b.ReportMetric(sum/float64(len(res.Rows)), "mean-ule-pct")
	report(b, res, "apache", "ule_vs_cfs_pct", "apache-pct")
	report(b, res, "scimark2-(1)", "ule_vs_cfs_pct", "scimark1-pct")
}

// BenchmarkFig6_BalanceConvergence: 512-spinner unpin; metrics = time to
// even balance (ULE) and final spread (CFS never perfect).
func BenchmarkFig6_BalanceConvergence(b *testing.B) {
	res := runExp(b, "fig6", 0.12)
	report(b, res, "ule", "time_to_balance_s", "ule-balance-s")
	report(b, res, "cfs", "final_spread", "cfs-spread")
}

// BenchmarkFig7_CrayWakeChain: c-ray cascading-barrier wake-up times.
func BenchmarkFig7_CrayWakeChain(b *testing.B) {
	res := runExp(b, "fig7", 0.25)
	report(b, res, "ule", "time_to_all_runnable_s", "ule-s")
	report(b, res, "cfs", "time_to_all_runnable_s", "cfs-s")
}

// BenchmarkFig8_Multicore: the 44-bar multicore suite; metric = mean
// ULE-vs-CFS % difference (paper: +2.75%) plus the MG bar (paper: +73%).
func BenchmarkFig8_Multicore(b *testing.B) {
	res := runExp(b, "fig8", 0.03)
	var sum float64
	for _, row := range res.Rows {
		sum += row.Values["ule_vs_cfs_pct"]
	}
	b.ReportMetric(sum/float64(len(res.Rows)), "mean-ule-pct")
	report(b, res, "MG", "ule_vs_cfs_pct", "MG-pct")
}

// BenchmarkFig9_MultiApp: co-scheduled pairs vs running alone on CFS.
func BenchmarkFig9_MultiApp(b *testing.B) {
	res := runExp(b, "fig9", 0.05)
	report(b, res, "blackscholes+ferret/blackscholes", "ule_multi_pct", "blackscholes-pct")
	report(b, res, "blackscholes+ferret/ferret", "ule_multi_pct", "ferret-pct")
}

// BenchmarkOverhead_SchedulerCycles: §6.3 scheduler-time fractions.
func BenchmarkOverhead_SchedulerCycles(b *testing.B) {
	res := runExp(b, "overhead", 0.1)
	report(b, res, "ule", "sysbench_sched_pct", "ule-sysb-pct")
	report(b, res, "cfs", "sysbench_sched_pct", "cfs-sysb-pct")
}

// BenchmarkAblation_ULEWakeupPrevCPU: §6.3 validation.
func BenchmarkAblation_ULEWakeupPrevCPU(b *testing.B) {
	res := runExp(b, "ablation-wakeup", 0.1)
	report(b, res, "sysbench", "ule_ops_s", "ule-tx/s")
	report(b, res, "sysbench", "ule_prevcpu_ops_s", "prevcpu-tx/s")
}

// BenchmarkAblation_ULEBalancerBug: ref [1] stock behaviour.
func BenchmarkAblation_ULEBalancerBug(b *testing.B) {
	res := runExp(b, "ablation-lbbug", 0.15)
	report(b, res, "ule-stock-bug", "final_spread", "bug-spread")
	report(b, res, "ule-fixed", "final_spread", "fixed-spread")
}

// BenchmarkAblation_CFSNoCgroups: pre-2.6.38 per-thread fairness.
func BenchmarkAblation_CFSNoCgroups(b *testing.B) {
	res := runExp(b, "ablation-cgroup", 0.15)
	report(b, res, "fibo_share", "cgroups_on", "on-share")
	report(b, res, "fibo_share", "cgroups_off", "off-share")
}

// BenchmarkAblation_ULEFullPreempt: apache with preemption forced on.
func BenchmarkAblation_ULEFullPreempt(b *testing.B) {
	res := runExp(b, "ablation-preempt", 0.25)
	report(b, res, "apache", "ule", "ule-rps")
	report(b, res, "apache", "ule_full_preempt", "preempt-rps")
}

// BenchmarkSimulatorThroughput measures raw engine speed: simulated
// seconds per wall second on a busy 32-core machine, plus the engine event
// rate (the same numerator `schedbattle -perf` writes to
// BENCH_engine.json).
func BenchmarkSimulatorThroughput(b *testing.B) {
	var events uint64
	for i := 0; i < b.N; i++ {
		m := New(Config{Cores: 32, Scheduler: ULE, Seed: 13, KernelNoise: true})
		app := m.Start(AppByName("sysbench"))
		m.RunFor(ShellWarmup + 3*time.Second)
		if app.Ops() == 0 {
			b.Fatal("no progress")
		}
		events += m.M.EventsProcessed()
	}
	b.ReportMetric(5*float64(b.N), "sim-seconds")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(events)/secs, "events/s")
	}
}
