// Package schedsim is the public API of the reproduction of "The Battle of
// the Schedulers: FreeBSD ULE vs. Linux CFS" (Bouron et al., USENIX ATC
// 2018): a deterministic discrete-event multicore scheduler simulator with
// complete implementations of Linux's CFS and FreeBSD's ULE behind one
// scheduling-class interface, the paper's 37-application workload suite,
// and drivers for every figure and table in the paper's evaluation.
//
// Quickstart:
//
//	m := schedsim.New(schedsim.Config{Cores: 8, Scheduler: schedsim.ULE})
//	app := m.Start(schedsim.AppByName("MG"))
//	m.RunFor(10 * time.Second)
//	fmt.Println(app.Perf(), "ops/s")
//
// Reproduce a paper artifact:
//
//	res := schedsim.RunExperiment("table2", 1.0)
//	fmt.Println(res)
package schedsim

import (
	"time"

	"repro/internal/apps"
	"repro/internal/cfs"
	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/ule"
)

// SchedulerKind selects a scheduling class.
type SchedulerKind = core.SchedulerKind

// Scheduler kinds. The set is open-ended: RegisterScheduler installs new
// classes or ablation variants, and any registered kind is accepted by
// Config.Scheduler and the experiment drivers.
const (
	// CFS is the Linux Completely Fair Scheduler (§2.1 of the paper).
	CFS = core.CFS
	// ULE is the FreeBSD scheduler as ported to Linux (§2.2, §3).
	ULE = core.ULE
	// FIFO is a minimal round-robin baseline scheduler.
	FIFO = core.FIFO

	// ULEPrevCPU places every wakeup on the thread's previous CPU (§6.3).
	ULEPrevCPU = core.ULEPrevCPU
	// ULEFullPreempt enables wakeup preemption for timeshare threads (§5.3).
	ULEFullPreempt = core.ULEFullPreempt
	// ULEStockBug reverts the FreeBSD 11.1 balancer-period fix (ref [1]).
	ULEStockBug = core.ULEStockBug
	// CFSNoCgroups disables group fairness (pre-2.6.38 behaviour).
	CFSNoCgroups = core.CFSNoCgroups
)

// MachineConfig is the low-level machine assembly spec scheduler factories
// receive; see RegisterScheduler.
type MachineConfig = core.MachineConfig

// SchedulerFactory builds a scheduler instance for one machine.
type SchedulerFactory = core.Factory

// RegisterScheduler installs a new scheduling class or ablation variant
// under kind. Registered kinds work everywhere a SchedulerKind does:
// Config.Scheduler, experiment machine configs, and the schedbattle CLI.
// Registering an existing kind is an error.
func RegisterScheduler(kind SchedulerKind, f SchedulerFactory) error {
	return core.Register(kind, f)
}

// SchedulerKinds lists every registered scheduler kind, sorted.
func SchedulerKinds() []SchedulerKind { return core.SchedulerKinds() }

// Config assembles a simulated machine.
type Config struct {
	// Cores selects the machine width: 1, 8, or 32 map onto the paper's
	// topologies (single core, desktop, 4-NUMA-node server); other values
	// build a flat machine.
	Cores int
	// Scheduler picks the scheduling class (default CFS).
	Scheduler SchedulerKind
	// Seed makes runs reproducible (default 42).
	Seed int64
	// KernelNoise starts per-core kworker threads, as on a live system.
	KernelNoise bool
	// CFSParams / ULEParams override scheduler tunables.
	CFSParams *cfs.Params
	ULEParams *ule.Params
	// Cost overrides the micro-architectural cost model.
	Cost *sim.CostModel
	// TraceCapacity retains that many scheduler trace records.
	TraceCapacity int
}

// Machine is a simulated multicore computer running one scheduler.
type Machine struct {
	// M is the underlying simulator, exposed for advanced use (custom
	// programs, probes, tracing).
	M *sim.Machine
}

// New builds a machine.
func New(cfg Config) *Machine {
	if cfg.Scheduler == "" {
		cfg.Scheduler = CFS
	}
	m := core.NewMachine(core.MachineConfig{
		Cores:         cfg.Cores,
		Kind:          cfg.Scheduler,
		Seed:          cfg.Seed,
		CFSParams:     cfg.CFSParams,
		ULEParams:     cfg.ULEParams,
		Cost:          cfg.Cost,
		TraceCapacity: cfg.TraceCapacity,
		KernelNoise:   cfg.KernelNoise,
	})
	return &Machine{M: m}
}

// App is a workload from the paper's suite.
type App = apps.Spec

// AppInstance is a running application.
type AppInstance = apps.Instance

// AppByName finds an application model by its figure label ("MG",
// "sysbench", "apache", "hackb-10", "fibo", ...). It panics on unknown
// names; use AppNames for the catalog.
func AppByName(name string) App {
	s, err := apps.ByName(name)
	if err != nil {
		panic(err)
	}
	return s
}

// AppNames lists the catalog (the paper's Figure 8 bar order).
func AppNames() []string { return apps.Names() }

// Apps returns the single-core suite (Figure 5's 42 bars).
func Apps() []App { return apps.Catalog() }

// Start launches an application on the machine via a shell (so ULE
// inheritance behaves as in the paper) and returns its instance.
func (m *Machine) Start(app App) *AppInstance {
	return app.New(m.M, apps.Env{Cores: m.M.Topo.NCores()})
}

// StartAt launches an application at the given simulated time.
func (m *Machine) StartAt(app App, at time.Duration) *AppInstance {
	return app.New(m.M, apps.Env{Cores: m.M.Topo.NCores(), StartAt: at})
}

// RunFor advances the simulation by d.
func (m *Machine) RunFor(d time.Duration) { m.M.Run(m.M.Now() + d) }

// RunUntil advances until pred holds or max elapses; reports whether pred
// was satisfied.
func (m *Machine) RunUntil(pred func() bool, max time.Duration) bool {
	return m.M.RunUntil(pred, m.M.Now()+max)
}

// Now returns the simulated clock.
func (m *Machine) Now() time.Duration { return m.M.Now() }

// RunnableCounts samples the per-core runnable thread counts (the Figures
// 6/7 heatmap rows).
func (m *Machine) RunnableCounts() []int { return m.M.RunnableCounts() }

// ShellWarmup is the simulated time a freshly built machine needs before
// application launch (the launching shell accumulates the sleep history
// ULE's inheritance depends on).
const ShellWarmup = apps.ShellWarmup

// Experiment is a registered paper artifact (figure/table/ablation).
type Experiment = core.Experiment

// Result is an experiment's output.
type Result = core.Result

// Experiments lists all registered paper artifacts.
func Experiments() []Experiment { return core.Experiments() }

// RunExperiment runs one artifact by id ("fig1".."fig9", "table2",
// "overhead", "ablation-*") at the given scale (1.0 = paper-sized; smaller
// shrinks durations). It panics on unknown ids. The experiment's trial grid
// executes on a worker pool SetJobs wide; results are byte-identical
// whatever the pool width, because every trial owns a private deterministic
// machine and results merge in trial order.
func RunExperiment(id string, scale float64) *Result {
	e, err := core.ByID(id)
	if err != nil {
		panic(err)
	}
	return e.Run(scale)
}

// SetJobs sets how many trials of an experiment grid run concurrently
// (n < 1 restores the default, GOMAXPROCS). Parallelism never changes
// results — only wall-clock time.
func SetJobs(n int) { runner.SetWorkers(n) }

// SetBaseSeed installs a deterministic per-trial seed perturbation for all
// experiment grids. Zero (the default) keeps the paper-tuned seeds;
// any other value re-derives every trial's seed from (base, trial name,
// trial index), for repeat-trial variance studies.
func SetBaseSeed(s int64) { core.SetBaseSeed(s) }
