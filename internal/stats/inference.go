// Inference primitives for multi-seed replication studies: sample
// summaries, seeded deterministic bootstrap confidence intervals, paired
// per-seed deltas, and effect sizes. The battle subsystem turns these into
// win/loss/tie verdicts; single-run scheduler comparisons are
// noise-dominated, so every verdict in a battle matrix rests on the
// interval estimates computed here.
//
// Everything is a pure function of its inputs (including the bootstrap,
// which draws from a private seeded generator), so reports built on top
// stay byte-identical at any worker-pool width.

package stats

import (
	"math"
	"math/bits"
	"sort"
	"sync"
)

// Sample summarises one replicated measurement: n per-seed values of a
// single (scenario, metric, scheduler) cell.
type Sample struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"` // sample (n-1) standard deviation
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// Summarize computes a Sample over xs. The zero Sample is returned for
// empty input; a single value yields Stddev 0.
func Summarize(xs []float64) Sample {
	if len(xs) == 0 {
		return Sample{}
	}
	s := Sample{N: len(xs), Mean: Mean(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs[1:] {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Stddev = SampleStddev(xs)
	return s
}

// SampleStddev returns the sample (n-1 denominator) standard deviation of
// xs, the estimator inference wants; Stddev is its population counterpart.
// Fewer than two values yield 0.
func SampleStddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// splitmix64 is a tiny deterministic generator for bootstrap resampling.
// It is private to each BootstrapMeanCI call, so concurrent cells never
// share state and results depend only on (values, conf, iters, seed).
type splitmix64 struct{ s uint64 }

func (r *splitmix64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n) via Lemire's multiply-shift.
func (r *splitmix64) intn(n int) int {
	hi, _ := bits.Mul64(r.next(), uint64(n))
	return int(hi)
}

// BootstrapMeanCI returns a percentile-bootstrap confidence interval for
// the mean of xs at confidence conf (e.g. 0.95), using iters resamples
// drawn from a generator seeded with seed. The interval is a pure function
// of the arguments: the same values, confidence, iteration count, and seed
// always produce the same bounds, which is what lets battle reports be
// byte-identical at any -jobs width.
//
// Degenerate inputs collapse the interval: no values yields (0, 0), a
// single value (x, x).
func BootstrapMeanCI(xs []float64, conf float64, iters int, seed int64) (lo, hi float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	if n == 1 {
		return xs[0], xs[0]
	}
	if iters < 1 {
		iters = 1
	}
	if conf <= 0 || conf >= 1 {
		conf = 0.95
	}
	rng := splitmix64{s: uint64(seed)}
	scratch := bootScratch(iters)
	defer bootPool.Put(scratch)
	means := (*scratch)[:iters]
	for it := range means {
		var sum float64
		for i := 0; i < n; i++ {
			sum += xs[rng.intn(n)]
		}
		means[it] = sum / float64(n)
	}
	sort.Float64s(means)
	alpha := (1 - conf) / 2
	loIdx := int(alpha * float64(iters))
	hiIdx := int((1-alpha)*float64(iters)) - 1
	if hiIdx < loIdx {
		hiIdx = loIdx
	}
	if hiIdx >= iters {
		hiIdx = iters - 1
	}
	return means[loIdx], means[hiIdx]
}

// bootPool recycles bootstrap resample buffers across BootstrapMeanCI
// calls. A battle matrix computes thousands of intervals at the same iters
// (10k resamples each by default), so without reuse the resample buffer
// dominates the inference pass's allocations. Pooling cannot perturb
// results: every retained slot is overwritten before it is read. The pool
// holds *[]float64 so Get/Put stay allocation-free (a bare slice would be
// boxed on every Put).
var bootPool = sync.Pool{New: func() any { return new([]float64) }}

// bootScratch returns a pooled buffer with capacity for iters slots.
// Callers return it with bootPool.Put once the interval bounds have been
// copied out.
func bootScratch(iters int) *[]float64 {
	p := bootPool.Get().(*[]float64)
	if cap(*p) < iters {
		*p = make([]float64, iters)
	}
	return p
}

// PairedDeltas returns b[i] - a[i] for matched replications: index i of
// both slices must come from the same seed, which the battle replication
// driver guarantees by running every scheduler over the same seed axis.
// The slices must be the same length; mismatched lengths are a programming
// error and panic.
func PairedDeltas(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("stats: PairedDeltas length mismatch")
	}
	d := make([]float64, len(a))
	for i := range a {
		d[i] = b[i] - a[i]
	}
	return d
}

// CohenD returns the one-sample Cohen's d of xs — mean over sample
// stddev — the paired-comparison effect size when xs holds per-seed
// deltas. It is 0 when undefined (fewer than two values, or zero
// variance), keeping reports JSON-marshalable; a significant verdict with
// effect 0 means "perfectly consistent direction, zero spread".
func CohenD(xs []float64) float64 {
	sd := SampleStddev(xs)
	if sd == 0 {
		return 0
	}
	return Mean(xs) / sd
}
