package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should read zero")
	}
	for i := 0; i < 1000; i++ {
		h.Observe(10 * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Mean(); got != 10*time.Millisecond {
		t.Fatalf("Mean = %v", got)
	}
	p50 := h.Quantile(0.5)
	if p50 < 9*time.Millisecond || p50 > 11*time.Millisecond {
		t.Fatalf("p50 = %v, want ~10ms", p50)
	}
	if h.Min() != 10*time.Millisecond || h.Max() != 10*time.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	prev := time.Duration(0)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile %v = %v < previous %v", q, v, prev)
		}
		prev = v
	}
	// ~4% relative bucket precision: p50 should be near 50ms.
	p50 := h.Quantile(0.5)
	if p50 < 45*time.Millisecond || p50 > 55*time.Millisecond {
		t.Fatalf("p50 = %v, want ~50ms", p50)
	}
}

func TestHistogramNegativeAndHuge(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	h.Observe(1000 * time.Hour)
	if h.Count() != 2 {
		t.Fatal("samples lost")
	}
	if h.Quantile(1) <= 0 {
		t.Fatal("max bucket collapsed")
	}
}

func TestHistogramQuantileWithinBounds(t *testing.T) {
	f := func(raw []uint32) bool {
		var h Histogram
		for _, r := range raw {
			h.Observe(time.Duration(r%10_000_000) * time.Microsecond)
		}
		if h.Count() == 0 {
			return true
		}
		q := h.Quantile(0.5)
		// Bucketed quantile must lie within [min lowered a bucket, max].
		return q <= h.Max() && float64(q) >= float64(h.Min())*0.9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, all Histogram
	for i := 1; i <= 50; i++ {
		a.Observe(time.Duration(i) * time.Millisecond)
		all.Observe(time.Duration(i) * time.Millisecond)
	}
	for i := 51; i <= 100; i++ {
		b.Observe(time.Duration(i) * time.Millisecond)
		all.Observe(time.Duration(i) * time.Millisecond)
	}
	a.Merge(&b)
	if a.Count() != all.Count() {
		t.Fatalf("merged count = %d, want %d", a.Count(), all.Count())
	}
	if a.Mean() != all.Mean() {
		t.Fatalf("merged mean = %v, want %v", a.Mean(), all.Mean())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatalf("merged min/max = %v/%v, want %v/%v", a.Min(), a.Max(), all.Min(), all.Max())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.95, 0.99, 1} {
		if got, want := a.Quantile(q), all.Quantile(q); got != want {
			t.Fatalf("merged q%v = %v, want %v", q, got, want)
		}
	}

	// Merging empty or nil histograms changes nothing.
	before := a
	a.Merge(&Histogram{})
	a.Merge(nil)
	if a != before {
		t.Fatal("merge with empty/nil modified histogram")
	}

	// Merging into an empty histogram adopts min/max verbatim.
	var c Histogram
	c.Merge(&b)
	if c.Min() != b.Min() || c.Max() != b.Max() || c.Count() != b.Count() {
		t.Fatalf("empty.Merge: min/max/count = %v/%v/%d", c.Min(), c.Max(), c.Count())
	}
}

func TestCounterSet(t *testing.T) {
	cs := NewCounterSet()
	cs.Get("x").Inc(3)
	cs.Get("x").Inc(2)
	if got := cs.Value("x"); got != 5 {
		t.Fatalf("Value(x) = %d", got)
	}
	if got := cs.Value("missing"); got != 0 {
		t.Fatalf("Value(missing) = %d", got)
	}
	if n := cs.Names(); len(n) != 1 || n[0] != "x" {
		t.Fatalf("Names = %v", n)
	}
}

func TestMeanStddevSpread(t *testing.T) {
	if Mean(nil) != 0 || Stddev(nil) != 0 || MaxMinSpread(nil) != 0 {
		t.Fatal("empty inputs should read zero")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Stddev(xs); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Stddev = %v, want 2", got)
	}
	if got := MaxMinSpread(xs); got != 7 {
		t.Fatalf("Spread = %v", got)
	}
}

// TestHistogramEmptyContract pins the empty-histogram contract: every
// summary accessor returns exactly 0 with no samples — never an
// uninitialised or stale extreme — and a NaN quantile cannot poison the
// bucket walk.
func TestHistogramEmptyContract(t *testing.T) {
	var h Histogram
	if h.Count() != 0 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty summary = mean %v min %v max %v, want all 0", h.Mean(), h.Min(), h.Max())
	}
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2, math.NaN()} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	if got := h.String(); got != "n=0 mean=0s p50=0s p99=0s max=0s" {
		t.Fatalf("empty String = %q", got)
	}

	// Merging empties stays empty; merging an empty into a populated
	// histogram must not disturb its min.
	var o Histogram
	h.Merge(&o)
	h.Merge(nil)
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty merge changed state: %v", h.String())
	}
	h.Observe(5 * time.Millisecond)
	h.Merge(&o)
	if h.Count() != 1 || h.Min() != 5*time.Millisecond {
		t.Fatalf("merge of empty disturbed samples: %v", h.String())
	}

	// A NaN quantile on a populated histogram reads as q=0, the lowest
	// bucket with samples, not garbage.
	if got, want := h.Quantile(math.NaN()), h.Quantile(0); got != want {
		t.Fatalf("Quantile(NaN) = %v, want Quantile(0) = %v", got, want)
	}
}
