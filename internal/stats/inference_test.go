package stats

import (
	"math"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 2, 6, 8})
	if s.N != 4 || s.Mean != 5 || s.Min != 2 || s.Max != 8 {
		t.Fatalf("Summarize = %+v", s)
	}
	// Sample stddev of {4,2,6,8}: variance = (1+9+1+9)/3 = 20/3.
	want := math.Sqrt(20.0 / 3.0)
	if math.Abs(s.Stddev-want) > 1e-12 {
		t.Fatalf("Stddev = %g, want %g", s.Stddev, want)
	}
	if z := Summarize(nil); z != (Sample{}) {
		t.Fatalf("Summarize(nil) = %+v, want zero", z)
	}
}

func TestSampleStddevEdges(t *testing.T) {
	if got := SampleStddev(nil); got != 0 {
		t.Fatalf("SampleStddev(nil) = %g", got)
	}
	if got := SampleStddev([]float64{3}); got != 0 {
		t.Fatalf("SampleStddev(one) = %g", got)
	}
	if got := SampleStddev([]float64{5, 5, 5}); got != 0 {
		t.Fatalf("SampleStddev(const) = %g", got)
	}
}

func TestBootstrapMeanCIDeterministic(t *testing.T) {
	xs := []float64{10, 12, 9, 14, 11}
	lo1, hi1 := BootstrapMeanCI(xs, 0.95, 1000, 42)
	lo2, hi2 := BootstrapMeanCI(xs, 0.95, 1000, 42)
	if lo1 != lo2 || hi1 != hi2 {
		t.Fatalf("same seed diverged: [%g,%g] vs [%g,%g]", lo1, hi1, lo2, hi2)
	}
	if !(lo1 <= hi1) {
		t.Fatalf("inverted interval [%g, %g]", lo1, hi1)
	}
	// The interval must bracket plausible means: within the data range and
	// containing the point estimate for this symmetric-ish sample.
	m := Mean(xs)
	if lo1 < 9 || hi1 > 14 || m < lo1 || m > hi1 {
		t.Fatalf("implausible interval [%g, %g] around mean %g", lo1, hi1, m)
	}
}

func TestBootstrapMeanCIEdges(t *testing.T) {
	if lo, hi := BootstrapMeanCI(nil, 0.95, 100, 1); lo != 0 || hi != 0 {
		t.Fatalf("empty input: [%g, %g]", lo, hi)
	}
	if lo, hi := BootstrapMeanCI([]float64{7}, 0.95, 100, 1); lo != 7 || hi != 7 {
		t.Fatalf("single value: [%g, %g]", lo, hi)
	}
	// Constant data collapses the interval to the constant.
	if lo, hi := BootstrapMeanCI([]float64{3, 3, 3, 3}, 0.95, 100, 1); lo != 3 || hi != 3 {
		t.Fatalf("constant data: [%g, %g]", lo, hi)
	}
}

func TestPairedDeltas(t *testing.T) {
	d := PairedDeltas([]float64{1, 2, 3}, []float64{2, 2, 1})
	if d[0] != 1 || d[1] != 0 || d[2] != -2 {
		t.Fatalf("PairedDeltas = %v", d)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	PairedDeltas([]float64{1}, []float64{1, 2})
}

func TestCohenD(t *testing.T) {
	if got := CohenD([]float64{5, 5, 5}); got != 0 {
		t.Fatalf("zero-variance CohenD = %g, want 0", got)
	}
	if got := CohenD(nil); got != 0 {
		t.Fatalf("empty CohenD = %g, want 0", got)
	}
	// mean 2, sample stddev 2 -> d = 1.
	xs := []float64{0, 2, 4}
	if got := CohenD(xs); math.Abs(got-1) > 1e-12 {
		t.Fatalf("CohenD = %g, want 1", got)
	}
}

// TestBootstrapMeanCIPooledScratchIsDeterministic pins that buffer reuse
// cannot leak state between calls: interleaved calls with different inputs
// (dirtying the pooled buffer) reproduce the exact bounds of fresh calls.
func TestBootstrapMeanCIPooledScratchIsDeterministic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	ys := []float64{100, 200, 300}
	lo1, hi1 := BootstrapMeanCI(xs, 0.95, 1000, 42)
	for i := 0; i < 10; i++ {
		BootstrapMeanCI(ys, 0.9, 500, int64(i)) // dirty the pooled scratch
		lo2, hi2 := BootstrapMeanCI(xs, 0.95, 1000, 42)
		if lo2 != lo1 || hi2 != hi1 {
			t.Fatalf("round %d: [%g, %g] != first call [%g, %g]", i, lo2, hi2, lo1, hi1)
		}
	}
}

// BenchmarkBootstrapMeanCI tracks the inference hot path's allocation
// behavior: with the pooled resample scratch the steady state must not
// allocate per call (b.ReportAllocs makes regressions visible).
func BenchmarkBootstrapMeanCI(b *testing.B) {
	xs := []float64{91.2, 88.7, 90.1, 89.9, 92.4, 87.3, 90.8, 91.5, 89.2, 90.4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BootstrapMeanCI(xs, 0.95, 10000, int64(i))
	}
}
