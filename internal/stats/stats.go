// Package stats provides the scalar measurement primitives the experiment
// harness records into: latency histograms (Table 2), counters
// (preemptions, migrations, scheduler cycles), and sample summaries
// (inference.go). Time series live in internal/probe — the unified
// telemetry layer — which builds its quantile samplers on the Histogram
// here.
//
// Everything here is plain single-threaded data — the simulator is
// sequential, so no locking is needed or wanted.
package stats

import (
	"fmt"
	"math"
	"time"
)

// Histogram is a logarithmic-bucket latency histogram covering 1µs..~100s
// with ~4% relative precision; enough for the paper's ms-scale latencies.
type Histogram struct {
	buckets [bucketCount]uint64
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

const (
	// 16 buckets per octave over 27 octaves starting at 1µs.
	bucketsPerOctave = 16
	octaves          = 27
	bucketCount      = bucketsPerOctave * octaves
	histBase         = time.Microsecond
)

func bucketOf(d time.Duration) int {
	if d < histBase {
		return 0
	}
	l := math.Log2(float64(d) / float64(histBase))
	i := int(l * bucketsPerOctave)
	if i >= bucketCount {
		i = bucketCount - 1
	}
	return i
}

func bucketLow(i int) time.Duration {
	return time.Duration(float64(histBase) * math.Pow(2, float64(i)/bucketsPerOctave))
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketOf(d)]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Empty-histogram contract: every summary accessor — Mean, Min, Max,
// Quantile — returns exactly 0 when Count() == 0, never an uninitialised
// or stale extreme. Callers that must distinguish "no samples" from "all
// samples were zero" check Count() first (latencyReport does, to omit
// empty sections entirely).

// Mean returns the mean latency, or 0 with no samples.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest observed sample, or 0 with no samples.
func (h *Histogram) Min() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observed sample, or 0 with no samples.
func (h *Histogram) Max() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the latency at quantile q in [0,1], using the lower edge
// of the containing bucket. It is 0 with no samples; q is clamped into
// [0,1], and a NaN q reads as 0 (the minimum) rather than poisoning the
// bucket walk.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 || math.IsNaN(q) {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum > target {
			return bucketLow(i)
		}
	}
	return h.max
}

// Merge folds o's samples into h bucket-wise. Quantiles of the merged
// histogram are exact at bucket resolution, as if every sample had been
// observed on h directly; the scenario engine uses this to combine
// per-entry and per-instance latency recordings into one report line.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// String summarises the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}

// Counter is a named monotonically increasing count.
type Counter struct {
	Name string
	N    uint64
}

// Inc adds delta to the counter.
func (c *Counter) Inc(delta uint64) { c.N += delta }

// CounterSet is a keyed collection of counters.
type CounterSet struct {
	byName map[string]*Counter
	order  []string
}

// NewCounterSet returns an empty set.
func NewCounterSet() *CounterSet {
	return &CounterSet{byName: make(map[string]*Counter)}
}

// Get returns the named counter, creating it if needed.
func (cs *CounterSet) Get(name string) *Counter {
	c, ok := cs.byName[name]
	if !ok {
		c = &Counter{Name: name}
		cs.byName[name] = c
		cs.order = append(cs.order, name)
	}
	return c
}

// Value returns the current value of name (0 if never created).
func (cs *CounterSet) Value(name string) uint64 {
	if c, ok := cs.byName[name]; ok {
		return c.N
	}
	return 0
}

// Names returns counter names in creation order.
func (cs *CounterSet) Names() []string { return cs.order }

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// MaxMinSpread returns max(xs) - min(xs); 0 for empty input. Figures 6/7 use
// it as the imbalance measure across per-core thread counts.
func MaxMinSpread(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return hi - lo
}
