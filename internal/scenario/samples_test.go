package scenario

import "testing"

func TestTrialReportMetrics(t *testing.T) {
	tr := TrialReport{
		Throughput: &ThroughputReport{
			OpsPerSec: 1234,
			Entries: []EntryReport{
				{Label: "web", Latency: &LatencyReport{Count: 10, P99US: 900}},
				{Label: "batch"},
			},
		},
		Latency: &LatencyReport{Count: 10, MeanUS: 100, P50US: 90, P95US: 500, P99US: 900, MaxUS: 1500},
	}
	defs := tr.Metrics()
	wantOrder := []string{"ops_per_sec", "mean_us", "p50_us", "p95_us", "p99_us", "max_us", "p99_us[web]"}
	if len(defs) != len(wantOrder) {
		t.Fatalf("metrics = %+v, want %v", defs, wantOrder)
	}
	for i, d := range defs {
		if d.Name != wantOrder[i] {
			t.Fatalf("metric[%d] = %q, want %q", i, d.Name, wantOrder[i])
		}
		wantBetter := Lower
		if d.Name == "ops_per_sec" {
			wantBetter = Higher
		}
		if d.Better != wantBetter {
			t.Fatalf("%s direction = %q, want %q", d.Name, d.Better, wantBetter)
		}
	}
	if v, ok := tr.MetricValue("p99_us[web]"); !ok || v != 900 {
		t.Fatalf("p99_us[web] = %g, %v", v, ok)
	}
	if v, ok := tr.MetricValue("ops_per_sec"); !ok || v != 1234 {
		t.Fatalf("ops_per_sec = %g, %v", v, ok)
	}
	if _, ok := tr.MetricValue("p99_us[batch]"); ok {
		t.Fatal("batch records no latency; metric must be absent")
	}
	if _, ok := tr.MetricValue("nonesuch"); ok {
		t.Fatal("unknown metric must be absent")
	}

	// A report without selected sections exposes nothing.
	bare := TrialReport{}
	if defs := bare.Metrics(); len(defs) != 0 {
		t.Fatalf("bare report metrics = %+v", defs)
	}
}

func TestWithSeedsSharesResolvedReadOnly(t *testing.T) {
	sp, err := Parse("mini.json", []byte(validSpec))
	if err != nil {
		t.Fatal(err)
	}
	clone := sp.WithSeeds([]int64{5, 6})
	if len(clone.Seeds) != 2 || clone.Seeds[0] != 5 {
		t.Fatalf("clone seeds = %v", clone.Seeds)
	}
	if len(sp.Seeds) != 0 {
		t.Fatalf("original seeds mutated: %v", sp.Seeds)
	}
	// A validated source shares its resolution: the clone is born
	// validated, so re-validating is a no-op that never rewrites the
	// shared slice under the original.
	if !clone.validated {
		t.Fatal("clone of a validated spec must stay validated")
	}
	if err := clone.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sp.resolved) != 1 || string(sp.resolved[0].kind) != "cfs" {
		t.Fatalf("original resolved disturbed: %+v", sp.resolved)
	}
	if len(clone.resolved) != 1 || &clone.resolved[0] != &sp.resolved[0] {
		t.Fatalf("clone must share the validated resolution: %+v", clone.resolved)
	}

	// Invalid replacement seeds force the clone back through full
	// validation, with its own resolution slice, and surface the error.
	bad := sp.WithSeeds([]int64{-1})
	if bad.validated || bad.resolved != nil {
		t.Fatalf("clone with invalid seeds must revalidate: validated=%v resolved=%+v", bad.validated, bad.resolved)
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative seed must fail validation")
	}
	if len(sp.resolved) != 1 || string(sp.resolved[0].kind) != "cfs" {
		t.Fatalf("original resolved disturbed by failed clone validation: %+v", sp.resolved)
	}
}
