package scenario

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/dtrace"
	"repro/internal/memo"
	"repro/internal/sim"
	"repro/internal/timeline"
)

// Trial-result memoization: every simulation here is a pure function of its
// inputs, so a sweep cell's TrialReport — out-of-band trace/timeline bytes
// included — can be content-addressed. This file computes the fingerprint
// and the serialization that internal/memo stores.
//
// The fingerprint is built in three stages, because the three input groups
// resolve at different times:
//
//  1. cachePrefix (once per Compile): everything cells share — the workload
//     mix, metric selection, series/trace/timeline/fault blocks, the
//     spec-level window, and the format versions of every byte stream that
//     rides the report (the schema salt).
//  2. cellFingerprint (per cell): the sweep coordinates — cores, resolved
//     scheduler kind + decoded parameter overrides, effective scale, the
//     cell's seed-axis value — plus the process-wide knobs trial outcomes
//     depend on: the CLI base-seed perturbation (it feeds open-loop arrival
//     streams directly, not just via the resolved machine seed) and the
//     engine selection override.
//  3. core.RunTrialsErr folds in the RESOLVED machine seed (memo.Derive)
//     after occurrence-based seed resolution — same-named cells on the
//     derived-seed path draw distinct seeds, so compile time is too early
//     to finalize the key.
//
// Bump memoSaltVersion on any semantic change the referenced schema
// constants don't capture (workload installation order, seed derivation,
// window flooring, ...): every old cache entry then misses, which is the
// only safe failure mode.

// memoSaltVersion versions the fingerprint computation itself.
const memoSaltVersion = "schedbattle/trial-memo/v1"

// cacheSalt folds in the format version of everything a cached entry
// carries: the report schema, the dtrace stream format, the Perfetto
// timeline schema, and the envelope below.
var cacheSalt = memoSaltVersion + "|" + ReportSchema + "|" + dtrace.Magic + "|" + timeline.SchemaName

// cachePrefix hashes the cell-invariant part of the fingerprint. The sweep
// axes (cores, scales, schedulers, seeds) are deliberately absent — they are
// folded per cell, so identical cells reached through different sweep
// compositions (a scenario run, a battle replication, a -check re-run)
// share one fingerprint. A marshalling failure returns ok=false and the
// spec compiles uncacheable; json.Marshal of validated spec blocks cannot
// realistically fail, but a cache must never turn into an error source.
func (s *Spec) cachePrefix() (memo.Key, bool) {
	h := memo.NewHasher(cacheSalt).
		Str(s.Name).
		Bool(s.Machine.KernelNoise).
		Int(int64(s.Window.D()))
	for _, part := range []any{s.Workload, s.Metrics, s.Series, s.Trace, s.Timeline, s.Faults} {
		b, err := json.Marshal(part)
		if err != nil {
			return memo.Key{}, false
		}
		h.Bytes(b)
	}
	return h.Sum(), true
}

// cellFingerprint folds one sweep cell's coordinates and the process-wide
// outcome-affecting knobs into the spec prefix. seed is the cell's
// seed-axis value, not the resolved machine seed — core folds that in
// after resolution.
func cellFingerprint(prefix memo.Key, cores int, rs resolvedSched, scale float64, seed int64) (memo.Key, bool) {
	uleJSON, err := json.Marshal(rs.ule)
	if err != nil {
		return memo.Key{}, false
	}
	cfsJSON, err := json.Marshal(rs.cfs)
	if err != nil {
		return memo.Key{}, false
	}
	return memo.NewHasher(cacheSalt).
		Key(prefix).
		Int(int64(cores)).
		Str(string(rs.kind)).
		Bytes(uleJSON).
		Bytes(cfsJSON).
		Float(scale).
		Int(seed).
		Int(core.BaseSeed()).
		Bool(sim.ForceEventHeap()).
		Sum(), true
}

// The cached serialization of one trial outcome is three length-framed
// sections:
//
//	u64 LE | report JSON           (TrialReport; `json:"-"` drops the streams)
//	u64 LE | TraceData, verbatim
//	u64 LE | TimelineData, verbatim
//
// The report part round-trips through its own JSON form, whose float64
// fields survive exactly (encoding/json emits the shortest representation
// that parses back to the same value), so a decoded report marshals
// byte-identically to a fresh one. The out-of-band streams are framed raw
// rather than embedded in the JSON: the dtrace and Perfetto payloads
// dominate a traced trial's size, and base64ing them would grow every
// entry by a third and make warm-run decode cost scale with stream size
// instead of report size.

// encodeTrialReport serializes one trial outcome for the cache.
func encodeTrialReport(r TrialReport) ([]byte, error) {
	j, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 24+len(j)+len(r.TraceData)+len(r.TimelineData))
	frame := func(b []byte) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(b)))
		buf = append(buf, n[:]...)
		buf = append(buf, b...)
	}
	frame(j)
	frame(r.TraceData)
	frame(r.TimelineData)
	return buf, nil
}

// decodeTrialReport is encodeTrialReport's inverse. The returned report's
// stream fields alias the input buffer (and so, on a memory-cache hit, the
// cache's stored entry): trial results are read-only downstream, which the
// dedup fan-out already relies on.
func decodeTrialReport(b []byte) (TrialReport, error) {
	next := func() ([]byte, error) {
		if len(b) < 8 {
			return nil, fmt.Errorf("scenario: cache envelope truncated")
		}
		n := binary.LittleEndian.Uint64(b)
		b = b[8:]
		if n > uint64(len(b)) {
			return nil, fmt.Errorf("scenario: cache envelope section overruns buffer")
		}
		sec := b[:n:n]
		b = b[n:]
		return sec, nil
	}
	j, err := next()
	if err != nil {
		return TrialReport{}, err
	}
	var r TrialReport
	if err := json.Unmarshal(j, &r); err != nil {
		return TrialReport{}, err
	}
	if r.TraceData, err = next(); err != nil {
		return TrialReport{}, err
	}
	if r.TimelineData, err = next(); err != nil {
		return TrialReport{}, err
	}
	if len(r.TraceData) == 0 {
		r.TraceData = nil
	}
	if len(r.TimelineData) == 0 {
		r.TimelineData = nil
	}
	return r, nil
}
