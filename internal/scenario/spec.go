// Package scenario is the declarative workload layer: JSON scenario specs
// describing machine topology, scheduler kinds with parameter overrides, a
// workload mix (catalog applications plus raw workload primitives and
// open-loop traffic sources), sweep axes, and a metrics selection. Specs are
// validated with precise error positions, compiled into core.Trial grids
// executed on the shared runner pool (byte-identical at any -jobs width),
// and summarised as structured JSON reports. A bundled library of scenarios
// ships embedded in the binary (see library.go); EXPERIMENTS.md documents
// the schema for authoring new ones.
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"
)

// Spec is one declarative scenario. The sweep axes — machine.cores ×
// scales × schedulers × seeds — expand to one trial per cell; every trial
// runs the same workload mix for the (scaled) window and reports the
// selected metrics.
type Spec struct {
	// Name identifies the scenario; it prefixes trial names and so keys
	// derived per-trial seeds.
	Name string `json:"name"`
	// Description is free-form documentation, echoed into reports.
	Description string `json:"description,omitempty"`
	// Machine configures the simulated box (cores is a sweep axis).
	Machine MachineSpec `json:"machine"`
	// Schedulers lists the scheduling classes to sweep; {"kind": "*"}
	// expands to every registered kind.
	Schedulers []SchedSpec `json:"schedulers"`
	// Seeds is the seed sweep axis; empty means one derived-seed run.
	Seeds []int64 `json:"seeds,omitempty"`
	// Scales is the duration-scale sweep axis in (0,1]; empty means [1].
	// The CLI's -scale multiplies each entry.
	Scales []float64 `json:"scales,omitempty"`
	// Window is the simulated measurement window at scale 1.
	Window Dur `json:"window"`
	// Workload is the mix installed on every trial's machine.
	Workload []Entry `json:"workload"`
	// Metrics selects report sections (throughput, latency, counters,
	// utilization); empty selects all.
	Metrics []string `json:"metrics,omitempty"`
	// Series attaches telemetry probes (internal/probe) to every trial
	// and embeds the recorded time series — plus derived transient
	// metrics like convergence_us — in the report.
	Series *SeriesSpec `json:"series,omitempty"`
	// Faults injects deterministic perturbations (internal/fault) into
	// every trial: CPU hotplug, throttling, antagonists, wakeup storms.
	// Times are written at scale 1 and keep their position relative to
	// the window as it scales. With a runq series attached, the report
	// gains recovery_us and degraded_ops_per_sec derived metrics.
	Faults []FaultSpec `json:"faults,omitempty"`
	// Trace attaches a decision-trace recorder (internal/dtrace) to every
	// trial: per-pick/wake/migrate/steal records in the columnar dtrace/v1
	// format (exported by the CLI's -trace/-trace-csv), a trace summary in
	// the report, and the oracle headroom analyzer's headroom_pct derived
	// metric.
	Trace *TraceSpec `json:"trace,omitempty"`
	// Timeline attaches a thread-state flight recorder (internal/timeline)
	// to every trial: per-thread time-in-state accounting, per-wakeup
	// dispatch-latency histograms (run_frac/wait_frac/sleep_frac and
	// sched_latency_p99_us derived metrics), and a Perfetto-compatible
	// trace-event export via the CLI's -timeline/-timehist.
	Timeline *TimelineSpec `json:"timeline,omitempty"`

	// resolved is filled by Validate: scheduler entries with "*" expanded
	// and parameter overrides decoded. Once validated is set the slice is
	// read-only, so spec copies (WithSeeds) share it — the decoded
	// parameter overrides are compiled once however many replications run.
	resolved  []resolvedSched
	validated bool
}

// MachineSpec configures the simulated machine.
type MachineSpec struct {
	// Cores lists the core counts to sweep (1 = single core, 8 = the
	// desktop box, 32 = the paper's NUMA machine, anything else a flat
	// single-node topology — core.MachineConfig.Topology's mapping).
	Cores []int `json:"cores"`
	// KernelNoise starts per-core kworker threads, as the multicore paper
	// experiments do.
	KernelNoise bool `json:"kernelNoise,omitempty"`
}

// SchedSpec selects one scheduler kind, optionally overriding its tunables.
// Overrides are partial JSON objects decoded over the scheduler's defaults;
// durations are nanosecond numbers (Go time.Duration), e.g.
// {"kind": "ule", "ule": {"SliceTicks": 20}}.
type SchedSpec struct {
	Kind string `json:"kind"`
	// ULE overrides ule.Params fields; valid only for "ule*" kinds.
	ULE json.RawMessage `json:"ule,omitempty"`
	// CFS overrides cfs.Params fields; valid only for "cfs*" kinds.
	CFS json.RawMessage `json:"cfs,omitempty"`
}

// Entry is one workload-mix line. Exactly one of App, Loop, Finite, or
// OpenLoop must be set; Count, StartAt, Pinned, and Nice apply to every
// instance the entry spawns (Pinned and Nice to primitives only — catalog
// applications manage their own threads).
type Entry struct {
	// Name labels the entry in reports; defaults to "<kind><index>".
	Name string `json:"name,omitempty"`
	// App names a catalog application (apps.ByName).
	App string `json:"app,omitempty"`
	// Loop runs endless CPU bursts (workload.Loop).
	Loop *LoopSpec `json:"loop,omitempty"`
	// Finite runs N bursts then exits (workload.FiniteCompute).
	Finite *FiniteSpec `json:"finite,omitempty"`
	// OpenLoop serves a generated request stream at a fixed offered load.
	OpenLoop *OpenLoopSpec `json:"openloop,omitempty"`
	// Count is the number of instances (default 1).
	Count int `json:"count,omitempty"`
	// StartAt delays the entry's start (apps additionally floor at the
	// 2 s shell warmup).
	StartAt Dur `json:"startAt,omitempty"`
	// Pinned restricts primitive threads to these cores from birth.
	Pinned []int `json:"pinned,omitempty"`
	// Nice is the primitive threads' nice value.
	Nice int `json:"nice,omitempty"`
}

// SeriesSpec is the scenario's telemetry block: which built-in probes to
// attach (probe.Names lists the namespace), how often to sample, and how
// many points each series may retain before halving its resolution.
type SeriesSpec struct {
	// Probes lists built-in probe names ("runq", "util", "runqlat", ...).
	Probes []string `json:"probes"`
	// Cadence is the sampling period at scale 1 (default 250ms). It is
	// multiplied by the trial's effective scale so the sample count stays
	// roughly constant as windows shrink, floored at 50µs.
	Cadence Dur `json:"cadence,omitempty"`
	// Capacity bounds each series' retained points (default 512, max
	// 65536); on overflow a series halves its resolution deterministically.
	Capacity int `json:"capacity,omitempty"`
}

// TraceSpec is the scenario's decision-trace block. All fields are
// optional; the zero value records every decision with all columns into a
// 32 MiB-capped stream per trial and analyzes headroom at the default
// window. Field semantics and bounds mirror dtrace.Options.
type TraceSpec struct {
	// Sample records every Sample-th decision of each kind (default 1 =
	// every decision).
	Sample int `json:"sample,omitempty"`
	// Window is the headroom analyzer's search window in wake decisions
	// (default 8, max 16).
	Window int `json:"window,omitempty"`
	// Branch is the headroom search's per-decision branching (default 4,
	// max 8).
	Branch int `json:"branch,omitempty"`
	// Columns selects the optional column groups to record
	// (dtrace.ColumnGroups: other, wait_ns, digest, cand). Omitted means
	// all; an explicit empty list keeps only the mandatory columns —
	// which also disables candidate sets, so offline headroom replay
	// (though not the report's online verdict) sees no alternatives.
	Columns []string `json:"columns,omitempty"`
	// MaxBytes caps each trial's encoded trace (default 32 MiB); chunks
	// past the cap are dropped whole and counted in the trace summary.
	MaxBytes int64 `json:"maxBytes,omitempty"`
}

// TimelineSpec is the scenario's thread-state timeline block. All fields
// are optional; the zero value records every thread with all Perfetto
// track groups into a 32 MiB-capped event buffer per trial. Field
// semantics and bounds mirror timeline.Options.
type TimelineSpec struct {
	// Classes restricts recording to these thread classes (workload entry
	// names, app labels, "kworker"). Omitted records every thread.
	Classes []string `json:"classes,omitempty"`
	// MaxBytes caps each trial's event buffer (default 32 MiB); events
	// past the cap are dropped and counted in the timeline summary.
	// Time-in-state accounting and latency histograms stay exact
	// regardless.
	MaxBytes int64 `json:"maxBytes,omitempty"`
	// Perfetto selects the export's track groups (timeline.TrackGroups:
	// slices, instants, counters). Omitted means all.
	Perfetto []string `json:"perfetto,omitempty"`
}

// FaultSpec is one declarative perturbation line (see internal/fault for
// the mechanisms). All durations are written at scale 1; compilation
// rescales them with the window so the perturbation→recovery structure
// survives aggressive CLI -scale values.
type FaultSpec struct {
	// Kind is the fault mechanism: "cpu_off", "throttle", "antagonist",
	// or "wakeup_storm".
	Kind string `json:"kind"`
	// At is when the first activation strikes; must fall inside the
	// window.
	At Dur `json:"at"`
	// Duration is each activation's active window; zero means until the
	// end of the run. Storms are instantaneous and must not set it.
	Duration Dur `json:"duration,omitempty"`
	// Cores targets cpu_off (required — and must leave at least one core
	// online on the smallest swept machine) and throttle (empty = all).
	Cores []int `json:"cores,omitempty"`
	// Factor is the throttle speed factor in [0.01, 1].
	Factor float64 `json:"factor,omitempty"`
	// Threads is the antagonist / storm-sleeper gang size.
	Threads int `json:"threads,omitempty"`
	// Burst is CPU per antagonist iteration / per storm wake. Bursts are
	// work granularity, like workload bursts, so they do not scale.
	Burst Dur `json:"burst,omitempty"`
	// Period separates repeated activations; required iff count > 1.
	Period Dur `json:"period,omitempty"`
	// Count is the number of activations (default 1).
	Count int `json:"count,omitempty"`
	// Nice is the antagonist/storm threads' niceness.
	Nice int `json:"nice,omitempty"`
}

// LoopSpec parameterises an endless compute loop.
type LoopSpec struct {
	Burst     Dur `json:"burst"`
	JitterPct int `json:"jitterPct,omitempty"`
}

// FiniteSpec parameterises a run-to-completion compute job.
type FiniteSpec struct {
	Burst     Dur `json:"burst"`
	N         int `json:"n"`
	JitterPct int `json:"jitterPct,omitempty"`
	IOSleep   Dur `json:"ioSleep,omitempty"`
}

// OpenLoopSpec parameterises an open-loop request-serving entry: Workers
// threads drain a queue fed at the offered load, and every request's
// arrival-to-completion latency is recorded.
type OpenLoopSpec struct {
	// Workers is the serving thread count.
	Workers int `json:"workers"`
	// Rate is the offered load in requests per simulated second. Exactly
	// one of Rate and Interarrival must be set.
	Rate float64 `json:"rate,omitempty"`
	// Interarrival is the mean inter-arrival time (alternative to Rate).
	Interarrival Dur `json:"interarrival,omitempty"`
	// Dist is the arrival distribution: poisson (default), uniform, or
	// periodic.
	Dist string `json:"dist,omitempty"`
	// Service is one request's CPU demand.
	Service Dur `json:"service"`
	// ServiceJitterPct varies Service per request.
	ServiceJitterPct int `json:"serviceJitterPct,omitempty"`
}

// Dur is a JSON duration written as a Go duration string ("250ms", "1.5s").
type Dur time.Duration

// D returns the duration.
func (d Dur) D() time.Duration { return time.Duration(d) }

// UnmarshalJSON implements json.Unmarshaler, accepting only strings.
func (d *Dur) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("duration must be a string like %q, got %s", "250ms", strings.TrimSpace(string(b)))
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("invalid duration %q (want e.g. %q)", s, "250ms")
	}
	*d = Dur(v)
	return nil
}

// MarshalJSON renders the duration back as a string.
func (d Dur) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Error is a scenario-spec problem with a position: either a file location
// ("3:17", line:column, for JSON syntax and type errors) or a spec path
// ("workload[2].pinned[1]", for semantic validation).
type Error struct {
	// File is the spec's source name ("web-tail.json", a path, or the
	// name handed to Parse); may be empty for programmatic specs.
	File string
	// Pos locates the problem: "line:col" or a spec field path.
	Pos string
	// Msg describes the problem.
	Msg string
}

// Error implements error. File positions attach compiler-style
// ("spec.json:3:17: msg"), spec paths with a separating space
// ("spec.json: workload[2].pinned: msg").
func (e *Error) Error() string {
	var b strings.Builder
	if e.File != "" {
		b.WriteString(e.File)
		if len(e.Pos) > 0 && e.Pos[0] >= '0' && e.Pos[0] <= '9' {
			b.WriteString(":")
		} else {
			b.WriteString(": ")
		}
	}
	if e.Pos != "" {
		b.WriteString(e.Pos)
		b.WriteString(": ")
	}
	b.WriteString(e.Msg)
	return b.String()
}

// verr builds a positioned validation error.
func verr(pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Parse decodes and validates a scenario spec. name labels error messages
// (typically the file path or bundled-scenario name). Unknown fields are
// rejected; syntax and type errors carry line:column positions, semantic
// errors the spec path of the offending field.
func Parse(name string, data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, decodeError(name, data, err)
	}
	// A spec is one JSON document; trailing content is a mistake (e.g. two
	// concatenated specs).
	if dec.More() {
		line, col := lineCol(data, dec.InputOffset())
		return nil, &Error{File: name, Pos: fmt.Sprintf("%d:%d", line, col), Msg: "unexpected data after the scenario object"}
	}
	if err := s.Validate(); err != nil {
		var se *Error
		if errors.As(err, &se) {
			se.File = name
		}
		return nil, err
	}
	return &s, nil
}

// decodeError converts an encoding/json error into a positioned *Error.
func decodeError(name string, data []byte, err error) error {
	var syn *json.SyntaxError
	if errors.As(err, &syn) {
		line, col := lineCol(data, syn.Offset)
		return &Error{File: name, Pos: fmt.Sprintf("%d:%d", line, col), Msg: syn.Error()}
	}
	var typ *json.UnmarshalTypeError
	if errors.As(err, &typ) {
		line, col := lineCol(data, typ.Offset)
		msg := fmt.Sprintf("cannot decode %s into %s", typ.Value, typ.Type)
		if typ.Field != "" {
			msg = fmt.Sprintf("field %s: %s", typ.Field, msg)
		}
		return &Error{File: name, Pos: fmt.Sprintf("%d:%d", line, col), Msg: msg}
	}
	// DisallowUnknownFields and custom unmarshalers (Dur) surface plain
	// errors without offsets; strip encoding/json's prefix and keep the
	// message.
	msg := strings.TrimPrefix(err.Error(), "json: ")
	return &Error{File: name, Msg: msg}
}

// lineCol converts a byte offset into 1-based line and column numbers.
func lineCol(data []byte, offset int64) (line, col int) {
	if offset > int64(len(data)) {
		offset = int64(len(data))
	}
	line, col = 1, 1
	for _, b := range data[:offset] {
		if b == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}
