package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/cfs"
	"repro/internal/core"
	"repro/internal/dtrace"
	"repro/internal/probe"
	"repro/internal/timeline"
	"repro/internal/ule"
	"repro/internal/workload"
)

// Metric names a report section a scenario can select.
const (
	MetricThroughput  = "throughput"
	MetricLatency     = "latency"
	MetricCounters    = "counters"
	MetricUtilization = "utilization"
)

// AllMetrics lists every metric selection, in report order.
var AllMetrics = []string{MetricThroughput, MetricLatency, MetricCounters, MetricUtilization}

// resolvedSched is a scheduler sweep cell after validation: a concrete
// registered kind plus decoded parameter overrides.
type resolvedSched struct {
	kind core.SchedulerKind
	ule  *ule.Params
	cfs  *cfs.Params
}

// maxEntries bounds the workload mix, and maxCount the instances one entry
// may spawn — generous for any real scenario, small enough to catch typos
// (a count of 1e9 is a mistake, not a workload).
const (
	maxEntries = 256
	maxCount   = 100000
)

// Series-block bounds: the default retains half a thousand points per
// series (a 12 s window at the default 250 ms-at-scale-1 cadence never
// downsamples), and the cap keeps a wide sweep's report a few MB at most.
const (
	defaultSeriesCapacity = 512
	maxSeriesCapacity     = 65536
)

// editDistance is the Levenshtein distance between a and b — small
// strings only (metric and probe names), so the O(len²) table is fine.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// cleanName rejects characters that would corrupt downstream renderings
// of a name — trial names in CSV rows and series names both embed it, so
// commas, quotes, and control characters are out.
func cleanName(s string) bool {
	for _, r := range s {
		if r == ',' || r == '"' || r < 0x20 {
			return false
		}
	}
	return true
}

// suggest returns a did-you-mean clause for a near-miss of name against
// known, or "" when nothing is plausibly close.
func suggest(name string, known []string) string {
	best, bestD := "", 4 // only suggest within edit distance 3
	for _, k := range known {
		if d := editDistance(name, k); d < bestD {
			best, bestD = k, d
		}
	}
	if best == "" || bestD >= len(name) {
		return ""
	}
	return fmt.Sprintf(" (did you mean %q?)", best)
}

// Validate checks the spec and resolves scheduler kinds and parameter
// overrides. Errors are *Error values positioned at the offending field's
// spec path. Validate is idempotent and caches success: a spec validates
// once, and every later call — each Compile of a replication sweep, every
// trial grid built from a shared bundled spec — returns immediately
// without re-decoding overrides or touching the resolved slice (which
// spec copies may share).
func (s *Spec) Validate() error {
	if s.validated {
		return nil
	}
	if strings.TrimSpace(s.Name) == "" {
		return verr("name", "scenario name is required")
	}
	if !cleanName(s.Name) {
		return verr("name", "name %q must not contain commas, quotes, or control characters", s.Name)
	}
	if s.Window.D() <= 0 {
		return verr("window", "window must be a positive duration")
	}

	if len(s.Machine.Cores) == 0 {
		return verr("machine.cores", "at least one core count is required")
	}
	minCores := s.Machine.Cores[0]
	for i, c := range s.Machine.Cores {
		if c < 1 || c > 1024 {
			return verr(fmt.Sprintf("machine.cores[%d]", i), "core count %d out of range [1, 1024]", c)
		}
		if c < minCores {
			minCores = c
		}
	}

	if err := s.resolveSchedulers(); err != nil {
		return err
	}

	for i, sc := range s.Scales {
		if !(sc > 0 && sc <= 1) {
			return verr(fmt.Sprintf("scales[%d]", i), "scale %g out of range (0, 1]", sc)
		}
	}
	for i, seed := range s.Seeds {
		if seed < 0 {
			return verr(fmt.Sprintf("seeds[%d]", i), "seed %d must be non-negative", seed)
		}
	}

	if len(s.Workload) == 0 {
		return verr("workload", "at least one workload entry is required")
	}
	if len(s.Workload) > maxEntries {
		return verr("workload", "%d entries exceed the limit of %d", len(s.Workload), maxEntries)
	}
	labels := map[string]int{}
	for i := range s.Workload {
		if err := s.Workload[i].validate(fmt.Sprintf("workload[%d]", i), minCores); err != nil {
			return err
		}
		label := s.Workload[i].label(i)
		if prev, dup := labels[label]; dup {
			return verr(fmt.Sprintf("workload[%d].name", i), "label %q already used by workload[%d]", label, prev)
		}
		labels[label] = i
	}

	for i, mName := range s.Metrics {
		ok := false
		for _, known := range AllMetrics {
			if mName == known {
				ok = true
				break
			}
		}
		if !ok {
			return verr(fmt.Sprintf("metrics[%d]", i), "unknown metric %q%s (known: %s)",
				mName, suggest(mName, AllMetrics), strings.Join(AllMetrics, ", "))
		}
	}

	if s.Series != nil {
		if err := s.Series.validate("series"); err != nil {
			return err
		}
	}

	if len(s.Faults) > maxFaults {
		return verr("faults", "%d fault events exceed the limit of %d", len(s.Faults), maxFaults)
	}
	for i := range s.Faults {
		if err := s.Faults[i].validate(fmt.Sprintf("faults[%d]", i), minCores, s.Window.D()); err != nil {
			return err
		}
	}

	if s.Trace != nil {
		if err := s.Trace.validate("trace"); err != nil {
			return err
		}
	}
	if s.Timeline != nil {
		if err := s.Timeline.validate("timeline"); err != nil {
			return err
		}
	}
	s.validated = true
	return nil
}

// maxFaults bounds the fault block; real scenarios use a handful of
// events, so a large count is a generation bug, not a plan.
const maxFaults = 64

// faultKinds lists the fault mechanisms, matching internal/fault's Kind
// constants (kept as strings here so validation owns its own namespace).
var faultKinds = []string{"cpu_off", "throttle", "antagonist", "wakeup_storm"}

// maxFaultActivations bounds count: repeated activations each schedule
// timer events up front, so a huge count is a typo.
const maxFaultActivations = 1024

// validate checks one fault event. minCores bounds core targeting on the
// smallest swept machine; window is the spec's scale-1 window, inside
// which the first activation must fall.
func (f *FaultSpec) validate(pos string, minCores int, window time.Duration) error {
	known := false
	for _, k := range faultKinds {
		if f.Kind == k {
			known = true
			break
		}
	}
	if !known {
		return verr(pos+".kind", "unknown fault kind %q%s (known: %s)",
			f.Kind, suggest(f.Kind, faultKinds), strings.Join(faultKinds, ", "))
	}
	if f.At.D() <= 0 {
		return verr(pos+".at", "at must be a positive duration")
	}
	if f.At.D() >= window {
		return verr(pos+".at", "at %s is outside the %s window — the fault would never fire", f.At.D(), window)
	}
	if f.Duration.D() < 0 {
		return verr(pos+".duration", "duration must not be negative")
	}
	if f.Count < 0 || f.Count > maxFaultActivations {
		return verr(pos+".count", "count %d out of range [1, %d]", f.Count, maxFaultActivations)
	}
	if f.Count > 1 {
		if f.Period.D() <= 0 {
			return verr(pos+".period", "period is required when count > 1")
		}
		if f.Duration.D() > 0 && f.Period.D() < f.Duration.D() {
			return verr(pos+".period", "period %s must not be shorter than duration %s — activations would overlap", f.Period.D(), f.Duration.D())
		}
	} else if f.Period.D() != 0 {
		return verr(pos+".period", "period requires count > 1")
	}
	if f.Nice < -20 || f.Nice > 19 {
		return verr(pos+".nice", "nice %d out of range [-20, 19]", f.Nice)
	}

	// Field applicability per kind, mirroring the style of entry
	// validation: a set-but-ignored field is a spec mistake.
	threaded := f.Kind == "antagonist" || f.Kind == "wakeup_storm"
	if !threaded {
		if f.Threads != 0 {
			return verr(pos+".threads", "threads applies to antagonist and wakeup_storm only")
		}
		if f.Burst.D() != 0 {
			return verr(pos+".burst", "burst applies to antagonist and wakeup_storm only")
		}
		if f.Nice != 0 {
			return verr(pos+".nice", "nice applies to antagonist and wakeup_storm only")
		}
	}
	if f.Kind != "throttle" && f.Factor != 0 {
		return verr(pos+".factor", "factor applies to throttle only")
	}
	if threaded && len(f.Cores) > 0 {
		return verr(pos+".cores", "cores applies to cpu_off and throttle only")
	}

	switch f.Kind {
	case "cpu_off", "throttle":
		if f.Kind == "cpu_off" && len(f.Cores) == 0 {
			return verr(pos+".cores", "cpu_off requires at least one target core")
		}
		seen := map[int]bool{}
		for i, c := range f.Cores {
			cpos := fmt.Sprintf("%s.cores[%d]", pos, i)
			if c < 0 || c >= minCores {
				return verr(cpos, "core %d out of range [0, %d) on the smallest swept machine", c, minCores)
			}
			if seen[c] {
				return verr(cpos, "core %d listed twice", c)
			}
			seen[c] = true
		}
		if f.Kind == "cpu_off" && len(f.Cores) >= minCores {
			return verr(pos+".cores", "offlining %d cores leaves nothing online on the smallest swept machine (%d cores)", len(f.Cores), minCores)
		}
		if f.Kind == "throttle" && !(f.Factor >= 0.01 && f.Factor <= 1) {
			return verr(pos+".factor", "factor %g out of range [0.01, 1]", f.Factor)
		}
	case "antagonist", "wakeup_storm":
		if f.Threads < 1 {
			return verr(pos+".threads", "threads must be at least 1")
		}
		if f.Threads > maxCount {
			return verr(pos+".threads", "threads %d out of range [1, %d]", f.Threads, maxCount)
		}
		if f.Burst.D() <= 0 {
			return verr(pos+".burst", "burst must be a positive duration")
		}
		if f.Kind == "wakeup_storm" && f.Duration.D() != 0 {
			return verr(pos+".duration", "wakeup_storm is instantaneous — duration does not apply")
		}
	}
	return nil
}

// validate checks the series telemetry block: every probe name must be a
// known built-in (near-misses get a did-you-mean), and cadence/capacity
// must be sane.
func (ss *SeriesSpec) validate(pos string) error {
	if len(ss.Probes) == 0 {
		return verr(pos+".probes", "at least one probe is required (known: %s)", strings.Join(probe.Names(), ", "))
	}
	known := probe.Names()
	seen := map[string]bool{}
	for i, name := range ss.Probes {
		ok := false
		for _, k := range known {
			if name == k {
				ok = true
				break
			}
		}
		if !ok {
			return verr(fmt.Sprintf("%s.probes[%d]", pos, i), "unknown probe %q%s (known: %s)",
				name, suggest(name, known), strings.Join(known, ", "))
		}
		if seen[name] {
			return verr(fmt.Sprintf("%s.probes[%d]", pos, i), "probe %q listed twice", name)
		}
		seen[name] = true
	}
	if ss.Cadence.D() < 0 {
		return verr(pos+".cadence", "cadence must not be negative")
	}
	if ss.Capacity < 0 || ss.Capacity > maxSeriesCapacity {
		return verr(pos+".capacity", "capacity %d out of range [1, %d]", ss.Capacity, maxSeriesCapacity)
	}
	return nil
}

// validate checks the decision-trace block. Bounds mirror the ranges
// dtrace.Options enforces at Attach, so a validated spec's recorder
// always attaches; column groups get the same did-you-mean treatment as
// probe names.
func (ts *TraceSpec) validate(pos string) error {
	if ts.Sample < 0 || ts.Sample > 1_000_000 {
		return verr(pos+".sample", "sample %d out of range [1, 1000000]", ts.Sample)
	}
	if ts.Window < 0 || ts.Window > dtrace.MaxWindow {
		return verr(pos+".window", "window %d out of range [1, %d]", ts.Window, dtrace.MaxWindow)
	}
	if ts.Branch < 0 || ts.Branch > dtrace.MaxBranch {
		return verr(pos+".branch", "branch %d out of range [1, %d]", ts.Branch, dtrace.MaxBranch)
	}
	if ts.MaxBytes < 0 || (ts.MaxBytes > 0 && ts.MaxBytes < 4096) {
		return verr(pos+".maxBytes", "maxBytes %d too small (min 4096)", ts.MaxBytes)
	}
	known := dtrace.ColumnGroups()
	seen := map[string]bool{}
	for i, name := range ts.Columns {
		ok := false
		for _, k := range known {
			if name == k {
				ok = true
				break
			}
		}
		if !ok {
			return verr(fmt.Sprintf("%s.columns[%d]", pos, i), "unknown column group %q%s (known: %s)",
				name, suggest(name, known), strings.Join(known, ", "))
		}
		if seen[name] {
			return verr(fmt.Sprintf("%s.columns[%d]", pos, i), "column group %q listed twice", name)
		}
		seen[name] = true
	}
	return nil
}

// validate checks the thread-state timeline block. Bounds mirror what
// timeline.Options enforces at Attach, so a validated spec's recorder
// always attaches; Perfetto track groups get the same did-you-mean
// treatment as probe names and trace columns. Classes are free-form
// (workload entry names, app labels, "kworker") — only shape-checked.
func (tl *TimelineSpec) validate(pos string) error {
	seenClass := map[string]bool{}
	for i, name := range tl.Classes {
		cpos := fmt.Sprintf("%s.classes[%d]", pos, i)
		if name == "" {
			return verr(cpos, "class name must not be empty")
		}
		if seenClass[name] {
			return verr(cpos, "class %q listed twice", name)
		}
		seenClass[name] = true
	}
	if tl.MaxBytes < 0 || (tl.MaxBytes > 0 && tl.MaxBytes < 4096) {
		return verr(pos+".maxBytes", "maxBytes %d too small (min 4096)", tl.MaxBytes)
	}
	known := timeline.TrackGroups()
	seen := map[string]bool{}
	for i, name := range tl.Perfetto {
		ok := false
		for _, k := range known {
			if name == k {
				ok = true
				break
			}
		}
		if !ok {
			return verr(fmt.Sprintf("%s.perfetto[%d]", pos, i), "unknown track group %q%s (known: %s)",
				name, suggest(name, known), strings.Join(known, ", "))
		}
		if seen[name] {
			return verr(fmt.Sprintf("%s.perfetto[%d]", pos, i), "track group %q listed twice", name)
		}
		seen[name] = true
	}
	return nil
}

// resolveSchedulers expands "*" and decodes parameter overrides into
// s.resolved.
func (s *Spec) resolveSchedulers() error {
	if len(s.Schedulers) == 0 {
		return verr("schedulers", "at least one scheduler is required")
	}
	s.resolved = s.resolved[:0]
	registered := core.SchedulerKinds()
	seen := map[core.SchedulerKind]bool{}
	for i, sp := range s.Schedulers {
		pos := fmt.Sprintf("schedulers[%d]", i)
		if sp.Kind == "" {
			return verr(pos+".kind", "scheduler kind is required")
		}
		if sp.Kind == "*" {
			if len(s.Schedulers) != 1 {
				return verr(pos+".kind", `"*" must be the only scheduler entry`)
			}
			if len(sp.ULE) > 0 || len(sp.CFS) > 0 {
				return verr(pos, `parameter overrides cannot be combined with kind "*"`)
			}
			for _, k := range registered {
				s.resolved = append(s.resolved, resolvedSched{kind: k})
			}
			return nil
		}
		kind := core.SchedulerKind(sp.Kind)
		known := false
		for _, k := range registered {
			if k == kind {
				known = true
				break
			}
		}
		if !known {
			return verr(pos+".kind", "unknown scheduler kind %q (registered: %v)", sp.Kind, registered)
		}
		if seen[kind] {
			return verr(pos+".kind", "scheduler kind %q listed twice", sp.Kind)
		}
		seen[kind] = true

		rs := resolvedSched{kind: kind}
		if len(sp.ULE) > 0 {
			if !strings.HasPrefix(sp.Kind, "ule") {
				return verr(pos+".ule", "ULE parameter overrides are invalid for kind %q", sp.Kind)
			}
			p := ule.DefaultParams()
			if err := decodeParams(sp.ULE, &p); err != nil {
				return verr(pos+".ule", "%v", err)
			}
			rs.ule = &p
		}
		if len(sp.CFS) > 0 {
			if !strings.HasPrefix(sp.Kind, "cfs") {
				return verr(pos+".cfs", "CFS parameter overrides are invalid for kind %q", sp.Kind)
			}
			p := cfs.DefaultParams()
			if err := decodeParams(sp.CFS, &p); err != nil {
				return verr(pos+".cfs", "%v", err)
			}
			rs.cfs = &p
		}
		s.resolved = append(s.resolved, rs)
	}
	return nil
}

// decodeParams strictly decodes a partial override object over defaults.
func decodeParams(raw json.RawMessage, into any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("%s", strings.TrimPrefix(err.Error(), "json: "))
	}
	return nil
}

// validate checks one workload entry. minCores is the smallest swept core
// count, the bound pinning must respect on every machine of the sweep.
func (e *Entry) validate(pos string, minCores int) error {
	kinds := 0
	if e.App != "" {
		kinds++
	}
	if e.Loop != nil {
		kinds++
	}
	if e.Finite != nil {
		kinds++
	}
	if e.OpenLoop != nil {
		kinds++
	}
	if kinds != 1 {
		return verr(pos, "exactly one of app, loop, finite, or openloop is required (got %d)", kinds)
	}
	if !cleanName(e.Name) {
		return verr(pos+".name", "name %q must not contain commas, quotes, or control characters", e.Name)
	}
	if e.Count < 0 || e.Count > maxCount {
		return verr(pos+".count", "count %d out of range [1, %d]", e.Count, maxCount)
	}
	if e.StartAt.D() < 0 {
		return verr(pos+".startAt", "startAt must not be negative")
	}
	if e.Nice < -20 || e.Nice > 19 {
		return verr(pos+".nice", "nice %d out of range [-20, 19]", e.Nice)
	}

	if e.App != "" {
		if _, err := apps.ByName(e.App); err != nil {
			return verr(pos+".app", "unknown application %q", e.App)
		}
		if len(e.Pinned) > 0 {
			return verr(pos+".pinned", "pinning applies to primitives only, not app entries")
		}
		if e.Nice != 0 {
			return verr(pos+".nice", "nice applies to primitives only, not app entries")
		}
		return nil
	}

	for i, c := range e.Pinned {
		if c < 0 || c >= minCores {
			return verr(fmt.Sprintf("%s.pinned[%d]", pos, i), "core %d out of range [0, %d) on the smallest swept machine", c, minCores)
		}
	}

	switch {
	case e.Loop != nil:
		if e.Loop.Burst.D() <= 0 {
			return verr(pos+".loop.burst", "burst must be a positive duration")
		}
		if e.Loop.JitterPct < 0 || e.Loop.JitterPct > 100 {
			return verr(pos+".loop.jitterPct", "jitterPct %d out of range [0, 100]", e.Loop.JitterPct)
		}
	case e.Finite != nil:
		if e.Finite.Burst.D() <= 0 {
			return verr(pos+".finite.burst", "burst must be a positive duration")
		}
		if e.Finite.N < 1 {
			return verr(pos+".finite.n", "n must be at least 1")
		}
		if e.Finite.JitterPct < 0 || e.Finite.JitterPct > 100 {
			return verr(pos+".finite.jitterPct", "jitterPct %d out of range [0, 100]", e.Finite.JitterPct)
		}
		if e.Finite.IOSleep.D() < 0 {
			return verr(pos+".finite.ioSleep", "ioSleep must not be negative")
		}
	case e.OpenLoop != nil:
		ol := e.OpenLoop
		if ol.Workers < 1 {
			return verr(pos+".openloop.workers", "workers must be at least 1")
		}
		if (ol.Rate > 0) == (ol.Interarrival.D() > 0) {
			return verr(pos+".openloop", "exactly one of rate and interarrival is required")
		}
		if ol.Rate < 0 {
			return verr(pos+".openloop.rate", "rate must be positive")
		}
		// The mean inter-arrival time is 1s/rate; past 1e9 req/s it
		// truncates to zero nanoseconds.
		if ol.Rate > 1e9 {
			return verr(pos+".openloop.rate", "rate %g exceeds 1e9 requests/second", ol.Rate)
		}
		if ol.Dist != "" && !workload.ValidDist(workload.ArrivalDist(ol.Dist)) {
			return verr(pos+".openloop.dist", "unknown distribution %q (known: poisson, uniform, periodic)", ol.Dist)
		}
		if ol.Service.D() <= 0 {
			return verr(pos+".openloop.service", "service must be a positive duration")
		}
		if ol.ServiceJitterPct < 0 || ol.ServiceJitterPct > 100 {
			return verr(pos+".openloop.serviceJitterPct", "serviceJitterPct %d out of range [0, 100]", ol.ServiceJitterPct)
		}
	}
	return nil
}

// count returns the entry's instance count (default 1).
func (e *Entry) count() int {
	if e.Count <= 0 {
		return 1
	}
	return e.Count
}

// label returns the entry's report label: the explicit name, the app name,
// or "<primitive><index>".
func (e *Entry) label(i int) string {
	if e.Name != "" {
		return e.Name
	}
	switch {
	case e.App != "":
		return e.App
	case e.Loop != nil:
		return fmt.Sprintf("loop%d", i)
	case e.Finite != nil:
		return fmt.Sprintf("finite%d", i)
	default:
		return fmt.Sprintf("openloop%d", i)
	}
}

// wants reports whether metric m is selected (empty Metrics = all).
func (s *Spec) wants(m string) bool {
	if len(s.Metrics) == 0 {
		return true
	}
	for _, sel := range s.Metrics {
		if sel == m {
			return true
		}
	}
	return false
}
