package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/dtrace"
	"repro/internal/fault"
	"repro/internal/ipc"
	"repro/internal/probe"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/timeline"
	"repro/internal/trace"
	"repro/internal/workload"
)

// windowFloor is the minimum measured window for app-free scenarios; specs
// with apps or delayed entries are additionally floored past their latest
// start so aggressive CLI -scale values cannot scale the workload out of
// the window entirely.
const windowFloor = 200 * time.Millisecond

// Compile expands the spec's sweep axes — cores × scales × schedulers ×
// seeds, in that nesting order — into one core.Trial per cell. cliScale
// multiplies every spec scale (both must lie in (0,1]). The trials carry
// everything the report needs; run them with core.RunTrials and hand the
// outcomes to BuildReport.
func (s *Spec) Compile(cliScale float64) ([]core.Trial[TrialReport], error) {
	if !(cliScale > 0 && cliScale <= 1) {
		return nil, fmt.Errorf("scenario: scale %g out of range (0, 1]", cliScale)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []int64{0}
	}
	scales := s.Scales
	if len(scales) == 0 {
		scales = []float64{1}
	}
	// The cell-invariant fingerprint prefix is hashed once per compile;
	// buildTrial folds the sweep coordinates per cell (memo.go).
	prefix, cacheable := s.cachePrefix()
	var trials []core.Trial[TrialReport]
	for _, cores := range s.Machine.Cores {
		for _, sc := range scales {
			for _, rs := range s.resolved {
				for _, seed := range seeds {
					t := s.buildTrial(cores, rs, sc*cliScale, seed)
					if cacheable {
						if key, ok := cellFingerprint(prefix, cores, rs, sc*cliScale, seed); ok {
							t.CacheKey = key
							t.Encode = encodeTrialReport
							t.Decode = decodeTrialReport
						}
					}
					trials = append(trials, t)
				}
			}
		}
	}
	return trials, nil
}

// Run compiles the spec, executes the grid on the shared runner pool, and
// assembles the report. Results are byte-identical at any pool width.
// A panicking trial (scheduler invariant, wall-clock watchdog) fails only
// its own cell: its report slot carries the panic message in Error, the
// rest of the grid completes, and Run returns the report TOGETHER with a
// *TrialFailures error — callers that can tolerate partial results keep
// the report; strict callers (battle verdicts) treat the error as fatal.
func (s *Spec) Run(cliScale float64) (*Report, error) {
	trials, err := s.Compile(cliScale)
	if err != nil {
		return nil, err
	}
	out, errs := core.RunTrialsErr(trials)
	for _, te := range errs {
		// Skeleton report for the failed cell. Only the panic value is
		// rendered — stacks carry host-nondeterministic addresses and must
		// never enter byte-compared reports.
		out[te.Index] = TrialReport{Name: te.Name, Error: fmt.Sprintf("%v", te.Value)}
	}
	rep := s.report(cliScale, out)
	if len(errs) > 0 {
		return rep, &TrialFailures{Total: len(trials), Errs: errs}
	}
	return rep, nil
}

// TrialFailures aggregates the failed cells of a partially-successful
// scenario run. The accompanying report is still complete (failed cells
// carry Error); Errs keep the full TrialError values, stacks included,
// for stderr diagnostics.
type TrialFailures struct {
	Total int
	Errs  []*core.TrialError
}

func (f *TrialFailures) Error() string {
	return fmt.Sprintf("%d of %d trials failed; first: %v", len(f.Errs), f.Total, f.Errs[0])
}

// windowFor scales the measurement window, flooring it so every entry still
// starts comfortably inside it.
func (s *Spec) windowFor(scale float64) time.Duration {
	w := time.Duration(float64(s.Window.D()) * scale)
	floor := windowFloor
	for i := range s.Workload {
		e := &s.Workload[i]
		start := e.StartAt.D()
		if e.App != "" && start < apps.ShellWarmup {
			start = apps.ShellWarmup
		}
		if start+windowFloor > floor {
			floor = start + windowFloor
		}
	}
	if w < floor {
		w = floor
	}
	return w
}

// entryState is the per-trial measurement state of one workload entry,
// created when the trial's Workload closure installs the mix and read by
// its Extract.
type entryState struct {
	label   string
	startAt time.Duration
	// ops counts primitive work units; app entries count through their
	// instances instead.
	ops uint64
	// hists are the entry's own latency histograms (one per open-loop
	// queue instance).
	hists []*stats.Histogram
	// insts are the entry's app instances.
	insts []*apps.Instance
}

// seriesCadenceFloor bounds how small scale can shrink the sampling
// period — below this the sampler itself would dominate the event stream.
const seriesCadenceFloor = 50 * time.Microsecond

// options converts the spec's trace block into recorder options. The
// recorder buffers in memory (Sink nil): the encoded stream rides the
// TrialReport into the CLI exporters, keeping trial execution free of
// filesystem effects (and so byte-identical at any -jobs width).
func (ts *TraceSpec) options() dtrace.Options {
	return dtrace.Options{
		Sample:   ts.Sample,
		Window:   ts.Window,
		Branch:   ts.Branch,
		Columns:  ts.Columns,
		MaxBytes: ts.MaxBytes,
	}
}

// options converts the spec's timeline block into recorder options. Like
// the trace recorder, the timeline buffers in memory: the rendered
// Perfetto bytes ride the TrialReport into the CLI exporters.
func (tl *TimelineSpec) options() timeline.Options {
	return timeline.Options{
		Classes:  tl.Classes,
		MaxBytes: tl.MaxBytes,
		Tracks:   tl.Perfetto,
	}
}

// seriesCadence resolves the effective sampling period of the series
// block at the trial's scale.
func (ss *SeriesSpec) seriesCadence(scale float64) time.Duration {
	cad := ss.Cadence.D()
	if cad <= 0 {
		cad = probe.DefaultCadence
	}
	cad = time.Duration(float64(cad) * scale)
	if cad < seriesCadenceFloor {
		cad = seriesCadenceFloor
	}
	return cad
}

// faultPlan rescales the spec's fault block into absolute event times for
// one trial window. Times keep their position relative to the window
// (ratio = window / spec window), so the perturbation→recovery structure
// survives the window floor and aggressive CLI -scale values; bursts are
// work granularity — like workload bursts — and stay unscaled. nil when
// the spec has no faults.
func (s *Spec) faultPlan(window time.Duration) *fault.Plan {
	if len(s.Faults) == 0 {
		return nil
	}
	ratio := float64(window) / float64(s.Window.D())
	scaled := func(d Dur) time.Duration {
		if d.D() <= 0 {
			return 0
		}
		v := time.Duration(float64(d.D()) * ratio)
		if v < 1 {
			v = 1 // spec'd positive: never collapse to "unset"
		}
		return v
	}
	plan := &fault.Plan{Events: make([]fault.Event, 0, len(s.Faults))}
	for i := range s.Faults {
		f := &s.Faults[i]
		plan.Events = append(plan.Events, fault.Event{
			Kind:     fault.Kind(f.Kind),
			At:       scaled(f.At),
			Duration: scaled(f.Duration),
			Cores:    pinnedCopy(f.Cores),
			Factor:   f.Factor,
			Threads:  f.Threads,
			Burst:    f.Burst.D(),
			Period:   scaled(f.Period),
			Count:    f.Count,
			Nice:     f.Nice,
		})
	}
	return plan
}

// buildTrial assembles the trial for one sweep cell.
func (s *Spec) buildTrial(cores int, rs resolvedSched, scale float64, seed int64) core.Trial[TrialReport] {
	window := s.windowFor(scale)
	name := fmt.Sprintf("%s/c%d/%s/x%s/s%d",
		s.Name, cores, rs.kind, strconv.FormatFloat(scale, 'g', -1, 64), seed)
	states := make([]*entryState, len(s.Workload))
	var att *probe.Attachment
	var rec *dtrace.Recorder
	var tlrec *timeline.Recorder
	plan := s.faultPlan(window)
	var occs []fault.Occurrence
	if plan != nil {
		occs = plan.Occurrences(window)
	}
	deg := &degradedState{}
	return core.Trial[TrialReport]{
		Name: name,
		Machine: core.MachineConfig{
			Cores: cores, Kind: rs.kind, Seed: seed,
			KernelNoise: s.Machine.KernelNoise,
			ULEParams:   rs.ule, CFSParams: rs.cfs,
		},
		Window: window,
		Workload: func(m *sim.Machine) {
			for i := range s.Workload {
				states[i] = s.install(m, i, cores, seed, name)
			}
			if s.Series != nil {
				capacity := s.Series.Capacity
				if capacity <= 0 {
					capacity = defaultSeriesCapacity
				}
				// Validated upstream, so attach cannot fail.
				att = probe.MustAttach(m, probe.Options{
					Probes:   s.Series.Probes,
					Cadence:  s.Series.seriesCadence(scale),
					Capacity: capacity,
				})
			}
			if s.Trace != nil {
				var err error
				rec, err = dtrace.Attach(m, s.Trace.options())
				if err != nil {
					panic(err) // bounds validated upstream
				}
			}
			if s.Timeline != nil {
				var err error
				tlrec, err = timeline.Attach(m, s.Timeline.options())
				if err != nil {
					panic(err) // track names validated upstream
				}
			}
			if plan != nil {
				// Faults install last: a probe sample landing exactly on a
				// fault instant deterministically sees the pre-fault state.
				fault.Install(m, plan)
				deg.arm(m, states, occs, window)
			}
		},
		Extract: func(m *sim.Machine) TrialReport {
			return s.extract(m, states, att, rec, tlrec, trialFaults{occs: occs, deg: deg}, cell{
				name:  name,
				cores: cores, kind: rs.kind, scale: scale, seed: seed, window: window,
			})
		},
	}
}

// trialFaults bundles a trial's fault bookkeeping into extraction.
type trialFaults struct {
	occs []fault.Occurrence
	deg  *degradedState
}

// degradedState measures throughput inside the union of active fault
// intervals: ops snapshots at every merged interval boundary, taken by
// timer events on the machine's own queue, so the measurement is exactly
// as deterministic as the run.
type degradedState struct {
	startOps uint64
	ops      uint64
	seconds  float64
	// openFrom is the start of an interval still active at the window
	// edge (< 0 when none): Extract closes it, since a timer event at
	// exactly the window end is not guaranteed to fire.
	openFrom time.Duration
	states   []*entryState
}

// totalOps sums completed ops across all workload entries at this instant.
func totalOps(states []*entryState) uint64 {
	var n uint64
	for _, st := range states {
		if st.insts != nil {
			for _, in := range st.insts {
				n += in.Ops()
			}
		} else {
			n += st.ops
		}
	}
	return n
}

// mergedIntervals flattens occurrences into sorted, non-overlapping
// [start, end) intervals, dropping instantaneous ones (storms).
func mergedIntervals(occs []fault.Occurrence, window time.Duration) [][2]time.Duration {
	var iv [][2]time.Duration
	for _, o := range occs {
		if o.End > o.At {
			end := o.End
			if end > window {
				end = window
			}
			iv = append(iv, [2]time.Duration{o.At, end})
		}
	}
	sort.Slice(iv, func(a, b int) bool { return iv[a][0] < iv[b][0] })
	var out [][2]time.Duration
	for _, in := range iv {
		if len(out) > 0 && in[0] <= out[len(out)-1][1] {
			if in[1] > out[len(out)-1][1] {
				out[len(out)-1][1] = in[1]
			}
			continue
		}
		out = append(out, in)
	}
	return out
}

// arm schedules the boundary snapshots for every merged degraded interval.
func (d *degradedState) arm(m *sim.Machine, states []*entryState, occs []fault.Occurrence, window time.Duration) {
	d.states = states
	d.openFrom = -1
	for _, in := range mergedIntervals(occs, window) {
		start, end := in[0], in[1]
		m.At(start, func() { d.startOps = totalOps(d.states) })
		if end < window {
			m.At(end, func() {
				d.ops += totalOps(d.states) - d.startOps
				d.seconds += (end - start).Seconds()
			})
		} else {
			d.openFrom = start
		}
	}
}

// close finishes an interval still open at the window edge and returns
// the degraded throughput (ops completed per degraded second); false when
// no degraded time was accumulated (e.g. storm-only plans).
func (d *degradedState) close(window time.Duration) (float64, bool) {
	if d.openFrom >= 0 {
		d.ops += totalOps(d.states) - d.startOps
		d.seconds += (window - d.openFrom).Seconds()
		d.openFrom = -1
	}
	if d.seconds <= 0 {
		return 0, false
	}
	return float64(d.ops) / d.seconds, true
}

// install builds workload entry ei on m and returns its measurement state.
func (s *Spec) install(m *sim.Machine, ei, cores int, seed int64, trialName string) *entryState {
	e := &s.Workload[ei]
	st := &entryState{label: e.label(ei), startAt: e.StartAt.D()}
	count := e.count()
	switch {
	case e.App != "":
		spec, err := apps.ByName(e.App)
		if err != nil {
			panic(err) // validated
		}
		if st.startAt < apps.ShellWarmup {
			st.startAt = apps.ShellWarmup
		}
		for i := 0; i < count; i++ {
			st.insts = append(st.insts, spec.New(m, apps.Env{Cores: cores, StartAt: e.StartAt.D()}))
		}

	case e.Loop != nil:
		for i := 0; i < count; i++ {
			startEntryThread(m, e, fmt.Sprintf("%s-%d", st.label, i), st.label,
				&workload.Loop{
					Burst: e.Loop.Burst.D(), JitterPct: e.Loop.JitterPct,
					OnOp: func() { st.ops++ },
				})
		}

	case e.Finite != nil:
		for i := 0; i < count; i++ {
			startEntryThread(m, e, fmt.Sprintf("%s-%d", st.label, i), st.label,
				&workload.FiniteCompute{
					Burst: e.Finite.Burst.D(), JitterPct: e.Finite.JitterPct,
					N: e.Finite.N, IOSleep: e.Finite.IOSleep.D(),
					OnOp: func() { st.ops++ },
				})
		}

	case e.OpenLoop != nil:
		ol := e.OpenLoop
		mean := ol.Interarrival.D()
		if ol.Rate > 0 {
			mean = time.Duration(float64(time.Second) / ol.Rate)
		}
		dist := workload.ArrivalDist(ol.Dist)
		if dist == "" {
			dist = workload.Poisson
		}
		// Count spawns independent streams: each instance owns its queue,
		// worker pool, and arrival generator, so the offered load scales
		// with count like every other entry kind.
		for inst := 0; inst < count; inst++ {
			q := ipc.NewReqQueue(fmt.Sprintf("%s-%d", st.label, inst))
			st.hists = append(st.hists, q.Latency)
			for i := 0; i < ol.Workers; i++ {
				m.StartThreadCfg(sim.ThreadConfig{
					Name: fmt.Sprintf("%s-%d-w%d", st.label, inst, i), Group: st.label,
					Nice: e.Nice, Pinned: pinnedCopy(e.Pinned),
					Prog: &workload.ServerWorker{Q: q, OnDone: func() { st.ops++ }},
				})
			}
			// The arrival stream is a pure function of (trial, entry,
			// instance): derived from the cell's seed axis value, the CLI
			// base-seed perturbation, and the entry's place in the spec —
			// deterministic at any -jobs width, varied by -seed.
			genSeed := runner.DeriveSeed(seed^core.BaseSeed(),
				fmt.Sprintf("%s/%s#%d", trialName, st.label, inst), ei)
			workload.OpenLoop{
				Q:       q,
				Gen:     workload.NewArrivalGen(dist, mean, genSeed),
				Service: ol.Service.D(), ServiceJitterPct: ol.ServiceJitterPct,
				Start: st.startAt,
			}.StartOn(m)
		}
	}
	return st
}

// startEntryThread launches one primitive thread with the entry's pinning,
// nice value, and start delay.
func startEntryThread(m *sim.Machine, e *Entry, name, group string, prog sim.Program) {
	if d := e.StartAt.D(); d > 0 {
		prog = &delayedProg{d: d, prog: prog}
	}
	m.StartThreadCfg(sim.ThreadConfig{
		Name: name, Group: group, Nice: e.Nice,
		Pinned: pinnedCopy(e.Pinned), Prog: prog,
	})
}

// delayedProg sleeps once, then becomes the wrapped program — a thread-level
// startAt for primitives.
type delayedProg struct {
	d     time.Duration
	prog  sim.Program
	slept bool
}

// Next implements sim.Program.
func (p *delayedProg) Next(ctx *sim.Ctx) sim.Op {
	if !p.slept {
		p.slept = true
		return sim.Sleep(p.d)
	}
	return p.prog.Next(ctx)
}

func pinnedCopy(p []int) []int {
	if len(p) == 0 {
		return nil
	}
	return append([]int(nil), p...)
}

// cell carries one sweep cell's coordinates into extraction.
type cell struct {
	name   string
	cores  int
	kind   core.SchedulerKind
	scale  float64
	seed   int64
	window time.Duration
}

// extract reads the trial's outcome into a TrialReport, honouring the
// spec's metric selection. Everything read here is deterministic state of
// the (single-threaded, seeded) simulation, so reports are byte-identical
// however the surrounding grid was scheduled.
func (s *Spec) extract(m *sim.Machine, states []*entryState, att *probe.Attachment, rec *dtrace.Recorder, tlrec *timeline.Recorder, tf trialFaults, c cell) TrialReport {
	rep := TrialReport{
		Name:      c.name,
		Cores:     c.cores,
		Scheduler: string(c.kind),
		Seed:      c.seed,
		Scale:     c.scale,
		WindowS:   c.window.Seconds(),
		Events:    m.EventsProcessed(),
	}

	merged := &stats.Histogram{}
	if s.wants(MetricThroughput) || s.wants(MetricLatency) {
		tp := &ThroughputReport{}
		for _, st := range states {
			er := EntryReport{Label: st.label}
			hist := st.entryLatency()
			if hist != nil {
				merged.Merge(hist)
			}
			if st.insts != nil {
				for _, in := range st.insts {
					er.Ops += in.Ops()
					er.OpsPerSec += in.Perf()
				}
			} else {
				er.Ops = st.ops
				if elapsed := (c.window - st.startAt).Seconds(); elapsed > 0 {
					er.OpsPerSec = float64(st.ops) / elapsed
				}
			}
			if s.wants(MetricLatency) {
				er.Latency = latencyReport(hist)
			}
			tp.TotalOps += er.Ops
			tp.OpsPerSec += er.OpsPerSec
			tp.Entries = append(tp.Entries, er)
		}
		if s.wants(MetricThroughput) {
			rep.Throughput = tp
		}
	}
	if s.wants(MetricLatency) {
		rep.Latency = latencyReport(merged)
	}

	if s.wants(MetricCounters) {
		rep.Counters = map[string]uint64{
			"switches":    m.Trace.Count(trace.Switch),
			"wakeups":     m.Trace.Count(trace.Wakeup),
			"migrations":  m.Trace.Count(trace.Migrate),
			"preemptions": m.Trace.Count(trace.Preempt),
			"forks":       m.Trace.Count(trace.Fork),
			"exits":       m.Trace.Count(trace.Exit),
			"balances":    m.Trace.Count(trace.Balance),
			"steals":      m.Trace.Count(trace.Steal),
		}
		for _, cn := range m.Counters.Names() {
			rep.Counters[cn] = m.Counters.Value(cn)
		}
	}

	if s.wants(MetricUtilization) {
		rep.CoreUtil = make([]float64, len(m.Cores))
		for i, co := range m.Cores {
			rep.CoreUtil[i] = co.Utilization()
		}
	}

	if att != nil {
		set := att.Set()
		set.Each(func(sr *probe.Series) {
			rep.Series = append(rep.Series, seriesReport(sr))
		})
		rep.Derived = deriveSeriesMetrics(set, c.window, tf.occs)
	}
	if len(tf.occs) > 0 {
		// Echo the resolved activations — Occurrences is a pure function
		// of (plan, window), so every derived recovery metric is auditable
		// from the report alone.
		us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
		for _, o := range tf.occs {
			rep.Faults = append(rep.Faults, FaultReport{
				Kind: string(o.Kind), AtUS: us(o.At), EndUS: us(o.End), Cores: o.Cores,
			})
		}
		if v, ok := tf.deg.close(c.window); ok {
			if rep.Derived == nil {
				rep.Derived = map[string]float64{}
			}
			rep.Derived[MetricDegradedOpsPerSec] = v
		}
	}
	if rec != nil {
		_ = rec.Close() // in-memory sink: Close cannot fail
		hr := rec.Headroom()
		rep.Trace = &TraceReport{Summary: rec.Summary(), Headroom: hr}
		rep.TraceData = rec.Bytes()
		if hr.Wakes > 0 {
			if rep.Derived == nil {
				rep.Derived = map[string]float64{}
			}
			rep.Derived[MetricHeadroomPct] = hr.Pct
		}
	}
	if tlrec != nil {
		tlrec.Close()
		sum := tlrec.Summary()
		rep.Timeline = &TimelineReport{
			Summary: sum,
			Classes: tlrec.Classes(),
			Worst:   tlrec.Worst(),
		}
		// Replay the trial's probe series as Perfetto counter tracks; the
		// export gates them on the spec's track selection.
		var counters []timeline.CounterTrack
		for i := range rep.Series {
			sr := &rep.Series[i]
			counters = append(counters, timeline.CounterTrack{Name: sr.Name, Points: sr.Points})
		}
		rep.TimelineData = tlrec.AppendPerfetto(nil, counters)
		if sum.SpanNS > 0 {
			if rep.Derived == nil {
				rep.Derived = map[string]float64{}
			}
			rep.Derived[MetricRunFrac] = sum.RunFrac
			rep.Derived[MetricWaitFrac] = sum.WaitFrac
			rep.Derived[MetricSleepFrac] = sum.SleepFrac
			if sum.Wakeups > 0 {
				rep.Derived[MetricSchedLatencyP99US] = sum.LatencyP99US
			}
		}
	}
	return rep
}

// entryLatency merges the entry's latency recordings (its own open-loop
// queues plus any app instances'); nil when the entry records none.
func (st *entryState) entryLatency() *stats.Histogram {
	hists := st.hists
	for _, in := range st.insts {
		if in.Latency != nil {
			hists = append(hists, in.Latency)
		}
	}
	switch len(hists) {
	case 0:
		return nil
	case 1:
		return hists[0]
	}
	merged := &stats.Histogram{}
	for _, h := range hists {
		merged.Merge(h)
	}
	return merged
}
