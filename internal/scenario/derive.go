package scenario

// Derived scalar metrics over a trial's recorded time series: the
// transient-behaviour numbers the paper reads off its Figure 6/7 curves,
// reduced to battle-comparable scalars. They are pure functions of the
// embedded series, so a report consumer can recompute (audit) them from
// the report alone.

import (
	"strings"
	"time"

	"repro/internal/probe"
)

// Derived metric names. Both require the "runq" probe.
const (
	// MetricConvergenceUS is the time (µs) of the first sample from
	// which the per-core runnable depth spread (max−min) stays ≤ 1 for
	// the rest of the recording — Figure 6's "time until balanced", with
	// the sustained-convergence reading so a transiently even sample in
	// the middle of an imbalanced run does not count. A run whose last
	// sample is still imbalanced is censored at the window length, so
	// the metric always exists when runq samples do (battle cells stay
	// comparable across seeds); a run that never shows imbalance reads
	// as the first sample time (converged from the start — cells then
	// tie, truthfully).
	MetricConvergenceUS = "convergence_us"
	// MetricStartupP95US is the first sample time (µs) at which total
	// runnable depth reaches 95% of its peak — Figure 7's startup
	// transient ("how long until the machine is loaded").
	MetricStartupP95US = "startup_p95_us"
)

// derivedMetrics lists the derived metric defs in stable namespace order;
// both are time-until metrics, so lower wins.
var derivedMetrics = []MetricDef{
	{Name: MetricConvergenceUS, Better: Lower},
	{Name: MetricStartupP95US, Better: Lower},
}

// deriveSeriesMetrics computes the derived metrics available from the
// recorded set; nil when none apply (no runq probe attached, or it never
// sampled). Values are computed from the retained (possibly downsampled)
// points, so they are exactly reproducible from the embedded series.
func deriveSeriesMetrics(set *probe.Set, window time.Duration) map[string]float64 {
	var cores []*probe.Series
	for _, name := range set.Names() {
		if strings.HasPrefix(name, "runq.core") {
			cores = append(cores, set.Get(name))
		}
	}
	if len(cores) == 0 {
		return nil
	}
	// All runq series are offered in the same sample cycles with the same
	// capacity, so they thin identically; the min length guards the
	// invariant anyway.
	n := cores[0].Len()
	for _, s := range cores {
		if s.Len() < n {
			n = s.Len()
		}
	}
	if n == 0 {
		return nil
	}

	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	out := map[string]float64{}

	peak := 0.0
	totals := make([]float64, n)
	lastImbalanced := -1
	for j := 0; j < n; j++ {
		lo, hi, total := cores[0].Points()[j].V, cores[0].Points()[j].V, 0.0
		for _, s := range cores {
			v := s.Points()[j].V
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			total += v
		}
		if hi-lo > 1 {
			lastImbalanced = j
		}
		totals[j] = total
		if total > peak {
			peak = total
		}
	}
	switch {
	case lastImbalanced == n-1:
		// Still imbalanced at the final sample: censored at the window.
		out[MetricConvergenceUS] = us(window)
	case lastImbalanced >= 0:
		// Sustained convergence starts at the sample after the last
		// imbalanced one.
		out[MetricConvergenceUS] = us(cores[0].Points()[lastImbalanced+1].T)
	default:
		// Never imbalanced: converged from the first sample on.
		out[MetricConvergenceUS] = us(cores[0].Points()[0].T)
	}
	if peak > 0 {
		for j := 0; j < n; j++ {
			if totals[j] >= 0.95*peak {
				out[MetricStartupP95US] = us(cores[0].Points()[j].T)
				break
			}
		}
	}
	return out
}
