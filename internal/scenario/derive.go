package scenario

// Derived scalar metrics over a trial's recorded time series: the
// transient-behaviour numbers the paper reads off its Figure 6/7 curves,
// reduced to battle-comparable scalars. They are pure functions of the
// embedded series (plus the report's echoed fault activations), so a
// report consumer can recompute (audit) them from the report alone.

import (
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/fault"
	"repro/internal/probe"
)

// Derived metric names. The first three require the "runq" probe.
const (
	// MetricConvergenceUS is the time (µs) of the first sample from
	// which the per-core runnable depth spread (max−min) stays ≤ 1 for
	// the rest of the recording — Figure 6's "time until balanced", with
	// the sustained-convergence reading so a transiently even sample in
	// the middle of an imbalanced run does not count. A run whose last
	// sample is still imbalanced is censored at the window length, so
	// the metric always exists when runq samples do (battle cells stay
	// comparable across seeds); a run that never shows imbalance reads
	// as the first sample time (converged from the start — cells then
	// tie, truthfully).
	MetricConvergenceUS = "convergence_us"
	// MetricStartupP95US is the first sample time (µs) at which total
	// runnable depth reaches 95% of its peak — Figure 7's startup
	// transient ("how long until the machine is loaded").
	MetricStartupP95US = "startup_p95_us"
	// MetricRecoveryUS is the mean time (µs) from each fault edge —
	// activation and deactivation both perturb placement — until the
	// runnable-depth spread re-converges (sustained ≤ 1) within that
	// edge's segment of the run. Still-imbalanced segments are censored
	// at the segment end, so the metric always exists when faults and
	// runq samples do; an edge the machine shrugs off reads as 0.
	MetricRecoveryUS = "recovery_us"
	// MetricDegradedOpsPerSec is throughput measured inside the union
	// of active fault intervals only — what the machine still delivers
	// while degraded. Absent for storm-only plans (no degraded time).
	MetricDegradedOpsPerSec = "degraded_ops_per_sec"
	// MetricHeadroomPct is the oracle headroom analyzer's verdict over
	// the trial's decision trace (requires the trace block): the
	// percentage of modeled wakeup queueing a clairvoyant placer could
	// have avoided. 0 means queue-optimal placement; lower is better.
	MetricHeadroomPct = "headroom_pct"
	// MetricSchedLatencyP99US is the p99 wakeup→dispatch latency (µs)
	// over every recorded wakeup of the trial (requires the timeline
	// block) — the per-wakeup tail the paper's latency-sensitive
	// workloads feel directly.
	MetricSchedLatencyP99US = "sched_latency_p99_us"
	// MetricRunFrac is the fraction of aggregate thread lifetime spent
	// on-CPU (timeline block). Higher means more of the offered work
	// actually ran.
	MetricRunFrac = "run_frac"
	// MetricWaitFrac is the fraction of aggregate thread lifetime spent
	// runnable-but-waiting (timeline block) — the scheduler-induced
	// queueing share. Lower is better.
	MetricWaitFrac = "wait_frac"
	// MetricSleepFrac is the fraction of aggregate thread lifetime spent
	// voluntarily sleeping/blocked (timeline block). Under a fixed
	// offered load, more sleep means requests finished sooner.
	MetricSleepFrac = "sleep_frac"
)

// derivedMetrics lists the derived metric defs in stable namespace order.
var derivedMetrics = []MetricDef{
	{Name: MetricConvergenceUS, Better: Lower},
	{Name: MetricStartupP95US, Better: Lower},
	{Name: MetricRecoveryUS, Better: Lower},
	{Name: MetricDegradedOpsPerSec, Better: Higher},
	{Name: MetricHeadroomPct, Better: Lower},
	{Name: MetricSchedLatencyP99US, Better: Lower},
	{Name: MetricRunFrac, Better: Higher},
	{Name: MetricWaitFrac, Better: Lower},
	{Name: MetricSleepFrac, Better: Higher},
}

// offlineAt reports whether core is inside any cpu_off activation at t.
// Offline cores sample a runnable depth of 0 (they are drained), so the
// spread computations exclude them for the offline interval — otherwise
// any loaded machine would read as imbalanced for the whole outage.
func offlineAt(occs []fault.Occurrence, core int, t time.Duration) bool {
	for _, o := range occs {
		if o.Kind != fault.CPUOff || t < o.At || t >= o.End {
			continue
		}
		for _, c := range o.Cores {
			if c == core {
				return true
			}
		}
	}
	return false
}

// deriveSeriesMetrics computes the derived metrics available from the
// recorded set; nil when none apply (no runq probe attached, or it never
// sampled). Values are computed from the retained (possibly downsampled)
// points, so they are exactly reproducible from the embedded series.
func deriveSeriesMetrics(set *probe.Set, window time.Duration, occs []fault.Occurrence) map[string]float64 {
	type coreSeries struct {
		id int
		s  *probe.Series
	}
	var cores []coreSeries
	for _, name := range set.Names() {
		if id, ok := strings.CutPrefix(name, "runq.core"); ok {
			n, err := strconv.Atoi(id)
			if err != nil {
				continue
			}
			cores = append(cores, coreSeries{id: n, s: set.Get(name)})
		}
	}
	if len(cores) == 0 {
		return nil
	}
	// All runq series are offered in the same sample cycles with the same
	// capacity, so they thin identically; the min length guards the
	// invariant anyway.
	n := cores[0].s.Len()
	for _, s := range cores {
		if s.s.Len() < n {
			n = s.s.Len()
		}
	}
	if n == 0 {
		return nil
	}

	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	out := map[string]float64{}

	peak := 0.0
	ts := make([]time.Duration, n)
	spreads := make([]float64, n)
	totals := make([]float64, n)
	lastImbalanced := -1
	for j := 0; j < n; j++ {
		t := cores[0].s.Points()[j].T
		ts[j] = t
		lo, hi, total, online := 0.0, 0.0, 0.0, 0
		for _, cs := range cores {
			v := cs.s.Points()[j].V
			total += v
			if len(occs) > 0 && offlineAt(occs, cs.id, t) {
				continue
			}
			if online == 0 || v < lo {
				lo = v
			}
			if online == 0 || v > hi {
				hi = v
			}
			online++
		}
		spreads[j] = hi - lo
		if spreads[j] > 1 {
			lastImbalanced = j
		}
		totals[j] = total
		if total > peak {
			peak = total
		}
	}
	switch {
	case lastImbalanced == n-1:
		// Still imbalanced at the final sample: censored at the window.
		out[MetricConvergenceUS] = us(window)
	case lastImbalanced >= 0:
		// Sustained convergence starts at the sample after the last
		// imbalanced one.
		out[MetricConvergenceUS] = us(ts[lastImbalanced+1])
	default:
		// Never imbalanced: converged from the first sample on.
		out[MetricConvergenceUS] = us(ts[0])
	}
	if peak > 0 {
		for j := 0; j < n; j++ {
			if totals[j] >= 0.95*peak {
				out[MetricStartupP95US] = us(ts[j])
				break
			}
		}
	}
	if len(occs) > 0 {
		if v, ok := recoveryUS(ts, spreads, occs, window); ok {
			out[MetricRecoveryUS] = v
		}
	}
	return out
}

// recoveryUS measures re-convergence after each fault edge. The run is
// cut into segments at every perturbation instant (each activation and
// each in-window deactivation); within a segment the recovery time is
// the sustained-convergence point relative to the segment start — the
// same last-imbalanced-sample reading convergence_us uses, scoped to the
// segment. Segments without samples are skipped; false when none were
// measurable.
func recoveryUS(ts []time.Duration, spreads []float64, occs []fault.Occurrence, window time.Duration) (float64, bool) {
	var instants []time.Duration
	seen := map[time.Duration]bool{}
	add := func(t time.Duration) {
		if t < window && !seen[t] {
			seen[t] = true
			instants = append(instants, t)
		}
	}
	for _, o := range occs {
		add(o.At)
		if o.End > o.At {
			add(o.End)
		}
	}
	sort.Slice(instants, func(a, b int) bool { return instants[a] < instants[b] })

	var sumUS float64
	measured := 0
	for i, p := range instants {
		segEnd := window
		if i+1 < len(instants) {
			segEnd = instants[i+1]
		}
		first, last, lastImb := -1, -1, -1
		for j := range ts {
			if ts[j] < p {
				continue
			}
			if ts[j] >= segEnd {
				break
			}
			if first < 0 {
				first = j
			}
			last = j
			if spreads[j] > 1 {
				lastImb = j
			}
		}
		if first < 0 {
			continue // segment shorter than the sampling cadence
		}
		var rec time.Duration
		switch {
		case lastImb == last:
			rec = segEnd - p // still imbalanced: censored at segment end
		case lastImb >= 0:
			rec = ts[lastImb+1] - p
		default:
			rec = 0 // never disturbed past the threshold
		}
		sumUS += float64(rec) / float64(time.Microsecond)
		measured++
	}
	if measured == 0 {
		return 0, false
	}
	return sumUS / float64(measured), true
}
