package scenario

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/probe"
	"repro/internal/runner"
)

// seriesSpec is a small scenario with a full series block: pinned loops
// that unbalance the runqueues, an open-loop stream for runqlat, and a
// tight capacity so downsampling actually engages.
const seriesSpec = `{
  "name": "mini-series",
  "machine": {"cores": [4]},
  "schedulers": [{"kind": "cfs"}, {"kind": "ule"}],
  "window": "2s",
  "workload": [
    {"name": "spin", "loop": {"burst": "2ms"}, "count": 6, "pinned": [0]},
    {"name": "web", "openloop": {"workers": 2, "rate": 500, "service": "200us"}}
  ],
  "series": {"probes": ["runq", "util", "runqlat", "live"], "cadence": "20ms", "capacity": 64}
}`

func TestSeriesBlockEndToEnd(t *testing.T) {
	sp, err := Parse("mini-series.json", []byte(seriesSpec))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sp.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Trials {
		tr := &rep.Trials[i]
		if len(tr.Series) == 0 {
			t.Fatalf("%s: no series embedded", tr.Name)
		}
		names := map[string]bool{}
		for _, sr := range tr.Series {
			names[sr.Name] = true
			if len(sr.Points) == 0 {
				t.Errorf("%s: series %s empty", tr.Name, sr.Name)
			}
			// Capacity bound holds after downsampling.
			if len(sr.Points) > 64 {
				t.Errorf("%s: series %s has %d points, capacity 64", tr.Name, sr.Name, len(sr.Points))
			}
		}
		for _, want := range []string{"runq.core0", "runq.core3", "util.core0", "live.threads"} {
			if !names[want] {
				t.Errorf("%s: series %s missing", tr.Name, want)
			}
		}
		// A 2s window at 20ms cadence offers 100 samples into capacity
		// 64: the runq series must have halved at least once.
		if n := len(tr.Series[0].Points); n > 64 || n < 40 {
			t.Errorf("%s: runq.core0 has %d points, want downsampled ~50", tr.Name, n)
		}
		if tr.Derived == nil {
			t.Fatalf("%s: no derived metrics", tr.Name)
		}
		conv, ok := tr.Derived[MetricConvergenceUS]
		if !ok {
			t.Fatalf("%s: convergence_us missing: %v", tr.Name, tr.Derived)
		}
		// Six pinned spinners on core 0 cannot be balanced at the first
		// sample; convergence is observed later or censored at the window.
		if conv <= 0 || conv > 2_000_000 {
			t.Errorf("%s: convergence_us = %g out of (0, window]", tr.Name, conv)
		}
		if v, ok := tr.Derived[MetricStartupP95US]; !ok || v <= 0 {
			t.Errorf("%s: startup_p95_us = %g, %v", tr.Name, v, ok)
		}
		// Derived metrics join the battle metric namespace.
		found := false
		for _, md := range tr.Metrics() {
			if md.Name == MetricConvergenceUS && md.Better == Lower {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: convergence_us not in Metrics()", tr.Name)
		}
	}
}

// TestSeriesDeterminismAcrossJobs is the telemetry byte-identity gate: a
// bundled scenario with a series block (web-tail) marshals — report and
// CSV export both — byte-identically at -jobs 1 and -jobs 8.
func TestSeriesDeterminismAcrossJobs(t *testing.T) {
	sp, err := LoadBuiltin("web-tail")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Series == nil {
		t.Fatal("web-tail must carry a series block")
	}
	marshal := func() ([]byte, []byte) {
		rep, err := sp.Run(0.05)
		if err != nil {
			t.Fatal(err)
		}
		out, err := MarshalReport(rep)
		if err != nil {
			t.Fatal(err)
		}
		return out, rep.SeriesCSV()
	}
	var j1, j8, csv1, csv8 []byte
	runner.WithWorkers(1, func() { j1, csv1 = marshal() })
	runner.WithWorkers(8, func() { j8, csv8 = marshal() })
	if !bytes.Equal(j1, j8) {
		t.Fatal("series report differs between -jobs 1 and -jobs 8")
	}
	if !bytes.Equal(csv1, csv8) {
		t.Fatal("series CSV differs between -jobs 1 and -jobs 8")
	}
	if !bytes.Contains(j1, []byte(`"convergence_us"`)) {
		t.Fatal("web-tail report carries no convergence_us")
	}
	if !bytes.HasPrefix(csv1, []byte("trial,series,t_us,value\n")) || bytes.Count(csv1, []byte("\n")) < 10 {
		t.Fatalf("series CSV malformed:\n%s", csv1[:120])
	}
}

// TestSeriesSpecValidation pins the positioned series-block errors,
// including the did-you-mean suggestions of the probe and metric
// namespaces.
func TestSeriesSpecValidation(t *testing.T) {
	base := `{"name": "x", "window": "1s", "machine": {"cores": [2]},
	  "schedulers": [{"kind": "cfs"}], "workload": [{"loop": {"burst": "1ms"}}]`
	cases := []struct {
		name string
		tail string
		want string
	}{
		{
			name: "unknown-probe-did-you-mean",
			tail: `, "series": {"probes": ["runqs"]}}`,
			want: `bad.json: series.probes[0]: unknown probe "runqs" (did you mean "runq"?) (known: live, migrations, preemptions, runq, runqlat, steals, ticks, util)`,
		},
		{
			name: "unknown-probe-far",
			tail: `, "series": {"probes": ["zzzzzzz"]}}`,
			want: `bad.json: series.probes[0]: unknown probe "zzzzzzz" (known: live, migrations, preemptions, runq, runqlat, steals, ticks, util)`,
		},
		{
			name: "duplicate-probe",
			tail: `, "series": {"probes": ["runq", "runq"]}}`,
			want: `bad.json: series.probes[1]: probe "runq" listed twice`,
		},
		{
			name: "empty-probes",
			tail: `, "series": {"probes": []}}`,
			want: `bad.json: series.probes: at least one probe is required (known: live, migrations, preemptions, runq, runqlat, steals, ticks, util)`,
		},
		{
			name: "capacity-range",
			tail: `, "series": {"probes": ["runq"], "capacity": 100000}}`,
			want: `bad.json: series.capacity: capacity 100000 out of range [1, 65536]`,
		},
		{
			name: "metric-did-you-mean",
			tail: `, "metrics": ["latencyy"]}`,
			want: `bad.json: metrics[0]: unknown metric "latencyy" (did you mean "latency"?) (known: throughput, latency, counters, utilization)`,
		},
	}
	for _, c := range []struct{ name, in, want string }{
		{
			name: "comma-in-scenario-name",
			in:   `{"name": "web,frontend", "window": "1s", "machine": {"cores": [2]}, "schedulers": [{"kind": "cfs"}], "workload": [{"loop": {"burst": "1ms"}}]}`,
			want: `bad.json: name: name "web,frontend" must not contain commas, quotes, or control characters`,
		},
		{
			name: "comma-in-entry-name",
			in:   `{"name": "x", "window": "1s", "machine": {"cores": [2]}, "schedulers": [{"kind": "cfs"}], "workload": [{"name": "a,b", "loop": {"burst": "1ms"}}]}`,
			want: `bad.json: workload[0].name: name "a,b" must not contain commas, quotes, or control characters`,
		},
	} {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse("bad.json", []byte(c.in))
			if err == nil {
				t.Fatal("spec parsed without error")
			}
			if got := err.Error(); got != c.want {
				t.Fatalf("error mismatch:\n got: %s\nwant: %s", got, c.want)
			}
		})
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse("bad.json", []byte(base+c.tail))
			if err == nil {
				t.Fatal("spec parsed without error")
			}
			if got := err.Error(); got != c.want {
				t.Fatalf("error mismatch:\n got: %s\nwant: %s", got, c.want)
			}
		})
	}
}

// TestSeriesCadenceScaling: the sampling period scales with the trial's
// effective scale and floors, so sample counts stay roughly constant as
// windows shrink.
func TestSeriesCadenceScaling(t *testing.T) {
	ss := &SeriesSpec{}
	if got := ss.seriesCadence(1); got != 250*time.Millisecond {
		t.Fatalf("default cadence = %v", got)
	}
	if got := ss.seriesCadence(0.1); got != 25*time.Millisecond {
		t.Fatalf("scaled cadence = %v", got)
	}
	if got := ss.seriesCadence(0.0000001); got != 50*time.Microsecond {
		t.Fatalf("floored cadence = %v", got)
	}
	ss.Cadence = Dur(time.Second)
	if got := ss.seriesCadence(0.5); got != 500*time.Millisecond {
		t.Fatalf("explicit cadence scaled = %v", got)
	}
}

// TestDeriveSeriesMetrics drives the derivation directly with synthetic
// series: convergence at the first balanced sample, censoring at the
// window, and the 95%-of-peak startup reading.
func TestDeriveSeriesMetrics(t *testing.T) {
	mkSet := func(series ...[]float64) *probe.Set {
		set := probe.NewSet(64)
		for ci, vals := range series {
			for i, v := range vals {
				set.Sample(fmt.Sprintf("runq.core%d", ci), time.Duration(i+1)*time.Second, v)
			}
		}
		return set
	}

	// Samples at 1s..4s: spread 4,2,0,0 → converges at 3s; total peaks
	// at 4 (samples 1s and 3s) → 95% of peak first reached at 1s.
	d := deriveSeriesMetrics(mkSet([]float64{4, 3, 2, 1}, []float64{0, 1, 2, 1}), 10*time.Second, nil)
	if got := d[MetricConvergenceUS]; got != 3_000_000 {
		t.Fatalf("convergence_us = %g, want 3e6", got)
	}
	if got := d[MetricStartupP95US]; got != 1_000_000 {
		t.Fatalf("startup_p95_us = %g, want 1e6", got)
	}

	// Never balanced: censored at the window.
	d = deriveSeriesMetrics(mkSet([]float64{4, 4}, []float64{0, 0}), 10*time.Second, nil)
	if got := d[MetricConvergenceUS]; got != 10_000_000 {
		t.Fatalf("censored convergence_us = %g, want window 1e7", got)
	}

	// Sustained semantics: a transiently balanced sample inside an
	// imbalanced run does not count — spread 0,4,0 converges at 3s, not
	// the 1s a first-crossing reading would claim.
	d = deriveSeriesMetrics(mkSet([]float64{1, 4, 1}, []float64{1, 0, 1}), 10*time.Second, nil)
	if got := d[MetricConvergenceUS]; got != 3_000_000 {
		t.Fatalf("sustained convergence_us = %g, want 3e6", got)
	}

	// Never imbalanced: converged from the first sample.
	d = deriveSeriesMetrics(mkSet([]float64{1, 1}, []float64{1, 1}), 10*time.Second, nil)
	if got := d[MetricConvergenceUS]; got != 1_000_000 {
		t.Fatalf("always-balanced convergence_us = %g, want first sample 1e6", got)
	}

	// No runq series at all: nothing derived.
	other := probe.NewSet(8)
	other.Sample("live.threads", time.Second, 1)
	if d := deriveSeriesMetrics(other, time.Second, nil); d != nil {
		t.Fatalf("derived from non-runq series: %v", d)
	}
}
