package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/dtrace"
	"repro/internal/probe"
	"repro/internal/stats"
	"repro/internal/timeline"
)

// ReportSchema versions the scenario report format.
const ReportSchema = "schedbattle/scenario-report/v1"

// ExperimentsSchema versions the registered-experiment report format
// (schedbattle -run/-all with -out).
const ExperimentsSchema = "schedbattle/experiments-report/v1"

// Report is a scenario run's structured output: one TrialReport per sweep
// cell, in compile order. Every field is a pure function of (spec, scale,
// base seed), so marshalled reports are byte-identical at any -jobs width.
type Report struct {
	Schema      string        `json:"schema"`
	Scenario    string        `json:"scenario"`
	Description string        `json:"description,omitempty"`
	BaseSeed    int64         `json:"base_seed"`
	CLIScale    float64       `json:"cli_scale"`
	Trials      []TrialReport `json:"trials"`
}

// TrialReport is one sweep cell's outcome.
type TrialReport struct {
	// Name is the trial's grid name ("web-tail/c8/ule/x0.05/s1").
	Name      string  `json:"name"`
	Cores     int     `json:"cores"`
	Scheduler string  `json:"scheduler"`
	Seed      int64   `json:"seed"`
	Scale     float64 `json:"scale"`
	WindowS   float64 `json:"window_s"`
	// Events is the engine's dispatched-event count, a cheap determinism
	// fingerprint of the whole simulation.
	Events uint64 `json:"events"`

	Throughput *ThroughputReport `json:"throughput,omitempty"`
	// Latency merges every latency-recording entry of the workload mix.
	Latency  *LatencyReport    `json:"latency,omitempty"`
	Counters map[string]uint64 `json:"counters,omitempty"`
	// CoreUtil is busy/(busy+sched+idle) per core.
	CoreUtil []float64 `json:"core_utilization,omitempty"`
	// Series holds the probe recordings the spec's series block selected,
	// in probe creation order.
	Series []SeriesReport `json:"series,omitempty"`
	// Derived carries scalar metrics computed from the series (e.g.
	// convergence_us); they join the battle metric namespace. Map
	// marshalling sorts keys, so reports stay byte-stable.
	Derived map[string]float64 `json:"derived,omitempty"`
	// Faults echoes the trial's resolved fault activations (window-scaled,
	// one per activation) so the recovery metrics are auditable from the
	// report alone.
	Faults []FaultReport `json:"faults,omitempty"`
	// Trace summarises the trial's decision trace when the spec's trace
	// block (or the CLI's -trace) attached a recorder.
	Trace *TraceReport `json:"trace,omitempty"`
	// TraceData carries the trial's encoded dtrace/v1 stream to the CLI
	// exporters. It is deliberately excluded from the JSON report — the
	// stream is binary and can be large — but, being a pure function of
	// the trial, it shares the report's byte-identity across -jobs widths.
	TraceData []byte `json:"-"`
	// Timeline summarises the trial's thread-state timeline when the
	// spec's timeline block (or the CLI's -timeline/-timehist) attached a
	// flight recorder.
	Timeline *TimelineReport `json:"timeline,omitempty"`
	// TimelineData carries the trial's rendered Perfetto trace-event JSON
	// to the CLI exporters, out of band like TraceData: excluded from the
	// report but byte-identical across -jobs widths.
	TimelineData []byte `json:"-"`
	// Error is set — and every other section absent — when the trial
	// panicked: the recovered panic value's message only, never the stack
	// (stacks carry host-nondeterministic addresses).
	Error string `json:"error,omitempty"`
}

// TraceReport summarises one trial's decision trace: the recorder's
// counters plus the oracle headroom analyzer's verdict. The headroom Pct
// also lands in Derived[MetricHeadroomPct] (battle metric namespace) when
// any wake decisions were analyzed.
type TraceReport struct {
	Summary  dtrace.Summary  `json:"summary"`
	Headroom dtrace.Headroom `json:"headroom"`
}

// TimelineReport summarises one trial's thread-state timeline: the
// recorder's whole-trial summary (time-in-state fractions, dispatch
// latency percentiles — the run_frac/wait_frac/sleep_frac and
// sched_latency_p99_us values in Derived come from here), per-class
// accounting, and the worst wakeup→dispatch latencies.
type TimelineReport struct {
	Summary timeline.Summary        `json:"summary"`
	Classes []timeline.ClassAccount `json:"classes,omitempty"`
	Worst   []timeline.WakeLatency  `json:"worst,omitempty"`
}

// FaultReport is one resolved fault activation: [at_us, end_us) is its
// active interval (equal for instantaneous storms), clamped to the window.
type FaultReport struct {
	Kind  string  `json:"kind"`
	AtUS  float64 `json:"at_us"`
	EndUS float64 `json:"end_us"`
	Cores []int   `json:"cores,omitempty"`
}

// SeriesReport is one recorded time series: [t_us, value] pairs in time
// order, exactly the retained (possibly downsampled) points.
type SeriesReport struct {
	Name   string       `json:"name"`
	Points [][2]float64 `json:"points"`
}

// seriesReport converts one probe series; times are microseconds.
func seriesReport(s *probe.Series) SeriesReport {
	sr := SeriesReport{Name: s.Name, Points: make([][2]float64, 0, s.Len())}
	for _, p := range s.Points() {
		sr.Points = append(sr.Points, [2]float64{float64(p.T) / float64(time.Microsecond), p.V})
	}
	return sr
}

// ThroughputReport aggregates completed work, overall and per entry.
type ThroughputReport struct {
	TotalOps  uint64        `json:"total_ops"`
	OpsPerSec float64       `json:"ops_per_sec"`
	Entries   []EntryReport `json:"entries"`
}

// EntryReport is one workload entry's slice of the outcome.
type EntryReport struct {
	Label     string         `json:"label"`
	Ops       uint64         `json:"ops"`
	OpsPerSec float64        `json:"ops_per_sec"`
	Latency   *LatencyReport `json:"latency,omitempty"`
}

// LatencyReport summarises a latency distribution in microseconds.
type LatencyReport struct {
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P95US  float64 `json:"p95_us"`
	P99US  float64 `json:"p99_us"`
	MaxUS  float64 `json:"max_us"`
}

// latencyReport converts a histogram; nil (or empty) histograms yield nil
// so the report omits sections with nothing to say.
func latencyReport(h *stats.Histogram) *LatencyReport {
	if h == nil || h.Count() == 0 {
		return nil
	}
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	return &LatencyReport{
		Count:  h.Count(),
		MeanUS: us(h.Mean()),
		P50US:  us(h.Quantile(0.50)),
		P95US:  us(h.Quantile(0.95)),
		P99US:  us(h.Quantile(0.99)),
		MaxUS:  us(h.Max()),
	}
}

// report assembles the scenario's Report from executed trial outcomes.
func (s *Spec) report(cliScale float64, trials []TrialReport) *Report {
	return &Report{
		Schema:      ReportSchema,
		Scenario:    s.Name,
		Description: s.Description,
		BaseSeed:    core.BaseSeed(),
		CLIScale:    cliScale,
		Trials:      trials,
	}
}

// SeriesCSV renders every trial's embedded series as one CSV document
// ("trial,series,t_us,value" rows, trial then series then time order) —
// the `schedbattle -scenario ... -series out.csv` export for plotting.
// The rendering is a pure function of the report, so it inherits the
// report's byte-identity across -jobs widths. A report without series
// yields just the header line.
func (r *Report) SeriesCSV() []byte {
	var b bytes.Buffer
	b.WriteString("trial,series,t_us,value\n")
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for i := range r.Trials {
		tr := &r.Trials[i]
		for _, sr := range tr.Series {
			for _, p := range sr.Points {
				fmt.Fprintf(&b, "%s,%s,%s,%s\n", tr.Name, sr.Name, g(p[0]), g(p[1]))
			}
		}
	}
	return b.Bytes()
}

// TraceCSV renders every trial's decision trace as one CSV document
// ("trial," + the dtrace CSV columns; trial then record order) — the
// `schedbattle -scenario ... -trace-csv out.csv` export. Like SeriesCSV
// it is a pure function of the report, so it inherits the report's
// byte-identity across -jobs widths. Trials without traces contribute no
// rows; a traceless report yields just the header line.
func (r *Report) TraceCSV() ([]byte, error) {
	out := append([]byte("trial,"+dtrace.CSVHeader), '\n')
	for i := range r.Trials {
		tr := &r.Trials[i]
		if len(tr.TraceData) == 0 {
			continue
		}
		dec, err := dtrace.Decode(tr.TraceData)
		if err != nil {
			return nil, fmt.Errorf("trial %s: decoding trace: %w", tr.Name, err)
		}
		out = dec.AppendCSV(out, tr.Name)
	}
	return out, nil
}

// ExperimentsReport is the structured form of registered-experiment output
// (schedbattle -run/-all -out): the same rows the text renderer prints,
// plus run metadata. Worker-pool width is deliberately absent — report
// bytes must not depend on -jobs.
type ExperimentsReport struct {
	Schema      string             `json:"schema"`
	Scale       float64            `json:"scale"`
	BaseSeed    int64              `json:"base_seed"`
	Experiments []ExperimentReport `json:"experiments"`
}

// ExperimentReport is one experiment's rows and notes.
type ExperimentReport struct {
	ID    string          `json:"id"`
	Title string          `json:"title"`
	Rows  []ExperimentRow `json:"rows"`
	Notes []string        `json:"notes,omitempty"`
	// Series lists the result's series-set names; the data itself goes to
	// -series files, not the report.
	Series []string `json:"series,omitempty"`
}

// ExperimentRow mirrors core.Row. Values marshals with sorted keys; Order
// preserves the driver's printing order.
type ExperimentRow struct {
	Label  string             `json:"label"`
	Order  []string           `json:"order,omitempty"`
	Values map[string]float64 `json:"values"`
}

// FromResult converts an experiment result into its report form.
func FromResult(r *core.Result) ExperimentReport {
	er := ExperimentReport{ID: r.ID, Title: r.Title, Notes: r.Notes}
	for _, row := range r.Rows {
		er.Rows = append(er.Rows, ExperimentRow{Label: row.Label, Order: row.Order, Values: row.Values})
	}
	for name := range r.Series {
		er.Series = append(er.Series, name)
	}
	sort.Strings(er.Series)
	return er
}

// MarshalReport renders any report as indented JSON with a trailing
// newline — the one serialisation both the scenario engine and the
// experiment -out path share, so byte-identity guarantees hold across both.
func MarshalReport(v any) ([]byte, error) {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// WriteReport writes a marshalled report to path; "" or "-" means stdout.
func WriteReport(path string, v any) error {
	out, err := MarshalReport(v)
	if err != nil {
		return err
	}
	if path == "" || path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}
