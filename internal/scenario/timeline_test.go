package scenario

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/timeline"
)

// timelineSpec is a small scenario with a full timeline block: an
// open-loop stream for wakeups plus background loops so running slices,
// waits, and migrations all occur.
const timelineSpec = `{
  "name": "mini-timeline",
  "machine": {"cores": [4]},
  "schedulers": [{"kind": "cfs"}, {"kind": "ule"}],
  "window": "2s",
  "workload": [
    {"name": "spin", "loop": {"burst": "2ms"}, "count": 6},
    {"name": "web", "openloop": {"workers": 2, "rate": 500, "service": "200us"}}
  ],
  "timeline": {}
}`

func TestTimelineBlockEndToEnd(t *testing.T) {
	sp, err := Parse("mini-timeline.json", []byte(timelineSpec))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sp.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Trials {
		tr := &rep.Trials[i]
		if tr.Timeline == nil {
			t.Fatalf("%s: no timeline summary", tr.Name)
		}
		sum := tr.Timeline.Summary
		if sum.Threads == 0 || sum.Slices == 0 || sum.Wakeups == 0 {
			t.Fatalf("%s: empty timeline summary: %+v", tr.Name, sum)
		}
		if f := sum.RunFrac + sum.WaitFrac + sum.SleepFrac; f < 0.999999 || f > 1.000001 {
			t.Fatalf("%s: state fractions sum to %g", tr.Name, f)
		}
		if len(tr.Timeline.Classes) == 0 || len(tr.Timeline.Worst) == 0 {
			t.Fatalf("%s: classes/worst missing", tr.Name)
		}
		if len(tr.TimelineData) == 0 {
			t.Fatalf("%s: no timeline data", tr.Name)
		}
		dec, err := timeline.DecodeTrace(tr.TimelineData)
		if err != nil {
			t.Fatalf("%s: decoding timeline: %v", tr.Name, err)
		}
		if len(dec.Events) == 0 {
			t.Fatalf("%s: empty trace-event list", tr.Name)
		}
		// The four timeline metrics join Derived with battle directions.
		for _, m := range []struct {
			name   string
			better string
		}{
			{MetricSchedLatencyP99US, Lower},
			{MetricRunFrac, Higher},
			{MetricWaitFrac, Lower},
			{MetricSleepFrac, Higher},
		} {
			if _, ok := tr.Derived[m.name]; !ok {
				t.Fatalf("%s: %s missing from Derived: %v", tr.Name, m.name, tr.Derived)
			}
			found := false
			for _, md := range tr.Metrics() {
				if md.Name == m.name && md.Better == m.better {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: %s not in Metrics() with direction %s", tr.Name, m.name, m.better)
			}
		}
	}
}

// TestTimelineDeterminismAcrossJobs is the byte-identity gate the ISSUE
// names: the bundled web-tail scenario's per-trial Perfetto exports are
// byte-identical at -jobs 1 and -jobs 8.
func TestTimelineDeterminismAcrossJobs(t *testing.T) {
	sp, err := LoadBuiltin("web-tail")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Timeline == nil {
		t.Fatal("web-tail must carry a timeline block")
	}
	collect := func() map[string][]byte {
		rep, err := sp.Run(0.05)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string][]byte{}
		for i := range rep.Trials {
			out[rep.Trials[i].Name] = rep.Trials[i].TimelineData
		}
		return out
	}
	var j1, j8 map[string][]byte
	runner.WithWorkers(1, func() { j1 = collect() })
	runner.WithWorkers(8, func() { j8 = collect() })
	if len(j1) == 0 {
		t.Fatal("no trials carried timeline data")
	}
	for name, d1 := range j1 {
		if len(d1) == 0 {
			t.Fatalf("%s: empty timeline data", name)
		}
		if !bytes.Equal(d1, j8[name]) {
			t.Errorf("%s: timeline bytes differ between -jobs 1 and -jobs 8", name)
		}
	}
}

// TestTimelineEngineCrossValidation: identical timeline bytes whether the
// sim runs on the timer wheel or the binary event heap.
func TestTimelineEngineCrossValidation(t *testing.T) {
	sp, err := Parse("mini-timeline.json", []byte(timelineSpec))
	if err != nil {
		t.Fatal(err)
	}
	collect := func() map[string][]byte {
		rep, err := sp.Run(0.25)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string][]byte{}
		for i := range rep.Trials {
			out[rep.Trials[i].Name] = rep.Trials[i].TimelineData
		}
		return out
	}
	wheel := collect()
	sim.SetForceEventHeap(true)
	defer sim.SetForceEventHeap(false)
	heap := collect()
	for name, w := range wheel {
		if len(w) == 0 {
			t.Fatalf("%s: empty timeline data", name)
		}
		if !bytes.Equal(w, heap[name]) {
			t.Errorf("%s: timeline bytes differ between wheel and heap engines", name)
		}
	}
}

// TestTimelineSpecValidation: the timeline block gets the same positioned
// did-you-mean validation as the series and trace blocks.
func TestTimelineSpecValidation(t *testing.T) {
	base := `{
	  "name": "v",
	  "machine": {"cores": [2]},
	  "schedulers": [{"kind": "cfs"}],
	  "window": "1s",
	  "workload": [{"name": "spin", "loop": {"burst": "1ms"}}],
	  "timeline": %s
	}`
	cases := []struct {
		name, block, pos, msg string
	}{
		{"unknown track", `{"perfetto": ["slics"]}`, "timeline.perfetto[0]", `did you mean "slices"`},
		{"track twice", `{"perfetto": ["slices", "slices"]}`, "timeline.perfetto[1]", "listed twice"},
		{"tiny maxBytes", `{"maxBytes": 100}`, "timeline.maxBytes", "too small"},
		{"negative maxBytes", `{"maxBytes": -1}`, "timeline.maxBytes", "too small"},
		{"empty class", `{"classes": [""]}`, "timeline.classes[0]", "must not be empty"},
		{"class twice", `{"classes": ["web", "web"]}`, "timeline.classes[1]", "listed twice"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("v.json", []byte(strings.Replace(base, "%s", tc.block, 1)))
			if err == nil {
				t.Fatalf("block %s accepted", tc.block)
			}
			if !strings.Contains(err.Error(), tc.pos) || !strings.Contains(err.Error(), tc.msg) {
				t.Fatalf("error %q does not carry position %q and message %q", err, tc.pos, tc.msg)
			}
		})
	}
	ok := `{"classes": ["web", "spin"], "maxBytes": 65536, "perfetto": ["slices", "instants"]}`
	if _, err := Parse("v.json", []byte(strings.Replace(base, "%s", ok, 1))); err != nil {
		t.Fatalf("valid timeline block rejected: %v", err)
	}
}

// TestTimelineClassFilterScenario: a classes filter restricts accounting
// to the named workload entries.
func TestTimelineClassFilterScenario(t *testing.T) {
	spec := `{
	  "name": "tl-filter",
	  "machine": {"cores": [2]},
	  "schedulers": [{"kind": "cfs"}],
	  "window": "1s",
	  "workload": [
	    {"name": "keep", "openloop": {"workers": 2, "rate": 200, "service": "100us"}},
	    {"name": "spin", "loop": {"burst": "1ms"}, "count": 2}
	  ],
	  "timeline": {"classes": ["keep"]}
	}`
	sp, err := Parse("tl-filter.json", []byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sp.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Trials {
		tr := &rep.Trials[i]
		if tr.Timeline == nil {
			t.Fatalf("%s: no timeline", tr.Name)
		}
		for _, ca := range tr.Timeline.Classes {
			if ca.Class != "keep" {
				t.Fatalf("%s: unexpected class %q", tr.Name, ca.Class)
			}
		}
		if tr.Timeline.Summary.Threads != 2 {
			t.Fatalf("%s: threads = %d, want the 2 keep workers", tr.Name, tr.Timeline.Summary.Threads)
		}
	}
}
