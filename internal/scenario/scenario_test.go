package scenario

import (
	"os"
	"strings"
	"testing"
	"time"
)

// minimal returns a valid spec JSON with the given fragments substituted
// in; tests mutate one field at a time.
const validSpec = `{
  "name": "mini",
  "machine": {"cores": [2]},
  "schedulers": [{"kind": "cfs"}],
  "window": "500ms",
  "workload": [
    {"name": "spin", "loop": {"burst": "2ms"}}
  ]
}`

func TestParseValidSpec(t *testing.T) {
	sp, err := Parse("mini.json", []byte(validSpec))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name != "mini" || sp.Window.D() != 500*time.Millisecond {
		t.Fatalf("parsed spec = %+v", sp)
	}
	if len(sp.resolved) != 1 || string(sp.resolved[0].kind) != "cfs" {
		t.Fatalf("resolved schedulers = %+v", sp.resolved)
	}
}

// TestParseErrorsGolden pins the exact messages bad specs produce: syntax
// and type errors carry file line:column positions, semantic errors the
// spec path of the offending field.
func TestParseErrorsGolden(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{
			name: "syntax",
			in:   "{\"name\": }",
			want: "bad.json:1:11: invalid character '}' looking for beginning of value",
		},
		{
			name: "type",
			in:   "{\"name\": 5}",
			want: "bad.json:1:11: field name: cannot decode number into string",
		},
		{
			name: "unknown-field",
			in:   "{\"name\": \"x\", \"bogus\": 1}",
			want: "bad.json: unknown field \"bogus\"",
		},
		{
			name: "bad-duration",
			in:   "{\"name\": \"x\", \"window\": \"10x\"}",
			want: "bad.json: invalid duration \"10x\" (want e.g. \"250ms\")",
		},
		{
			name: "duration-number",
			in:   "{\"name\": \"x\", \"window\": 250}",
			want: "bad.json: duration must be a string like \"250ms\", got 250",
		},
		{
			name: "trailing-data",
			in:   "{\"name\": \"x\", \"machine\": {\"cores\": [1]}, \"schedulers\": [{\"kind\": \"cfs\"}], \"window\": \"1s\", \"workload\": [{\"loop\": {\"burst\": \"1ms\"}}]}\n{}",
			want: "bad.json:2:1: unexpected data after the scenario object",
		},
		{
			name: "missing-name",
			in:   "{}",
			want: "bad.json: name: scenario name is required",
		},
		{
			name: "missing-window",
			in:   "{\"name\": \"x\"}",
			want: "bad.json: window: window must be a positive duration",
		},
		{
			name: "missing-cores",
			in:   "{\"name\": \"x\", \"window\": \"1s\"}",
			want: "bad.json: machine.cores: at least one core count is required",
		},
		{
			name: "cores-range",
			in:   "{\"name\": \"x\", \"window\": \"1s\", \"machine\": {\"cores\": [8, 0]}}",
			want: "bad.json: machine.cores[1]: core count 0 out of range [1, 1024]",
		},
		{
			name: "missing-schedulers",
			in:   "{\"name\": \"x\", \"window\": \"1s\", \"machine\": {\"cores\": [2]}}",
			want: "bad.json: schedulers: at least one scheduler is required",
		},
		{
			name: "unknown-kind",
			in:   "{\"name\": \"x\", \"window\": \"1s\", \"machine\": {\"cores\": [2]}, \"schedulers\": [{\"kind\": \"o1\"}]}",
			want: "bad.json: schedulers[0].kind: unknown scheduler kind \"o1\" (registered: [cfs cfs-nocgroups fifo ule ule-fullpreempt ule-prevcpu ule-stockbug])",
		},
		{
			name: "star-not-alone",
			in:   "{\"name\": \"x\", \"window\": \"1s\", \"machine\": {\"cores\": [2]}, \"schedulers\": [{\"kind\": \"cfs\"}, {\"kind\": \"*\"}]}",
			want: "bad.json: schedulers[1].kind: \"*\" must be the only scheduler entry",
		},
		{
			name: "params-wrong-family",
			in:   "{\"name\": \"x\", \"window\": \"1s\", \"machine\": {\"cores\": [2]}, \"schedulers\": [{\"kind\": \"cfs\", \"ule\": {\"SliceTicks\": 5}}]}",
			want: "bad.json: schedulers[0].ule: ULE parameter overrides are invalid for kind \"cfs\"",
		},
		{
			name: "params-unknown-field",
			in:   "{\"name\": \"x\", \"window\": \"1s\", \"machine\": {\"cores\": [2]}, \"schedulers\": [{\"kind\": \"ule\", \"ule\": {\"SliceTicksTypo\": 5}}]}",
			want: "bad.json: schedulers[0].ule: unknown field \"SliceTicksTypo\"",
		},
		{
			name: "missing-workload",
			in:   "{\"name\": \"x\", \"window\": \"1s\", \"machine\": {\"cores\": [2]}, \"schedulers\": [{\"kind\": \"cfs\"}]}",
			want: "bad.json: workload: at least one workload entry is required",
		},
		{
			name: "entry-no-kind",
			in:   "{\"name\": \"x\", \"window\": \"1s\", \"machine\": {\"cores\": [2]}, \"schedulers\": [{\"kind\": \"cfs\"}], \"workload\": [{\"count\": 2}]}",
			want: "bad.json: workload[0]: exactly one of app, loop, finite, or openloop is required (got 0)",
		},
		{
			name: "unknown-app",
			in:   "{\"name\": \"x\", \"window\": \"1s\", \"machine\": {\"cores\": [2]}, \"schedulers\": [{\"kind\": \"cfs\"}], \"workload\": [{\"app\": \"sysbencch\"}]}",
			want: "bad.json: workload[0].app: unknown application \"sysbencch\"",
		},
		{
			name: "app-pinned",
			in:   "{\"name\": \"x\", \"window\": \"1s\", \"machine\": {\"cores\": [2]}, \"schedulers\": [{\"kind\": \"cfs\"}], \"workload\": [{\"app\": \"fibo\", \"pinned\": [0]}]}",
			want: "bad.json: workload[0].pinned: pinning applies to primitives only, not app entries",
		},
		{
			name: "pinned-out-of-range",
			in:   "{\"name\": \"x\", \"window\": \"1s\", \"machine\": {\"cores\": [8, 32]}, \"schedulers\": [{\"kind\": \"cfs\"}], \"workload\": [{\"loop\": {\"burst\": \"1ms\"}, \"pinned\": [0, 9]}]}",
			want: "bad.json: workload[0].pinned[1]: core 9 out of range [0, 8) on the smallest swept machine",
		},
		{
			name: "openloop-rate-and-interarrival",
			in:   "{\"name\": \"x\", \"window\": \"1s\", \"machine\": {\"cores\": [2]}, \"schedulers\": [{\"kind\": \"cfs\"}], \"workload\": [{\"openloop\": {\"workers\": 2, \"rate\": 100, \"interarrival\": \"10ms\", \"service\": \"1ms\"}}]}",
			want: "bad.json: workload[0].openloop: exactly one of rate and interarrival is required",
		},
		{
			name: "openloop-rate-too-high",
			in:   "{\"name\": \"x\", \"window\": \"1s\", \"machine\": {\"cores\": [2]}, \"schedulers\": [{\"kind\": \"cfs\"}], \"workload\": [{\"openloop\": {\"workers\": 2, \"rate\": 3000000000, \"service\": \"1ms\"}}]}",
			want: "bad.json: workload[0].openloop.rate: rate 3e+09 exceeds 1e9 requests/second",
		},
		{
			name: "openloop-bad-dist",
			in:   "{\"name\": \"x\", \"window\": \"1s\", \"machine\": {\"cores\": [2]}, \"schedulers\": [{\"kind\": \"cfs\"}], \"workload\": [{\"openloop\": {\"workers\": 2, \"rate\": 100, \"dist\": \"gaussian\", \"service\": \"1ms\"}}]}",
			want: "bad.json: workload[0].openloop.dist: unknown distribution \"gaussian\" (known: poisson, uniform, periodic)",
		},
		{
			name: "duplicate-label",
			in:   "{\"name\": \"x\", \"window\": \"1s\", \"machine\": {\"cores\": [2]}, \"schedulers\": [{\"kind\": \"cfs\"}], \"workload\": [{\"name\": \"a\", \"loop\": {\"burst\": \"1ms\"}}, {\"name\": \"a\", \"loop\": {\"burst\": \"1ms\"}}]}",
			want: "bad.json: workload[1].name: label \"a\" already used by workload[0]",
		},
		{
			name: "bad-metric",
			in:   "{\"name\": \"x\", \"window\": \"1s\", \"machine\": {\"cores\": [2]}, \"schedulers\": [{\"kind\": \"cfs\"}], \"workload\": [{\"loop\": {\"burst\": \"1ms\"}}], \"metrics\": [\"speed\"]}",
			want: "bad.json: metrics[0]: unknown metric \"speed\" (known: throughput, latency, counters, utilization)",
		},
		{
			name: "bad-scale",
			in:   "{\"name\": \"x\", \"window\": \"1s\", \"machine\": {\"cores\": [2]}, \"schedulers\": [{\"kind\": \"cfs\"}], \"workload\": [{\"loop\": {\"burst\": \"1ms\"}}], \"scales\": [1, 1.5]}",
			want: "bad.json: scales[1]: scale 1.5 out of range (0, 1]",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse("bad.json", []byte(c.in))
			if err == nil {
				t.Fatalf("spec %s parsed without error", c.in)
			}
			if got := err.Error(); got != c.want {
				t.Fatalf("error mismatch:\n got: %s\nwant: %s", got, c.want)
			}
		})
	}
}

func TestSchedulerStarExpandsToAllKinds(t *testing.T) {
	in := `{
	  "name": "x", "window": "1s",
	  "machine": {"cores": [2]},
	  "schedulers": [{"kind": "*"}],
	  "workload": [{"loop": {"burst": "1ms"}}]
	}`
	sp, err := Parse("star.json", []byte(in))
	if err != nil {
		t.Fatal(err)
	}
	// The registry holds 3 built-ins + 4 ablation variants.
	if len(sp.resolved) != 7 {
		t.Fatalf("resolved %d kinds, want 7: %+v", len(sp.resolved), sp.resolved)
	}
}

func TestSchedulerParamOverrides(t *testing.T) {
	in := `{
	  "name": "x", "window": "1s",
	  "machine": {"cores": [2]},
	  "schedulers": [
	    {"kind": "ule", "ule": {"SliceTicks": 20, "FullPreempt": true}},
	    {"kind": "cfs", "cfs": {"LatencyNrMax": 16}}
	  ],
	  "workload": [{"loop": {"burst": "1ms"}}]
	}`
	sp, err := Parse("params.json", []byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if sp.resolved[0].ule == nil || sp.resolved[0].ule.SliceTicks != 20 || !sp.resolved[0].ule.FullPreempt {
		t.Fatalf("ULE overrides not applied: %+v", sp.resolved[0].ule)
	}
	// Untouched fields keep their defaults.
	if sp.resolved[0].ule.InteractThresh != 30 {
		t.Fatalf("ULE default lost: %+v", sp.resolved[0].ule)
	}
	if sp.resolved[1].cfs == nil || sp.resolved[1].cfs.LatencyNrMax != 16 {
		t.Fatalf("CFS overrides not applied: %+v", sp.resolved[1].cfs)
	}
}

func TestBuiltinLibrary(t *testing.T) {
	specs, err := Builtin()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) < 6 {
		t.Fatalf("bundled library has %d scenarios, want ≥6", len(specs))
	}
	names, err := BuiltinNames()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted/unique: %v", names)
		}
	}
	for _, sp := range specs {
		if sp.Description == "" {
			t.Errorf("%s: bundled scenarios must carry a description", sp.Name)
		}
		// Every bundled scenario must compile into a non-empty grid.
		trials, err := sp.Compile(0.1)
		if err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
		if len(trials) < 2 {
			t.Fatalf("%s compiled to %d trials, want ≥2 (a comparison)", sp.Name, len(trials))
		}
	}

	if _, err := LoadBuiltin("web-tail"); err != nil {
		t.Fatal(err)
	}
	_, err = LoadBuiltin("nonesuch")
	if err == nil || !strings.Contains(err.Error(), "web-tail") {
		t.Fatalf("unknown-builtin error should list bundled names, got: %v", err)
	}
}

func TestLoadFromFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/custom.json"
	if err := os.WriteFile(path, []byte(validSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	sp, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name != "mini" {
		t.Fatalf("loaded %q", sp.Name)
	}
	if _, err := Load(dir + "/missing.json"); err == nil {
		t.Fatal("expected error for missing file")
	}
}
