package scenario

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// Cross-validation of the two event-queue engines: the timer wheel must be
// byte-interchangeable with the binary heap. Every bundled scenario and the
// most engine-sensitive experiments (fig6's balancer convergence, fig7's
// wake chain) run under both queues; the marshalled reports must be
// identical to the byte. A single reordered pair of same-timestamp events
// anywhere in a run would cascade into different seeds drawn, different
// migrations, different figures — so this is the engine's end-to-end
// determinism gate, on top of the unit-level oracle tests in internal/sim.

// withEngine runs fn under the requested event queue, restoring the
// previous engine selection afterwards.
func withEngine(heap bool, fn func()) {
	prev := sim.SetForceEventHeap(heap)
	defer sim.SetForceEventHeap(prev)
	fn()
}

func TestBundledScenariosEngineCrossValidation(t *testing.T) {
	specs, err := Builtin()
	if err != nil {
		t.Fatal(err)
	}
	const scale = 0.02 // windows floor at a few hundred ms — plenty of events
	for _, sp := range specs {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			var wheel, heap []byte
			withEngine(false, func() { wheel = runScenarioReport(t, sp, scale) })
			withEngine(true, func() { heap = runScenarioReport(t, sp, scale) })
			if !bytes.Equal(wheel, heap) {
				t.Fatalf("wheel and heap reports differ for %s:\nwheel: %s\nheap:  %s",
					sp.Name, firstDiff(wheel, heap), firstDiff(heap, wheel))
			}
		})
	}
}

func runScenarioReport(t *testing.T, sp *Spec, scale float64) []byte {
	t.Helper()
	rep, err := sp.Run(scale)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestExperimentsEngineCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment runs")
	}
	cases := []struct {
		id    string
		scale float64
	}{
		{"fig6", 0.1}, // pinned-phase balancer convergence: migration-order sensitive
		{"fig7", 0.2}, // wake chain: wakeup-order sensitive
	}
	for _, tc := range cases {
		t.Run(tc.id, func(t *testing.T) {
			var wheel, heap []byte
			withEngine(false, func() { wheel = runExperimentReport(t, tc.id, tc.scale) })
			withEngine(true, func() { heap = runExperimentReport(t, tc.id, tc.scale) })
			if !bytes.Equal(wheel, heap) {
				t.Fatalf("wheel and heap reports differ for %s:\nwheel: %s\nheap:  %s",
					tc.id, firstDiff(wheel, heap), firstDiff(heap, wheel))
			}
		})
	}
}

func runExperimentReport(t *testing.T, id string, scale float64) []byte {
	t.Helper()
	e, err := core.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	rep := FromResult(e.Run(scale))
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// firstDiff returns a window of a around the first byte where a and b
// diverge, for a readable failure message.
func firstDiff(a, b []byte) []byte {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo := i - 60
	if lo < 0 {
		lo = 0
	}
	hi := i + 60
	if hi > len(a) {
		hi = len(a)
	}
	return a[lo:hi]
}
