package scenario

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/runner"
)

// faultSpecJSON exercises every fault kind in one spec: hotplug with a
// repeat, a throttle, an antagonist burst, and a wakeup storm, over a
// mixed workload with a runq series so the recovery metrics derive.
const faultSpecJSON = `{
  "name": "fault-mix",
  "machine": {"cores": [8]},
  "schedulers": [{"kind": "cfs"}, {"kind": "ule"}, {"kind": "fifo"}],
  "seeds": [1],
  "window": "2s",
  "workload": [
    {"name": "batch", "loop": {"burst": "2ms", "jitterPct": 10}, "count": 10},
    {"name": "web", "openloop": {"workers": 4, "rate": 800, "service": "200us"}}
  ],
  "faults": [
    {"kind": "cpu_off", "at": "400ms", "duration": "300ms", "cores": [6, 7], "count": 2, "period": "800ms"},
    {"kind": "throttle", "at": "500ms", "duration": "400ms", "cores": [0, 1], "factor": 0.5},
    {"kind": "antagonist", "at": "600ms", "duration": "300ms", "threads": 4, "burst": "500us"},
    {"kind": "wakeup_storm", "at": "1300ms", "threads": 16, "burst": "300us"}
  ],
  "series": {"probes": ["runq", "util"], "cadence": "20ms", "capacity": 128}
}`

// TestFaultKindsEngineCrossValidation is the fault determinism gate:
// every fault kind, under every builtin scheduler, must produce byte-
// identical reports under the timer wheel and the binary heap, and at
// -jobs 1 and -jobs 8.
func TestFaultKindsEngineCrossValidation(t *testing.T) {
	sp, err := Parse("fault-mix.json", []byte(faultSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	var wheel1, wheel8, heap1 []byte
	withEngine(false, func() {
		runner.WithWorkers(1, func() { wheel1 = runScenarioReport(t, sp, 1) })
		runner.WithWorkers(8, func() { wheel8 = runScenarioReport(t, sp, 1) })
	})
	withEngine(true, func() {
		runner.WithWorkers(1, func() { heap1 = runScenarioReport(t, sp, 1) })
	})
	if !bytes.Equal(wheel1, wheel8) {
		t.Fatalf("faulted report differs between -jobs 1 and -jobs 8:\n%s", firstDiff(wheel1, wheel8))
	}
	if !bytes.Equal(wheel1, heap1) {
		t.Fatalf("faulted report differs between wheel and heap:\n%s", firstDiff(wheel1, heap1))
	}
}

// TestFaultReportAndRecoveryMetrics checks the report surface: resolved
// activations echoed per trial, recovery_us and degraded_ops_per_sec in
// the derived (battle) namespace, and the fault counters recorded.
func TestFaultReportAndRecoveryMetrics(t *testing.T) {
	sp, err := Parse("fault-mix.json", []byte(faultSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sp.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Trials {
		tr := &rep.Trials[i]
		// 2 cpu_off activations + throttle + antagonist + storm = 5.
		if len(tr.Faults) != 5 {
			t.Fatalf("%s: %d fault occurrences echoed, want 5: %+v", tr.Name, len(tr.Faults), tr.Faults)
		}
		if tr.Faults[0].Kind != "cpu_off" || tr.Faults[0].AtUS != 400_000 || tr.Faults[0].EndUS != 700_000 {
			t.Fatalf("%s: first occurrence %+v", tr.Name, tr.Faults[0])
		}
		for _, name := range []string{MetricRecoveryUS, MetricDegradedOpsPerSec, MetricConvergenceUS} {
			if _, ok := tr.Derived[name]; !ok {
				t.Errorf("%s: derived metric %s missing: %v", tr.Name, name, tr.Derived)
			}
		}
		if v := tr.Derived[MetricRecoveryUS]; v < 0 || v > 2_000_000 {
			t.Errorf("%s: recovery_us = %g out of [0, window]", tr.Name, v)
		}
		if tr.Counters["fault.cpu_off"] != 2 || tr.Counters["fault.storms"] != 1 {
			t.Errorf("%s: fault counters wrong: %v", tr.Name, tr.Counters)
		}
		if tr.Counters["hotplug.offline"] != 4 || tr.Counters["hotplug.online"] != 4 {
			t.Errorf("%s: hotplug counters wrong: offline=%d online=%d",
				tr.Name, tr.Counters["hotplug.offline"], tr.Counters["hotplug.online"])
		}
		// recovery_us joins the battle metric namespace.
		found := false
		for _, md := range tr.Metrics() {
			if md.Name == MetricRecoveryUS && md.Better == Lower {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: recovery_us not in Metrics()", tr.Name)
		}
	}
}

// TestFaultScaling: fault times keep their position relative to the
// window as the CLI scale shrinks it.
func TestFaultScaling(t *testing.T) {
	sp, err := Parse("fault-mix.json", []byte(faultSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sp.Run(0.25)
	if err != nil {
		t.Fatal(err)
	}
	tr := &rep.Trials[0]
	// 2s window × 0.25 = 500ms; cpu_off at 400ms → 100ms, end 175ms.
	if tr.Faults[0].AtUS != 100_000 || tr.Faults[0].EndUS != 175_000 {
		t.Fatalf("scaled occurrence %+v, want at 1e5 end 1.75e5", tr.Faults[0])
	}
}

// TestFaultSpecValidation pins the positioned fault-block errors.
func TestFaultSpecValidation(t *testing.T) {
	base := `{"name": "x", "window": "1s", "machine": {"cores": [4]},
	  "schedulers": [{"kind": "cfs"}], "workload": [{"loop": {"burst": "1ms"}}]`
	cases := []struct{ name, tail, want string }{
		{
			name: "unknown-kind-did-you-mean",
			tail: `, "faults": [{"kind": "cpuoff", "at": "100ms", "cores": [1]}]}`,
			want: `bad.json: faults[0].kind: unknown fault kind "cpuoff" (did you mean "cpu_off"?) (known: cpu_off, throttle, antagonist, wakeup_storm)`,
		},
		{
			name: "at-outside-window",
			tail: `, "faults": [{"kind": "throttle", "at": "2s", "factor": 0.5}]}`,
			want: `bad.json: faults[0].at: at 2s is outside the 1s window — the fault would never fire`,
		},
		{
			name: "cpu-off-needs-cores",
			tail: `, "faults": [{"kind": "cpu_off", "at": "100ms"}]}`,
			want: `bad.json: faults[0].cores: cpu_off requires at least one target core`,
		},
		{
			name: "cpu-off-core-range",
			tail: `, "faults": [{"kind": "cpu_off", "at": "100ms", "cores": [4]}]}`,
			want: `bad.json: faults[0].cores[0]: core 4 out of range [0, 4) on the smallest swept machine`,
		},
		{
			name: "cpu-off-leaves-nothing",
			tail: `, "faults": [{"kind": "cpu_off", "at": "100ms", "cores": [0, 1, 2, 3]}]}`,
			want: `bad.json: faults[0].cores: offlining 4 cores leaves nothing online on the smallest swept machine (4 cores)`,
		},
		{
			name: "throttle-factor-range",
			tail: `, "faults": [{"kind": "throttle", "at": "100ms", "factor": 1.5}]}`,
			want: `bad.json: faults[0].factor: factor 1.5 out of range [0.01, 1]`,
		},
		{
			name: "antagonist-needs-threads",
			tail: `, "faults": [{"kind": "antagonist", "at": "100ms", "burst": "1ms"}]}`,
			want: `bad.json: faults[0].threads: threads must be at least 1`,
		},
		{
			name: "storm-no-duration",
			tail: `, "faults": [{"kind": "wakeup_storm", "at": "100ms", "duration": "1ms", "threads": 2, "burst": "1ms"}]}`,
			want: `bad.json: faults[0].duration: wakeup_storm is instantaneous — duration does not apply`,
		},
		{
			name: "period-needs-count",
			tail: `, "faults": [{"kind": "throttle", "at": "100ms", "factor": 0.5, "period": "200ms"}]}`,
			want: `bad.json: faults[0].period: period requires count > 1`,
		},
		{
			name: "count-needs-period",
			tail: `, "faults": [{"kind": "throttle", "at": "100ms", "factor": 0.5, "count": 3}]}`,
			want: `bad.json: faults[0].period: period is required when count > 1`,
		},
		{
			name: "overlapping-activations",
			tail: `, "faults": [{"kind": "throttle", "at": "100ms", "factor": 0.5, "count": 2, "period": "50ms", "duration": "80ms"}]}`,
			want: `bad.json: faults[0].period: period 50ms must not be shorter than duration 80ms — activations would overlap`,
		},
		{
			name: "factor-on-cpu-off",
			tail: `, "faults": [{"kind": "cpu_off", "at": "100ms", "cores": [1], "factor": 0.5}]}`,
			want: `bad.json: faults[0].factor: factor applies to throttle only`,
		},
		{
			name: "cores-on-antagonist",
			tail: `, "faults": [{"kind": "antagonist", "at": "100ms", "threads": 2, "burst": "1ms", "cores": [0]}]}`,
			want: `bad.json: faults[0].cores: cores applies to cpu_off and throttle only`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse("bad.json", []byte(base+c.tail))
			if err == nil {
				t.Fatal("spec parsed without error")
			}
			if got := err.Error(); got != c.want {
				t.Fatalf("error mismatch:\n got: %s\nwant: %s", got, c.want)
			}
		})
	}
}

// TestBundledFaultScenarios: the two bundled fault scenarios carry fault
// blocks and produce the recovery metrics at an aggressive scale — the
// CI configuration.
func TestBundledFaultScenarios(t *testing.T) {
	for _, name := range []string{"hotplug-storm", "noisy-neighbor"} {
		t.Run(name, func(t *testing.T) {
			sp, err := LoadBuiltin(name)
			if err != nil {
				t.Fatal(err)
			}
			if len(sp.Faults) == 0 {
				t.Fatalf("%s must carry a fault block", name)
			}
			rep, err := sp.Run(0.05)
			if err != nil {
				t.Fatal(err)
			}
			for i := range rep.Trials {
				tr := &rep.Trials[i]
				if len(tr.Faults) == 0 {
					t.Fatalf("%s: no fault occurrences echoed", tr.Name)
				}
				if _, ok := tr.Derived[MetricRecoveryUS]; !ok {
					t.Errorf("%s: recovery_us missing: %v", tr.Name, tr.Derived)
				}
				if !strings.Contains(tr.Name, name) {
					t.Errorf("trial name %q missing scenario name", tr.Name)
				}
			}
		})
	}
}
