package scenario

// The report→sample adapter for the battle subsystem: replication seed
// axes, spec cloning with a replaced seed axis, and a stable metric
// namespace over TrialReport so per-seed values can be collected into
// inference samples. internal/battle builds on these; scenario stays
// ignorant of verdicts and confidence intervals.

import (
	"fmt"
	"strings"
)

// Metric direction: whether larger or smaller values win a comparison.
const (
	Higher = "higher"
	Lower  = "lower"
)

// MetricDef names one battle metric and its winning direction.
type MetricDef struct {
	Name   string `json:"name"`
	Better string `json:"better"`
}

// ReplicationSeeds extends the spec's seed axis to n entries: the spec's
// own seeds come first (the author's pinned replications), then the
// smallest positive integers not already present fill the remainder. The
// result is a pure function of (spec.Seeds, n), so a battle run is
// reproducible from the spec alone.
func (s *Spec) ReplicationSeeds(n int) []int64 {
	if n < 1 {
		n = 1
	}
	seeds := make([]int64, 0, n)
	used := make(map[int64]bool, n)
	for _, sd := range s.Seeds {
		if len(seeds) == n {
			break
		}
		if !used[sd] {
			used[sd] = true
			seeds = append(seeds, sd)
		}
	}
	for next := int64(1); len(seeds) < n; next++ {
		if !used[next] {
			used[next] = true
			seeds = append(seeds, next)
		}
	}
	return seeds
}

// WithSeeds returns a copy of the spec with its seed axis replaced — the
// replication driver's way of widening a scenario to n seeds without
// mutating the loaded spec. When the source spec is already validated and
// the new seeds are valid, the copy stays validated and *shares* the
// resolved-scheduler slice: resolution doesn't depend on the seed axis,
// downstream consumers copy the parameter structs by value
// (core.NewScheduler), and a validated spec never rewrites the slice — so
// one decode of the overrides serves every replication. Otherwise the copy
// drops the resolution and revalidates lazily (Compile calls Validate) with
// its own fresh slice, leaving the original's untouched.
func (s *Spec) WithSeeds(seeds []int64) *Spec {
	clone := *s
	clone.Seeds = append([]int64(nil), seeds...)
	for _, sd := range seeds {
		if sd < 0 {
			clone.validated = false
		}
	}
	if !clone.validated {
		clone.resolved = nil
	}
	return &clone
}

// globalMetrics is the fixed whole-trial metric order: throughput first,
// then the merged-latency distribution from centre to tail.
var globalMetrics = []MetricDef{
	{Name: "ops_per_sec", Better: Higher},
	{Name: "mean_us", Better: Lower},
	{Name: "p50_us", Better: Lower},
	{Name: "p95_us", Better: Lower},
	{Name: "p99_us", Better: Lower},
	{Name: "max_us", Better: Lower},
}

// entryMetric recognises the per-entry tail metric "p99_us[<label>]" and
// returns the label.
func entryMetric(name string) (label string, ok bool) {
	if strings.HasPrefix(name, "p99_us[") && strings.HasSuffix(name, "]") {
		return name[len("p99_us[") : len(name)-1], true
	}
	return "", false
}

// Metrics lists the battle metrics this trial report exposes, in stable
// order: the global metrics it recorded, then the series-derived
// transient metrics (convergence_us, startup_p95_us — present when the
// spec's series block attached the runq probe), then a per-entry tail
// metric "p99_us[<label>]" for every workload entry with a latency
// distribution (the paper's per-workload headline numbers — e.g. the web
// entry's p99 under batch pressure), in workload order.
func (tr *TrialReport) Metrics() []MetricDef {
	var defs []MetricDef
	for _, d := range globalMetrics {
		if _, ok := tr.MetricValue(d.Name); ok {
			defs = append(defs, d)
		}
	}
	for _, d := range derivedMetrics {
		if _, ok := tr.MetricValue(d.Name); ok {
			defs = append(defs, d)
		}
	}
	if tr.Throughput != nil {
		for _, e := range tr.Throughput.Entries {
			if e.Latency != nil {
				defs = append(defs, MetricDef{Name: fmt.Sprintf("p99_us[%s]", e.Label), Better: Lower})
			}
		}
	}
	return defs
}

// MetricValue reads one named metric out of the trial report. It reports
// false when the metric's section was not selected or recorded — battle
// cells only form over metrics every replication of a group recorded.
func (tr *TrialReport) MetricValue(name string) (float64, bool) {
	if label, ok := entryMetric(name); ok {
		if tr.Throughput == nil {
			return 0, false
		}
		for _, e := range tr.Throughput.Entries {
			if e.Label == label && e.Latency != nil {
				return e.Latency.P99US, true
			}
		}
		return 0, false
	}
	if v, ok := tr.Derived[name]; ok {
		return v, true
	}
	switch name {
	case "ops_per_sec":
		if tr.Throughput == nil {
			return 0, false
		}
		return tr.Throughput.OpsPerSec, true
	case "mean_us":
		if tr.Latency == nil {
			return 0, false
		}
		return tr.Latency.MeanUS, true
	case "p50_us":
		if tr.Latency == nil {
			return 0, false
		}
		return tr.Latency.P50US, true
	case "p95_us":
		if tr.Latency == nil {
			return 0, false
		}
		return tr.Latency.P95US, true
	case "p99_us":
		if tr.Latency == nil {
			return 0, false
		}
		return tr.Latency.P99US, true
	case "max_us":
		if tr.Latency == nil {
			return 0, false
		}
		return tr.Latency.MaxUS, true
	}
	return 0, false
}
