package scenario

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/runner"
)

// gridSpec sweeps 2 schedulers × 2 seeds over a mixed workload: an
// open-loop stream, pinned loops, and a delayed finite job — small enough
// to execute many times in tests.
const gridSpec = `{
  "name": "grid",
  "machine": {"cores": [2]},
  "schedulers": [{"kind": "cfs"}, {"kind": "ule"}],
  "seeds": [1, 2],
  "window": "400ms",
  "workload": [
    {"name": "web", "openloop": {"workers": 4, "rate": 2000, "service": "100us"}},
    {"name": "spin", "loop": {"burst": "2ms", "jitterPct": 20}, "count": 2, "pinned": [0]},
    {"name": "job", "finite": {"burst": "1ms", "n": 50}, "startAt": "50ms"}
  ]
}`

func mustParse(t *testing.T, in string) *Spec {
	t.Helper()
	sp, err := Parse("test.json", []byte(in))
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func reportBytes(t *testing.T, sp *Spec, scale float64) []byte {
	t.Helper()
	rep, err := sp.Run(scale)
	if err != nil {
		t.Fatal(err)
	}
	out, err := MarshalReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestReportByteIdenticalAcrossJobs is the engine's core guarantee: the
// same spec and seed produce byte-identical reports whatever the worker
// pool width.
func TestReportByteIdenticalAcrossJobs(t *testing.T) {
	sp := mustParse(t, gridSpec)
	defer runner.SetWorkers(0)

	runner.SetWorkers(1)
	seq := reportBytes(t, sp, 1)
	runner.SetWorkers(8)
	par := reportBytes(t, sp, 1)
	if !bytes.Equal(seq, par) {
		t.Fatalf("report differs between -jobs 1 and -jobs 8:\n--- jobs=1\n%s\n--- jobs=8\n%s", seq, par)
	}
	// And re-running at the same width reproduces the bytes exactly.
	par2 := reportBytes(t, sp, 1)
	if !bytes.Equal(par, par2) {
		t.Fatal("report differs across identical runs")
	}
}

func TestCompileGridShape(t *testing.T) {
	sp := mustParse(t, gridSpec)
	trials, err := sp.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	// 1 core count × 1 scale × 2 schedulers × 2 seeds.
	if len(trials) != 4 {
		t.Fatalf("compiled %d trials, want 4", len(trials))
	}
	wantNames := []string{
		"grid/c2/cfs/x1/s1", "grid/c2/cfs/x1/s2",
		"grid/c2/ule/x1/s1", "grid/c2/ule/x1/s2",
	}
	for i, tr := range trials {
		if tr.Name != wantNames[i] {
			t.Fatalf("trial %d name = %q, want %q", i, tr.Name, wantNames[i])
		}
	}
	if _, err := sp.Compile(0); err == nil {
		t.Fatal("scale 0 must be rejected")
	}
	if _, err := sp.Compile(1.5); err == nil {
		t.Fatal("scale 1.5 must be rejected")
	}
}

func TestReportContent(t *testing.T) {
	sp := mustParse(t, gridSpec)
	rep, err := sp.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ReportSchema || rep.Scenario != "grid" || len(rep.Trials) != 4 {
		t.Fatalf("report header/trials wrong: %+v", rep)
	}
	for _, tr := range rep.Trials {
		if tr.Events == 0 {
			t.Fatalf("%s: no events processed", tr.Name)
		}
		if tr.Throughput == nil || len(tr.Throughput.Entries) != 3 {
			t.Fatalf("%s: throughput missing or wrong arity: %+v", tr.Name, tr.Throughput)
		}
		web := tr.Throughput.Entries[0]
		if web.Label != "web" || web.Ops == 0 {
			t.Fatalf("%s: web entry did not serve: %+v", tr.Name, web)
		}
		// The open-loop entry must carry tail-latency percentiles.
		if web.Latency == nil || web.Latency.Count == 0 || web.Latency.P99US < web.Latency.P50US {
			t.Fatalf("%s: web latency malformed: %+v", tr.Name, web.Latency)
		}
		if tr.Latency == nil || tr.Latency.Count != web.Latency.Count {
			t.Fatalf("%s: merged latency should equal the single recording entry's", tr.Name)
		}
		if tr.Counters["switches"] == 0 || tr.Counters["forks"] == 0 {
			t.Fatalf("%s: counters missing: %+v", tr.Name, tr.Counters)
		}
		if len(tr.CoreUtil) != 2 {
			t.Fatalf("%s: core_utilization arity %d", tr.Name, len(tr.CoreUtil))
		}
		// The pinned loops keep core 0 busier than pure idling.
		if tr.CoreUtil[0] < 0.5 {
			t.Fatalf("%s: pinned core utilization %v, want ≥0.5", tr.Name, tr.CoreUtil[0])
		}
	}
	// Different seeds must actually change the outcome (the machine PRNG
	// drives jitter), while names stay distinct.
	a, b := rep.Trials[0], rep.Trials[1]
	if a.Name == b.Name {
		t.Fatal("seed axis did not differentiate trial names")
	}
	if a.Events == b.Events && a.Throughput.TotalOps == b.Throughput.TotalOps {
		t.Fatalf("seeds 1 and 2 produced identical outcomes: %+v vs %+v", a, b)
	}
}

func TestMetricsSelection(t *testing.T) {
	in := `{
	  "name": "sel",
	  "machine": {"cores": [1]},
	  "schedulers": [{"kind": "fifo"}],
	  "window": "200ms",
	  "workload": [{"loop": {"burst": "1ms"}}],
	  "metrics": ["throughput"]
	}`
	rep, err := mustParse(t, in).Run(1)
	if err != nil {
		t.Fatal(err)
	}
	tr := rep.Trials[0]
	if tr.Throughput == nil {
		t.Fatal("selected throughput metric missing")
	}
	if tr.Latency != nil || tr.Counters != nil || tr.CoreUtil != nil {
		t.Fatalf("unselected metrics present: %+v", tr)
	}
}

func TestWindowScalingAndFloor(t *testing.T) {
	sp := mustParse(t, gridSpec)
	if got := sp.windowFor(1); got != 400*time.Millisecond {
		t.Fatalf("windowFor(1) = %v", got)
	}
	if got := sp.windowFor(0.5); got != 250*time.Millisecond {
		t.Fatalf("windowFor(0.5) = %v, want the 50ms-start + 200ms floor", got)
	}
	// App entries floor past the 2 s shell warmup.
	app := mustParse(t, `{
	  "name": "appfloor",
	  "machine": {"cores": [1]},
	  "schedulers": [{"kind": "cfs"}],
	  "window": "30s",
	  "workload": [{"app": "fibo"}]
	}`)
	if got := app.windowFor(0.01); got != 2200*time.Millisecond {
		t.Fatalf("app windowFor(0.01) = %v, want 2.2s", got)
	}
}

// TestOpenLoopCountSpawnsIndependentStreams: count on an open-loop entry
// multiplies the offered load — each instance owns its queue, workers, and
// arrival generator.
func TestOpenLoopCountSpawnsIndependentStreams(t *testing.T) {
	run := func(count int) *TrialReport {
		in := fmt.Sprintf(`{
		  "name": "olcount",
		  "machine": {"cores": [4]},
		  "schedulers": [{"kind": "fifo"}],
		  "window": "1s",
		  "workload": [{"name": "web", "count": %d,
		    "openloop": {"workers": 2, "rate": 1000, "dist": "periodic", "service": "50us"}}]
		}`, count)
		rep, err := mustParse(t, in).Run(1)
		if err != nil {
			t.Fatal(err)
		}
		return &rep.Trials[0]
	}
	one, three := run(1), run(3)
	if one.Throughput.TotalOps < 950 || one.Throughput.TotalOps > 1050 {
		t.Fatalf("count=1 served %d ops, want ~1000", one.Throughput.TotalOps)
	}
	if three.Throughput.TotalOps < 2850 || three.Throughput.TotalOps > 3150 {
		t.Fatalf("count=3 served %d ops, want ~3000 (3 independent streams)", three.Throughput.TotalOps)
	}
	if three.Latency == nil || three.Latency.Count != three.Throughput.TotalOps {
		t.Fatalf("count=3 latency samples %+v, want one per completion", three.Latency)
	}
}

// TestOpenLoopStreamVariesWithBaseSeed covers the -seed wiring: the arrival
// generator derives from the trial seed axis, so a different spec seed
// changes the offered stream deterministically.
func TestOpenLoopSeedAxisChangesArrivals(t *testing.T) {
	in := `{
	  "name": "olseed",
	  "machine": {"cores": [1]},
	  "schedulers": [{"kind": "fifo"}],
	  "seeds": [1, 2],
	  "window": "300ms",
	  "workload": [{"openloop": {"workers": 2, "rate": 1000, "service": "100us"}}]
	}`
	rep, err := mustParse(t, in).Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trials) != 2 {
		t.Fatalf("trials = %d", len(rep.Trials))
	}
	if rep.Trials[0].Events == rep.Trials[1].Events {
		t.Fatalf("different seeds produced identical event counts (%d)", rep.Trials[0].Events)
	}
}
