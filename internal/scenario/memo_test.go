package scenario

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/memo"
	"repro/internal/sim"
)

// memoBaseSpec builds a small but block-complete spec — workload, metrics,
// series, trace, timeline, faults — so every fingerprinted field has a
// value the mutators below can move.
func memoBaseSpec() *Spec {
	return &Spec{
		Name:    "memo-base",
		Machine: MachineSpec{Cores: []int{2}},
		Schedulers: []SchedSpec{
			{Kind: "ule"},
		},
		Seeds:  []int64{1},
		Window: Dur(1_000_000_000), // 1s
		Workload: []Entry{
			{Name: "spin", Loop: &LoopSpec{Burst: Dur(1_000_000)}, Count: 2},
		},
		Metrics:  []string{MetricThroughput},
		Series:   &SeriesSpec{Probes: []string{"runq"}},
		Trace:    &TraceSpec{Sample: 2},
		Timeline: &TimelineSpec{},
		Faults: []FaultSpec{
			{Kind: "throttle", At: Dur(400_000_000), Duration: Dur(100_000_000), Factor: 0.5},
		},
	}
}

// firstKey compiles the spec and returns its first cell's fingerprint.
func firstKey(t *testing.T, s *Spec, scale float64) memo.Key {
	t.Helper()
	trials, err := s.Compile(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) == 0 {
		t.Fatal("no trials compiled")
	}
	if trials[0].CacheKey.IsZero() {
		t.Fatal("compiled trial has no cache key")
	}
	if trials[0].Encode == nil || trials[0].Decode == nil {
		t.Fatal("compiled trial has no cache codec")
	}
	return trials[0].CacheKey
}

// TestFingerprintSensitivity mutates one fingerprinted input at a time and
// requires the cell key to move — a stale-hit on any of these would serve
// a wrong cached result. The unmutated spec must reproduce its key exactly.
func TestFingerprintSensitivity(t *testing.T) {
	base := firstKey(t, memoBaseSpec(), 0.5)
	if again := firstKey(t, memoBaseSpec(), 0.5); again != base {
		t.Fatal("fingerprint is not deterministic across compiles")
	}

	mutations := map[string]func(*Spec){
		"name":           func(s *Spec) { s.Name = "memo-other" },
		"kernel-noise":   func(s *Spec) { s.Machine.KernelNoise = true },
		"window":         func(s *Spec) { s.Window *= 2 },
		"workload-burst": func(s *Spec) { s.Workload[0].Loop.Burst *= 2 },
		"workload-count": func(s *Spec) { s.Workload[0].Count = 3 },
		"workload-nice":  func(s *Spec) { s.Workload[0].Nice = 5 },
		"workload-label": func(s *Spec) { s.Workload[0].Name = "other" },
		"metrics":        func(s *Spec) { s.Metrics = []string{MetricLatency} },
		"series-probe":   func(s *Spec) { s.Series.Probes = []string{"util"} },
		"series-cadence": func(s *Spec) { s.Series.Cadence = Dur(100_000_000) },
		"series-dropped": func(s *Spec) { s.Series = nil },
		"trace-sample":   func(s *Spec) { s.Trace.Sample = 4 },
		"trace-dropped":  func(s *Spec) { s.Trace = nil },
		"timeline-drop":  func(s *Spec) { s.Timeline = nil },
		"fault-at":       func(s *Spec) { s.Faults[0].At = Dur(500_000_000) },
		"fault-factor":   func(s *Spec) { s.Faults[0].Factor = 0.25 },
		"fault-dropped":  func(s *Spec) { s.Faults = nil },
		"cores":          func(s *Spec) { s.Machine.Cores = []int{4} },
		"scheduler-kind": func(s *Spec) { s.Schedulers = []SchedSpec{{Kind: "cfs"}} },
		"sched-params":   func(s *Spec) { s.Schedulers[0].ULE = []byte(`{"SliceTicks": 20}`) },
		"seed":           func(s *Spec) { s.Seeds = []int64{2} },
		"scale-axis":     func(s *Spec) { s.Scales = []float64{0.5} },
	}
	seen := map[memo.Key]string{base: "base"}
	for name, mutate := range mutations {
		s := memoBaseSpec()
		mutate(s)
		k := firstKey(t, s, 0.5)
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %q produced the same fingerprint as %q", name, prev)
			continue
		}
		seen[k] = name
	}

	// CLI scale and the process-wide knobs move the key too. (The CLI
	// scale is fingerprinted as the EFFECTIVE per-cell scale, so cli 0.25
	// over axis [1] deliberately equals the scale-axis mutation's cli 0.5
	// over axis [0.5] — same trial, same key.)
	if k := firstKey(t, memoBaseSpec(), 0.25); k == base {
		t.Error("cli scale change did not move the fingerprint")
	}
	core.SetBaseSeed(99)
	kBase := firstKey(t, memoBaseSpec(), 0.5)
	core.SetBaseSeed(0)
	if kBase == base {
		t.Error("base-seed perturbation did not move the fingerprint")
	}
	prev := sim.SetForceEventHeap(true)
	kHeap := firstKey(t, memoBaseSpec(), 0.5)
	sim.SetForceEventHeap(prev)
	if kHeap == base {
		t.Error("engine selection did not move the fingerprint")
	}
}

// TestCachedVsFreshByteIdentity is the memoization correctness gate: for
// every bundled scenario, a warm (all-hits) re-run must reproduce the cold
// run to the byte — the marshalled report AND the out-of-band trace and
// timeline streams the report JSON excludes.
func TestCachedVsFreshByteIdentity(t *testing.T) {
	specs, err := Builtin()
	if err != nil {
		t.Fatal(err)
	}
	const scale = 0.02
	for _, sp := range specs {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			c, err := memo.New("")
			if err != nil {
				t.Fatal(err)
			}
			core.SetTrialCache(c)
			defer core.SetTrialCache(nil)

			cold, err := sp.Run(scale)
			if err != nil {
				t.Fatal(err)
			}
			st := c.Stats()
			if st.Stores == 0 {
				t.Fatal("cold run stored nothing")
			}
			warm, err := sp.Run(scale)
			if err != nil {
				t.Fatal(err)
			}
			if got := c.Stats(); got.Hits == st.Hits {
				t.Fatal("warm run hit nothing")
			}

			coldJSON, err := MarshalReport(cold)
			if err != nil {
				t.Fatal(err)
			}
			warmJSON, err := MarshalReport(warm)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(coldJSON, warmJSON) {
				t.Fatalf("cached report differs from fresh:\ncold: %s\nwarm: %s",
					firstDiff(coldJSON, warmJSON), firstDiff(warmJSON, coldJSON))
			}
			if len(cold.Trials) != len(warm.Trials) {
				t.Fatalf("trial counts differ: %d vs %d", len(cold.Trials), len(warm.Trials))
			}
			for i := range cold.Trials {
				if !bytes.Equal(cold.Trials[i].TraceData, warm.Trials[i].TraceData) {
					t.Fatalf("trial %s: cached trace stream differs from fresh", cold.Trials[i].Name)
				}
				if !bytes.Equal(cold.Trials[i].TimelineData, warm.Trials[i].TimelineData) {
					t.Fatalf("trial %s: cached timeline stream differs from fresh", cold.Trials[i].Name)
				}
			}
		})
	}
}

// TestEnvelopeRoundTripsOutOfBandData pins the codec on a report carrying
// every out-of-band stream.
func TestEnvelopeRoundTripsOutOfBandData(t *testing.T) {
	in := TrialReport{
		Name:         "env/c1/ule/x1/s1",
		Cores:        1,
		Scheduler:    "ule",
		Seed:         1,
		Scale:        0.30000000000000004, // an awkward float must survive
		Derived:      map[string]float64{"x": 1e-17, "y": 3.14},
		Counters:     map[string]uint64{"switches": 1<<53 + 1},
		TraceData:    []byte{0x00, 0x01, 0xfe, 0xff},
		TimelineData: []byte(`{"traceEvents":[]}`),
	}
	enc, err := encodeTrialReport(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := decodeTrialReport(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.TraceData, in.TraceData) || !bytes.Equal(out.TimelineData, in.TimelineData) {
		t.Fatal("out-of-band data did not round-trip")
	}
	a, err := MarshalReport(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalReport(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("decoded report marshals differently:\n%s\nvs\n%s", a, b)
	}
	if out.Counters["switches"] != in.Counters["switches"] {
		t.Fatalf("uint64 counter lost precision: %d vs %d", out.Counters["switches"], in.Counters["switches"])
	}
}

// TestGridDedupDuplicateSeedCells: a spec whose seed axis repeats a value
// compiles identical cells; the grid must simulate the cell once and fan
// the report out — with no cache installed at all.
func TestGridDedupDuplicateSeedCells(t *testing.T) {
	if core.TrialCache() != nil {
		t.Fatal("test requires no installed cache")
	}
	s := memoBaseSpec()
	s.Series, s.Trace, s.Timeline, s.Faults = nil, nil, nil, nil
	s.Seeds = []int64{5, 5, 6}
	before := core.DedupedTrials()
	rep, err := s.Run(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if got := core.DedupedTrials() - before; got != 1 {
		t.Fatalf("deduped %d cells, want 1 (seed 5 repeated once)", got)
	}
	if len(rep.Trials) != 3 {
		t.Fatalf("got %d trials, want 3", len(rep.Trials))
	}
	a, err := MarshalReport(rep.Trials[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalReport(rep.Trials[1])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("duplicate seed cells produced different reports")
	}
	cJSON, err := MarshalReport(rep.Trials[2])
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, cJSON) {
		t.Fatal("distinct seed cell produced an identical report")
	}
}
