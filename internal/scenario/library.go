package scenario

import (
	"embed"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
)

// The bundled scenario library: curated specs embedded in the binary, one
// JSON file per scenario, exposed through `schedbattle -scenario <name>`
// and listed by `-scenarios`. They double as executable documentation of
// the schema (EXPERIMENTS.md walks through one).
//
//go:embed library/*.json
var libraryFS embed.FS

// builtinCache holds the bundled library parsed and validated exactly once
// per process: the embedded bytes never change, so `-battle all`, name
// listings, and every LoadBuiltin share one set of compiled spec artifacts
// instead of re-parsing the JSON per call. The cached specs are validated
// (Parse runs Validate), which freezes their resolved-scheduler slices —
// callers treat them as read-only and clone via WithSeeds before changing
// axes.
var builtinCache struct {
	once  sync.Once
	specs []*Spec
	err   error
}

// Builtin returns every bundled scenario, sorted by name, parsed once per
// process. The returned slice is fresh but the specs are shared — read-only.
func Builtin() ([]*Spec, error) {
	builtinCache.once.Do(func() {
		builtinCache.specs, builtinCache.err = parseBuiltin()
	})
	if builtinCache.err != nil {
		return nil, builtinCache.err
	}
	return append([]*Spec(nil), builtinCache.specs...), nil
}

// parseBuiltin parses every bundled scenario, sorted by name.
func parseBuiltin() ([]*Spec, error) {
	entries, err := libraryFS.ReadDir("library")
	if err != nil {
		return nil, fmt.Errorf("scenario: reading bundled library: %w", err)
	}
	var specs []*Spec
	for _, e := range entries {
		data, err := libraryFS.ReadFile("library/" + e.Name())
		if err != nil {
			return nil, fmt.Errorf("scenario: reading bundled %s: %w", e.Name(), err)
		}
		sp, err := Parse(e.Name(), data)
		if err != nil {
			return nil, fmt.Errorf("scenario: bundled spec is invalid: %w", err)
		}
		specs = append(specs, sp)
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
	return specs, nil
}

// BuiltinNames lists the bundled scenario names, sorted.
func BuiltinNames() ([]string, error) {
	specs, err := Builtin()
	if err != nil {
		return nil, err
	}
	names := make([]string, len(specs))
	for i, sp := range specs {
		names[i] = sp.Name
	}
	return names, nil
}

// LoadBuiltin returns the bundled scenario with the given name, or an error
// listing the available names.
func LoadBuiltin(name string) (*Spec, error) {
	specs, err := Builtin()
	if err != nil {
		return nil, err
	}
	names := make([]string, len(specs))
	for i, sp := range specs {
		if sp.Name == name {
			return sp, nil
		}
		names[i] = sp.Name
	}
	return nil, fmt.Errorf("scenario: unknown bundled scenario %q (bundled: %s)", name, strings.Join(names, ", "))
}

// Load resolves nameOrPath: anything that looks like a file reference —
// a .json suffix or a path separator — is read from disk; everything else
// is looked up in the bundled library.
func Load(nameOrPath string) (*Spec, error) {
	if strings.HasSuffix(nameOrPath, ".json") || strings.ContainsRune(nameOrPath, os.PathSeparator) {
		data, err := os.ReadFile(nameOrPath)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		return Parse(nameOrPath, data)
	}
	return LoadBuiltin(nameOrPath)
}
