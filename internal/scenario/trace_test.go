package scenario

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/dtrace"
	"repro/internal/runner"
	"repro/internal/sim"
)

// traceSpec is a small scenario with a full trace block: an open-loop
// stream for wake decisions plus background loops so picks, migrations,
// and queueing all occur.
const traceSpec = `{
  "name": "mini-trace",
  "machine": {"cores": [4]},
  "schedulers": [{"kind": "cfs"}, {"kind": "ule"}],
  "window": "2s",
  "workload": [
    {"name": "spin", "loop": {"burst": "2ms"}, "count": 6},
    {"name": "web", "openloop": {"workers": 2, "rate": 500, "service": "200us"}}
  ],
  "trace": {"window": 8, "branch": 4}
}`

func TestTraceBlockEndToEnd(t *testing.T) {
	sp, err := Parse("mini-trace.json", []byte(traceSpec))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sp.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Trials {
		tr := &rep.Trials[i]
		if tr.Trace == nil {
			t.Fatalf("%s: no trace summary", tr.Name)
		}
		sum := tr.Trace.Summary
		if sum.Records == 0 || sum.Picks == 0 || sum.Wakes == 0 {
			t.Fatalf("%s: empty trace summary: %+v", tr.Name, sum)
		}
		if len(tr.TraceData) == 0 {
			t.Fatalf("%s: no trace data", tr.Name)
		}
		dec, err := dtrace.Decode(tr.TraceData)
		if err != nil {
			t.Fatalf("%s: decoding trace: %v", tr.Name, err)
		}
		if uint64(len(dec.Recs)) != sum.Records-sum.Dropped {
			t.Errorf("%s: decoded %d records, summary says %d kept", tr.Name, len(dec.Recs), sum.Records-sum.Dropped)
		}
		// The report's online headroom must equal an offline replay of the
		// embedded trace (all columns recorded, nothing dropped).
		if sum.Dropped == 0 {
			replay := dtrace.ComputeHeadroom(dec, 0, 0)
			if replay != tr.Trace.Headroom {
				t.Errorf("%s: offline headroom %+v != online %+v", tr.Name, replay, tr.Trace.Headroom)
			}
		}
		hr, ok := tr.Derived[MetricHeadroomPct]
		if !ok {
			t.Fatalf("%s: headroom_pct missing: %v", tr.Name, tr.Derived)
		}
		if hr < 0 || hr > 100 {
			t.Errorf("%s: headroom_pct = %g out of [0, 100]", tr.Name, hr)
		}
		// headroom_pct joins the battle metric namespace, lower-is-better.
		found := false
		for _, md := range tr.Metrics() {
			if md.Name == MetricHeadroomPct && md.Better == Lower {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: headroom_pct not in Metrics()", tr.Name)
		}
	}
}

// TestTraceDeterminismAcrossJobs is the trace byte-identity gate: the
// bundled web-tail scenario's per-trial dtrace/v1 streams and the CSV
// rendering are byte-identical at -jobs 1 and -jobs 8.
func TestTraceDeterminismAcrossJobs(t *testing.T) {
	sp, err := LoadBuiltin("web-tail")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Trace == nil {
		t.Fatal("web-tail must carry a trace block")
	}
	type outcome struct {
		data map[string][]byte
		csv  []byte
	}
	collect := func() outcome {
		rep, err := sp.Run(0.05)
		if err != nil {
			t.Fatal(err)
		}
		o := outcome{data: map[string][]byte{}}
		for i := range rep.Trials {
			o.data[rep.Trials[i].Name] = rep.Trials[i].TraceData
		}
		o.csv, err = rep.TraceCSV()
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	var j1, j8 outcome
	runner.WithWorkers(1, func() { j1 = collect() })
	runner.WithWorkers(8, func() { j8 = collect() })
	if len(j1.data) == 0 {
		t.Fatal("no trials carried trace data")
	}
	for name, d1 := range j1.data {
		if len(d1) == 0 {
			t.Fatalf("%s: empty trace data", name)
		}
		if !bytes.Equal(d1, j8.data[name]) {
			t.Errorf("%s: trace bytes differ between -jobs 1 and -jobs 8", name)
		}
	}
	if !bytes.Equal(j1.csv, j8.csv) {
		t.Fatal("trace CSV differs between -jobs 1 and -jobs 8")
	}
	if !bytes.HasPrefix(j1.csv, []byte("trial,"+dtrace.CSVHeader+"\n")) {
		t.Fatalf("trace CSV header malformed:\n%s", j1.csv[:80])
	}
}

// TestTraceEngineCrossValidation: identical trace bytes whether the sim
// runs on the timer wheel or the binary event heap.
func TestTraceEngineCrossValidation(t *testing.T) {
	sp, err := Parse("mini-trace.json", []byte(traceSpec))
	if err != nil {
		t.Fatal(err)
	}
	collect := func() map[string][]byte {
		rep, err := sp.Run(0.25)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string][]byte{}
		for i := range rep.Trials {
			out[rep.Trials[i].Name] = rep.Trials[i].TraceData
		}
		return out
	}
	wheel := collect()
	sim.SetForceEventHeap(true)
	defer sim.SetForceEventHeap(false)
	heap := collect()
	for name, w := range wheel {
		if len(w) == 0 {
			t.Fatalf("%s: empty trace data", name)
		}
		if !bytes.Equal(w, heap[name]) {
			t.Errorf("%s: trace bytes differ between wheel and heap engines", name)
		}
	}
}

// TestTraceWithCPUOffFault: during a cpu_off outage no pick fires on the
// offlined core and no wake targets it — the hook points honour hotplug.
func TestTraceWithCPUOffFault(t *testing.T) {
	spec := `{
	  "name": "trace-hotplug",
	  "machine": {"cores": [4]},
	  "schedulers": [{"kind": "cfs"}, {"kind": "ule"}],
	  "window": "2s",
	  "workload": [
	    {"name": "spin", "loop": {"burst": "1ms"}, "count": 6},
	    {"name": "web", "openloop": {"workers": 2, "rate": 500, "service": "200us"}}
	  ],
	  "faults": [{"kind": "cpu_off", "at": "500ms", "cores": [1]}],
	  "trace": {}
	}`
	sp, err := Parse("trace-hotplug.json", []byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sp.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	// Strictly inside the outage (it runs to the window end), past any
	// same-instant drain churn at the fault edge.
	const offAfterNS = int64(510_000_000)
	for i := range rep.Trials {
		tr := &rep.Trials[i]
		dec, err := dtrace.Decode(tr.TraceData)
		if err != nil {
			t.Fatalf("%s: decoding trace: %v", tr.Name, err)
		}
		picks, wakes := 0, 0
		for j := range dec.Recs {
			r := &dec.Recs[j]
			if r.T < offAfterNS || r.Core != 1 {
				continue
			}
			switch r.Kind {
			case dtrace.KindPick:
				picks++
			case dtrace.KindWake:
				wakes++
			}
		}
		if picks > 0 || wakes > 0 {
			t.Errorf("%s: offline core 1 recorded %d picks and %d wake placements during the outage", tr.Name, picks, wakes)
		}
	}
}

// TestTraceSpecValidation pins the positioned trace-block errors,
// including the did-you-mean suggestion over the column-group namespace.
func TestTraceSpecValidation(t *testing.T) {
	base := `{"name": "x", "window": "1s", "machine": {"cores": [2]},
	  "schedulers": [{"kind": "cfs"}], "workload": [{"loop": {"burst": "1ms"}}]`
	cases := []struct {
		trace string
		want  string
	}{
		{`{"sample": -1}`, "trace.sample: sample -1 out of range [1, 1000000]"},
		{`{"sample": 2000000}`, "trace.sample: sample 2000000 out of range [1, 1000000]"},
		{`{"window": 17}`, "trace.window: window 17 out of range [1, 16]"},
		{`{"branch": 9}`, "trace.branch: branch 9 out of range [1, 8]"},
		{`{"maxBytes": 100}`, "trace.maxBytes: maxBytes 100 too small (min 4096)"},
		{`{"columns": ["digets"]}`, `trace.columns[0]: unknown column group "digets" (did you mean "digest"?) (known: other, wait_ns, digest, cand)`},
		{`{"columns": ["cand", "cand"]}`, `trace.columns[1]: column group "cand" listed twice`},
	}
	for _, tc := range cases {
		spec := fmt.Sprintf("%s, \"trace\": %s}", base, tc.trace)
		_, err := Parse("t.json", []byte(spec))
		if err == nil {
			t.Errorf("trace %s: no error, want %q", tc.trace, tc.want)
			continue
		}
		if got := err.Error(); !strings.Contains(got, tc.want) {
			t.Errorf("trace %s:\n got  %s\n want …%s…", tc.trace, got, tc.want)
		}
	}
}
