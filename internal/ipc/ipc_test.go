package ipc

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/topo"
)

func newMachine() *sim.Machine {
	return sim.NewMachine(topo.Small(), sim.NewFIFO(), sim.Options{Seed: 3, Cost: &sim.CostModel{}})
}

// lockWorker repeatedly acquires mu, holds it for hold, releases, then
// thinks for think; iterations bounded.
type lockWorker struct {
	mu          *Mutex
	hold, think time.Duration
	iters       int
	state       int
	CritCount   int
}

func (w *lockWorker) Next(ctx *sim.Ctx) sim.Op {
	for {
		switch w.state {
		case 0: // try lock
			if w.iters <= 0 {
				return sim.Exit()
			}
			if !w.mu.TryLock(ctx.T) {
				return sim.Block(w.mu.WQ)
			}
			w.state = 1
			return sim.Run(w.hold)
		case 1: // unlock, think
			w.CritCount++
			w.iters--
			w.mu.Unlock(ctx)
			w.state = 0
			if w.think > 0 {
				return sim.Sleep(w.think)
			}
		}
	}
}

func TestMutexMutualExclusionAndProgress(t *testing.T) {
	m := newMachine()
	mu := NewMutex("mu")
	ws := make([]*lockWorker, 4)
	for i := range ws {
		ws[i] = &lockWorker{mu: mu, hold: time.Millisecond, think: 100 * time.Microsecond, iters: 50}
		m.StartThread("lw", "app", 0, ws[i])
	}
	m.Run(5 * time.Second)
	for i, w := range ws {
		if w.CritCount != 50 {
			t.Fatalf("worker %d completed %d/50 critical sections", i, w.CritCount)
		}
	}
	if mu.Owner() != nil {
		t.Fatal("mutex still held")
	}
	if mu.Contentions == 0 {
		t.Fatal("expected contention with 4 workers")
	}
}

func TestMutexPanics(t *testing.T) {
	m := newMachine()
	mu := NewMutex("mu")
	done := false
	m.StartThread("x", "app", 0, sim.ProgramFunc(func(ctx *sim.Ctx) sim.Op {
		if done {
			return sim.Exit()
		}
		done = true
		if !mu.TryLock(ctx.T) {
			t.Error("TryLock failed on free mutex")
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Error("recursive TryLock did not panic")
				}
			}()
			mu.TryLock(ctx.T)
		}()
		mu.Unlock(ctx)
		func() {
			defer func() {
				if recover() == nil {
					t.Error("double Unlock did not panic")
				}
			}()
			mu.Unlock(ctx)
		}()
		return sim.Run(time.Millisecond)
	}))
	m.Run(time.Second)
	if !done {
		t.Fatal("program never ran")
	}
}

// barrierWorker iterates: compute, arrive at barrier, spin then sleep until
// the round passes.
type barrierWorker struct {
	bar     *Barrier
	compute time.Duration
	rounds  int
	state   int
	gen     uint64
	Done    int
}

func (w *barrierWorker) Next(ctx *sim.Ctx) sim.Op {
	for {
		switch w.state {
		case 0:
			if w.Done >= w.rounds {
				return sim.Exit()
			}
			w.state = 1
			return sim.Run(w.compute)
		case 1:
			last, gen := w.bar.Arrive(ctx)
			w.gen = gen
			if last {
				w.Done++
				w.state = 0
				continue
			}
			w.state = 2
			return w.bar.SpinOp()
		case 2:
			if w.bar.Passed(w.gen) {
				w.Done++
				w.state = 0
				continue
			}
			w.state = 3
			return w.bar.BlockOp()
		case 3:
			if w.bar.Passed(w.gen) {
				w.Done++
				w.state = 0
				continue
			}
			// Spurious wake: block again.
			return w.bar.BlockOp()
		}
	}
}

func TestBarrierRounds(t *testing.T) {
	m := newMachine()
	bar := NewBarrier("bar", 4, 100*time.Microsecond)
	ws := make([]*barrierWorker, 4)
	for i := range ws {
		// Different compute times force real waiting.
		ws[i] = &barrierWorker{bar: bar, compute: time.Duration(i+1) * time.Millisecond, rounds: 10}
		m.StartThread("bw", "hpc", 0, ws[i])
	}
	m.Run(10 * time.Second)
	for i, w := range ws {
		if w.Done != 10 {
			t.Fatalf("worker %d completed %d/10 rounds", i, w.Done)
		}
	}
	if bar.Rounds != 10 {
		t.Fatalf("barrier rounds = %d", bar.Rounds)
	}
}

func TestBarrierSpinOnlyWhenFast(t *testing.T) {
	// With equal compute and a generous spin budget, nobody should sleep.
	m := newMachine()
	bar := NewBarrier("bar", 2, 50*time.Millisecond)
	ws := make([]*barrierWorker, 2)
	for i := range ws {
		ws[i] = &barrierWorker{bar: bar, compute: time.Millisecond, rounds: 20}
		m.StartThread("bw", "hpc", 0, ws[i])
	}
	m.Run(5 * time.Second)
	for _, w := range ws {
		if w.Done != 20 {
			t.Fatalf("incomplete: %d", w.Done)
		}
	}
	for _, th := range m.Threads() {
		if th.SleepTime > time.Millisecond {
			t.Fatalf("thread %v slept %v; expected pure spinning", th, th.SleepTime)
		}
	}
}

// pipeSender writes n messages then exits; pipeReceiver reads n messages.
type pipeSender struct {
	p     *Pipe
	n     int
	perMs time.Duration
}

func (s *pipeSender) Next(ctx *sim.Ctx) sim.Op {
	for {
		if s.n <= 0 {
			return sim.Exit()
		}
		if !s.p.TryWrite(ctx, Msg{Size: 100}) {
			return sim.Block(s.p.Writers)
		}
		s.n--
		return sim.Run(s.perMs)
	}
}

type pipeReceiver struct {
	p     *Pipe
	n     int
	perMs time.Duration
	Got   int
}

func (r *pipeReceiver) Next(ctx *sim.Ctx) sim.Op {
	for {
		if r.Got >= r.n {
			return sim.Exit()
		}
		if _, ok := r.p.TryRead(ctx); !ok {
			return sim.Block(r.p.Readers)
		}
		r.Got++
		return sim.Run(r.perMs)
	}
}

func TestPipeTransfersAll(t *testing.T) {
	m := newMachine()
	p := NewPipe("p", 8)
	recv := &pipeReceiver{p: p, n: 500, perMs: 10 * time.Microsecond}
	m.StartThread("recv", "hb", 0, recv)
	m.StartThread("send", "hb", 0, &pipeSender{p: p, n: 500, perMs: 10 * time.Microsecond})
	m.Run(10 * time.Second)
	if recv.Got != 500 {
		t.Fatalf("received %d/500", recv.Got)
	}
	if p.Transfers != 500 {
		t.Fatalf("transfers = %d", p.Transfers)
	}
	if p.Len() != 0 {
		t.Fatalf("pipe still holds %d", p.Len())
	}
}

func TestPipeBackpressure(t *testing.T) {
	// Slow reader forces the writer to block on a full pipe.
	m := newMachine()
	p := NewPipe("p", 2)
	recv := &pipeReceiver{p: p, n: 20, perMs: 5 * time.Millisecond}
	m.StartThread("recv", "hb", 0, recv)
	sender := m.StartThread("send", "hb", 0, &pipeSender{p: p, n: 20, perMs: 10 * time.Microsecond})
	m.Run(10 * time.Second)
	if recv.Got != 20 {
		t.Fatalf("received %d/20", recv.Got)
	}
	if sender.SleepTime == 0 {
		t.Fatal("writer never blocked despite full pipe")
	}
}

// reqWorker serves requests from a queue.
type reqWorker struct{ q *ReqQueue }

func (w *reqWorker) Next(ctx *sim.Ctx) sim.Op {
	if r, ok := w.q.TryPop(); ok {
		w.q.Complete(ctx.Now()+r.Service, r) // completion recorded at end of service
		return sim.Run(r.Service)
	}
	return sim.Block(w.q.Workers)
}

func TestReqQueueLatency(t *testing.T) {
	m := newMachine()
	q := NewReqQueue("db")
	for i := 0; i < 4; i++ {
		m.StartThread("worker", "db", 0, &reqWorker{q: q})
	}
	// Open-loop injector: 1 request per ms, 1 ms service, 4 cores & 4
	// workers → utilization 25%, latency ≈ service time.
	n := 0
	m.Every(time.Millisecond, time.Millisecond, func() bool {
		n++
		q.Push(m, time.Millisecond)
		return n < 200
	})
	m.Run(5 * time.Second)
	if q.Completed != 200 {
		t.Fatalf("completed %d/200", q.Completed)
	}
	mean := q.Latency.Mean()
	if mean < 900*time.Microsecond || mean > 3*time.Millisecond {
		t.Fatalf("mean latency = %v, want ~1ms", mean)
	}
}

func TestReqQueueBounded(t *testing.T) {
	m := newMachine()
	q := NewReqQueue("db")
	q.MaxDepth = 2
	q.Push(m, time.Millisecond)
	q.Push(m, time.Millisecond)
	if q.Push(m, time.Millisecond) {
		t.Fatal("push succeeded beyond MaxDepth")
	}
	if q.Dropped != 1 {
		t.Fatalf("dropped = %d", q.Dropped)
	}
}

func TestSemaphore(t *testing.T) {
	m := newMachine()
	s := NewSemaphore("sem", 2)
	if !s.TryAcquire() || !s.TryAcquire() {
		t.Fatal("acquire failed with permits available")
	}
	if s.TryAcquire() {
		t.Fatal("acquire succeeded with no permits")
	}
	released := false
	m.StartThread("r", "app", 0, sim.ProgramFunc(func(ctx *sim.Ctx) sim.Op {
		if released {
			return sim.Exit()
		}
		released = true
		s.Release(ctx)
		return sim.Run(time.Microsecond)
	}))
	m.Run(time.Second)
	if s.Available() != 1 {
		t.Fatalf("available = %d", s.Available())
	}
}
