// Package ipc provides in-simulation synchronization and communication
// primitives — mutexes, spin-then-sleep barriers, bounded pipes, and
// request queues with latency tracking. They are built on sim.WaitQueue and
// are manipulated from inside Program.Next, which the engine runs
// atomically, so the primitives need no internal locking and can exhibit
// exactly the blocking/wakeup patterns the paper's workloads exercise
// (MySQL lock handoffs in §6.4, hackbench pipes, MG's 100 ms spin barrier,
// sysbench request latencies in Table 2).
package ipc

import (
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Mutex is a sleeping mutex. There is no lock handoff: a woken waiter must
// retry, and can lose the lock to a thread that slipped in — exactly the
// property that makes ULE's missing wakeup preemption hurt sysbench in the
// paper's §6.4 (the releasing thread's core keeps running fibo; the woken
// MySQL thread waits out fibo's timeslice).
type Mutex struct {
	// WQ holds blocked contenders.
	WQ    *sim.WaitQueue
	owner *sim.Thread
	// Contentions counts failed TryLock attempts.
	Contentions uint64
}

// NewMutex returns an unlocked mutex.
func NewMutex(name string) *Mutex {
	return &Mutex{WQ: sim.NewWaitQueue(name)}
}

// TryLock attempts to take the mutex for t; on failure the caller should
// return sim.Block(mu.WQ) and retry on wakeup.
func (mu *Mutex) TryLock(t *sim.Thread) bool {
	if mu.owner == nil {
		mu.owner = t
		return true
	}
	if mu.owner == t {
		panic("ipc: recursive TryLock")
	}
	mu.Contentions++
	return false
}

// Unlock releases the mutex and wakes one contender.
func (mu *Mutex) Unlock(ctx *sim.Ctx) {
	if mu.owner != ctx.T {
		panic("ipc: Unlock by non-owner")
	}
	mu.owner = nil
	ctx.Signal(mu.WQ, 1)
}

// Owner returns the current holder (nil when free).
func (mu *Mutex) Owner() *sim.Thread { return mu.owner }

// Barrier is the spin-then-sleep barrier HPC runtimes use (the paper: MG
// "waits on a spin-barrier for 100ms and then sleeps if some threads are
// still computing").
type Barrier struct {
	// N is the number of participants per round.
	N int
	// SpinBudget is how long a waiter burns CPU before sleeping.
	SpinBudget time.Duration
	// WQ is broadcast when the last participant arrives; it releases both
	// spinners and sleepers.
	WQ *sim.WaitQueue

	count int
	gen   uint64
	// Rounds counts completed barrier episodes.
	Rounds uint64
}

// NewBarrier returns a barrier for n participants.
func NewBarrier(name string, n int, spin time.Duration) *Barrier {
	return &Barrier{N: n, SpinBudget: spin, WQ: sim.NewWaitQueue(name)}
}

// Arrive registers the caller at the barrier. If it is the last arrival the
// round completes: the barrier resets and all waiters are released (the
// caller should then proceed without waiting). Otherwise the caller should
// wait using SpinOp/BlockOp guarded by Passed(gen).
func (b *Barrier) Arrive(ctx *sim.Ctx) (last bool, gen uint64) {
	gen = b.gen
	b.count++
	if b.count >= b.N {
		b.count = 0
		b.gen++
		b.Rounds++
		ctx.Broadcast(b.WQ)
		return true, gen
	}
	return false, gen
}

// Passed reports whether the round gen has completed.
func (b *Barrier) Passed(gen uint64) bool { return b.gen != gen }

// SpinOp returns the op that spin-waits for the round to complete.
func (b *Barrier) SpinOp() sim.Op { return sim.Spin(b.WQ, b.SpinBudget) }

// BlockOp returns the op that sleeps until the round completes.
func (b *Barrier) BlockOp() sim.Op { return sim.Block(b.WQ) }

// Msg is one message in a Pipe.
type Msg struct {
	// Size in bytes, priced by the workload (hackbench uses 100-byte
	// messages).
	Size int
	// SentAt is the send timestamp for latency measurements.
	SentAt time.Duration
}

// Pipe is a bounded FIFO byte-message channel like a Unix pipe: writers
// block when full, readers when empty, and each transfer wakes the other
// side — the wakeup-heavy pattern hackbench stresses.
type Pipe struct {
	// Cap is the buffer capacity in messages.
	Cap int
	// Readers/Writers hold blocked threads.
	Readers *sim.WaitQueue
	Writers *sim.WaitQueue

	buf []Msg
	// Transfers counts delivered messages.
	Transfers uint64
}

// NewPipe returns a pipe holding up to capacity messages.
func NewPipe(name string, capacity int) *Pipe {
	if capacity < 1 {
		capacity = 1
	}
	return &Pipe{
		Cap:     capacity,
		Readers: sim.NewWaitQueue(name + ".r"),
		Writers: sim.NewWaitQueue(name + ".w"),
	}
}

// TryWrite appends msg if there is room, waking one reader; on failure the
// caller should Block on Writers and retry.
func (p *Pipe) TryWrite(ctx *sim.Ctx, msg Msg) bool {
	if len(p.buf) >= p.Cap {
		return false
	}
	msg.SentAt = ctx.Now()
	p.buf = append(p.buf, msg)
	ctx.Signal(p.Readers, 1)
	return true
}

// TryRead pops a message if available, waking one writer; on failure the
// caller should Block on Readers and retry.
func (p *Pipe) TryRead(ctx *sim.Ctx) (Msg, bool) {
	if len(p.buf) == 0 {
		return Msg{}, false
	}
	msg := p.buf[0]
	p.buf = p.buf[1:]
	p.Transfers++
	ctx.Signal(p.Writers, 1)
	return msg, true
}

// Len returns the buffered message count.
func (p *Pipe) Len() int { return len(p.buf) }

// Request is one unit of server work.
type Request struct {
	// Arrived is the submission time.
	Arrived time.Duration
	// Service is the CPU demand of the request.
	Service time.Duration
}

// ReqQueue is an open-arrival request queue: an injector pushes requests,
// worker threads pop and serve them, and completion latency is recorded.
// It models the sysbench/RocksDB serving loops of Table 2 and §6.3.
type ReqQueue struct {
	// Workers holds blocked (idle) worker threads.
	Workers *sim.WaitQueue
	// Latency records arrival-to-completion times.
	Latency *stats.Histogram
	// Completed counts finished requests.
	Completed uint64
	// Dropped counts arrivals rejected because the queue was full.
	Dropped uint64
	// MaxDepth bounds the queue (0 = unbounded).
	MaxDepth int

	q []Request
}

// NewReqQueue returns an empty request queue.
func NewReqQueue(name string) *ReqQueue {
	return &ReqQueue{
		Workers: sim.NewWaitQueue(name + ".workers"),
		Latency: &stats.Histogram{},
	}
}

// Push submits a request at time now and wakes one idle worker. It may be
// called from timer context (m.Signal) or from a thread's Next (ctx).
func (rq *ReqQueue) Push(m *sim.Machine, service time.Duration) bool {
	if rq.MaxDepth > 0 && len(rq.q) >= rq.MaxDepth {
		rq.Dropped++
		return false
	}
	rq.q = append(rq.q, Request{Arrived: m.Now(), Service: service})
	m.Signal(rq.Workers, 1)
	return true
}

// TryPop takes the oldest pending request; on failure the worker should
// Block on Workers and retry.
func (rq *ReqQueue) TryPop() (Request, bool) {
	if len(rq.q) == 0 {
		return Request{}, false
	}
	r := rq.q[0]
	rq.q = rq.q[1:]
	return r, true
}

// Complete records the request finished at now.
func (rq *ReqQueue) Complete(now time.Duration, r Request) {
	rq.Latency.Observe(now - r.Arrived)
	rq.Completed++
}

// Depth returns the number of waiting requests.
func (rq *ReqQueue) Depth() int { return len(rq.q) }

// Semaphore is a counting semaphore used by fork-join pools.
type Semaphore struct {
	// WQ holds blocked acquirers.
	WQ    *sim.WaitQueue
	avail int
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(name string, n int) *Semaphore {
	return &Semaphore{WQ: sim.NewWaitQueue(name), avail: n}
}

// TryAcquire takes a permit if available.
func (s *Semaphore) TryAcquire() bool {
	if s.avail <= 0 {
		return false
	}
	s.avail--
	return true
}

// Release returns a permit and wakes one blocked acquirer.
func (s *Semaphore) Release(ctx *sim.Ctx) {
	s.avail++
	ctx.Signal(s.WQ, 1)
}

// Available returns the free permit count.
func (s *Semaphore) Available() int { return s.avail }
