package trace

import (
	"strings"
	"testing"
	"time"
)

func TestRecordAndCount(t *testing.T) {
	b := New(10)
	b.Record(Event{At: time.Second, Kind: Switch, Core: 0, Thread: 1})
	b.Record(Event{At: 2 * time.Second, Kind: Switch, Core: 0, Thread: 2})
	b.Record(Event{At: 3 * time.Second, Kind: Wakeup, Core: 1, Thread: 3})
	if got := b.Count(Switch); got != 2 {
		t.Fatalf("Count(Switch) = %d", got)
	}
	if got := b.Count(Wakeup); got != 1 {
		t.Fatalf("Count(Wakeup) = %d", got)
	}
	if got := b.Count(Migrate); got != 0 {
		t.Fatalf("Count(Migrate) = %d", got)
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
}

func TestCapacityDropsRecordsKeepsCounts(t *testing.T) {
	b := New(2)
	for i := 0; i < 5; i++ {
		b.Record(Event{Kind: Migrate, Thread: i})
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	if got := b.Count(Migrate); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if b.Events()[0].Thread != 0 || b.Events()[1].Thread != 1 {
		t.Fatal("retained events are not the oldest")
	}
}

func TestCountsOnlyBuffer(t *testing.T) {
	b := New(0)
	b.Record(Event{Kind: Fork})
	if b.Len() != 0 {
		t.Fatal("zero-capacity buffer retained a record")
	}
	if b.Count(Fork) != 1 {
		t.Fatal("count lost")
	}
}

func TestPreemptionsPerThread(t *testing.T) {
	b := New(0)
	for i := 0; i < 7; i++ {
		b.Record(Event{Kind: Preempt, Thread: 42})
	}
	b.Record(Event{Kind: Preempt, Thread: 7})
	if got := b.PreemptionsOf(42); got != 7 {
		t.Fatalf("PreemptionsOf(42) = %d", got)
	}
	if got := b.PreemptionsOf(7); got != 1 {
		t.Fatalf("PreemptionsOf(7) = %d", got)
	}
	if got := b.PreemptionsOf(999); got != 0 {
		t.Fatalf("PreemptionsOf(999) = %d", got)
	}
}

func TestFilter(t *testing.T) {
	b := New(10)
	b.Record(Event{Kind: Switch, Thread: 1})
	b.Record(Event{Kind: Steal, Thread: 2})
	b.Record(Event{Kind: Switch, Thread: 3})
	got := b.Filter(Switch)
	if len(got) != 2 || got[0].Thread != 1 || got[1].Thread != 3 {
		t.Fatalf("Filter = %v", got)
	}
}

func TestSummaryAndStrings(t *testing.T) {
	b := New(1)
	b.Record(Event{Kind: Balance})
	b.Record(Event{Kind: Balance})
	s := b.Summary()
	if !strings.Contains(s, "balance  2") {
		t.Fatalf("Summary = %q", s)
	}
	e := Event{At: time.Second, Kind: Migrate, Core: 1, OtherCore: 2, Thread: 3, Other: 4}
	if !strings.Contains(e.String(), "migrate") {
		t.Fatalf("Event.String = %q", e.String())
	}
	if Kind(200).String() != "kind(200)" {
		t.Fatal("unknown kind string")
	}
	if b.Count(Kind(200)) != 0 {
		t.Fatal("unknown kind count")
	}
}
