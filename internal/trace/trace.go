// Package trace records scheduler-level events — context switches, wakeups,
// migrations, preemptions — into a bounded in-memory buffer. The paper's
// analysis sections count exactly these events (e.g. "ab is preempted 2
// million times", §5.3); tests and the overhead experiment read them back.
package trace

import (
	"fmt"
	"strings"
	"time"
)

// Kind classifies a trace event.
type Kind uint8

const (
	// Switch: a core switched from one thread to another (either may be idle).
	Switch Kind = iota
	// Wakeup: a sleeping/blocked thread became runnable.
	Wakeup
	// Migrate: a runnable thread moved between cores (balancer or steal).
	Migrate
	// Preempt: the running thread was involuntarily descheduled while runnable.
	Preempt
	// Fork: a thread was created.
	Fork
	// Exit: a thread terminated.
	Exit
	// Balance: a load-balancer invocation ran.
	Balance
	// Steal: an idle core pulled work.
	Steal

	numKinds
)

// String returns the event kind name.
func (k Kind) String() string {
	switch k {
	case Switch:
		return "switch"
	case Wakeup:
		return "wakeup"
	case Migrate:
		return "migrate"
	case Preempt:
		return "preempt"
	case Fork:
		return "fork"
	case Exit:
		return "exit"
	case Balance:
		return "balance"
	case Steal:
		return "steal"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one trace record. Thread and Other are thread IDs (0 = none /
// idle); Core and OtherCore are core IDs (-1 = none).
type Event struct {
	At        time.Duration
	Kind      Kind
	Core      int
	OtherCore int
	Thread    int
	Other     int
}

// String renders the event for debugging output.
func (e Event) String() string {
	return fmt.Sprintf("%12v %-8s core=%d->%d thr=%d other=%d",
		e.At, e.Kind, e.Core, e.OtherCore, e.Thread, e.Other)
}

// Buffer collects events up to a capacity, then keeps only counts. Counting
// never stops, so the §6.3-style statistics stay exact even when the ring is
// full.
type Buffer struct {
	cap    int
	events []Event
	counts [numKinds]uint64
	// preemptPerThread counts preemptions per thread, needed for the apache
	// analysis. Thread IDs are dense, so a lazily-grown slice indexed by ID
	// replaces the former map, keeping hashing out of the per-preempt path.
	preemptPerThread []uint64
}

// New returns a buffer retaining at most capacity full event records.
// capacity <= 0 keeps counts only.
func New(capacity int) *Buffer {
	return &Buffer{cap: capacity}
}

// Record adds an event.
func (b *Buffer) Record(e Event) {
	if int(e.Kind) < len(b.counts) {
		b.counts[e.Kind]++
	}
	if e.Kind == Preempt && e.Thread >= 0 {
		if e.Thread >= len(b.preemptPerThread) {
			grown := make([]uint64, max(e.Thread+1, 2*len(b.preemptPerThread)))
			copy(grown, b.preemptPerThread)
			b.preemptPerThread = grown
		}
		b.preemptPerThread[e.Thread]++
	}
	if len(b.events) < b.cap {
		b.events = append(b.events, e)
	}
}

// Count returns how many events of kind k were recorded (including dropped
// ones).
func (b *Buffer) Count(k Kind) uint64 {
	if int(k) >= len(b.counts) {
		return 0
	}
	return b.counts[k]
}

// PreemptionsOf returns how many times thread id was preempted.
func (b *Buffer) PreemptionsOf(id int) uint64 {
	if id < 0 || id >= len(b.preemptPerThread) {
		return 0
	}
	return b.preemptPerThread[id]
}

// Events returns the retained event records (oldest first). The returned
// slice must not be modified.
func (b *Buffer) Events() []Event { return b.events }

// Len returns the number of retained records.
func (b *Buffer) Len() int { return len(b.events) }

// Filter returns retained events matching kind k.
func (b *Buffer) Filter(k Kind) []Event {
	var out []Event
	for _, e := range b.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Summary renders per-kind counts, one per line, in kind order.
func (b *Buffer) Summary() string {
	var sb strings.Builder
	for k := Kind(0); k < numKinds; k++ {
		if b.counts[k] > 0 {
			fmt.Fprintf(&sb, "%-8s %d\n", k, b.counts[k])
		}
	}
	return sb.String()
}
