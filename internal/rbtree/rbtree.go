// Package rbtree implements the red-black tree CFS uses as its per-core
// runqueue, ordered by (vruntime, tiebreak id). Like the kernel's
// rb_leftmost-cached tree, the minimum element is available in O(1), which
// is the only lookup CFS's pick_next path performs.
package rbtree

// Item is an element stored in the tree. Less must define a strict weak
// ordering; equal items are permitted and ordered arbitrarily but stably by
// insertion structure.
type Item interface {
	Less(than Item) bool
}

type color bool

const (
	red   color = false
	black color = true
)

type node struct {
	item                Item
	left, right, parent *node
	color               color
}

// Tree is a red-black tree with a cached leftmost node. The zero value is
// an empty tree ready to use.
type Tree struct {
	root     *node
	leftmost *node
	size     int
	// nodes indexes items to their nodes so Delete is O(log n) without the
	// caller holding node handles. Items must be distinct pointers.
	nodes map[Item]*node
}

// Len returns the number of items in the tree.
func (t *Tree) Len() int { return t.size }

// Min returns the smallest item, or nil if the tree is empty.
func (t *Tree) Min() Item {
	if t.leftmost == nil {
		return nil
	}
	return t.leftmost.item
}

// Contains reports whether item is in the tree.
func (t *Tree) Contains(item Item) bool {
	_, ok := t.nodes[item]
	return ok
}

// Insert adds item to the tree. Inserting an item that is already present
// panics: the schedulers must never double-enqueue a thread, and catching it
// here turns a subtle accounting bug into a loud failure.
func (t *Tree) Insert(item Item) {
	if t.nodes == nil {
		t.nodes = make(map[Item]*node)
	}
	if _, ok := t.nodes[item]; ok {
		panic("rbtree: duplicate insert")
	}
	n := &node{item: item, color: red}
	t.nodes[item] = n
	t.size++

	if t.root == nil {
		n.color = black
		t.root = n
		t.leftmost = n
		return
	}
	cur := t.root
	wasLeftmostPath := true
	for {
		if item.Less(cur.item) {
			if cur.left == nil {
				cur.left = n
				n.parent = cur
				break
			}
			cur = cur.left
		} else {
			wasLeftmostPath = false
			if cur.right == nil {
				cur.right = n
				n.parent = cur
				break
			}
			cur = cur.right
		}
	}
	if wasLeftmostPath {
		t.leftmost = n
	}
	t.fixInsert(n)
}

// Delete removes item from the tree. Deleting an absent item panics for the
// same reason Insert does.
func (t *Tree) Delete(item Item) {
	n, ok := t.nodes[item]
	if !ok {
		panic("rbtree: delete of absent item")
	}
	delete(t.nodes, item)
	t.size--
	if t.leftmost == n {
		t.leftmost = t.successor(n)
	}
	t.deleteNode(n)
}

// PopMin removes and returns the smallest item, or nil if empty.
func (t *Tree) PopMin() Item {
	if t.leftmost == nil {
		return nil
	}
	it := t.leftmost.item
	t.Delete(it)
	return it
}

// Ascend calls fn on each item in ascending order until fn returns false.
func (t *Tree) Ascend(fn func(Item) bool) {
	for n := t.leftmost; n != nil; n = t.successor(n) {
		if !fn(n.item) {
			return
		}
	}
}

// Items returns all items in ascending order.
func (t *Tree) Items() []Item {
	out := make([]Item, 0, t.size)
	t.Ascend(func(it Item) bool {
		out = append(out, it)
		return true
	})
	return out
}

func (t *Tree) successor(n *node) *node {
	if n.right != nil {
		n = n.right
		for n.left != nil {
			n = n.left
		}
		return n
	}
	for n.parent != nil && n == n.parent.right {
		n = n.parent
	}
	return n.parent
}

func (t *Tree) rotateLeft(x *node) {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *Tree) rotateRight(x *node) {
	y := x.left
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

func (t *Tree) fixInsert(z *node) {
	for z.parent != nil && z.parent.color == red {
		gp := z.parent.parent
		if z.parent == gp.left {
			u := gp.right
			if u != nil && u.color == red {
				z.parent.color = black
				u.color = black
				gp.color = red
				z = gp
				continue
			}
			if z == z.parent.right {
				z = z.parent
				t.rotateLeft(z)
			}
			z.parent.color = black
			gp.color = red
			t.rotateRight(gp)
		} else {
			u := gp.left
			if u != nil && u.color == red {
				z.parent.color = black
				u.color = black
				gp.color = red
				z = gp
				continue
			}
			if z == z.parent.left {
				z = z.parent
				t.rotateRight(z)
			}
			z.parent.color = black
			gp.color = red
			t.rotateLeft(gp)
		}
	}
	t.root.color = black
}

func (t *Tree) transplant(u, v *node) {
	switch {
	case u.parent == nil:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	if v != nil {
		v.parent = u.parent
	}
}

func (t *Tree) deleteNode(z *node) {
	y := z
	yColor := y.color
	var x *node
	var xParent *node
	switch {
	case z.left == nil:
		x = z.right
		xParent = z.parent
		t.transplant(z, z.right)
	case z.right == nil:
		x = z.left
		xParent = z.parent
		t.transplant(z, z.left)
	default:
		y = z.right
		for y.left != nil {
			y = y.left
		}
		yColor = y.color
		x = y.right
		if y.parent == z {
			xParent = y
		} else {
			xParent = y.parent
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.color = z.color
	}
	if yColor == black {
		t.fixDelete(x, xParent)
	}
}

func (t *Tree) fixDelete(x *node, parent *node) {
	for x != t.root && isBlack(x) {
		if parent == nil {
			break
		}
		if x == parent.left {
			w := parent.right
			if w != nil && w.color == red {
				w.color = black
				parent.color = red
				t.rotateLeft(parent)
				w = parent.right
			}
			if w == nil {
				x = parent
				parent = x.parent
				continue
			}
			if isBlack(w.left) && isBlack(w.right) {
				w.color = red
				x = parent
				parent = x.parent
				continue
			}
			if isBlack(w.right) {
				if w.left != nil {
					w.left.color = black
				}
				w.color = red
				t.rotateRight(w)
				w = parent.right
			}
			w.color = parent.color
			parent.color = black
			if w.right != nil {
				w.right.color = black
			}
			t.rotateLeft(parent)
			x = t.root
			parent = nil
		} else {
			w := parent.left
			if w != nil && w.color == red {
				w.color = black
				parent.color = red
				t.rotateRight(parent)
				w = parent.left
			}
			if w == nil {
				x = parent
				parent = x.parent
				continue
			}
			if isBlack(w.right) && isBlack(w.left) {
				w.color = red
				x = parent
				parent = x.parent
				continue
			}
			if isBlack(w.left) {
				if w.right != nil {
					w.right.color = black
				}
				w.color = red
				t.rotateLeft(w)
				w = parent.left
			}
			w.color = parent.color
			parent.color = black
			if w.left != nil {
				w.left.color = black
			}
			t.rotateRight(parent)
			x = t.root
			parent = nil
		}
	}
	if x != nil {
		x.color = black
	}
}

func isBlack(n *node) bool { return n == nil || n.color == black }

// checkInvariants validates red-black properties; exported to the test via
// export_test.go.
func (t *Tree) checkInvariants() error {
	if t.root == nil {
		if t.size != 0 || t.leftmost != nil {
			return errInvariant("empty tree with nonzero size or leftmost")
		}
		return nil
	}
	if t.root.color != black {
		return errInvariant("root is red")
	}
	// Leftmost cache must point at the actual minimum.
	m := t.root
	for m.left != nil {
		m = m.left
	}
	if m != t.leftmost {
		return errInvariant("leftmost cache stale")
	}
	_, err := checkNode(t.root)
	if err != nil {
		return err
	}
	// Ordering: in-order traversal must be non-decreasing.
	var prev Item
	bad := false
	t.Ascend(func(it Item) bool {
		if prev != nil && it.Less(prev) {
			bad = true
			return false
		}
		prev = it
		return true
	})
	if bad {
		return errInvariant("in-order traversal out of order")
	}
	return nil
}

type errInvariant string

func (e errInvariant) Error() string { return "rbtree: " + string(e) }

func checkNode(n *node) (blackHeight int, err error) {
	if n == nil {
		return 1, nil
	}
	if n.color == red {
		if !isBlack(n.left) || !isBlack(n.right) {
			return 0, errInvariant("red node with red child")
		}
	}
	if n.left != nil && n.left.parent != n {
		return 0, errInvariant("broken parent link (left)")
	}
	if n.right != nil && n.right.parent != n {
		return 0, errInvariant("broken parent link (right)")
	}
	lh, err := checkNode(n.left)
	if err != nil {
		return 0, err
	}
	rh, err := checkNode(n.right)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, errInvariant("black-height mismatch")
	}
	if n.color == black {
		lh++
	}
	return lh, nil
}
