package rbtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

type intItem struct {
	key int
	id  int
}

func (a *intItem) Less(b Item) bool {
	o := b.(*intItem)
	if a.key != o.key {
		return a.key < o.key
	}
	return a.id < o.id
}

func TestEmpty(t *testing.T) {
	var tr Tree
	if tr.Len() != 0 || tr.Min() != nil || tr.PopMin() != nil {
		t.Fatal("empty tree misbehaves")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDeleteSmall(t *testing.T) {
	var tr Tree
	items := []*intItem{{5, 0}, {3, 1}, {8, 2}, {1, 3}, {4, 4}, {7, 5}, {9, 6}}
	for _, it := range items {
		tr.Insert(it)
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after insert %v: %v", it.key, err)
		}
	}
	if tr.Len() != len(items) {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Min().(*intItem).key != 1 {
		t.Fatalf("Min = %v", tr.Min())
	}
	tr.Delete(items[3]) // key 1
	if tr.Min().(*intItem).key != 3 {
		t.Fatalf("Min after delete = %v", tr.Min())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPopMinOrder(t *testing.T) {
	var tr Tree
	rng := rand.New(rand.NewSource(1))
	var keys []int
	for i := 0; i < 200; i++ {
		k := rng.Intn(50) // duplicates on purpose
		keys = append(keys, k)
		tr.Insert(&intItem{k, i})
	}
	sort.Ints(keys)
	for i, want := range keys {
		got := tr.PopMin().(*intItem).key
		if got != want {
			t.Fatalf("pop %d: got %d, want %d", i, got, want)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len after draining = %d", tr.Len())
	}
}

func TestDuplicateInsertPanics(t *testing.T) {
	var tr Tree
	it := &intItem{1, 1}
	tr.Insert(it)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate insert did not panic")
		}
	}()
	tr.Insert(it)
}

func TestDeleteAbsentPanics(t *testing.T) {
	var tr Tree
	defer func() {
		if recover() == nil {
			t.Fatal("absent delete did not panic")
		}
	}()
	tr.Delete(&intItem{1, 1})
}

func TestContains(t *testing.T) {
	var tr Tree
	a, b := &intItem{1, 1}, &intItem{2, 2}
	tr.Insert(a)
	if !tr.Contains(a) || tr.Contains(b) {
		t.Fatal("Contains wrong")
	}
}

func TestAscendEarlyStop(t *testing.T) {
	var tr Tree
	for i := 0; i < 10; i++ {
		tr.Insert(&intItem{i, i})
	}
	var n int
	tr.Ascend(func(Item) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("visited %d, want 3", n)
	}
	if got := len(tr.Items()); got != 10 {
		t.Fatalf("Items len = %d", got)
	}
}

// TestRandomOperations drives the tree with a random insert/delete workload
// checking invariants continuously, mimicking the enqueue/dequeue churn a
// runqueue sees.
func TestRandomOperations(t *testing.T) {
	var tr Tree
	rng := rand.New(rand.NewSource(42))
	live := map[*intItem]bool{}
	var liveList []*intItem
	for step := 0; step < 5000; step++ {
		if len(liveList) == 0 || rng.Intn(100) < 55 {
			it := &intItem{rng.Intn(1000), step}
			tr.Insert(it)
			live[it] = true
			liveList = append(liveList, it)
		} else {
			i := rng.Intn(len(liveList))
			it := liveList[i]
			liveList[i] = liveList[len(liveList)-1]
			liveList = liveList[:len(liveList)-1]
			delete(live, it)
			tr.Delete(it)
		}
		if step%257 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if tr.Len() != len(live) {
				t.Fatalf("step %d: Len = %d, live = %d", step, tr.Len(), len(live))
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Property: for any sequence of keys, inserting then draining with PopMin
// yields the sorted sequence and keeps the tree valid.
func TestQuickInsertDrainSorted(t *testing.T) {
	f := func(keys []int16) bool {
		var tr Tree
		for i, k := range keys {
			tr.Insert(&intItem{int(k), i})
		}
		if tr.CheckInvariants() != nil {
			return false
		}
		want := make([]int, len(keys))
		for i, k := range keys {
			want[i] = int(k)
		}
		sort.Ints(want)
		for _, w := range want {
			got := tr.PopMin()
			if got == nil || got.(*intItem).key != w {
				return false
			}
		}
		return tr.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsertPopMin(b *testing.B) {
	var tr Tree
	rng := rand.New(rand.NewSource(7))
	items := make([]*intItem, 1024)
	for i := range items {
		items[i] = &intItem{rng.Intn(1 << 20), i}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := items[i%len(items)]
		it.id = i // keep identities unique across rounds
		tr.Insert(it)
		if tr.Len() > 512 {
			tr.PopMin()
		}
	}
}
