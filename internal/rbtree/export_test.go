package rbtree

// CheckInvariants exposes the internal validator to tests.
func (t *Tree) CheckInvariants() error { return t.checkInvariants() }
