package memo

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// File format of one on-disk entry:
//
//	magic   8 bytes  "sbmemo1\n"
//	cost    8 bytes  little-endian uint64, simulate wall time in ns
//	length  8 bytes  little-endian uint64, payload byte count
//	payload length bytes
//	sum     32 bytes sha256(payload)
//
// The trailing checksum (not just a length) catches bit rot and partial
// writes that happen to keep the length plausible; anything that fails a
// check is a miss, never an error — Put simply rewrites the entry.
const (
	diskMagic  = "sbmemo1\n"
	diskHeader = len(diskMagic) + 8 + 8
	diskFooter = sha256.Size
)

// Stats is a point-in-time snapshot of a cache's counters. WallSaved sums
// the recorded simulate cost of every hit — the wall time the cache's
// consumers did not spend.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Stores    uint64
	Corrupt   uint64
	BytesRead uint64
	// BytesWritten counts payload bytes accepted by Put (memory layer);
	// disk write failures are best-effort and tracked in StoreErrs.
	BytesWritten uint64
	StoreErrs    uint64
	WallSaved    time.Duration
}

// String renders the snapshot as the CLI's -cache-stats line.
func (s Stats) String() string {
	return fmt.Sprintf("%d hits, %d misses, %d stores, %.1f MiB read, %.1f MiB written, %s wall saved",
		s.Hits, s.Misses, s.Stores,
		float64(s.BytesRead)/(1<<20), float64(s.BytesWritten)/(1<<20),
		s.WallSaved.Round(time.Millisecond))
}

// entry is one cached result in the memory layer.
type entry struct {
	data []byte
	cost time.Duration
}

// Cache is a two-layer content-addressed result store, safe for concurrent
// use by the runner pool. The memory layer holds every entry touched this
// process; the disk layer (optional) persists entries across processes.
// Entries are immutable once stored: a key's payload can only ever be
// replaced by identical bytes, so last-write-wins races are harmless.
type Cache struct {
	mu  sync.RWMutex
	mem map[Key]entry
	dir string // "" = memory only

	tmpSeq atomic.Uint64

	hits, misses, stores  atomic.Uint64
	corrupt, storeErrs    atomic.Uint64
	bytesRead, bytesWrite atomic.Uint64
	wallSavedNS           atomic.Int64
}

// New builds a cache. dir "" is memory-only; otherwise the directory is
// created (mkdir -p) and entries persist there, one file per fingerprint,
// sharded by the key's first byte.
func New(dir string) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("memo: creating cache directory: %w", err)
		}
	}
	return &Cache{mem: map[Key]entry{}, dir: dir}, nil
}

// Dir returns the disk layer's directory ("" when memory-only).
func (c *Cache) Dir() string { return c.dir }

// path is the on-disk location for a key.
func (c *Cache) path(k Key) string {
	hex := k.String()
	return filepath.Join(c.dir, hex[:2], hex+".memo")
}

// Get looks the key up, memory first, then disk. A hit returns the stored
// payload (shared, read-only) and the recorded simulate cost. Corrupt or
// truncated disk entries count as misses.
func (c *Cache) Get(k Key) (data []byte, cost time.Duration, ok bool) {
	c.mu.RLock()
	e, ok := c.mem[k]
	c.mu.RUnlock()
	if !ok && c.dir != "" {
		if e, ok = c.readDisk(k); ok {
			// Promote, so repeated hits skip the filesystem. Another worker
			// may have raced the same promotion; the bytes are identical.
			c.mu.Lock()
			c.mem[k] = e
			c.mu.Unlock()
		}
	}
	if !ok {
		c.misses.Add(1)
		return nil, 0, false
	}
	c.hits.Add(1)
	c.bytesRead.Add(uint64(len(e.data)))
	c.wallSavedNS.Add(int64(e.cost))
	return e.data, e.cost, true
}

// Put stores a freshly computed result under its key. cost is the wall
// time the computation took, paid back into WallSaved on every future hit.
// The payload is retained by reference; callers must not mutate it after.
// Disk writes are atomic (tmp + rename) and best-effort: a full disk
// degrades the cache, not the run.
func (c *Cache) Put(k Key, data []byte, cost time.Duration) {
	if k.IsZero() {
		return
	}
	c.mu.Lock()
	_, dup := c.mem[k]
	if !dup {
		c.mem[k] = entry{data: data, cost: cost}
	}
	c.mu.Unlock()
	if dup {
		return
	}
	c.stores.Add(1)
	c.bytesWrite.Add(uint64(len(data)))
	if c.dir != "" {
		if err := c.writeDisk(k, data, cost); err != nil {
			c.storeErrs.Add(1)
		}
	}
}

// NoteCorrupt records an entry whose payload failed the caller's decode —
// reachable only if bytes mutate after the checksum passed, but counted
// so a miscounting cache never hides it.
func (c *Cache) NoteCorrupt() { c.corrupt.Add(1) }

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Stores:       c.stores.Load(),
		Corrupt:      c.corrupt.Load(),
		BytesRead:    c.bytesRead.Load(),
		BytesWritten: c.bytesWrite.Load(),
		StoreErrs:    c.storeErrs.Load(),
		WallSaved:    time.Duration(c.wallSavedNS.Load()),
	}
}

// readDisk loads and validates one on-disk entry. Every failure mode —
// absent, unreadable, short, bad magic, bad length, bad checksum — is a
// miss; corruption additionally bumps the Corrupt counter.
func (c *Cache) readDisk(k Key) (entry, bool) {
	raw, err := os.ReadFile(c.path(k))
	if err != nil {
		return entry{}, false
	}
	if len(raw) < diskHeader+diskFooter || string(raw[:len(diskMagic)]) != diskMagic {
		c.corrupt.Add(1)
		return entry{}, false
	}
	cost := binary.LittleEndian.Uint64(raw[len(diskMagic):])
	plen := binary.LittleEndian.Uint64(raw[len(diskMagic)+8:])
	if plen != uint64(len(raw)-diskHeader-diskFooter) {
		c.corrupt.Add(1)
		return entry{}, false
	}
	payload := raw[diskHeader : diskHeader+int(plen)]
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(raw[diskHeader+int(plen):]) {
		c.corrupt.Add(1)
		return entry{}, false
	}
	return entry{data: payload, cost: time.Duration(cost)}, true
}

// writeDisk persists one entry atomically: full bytes to a private tmp
// file in the final directory, then rename. Readers see either the old
// complete entry or the new complete entry, never a partial write; tmp
// names carry the pid and a sequence number so concurrent processes
// sharing a cache directory cannot collide.
func (c *Cache) writeDisk(k Key, data []byte, cost time.Duration) error {
	final := c.path(k)
	dir := filepath.Dir(final)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	buf := make([]byte, 0, diskHeader+len(data)+diskFooter)
	buf = append(buf, diskMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cost))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(data)))
	buf = append(buf, data...)
	sum := sha256.Sum256(data)
	buf = append(buf, sum[:]...)

	tmp := fmt.Sprintf("%s.tmp.%d.%d", final, os.Getpid(), c.tmpSeq.Add(1))
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
