// Package memo is the content-addressed trial-result cache: deterministic
// simulations make a trial's outcome a pure function of its inputs, so a
// stable fingerprint over those inputs (compiled scenario cell, resolved
// scheduler parameters, seed, engine selection, telemetry config) addresses
// the serialized result forever. The cache has two layers — an in-process
// concurrent store and an optional on-disk directory (one file per
// fingerprint, written atomically) — and every lookup path treats anything
// suspicious (missing, truncated, corrupt, wrong magic) as a miss, so a
// damaged cache can cost time but never correctness.
//
// Keys are produced with a Hasher whose writes are tagged and
// length-framed: two field sequences that differ anywhere — even by where
// one string ends and the next begins — produce different keys. Callers
// seed the Hasher with a schema-version salt; bumping the salt retires
// every previously cached byte at once, which is how result-format changes
// are made safe (see DESIGN §13 for the invalidation rules).
package memo

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
)

// Key is a content-addressed fingerprint. The zero Key means "uncacheable"
// everywhere a Key is consumed.
type Key [sha256.Size]byte

// IsZero reports whether k is the zero (uncacheable) key.
func (k Key) IsZero() bool { return k == Key{} }

// String renders the key as lowercase hex — also the on-disk file name.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Field tags, one per Hasher write kind. Tagging prevents cross-kind
// collisions (the string "1" and the int 1 hash differently).
const (
	tagString = 0x01
	tagBytes  = 0x02
	tagInt    = 0x03
	tagFloat  = 0x04
	tagBool   = 0x05
	tagKey    = 0x06
)

// Hasher accumulates tagged, length-framed fields into a Key. It is not
// safe for concurrent use; build one per fingerprint.
type Hasher struct {
	h   hash.Hash
	buf [10]byte
}

// NewHasher starts a fingerprint salted with a schema-version string. The
// salt participates in the hash like any other field, so changing it
// changes every key derived from it.
func NewHasher(salt string) *Hasher {
	h := &Hasher{h: sha256.New()}
	h.Str(salt)
	return h
}

// frame writes the field tag and payload length, the framing that keeps
// adjacent fields from bleeding into each other.
func (h *Hasher) frame(tag byte, n int) {
	h.buf[0] = tag
	binary.LittleEndian.PutUint64(h.buf[1:9], uint64(n))
	h.h.Write(h.buf[:9])
}

// Str folds a string field into the fingerprint.
func (h *Hasher) Str(s string) *Hasher {
	h.frame(tagString, len(s))
	h.h.Write([]byte(s))
	return h
}

// Bytes folds a raw byte field (e.g. canonical JSON) into the fingerprint.
func (h *Hasher) Bytes(b []byte) *Hasher {
	h.frame(tagBytes, len(b))
	h.h.Write(b)
	return h
}

// Int folds a signed integer field into the fingerprint.
func (h *Hasher) Int(v int64) *Hasher {
	h.frame(tagInt, 8)
	binary.LittleEndian.PutUint64(h.buf[:8], uint64(v))
	h.h.Write(h.buf[:8])
	return h
}

// Float folds a float64 field into the fingerprint by exact bit pattern,
// so any representable change — however small — changes the key.
func (h *Hasher) Float(v float64) *Hasher {
	h.frame(tagFloat, 8)
	binary.LittleEndian.PutUint64(h.buf[:8], math.Float64bits(v))
	h.h.Write(h.buf[:8])
	return h
}

// Bool folds a boolean field into the fingerprint.
func (h *Hasher) Bool(v bool) *Hasher {
	b := byte(0)
	if v {
		b = 1
	}
	h.frame(tagBool, 1)
	h.h.Write([]byte{b})
	return h
}

// Key folds an existing key into the fingerprint — how a precomputed
// grid-invariant prefix combines with per-cell fields.
func (h *Hasher) Key(k Key) *Hasher {
	h.frame(tagKey, len(k))
	h.h.Write(k[:])
	return h
}

// Sum finishes the fingerprint. The Hasher must not be reused after.
func (h *Hasher) Sum() Key {
	var k Key
	h.h.Sum(k[:0])
	return k
}

// Derive folds extra integer fields into an existing key — the trial
// runner's way of finalizing a scenario-computed prefix with the resolved
// per-trial seed without re-hashing the whole spec.
func Derive(k Key, extras ...int64) Key {
	h := NewHasher("memo-derive")
	h.Key(k)
	for _, v := range extras {
		h.Int(v)
	}
	return h.Sum()
}
