package memo

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func testKey(s string) Key { return NewHasher("test").Str(s).Sum() }

func TestMemoryCacheRoundTrip(t *testing.T) {
	c, err := New("")
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("a")
	if _, _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, []byte("payload"), 3*time.Second)
	data, cost, ok := c.Get(k)
	if !ok || string(data) != "payload" || cost != 3*time.Second {
		t.Fatalf("got (%q, %v, %v), want (payload, 3s, true)", data, cost, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Stores != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 store", st)
	}
	if st.WallSaved != 3*time.Second {
		t.Fatalf("WallSaved = %v, want 3s", st.WallSaved)
	}
}

func TestDiskCachePersistsAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	k := testKey("persist")

	c1, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1.Put(k, []byte("result-bytes"), 250*time.Millisecond)

	// A fresh instance (fresh process, conceptually) must hit from disk,
	// including the recorded simulate cost.
	c2, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, cost, ok := c2.Get(k)
	if !ok || string(data) != "result-bytes" || cost != 250*time.Millisecond {
		t.Fatalf("disk round trip: got (%q, %v, %v)", data, cost, ok)
	}
	// And promote to memory: a second Get must not require the file.
	if err := os.Remove(c2.path(k)); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c2.Get(k); !ok {
		t.Fatal("promoted entry lost after disk file removed")
	}
}

// corruptions enumerates the damage modes an on-disk entry must survive
// (as misses): each mutator receives the valid file bytes and returns the
// damaged replacement.
var corruptions = map[string]func([]byte) []byte{
	"empty":           func(b []byte) []byte { return nil },
	"truncated-head":  func(b []byte) []byte { return b[:diskHeader/2] },
	"truncated-tail":  func(b []byte) []byte { return b[:len(b)-1] },
	"bad-magic":       func(b []byte) []byte { o := append([]byte(nil), b...); o[0] ^= 0xff; return o },
	"bad-length":      func(b []byte) []byte { o := append([]byte(nil), b...); o[len(diskMagic)+8] ^= 0x01; return o },
	"flipped-payload": func(b []byte) []byte { o := append([]byte(nil), b...); o[diskHeader] ^= 0x01; return o },
	"flipped-sum":     func(b []byte) []byte { o := append([]byte(nil), b...); o[len(o)-1] ^= 0x01; return o },
}

func TestDiskCacheCorruptEntriesAreMisses(t *testing.T) {
	for name, damage := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			k := testKey("victim")
			c, err := New(dir)
			if err != nil {
				t.Fatal(err)
			}
			c.Put(k, []byte("precious"), time.Second)
			path := c.path(k)
			valid, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, damage(valid), 0o644); err != nil {
				t.Fatal(err)
			}

			// A fresh instance sees only the damaged file: must miss.
			fresh, err := New(dir)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, ok := fresh.Get(k); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			// Put repairs; the next instance hits the repaired bytes.
			fresh.Put(k, []byte("precious"), time.Second)
			again, err := New(dir)
			if err != nil {
				t.Fatal(err)
			}
			data, _, ok := again.Get(k)
			if !ok || string(data) != "precious" {
				t.Fatalf("repair failed: got (%q, %v)", data, ok)
			}
		})
	}
}

func TestDiskCacheIgnoresLeftoverTmpFiles(t *testing.T) {
	// A crashed writer leaves a *.tmp.* file behind; it must never be
	// read, and the entry must still be storable and retrievable.
	dir := t.TempDir()
	k := testKey("tmpvictim")
	c, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	final := c.path(k)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(final+".tmp.999.1", []byte("partial gar"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get(k); ok {
		t.Fatal("tmp leftover served as a hit")
	}
	c.Put(k, []byte("good"), time.Second)
	c2, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	if data, _, ok := c2.Get(k); !ok || string(data) != "good" {
		t.Fatalf("entry beside tmp leftover: got (%q, %v)", data, ok)
	}
}

func TestCacheConcurrent(t *testing.T) {
	// Hammer one shared cache from many goroutines over a small key space:
	// the race detector validates the locking, and every Get must return
	// either a miss or the exact stored payload.
	c, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const workers, keys, rounds = 8, 5, 50
	payload := func(ki int) []byte { return bytes.Repeat([]byte{byte(ki)}, 64) }
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				ki := (w + r) % keys
				k := testKey(fmt.Sprintf("k%d", ki))
				if data, _, ok := c.Get(k); ok {
					if !bytes.Equal(data, payload(ki)) {
						t.Errorf("key %d returned wrong payload", ki)
						return
					}
				} else {
					c.Put(k, payload(ki), time.Millisecond)
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Stores == 0 || st.Hits == 0 {
		t.Fatalf("expected both stores and hits, got %+v", st)
	}
}
