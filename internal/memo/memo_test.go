package memo

import (
	"testing"
)

func TestHasherFraming(t *testing.T) {
	// Adjacent fields must not bleed: ("ab","c") != ("a","bc").
	a := NewHasher("s").Str("ab").Str("c").Sum()
	b := NewHasher("s").Str("a").Str("bc").Sum()
	if a == b {
		t.Fatal("field boundaries collapsed: (ab,c) == (a,bc)")
	}
}

func TestHasherTagKinds(t *testing.T) {
	// The same payload bytes under different field kinds must differ.
	asStr := NewHasher("s").Str("\x01\x00\x00\x00\x00\x00\x00\x00").Sum()
	asInt := NewHasher("s").Int(1).Sum()
	if asStr == asInt {
		t.Fatal("string and int fields with identical bytes collided")
	}
	if NewHasher("s").Bool(true).Sum() == NewHasher("s").Bool(false).Sum() {
		t.Fatal("bool values collided")
	}
}

func TestHasherSalt(t *testing.T) {
	a := NewHasher("v1").Str("x").Sum()
	b := NewHasher("v2").Str("x").Sum()
	if a == b {
		t.Fatal("salt change did not change the key")
	}
}

func TestHasherDeterminism(t *testing.T) {
	build := func() Key {
		return NewHasher("s").Str("spec").Int(8).Float(0.25).Bool(true).Bytes([]byte{1, 2}).Sum()
	}
	if build() != build() {
		t.Fatal("identical field sequences produced different keys")
	}
}

func TestHasherFloatBits(t *testing.T) {
	a := NewHasher("s").Float(0.1).Sum()
	b := NewHasher("s").Float(0.1 + 1e-17).Sum() // same float64 value
	if a != b {
		t.Fatal("identical float64 bit patterns produced different keys")
	}
	c := NewHasher("s").Float(0.30000000000000004).Sum()
	d := NewHasher("s").Float(0.3).Sum()
	if c == d {
		t.Fatal("one-ulp-apart floats collided")
	}
}

func TestDerive(t *testing.T) {
	base := NewHasher("s").Str("cell").Sum()
	k1 := Derive(base, 1)
	k2 := Derive(base, 2)
	if k1 == k2 {
		t.Fatal("different seeds derived the same key")
	}
	if k1 != Derive(base, 1) {
		t.Fatal("Derive is not deterministic")
	}
	if k1 == base {
		t.Fatal("Derive returned its input unchanged")
	}
}

func TestZeroKey(t *testing.T) {
	var k Key
	if !k.IsZero() {
		t.Fatal("zero key does not report IsZero")
	}
	if NewHasher("s").Sum().IsZero() {
		t.Fatal("a computed key reported IsZero")
	}
}
