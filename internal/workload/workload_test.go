package workload

import (
	"testing"
	"time"

	"repro/internal/ipc"
	"repro/internal/sim"
	"repro/internal/topo"
)

func newMachine(cores int) *sim.Machine {
	tp := topo.MustNew(topo.Config{NUMANodes: 1, LLCsPerNode: 1, CoresPerLLC: cores})
	return sim.NewMachine(tp, sim.NewFIFO(), sim.Options{Seed: 5, Cost: &sim.CostModel{}})
}

func TestLoopCountsOps(t *testing.T) {
	m := newMachine(1)
	var ops int
	m.StartThread("l", "a", 0, &Loop{Burst: time.Millisecond, OnOp: func() { ops++ }})
	m.Run(100 * time.Millisecond)
	if ops < 95 || ops > 101 {
		t.Fatalf("ops = %d, want ~100", ops)
	}
}

func TestFiniteComputeExitsAfterN(t *testing.T) {
	m := newMachine(1)
	var ops int
	done := false
	th := m.StartThread("f", "a", 0, &FiniteCompute{
		Burst: time.Millisecond, N: 10, IOSleep: time.Millisecond,
		OnOp: func() { ops++ }, OnDone: func() { done = true },
	})
	m.Run(time.Second)
	if !done || ops != 10 {
		t.Fatalf("done=%v ops=%d", done, ops)
	}
	if th.State() != sim.StateDead {
		t.Fatal("not dead")
	}
	if th.SleepTime < 9*time.Millisecond {
		t.Fatalf("IOSleep not slept: %v", th.SleepTime)
	}
}

func TestBarrierWorkerPhases(t *testing.T) {
	m := newMachine(4)
	bar := ipc.NewBarrier("b", 4, time.Millisecond)
	var phases [4]int
	for i := 0; i < 4; i++ {
		i := i
		m.StartThread("w", "hpc", 0, &BarrierWorker{
			Bar: bar, Phase: time.Duration(i+1) * time.Millisecond,
			Phases: 5, OnPhase: func() { phases[i]++ },
		})
	}
	m.Run(time.Second)
	for i, p := range phases {
		if p != 5 {
			t.Fatalf("worker %d: %d phases", i, p)
		}
	}
}

func TestServerWorkerWithLock(t *testing.T) {
	m := newMachine(2)
	q := ipc.NewReqQueue("db")
	mu := ipc.NewMutex("dblock")
	var done int
	for i := 0; i < 4; i++ {
		m.StartThread("w", "db", 0, &ServerWorker{
			Q: q, Mu: mu, CritPermille: 1000, Crit: 100 * time.Microsecond,
			OnDone: func() { done++ },
		})
	}
	n := 0
	m.Every(time.Millisecond, time.Millisecond, func() bool {
		n++
		q.Push(m, 500*time.Microsecond)
		return n < 100
	})
	m.Run(5 * time.Second)
	if done != 100 {
		t.Fatalf("served %d/100", done)
	}
	if mu.Owner() != nil {
		t.Fatal("lock leaked")
	}
}

func TestBatchClientRoundTrips(t *testing.T) {
	m := newMachine(1)
	q := ipc.NewReqQueue("httpd")
	resp := sim.NewWaitQueue("resp")
	outstanding := 0
	var trips int
	m.StartThread("ab", "ab", 0, &BatchClient{
		Q: q, Window: 10, SendCost: 10 * time.Microsecond,
		Service: 100 * time.Microsecond, RespWQ: resp, Outstanding: &outstanding,
		OnRoundTrip: func() { trips++ },
	})
	for i := 0; i < 4; i++ {
		m.StartThread("httpd", "httpd", 0, &RespondingWorker{Q: q, RespWQ: resp, Outstanding: &outstanding})
	}
	m.Run(time.Second)
	if trips < 100 {
		t.Fatalf("round trips = %d, want many", trips)
	}
	if outstanding != 0 && q.Depth() > 10 {
		t.Fatalf("protocol leak: outstanding=%d depth=%d", outstanding, q.Depth())
	}
}

func TestForkerCreatesChildrenWithInit(t *testing.T) {
	m := newMachine(1)
	var kids []*sim.Thread
	master := m.StartThread("master", "app", 0, &Forker{
		N: 5, InitCost: time.Millisecond,
		Child: func(i int) (string, sim.Program) {
			return "kid", &FiniteCompute{Burst: time.Millisecond, N: 1}
		},
		OnForked: func(i int, t *sim.Thread) { kids = append(kids, t) },
	})
	m.Run(time.Second)
	if len(kids) != 5 {
		t.Fatalf("forked %d/5", len(kids))
	}
	// Master burned 5×1ms init.
	if master.RunTime < 5*time.Millisecond {
		t.Fatalf("master RunTime = %v", master.RunTime)
	}
	for _, k := range kids {
		if k.State() != sim.StateDead {
			t.Fatalf("kid %v not dead", k)
		}
	}
}

func TestSpinPollerElasticity(t *testing.T) {
	// Under FIFO (no priority), the poller's spin is cut short whenever the
	// compute thread progresses; verify the release path works end-to-end.
	m := newMachine(2)
	progress := sim.NewWaitQueue("progress")
	// Jitter breaks phase-locking between the poll period and the
	// broadcast instants.
	m.StartThread("compute", "a", 0, &Loop{Burst: time.Millisecond, JitterPct: 30, Progress: progress})
	poller := m.StartThread("poll", "a", 0, &SpinPoller{Progress: progress, Period: 5 * time.Millisecond, Budget: 50 * time.Millisecond})
	m.Run(time.Second)
	// On a 2-core machine the compute thread runs concurrently, so every
	// poll is released at the next ~1ms progress broadcast, not the 50ms
	// budget: poller runtime ≈ #polls × ~0.5ms ≪ budget-bound total.
	if poller.RunTime > 400*time.Millisecond {
		t.Fatalf("poller burned %v; spin release broken", poller.RunTime)
	}
	if poller.RunTime < 20*time.Millisecond {
		t.Fatalf("poller burned only %v; spin not happening", poller.RunTime)
	}
}

func TestCascadeChain(t *testing.T) {
	m := newMachine(2)
	const n = 10
	wqs := make([]*sim.WaitQueue, n)
	released := make([]bool, n)
	for i := range wqs {
		wqs[i] = sim.NewWaitQueue("c")
	}
	awake := 0
	for i := 0; i < n; i++ {
		cw := &CascadeWorker{
			Self: wqs[i], Released: &released[i], Chunk: time.Millisecond,
			OnAwake: func() { awake++ },
		}
		if i+1 < n {
			next := i + 1
			cw.ReleaseNext = func(ctx *sim.Ctx) {
				released[next] = true
				ctx.Broadcast(wqs[next])
			}
		}
		m.StartThread("cw", "cray", 0, cw)
	}
	// Kick the first worker (flag before broadcast: level-triggered).
	m.After(10*time.Millisecond, func() { released[0] = true; m.Broadcast(wqs[0]) })
	m.Run(time.Second)
	if awake != n {
		t.Fatalf("awake = %d/%d", awake, n)
	}
}

func TestPipelineFlows(t *testing.T) {
	m := newMachine(4)
	p1 := ipc.NewPipe("s1", 4)
	p2 := ipc.NewPipe("s2", 4)
	var out int
	m.StartThread("src", "pl", 0, &Source{Out: p1, Cost: 100 * time.Microsecond, N: 50})
	m.StartThread("mid", "pl", 0, &PipelineStage{In: p1, Out: p2, Cost: 200 * time.Microsecond})
	m.StartThread("sink", "pl", 0, &PipelineStage{In: p2, Cost: 100 * time.Microsecond, OnItem: func() { out++ }})
	m.Run(time.Second)
	if out != 50 {
		t.Fatalf("pipeline delivered %d/50", out)
	}
}

func TestKWorkerPeriodicNoise(t *testing.T) {
	m := newMachine(1)
	th := m.StartThread("kworker/0", "kernel", 0, &KWorker{Period: 10 * time.Millisecond, Burst: 100 * time.Microsecond})
	m.Run(time.Second)
	if th.RunTime < 2*time.Millisecond || th.RunTime > 20*time.Millisecond {
		t.Fatalf("kworker runtime = %v, want a few ms", th.RunTime)
	}
	if th.SleepTime < 900*time.Millisecond {
		t.Fatalf("kworker sleep = %v", th.SleepTime)
	}
}

func TestJitterBounds(t *testing.T) {
	m := newMachine(1)
	done := false
	m.StartThread("j", "a", 0, sim.ProgramFunc(func(ctx *sim.Ctx) sim.Op {
		if done {
			return sim.Exit()
		}
		done = true
		for i := 0; i < 100; i++ {
			d := jitter(ctx, time.Millisecond, 20)
			if d < 800*time.Microsecond || d > 1200*time.Microsecond {
				t.Errorf("jitter out of bounds: %v", d)
			}
		}
		if jitter(ctx, time.Millisecond, 0) != time.Millisecond {
			t.Error("zero jitter changed duration")
		}
		return sim.Run(time.Microsecond)
	}))
	m.Run(time.Second)
	if !done {
		t.Fatal("program never ran")
	}
}
