package workload

import (
	"math"
	"testing"
	"time"

	"repro/internal/ipc"
)

// drawN collects n inter-arrival samples.
func drawN(g *ArrivalGen, n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

func TestArrivalGenDeterministicStream(t *testing.T) {
	for _, dist := range []ArrivalDist{Poisson, Uniform, Periodic} {
		a := drawN(NewArrivalGen(dist, time.Millisecond, 7), 1000)
		b := drawN(NewArrivalGen(dist, time.Millisecond, 7), 1000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: sample %d differs across identical generators: %v vs %v", dist, i, a[i], b[i])
			}
		}
	}
}

func TestArrivalGenSeedChangesStream(t *testing.T) {
	for _, dist := range []ArrivalDist{Poisson, Uniform} {
		a := drawN(NewArrivalGen(dist, time.Millisecond, 7), 100)
		b := drawN(NewArrivalGen(dist, time.Millisecond, 8), 100)
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced identical streams", dist)
		}
	}
}

func TestArrivalGenDistributions(t *testing.T) {
	mean := time.Millisecond

	// Periodic: exactly the mean, every time.
	for i, d := range drawN(NewArrivalGen(Periodic, mean, 1), 10) {
		if d != mean {
			t.Fatalf("periodic sample %d = %v, want %v", i, d, mean)
		}
	}

	// Uniform: bounded in [mean/2, 3*mean/2), empirical mean near mean.
	us := drawN(NewArrivalGen(Uniform, mean, 2), 5000)
	var sum time.Duration
	for i, d := range us {
		if d < mean/2 || d >= mean+mean/2 {
			t.Fatalf("uniform sample %d = %v out of [%v, %v)", i, d, mean/2, mean+mean/2)
		}
		sum += d
	}
	if got := float64(sum) / float64(len(us)) / float64(mean); math.Abs(got-1) > 0.05 {
		t.Fatalf("uniform empirical mean = %.3f× configured", got)
	}

	// Poisson: positive, capped, empirical mean near mean.
	ps := drawN(NewArrivalGen(Poisson, mean, 3), 20000)
	sum = 0
	for i, d := range ps {
		if d <= 0 || d > 100*mean {
			t.Fatalf("poisson sample %d = %v out of (0, %v]", i, d, 100*mean)
		}
		sum += d
	}
	if got := float64(sum) / float64(len(ps)) / float64(mean); math.Abs(got-1) > 0.05 {
		t.Fatalf("poisson empirical mean = %.3f× configured", got)
	}
}

func TestOpenLoopOfferedLoadIndependentOfService(t *testing.T) {
	// A periodic 1 ms stream for 100 ms offers ~100 requests whether the
	// server keeps up (fast service) or not (slow service) — the defining
	// open-loop property a closed-loop client lacks.
	for _, service := range []time.Duration{50 * time.Microsecond, 5 * time.Millisecond} {
		m := newMachine(1)
		q := ipc.NewReqQueue("ol")
		arrivals := 0
		OpenLoop{
			Q:       q,
			Gen:     NewArrivalGen(Periodic, time.Millisecond, 1),
			Service: service, OnArrival: func() { arrivals++ },
		}.StartOn(m)
		m.StartThread("srv", "srv", 0, &ServerWorker{Q: q})
		m.Run(100 * time.Millisecond)
		if arrivals != 100 {
			t.Fatalf("service %v: offered %d arrivals, want 100", service, arrivals)
		}
		if service == 50*time.Microsecond && q.Completed < 95 {
			t.Fatalf("fast server completed only %d of %d", q.Completed, arrivals)
		}
		if service == 5*time.Millisecond && q.Completed > 25 {
			t.Fatalf("slow server completed %d, expected a backlog", q.Completed)
		}
		if q.Latency.Count() != q.Completed {
			t.Fatalf("latency samples %d != completed %d", q.Latency.Count(), q.Completed)
		}
	}
}

func TestOpenLoopLatencyGrowsWhenOverloaded(t *testing.T) {
	m := newMachine(1)
	q := ipc.NewReqQueue("ol")
	// Offered load 2× one core: queueing delay must dominate service time.
	OpenLoop{
		Q:       q,
		Gen:     NewArrivalGen(Periodic, time.Millisecond, 1),
		Service: 2 * time.Millisecond,
	}.StartOn(m)
	m.StartThread("srv", "srv", 0, &ServerWorker{Q: q})
	m.Run(200 * time.Millisecond)
	if q.Completed < 50 {
		t.Fatalf("completed %d, want ≥50", q.Completed)
	}
	if p99 := q.Latency.Quantile(0.99); p99 < 20*time.Millisecond {
		t.Fatalf("p99 latency %v under 2× overload, expected heavy queueing", p99)
	}
}

func TestOpenLoopStartDelaysFirstArrival(t *testing.T) {
	m := newMachine(1)
	q := ipc.NewReqQueue("ol")
	OpenLoop{
		Q:       q,
		Gen:     NewArrivalGen(Periodic, time.Millisecond, 1),
		Service: 10 * time.Microsecond,
		Start:   50 * time.Millisecond,
	}.StartOn(m)
	m.StartThread("srv", "srv", 0, &ServerWorker{Q: q})
	m.Run(49 * time.Millisecond)
	if q.Completed != 0 || q.Depth() != 0 {
		t.Fatalf("arrivals before Start: completed=%d depth=%d", q.Completed, q.Depth())
	}
	m.Run(100 * time.Millisecond)
	if q.Completed == 0 {
		t.Fatal("no arrivals after Start")
	}
}

func TestOpenLoopServiceJitterStaysDeterministic(t *testing.T) {
	run := func() uint64 {
		m := newMachine(2)
		q := ipc.NewReqQueue("ol")
		OpenLoop{
			Q:       q,
			Gen:     NewArrivalGen(Poisson, 500*time.Microsecond, 11),
			Service: 300 * time.Microsecond, ServiceJitterPct: 30,
		}.StartOn(m)
		for i := 0; i < 4; i++ {
			m.StartThread("srv", "srv", 0, &ServerWorker{Q: q})
		}
		m.Run(100 * time.Millisecond)
		return q.Completed
	}
	a, b := run(), run()
	if a != b || a == 0 {
		t.Fatalf("jittered open loop not deterministic: %d vs %d", a, b)
	}
}
