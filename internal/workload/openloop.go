package workload

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/ipc"
	"repro/internal/sim"
)

// This file is the open-loop traffic source: a deterministic arrival-time
// generator plus the machinery that injects those arrivals into a request
// queue from timer context. Closed-loop clients (BatchClient, the sysbench
// think-time loop) slow their offered load down when the server slows down,
// which hides scheduling-induced latency; an open-loop source keeps pushing
// at the configured rate regardless of completions, so queueing delay — the
// tail-latency signal the paper's Table 2 measures — is exposed rather than
// absorbed by the client.

// ArrivalDist selects the inter-arrival distribution of an open-loop source.
type ArrivalDist string

const (
	// Poisson draws exponential inter-arrivals (a memoryless stream, the
	// standard open-loop traffic model).
	Poisson ArrivalDist = "poisson"
	// Uniform draws inter-arrivals uniformly in [mean/2, 3*mean/2): the
	// same offered load with bounded burstiness.
	Uniform ArrivalDist = "uniform"
	// Periodic emits one arrival exactly every mean: a constant-rate
	// injector with no randomness at all.
	Periodic ArrivalDist = "periodic"
)

// ValidDist reports whether d names a supported distribution.
func ValidDist(d ArrivalDist) bool {
	switch d {
	case Poisson, Uniform, Periodic:
		return true
	}
	return false
}

// ArrivalGen produces a deterministic stream of inter-arrival times. It owns
// a private PRNG seeded explicitly, so the stream is a pure function of
// (dist, mean, seed) — independent of everything else the simulation draws,
// which is what lets a scenario keep its offered traffic fixed while
// scheduler randomness varies underneath it.
type ArrivalGen struct {
	dist ArrivalDist
	mean time.Duration
	rng  *rand.Rand
}

// NewArrivalGen returns a generator with the given distribution and mean
// inter-arrival time. It panics on a non-positive mean or an unknown
// distribution; validate specs before building generators.
func NewArrivalGen(dist ArrivalDist, mean time.Duration, seed int64) *ArrivalGen {
	if mean <= 0 {
		panic(fmt.Sprintf("workload: ArrivalGen mean must be positive, got %v", mean))
	}
	if !ValidDist(dist) {
		panic(fmt.Sprintf("workload: unknown arrival distribution %q", dist))
	}
	return &ArrivalGen{dist: dist, mean: mean, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next inter-arrival time, always positive. Exponential
// draws are capped at 100× the mean so one extreme tail sample cannot stall
// the stream for the rest of a measurement window.
func (g *ArrivalGen) Next() time.Duration {
	var d time.Duration
	switch g.dist {
	case Poisson:
		d = time.Duration(g.rng.ExpFloat64() * float64(g.mean))
		if d > 100*g.mean {
			d = 100 * g.mean
		}
	case Uniform:
		d = g.mean/2 + time.Duration(g.rng.Int63n(int64(g.mean)))
	default: // Periodic
		d = g.mean
	}
	if d <= 0 {
		d = time.Nanosecond
	}
	return d
}

// Mean returns the configured mean inter-arrival time.
func (g *ArrivalGen) Mean() time.Duration { return g.mean }

// OpenLoop describes one open-loop request stream: arrivals drawn from Gen
// are pushed into Q with the given per-request CPU demand, and Q records
// each request's arrival-to-completion latency. Serving threads are the
// caller's business — any ServerWorker pool draining Q completes the loop.
type OpenLoop struct {
	// Q receives the generated requests.
	Q *ipc.ReqQueue
	// Gen produces the inter-arrival stream.
	Gen *ArrivalGen
	// Service is each request's CPU demand at the server.
	Service time.Duration
	// ServiceJitterPct varies Service uniformly by ±pct per request, drawn
	// from Gen's private PRNG so the whole offered trace stays a pure
	// function of the generator seed.
	ServiceJitterPct int
	// Start delays the first arrival window by this absolute machine time.
	Start time.Duration
	// OnArrival, if set, is called after each push (e.g. to count offered
	// load against completed load).
	OnArrival func()
}

// Start arms the injection timer chain on m. Arrivals fire from timer
// context — no injector thread occupies a core, so the offered load is
// independent of scheduling, the defining property of an open-loop source.
// The chain reuses one callback closure; per-arrival scheduling is
// allocation-free apart from the engine's free-listed timer slot.
func (ol OpenLoop) StartOn(m *sim.Machine) {
	if ol.Q == nil || ol.Gen == nil {
		panic("workload: OpenLoop needs Q and Gen")
	}
	if ol.Service <= 0 {
		panic("workload: OpenLoop needs a positive Service time")
	}
	var fire func()
	fire = func() {
		ol.Q.Push(m, ol.service())
		if ol.OnArrival != nil {
			ol.OnArrival()
		}
		m.After(ol.Gen.Next(), fire)
	}
	m.At(ol.Start+ol.Gen.Next(), fire)
}

// service returns the next per-request CPU demand.
func (ol OpenLoop) service() time.Duration {
	if ol.ServiceJitterPct <= 0 {
		return ol.Service
	}
	span := int64(ol.Service) * int64(ol.ServiceJitterPct) / 100
	if span <= 0 {
		return ol.Service
	}
	return ol.Service + time.Duration(ol.Gen.rng.Int63n(2*span+1)-span)
}
