// Package workload provides the reusable program state machines the
// application models compose: compute loops, spin/sleep barrier workers,
// request-serving loops, pipe senders/receivers, batching RPC clients,
// forking masters, and progress-watching spin pollers. Each is a
// sim.Program; the apps package instantiates them with per-application
// parameters.
package workload

import (
	"time"

	"repro/internal/ipc"
	"repro/internal/sim"
)

// Loop runs bursts forever, reporting one op per burst.
type Loop struct {
	// Burst is the CPU time per iteration.
	Burst time.Duration
	// JitterPct adds a uniform ±pct variation per burst.
	JitterPct int
	// OnOp, if set, is called once per completed burst.
	OnOp func()
	// Progress, if set, is broadcast after every burst so watchers
	// (SpinPoller) can observe forward progress.
	Progress *sim.WaitQueue

	started bool
}

// Next implements sim.Program.
func (l *Loop) Next(ctx *sim.Ctx) sim.Op {
	if l.started {
		if l.OnOp != nil {
			l.OnOp()
		}
		if l.Progress != nil {
			ctx.Broadcast(l.Progress)
		}
	}
	l.started = true
	return sim.Run(jitter(ctx, l.Burst, l.JitterPct))
}

// FiniteCompute runs N bursts then exits; used for compile jobs and other
// run-to-completion work.
type FiniteCompute struct {
	Burst     time.Duration
	JitterPct int
	N         int
	// IOSleep, when positive, sleeps after each burst (I/O bound phases).
	IOSleep time.Duration
	// OnOp is called per completed burst; OnDone once before exit.
	OnOp   func()
	OnDone func()

	i       int
	pending bool // a burst just completed, account it
	slept   bool
}

// Next implements sim.Program.
func (f *FiniteCompute) Next(ctx *sim.Ctx) sim.Op {
	if f.pending {
		f.pending = false
		if f.OnOp != nil {
			f.OnOp()
		}
		if f.IOSleep > 0 {
			f.slept = true
			return sim.Sleep(f.IOSleep)
		}
	}
	f.slept = false
	if f.i >= f.N {
		if f.OnDone != nil {
			f.OnDone()
		}
		return sim.Exit()
	}
	f.i++
	f.pending = true
	return sim.Run(jitter(ctx, f.Burst, f.JitterPct))
}

// BarrierWorker is the HPC pattern: compute a phase, then wait at a
// spin-then-sleep barrier (the NAS applications; MG's 100 ms spin budget is
// the paper's example).
type BarrierWorker struct {
	Bar       *ipc.Barrier
	Phase     time.Duration
	JitterPct int
	// IOSleep sleeps after each phase before computing (DC's I/O).
	IOSleep time.Duration
	// Phases bounds the number of rounds; 0 = unbounded.
	Phases int
	// OnPhase is called when this worker passes a barrier.
	OnPhase func()

	state int
	gen   uint64
	done  int
}

// Next implements sim.Program.
func (w *BarrierWorker) Next(ctx *sim.Ctx) sim.Op {
	for {
		switch w.state {
		case 0: // compute
			if w.Phases > 0 && w.done >= w.Phases {
				return sim.Exit()
			}
			w.state = 1
			return sim.Run(jitter(ctx, w.Phase, w.JitterPct))
		case 1: // arrive
			last, gen := w.Bar.Arrive(ctx)
			w.gen = gen
			if last {
				w.passed()
				continue
			}
			w.state = 2
			return w.Bar.SpinOp()
		case 2: // after spin
			if w.Bar.Passed(w.gen) {
				w.passed()
				continue
			}
			w.state = 3
			return w.Bar.BlockOp()
		case 3: // after sleep
			if w.Bar.Passed(w.gen) {
				w.passed()
				continue
			}
			return w.Bar.BlockOp()
		case 4: // optional I/O after the barrier
			w.state = 0
			return sim.Sleep(w.IOSleep)
		}
	}
}

func (w *BarrierWorker) passed() {
	w.done++
	if w.OnPhase != nil {
		w.OnPhase()
	}
	if w.IOSleep > 0 {
		w.state = 4
	} else {
		w.state = 0
	}
}

// ServerWorker serves requests from a queue, optionally entering a critical
// section for a fraction of requests (the MySQL lock behaviour of §6.4).
type ServerWorker struct {
	Q *ipc.ReqQueue
	// Mu guards the critical section; CritPermille of requests take it.
	Mu           *ipc.Mutex
	CritPermille int
	Crit         time.Duration
	// OnDone is called per completed request.
	OnDone func()

	req    ipc.Request
	hasReq bool
	state  int // 0 idle, 1 served (maybe lock), 2 locked crit done
	wantMu bool
}

// Next implements sim.Program.
func (w *ServerWorker) Next(ctx *sim.Ctx) sim.Op {
	for {
		switch w.state {
		case 0:
			if !w.hasReq {
				r, ok := w.Q.TryPop()
				if !ok {
					return sim.Block(w.Q.Workers)
				}
				w.req = r
				w.hasReq = true
				w.wantMu = w.Mu != nil && ctx.Rand().Intn(1000) < w.CritPermille
			}
			w.state = 1
			return sim.Run(w.req.Service)
		case 1:
			if w.wantMu {
				// Short critical section under the shared lock (the §6.4
				// MySQL lock handoff), held only for Crit.
				if !w.Mu.TryLock(ctx.T) {
					return sim.Block(w.Mu.WQ)
				}
				w.state = 2
				return sim.Run(w.Crit)
			}
			w.complete(ctx)
		case 2:
			w.Mu.Unlock(ctx)
			w.complete(ctx)
		}
	}
}

func (w *ServerWorker) complete(ctx *sim.Ctx) {
	w.Q.Complete(ctx.Now(), w.req)
	w.hasReq = false
	w.state = 0
	if w.OnDone != nil {
		w.OnDone()
	}
}

// BatchClient is the ab load injector: send a window of requests
// back-to-back, then block until all responses arrive (§5.3: "ab starts by
// sending 100 requests to the httpd server, and then waits").
type BatchClient struct {
	Q *ipc.ReqQueue
	// Window is the batch size (ab's concurrency, 100).
	Window int
	// SendCost is the CPU per request sent.
	SendCost time.Duration
	// Service is the request's CPU demand at the server.
	Service time.Duration
	// RespWQ is signalled by workers on each response.
	RespWQ *sim.WaitQueue
	// Outstanding counts in-flight requests (shared with workers).
	Outstanding *int
	// OnRoundTrip is called per response received.
	OnRoundTrip func()

	sent    int
	sendOne bool
}

// Next implements sim.Program.
func (c *BatchClient) Next(ctx *sim.Ctx) sim.Op {
	for {
		if c.sendOne {
			c.sendOne = false
			c.Q.Push(ctx.M, c.Service)
			*c.Outstanding++
			c.sent++
		}
		if c.sent < c.Window {
			c.sendOne = true
			return sim.Run(c.SendCost)
		}
		// All sent: wait for the whole window to drain, counting each
		// response.
		if *c.Outstanding > 0 {
			return sim.Block(c.RespWQ)
		}
		if c.OnRoundTrip != nil {
			for i := 0; i < c.Window; i++ {
				c.OnRoundTrip()
			}
		}
		c.sent = 0
	}
}

// RespondingWorker pairs with BatchClient: serve a request, decrement the
// outstanding count and wake the client.
type RespondingWorker struct {
	Q           *ipc.ReqQueue
	RespWQ      *sim.WaitQueue
	Outstanding *int

	req    ipc.Request
	hasReq bool
	served bool
}

// Next implements sim.Program.
func (w *RespondingWorker) Next(ctx *sim.Ctx) sim.Op {
	for {
		if w.served {
			w.served = false
			w.Q.Complete(ctx.Now(), w.req)
			w.hasReq = false
			*w.Outstanding--
			// Wake the client; under CFS this is the preemption-heavy
			// path, under ULE it never preempts.
			ctx.Signal(w.RespWQ, 1)
		}
		if !w.hasReq {
			r, ok := w.Q.TryPop()
			if !ok {
				return sim.Block(w.Q.Workers)
			}
			w.req = r
			w.hasReq = true
		}
		w.served = true
		return sim.Run(w.req.Service)
	}
}

// PipeSender sends messages through a set of pipes round-robin (hackbench
// sender halves).
type PipeSender struct {
	Pipes   []*ipc.Pipe
	PerMsg  time.Duration
	Total   int
	MsgSize int
	OnSent  func()

	sent int
	next int
}

// Next implements sim.Program.
func (s *PipeSender) Next(ctx *sim.Ctx) sim.Op {
	for {
		if s.sent >= s.Total {
			return sim.Exit()
		}
		p := s.Pipes[s.next%len(s.Pipes)]
		if !p.TryWrite(ctx, ipc.Msg{Size: s.MsgSize}) {
			return sim.Block(p.Writers)
		}
		s.next++
		s.sent++
		if s.OnSent != nil {
			s.OnSent()
		}
		return sim.Run(s.PerMsg)
	}
}

// PipeReceiver drains a pipe (hackbench receiver halves).
type PipeReceiver struct {
	Pipe   *ipc.Pipe
	PerMsg time.Duration
	Total  int
	OnRecv func()

	got int
}

// Next implements sim.Program.
func (r *PipeReceiver) Next(ctx *sim.Ctx) sim.Op {
	for {
		if r.got >= r.Total {
			return sim.Exit()
		}
		if _, ok := r.Pipe.TryRead(ctx); !ok {
			return sim.Block(r.Pipe.Readers)
		}
		r.got++
		if r.OnRecv != nil {
			r.OnRecv()
		}
		return sim.Run(r.PerMsg)
	}
}

// Forker is an application master: per child it burns InitCost (building
// the child's state — the mechanism that degrades the master's ULE
// interactivity across the fork loop, §5.2), forks, then runs an optional
// continuation program.
type Forker struct {
	N        int
	InitCost time.Duration
	// Child returns the i-th child's name and program.
	Child func(i int) (string, sim.Program)
	// Group for the children; empty inherits the master's.
	Group string
	// Nice for the children.
	Nice int
	// Then, if set, continues as this program after the fork loop;
	// otherwise the master sleeps forever (like a main() in pthread_join).
	Then sim.Program
	// OnForked is called with each forked thread.
	OnForked func(i int, t *sim.Thread)

	i        int
	doFork   bool
	finished bool
}

// Next implements sim.Program.
func (f *Forker) Next(ctx *sim.Ctx) sim.Op {
	for {
		if f.doFork {
			f.doFork = false
			name, prog := f.Child(f.i)
			group := f.Group
			if group == "" {
				group = ctx.T.Group
			}
			t := ctx.Fork(name, group, f.Nice, prog)
			if f.OnForked != nil {
				f.OnForked(f.i, t)
			}
			f.i++
		}
		if f.i < f.N {
			f.doFork = true
			if f.InitCost > 0 {
				return sim.Run(f.InitCost)
			}
			continue
		}
		if f.Then != nil {
			if !f.finished {
				f.finished = true
			}
			return f.Then.Next(ctx)
		}
		return sim.Sleep(time.Hour)
	}
}

// LockedLoop alternates local computation with a short critical section
// under a shared mutex (canneal's annealing moves): lock-heavy CPU-bound
// work whose waiters sleep on contention.
type LockedLoop struct {
	Mu    *ipc.Mutex
	Crit  time.Duration
	Local time.Duration
	OnOp  func()

	state int
}

// Next implements sim.Program.
func (l *LockedLoop) Next(ctx *sim.Ctx) sim.Op {
	for {
		switch l.state {
		case 0: // local work
			l.state = 1
			return sim.Run(l.Local)
		case 1: // acquire
			if !l.Mu.TryLock(ctx.T) {
				return sim.Block(l.Mu.WQ)
			}
			l.state = 2
			return sim.Run(l.Crit)
		case 2: // release
			l.Mu.Unlock(ctx)
			if l.OnOp != nil {
				l.OnOp()
			}
			l.state = 0
		}
	}
}

// SpinPoller models a runtime service thread (the scimark JVM threads of
// §5.3): it wakes periodically and spin-waits watching another thread's
// progress, up to a budget. Under a fairness scheduler the watched thread
// soon runs and cuts the poll short; under ULE the poller's interactive
// priority lets it burn its whole budget.
type SpinPoller struct {
	// Progress is broadcast by the watched thread on each work unit.
	Progress *sim.WaitQueue
	// Period is the sleep between polls.
	Period time.Duration
	// Budget caps one poll's spin.
	Budget time.Duration

	spun bool
}

// Next implements sim.Program.
func (p *SpinPoller) Next(ctx *sim.Ctx) sim.Op {
	if p.spun {
		p.spun = false
		return sim.Sleep(p.Period)
	}
	p.spun = true
	return sim.Spin(p.Progress, p.Budget)
}

// CascadeWorker participates in c-ray's cascading start barrier: wait to be
// released, release the next worker, then compute chunks forever (§6.2).
// The release is level-triggered (a flag set before the broadcast), so a
// release that arrives before the worker first blocks is never lost.
type CascadeWorker struct {
	// Self is this worker's wake queue.
	Self *sim.WaitQueue
	// Released is this worker's release flag, set by its predecessor (or
	// the master, for worker 0) before broadcasting Self.
	Released *bool
	// ReleaseNext releases the successor (nil for the last worker).
	ReleaseNext func(ctx *sim.Ctx)
	// Chunk is the render work unit.
	Chunk time.Duration
	// OnChunk counts completed chunks; OnAwake marks the worker released
	// for the Figure 7 probe.
	OnChunk func()
	OnAwake func()

	state int
}

// Next implements sim.Program.
func (w *CascadeWorker) Next(ctx *sim.Ctx) sim.Op {
	for {
		switch w.state {
		case 0:
			if w.Released == nil || *w.Released {
				w.state = 1
				continue
			}
			return sim.Block(w.Self)
		case 1:
			// Released: pass the baton, then render.
			if w.OnAwake != nil {
				w.OnAwake()
			}
			if w.ReleaseNext != nil {
				w.ReleaseNext(ctx)
			}
			w.state = 2
		case 2:
			w.state = 3
			return sim.Run(w.Chunk)
		case 3:
			if w.OnChunk != nil {
				w.OnChunk()
			}
			w.state = 2
		}
	}
}

// PipelineStage is a worker in a producer/consumer pipeline (ferret, vips,
// x264): read an item from In, process it, write to Out.
type PipelineStage struct {
	In, Out *ipc.Pipe
	Cost    time.Duration
	// JitterPct varies the per-item cost.
	JitterPct int
	// OnItem counts processed items.
	OnItem func()

	hasItem bool
	pushed  bool
}

// Next implements sim.Program.
func (s *PipelineStage) Next(ctx *sim.Ctx) sim.Op {
	for {
		if s.pushed {
			// Processing done: push downstream (or complete).
			if s.Out != nil {
				if !s.Out.TryWrite(ctx, ipc.Msg{Size: 1}) {
					return sim.Block(s.Out.Writers)
				}
			}
			s.pushed = false
			s.hasItem = false
			if s.OnItem != nil {
				s.OnItem()
			}
		}
		if !s.hasItem {
			if s.In != nil {
				if _, ok := s.In.TryRead(ctx); !ok {
					return sim.Block(s.In.Readers)
				}
			}
			s.hasItem = true
		}
		s.pushed = true
		return sim.Run(jitter(ctx, s.Cost, s.JitterPct))
	}
}

// Source feeds a pipeline: generate items at a fixed CPU cost each.
type Source struct {
	Out  *ipc.Pipe
	Cost time.Duration
	// N bounds generated items (0 = unbounded).
	N int

	produced int
	ready    bool
}

// Next implements sim.Program.
func (s *Source) Next(ctx *sim.Ctx) sim.Op {
	for {
		if s.ready {
			if !s.Out.TryWrite(ctx, ipc.Msg{Size: 1}) {
				return sim.Block(s.Out.Writers)
			}
			s.ready = false
			s.produced++
		}
		if s.N > 0 && s.produced >= s.N {
			return sim.Exit()
		}
		s.ready = true
		return sim.Run(s.Cost)
	}
}

// KWorker is the per-core kernel housekeeping thread: a short burst on a
// jittered period. Its wakeups are the "micro changes in the load of cores"
// that mislead CFS's placement in §6.3.
type KWorker struct {
	Period time.Duration
	Burst  time.Duration

	ran bool
}

// Next implements sim.Program.
func (k *KWorker) Next(ctx *sim.Ctx) sim.Op {
	if k.ran {
		k.ran = false
		p := k.Period + time.Duration(ctx.Rand().Int63n(int64(k.Period)))
		return sim.Sleep(p)
	}
	k.ran = true
	return sim.Run(k.Burst)
}

// jitter applies a deterministic uniform ±pct variation.
func jitter(ctx *sim.Ctx, d time.Duration, pct int) time.Duration {
	if pct <= 0 || d <= 0 {
		return d
	}
	span := int64(d) * int64(pct) / 100
	return d + time.Duration(ctx.Rand().Int63n(2*span+1)-span)
}
