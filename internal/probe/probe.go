// Package probe is the unified telemetry layer of the reproduction: a
// first-class, allocation-bounded time-series subsystem every sampler in
// the tree records into. The paper's most persuasive evidence is
// time-series, not scalars — Figure 6's per-core runqueue convergence and
// Figure 7's c-ray startup transient — and this package is the one
// plumbing that carries such series from the engine to the experiment
// drivers, the scenario reports, and the battle matrix.
//
// Storage is a fixed-capacity buffer with deterministic downsampling:
// when a series fills, every other retained point is dropped and the
// recording stride doubles (halve-resolution-on-full), so a week-long
// heavy-traffic recording stays O(capacity) in memory while the retained
// points remain uniformly spaced for a uniform input cadence. Sampling is
// driven by the simulator's timer wheel (attach.go); built-in probes
// observe the engine through the stable hook points internal/sim exposes
// (enqueue/dispatch/migrate/steal/tick).
//
// Everything here is plain single-threaded data — the simulator is
// sequential, so no locking is needed or wanted. Series and set iteration
// follow creation order, which is deterministic for a seeded simulation,
// so anything rendered from a Set is byte-identical at any worker-pool
// width.
package probe

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// DefaultCapacity bounds a series when the caller does not choose one:
// generous for any paper-sized recording (a 10-minute run sampled every
// 250 ms is ~2400 points), small enough that a grid of trials cannot grow
// without bound.
const DefaultCapacity = 4096

// Point is one retained sample: a simulated timestamp and a value.
type Point struct {
	T time.Duration // simulated time since machine start
	V float64
}

// Series is a bounded time series. Offer appends samples in
// non-decreasing time order; once capacity is reached the series halves
// its resolution: retained points thin to every other one and the stride
// doubles, so only every stride-th offered sample is recorded from then
// on. For a uniform offer cadence the retained points stay uniformly
// spaced at cadence×stride.
//
// Odd capacities above 1 round up to even (see newSeries) so the
// invariant survives every halving. Capacity 1 is the degenerate edge:
// halving cannot free a slot, so the series retains exactly its first
// sample forever (the stride still doubles on every full offer,
// documenting the decay deterministically).
type Series struct {
	Name string

	pts    []Point
	cap    int
	stride int // record every stride-th offered sample
	skip   int // offers to drop before the next recorded one
}

// newSeries builds an empty series; capacity <= 0 selects
// DefaultCapacity. Odd capacities above 1 are rounded up to even:
// halving an odd-length buffer would land the next retained point off
// the doubled stride grid, breaking the uniform-spacing invariant.
func newSeries(name string, capacity int) *Series {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if capacity > 1 && capacity%2 == 1 {
		capacity++
	}
	return &Series{Name: name, cap: capacity, stride: 1}
}

// Offer presents one sample. Whether it is retained depends on the
// current stride; when retention would overflow the capacity, the series
// first halves its resolution.
func (s *Series) Offer(t time.Duration, v float64) {
	if s.stride == 0 { // zero-value Series (tests, ad-hoc use)
		s.stride, s.cap = 1, DefaultCapacity
	}
	if s.skip > 0 {
		s.skip--
		return
	}
	if len(s.pts) == s.cap {
		s.halve()
		if len(s.pts) == s.cap {
			// Capacity 1: no room can be made; drop the sample.
			s.skip = s.stride - 1
			return
		}
	}
	s.pts = append(s.pts, Point{T: t, V: v})
	s.skip = s.stride - 1
}

// halve drops every other retained point (keeping the even indices, so
// the oldest point always survives) and doubles the stride.
func (s *Series) halve() {
	keep := 0
	for i := 0; i < len(s.pts); i += 2 {
		s.pts[keep] = s.pts[i]
		keep++
	}
	s.pts = s.pts[:keep]
	s.stride *= 2
}

// Stride returns the current recording stride: 1 until the first halving,
// then doubling with each one.
func (s *Series) Stride() int {
	if s.stride == 0 {
		return 1
	}
	return s.stride
}

// Points returns the retained samples in time order. The slice aliases
// the series and must not be modified.
func (s *Series) Points() []Point { return s.pts }

// Len returns the number of retained samples.
func (s *Series) Len() int { return len(s.pts) }

// Last returns the final retained sample, or a zero Point if empty.
func (s *Series) Last() Point {
	if len(s.pts) == 0 {
		return Point{}
	}
	return s.pts[len(s.pts)-1]
}

// At returns the value at-or-before time t (step interpolation), or 0
// before the first sample.
func (s *Series) At(t time.Duration) float64 {
	i := sort.Search(len(s.pts), func(i int) bool { return s.pts[i].T > t })
	if i == 0 {
		return 0
	}
	return s.pts[i-1].V
}

// Max returns the maximum retained value, or 0 if empty.
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, p := range s.pts {
		if p.V > m {
			m = p.V
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// Min returns the minimum retained value, or 0 if empty.
func (s *Series) Min() float64 {
	m := math.Inf(1)
	for _, p := range s.pts {
		if p.V < m {
			m = p.V
		}
	}
	if math.IsInf(m, 1) {
		return 0
	}
	return m
}

// FirstCrossing returns the earliest retained sample time with V >= v,
// and whether one exists — the "time until balanced / all-runnable"
// reading on Figures 6 and 7.
func (s *Series) FirstCrossing(v float64) (time.Duration, bool) {
	for _, p := range s.pts {
		if p.V >= v {
			return p.T, true
		}
	}
	return 0, false
}

// Gnuplot renders "time value" rows with time in seconds, the format the
// paper's figures plot.
func (s *Series) Gnuplot() string {
	var b strings.Builder
	for _, p := range s.pts {
		fmt.Fprintf(&b, "%.3f %.6g\n", p.T.Seconds(), p.V)
	}
	return b.String()
}

// Set is a named collection of series, e.g. one per core or thread.
// Series created through Get inherit the set's capacity.
type Set struct {
	byName   map[string]*Series
	order    []string
	capacity int
}

// NewSet returns an empty set whose series are bounded at capacity
// (<= 0 selects DefaultCapacity).
func NewSet(capacity int) *Set {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Set{byName: make(map[string]*Series), capacity: capacity}
}

// Get returns the series with the given name, creating it (at the set's
// capacity) if needed.
func (ss *Set) Get(name string) *Series {
	s, ok := ss.byName[name]
	if !ok {
		s = newSeries(name, ss.capacity)
		ss.byName[name] = s
		ss.order = append(ss.order, name)
	}
	return s
}

// Sample offers one point to the named series, creating it if needed.
func (ss *Set) Sample(name string, t time.Duration, v float64) {
	ss.Get(name).Offer(t, v)
}

// Put installs s under name, replacing an existing series of that name
// and preserving creation order otherwise; Merge adopts series through
// it.
func (ss *Set) Put(name string, s *Series) {
	if _, ok := ss.byName[name]; !ok {
		ss.order = append(ss.order, name)
	}
	ss.byName[name] = s
}

// Merge adopts every series of o in o's creation order. A same-named
// series in ss is REPLACED by o's, not concatenated — callers that need
// to keep both recordings must rename first. Experiment drivers fold
// per-trial sub-results with core's Result.Merge, which combines
// colliding sets through this; merging in trial declaration order keeps
// the combined set deterministic however the trials were scheduled.
func (ss *Set) Merge(o *Set) {
	if o == nil {
		return
	}
	for _, name := range o.order {
		ss.Put(name, o.byName[name])
	}
}

// Names returns series names in creation order.
func (ss *Set) Names() []string { return ss.order }

// Each calls fn for every series in creation order.
func (ss *Set) Each(fn func(*Series)) {
	for _, n := range ss.order {
		fn(ss.byName[n])
	}
}
