package probe

// Attaching probes to a machine. An Attachment owns one periodic sampler
// on the simulator's timer wheel (sim.Machine.Every) plus whatever hook
// registrations its probes need; all probes of an attachment share one
// cadence and record into one Set. Built-in probes are selected by name
// (Options.Probes, validated against Names); drivers with bespoke
// measurements add Custom samplers on the same cadence, so every sampler
// in the tree — fig6/fig7 runqueue heatmaps, the per-thread runtime and
// penalty curves, scenario series blocks — rides the same machinery.

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// DefaultCadence is the sampling period when Options does not choose one:
// the 250 ms grid the paper's Figure 6/7 heatmaps use.
const DefaultCadence = 250 * time.Millisecond

// Options configures an attachment.
type Options struct {
	// Probes names the built-in probes to install (see Names); empty
	// attaches only the periodic sampler, for Custom-only use.
	Probes []string
	// Cadence is the sampling period (default DefaultCadence).
	Cadence time.Duration
	// Capacity bounds every series (default DefaultCapacity); on
	// overflow a series halves its resolution (see Series).
	Capacity int
	// Into records into an existing set instead of a fresh one — for
	// drivers that allocate the destination before the machine exists.
	// Series the built-in probes create through it still inherit the
	// set's own capacity.
	Into *Set
}

// Attachment is a live probe registration on one machine.
type Attachment struct {
	m        *sim.Machine
	set      *Set
	cadence  time.Duration
	samplers []func(now time.Duration)
	stopped  bool

	// Convergence tracking, maintained by the runq probe at full sample
	// resolution: the first sample at-or-after the armed instant where
	// max−min runnable depth across cores is ≤ 1.
	hasRunq     bool
	convArmedAt time.Duration
	convergedAt time.Duration
	converged   bool
}

// builtinProbe is one named probe: a description (CLI/docs) and an
// installer that registers hooks and appends the sampler.
type builtinProbe struct {
	name    string
	desc    string
	install func(a *Attachment)
}

// builtins lists every built-in probe in stable (sorted) order.
var builtins = []builtinProbe{
	{"live", "live (non-dead) thread count", installLive},
	{"migrations", "runnable-thread migrations per second (migrate hook)", installMigrations},
	{"preemptions", "involuntary preemptions per second", installPreemptions},
	{"runq", "per-core runnable depth (the Figure 6/7 heatmap signal)", installRunq},
	{"runqlat", "per-group runqueue wait quantiles in µs (enqueue→dispatch hooks)", installRunqlat},
	{"steals", "idle steals per second (steal hook)", installSteals},
	{"ticks", "scheduler ticks per second across all cores (tick hook)", installTicks},
	{"util", "per-core windowed utilization in [0,1]", installUtil},
}

// Names lists the built-in probe names, sorted.
func Names() []string {
	names := make([]string, len(builtins))
	for i, b := range builtins {
		names[i] = b.name
	}
	sort.Strings(names)
	return names
}

// Describe returns the one-line description of a built-in probe name.
func Describe(name string) (string, bool) {
	for _, b := range builtins {
		if b.name == name {
			return b.desc, true
		}
	}
	return "", false
}

// Attach installs the named probes on m and starts the periodic sampler.
// It errors on unknown or duplicate probe names.
func Attach(m *sim.Machine, opts Options) (*Attachment, error) {
	cadence := opts.Cadence
	if cadence <= 0 {
		cadence = DefaultCadence
	}
	set := opts.Into
	if set == nil {
		set = NewSet(opts.Capacity)
	}
	a := &Attachment{m: m, set: set, cadence: cadence}
	seen := map[string]bool{}
	for _, name := range opts.Probes {
		if seen[name] {
			return nil, fmt.Errorf("probe: probe %q listed twice", name)
		}
		seen[name] = true
		var b *builtinProbe
		for i := range builtins {
			if builtins[i].name == name {
				b = &builtins[i]
				break
			}
		}
		if b == nil {
			return nil, fmt.Errorf("probe: unknown probe %q (known: %s)", name, strings.Join(Names(), ", "))
		}
		b.install(a)
	}
	m.Every(cadence, cadence, func() bool {
		if a.stopped {
			return false
		}
		now := m.Now()
		for _, s := range a.samplers {
			s(now)
		}
		return true
	})
	return a, nil
}

// MustAttach is Attach, panicking on error — for drivers with
// compile-time-known probe lists.
func MustAttach(m *sim.Machine, opts Options) *Attachment {
	a, err := Attach(m, opts)
	if err != nil {
		panic(err)
	}
	return a
}

// Set returns the attachment's destination series set.
func (a *Attachment) Set() *Set { return a.set }

// Cadence returns the sampling period.
func (a *Attachment) Cadence() time.Duration { return a.cadence }

// Custom appends a bespoke sampler on the attachment's cadence; fn
// receives the simulated sample time and records wherever it likes
// (typically a.Set().Sample, or a driver-owned Set). Samplers run in
// registration order, built-ins first.
func (a *Attachment) Custom(fn func(now time.Duration)) {
	a.samplers = append(a.samplers, fn)
}

// Stop ends sampling at the next cycle, releasing the timer registration.
func (a *Attachment) Stop() { a.stopped = true }

// ArmConvergence restarts convergence detection at the given simulated
// instant: samples before it are ignored, and the first at-or-after it
// with a per-core runnable spread ≤ 1 is recorded. Requires the runq
// probe. The fig6 driver arms this at the unpin point and then drives the
// machine with RunUntil(att.Converged, deadline) — a flag check per event
// boundary, no per-boundary sampling.
func (a *Attachment) ArmConvergence(at time.Duration) {
	if !a.hasRunq {
		panic("probe: ArmConvergence without the runq probe")
	}
	a.convArmedAt = at
	a.converged = false
	a.convergedAt = 0
}

// Converged reports whether a sample since the armed instant saw the
// per-core runnable spread ≤ 1.
func (a *Attachment) Converged() bool { return a.converged }

// ConvergedAt returns the sample time convergence was first observed at.
func (a *Attachment) ConvergedAt() (time.Duration, bool) {
	return a.convergedAt, a.converged
}

// coreSeries resolves one pre-created series per core, named
// "<prefix>.core<i>" — resolved at install so sampling is index math,
// not string formatting.
func coreSeries(a *Attachment, prefix string) []*Series {
	ss := make([]*Series, len(a.m.Cores))
	for i := range ss {
		ss[i] = a.set.Get(fmt.Sprintf("%s.core%d", prefix, i))
	}
	return ss
}

// installRunq samples per-core runnable depth and maintains the
// attachment's convergence detector.
func installRunq(a *Attachment) {
	a.hasRunq = true
	ss := coreSeries(a, "runq")
	var buf []int
	m := a.m
	a.samplers = append(a.samplers, func(now time.Duration) {
		buf = m.RunnableCountsInto(buf)
		lo, hi := buf[0], buf[0]
		for i, n := range buf {
			ss[i].Offer(now, float64(n))
			if n < lo {
				lo = n
			}
			if n > hi {
				hi = n
			}
		}
		if !a.converged && now >= a.convArmedAt && hi-lo <= 1 {
			a.converged = true
			a.convergedAt = now
		}
	})
}

// installUtil samples windowed per-core utilization: busy time accrued in
// the last sampling window over the window length.
func installUtil(a *Attachment) {
	ss := coreSeries(a, "util")
	prevBusy := make([]time.Duration, len(a.m.Cores))
	var prevNow time.Duration
	m := a.m
	a.samplers = append(a.samplers, func(now time.Duration) {
		window := now - prevNow
		if window <= 0 {
			return
		}
		for i, c := range m.Cores {
			busy := c.BusySoFar()
			ss[i].Offer(now, float64(busy-prevBusy[i])/float64(window))
			prevBusy[i] = busy
		}
		prevNow = now
	})
}

// installLive samples the live-thread count — the Figure 7 startup ramp.
func installLive(a *Attachment) {
	s := a.set.Get("live.threads")
	m := a.m
	a.samplers = append(a.samplers, func(now time.Duration) {
		s.Offer(now, float64(m.LiveThreads()))
	})
}

// rateSampler converts a monotonically increasing count source into a
// per-second windowed rate series.
func rateSampler(a *Attachment, name string, count func() uint64) {
	s := a.set.Get(name)
	var prev uint64
	var prevNow time.Duration
	a.samplers = append(a.samplers, func(now time.Duration) {
		window := (now - prevNow).Seconds()
		if window <= 0 {
			return
		}
		n := count()
		s.Offer(now, float64(n-prev)/window)
		prev = n
		prevNow = now
	})
}

// installMigrations counts Machine.Migrate calls via the migrate hook.
func installMigrations(a *Attachment) {
	var n uint64
	a.m.OnMigrate(func(from, to *sim.Core, t *sim.Thread) { n++ })
	rateSampler(a, "rate.migrations", func() uint64 { return n })
}

// installSteals counts idle steals via the steal hook.
func installSteals(a *Attachment) {
	var n uint64
	a.m.OnSteal(func(c, victim *sim.Core, t *sim.Thread) { n++ })
	rateSampler(a, "rate.steals", func() uint64 { return n })
}

// installPreemptions reads the trace's exact preemption count (counts are
// always maintained, whatever the record capacity).
func installPreemptions(a *Attachment) {
	m := a.m
	rateSampler(a, "rate.preemptions", func() uint64 { return m.Trace.Count(trace.Preempt) })
}

// installTicks counts fired scheduler ticks via the tick hook — on a
// tickless machine the rate visibly drops as cores idle.
func installTicks(a *Attachment) {
	var n uint64
	a.m.OnTick(func(c *sim.Core) { n++ })
	rateSampler(a, "rate.ticks", func() uint64 { return n })
}

// installRunqlat observes every dispatch's runqueue wait — the time since
// the thread last became runnable or was descheduled, whichever is later
// — into one histogram per thread group, and samples the cumulative p50/
// p95/p99 per group in microseconds. Groups appear in first-dispatch
// order, which is deterministic for a seeded simulation.
func installRunqlat(a *Attachment) {
	hists := map[string]*stats.Histogram{}
	var order []string
	m := a.m
	m.OnDispatch(func(c *sim.Core, t *sim.Thread) {
		since := t.LastEnqueuedAt
		if t.LastRanAt > since {
			since = t.LastRanAt
		}
		h, ok := hists[t.Group]
		if !ok {
			h = &stats.Histogram{}
			hists[t.Group] = h
			order = append(order, t.Group)
		}
		h.Observe(m.Now() - since)
	})
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	a.samplers = append(a.samplers, func(now time.Duration) {
		for _, g := range order {
			h := hists[g]
			if h.Count() == 0 {
				continue
			}
			a.set.Sample("runqlat.p50."+g, now, us(h.Quantile(0.50)))
			a.set.Sample("runqlat.p95."+g, now, us(h.Quantile(0.95)))
			a.set.Sample("runqlat.p99."+g, now, us(h.Quantile(0.99)))
		}
	})
}
