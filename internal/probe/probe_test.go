package probe

import (
	"strings"
	"testing"
	"time"
)

func sec(n int) time.Duration { return time.Duration(n) * time.Second }

// offerN offers n uniformly spaced samples (t = 1s, 2s, ..., value = t in
// seconds) to a fresh series of the given capacity.
func offerN(capacity, n int) *Series {
	s := newSeries("x", capacity)
	for i := 1; i <= n; i++ {
		s.Offer(sec(i), float64(i))
	}
	return s
}

func wantPoints(t *testing.T, s *Series, want []int) {
	t.Helper()
	if s.Len() != len(want) {
		t.Fatalf("len = %d, want %d (points %v)", s.Len(), len(want), s.Points())
	}
	for i, w := range want {
		p := s.Points()[i]
		if p.T != sec(w) || p.V != float64(w) {
			t.Fatalf("point[%d] = %+v, want t=%ds", i, p, w)
		}
	}
}

// TestSeriesDownsamplingGolden pins the exact halving boundaries of a
// capacity-8 series under a uniform offer cadence: the retained points
// stay uniformly spaced, the oldest point always survives, and the stride
// doubles per halving.
func TestSeriesDownsamplingGolden(t *testing.T) {
	// Below capacity: everything retained, stride 1.
	s := offerN(8, 8)
	wantPoints(t, s, []int{1, 2, 3, 4, 5, 6, 7, 8})
	if s.Stride() != 1 {
		t.Fatalf("stride = %d, want 1", s.Stride())
	}

	// The 9th offer halves once: evens of the retained run survive and
	// the new point lands on the doubled grid.
	s = offerN(8, 9)
	wantPoints(t, s, []int{1, 3, 5, 7, 9})
	if s.Stride() != 2 {
		t.Fatalf("stride = %d, want 2", s.Stride())
	}

	// Refill to capacity on stride 2: still uniformly spaced at 2s.
	s = offerN(8, 15)
	wantPoints(t, s, []int{1, 3, 5, 7, 9, 11, 13, 15})

	// The 17th offer (16 is skipped by the stride) halves again.
	s = offerN(8, 17)
	wantPoints(t, s, []int{1, 5, 9, 13, 17})
	if s.Stride() != 4 {
		t.Fatalf("stride = %d, want 4", s.Stride())
	}

	// Long run: bounded at capacity whatever the offer count.
	s = offerN(8, 10_000)
	if s.Len() > 8 {
		t.Fatalf("len = %d exceeds capacity", s.Len())
	}
	if s.Points()[0].T != sec(1) {
		t.Fatalf("oldest point lost: %+v", s.Points()[0])
	}
	for i := 1; i < s.Len(); i++ {
		gap := s.Points()[i].T - s.Points()[i-1].T
		if gap != sec(s.Stride()) {
			t.Fatalf("non-uniform gap %v at stride %d", gap, s.Stride())
		}
	}
}

// TestSeriesOddCapacityRoundsUp: odd capacities above 1 round up to
// even, so halving always sees an even-length buffer and the retained
// points stay uniformly spaced under a uniform offer cadence.
func TestSeriesOddCapacityRoundsUp(t *testing.T) {
	for _, capacity := range []int{3, 5, 7, 65535} {
		s := newSeries("odd", capacity)
		for i := 1; i <= 1000; i++ {
			s.Offer(sec(i), float64(i))
		}
		if s.Len() > capacity+1 {
			t.Fatalf("cap %d: len %d exceeds rounded capacity", capacity, s.Len())
		}
		for i := 1; i < s.Len(); i++ {
			gap := s.Points()[i].T - s.Points()[i-1].T
			if gap != sec(s.Stride()) {
				t.Fatalf("cap %d: non-uniform gap %v at stride %d (points %v)",
					capacity, gap, s.Stride(), s.Points())
			}
		}
	}
}

// TestSeriesCapacityOne pins the degenerate edge: a capacity-1 series
// retains exactly its first sample forever while the stride keeps
// doubling.
func TestSeriesCapacityOne(t *testing.T) {
	s := newSeries("one", 1)
	for i := 1; i <= 100; i++ {
		s.Offer(sec(i), float64(i))
	}
	wantPoints(t, s, []int{1})
	if s.Stride() < 2 {
		t.Fatalf("stride = %d, want doubling to have happened", s.Stride())
	}
}

func TestSeriesReadAccessors(t *testing.T) {
	var s Series // zero value must work
	if s.Len() != 0 || s.Last() != (Point{}) || s.Max() != 0 || s.Min() != 0 {
		t.Fatal("empty series not empty")
	}
	s.Offer(sec(1), 10)
	s.Offer(sec(2), 20)
	s.Offer(sec(3), 5)
	if s.Last().V != 5 || s.Max() != 20 || s.Min() != 5 {
		t.Fatalf("last/max/min = %v/%v/%v", s.Last().V, s.Max(), s.Min())
	}
	if got := s.At(2500 * time.Millisecond); got != 20 {
		t.Fatalf("At(2.5s) = %v, want step value 20", got)
	}
	if got := s.At(500 * time.Millisecond); got != 0 {
		t.Fatalf("At before first sample = %v, want 0", got)
	}
	if at, ok := s.FirstCrossing(20); !ok || at != sec(2) {
		t.Fatalf("FirstCrossing(20) = %v, %v", at, ok)
	}
	if _, ok := s.FirstCrossing(100); ok {
		t.Fatal("FirstCrossing(100) should not exist")
	}
	if !strings.HasPrefix(s.Gnuplot(), "1.000 10") {
		t.Fatalf("Gnuplot output %q", s.Gnuplot())
	}
}

func TestSetOrderPutMerge(t *testing.T) {
	a := NewSet(16)
	a.Sample("x", sec(1), 1)
	a.Sample("y", sec(2), 2)
	if a.Get("x") != a.Get("x") {
		t.Fatal("Get not idempotent")
	}

	b := NewSet(16)
	b.Sample("y", sec(3), 30) // replaces a's y on merge
	b.Sample("z", sec(4), 40)

	a.Merge(b)
	if got := a.Names(); len(got) != 3 || got[0] != "x" || got[1] != "y" || got[2] != "z" {
		t.Fatalf("merged names = %v, want [x y z]", got)
	}
	if v := a.Get("y").Last().V; v != 30 {
		t.Fatalf("merged y last = %v, want the adopted series", v)
	}

	// Merge with nil is a no-op; Put keeps first-created order stable.
	a.Merge(nil)
	s := newSeries("x2", 4)
	s.Offer(sec(9), 9)
	a.Put("x", s)
	if got := a.Names(); len(got) != 3 || got[0] != "x" {
		t.Fatalf("Put reordered names: %v", got)
	}
	if v := a.Get("x").Last().V; v != 9 {
		t.Fatalf("Put did not replace series: %v", v)
	}

	var seen []string
	a.Each(func(s *Series) { seen = append(seen, s.Name) })
	if len(seen) != 3 {
		t.Fatalf("Each visited %v", seen)
	}

	// Set capacity flows into created series.
	c := NewSet(2)
	for i := 1; i <= 50; i++ {
		c.Sample("s", sec(i), float64(i))
	}
	if c.Get("s").Len() > 2 {
		t.Fatalf("set capacity not honoured: %d points", c.Get("s").Len())
	}
}
