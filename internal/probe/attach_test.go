package probe_test

// Attachment tests drive real machines, so they live in an external test
// package (probe_test) and use the public sim API.

import (
	"strings"
	"testing"
	"time"

	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/topo"
)

// runSleeper alternates CPU bursts and timed sleeps forever.
type runSleeper struct {
	run, sleep time.Duration
	sleeping   bool
}

func (p *runSleeper) Next(ctx *sim.Ctx) sim.Op {
	p.sleeping = !p.sleeping
	if p.sleeping {
		return sim.Run(p.run)
	}
	return sim.Sleep(p.sleep)
}

func busyMachine(t testing.TB, threads int) *sim.Machine {
	t.Helper()
	m := sim.NewMachine(topo.Small(), sim.NewFIFO(), sim.Options{Seed: 9})
	for i := 0; i < threads; i++ {
		m.StartThread("w", "app", 0, &runSleeper{run: 700 * time.Microsecond, sleep: 400 * time.Microsecond})
	}
	return m
}

func TestAttachBuiltinProbes(t *testing.T) {
	m := busyMachine(t, 12)
	att, err := probe.Attach(m, probe.Options{
		Probes:  probe.Names(), // every built-in
		Cadence: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(time.Second)

	set := att.Set()
	want := []string{
		"runq.core0", "runq.core7",
		"util.core0", "util.core7",
		"live.threads",
		"rate.migrations", "rate.steals", "rate.preemptions", "rate.ticks",
		"runqlat.p50.app", "runqlat.p95.app", "runqlat.p99.app",
	}
	for _, name := range want {
		s := set.Get(name)
		if s.Len() == 0 {
			t.Errorf("series %s recorded no samples (names: %v)", name, set.Names())
		}
	}
	if got := set.Get("live.threads").Last().V; got != 12 {
		t.Errorf("live.threads = %v, want 12", got)
	}
	// Steals/ticks happen on a FIFO machine with sleep/wake churn; the
	// series must carry real signal, not zeros only.
	if set.Get("rate.ticks").Max() == 0 {
		t.Error("tick rate never above zero")
	}
	if set.Get("runqlat.p99.app").Max() < 0 {
		t.Error("runqlat quantile negative")
	}
	// Windowed utilization stays within [0, 1] (plus epsilon-free: pure
	// time ratios).
	for c := 0; c < 8; c++ {
		s := set.Get("util.core" + string(rune('0'+c)))
		if s.Min() < 0 || s.Max() > 1.0000001 {
			t.Errorf("util.core%d out of [0,1]: min %v max %v", c, s.Min(), s.Max())
		}
	}
}

func TestAttachErrors(t *testing.T) {
	m := busyMachine(t, 1)
	if _, err := probe.Attach(m, probe.Options{Probes: []string{"nope"}}); err == nil ||
		!strings.Contains(err.Error(), "unknown probe") {
		t.Fatalf("unknown probe error = %v", err)
	}
	if _, err := probe.Attach(m, probe.Options{Probes: []string{"runq", "runq"}}); err == nil ||
		!strings.Contains(err.Error(), "listed twice") {
		t.Fatalf("duplicate probe error = %v", err)
	}
	for _, name := range probe.Names() {
		if _, ok := probe.Describe(name); !ok {
			t.Errorf("probe %s has no description", name)
		}
	}
}

// TestConvergenceDetector pins the runq probe's online convergence
// detection: threads pinned to core 0 keep the runnable spread wide;
// unpinning lets wakeup placement and idle stealing close it, and the
// detector reports the first balanced sample at-or-after the armed
// instant.
func TestConvergenceDetector(t *testing.T) {
	m := sim.NewMachine(topo.Small(), sim.NewFIFO(), sim.Options{Seed: 3})
	for i := 0; i < 16; i++ {
		m.StartThreadCfg(sim.ThreadConfig{
			Name: "w", Group: "app", Pinned: []int{0},
			Prog: &runSleeper{run: 2 * time.Millisecond, sleep: 500 * time.Microsecond},
		})
	}
	att := probe.MustAttach(m, probe.Options{Probes: []string{"runq"}, Cadence: 10 * time.Millisecond})
	m.Run(100 * time.Millisecond)
	if att.Converged() {
		t.Fatal("converged while 16 mostly-runnable threads are pinned to core 0")
	}

	for _, th := range m.Threads() {
		m.SetPinned(th, nil)
	}
	armAt := m.Now()
	att.ArmConvergence(armAt)
	if !m.RunUntil(func() bool { return att.Converged() }, armAt+5*time.Second) {
		t.Fatal("wakeup placement never balanced 16 run/sleep threads over 8 cores")
	}
	at, ok := att.ConvergedAt()
	if !ok || at < armAt {
		t.Fatalf("ConvergedAt = %v, %v (armed at %v)", at, ok, armAt)
	}

	// Stop releases the timer registration: no samples accrue after.
	n := att.Set().Get("runq.core0").Len()
	att.Stop()
	m.Run(m.Now() + 200*time.Millisecond)
	if got := att.Set().Get("runq.core0").Len(); got != n {
		t.Fatalf("sampler still running after Stop: %d -> %d points", n, got)
	}
}

// TestArmConvergenceRequiresRunq pins the guard: convergence detection is
// a runq-probe feature.
func TestArmConvergenceRequiresRunq(t *testing.T) {
	m := busyMachine(t, 1)
	att := probe.MustAttach(m, probe.Options{Probes: []string{"live"}})
	defer func() {
		if recover() == nil {
			t.Fatal("ArmConvergence without runq should panic")
		}
	}()
	att.ArmConvergence(0)
}

// TestCustomSampler: bespoke samplers share the attachment cadence and
// can record into driver-owned sets — the exp_percore pattern.
func TestCustomSampler(t *testing.T) {
	m := busyMachine(t, 4)
	own := probe.NewSet(64)
	att := probe.MustAttach(m, probe.Options{Cadence: 50 * time.Millisecond})
	att.Custom(func(now time.Duration) {
		own.Sample("events", now, float64(m.EventsProcessed()))
	})
	m.Run(time.Second)
	s := own.Get("events")
	if s.Len() < 19 || s.Len() > 21 {
		t.Fatalf("custom sampler fired %d times over 1s at 50ms, want ~20", s.Len())
	}
	if s.Last().V == 0 {
		t.Fatal("custom sampler recorded no signal")
	}
	_ = att
}
