package probe_test

// BenchmarkProbeOverhead tracks the telemetry layer's engine cost from
// both sides: "none" is the BenchmarkEngineEvents workload verbatim on
// the hook-instrumented engine — it must stay at 0 allocs/op and within
// noise (<2%) of internal/sim's BenchmarkEngineEvents, proving the
// no-probes fast path is a nil check — while "attached" carries every
// built-in probe at the default cadence, pricing real telemetry.
// Recorded alongside the engine scenarios in BENCH_engine.json
// (`schedbattle -perf`).

import (
	"testing"
	"time"

	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/topo"
)

func benchEngine(b *testing.B, attach bool) {
	m := sim.NewMachine(topo.Small(), sim.NewFIFO(), sim.Options{Seed: 9})
	for i := 0; i < 12; i++ {
		m.StartThread("w", "app", 0, &runSleeper{run: 700 * time.Microsecond, sleep: 400 * time.Microsecond})
	}
	if attach {
		probe.MustAttach(m, probe.Options{Probes: probe.Names()})
	}
	m.Run(250 * time.Millisecond) // settle heap, runqueue, and callback capacity
	b.ReportAllocs()
	b.ResetTimer()
	start := m.EventsProcessed()
	for i := 0; i < b.N; i++ {
		m.Run(m.Now() + time.Millisecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(m.EventsProcessed()-start)/float64(b.N), "events/op")
}

func BenchmarkProbeOverhead(b *testing.B) {
	b.Run("none", func(b *testing.B) { benchEngine(b, false) })
	b.Run("attached", func(b *testing.B) { benchEngine(b, true) })
}

// TestZeroProbeAllocFree pins the fast-path contract in a plain test so
// CI enforces it without benchmark flakiness: a machine with no probes
// attached allocates nothing in the hot timer paths.
func TestZeroProbeAllocFree(t *testing.T) {
	m := sim.NewMachine(topo.Small(), sim.NewFIFO(), sim.Options{Seed: 9})
	for i := 0; i < 12; i++ {
		m.StartThread("w", "app", 0, &runSleeper{run: 700 * time.Microsecond, sleep: 400 * time.Microsecond})
	}
	m.Run(250 * time.Millisecond)
	avg := testing.AllocsPerRun(20, func() {
		m.Run(m.Now() + 5*time.Millisecond)
	})
	if avg != 0 {
		t.Fatalf("zero-probe hot paths allocated %.1f allocs per 5ms window, want 0", avg)
	}
}
