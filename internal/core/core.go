// Package core is the reproduction's experiment harness — the paper's
// primary contribution is the apples-to-apples comparison of ULE and CFS in
// an otherwise identical environment, and this package encodes every
// comparison the evaluation (§5–§6) reports: one driver per figure and
// table, each returning the same rows/series the paper plots, plus the
// ablations DESIGN.md lists.
package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/cfs"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/ule"
)

// SchedulerKind selects a scheduling class.
type SchedulerKind string

// Built-in scheduler kinds. The set is open: Register adds new classes or
// ablation variants at runtime, and anything registered is accepted
// everywhere a SchedulerKind is.
const (
	CFS  SchedulerKind = "cfs"
	ULE  SchedulerKind = "ule"
	FIFO SchedulerKind = "fifo"

	// Ablation variants of the built-ins (see registry.go).
	ULEPrevCPU     SchedulerKind = "ule-prevcpu"
	ULEFullPreempt SchedulerKind = "ule-fullpreempt"
	ULEStockBug    SchedulerKind = "ule-stockbug"
	CFSNoCgroups   SchedulerKind = "cfs-nocgroups"
)

// MachineConfig assembles a simulated machine for an experiment.
type MachineConfig struct {
	// Cores selects the topology: 1 uses a single-core machine, 8 the
	// desktop layout, anything else the paper's 32-core/4-node box.
	Cores int
	// Kind picks the scheduler.
	Kind SchedulerKind
	// Seed drives all randomness.
	Seed int64
	// CFSParams/ULEParams override scheduler defaults when non-nil.
	CFSParams *cfs.Params
	ULEParams *ule.Params
	// Cost overrides the default cost model when non-nil.
	Cost *sim.CostModel
	// TraceCapacity retains that many trace records.
	TraceCapacity int
	// KernelNoise starts per-core kworker threads (multicore experiments).
	KernelNoise bool
	// ForceIdleTicks keeps ticks firing on idle cores even for schedulers
	// that opt out via NeedsIdleTick — the pre-tickless engine semantics,
	// used by the tickless cross-validation tests.
	ForceIdleTicks bool
	// UseEventHeap runs the machine on the binary-heap event queue instead
	// of the timer wheel (byte-identical outputs; wheel cross-validation).
	UseEventHeap bool
}

// Topology returns the topo for the configured core count.
func (mc MachineConfig) Topology() *topo.Topology {
	switch mc.Cores {
	case 0, 32:
		return topo.Default()
	case 1:
		return topo.SingleCore()
	case 8:
		return topo.Small()
	default:
		return topo.MustNew(topo.Config{NUMANodes: 1, LLCsPerNode: 1, CoresPerLLC: mc.Cores})
	}
}

// NewMachine builds the machine and scheduler. The scheduler is resolved
// through the registry, so any kind installed with Register — built-in,
// ablation variant, or external class — works here. It panics on unknown
// kinds; use NewScheduler to get an error instead.
func NewMachine(mc MachineConfig) *sim.Machine {
	sched, err := NewScheduler(mc)
	if err != nil {
		panic(err)
	}
	if mc.Seed == 0 {
		mc.Seed = 42
	}
	m := sim.NewMachine(mc.Topology(), sched, sim.Options{
		Seed:           mc.Seed,
		Cost:           mc.Cost,
		TraceCapacity:  mc.TraceCapacity,
		ForceIdleTicks: mc.ForceIdleTicks,
		UseEventHeap:   mc.UseEventHeap,
	})
	if mc.KernelNoise {
		apps.StartKernelNoise(m, 15*time.Millisecond, 300*time.Microsecond)
	}
	return m
}

// Row is one output row of an experiment (a table line or a bar).
type Row struct {
	Label  string
	Values map[string]float64
	// Order lists value keys in printing order.
	Order []string
}

// Result is an experiment's output: rows (tables/bars) and named series
// (figures), plus free-form notes.
type Result struct {
	ID    string
	Title string
	Rows  []Row
	// Series holds figure curves, e.g. per-thread cumulative runtimes,
	// recorded through the probe telemetry layer.
	Series map[string]*probe.Set
	Notes  []string
}

// AddNote appends a free-form observation.
func (r *Result) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// AddSeries installs a named series set, allocating the map on first use.
func (r *Result) AddSeries(name string, set *probe.Set) {
	if r.Series == nil {
		r.Series = map[string]*probe.Set{}
	}
	r.Series[name] = set
}

// Merge appends o's rows and notes and adopts its series sets. When both
// results carry a set of the same name, o's series are folded in via
// probe.Set.Merge, which *replaces* same-named series — so drivers
// whose sub-results can record identically-named series (e.g. repeat
// trials of one kind) must give the sets or series distinct names to keep
// both recordings. Folding sub-results in stable trial order keeps merged
// output identical however the trials were scheduled.
func (r *Result) Merge(o *Result) {
	if o == nil {
		return
	}
	r.Rows = append(r.Rows, o.Rows...)
	r.Notes = append(r.Notes, o.Notes...)
	names := make([]string, 0, len(o.Series))
	for name := range o.Series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if existing, ok := r.Series[name]; ok {
			existing.Merge(o.Series[name])
		} else {
			r.AddSeries(name, o.Series[name])
		}
	}
}

// String renders the result as aligned text, the form the harness prints.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s", row.Label)
		keys := row.Order
		if keys == nil {
			for k := range row.Values {
				keys = append(keys, k)
			}
			sort.Strings(keys)
		}
		for _, k := range keys {
			fmt.Fprintf(&b, "  %s=%.4g", k, row.Values[k])
		}
		b.WriteString("\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is a registered, runnable paper artifact.
type Experiment struct {
	ID    string
	Title string
	// Run executes with the given scale in (0,1]; 1 is the paper-sized
	// run, smaller values shrink durations for benchmarks.
	Run func(scale float64) *Result
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Experiments lists all registered experiments in registration order.
func Experiments() []Experiment { return registry }

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("core: unknown experiment %q", id)
}

// scaleDur shortens a duration by the scale factor, with a floor.
func scaleDur(d time.Duration, scale float64, floor time.Duration) time.Duration {
	out := time.Duration(float64(d) * scale)
	if out < floor {
		out = floor
	}
	return out
}
