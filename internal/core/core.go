// Package core is the reproduction's experiment harness — the paper's
// primary contribution is the apples-to-apples comparison of ULE and CFS in
// an otherwise identical environment, and this package encodes every
// comparison the evaluation (§5–§6) reports: one driver per figure and
// table, each returning the same rows/series the paper plots, plus the
// ablations DESIGN.md lists.
package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cfs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/ule"
)

// SchedulerKind selects a scheduling class.
type SchedulerKind string

// Scheduler kinds.
const (
	CFS  SchedulerKind = "cfs"
	ULE  SchedulerKind = "ule"
	FIFO SchedulerKind = "fifo"
)

// MachineConfig assembles a simulated machine for an experiment.
type MachineConfig struct {
	// Cores selects the topology: 1 uses a single-core machine, 8 the
	// desktop layout, anything else the paper's 32-core/4-node box.
	Cores int
	// Kind picks the scheduler.
	Kind SchedulerKind
	// Seed drives all randomness.
	Seed int64
	// CFSParams/ULEParams override scheduler defaults when non-nil.
	CFSParams *cfs.Params
	ULEParams *ule.Params
	// Cost overrides the default cost model when non-nil.
	Cost *sim.CostModel
	// TraceCapacity retains that many trace records.
	TraceCapacity int
	// KernelNoise starts per-core kworker threads (multicore experiments).
	KernelNoise bool
}

// Topology returns the topo for the configured core count.
func (mc MachineConfig) Topology() *topo.Topology {
	switch mc.Cores {
	case 0, 32:
		return topo.Default()
	case 1:
		return topo.SingleCore()
	case 8:
		return topo.Small()
	default:
		return topo.MustNew(topo.Config{NUMANodes: 1, LLCsPerNode: 1, CoresPerLLC: mc.Cores})
	}
}

// NewMachine builds the machine and scheduler.
func NewMachine(mc MachineConfig) *sim.Machine {
	var sched sim.Scheduler
	switch mc.Kind {
	case CFS:
		p := cfs.DefaultParams()
		if mc.CFSParams != nil {
			p = *mc.CFSParams
		}
		sched = cfs.New(p)
	case ULE:
		p := ule.DefaultParams()
		if mc.ULEParams != nil {
			p = *mc.ULEParams
		}
		sched = ule.New(p)
	case FIFO:
		sched = sim.NewFIFO()
	default:
		panic(fmt.Sprintf("core: unknown scheduler kind %q", mc.Kind))
	}
	if mc.Seed == 0 {
		mc.Seed = 42
	}
	return sim.NewMachine(mc.Topology(), sched, sim.Options{
		Seed:          mc.Seed,
		Cost:          mc.Cost,
		TraceCapacity: mc.TraceCapacity,
	})
}

// Row is one output row of an experiment (a table line or a bar).
type Row struct {
	Label  string
	Values map[string]float64
	// Order lists value keys in printing order.
	Order []string
}

// Result is an experiment's output: rows (tables/bars) and named series
// (figures), plus free-form notes.
type Result struct {
	ID    string
	Title string
	Rows  []Row
	// Series holds figure curves, e.g. per-thread cumulative runtimes.
	Series map[string]*stats.SeriesSet
	Notes  []string
}

// AddNote appends a free-form observation.
func (r *Result) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the result as aligned text, the form the harness prints.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s", row.Label)
		keys := row.Order
		if keys == nil {
			for k := range row.Values {
				keys = append(keys, k)
			}
			sort.Strings(keys)
		}
		for _, k := range keys {
			fmt.Fprintf(&b, "  %s=%.4g", k, row.Values[k])
		}
		b.WriteString("\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is a registered, runnable paper artifact.
type Experiment struct {
	ID    string
	Title string
	// Run executes with the given scale in (0,1]; 1 is the paper-sized
	// run, smaller values shrink durations for benchmarks.
	Run func(scale float64) *Result
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Experiments lists all registered experiments in registration order.
func Experiments() []Experiment { return registry }

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("core: unknown experiment %q", id)
}

// scaleDur shortens a duration by the scale factor, with a floor.
func scaleDur(d time.Duration, scale float64, floor time.Duration) time.Duration {
	out := time.Duration(float64(d) * scale)
	if out < floor {
		out = floor
	}
	return out
}

// defaultCFSParams returns a copy of the CFS defaults for ablations.
func defaultCFSParams() cfs.Params { return cfs.DefaultParams() }
