package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/memo"
	"repro/internal/runner"
	"repro/internal/sim"
)

// Trial is the declarative unit of experiment work: one machine, one
// workload, one measurement window, one extractor. Experiment drivers emit
// grids of trials (app × scheduler × topology × seed) instead of
// inline-looping, and RunTrials executes the grid — sequentially or across
// a worker pool — with results always in trial order.
//
// Execution contract: a fresh sim.Machine is built from Machine (plus
// kernel-noise threads when Machine.KernelNoise is set), Workload installs
// programs and probes, the simulation runs until Until holds or the Window
// deadline passes (just Run(Window) when Until is nil), and Extract reads
// the outcome. Extract receives the live machine and may advance it further
// for multi-phase measurements (e.g. "let fibo finish alone" in Table 2).
type Trial[T any] struct {
	// Name labels the trial ("MG/ule", "fig6/cfs"); it also keys derived
	// per-trial seeds, so it should be stable across runs.
	Name string
	// Machine configures the simulated machine. A zero Seed is replaced by
	// a seed derived from (base seed, Name); a non-zero Seed is kept
	// verbatim unless a global base seed perturbation is installed with
	// SetBaseSeed.
	Machine MachineConfig
	// Workload installs threads, applications, and probes on the fresh
	// machine. State shared with Until/Extract lives in the constructor's
	// closure.
	Workload func(m *sim.Machine)
	// Window is the absolute simulated-time deadline for the measured run.
	Window time.Duration
	// Until optionally ends the run early (checked at every scheduling
	// boundary, as sim.Machine.RunUntil does).
	Until func(m *sim.Machine) bool
	// Extract reads the trial's outcome once the window closed.
	Extract func(m *sim.Machine) T

	// CacheKey is the trial's content-addressed fingerprint, computed by
	// the emitting layer over everything the outcome depends on EXCEPT the
	// resolved seed (RunTrials folds that in after seed resolution — see
	// trialSeed's occurrence rules). The zero key marks the trial
	// uncacheable and exempt from grid dedup.
	CacheKey memo.Key
	// Encode/Decode serialize the outcome for the installed trial cache.
	// Both must be set for the cache to engage; the encoding must
	// round-trip T so that a cached result is indistinguishable from a
	// fresh one (byte-identical downstream reports).
	Encode func(T) ([]byte, error)
	Decode func([]byte) (T, error)
}

// Execute runs the trial body on the calling goroutine. The Machine seed
// must already be resolved; RunTrials does that for grid runs.
func (t Trial[T]) Execute() T {
	m := NewMachine(t.Machine)
	if d := TrialTimeout(); d > 0 {
		m.SetWallDeadline(time.Now().Add(d))
	}
	if t.Workload != nil {
		t.Workload(m)
	}
	if t.Until != nil {
		m.RunUntil(func() bool { return t.Until(m) }, t.Window)
	} else if t.Window > 0 {
		m.Run(t.Window)
	}
	var out T
	if t.Extract != nil {
		out = t.Extract(m)
	}
	return out
}

// baseSeed perturbs every trial seed when non-zero; see SetBaseSeed.
var baseSeed atomic.Int64

// SetBaseSeed installs a global seed perturbation for trial grids (the
// CLI's -seed flag). Zero — the default — keeps each driver's paper-tuned
// explicit seeds untouched, so outputs match the published reproduction.
// Any other value deterministically re-derives every trial's seed from
// (base, trial name), which is how repeat-trial variance studies get
// independent grids without touching the drivers.
func SetBaseSeed(s int64) { baseSeed.Store(s) }

// BaseSeed returns the installed perturbation (0 = none).
func BaseSeed() int64 { return baseSeed.Load() }

// trialSeed resolves the effective seed for a trial. occ is the occurrence
// index of the trial's name within its grid — 0 for unique names — so a
// named trial draws the same derived seed however the surrounding grid is
// composed (running fig2 alone or via fig1's two-kind grid must agree).
// Note the precedence: an explicit seed under the default base seed is
// returned verbatim — identical repeat trials then intentionally produce
// identical results (the reproduction parity path). Occurrence-based
// differentiation only applies on the derived path (no explicit seed, or a
// non-zero base seed).
func trialSeed(explicit int64, name string, occ int) int64 {
	base := baseSeed.Load()
	if explicit != 0 && base == 0 {
		return explicit
	}
	if explicit == 0 && base == 0 {
		// No explicit seed: derive a stable per-trial one rather than
		// letting every trial collapse onto NewMachine's default 42.
		base = 42
	}
	return runner.DeriveSeed(base^explicit, name, occ)
}

// trialCache holds the process-wide trial-result cache; nil (the default)
// disables memoization. Like SetBaseSeed/SetWorkers it is a set-once CLI
// knob read by every grid run.
var trialCache atomic.Pointer[memo.Cache]

// SetTrialCache installs (or, with nil, removes) the process-wide
// content-addressed trial-result cache consulted by RunTrials before
// executing any cacheable trial (the CLI's -cache/-no-cache flags).
func SetTrialCache(c *memo.Cache) { trialCache.Store(c) }

// TrialCache returns the installed cache, or nil when memoization is off.
func TrialCache() *memo.Cache { return trialCache.Load() }

// dedupedTrials counts grid cells served by another identical cell's
// execution (grid-level dedup, which works with or without a cache).
var dedupedTrials atomic.Uint64

// DedupedTrials returns the process-wide count of grid cells that were
// deduplicated onto an identical cell instead of simulating.
func DedupedTrials() uint64 { return dedupedTrials.Load() }

// executeCached runs one seed-resolved trial through the installed cache:
// hit decodes the stored bytes, miss simulates and stores the encoded
// result together with its simulate wall time (the basis of the cache's
// wall-saved accounting). With no cache installed, a zero key, or no
// codec, it is exactly Execute. key must already include the resolved
// seed (memo.Derive).
func executeCached[T any](t Trial[T], key memo.Key) T {
	c := trialCache.Load()
	if c == nil || key.IsZero() || t.Encode == nil || t.Decode == nil {
		return t.Execute()
	}
	if data, _, ok := c.Get(key); ok {
		out, err := t.Decode(data)
		if err == nil {
			return out
		}
		// The payload passed the cache's integrity checks but failed the
		// codec — a format drift the schema salt should have caught. Count
		// it and fall through to a fresh simulation.
		c.NoteCorrupt()
	}
	start := time.Now()
	out := t.Execute()
	cost := time.Since(start)
	if data, err := t.Encode(out); err == nil {
		c.Put(key, data, cost)
	}
	return out
}

// trialTimeout holds the per-trial wall-clock watchdog in nanoseconds;
// see SetTrialTimeout.
var trialTimeout atomic.Int64

// SetTrialTimeout arms a per-trial wall-clock watchdog (the CLI's
// -trial-timeout flag): every subsequently executed trial panics with
// *sim.WallDeadlineError once it has run that long on the host clock —
// which RunTrialsErr recovers into a per-trial error — instead of
// wedging the whole grid. Zero, the default, disables the watchdog.
func SetTrialTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	trialTimeout.Store(int64(d))
}

// TrialTimeout returns the armed per-trial watchdog (0 = disabled).
func TrialTimeout() time.Duration { return time.Duration(trialTimeout.Load()) }

// TrialError describes one failed trial of a grid: the trial's identity,
// the recovered panic value, and the stack captured at the panic site.
// Error renders the value only — stacks contain host-nondeterministic
// goroutine IDs and addresses, so anything destined for byte-compared
// reports must use Error, keeping Stack for stderr diagnostics.
type TrialError struct {
	Index int
	Name  string
	Value any
	Stack []byte
}

func (e *TrialError) Error() string {
	return fmt.Sprintf("trial %q failed: %v", e.Name, e.Value)
}

// RunTrials executes a trial grid on the shared worker pool (runner.Workers
// wide; the CLI's -jobs flag) and returns the outcomes in trial order.
// Every trial owns a private deterministic machine, so results are
// byte-identical whatever the pool width. A panicking trial still aborts
// the caller (after the rest of the grid completes); grids that must
// survive individual failures use RunTrialsErr.
func RunTrials[T any](trials []Trial[T]) []T {
	out, errs := RunTrialsErr(trials)
	if len(errs) > 0 {
		panic(errs[0])
	}
	return out
}

// RunTrialsErr is RunTrials with per-trial failure isolation: a trial
// that panics (a scheduler invariant, a stuck program, the wall-clock
// watchdog) fails only its own slot, the rest of the grid completes, and
// the failures come back in trial order. out keeps the zero value at
// failed indices.
//
// Cacheable trials (non-zero CacheKey) are additionally deduplicated
// before dispatch: cells whose finalized fingerprints — CacheKey plus the
// resolved seed — are identical describe byte-identical simulations, so
// only the first runs and its outcome (or failure) fans back out to every
// requesting cell. Fanned-out outcomes alias one value; grid consumers
// treat results as read-only, which scenario reports already do.
func RunTrialsErr[T any](trials []Trial[T]) ([]T, []*TrialError) {
	// Seeds key on the trial name; on the derived path (no explicit seed,
	// or a non-zero base seed) same-named trials in one grid fall back to
	// their occurrence number so they still draw distinct seeds.
	occ := make(map[string]int, len(trials))
	seeds := make([]int64, len(trials))
	keys := make([]memo.Key, len(trials))
	for i, t := range trials {
		seeds[i] = trialSeed(t.Machine.Seed, t.Name, occ[t.Name])
		occ[t.Name]++
		if !t.CacheKey.IsZero() {
			keys[i] = memo.Derive(t.CacheKey, seeds[i])
		}
	}

	// Group identical cells: primaries execute, duplicates alias their
	// primary's slot. Uncacheable trials are always their own primary.
	var (
		uniq      []int                      // primary trial indices, in grid order
		primaryOf = make([]int, len(trials)) // trial index -> position in uniq
		byKey     = map[memo.Key]int{}
	)
	for i := range trials {
		if !keys[i].IsZero() {
			if j, seen := byKey[keys[i]]; seen {
				primaryOf[i] = j
				dedupedTrials.Add(1)
				continue
			}
			byKey[keys[i]] = len(uniq)
		}
		primaryOf[i] = len(uniq)
		uniq = append(uniq, i)
	}

	res, panics := runner.MapErr(len(uniq), func(j int) T {
		i := uniq[j]
		t := trials[i]
		t.Machine.Seed = seeds[i]
		return executeCached(t, keys[i])
	})

	// Scatter primary outcomes and failures back to every requesting cell,
	// in trial order. A duplicate of a panicked primary reports the same
	// failure under its own index — its simulation would have panicked
	// identically.
	failed := make(map[int]*runner.TrialPanic, len(panics))
	for _, p := range panics {
		failed[p.Index] = p
	}
	out := make([]T, len(trials))
	var errs []*TrialError
	for i := range trials {
		j := primaryOf[i]
		if p, bad := failed[j]; bad {
			errs = append(errs, &TrialError{Index: i, Name: trials[i].Name, Value: p.Value, Stack: p.Stack})
			continue
		}
		out[i] = res[j]
	}
	return out, errs
}
