package core

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/ule"
)

func TestRegisterDuplicateAndUnknown(t *testing.T) {
	f := func(mc MachineConfig) sim.Scheduler { return sim.NewFIFO() }
	if err := Register("test-fifo-clone", f); err != nil {
		t.Fatalf("first Register: %v", err)
	}
	if err := Register("test-fifo-clone", f); err == nil {
		t.Fatal("duplicate Register succeeded")
	} else if !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("duplicate error = %v", err)
	}
	if err := Register("", f); err == nil {
		t.Fatal("empty-kind Register succeeded")
	}
	if err := Register("test-nil-factory", nil); err == nil {
		t.Fatal("nil-factory Register succeeded")
	}

	if _, err := NewScheduler(MachineConfig{Kind: "no-such-kind"}); err == nil {
		t.Fatal("NewScheduler accepted an unknown kind")
	} else if !strings.Contains(err.Error(), "no-such-kind") {
		t.Fatalf("unknown-kind error = %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewMachine should panic on unknown kinds")
		}
	}()
	NewMachine(MachineConfig{Cores: 1, Kind: "no-such-kind"})
}

func TestRegisterBuiltinsAndVariants(t *testing.T) {
	have := map[SchedulerKind]bool{}
	for _, k := range SchedulerKinds() {
		have[k] = true
	}
	for _, k := range []SchedulerKind{CFS, ULE, FIFO, ULEPrevCPU, ULEFullPreempt, ULEStockBug, CFSNoCgroups} {
		if !have[k] {
			t.Errorf("kind %q not registered", k)
		}
	}
	// Every registered kind must build a working machine.
	for _, k := range SchedulerKinds() {
		m := NewMachine(MachineConfig{Cores: 1, Kind: k})
		if m.Scheduler().Name() == "" {
			t.Errorf("kind %q built a nameless scheduler", k)
		}
	}
}

// TestRegisterVariantDropIn is the registry's reason to exist: a new
// ablation variant plugs in without touching core, and experiments can
// select it purely by kind.
func TestRegisterVariantDropIn(t *testing.T) {
	kind := SchedulerKind("test-ule-slice")
	err := Register(kind, func(mc MachineConfig) sim.Scheduler {
		p := ule.DefaultParams()
		if mc.ULEParams != nil {
			p = *mc.ULEParams
		}
		return ule.New(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(MachineConfig{Cores: 1, Kind: kind})
	if _, ok := m.Scheduler().(*ule.Sched); !ok {
		t.Fatalf("variant built %T, want *ule.Sched", m.Scheduler())
	}
	// The variant is a first-class trial citizen too.
	out := RunTrials([]Trial[string]{{
		Name:    "variant-smoke",
		Machine: MachineConfig{Cores: 1, Kind: kind},
		Extract: func(m *sim.Machine) string { return m.Scheduler().Name() },
	}})
	if out[0] == "" {
		t.Fatal("trial under variant kind returned no scheduler name")
	}
}
