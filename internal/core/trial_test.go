package core

import (
	"testing"

	"repro/internal/sim"
)

func TestTrialSeedResolution(t *testing.T) {
	defer SetBaseSeed(0)

	// Default base seed: explicit seeds pass through untouched (the
	// paper-tuned reproduction path).
	SetBaseSeed(0)
	if got := trialSeed(7, "x", 0); got != 7 {
		t.Fatalf("explicit seed rewritten to %d", got)
	}
	// Unset explicit seeds derive per-name rather than collapsing onto the
	// machine default.
	if trialSeed(0, "a", 0) == trialSeed(0, "b", 0) {
		t.Fatal("derived seeds collide across names")
	}

	// Non-zero base seed: the derivation keys on the trial name, not its
	// grid position, so the same named trial draws the same seed whether it
	// runs alone or inside a larger grid.
	SetBaseSeed(31337)
	if trialSeed(1, "cosched/ule", 0) != trialSeed(1, "cosched/ule", 0) {
		t.Fatal("derived seed not deterministic")
	}
	if trialSeed(1, "cosched/ule", 0) == trialSeed(1, "cosched/cfs", 0) {
		t.Fatal("derived seeds collide across names")
	}
	// Duplicate names within one grid fall back to occurrence numbers.
	if trialSeed(1, "cosched/ule", 0) == trialSeed(1, "cosched/ule", 1) {
		t.Fatal("duplicate-name trials drew identical seeds")
	}
	if trialSeed(1, "x", 0) == trialSeed(2, "x", 0) {
		t.Fatal("explicit seed ignored under a base seed")
	}
}

func TestRunTrialsOccurrenceSeeding(t *testing.T) {
	defer SetBaseSeed(0)
	SetBaseSeed(99)
	// Three trials, two sharing a name: the duplicates must get distinct
	// machines (different seeds → different PRNG streams), while the
	// unique trial's seed must match a solo run of the same trial.
	mk := func(name string) Trial[int64] {
		return Trial[int64]{
			Name:    name,
			Machine: MachineConfig{Cores: 1, Kind: FIFO, Seed: 5},
			Extract: func(m *sim.Machine) int64 { return m.Rand().Int63n(1 << 62) },
		}
	}
	grid := RunTrials([]Trial[int64]{mk("dup"), mk("dup"), mk("solo")})
	if grid[0] == grid[1] {
		t.Fatal("duplicate-named trials produced identical PRNG streams")
	}
	solo := RunTrials([]Trial[int64]{mk("solo")})
	if grid[2] != solo[0] {
		t.Fatalf("trial %q drew a different seed alone (%d) than in a grid (%d)",
			"solo", solo[0], grid[2])
	}
}

// TestCoSchedCacheRespectsBaseSeed guards the SetBaseSeed contract: cached
// co-scheduling outcomes must not leak across base seeds.
func TestCoSchedCacheRespectsBaseSeed(t *testing.T) {
	defer SetBaseSeed(0)
	SetBaseSeed(0)
	a := coSched(ULE, 0.1)
	SetBaseSeed(424242)
	b := coSched(ULE, 0.1)
	if a == b {
		t.Fatal("base-seed change returned the seed-0 cached outcome")
	}
	SetBaseSeed(0)
	c := coSched(ULE, 0.1)
	if a != c {
		t.Fatal("restoring base seed 0 should hit the original cache entry")
	}
}
