package core

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestTrialSeedResolution(t *testing.T) {
	defer SetBaseSeed(0)

	// Default base seed: explicit seeds pass through untouched (the
	// paper-tuned reproduction path).
	SetBaseSeed(0)
	if got := trialSeed(7, "x", 0); got != 7 {
		t.Fatalf("explicit seed rewritten to %d", got)
	}
	// Unset explicit seeds derive per-name rather than collapsing onto the
	// machine default.
	if trialSeed(0, "a", 0) == trialSeed(0, "b", 0) {
		t.Fatal("derived seeds collide across names")
	}

	// Non-zero base seed: the derivation keys on the trial name, not its
	// grid position, so the same named trial draws the same seed whether it
	// runs alone or inside a larger grid.
	SetBaseSeed(31337)
	if trialSeed(1, "cosched/ule", 0) != trialSeed(1, "cosched/ule", 0) {
		t.Fatal("derived seed not deterministic")
	}
	if trialSeed(1, "cosched/ule", 0) == trialSeed(1, "cosched/cfs", 0) {
		t.Fatal("derived seeds collide across names")
	}
	// Duplicate names within one grid fall back to occurrence numbers.
	if trialSeed(1, "cosched/ule", 0) == trialSeed(1, "cosched/ule", 1) {
		t.Fatal("duplicate-name trials drew identical seeds")
	}
	if trialSeed(1, "x", 0) == trialSeed(2, "x", 0) {
		t.Fatal("explicit seed ignored under a base seed")
	}
}

func TestRunTrialsOccurrenceSeeding(t *testing.T) {
	defer SetBaseSeed(0)
	SetBaseSeed(99)
	// Three trials, two sharing a name: the duplicates must get distinct
	// machines (different seeds → different PRNG streams), while the
	// unique trial's seed must match a solo run of the same trial.
	mk := func(name string) Trial[int64] {
		return Trial[int64]{
			Name:    name,
			Machine: MachineConfig{Cores: 1, Kind: FIFO, Seed: 5},
			Extract: func(m *sim.Machine) int64 { return m.Rand().Int63n(1 << 62) },
		}
	}
	grid := RunTrials([]Trial[int64]{mk("dup"), mk("dup"), mk("solo")})
	if grid[0] == grid[1] {
		t.Fatal("duplicate-named trials produced identical PRNG streams")
	}
	solo := RunTrials([]Trial[int64]{mk("solo")})
	if grid[2] != solo[0] {
		t.Fatalf("trial %q drew a different seed alone (%d) than in a grid (%d)",
			"solo", solo[0], grid[2])
	}
}

// TestCoSchedCacheRespectsBaseSeed guards the SetBaseSeed contract: cached
// co-scheduling outcomes must not leak across base seeds.
func TestCoSchedCacheRespectsBaseSeed(t *testing.T) {
	defer SetBaseSeed(0)
	SetBaseSeed(0)
	a := coSched(ULE, 0.1)
	SetBaseSeed(424242)
	b := coSched(ULE, 0.1)
	if a == b {
		t.Fatal("base-seed change returned the seed-0 cached outcome")
	}
	SetBaseSeed(0)
	c := coSched(ULE, 0.1)
	if a != c {
		t.Fatal("restoring base seed 0 should hit the original cache entry")
	}
}

// spinner runs fixed CPU bursts forever — trial-harness test fuel.
type spinner struct{ burst time.Duration }

func (s *spinner) Next(ctx *sim.Ctx) sim.Op { return sim.Run(s.burst) }

// TestRunTrialsErrIsolation: one panicking trial in a grid fails only its
// own slot; the rest of the grid completes with real results.
func TestRunTrialsErrIsolation(t *testing.T) {
	mkTrial := func(name string, boom bool) Trial[uint64] {
		return Trial[uint64]{
			Name:    name,
			Machine: MachineConfig{Cores: 1, Kind: "fifo", Seed: 7},
			Window:  10 * time.Millisecond,
			Workload: func(m *sim.Machine) {
				m.StartThread("w", "app", 0, &spinner{burst: time.Millisecond})
				if boom {
					m.At(2*time.Millisecond, func() { panic("deliberate trial failure") })
				}
			},
			Extract: func(m *sim.Machine) uint64 { return m.EventsProcessed() },
		}
	}
	trials := []Trial[uint64]{
		mkTrial("good/0", false), mkTrial("bad/1", true),
		mkTrial("good/2", false), mkTrial("good/3", false),
	}
	out, errs := RunTrialsErr(trials)
	if len(errs) != 1 {
		t.Fatalf("errs = %+v, want exactly one", errs)
	}
	te := errs[0]
	if te.Index != 1 || te.Name != "bad/1" {
		t.Fatalf("failure attributed to %d %q, want 1 bad/1", te.Index, te.Name)
	}
	if te.Value != "deliberate trial failure" {
		t.Fatalf("panic value %v", te.Value)
	}
	if len(te.Stack) == 0 {
		t.Fatal("stack not captured")
	}
	if got, want := te.Error(), `trial "bad/1" failed: deliberate trial failure`; got != want {
		t.Fatalf("Error() = %q, want %q (no stack — it enters byte-compared reports)", got, want)
	}
	if out[1] != 0 {
		t.Fatalf("failed slot holds %d, want zero value", out[1])
	}
	for _, i := range []int{0, 2, 3} {
		if out[i] == 0 {
			t.Fatalf("healthy trial %d produced no events", i)
		}
	}

	// RunTrials (the fail-fast wrapper) panics with the same *TrialError.
	defer func() {
		r := recover()
		p, ok := r.(*TrialError)
		if !ok || p.Name != "bad/1" {
			t.Fatalf("RunTrials panic = %v, want *TrialError for bad/1", r)
		}
	}()
	RunTrials(trials)
}

// TestTrialTimeoutWatchdog: an armed per-trial deadline turns a wedged
// trial into a per-trial error instead of hanging the grid.
func TestTrialTimeoutWatchdog(t *testing.T) {
	defer SetTrialTimeout(0)
	SetTrialTimeout(50 * time.Millisecond)
	trials := []Trial[uint64]{{
		Name:    "stuck",
		Machine: MachineConfig{Cores: 1, Kind: "fifo", Seed: 3},
		// An hour of 5µs bursts: far beyond the wall budget.
		Window: time.Hour,
		Workload: func(m *sim.Machine) {
			m.StartThread("spin", "app", 0, &spinner{burst: 5 * time.Microsecond})
		},
		Extract: func(m *sim.Machine) uint64 { return m.EventsProcessed() },
	}}
	_, errs := RunTrialsErr(trials)
	if len(errs) != 1 {
		t.Fatalf("errs = %+v, want the watchdog failure", errs)
	}
	if _, ok := errs[0].Value.(*sim.WallDeadlineError); !ok {
		t.Fatalf("panic value %T (%v), want *sim.WallDeadlineError", errs[0].Value, errs[0].Value)
	}
	// Disarmed, the same trial runs normally (tiny window this time).
	SetTrialTimeout(0)
	trials[0].Window = 5 * time.Millisecond
	out, errs := RunTrialsErr(trials)
	if len(errs) != 0 || out[0] == 0 {
		t.Fatalf("disarmed run failed: out=%v errs=%+v", out, errs)
	}
}
