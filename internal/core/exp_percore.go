package core

import (
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/ule"
)

// coSchedOutcome carries everything Figures 1/2 and Table 2 read from one
// fibo+sysbench run.
type coSchedOutcome struct {
	kind SchedulerKind
	// runtime series (seconds of accumulated CPU) for fibo and sysbench.
	runtimes *probe.Set
	// penalty series for fibo and the sysbench worker mean (ULE only).
	penalties *probe.Set
	// sysbench results
	txPerSec   float64
	latencyAvg time.Duration
	sysbenchT  time.Duration // completion time of the fixed workload
	// fibo time to accumulate its fixed work
	fiboT time.Duration
	// fibo runtime accumulated while sysbench was active
	fiboDuring time.Duration
}

// coSchedTrial declares the §5.1 workload: fibo alone for 7 s, then sysbench
// (80 mostly-sleeping threads) to a fixed transaction count, on one core.
// The measured window ends when sysbench completes; the extractor then lets
// fibo finish its fixed work alone (Table 2's fibo column).
func coSchedTrial(kind SchedulerKind, scale float64) Trial[*coSchedOutcome] {
	out := &coSchedOutcome{
		kind:      kind,
		runtimes:  probe.NewSet(0),
		penalties: probe.NewSet(0),
	}

	fiboWork := scaleDur(60*time.Second, scale, 3*time.Second)
	txTarget := uint64(40000 * scale)
	if txTarget < 2000 {
		txTarget = 2000
	}

	fiboStart := apps.ShellWarmup
	sysbenchStart := fiboStart + 7*time.Second

	var (
		fibo, sys     *apps.Instance
		uleSched      *ule.Sched
		fiboBeforeSys time.Duration
	)

	return Trial[*coSchedOutcome]{
		Name:    fmt.Sprintf("cosched/%s", kind),
		Machine: MachineConfig{Cores: 1, Kind: kind, Seed: 1},
		Workload: func(m *sim.Machine) {
			fibo = apps.Fibo().New(m, apps.Env{Cores: 1, StartAt: fiboStart})
			cfg := apps.DefaultSysbench()
			cfg.TxTarget = txTarget
			sys = apps.Sysbench(cfg).New(m, apps.Env{Cores: 1, StartAt: sysbenchStart})

			if u, ok := m.Scheduler().(*ule.Sched); ok {
				uleSched = u
			}

			sysRun := func() time.Duration {
				var total time.Duration
				for _, w := range sys.Workers {
					total += w.RunTime
				}
				if sys.Master != nil {
					total += sys.Master.RunTime
				}
				return total
			}

			// Periodic probe: cumulative runtimes (Figure 1) and
			// interactivity penalties (Figure 2), as custom samplers on
			// the telemetry cadence.
			att := probe.MustAttach(m, probe.Options{})
			att.Custom(func(at time.Duration) {
				now := at - fiboStart
				if fibo.Master != nil {
					out.runtimes.Sample("fibo", now, fibo.Master.RunTime.Seconds())
					if uleSched != nil {
						out.penalties.Sample("fibo", now, float64(uleSched.Score(fibo.Master)))
					}
				}
				out.runtimes.Sample("sysbench", now, sysRun().Seconds())
				if uleSched != nil && len(sys.Workers) > 0 {
					var sum int
					for _, w := range sys.Workers {
						sum += uleSched.Score(w)
					}
					out.penalties.Sample("sysbench", now, float64(sum)/float64(len(sys.Workers)))
				}
			})
		},
		Window: sysbenchStart + scaleDur(500*time.Second, scale, 60*time.Second),
		Until: func(m *sim.Machine) bool {
			if m.Now() <= sysbenchStart && fibo.Master != nil {
				fiboBeforeSys = fibo.Master.RunTime
			}
			return sys.Done()
		},
		Extract: func(m *sim.Machine) *coSchedOutcome {
			sysEnd := m.Now()
			out.sysbenchT = sysEnd - sysbenchStart
			out.txPerSec = float64(sys.Ops()) / out.sysbenchT.Seconds()
			out.latencyAvg = sys.Latency.Mean()
			if fibo.Master != nil {
				out.fiboDuring = fibo.Master.RunTime - fiboBeforeSys
			}

			// Let fibo finish its fixed work alone.
			m.RunUntil(func() bool {
				return fibo.Master != nil && fibo.Master.RunTime >= fiboWork
			}, sysEnd+2*fiboWork+60*time.Second)
			out.fiboT = m.Now() - fiboStart
			return out
		},
	}
}

// coSchedCache memoises outcomes: fig1, fig2, and table2 all read the same
// runs. It is only touched from the driver goroutine, never from workers.
var coSchedCache = map[string]*coSchedOutcome{}

func coSchedKey(kind SchedulerKind, scale float64) string {
	// The base seed participates so SetBaseSeed invalidates prior runs
	// instead of returning stale outcomes.
	return fmt.Sprintf("%s/%.3f/%d", kind, scale, BaseSeed())
}

// coSchedAll returns the outcome per requested kind, executing all uncached
// kinds as one parallel trial grid.
func coSchedAll(scale float64, kinds ...SchedulerKind) []*coSchedOutcome {
	var missing []SchedulerKind
	for _, k := range kinds {
		if _, ok := coSchedCache[coSchedKey(k, scale)]; !ok {
			missing = append(missing, k)
		}
	}
	if len(missing) > 0 {
		trials := make([]Trial[*coSchedOutcome], len(missing))
		for i, k := range missing {
			trials[i] = coSchedTrial(k, scale)
		}
		for i, o := range RunTrials(trials) {
			coSchedCache[coSchedKey(missing[i], scale)] = o
		}
	}
	out := make([]*coSchedOutcome, len(kinds))
	for i, k := range kinds {
		out[i] = coSchedCache[coSchedKey(k, scale)]
	}
	return out
}

func coSched(kind SchedulerKind, scale float64) *coSchedOutcome {
	return coSchedAll(scale, kind)[0]
}

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Cumulative runtime of fibo and sysbench on (a) CFS and (b) ULE",
		Run: func(scale float64) *Result {
			r := &Result{ID: "fig1", Title: "fibo/sysbench cumulative runtime"}
			kinds := []SchedulerKind{CFS, ULE}
			for i, o := range coSchedAll(scale, kinds...) {
				r.AddSeries(string(kinds[i]), o.runtimes)
				r.Rows = append(r.Rows, Row{
					Label: string(kinds[i]),
					Order: []string{"fibo_runtime_during_sysbench_s", "sysbench_completion_s"},
					Values: map[string]float64{
						"fibo_runtime_during_sysbench_s": o.fiboDuring.Seconds(),
						"sysbench_completion_s":          o.sysbenchT.Seconds(),
					},
				})
			}
			c, u := coSched(CFS, scale), coSched(ULE, scale)
			r.AddNote("paper: on CFS fibo keeps accumulating runtime during sysbench; on ULE it is starved (unbounded)")
			r.AddNote("measured: fibo ran %.1fs (CFS) vs %.2fs (ULE) while sysbench was active",
				c.fiboDuring.Seconds(), u.fiboDuring.Seconds())
			return r
		},
	})
	register(Experiment{
		ID:    "fig2",
		Title: "Interactivity penalty of fibo and sysbench threads over time (ULE)",
		Run: func(scale float64) *Result {
			o := coSched(ULE, scale)
			r := &Result{ID: "fig2", Title: "ULE interactivity penalties"}
			r.AddSeries("ule", o.penalties)
			fiboMax := o.penalties.Get("fibo").Max()
			sysLast := o.penalties.Get("sysbench").Last().V
			r.Rows = append(r.Rows, Row{
				Label: "penalty",
				Order: []string{"fibo_max", "sysbench_final_mean"},
				Values: map[string]float64{
					"fibo_max":            fiboMax,
					"sysbench_final_mean": sysLast,
				},
			})
			r.AddNote("paper: fibo's penalty rises to the maximum (100) while sysbench threads drop below 30 (interactive)")
			return r
		},
	})
	register(Experiment{
		ID:    "table2",
		Title: "Execution time of fibo and sysbench; sysbench throughput and latency",
		Run: func(scale float64) *Result {
			r := &Result{ID: "table2", Title: "fibo/sysbench co-scheduling results"}
			kinds := []SchedulerKind{CFS, ULE}
			for i, o := range coSchedAll(scale, kinds...) {
				r.Rows = append(r.Rows, Row{
					Label: string(kinds[i]),
					Order: []string{"fibo_runtime_s", "sysbench_tx_per_s", "sysbench_avg_latency_ms"},
					Values: map[string]float64{
						"fibo_runtime_s":          o.fiboT.Seconds(),
						"sysbench_tx_per_s":       o.txPerSec,
						"sysbench_avg_latency_ms": float64(o.latencyAvg.Milliseconds()),
					},
				})
			}
			c, u := coSched(CFS, scale), coSched(ULE, scale)
			r.AddNote("paper: fibo 160s vs 158s; sysbench 290 vs 532 tx/s; latency 441ms vs 125ms")
			r.AddNote("measured ULE/CFS: tx ratio %.2f (paper 1.83), latency ratio %.2f (paper 0.28)",
				u.txPerSec/c.txPerSec, float64(u.latencyAvg)/float64(c.latencyAvg))
			return r
		},
	})
}

// fig3/fig4: sysbench alone on one core under ULE, 128 threads.
func init() {
	type outcome struct {
		runtimes      *probe.Set
		penalties     *probe.Set
		inter         int
		batch         int
		starvedBatch  int
		executedInter int
	}
	var cache = map[string]*outcome{}
	run := func(scale float64) *outcome {
		key := fmt.Sprintf("%.3f/%d", scale, BaseSeed())
		if o, ok := cache[key]; ok {
			return o
		}
		o := &outcome{runtimes: probe.NewSet(0), penalties: probe.NewSet(0)}
		var (
			u   *ule.Sched
			sys *apps.Instance
		)
		trial := Trial[*outcome]{
			Name:    "fig3/ule",
			Machine: MachineConfig{Cores: 1, Kind: ULE, Seed: 2},
			Workload: func(m *sim.Machine) {
				u = m.Scheduler().(*ule.Sched)
				cfg := apps.DefaultSysbench()
				cfg.Threads = 128
				sys = apps.Sysbench(cfg).New(m, apps.Env{Cores: 1})
				att := probe.MustAttach(m, probe.Options{Cadence: time.Second})
				att.Custom(func(at time.Duration) {
					now := at - apps.ShellWarmup
					if sys.Master != nil {
						o.runtimes.Sample("master", now, sys.Master.RunTime.Seconds())
						o.penalties.Sample("master", now, float64(u.Score(sys.Master)))
					}
					for i, w := range sys.Workers {
						// Sample a representative subset of workers: every 8th.
						if i%8 == 0 {
							o.runtimes.Sample(fmt.Sprintf("worker-%d", i), now, w.RunTime.Seconds())
							o.penalties.Sample(fmt.Sprintf("worker-%d", i), now, float64(u.Score(w)))
						}
					}
				})
			},
			Window: apps.ShellWarmup + scaleDur(140*time.Second, scale, 20*time.Second),
			Extract: func(m *sim.Machine) *outcome {
				for _, w := range sys.Workers {
					if u.Interactive(w) {
						o.inter++
						if w.RunTime >= 10*time.Millisecond {
							o.executedInter++
						}
					} else {
						o.batch++
						if w.RunTime < 10*time.Millisecond {
							o.starvedBatch++
						}
					}
				}
				return o
			},
		}
		res := RunTrials([]Trial[*outcome]{trial})[0]
		cache[key] = res
		return res
	}
	register(Experiment{
		ID:    "fig3",
		Title: "Cumulative runtime of sysbench threads on ULE (intra-app starvation)",
		Run: func(scale float64) *Result {
			o := run(scale)
			r := &Result{ID: "fig3", Title: "sysbench per-thread runtime under ULE"}
			r.AddSeries("runtime", o.runtimes)
			r.Rows = append(r.Rows, Row{
				Label: "threads",
				Order: []string{"interactive", "batch", "interactive_executed", "batch_starved"},
				Values: map[string]float64{
					"interactive":          float64(o.inter),
					"batch":                float64(o.batch),
					"interactive_executed": float64(o.executedInter),
					"batch_starved":        float64(o.starvedBatch),
				},
			})
			r.AddNote("paper: 80 threads classified interactive and executed, 48 batch and starved")
			return r
		},
	})
	register(Experiment{
		ID:    "fig4",
		Title: "Interactivity penalty of the sysbench threads of fig3",
		Run: func(scale float64) *Result {
			o := run(scale)
			r := &Result{ID: "fig4", Title: "sysbench per-thread penalties under ULE"}
			r.AddSeries("penalty", o.penalties)
			lo, hi := 0, 0
			o.penalties.Each(func(s *probe.Series) {
				if s.Name == "master" {
					return
				}
				if s.Last().V <= 30 {
					lo++
				} else {
					hi++
				}
			})
			r.Rows = append(r.Rows, Row{
				Label: "sampled-workers",
				Order: []string{"low_penalty", "high_penalty"},
				Values: map[string]float64{
					"low_penalty":  float64(lo),
					"high_penalty": float64(hi),
				},
			})
			r.AddNote("paper: early-forked threads' penalties decay to 0; late-forked ones stay high and never run")
			return r
		},
	})
}
