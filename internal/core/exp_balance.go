package core

import (
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// fig6Outcome is one balance-convergence trial's output: the per-core
// runnable-depth series (the heatmap rows, recorded by the runq probe)
// and the summary result.
type fig6Outcome struct {
	counts *probe.Set
	result *Result
}

// fig6Trial declares one §6.1 run: 512 spinning threads pinned to core 0,
// unpinned at 14.5 s, and the balancer left to even them out over 32 cores.
// The measured window runs to the unpin point; the convergence phase lives
// in the extractor, which keeps driving the machine until the probe's
// convergence detector fires (per-core runnable spread ≤ 1 at a sample) or
// the deadline passes — a flag check per event boundary, not per-boundary
// sampling.
func fig6Trial(kind SchedulerKind, scale float64, uleBug bool) Trial[fig6Outcome] {
	machineKind := kind
	if uleBug {
		machineKind = ULEStockBug
	}
	nThreads := int(512 * scale)
	if nThreads < 64 {
		nThreads = 64
	}
	unpinAt := 14500 * time.Millisecond

	var att *probe.Attachment
	return Trial[fig6Outcome]{
		Name:    fmt.Sprintf("fig6/%s", machineKind),
		Machine: MachineConfig{Cores: 32, Kind: machineKind, Seed: 3},
		Workload: func(m *sim.Machine) {
			for i := 0; i < nThreads; i++ {
				m.StartThreadCfg(sim.ThreadConfig{
					Name: fmt.Sprintf("spin-%d", i), Group: "spin", Pinned: []int{0},
					Prog: &workload.Loop{Burst: 10 * time.Millisecond},
				})
			}
			att = probe.MustAttach(m, probe.Options{Probes: []string{"runq"}})
		},
		Window: unpinAt,
		Extract: func(m *sim.Machine) fig6Outcome {
			for _, t := range m.Threads() {
				m.SetPinned(t, nil)
			}
			perfect := float64(nThreads / 32) // per-core count when exactly even

			// Run until the probe observes a balanced sample (spread <= 1)
			// or the deadline.
			deadline := unpinAt + scaleDur(600*time.Second, scale, 30*time.Second)
			att.ArmConvergence(m.Now())
			m.RunUntil(func() bool { return att.Converged() }, deadline)

			cs := m.RunnableCounts()
			final := make([]float64, len(cs))
			total := 0
			for i, n := range cs {
				final[i] = float64(n)
				total += n
			}
			r := &Result{ID: "fig6", Title: "balance convergence (" + string(kind) + ")"}
			vals := map[string]float64{
				"threads":        float64(total),
				"final_spread":   stats.MaxMinSpread(final),
				"migrations":     float64(m.Counters.Value("cfs.balance_migrations") + m.Counters.Value("ule.balance_migrations") + m.Counters.Value("ule.steals")),
				"perfect_percpu": perfect,
			}
			if balancedAt, ok := att.ConvergedAt(); ok {
				vals["time_to_balance_s"] = (balancedAt - unpinAt).Seconds()
			} else {
				vals["time_to_balance_s"] = -1 // never within deadline
			}
			r.Rows = append(r.Rows, Row{Label: string(kind), Values: vals,
				Order: []string{"threads", "time_to_balance_s", "final_spread", "migrations", "perfect_percpu"}})
			r.AddSeries(string(machineKind), att.Set())
			return fig6Outcome{counts: att.Set(), result: r}
		},
	}
}

// runFig6 executes a single fig6 trial on the calling goroutine; the
// experiment drivers run grids instead, this remains for focused tests.
func runFig6(kind SchedulerKind, scale float64, uleBug bool) (*probe.Set, *Result) {
	out := RunTrials([]Trial[fig6Outcome]{fig6Trial(kind, scale, uleBug)})
	return out[0].counts, out[0].result
}

// fig7Trial declares one c-ray startup run: the cascading-barrier wake
// chain, measured as time until all 512 workers are runnable. The returned
// series set is the trial's per-core runnable-depth recording; it is
// allocated at construction so the driver can adopt it once the grid ran,
// and the runq probe records into it.
func fig7Trial(kind SchedulerKind, scale float64) (Trial[Row], *probe.Set) {
	var in *apps.Instance
	counts := probe.NewSet(0)
	allRunnable := time.Duration(-1)
	launchedAt := time.Duration(0)
	trial := Trial[Row]{
		Name:    fmt.Sprintf("fig7/%s", kind),
		Machine: MachineConfig{Cores: 32, Kind: kind, Seed: 4, KernelNoise: true},
		Workload: func(m *sim.Machine) {
			in = apps.CRay().New(m, apps.Env{Cores: 32})
			probe.MustAttach(m, probe.Options{Probes: []string{"runq"}, Into: counts})
		},
		Window: apps.ShellWarmup + scaleDur(120*time.Second, scale, 20*time.Second),
		Until: func(m *sim.Machine) bool {
			if in.Master == nil {
				return false
			}
			if launchedAt == 0 {
				launchedAt = m.Now()
			}
			awake := 0
			for _, w := range in.Workers {
				if w.State() == sim.StateRunnable || w.State() == sim.StateRunning {
					awake++
				}
			}
			if len(in.Workers) == 512 && awake == 512 {
				allRunnable = m.Now()
				return true
			}
			return false
		},
		Extract: func(m *sim.Machine) Row {
			row := Row{Label: string(kind), Order: []string{"workers", "time_to_all_runnable_s"},
				Values: map[string]float64{"workers": float64(len(in.Workers))}}
			if allRunnable > 0 {
				row.Values["time_to_all_runnable_s"] = (allRunnable - launchedAt).Seconds()
			} else {
				row.Values["time_to_all_runnable_s"] = -1
			}
			return row
		},
	}
	return trial, counts
}

func init() {
	register(Experiment{
		ID:    "fig6",
		Title: "Threads per core over time: 512 pinned spinners unpinned at 14.5s (ULE vs CFS)",
		Run: func(scale float64) *Result {
			r := &Result{ID: "fig6", Title: "balance convergence"}
			kinds := []SchedulerKind{ULE, CFS}
			trials := make([]Trial[fig6Outcome], len(kinds))
			for i, kind := range kinds {
				trials[i] = fig6Trial(kind, scale, false)
			}
			for _, out := range RunTrials(trials) {
				r.Merge(out.result)
			}
			r.AddNote("paper: ULE reaches a perfectly even state only after >450 balancer invocations (~minutes); CFS moves 380+ threads within 0.2s but never perfectly balances (NUMA 25%% rule)")
			return r
		},
	})

	register(Experiment{
		ID:    "fig7",
		Title: "Threads per core over time for c-ray startup (cascading barrier)",
		Run: func(scale float64) *Result {
			r := &Result{ID: "fig7", Title: "c-ray wake chain"}
			kinds := []SchedulerKind{ULE, CFS}
			trials := make([]Trial[Row], len(kinds))
			series := make([]*probe.Set, len(kinds))
			for i, kind := range kinds {
				trials[i], series[i] = fig7Trial(kind, scale)
			}
			for i, row := range RunTrials(trials) {
				r.AddSeries(string(kinds[i]), series[i])
				r.Rows = append(r.Rows, row)
			}
			r.AddNote("paper: ULE needs >11s for all 512 threads to be runnable (batch-born threads starve in the wake chain); CFS needs ~2s; completion time is equal")
			return r
		},
	})
}
