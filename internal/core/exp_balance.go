package core

import (
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// runFig6 reproduces §6.1: 512 spinning threads pinned to core 0, unpinned
// at 14.5 s, and the balancer left to even them out over 32 cores.
func runFig6(kind SchedulerKind, scale float64, uleBug bool) (*stats.SeriesSet, *Result) {
	mc := MachineConfig{Cores: 32, Kind: kind, Seed: 3}
	if uleBug {
		p := defaultULEParams()
		p.FixBalancerBug = false
		mc.ULEParams = &p
	}
	m := NewMachine(mc)

	nThreads := int(512 * scale)
	if nThreads < 64 {
		nThreads = 64
	}
	for i := 0; i < nThreads; i++ {
		m.StartThreadCfg(sim.ThreadConfig{
			Name: fmt.Sprintf("spin-%d", i), Group: "spin", Pinned: []int{0},
			Prog: &workload.Loop{Burst: 10 * time.Millisecond},
		})
	}

	counts := stats.NewSeriesSet()
	spread := &stats.Series{Name: "spread"}
	m.Every(250*time.Millisecond, 250*time.Millisecond, func() bool {
		cs := m.RunnableCounts()
		fs := make([]float64, len(cs))
		for i, n := range cs {
			counts.Get(fmt.Sprintf("core%d", i)).Add(m.Now(), float64(n))
			fs[i] = float64(n)
		}
		spread.Add(m.Now(), stats.MaxMinSpread(fs))
		return true
	})

	unpinAt := 14500 * time.Millisecond
	m.Run(unpinAt)
	for _, t := range m.Threads() {
		m.SetPinned(t, nil)
	}
	perfect := float64(nThreads / 32) // per-core count when exactly even

	// Run until balanced (spread <= 1) or the deadline.
	deadline := unpinAt + scaleDur(600*time.Second, scale, 30*time.Second)
	balancedAt := time.Duration(0)
	m.RunUntil(func() bool {
		cs := m.RunnableCounts()
		fs := make([]float64, len(cs))
		for i, n := range cs {
			fs[i] = float64(n)
		}
		if stats.MaxMinSpread(fs) <= 1 {
			balancedAt = m.Now()
			return true
		}
		return false
	}, deadline)

	cs := m.RunnableCounts()
	final := make([]float64, len(cs))
	total := 0
	for i, n := range cs {
		final[i] = float64(n)
		total += n
	}
	r := &Result{ID: "fig6", Title: "balance convergence (" + string(kind) + ")"}
	vals := map[string]float64{
		"threads":        float64(total),
		"final_spread":   stats.MaxMinSpread(final),
		"migrations":     float64(m.Counters.Value("cfs.balance_migrations") + m.Counters.Value("ule.balance_migrations") + m.Counters.Value("ule.steals")),
		"perfect_percpu": perfect,
	}
	if balancedAt > 0 {
		vals["time_to_balance_s"] = (balancedAt - unpinAt).Seconds()
	} else {
		vals["time_to_balance_s"] = -1 // never within deadline
	}
	r.Rows = append(r.Rows, Row{Label: string(kind), Values: vals,
		Order: []string{"threads", "time_to_balance_s", "final_spread", "migrations", "perfect_percpu"}})
	return counts, r
}

func init() {
	register(Experiment{
		ID:    "fig6",
		Title: "Threads per core over time: 512 pinned spinners unpinned at 14.5s (ULE vs CFS)",
		Run: func(scale float64) *Result {
			r := &Result{ID: "fig6", Title: "balance convergence", Series: map[string]*stats.SeriesSet{}}
			for _, kind := range []SchedulerKind{ULE, CFS} {
				series, sub := runFig6(kind, scale, false)
				r.Series[string(kind)] = series
				r.Rows = append(r.Rows, sub.Rows...)
			}
			r.AddNote("paper: ULE reaches a perfectly even state only after >450 balancer invocations (~minutes); CFS moves 380+ threads within 0.2s but never perfectly balances (NUMA 25%% rule)")
			return r
		},
	})

	register(Experiment{
		ID:    "fig7",
		Title: "Threads per core over time for c-ray startup (cascading barrier)",
		Run: func(scale float64) *Result {
			r := &Result{ID: "fig7", Title: "c-ray wake chain", Series: map[string]*stats.SeriesSet{}}
			for _, kind := range []SchedulerKind{ULE, CFS} {
				m := NewMachine(MachineConfig{Cores: 32, Kind: kind, Seed: 4})
				apps.StartKernelNoise(m, 15*time.Millisecond, 300*time.Microsecond)
				in := apps.CRay().New(m, apps.Env{Cores: 32})
				counts := stats.NewSeriesSet()
				m.Every(250*time.Millisecond, 250*time.Millisecond, func() bool {
					for i, n := range m.RunnableCounts() {
						counts.Get(fmt.Sprintf("core%d", i)).Add(m.Now(), float64(n))
					}
					return true
				})
				allRunnable := time.Duration(-1)
				launchedAt := time.Duration(0)
				m.RunUntil(func() bool {
					if in.Master == nil {
						return false
					}
					if launchedAt == 0 {
						launchedAt = m.Now()
					}
					awake := 0
					for _, w := range in.Workers {
						if w.State() == sim.StateRunnable || w.State() == sim.StateRunning {
							awake++
						}
					}
					if len(in.Workers) == 512 && awake == 512 {
						allRunnable = m.Now()
						return true
					}
					return false
				}, apps.ShellWarmup+scaleDur(120*time.Second, scale, 20*time.Second))
				r.Series[string(kind)] = counts
				row := Row{Label: string(kind), Order: []string{"workers", "time_to_all_runnable_s"},
					Values: map[string]float64{"workers": float64(len(in.Workers))}}
				if allRunnable > 0 {
					row.Values["time_to_all_runnable_s"] = (allRunnable - launchedAt).Seconds()
				} else {
					row.Values["time_to_all_runnable_s"] = -1
				}
				r.Rows = append(r.Rows, row)
			}
			r.AddNote("paper: ULE needs >11s for all 512 threads to be runnable (batch-born threads starve in the wake chain); CFS needs ~2s; completion time is equal")
			return r
		},
	})
}
