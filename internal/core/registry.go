package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cfs"
	"repro/internal/sim"
	"repro/internal/ule"
)

// Factory builds a scheduler instance for one machine. Factories receive the
// whole MachineConfig so variants can honour (or deliberately override) the
// caller's tunables; any state a variant needs beyond that is closed over,
// which keeps the registry signature opaque — core never learns what a
// variant's params look like.
type Factory func(mc MachineConfig) sim.Scheduler

var (
	schedMu        sync.RWMutex
	schedFactories = map[SchedulerKind]Factory{}
)

// Register adds a scheduling class or ablation variant under kind. New
// schedulers drop in without touching core: packages (or tests, or CLIs)
// call Register from their own init and every experiment, CLI flag, and
// Config.Scheduler value accepts the new kind immediately. Registering a
// kind twice is an error.
func Register(kind SchedulerKind, f Factory) error {
	if kind == "" {
		return fmt.Errorf("core: cannot register empty scheduler kind")
	}
	if f == nil {
		return fmt.Errorf("core: nil factory for scheduler kind %q", kind)
	}
	schedMu.Lock()
	defer schedMu.Unlock()
	if _, dup := schedFactories[kind]; dup {
		return fmt.Errorf("core: scheduler kind %q already registered", kind)
	}
	schedFactories[kind] = f
	return nil
}

// MustRegister is Register, panicking on error; for init-time registration.
func MustRegister(kind SchedulerKind, f Factory) {
	if err := Register(kind, f); err != nil {
		panic(err)
	}
}

// SchedulerKinds lists every registered kind, sorted.
func SchedulerKinds() []SchedulerKind {
	schedMu.RLock()
	defer schedMu.RUnlock()
	kinds := make([]SchedulerKind, 0, len(schedFactories))
	for k := range schedFactories {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds
}

// NewScheduler builds the scheduler mc.Kind names, or reports an error for
// an unknown kind.
func NewScheduler(mc MachineConfig) (sim.Scheduler, error) {
	schedMu.RLock()
	f, ok := schedFactories[mc.Kind]
	schedMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown scheduler kind %q (registered: %v)", mc.Kind, SchedulerKinds())
	}
	return f(mc), nil
}

// uleFactory builds a ULE factory: defaults, overridden by the machine
// config's ULEParams when set, then mutated by the variant's tweak. This is
// the pattern to copy for new ULE tuning studies.
func uleFactory(mutate func(*ule.Params)) Factory {
	return func(mc MachineConfig) sim.Scheduler {
		p := ule.DefaultParams()
		if mc.ULEParams != nil {
			p = *mc.ULEParams
		}
		if mutate != nil {
			mutate(&p)
		}
		return ule.New(p)
	}
}

// cfsFactory is uleFactory's CFS counterpart.
func cfsFactory(mutate func(*cfs.Params)) Factory {
	return func(mc MachineConfig) sim.Scheduler {
		p := cfs.DefaultParams()
		if mc.CFSParams != nil {
			p = *mc.CFSParams
		}
		if mutate != nil {
			mutate(&p)
		}
		return cfs.New(p)
	}
}

// The built-in scheduling classes self-register through the same path any
// external variant uses, followed by the ablation variants the §5–§6
// validation experiments select purely by kind.
func init() {
	MustRegister(CFS, cfsFactory(nil))
	MustRegister(ULE, uleFactory(nil))
	MustRegister(FIFO, func(mc MachineConfig) sim.Scheduler {
		return sim.NewFIFO()
	})

	// ULE wakeup placement replaced with always-previous-CPU (§6.3).
	MustRegister(ULEPrevCPU, uleFactory(func(p *ule.Params) { p.WakeupPrevCPUOnly = true }))
	// Wakeup preemption for timeshare threads (the §5.3 apache ablation).
	MustRegister(ULEFullPreempt, uleFactory(func(p *ule.Params) { p.FullPreempt = true }))
	// FreeBSD 11.1 balancer-period fix reverted (ref [1]): the periodic
	// balancer never runs, only idle stealing.
	MustRegister(ULEStockBug, uleFactory(func(p *ule.Params) { p.FixBalancerBug = false }))
	// Autogroup/cgroup hierarchy disabled (pre-2.6.38 per-thread fairness).
	MustRegister(CFSNoCgroups, cfsFactory(func(p *cfs.Params) { p.Cgroups = false }))
}
