package core

import (
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/stats"
	"repro/internal/ule"
)

func defaultULEParams() ule.Params { return ule.DefaultParams() }

// runAppOnce runs one application alone and returns its performance metric
// (ops/s). Multicore runs include kernel noise threads as on a real system.
func runAppOnce(spec apps.Spec, kind SchedulerKind, cores int, seed int64, window time.Duration, uleParams *ule.Params) float64 {
	m := NewMachine(MachineConfig{Cores: cores, Kind: kind, Seed: seed, ULEParams: uleParams})
	if cores > 1 {
		apps.StartKernelNoise(m, 15*time.Millisecond, 300*time.Microsecond)
	}
	in := spec.New(m, apps.Env{Cores: cores})
	m.RunUntil(in.Done, apps.ShellWarmup+window)
	return in.Perf()
}

// appComparison runs every catalog entry under both schedulers and reports
// the paper's bar value: % performance difference of ULE relative to CFS.
func appComparison(id string, specs []apps.Spec, cores int, scale float64) *Result {
	r := &Result{ID: id, Title: fmt.Sprintf("Performance of ULE w.r.t. CFS on %d core(s)", cores)}
	window := scaleDur(25*time.Second, scale, 6*time.Second)
	var deltas []float64
	for _, spec := range specs {
		c := runAppOnce(spec, CFS, cores, 7, window, nil)
		u := runAppOnce(spec, ULE, cores, 7, window, nil)
		delta := 0.0
		if c > 0 {
			delta = (u - c) / c * 100
		}
		deltas = append(deltas, delta)
		r.Rows = append(r.Rows, Row{
			Label: spec.Name,
			Order: []string{"cfs_ops_s", "ule_ops_s", "ule_vs_cfs_pct"},
			Values: map[string]float64{
				"cfs_ops_s":      c,
				"ule_ops_s":      u,
				"ule_vs_cfs_pct": delta,
			},
		})
	}
	r.AddNote("mean ULE-vs-CFS difference: %+.2f%% (paper: +1.5%% single core, +2.75%% multicore)", stats.Mean(deltas))
	return r
}

func init() {
	register(Experiment{
		ID:    "fig5",
		Title: "Performance of ULE with respect to CFS on a single core (37 applications)",
		Run: func(scale float64) *Result {
			return appComparison("fig5", apps.Catalog(), 1, scale)
		},
	})
	register(Experiment{
		ID:    "fig8",
		Title: "Performance of ULE with respect to CFS on the 32-core machine (+hackbench)",
		Run: func(scale float64) *Result {
			specs := apps.CatalogMulticore()
			if scale < 0.5 {
				// Keep the bench variant affordable: trim hackb-800's
				// 32,000 threads to hackb-80.
				for i, s := range specs {
					if s.Name == "hackb-800" {
						specs[i] = apps.Hackbench(80, 40)
					}
				}
			}
			return appComparison("fig8", specs, 32, scale)
		},
	})

	register(Experiment{
		ID:    "fig9",
		Title: "Multi-application workloads vs running alone on CFS",
		Run: func(scale float64) *Result {
			window := scaleDur(25*time.Second, scale, 6*time.Second)
			pairs := []struct {
				name string
				a, b apps.Spec
				desc string
			}{
				{"c-ray+EP", apps.CRay(), apps.NASEP(), "batch + batch"},
				{"fibo+sysbench", apps.Fibo(), apps.Sysbench(multicoreSysbench()), "batch + interactive"},
				{"blackscholes+ferret", apps.Blackscholes(), apps.Ferret(), "batch + interactive"},
				{"apache+sysbench", apps.Apache(), apps.Sysbench(multicoreSysbench()), "interactive + interactive"},
			}
			r := &Result{ID: "fig9", Title: "multi-application workloads"}
			runPair := func(kind SchedulerKind, a, b apps.Spec) (fa, fb float64) {
				m := NewMachine(MachineConfig{Cores: 32, Kind: kind, Seed: 8})
				apps.StartKernelNoise(m, 15*time.Millisecond, 300*time.Microsecond)
				ia := a.New(m, apps.Env{Cores: 32})
				ib := b.New(m, apps.Env{Cores: 32})
				m.Run(apps.ShellWarmup + window)
				return ia.Perf(), ib.Perf()
			}
			for _, p := range pairs {
				baseA := runAppOnce(p.a, CFS, 32, 8, window, nil)
				baseB := runAppOnce(p.b, CFS, 32, 8, window, nil)
				aloneUA := runAppOnce(p.a, ULE, 32, 8, window, nil)
				aloneUB := runAppOnce(p.b, ULE, 32, 8, window, nil)
				cfsA, cfsB := runPair(CFS, p.a, p.b)
				uleA, uleB := runPair(ULE, p.a, p.b)
				pct := func(v, base float64) float64 {
					if base <= 0 {
						return 0
					}
					return (v - base) / base * 100
				}
				r.Rows = append(r.Rows, Row{
					Label: p.name + "/" + p.a.Name,
					Order: []string{"cfs_multi_pct", "ule_single_pct", "ule_multi_pct"},
					Values: map[string]float64{
						"cfs_multi_pct":  pct(cfsA, baseA),
						"ule_single_pct": pct(aloneUA, baseA),
						"ule_multi_pct":  pct(uleA, baseA),
					},
				})
				r.Rows = append(r.Rows, Row{
					Label: p.name + "/" + p.b.Name,
					Order: []string{"cfs_multi_pct", "ule_single_pct", "ule_multi_pct"},
					Values: map[string]float64{
						"cfs_multi_pct":  pct(cfsB, baseB),
						"ule_single_pct": pct(aloneUB, baseB),
						"ule_multi_pct":  pct(uleB, baseB),
					},
				})
			}
			r.AddNote("paper: batch+batch equal on both; ULE sacrifices the batch app when paired with an interactive one (blackscholes -80%%, ferret unharmed); sysbench+fibo: sysbench worse on ULE (no preemption on lock handoff)")
			return r
		},
	})
}

// multicoreSysbench is the multicore configuration: 256 connections with
// sub-millisecond think times, enough offered load to saturate all 32
// cores so ULE's wakeup scans hit their §6.3 worst case (every core busy
// with equal-priority threads defeats the priority-filtered searches).
func multicoreSysbench() apps.SysbenchConfig {
	cfg := apps.DefaultSysbench()
	cfg.Threads = 256
	cfg.InitPerWorker = 4 * time.Millisecond
	cfg.Think = 500 * time.Microsecond
	// Moderate lock contention: present (the §6.4 handoff effect) but not
	// the throughput bound.
	cfg.CritPermille = 150
	return cfg
}

func init() {
	register(Experiment{
		ID:    "overhead",
		Title: "Scheduler cycle overhead (§6.3): ULE wakeup scans vs CFS",
		Run: func(scale float64) *Result {
			window := scaleDur(20*time.Second, scale, 5*time.Second)
			r := &Result{ID: "overhead", Title: "scheduler time as fraction of busy cycles"}
			measure := func(kind SchedulerKind, spec apps.Spec, uleParams *ule.Params) (frac float64, scans float64) {
				m := NewMachine(MachineConfig{Cores: 32, Kind: kind, Seed: 9, ULEParams: uleParams})
				in := spec.New(m, apps.Env{Cores: 32})
				m.RunUntil(in.Done, apps.ShellWarmup+window)
				var busy, scan time.Duration
				for _, c := range m.Cores {
					busy += c.BusyTime
					scan += c.ScanTime
				}
				if busy+scan == 0 {
					return 0, 0
				}
				return float64(scan) / float64(busy+scan) * 100,
					float64(m.Counters.Value("ule.scan_cores") + m.Counters.Value("cfs.scan_cores"))
			}
			sys := apps.Sysbench(multicoreSysbench())
			hb := apps.Hackbench(80, 40)
			for _, kind := range []SchedulerKind{CFS, ULE} {
				fSys, scansSys := measure(kind, sys, nil)
				fHb, _ := measure(kind, hb, nil)
				r.Rows = append(r.Rows, Row{
					Label: string(kind),
					Order: []string{"sysbench_sched_pct", "hackbench_sched_pct", "sysbench_scan_cores"},
					Values: map[string]float64{
						"sysbench_sched_pct":  fSys,
						"hackbench_sched_pct": fHb,
						"sysbench_scan_cores": scansSys,
					},
				})
			}
			r.AddNote("paper: ULE spends 13%% of cycles scanning cores on sysbench (CFS max 2.6%%); hackbench 1%% vs 0.3%%")
			return r
		},
	})

	register(Experiment{
		ID:    "ablation-wakeup",
		Title: "§6.3 validation: ULE wakeup placement replaced by previous-CPU",
		Run: func(scale float64) *Result {
			window := scaleDur(20*time.Second, scale, 5*time.Second)
			sys := apps.Sysbench(multicoreSysbench())
			stock := runAppOnce(sys, ULE, 32, 9, window, nil)
			p := defaultULEParams()
			p.WakeupPrevCPUOnly = true
			prevCPU := runAppOnce(sys, ULE, 32, 9, window, &p)
			cfsPerf := runAppOnce(sys, CFS, 32, 9, window, nil)
			r := &Result{ID: "ablation-wakeup", Title: "ULE wakeup ablation"}
			r.Rows = append(r.Rows, Row{
				Label: "sysbench",
				Order: []string{"cfs_ops_s", "ule_ops_s", "ule_prevcpu_ops_s"},
				Values: map[string]float64{
					"cfs_ops_s":         cfsPerf,
					"ule_ops_s":         stock,
					"ule_prevcpu_ops_s": prevCPU,
				},
			})
			r.AddNote("paper: with the prev-CPU wakeup function, ULE's sysbench deficit versus CFS disappears")
			return r
		},
	})

	register(Experiment{
		ID:    "ablation-lbbug",
		Title: "Stock FreeBSD 11.1 balancer bug (ref [1]): periodic balancer never runs",
		Run: func(scale float64) *Result {
			r := &Result{ID: "ablation-lbbug", Title: "ULE balancer bug ablation", Series: map[string]*stats.SeriesSet{}}
			series, fixed := runFig6(ULE, scale*0.5, false)
			r.Series["fixed"] = series
			for _, row := range fixed.Rows {
				row.Label = "ule-fixed"
				r.Rows = append(r.Rows, row)
			}
			seriesBug, bug := runFig6(ULE, scale*0.5, true)
			r.Series["bug"] = seriesBug
			for _, row := range bug.Rows {
				row.Label = "ule-stock-bug"
				r.Rows = append(r.Rows, row)
			}
			r.AddNote("with the bug, only idle stealing runs: core 0 keeps its pile forever")
			return r
		},
	})

	register(Experiment{
		ID:    "ablation-cgroup",
		Title: "CFS without cgroups: per-thread fairness (pre-2.6.38 behaviour)",
		Run: func(scale float64) *Result {
			window := scaleDur(30*time.Second, scale, 8*time.Second)
			run := func(cgroups bool) float64 {
				mc := MachineConfig{Cores: 1, Kind: CFS, Seed: 10}
				p := defaultCFSParams()
				p.Cgroups = cgroups
				mc.CFSParams = &p
				m := NewMachine(mc)
				fibo := apps.Fibo().New(m, apps.Env{Cores: 1})
				cfg := apps.DefaultSysbench()
				apps.Sysbench(cfg).New(m, apps.Env{Cores: 1, StartAt: apps.ShellWarmup})
				m.Run(apps.ShellWarmup + window)
				if fibo.Master == nil {
					return 0
				}
				return fibo.Master.RunTime.Seconds() / window.Seconds()
			}
			with := run(true)
			without := run(false)
			r := &Result{ID: "ablation-cgroup", Title: "fibo CPU share vs 80-thread sysbench"}
			r.Rows = append(r.Rows, Row{
				Label: "fibo_share",
				Order: []string{"cgroups_on", "cgroups_off"},
				Values: map[string]float64{
					"cgroups_on":  with,
					"cgroups_off": without,
				},
			})
			r.AddNote("with cgroups fibo gets ~an application share; without, roughly a per-thread share")
			return r
		},
	})

	register(Experiment{
		ID:    "ablation-preempt",
		Title: "ULE with full preemption: the apache advantage disappears",
		Run: func(scale float64) *Result {
			window := scaleDur(15*time.Second, scale, 5*time.Second)
			ap := apps.Apache()
			cfsPerf := runAppOnce(ap, CFS, 1, 11, window, nil)
			stock := runAppOnce(ap, ULE, 1, 11, window, nil)
			p := defaultULEParams()
			p.FullPreempt = true
			preempt := runAppOnce(ap, ULE, 1, 11, window, &p)
			r := &Result{ID: "ablation-preempt", Title: "apache round-trips/s"}
			r.Rows = append(r.Rows, Row{
				Label: "apache",
				Order: []string{"cfs", "ule", "ule_full_preempt"},
				Values: map[string]float64{
					"cfs":              cfsPerf,
					"ule":              stock,
					"ule_full_preempt": preempt,
				},
			})
			r.AddNote("paper attributes ULE's +40%% on apache to the absence of wakeup preemption of ab")
			return r
		},
	})
}
