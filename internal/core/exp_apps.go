package core

import (
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/sim"
	"repro/internal/stats"
)

// appTrial declares one application running alone under one scheduler and
// returning its performance metric (ops/s). Multicore machines include
// kernel noise threads as on a real system.
func appTrial(spec apps.Spec, kind SchedulerKind, cores int, seed int64, window time.Duration) Trial[float64] {
	var in *apps.Instance
	return Trial[float64]{
		Name: fmt.Sprintf("%s/%s", spec.Name, kind),
		Machine: MachineConfig{
			Cores: cores, Kind: kind, Seed: seed, KernelNoise: cores > 1,
		},
		Workload: func(m *sim.Machine) { in = spec.New(m, apps.Env{Cores: cores}) },
		Window:   apps.ShellWarmup + window,
		Until:    func(m *sim.Machine) bool { return in.Done() },
		Extract:  func(m *sim.Machine) float64 { return in.Perf() },
	}
}

// appComparison runs every catalog entry under both schedulers — one trial
// per (app, scheduler) cell, executed on the worker pool — and reports the
// paper's bar value: % performance difference of ULE relative to CFS.
func appComparison(id string, specs []apps.Spec, cores int, scale float64) *Result {
	r := &Result{ID: id, Title: fmt.Sprintf("Performance of ULE w.r.t. CFS on %d core(s)", cores)}
	window := scaleDur(25*time.Second, scale, 6*time.Second)
	trials := make([]Trial[float64], 0, 2*len(specs))
	for _, spec := range specs {
		trials = append(trials,
			appTrial(spec, CFS, cores, 7, window),
			appTrial(spec, ULE, cores, 7, window))
	}
	perfs := RunTrials(trials)
	var deltas []float64
	for i, spec := range specs {
		c, u := perfs[2*i], perfs[2*i+1]
		delta := 0.0
		if c > 0 {
			delta = (u - c) / c * 100
		}
		deltas = append(deltas, delta)
		r.Rows = append(r.Rows, Row{
			Label: spec.Name,
			Order: []string{"cfs_ops_s", "ule_ops_s", "ule_vs_cfs_pct"},
			Values: map[string]float64{
				"cfs_ops_s":      c,
				"ule_ops_s":      u,
				"ule_vs_cfs_pct": delta,
			},
		})
	}
	r.AddNote("mean ULE-vs-CFS difference: %+.2f%% (paper: +1.5%% single core, +2.75%% multicore)", stats.Mean(deltas))
	return r
}

func init() {
	register(Experiment{
		ID:    "fig5",
		Title: "Performance of ULE with respect to CFS on a single core (37 applications)",
		Run: func(scale float64) *Result {
			return appComparison("fig5", apps.Catalog(), 1, scale)
		},
	})
	register(Experiment{
		ID:    "fig8",
		Title: "Performance of ULE with respect to CFS on the 32-core machine (+hackbench)",
		Run: func(scale float64) *Result {
			specs := apps.CatalogMulticore()
			if scale < 0.5 {
				// Keep the bench variant affordable: trim hackb-800's
				// 32,000 threads to hackb-80.
				for i, s := range specs {
					if s.Name == "hackb-800" {
						specs[i] = apps.Hackbench(80, 40)
					}
				}
			}
			return appComparison("fig8", specs, 32, scale)
		},
	})

	register(Experiment{
		ID:    "fig9",
		Title: "Multi-application workloads vs running alone on CFS",
		Run: func(scale float64) *Result {
			window := scaleDur(25*time.Second, scale, 6*time.Second)
			pairs := []struct {
				name string
				a, b apps.Spec
				desc string
			}{
				{"c-ray+EP", apps.CRay(), apps.NASEP(), "batch + batch"},
				{"fibo+sysbench", apps.Fibo(), apps.Sysbench(multicoreSysbench()), "batch + interactive"},
				{"blackscholes+ferret", apps.Blackscholes(), apps.Ferret(), "batch + interactive"},
				{"apache+sysbench", apps.Apache(), apps.Sysbench(multicoreSysbench()), "interactive + interactive"},
			}
			r := &Result{ID: "fig9", Title: "multi-application workloads"}

			// perfPair carries the two metrics one trial can produce: the
			// co-scheduled trials fill both slots, the run-alone baselines
			// only a.
			type perfPair struct{ a, b float64 }
			pairTrial := func(kind SchedulerKind, name string, a, b apps.Spec) Trial[perfPair] {
				var ia, ib *apps.Instance
				return Trial[perfPair]{
					Name:    fmt.Sprintf("%s/%s", name, kind),
					Machine: MachineConfig{Cores: 32, Kind: kind, Seed: 8, KernelNoise: true},
					Workload: func(m *sim.Machine) {
						ia = a.New(m, apps.Env{Cores: 32})
						ib = b.New(m, apps.Env{Cores: 32})
					},
					Window:  apps.ShellWarmup + window,
					Extract: func(m *sim.Machine) perfPair { return perfPair{a: ia.Perf(), b: ib.Perf()} },
				}
			}
			alone := func(spec apps.Spec, kind SchedulerKind) Trial[perfPair] {
				t := appTrial(spec, kind, 32, 8, window)
				return Trial[perfPair]{
					Name: t.Name, Machine: t.Machine, Workload: t.Workload,
					Window: t.Window, Until: t.Until,
					Extract: func(m *sim.Machine) perfPair { return perfPair{a: t.Extract(m)} },
				}
			}

			// One grid: run-alone baselines (deduped — sysbench appears in
			// two pairs and runs alone only once per scheduler) plus the
			// two co-scheduled runs per pair.
			var trials []Trial[perfPair]
			aloneIdx := map[string]int{}
			addAlone := func(spec apps.Spec, kind SchedulerKind) int {
				key := spec.Name + "/" + string(kind)
				if i, ok := aloneIdx[key]; ok {
					return i
				}
				trials = append(trials, alone(spec, kind))
				aloneIdx[key] = len(trials) - 1
				return aloneIdx[key]
			}
			type pairIdx struct{ aC, bC, aU, bU, pairC, pairU int }
			idx := make([]pairIdx, len(pairs))
			for i, p := range pairs {
				idx[i].aC = addAlone(p.a, CFS)
				idx[i].bC = addAlone(p.b, CFS)
				idx[i].aU = addAlone(p.a, ULE)
				idx[i].bU = addAlone(p.b, ULE)
				trials = append(trials, pairTrial(CFS, p.name, p.a, p.b))
				idx[i].pairC = len(trials) - 1
				trials = append(trials, pairTrial(ULE, p.name, p.a, p.b))
				idx[i].pairU = len(trials) - 1
			}
			out := RunTrials(trials)
			pct := func(v, base float64) float64 {
				if base <= 0 {
					return 0
				}
				return (v - base) / base * 100
			}
			for i, p := range pairs {
				baseA, baseB := out[idx[i].aC].a, out[idx[i].bC].a
				aloneUA, aloneUB := out[idx[i].aU].a, out[idx[i].bU].a
				cfsPair, ulePair := out[idx[i].pairC], out[idx[i].pairU]
				r.Rows = append(r.Rows, Row{
					Label: p.name + "/" + p.a.Name,
					Order: []string{"cfs_multi_pct", "ule_single_pct", "ule_multi_pct"},
					Values: map[string]float64{
						"cfs_multi_pct":  pct(cfsPair.a, baseA),
						"ule_single_pct": pct(aloneUA, baseA),
						"ule_multi_pct":  pct(ulePair.a, baseA),
					},
				})
				r.Rows = append(r.Rows, Row{
					Label: p.name + "/" + p.b.Name,
					Order: []string{"cfs_multi_pct", "ule_single_pct", "ule_multi_pct"},
					Values: map[string]float64{
						"cfs_multi_pct":  pct(cfsPair.b, baseB),
						"ule_single_pct": pct(aloneUB, baseB),
						"ule_multi_pct":  pct(ulePair.b, baseB),
					},
				})
			}
			r.AddNote("paper: batch+batch equal on both; ULE sacrifices the batch app when paired with an interactive one (blackscholes -80%%, ferret unharmed); sysbench+fibo: sysbench worse on ULE (no preemption on lock handoff)")
			return r
		},
	})
}

// multicoreSysbench is the multicore configuration: 256 connections with
// sub-millisecond think times, enough offered load to saturate all 32
// cores so ULE's wakeup scans hit their §6.3 worst case (every core busy
// with equal-priority threads defeats the priority-filtered searches).
func multicoreSysbench() apps.SysbenchConfig {
	cfg := apps.DefaultSysbench()
	cfg.Threads = 256
	cfg.InitPerWorker = 4 * time.Millisecond
	cfg.Think = 500 * time.Microsecond
	// Moderate lock contention: present (the §6.4 handoff effect) but not
	// the throughput bound.
	cfg.CritPermille = 150
	return cfg
}

func init() {
	register(Experiment{
		ID:    "overhead",
		Title: "Scheduler cycle overhead (§6.3): ULE wakeup scans vs CFS",
		Run: func(scale float64) *Result {
			window := scaleDur(20*time.Second, scale, 5*time.Second)
			r := &Result{ID: "overhead", Title: "scheduler time as fraction of busy cycles"}
			type overheadOut struct{ frac, scans float64 }
			trial := func(kind SchedulerKind, spec apps.Spec) Trial[overheadOut] {
				var in *apps.Instance
				return Trial[overheadOut]{
					Name:     fmt.Sprintf("overhead/%s/%s", spec.Name, kind),
					Machine:  MachineConfig{Cores: 32, Kind: kind, Seed: 9},
					Workload: func(m *sim.Machine) { in = spec.New(m, apps.Env{Cores: 32}) },
					Window:   apps.ShellWarmup + window,
					Until:    func(m *sim.Machine) bool { return in.Done() },
					Extract: func(m *sim.Machine) overheadOut {
						var busy, scan time.Duration
						for _, c := range m.Cores {
							busy += c.BusyTime
							scan += c.ScanTime
						}
						if busy+scan == 0 {
							return overheadOut{}
						}
						return overheadOut{
							frac:  float64(scan) / float64(busy+scan) * 100,
							scans: float64(m.Counters.Value("ule.scan_cores") + m.Counters.Value("cfs.scan_cores")),
						}
					},
				}
			}
			sys := apps.Sysbench(multicoreSysbench())
			hb := apps.Hackbench(80, 40)
			kinds := []SchedulerKind{CFS, ULE}
			var trials []Trial[overheadOut]
			for _, kind := range kinds {
				trials = append(trials, trial(kind, sys), trial(kind, hb))
			}
			out := RunTrials(trials)
			for i, kind := range kinds {
				sysOut, hbOut := out[2*i], out[2*i+1]
				r.Rows = append(r.Rows, Row{
					Label: string(kind),
					Order: []string{"sysbench_sched_pct", "hackbench_sched_pct", "sysbench_scan_cores"},
					Values: map[string]float64{
						"sysbench_sched_pct":  sysOut.frac,
						"hackbench_sched_pct": hbOut.frac,
						"sysbench_scan_cores": sysOut.scans,
					},
				})
			}
			r.AddNote("paper: ULE spends 13%% of cycles scanning cores on sysbench (CFS max 2.6%%); hackbench 1%% vs 0.3%%")
			return r
		},
	})

	register(Experiment{
		ID:    "ablation-wakeup",
		Title: "§6.3 validation: ULE wakeup placement replaced by previous-CPU",
		Run: func(scale float64) *Result {
			window := scaleDur(20*time.Second, scale, 5*time.Second)
			sys := apps.Sysbench(multicoreSysbench())
			// The prev-CPU variant is just another registered scheduler
			// kind — the driver doesn't touch params.
			out := RunTrials([]Trial[float64]{
				appTrial(sys, CFS, 32, 9, window),
				appTrial(sys, ULE, 32, 9, window),
				appTrial(sys, ULEPrevCPU, 32, 9, window),
			})
			r := &Result{ID: "ablation-wakeup", Title: "ULE wakeup ablation"}
			r.Rows = append(r.Rows, Row{
				Label: "sysbench",
				Order: []string{"cfs_ops_s", "ule_ops_s", "ule_prevcpu_ops_s"},
				Values: map[string]float64{
					"cfs_ops_s":         out[0],
					"ule_ops_s":         out[1],
					"ule_prevcpu_ops_s": out[2],
				},
			})
			r.AddNote("paper: with the prev-CPU wakeup function, ULE's sysbench deficit versus CFS disappears")
			return r
		},
	})

	register(Experiment{
		ID:    "ablation-lbbug",
		Title: "Stock FreeBSD 11.1 balancer bug (ref [1]): periodic balancer never runs",
		Run: func(scale float64) *Result {
			r := &Result{ID: "ablation-lbbug", Title: "ULE balancer bug ablation"}
			out := RunTrials([]Trial[fig6Outcome]{
				fig6Trial(ULE, scale*0.5, false),
				fig6Trial(ULE, scale*0.5, true),
			})
			labels := []string{"ule-fixed", "ule-stock-bug"}
			for i, o := range out {
				for j := range o.result.Rows {
					o.result.Rows[j].Label = labels[i]
				}
				// Sub-result series merge under their kind names ("ule",
				// "ule-stockbug"), matching the registry vocabulary.
				r.Merge(o.result)
			}
			r.AddNote("with the bug, only idle stealing runs: core 0 keeps its pile forever")
			return r
		},
	})

	register(Experiment{
		ID:    "ablation-cgroup",
		Title: "CFS without cgroups: per-thread fairness (pre-2.6.38 behaviour)",
		Run: func(scale float64) *Result {
			window := scaleDur(30*time.Second, scale, 8*time.Second)
			trial := func(kind SchedulerKind) Trial[float64] {
				var fibo *apps.Instance
				return Trial[float64]{
					Name:    fmt.Sprintf("cgroup/%s", kind),
					Machine: MachineConfig{Cores: 1, Kind: kind, Seed: 10},
					Workload: func(m *sim.Machine) {
						fibo = apps.Fibo().New(m, apps.Env{Cores: 1})
						cfg := apps.DefaultSysbench()
						apps.Sysbench(cfg).New(m, apps.Env{Cores: 1, StartAt: apps.ShellWarmup})
					},
					Window: apps.ShellWarmup + window,
					Extract: func(m *sim.Machine) float64 {
						if fibo.Master == nil {
							return 0
						}
						return fibo.Master.RunTime.Seconds() / window.Seconds()
					},
				}
			}
			out := RunTrials([]Trial[float64]{trial(CFS), trial(CFSNoCgroups)})
			r := &Result{ID: "ablation-cgroup", Title: "fibo CPU share vs 80-thread sysbench"}
			r.Rows = append(r.Rows, Row{
				Label: "fibo_share",
				Order: []string{"cgroups_on", "cgroups_off"},
				Values: map[string]float64{
					"cgroups_on":  out[0],
					"cgroups_off": out[1],
				},
			})
			r.AddNote("with cgroups fibo gets ~an application share; without, roughly a per-thread share")
			return r
		},
	})

	register(Experiment{
		ID:    "ablation-preempt",
		Title: "ULE with full preemption: the apache advantage disappears",
		Run: func(scale float64) *Result {
			window := scaleDur(15*time.Second, scale, 5*time.Second)
			ap := apps.Apache()
			out := RunTrials([]Trial[float64]{
				appTrial(ap, CFS, 1, 11, window),
				appTrial(ap, ULE, 1, 11, window),
				appTrial(ap, ULEFullPreempt, 1, 11, window),
			})
			r := &Result{ID: "ablation-preempt", Title: "apache round-trips/s"}
			r.Rows = append(r.Rows, Row{
				Label: "apache",
				Order: []string{"cfs", "ule", "ule_full_preempt"},
				Values: map[string]float64{
					"cfs":              out[0],
					"ule":              out[1],
					"ule_full_preempt": out[2],
				},
			})
			r.AddNote("paper attributes ULE's +40%% on apache to the absence of wakeup preemption of ab")
			return r
		},
	})
}
