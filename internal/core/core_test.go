package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig2", "table2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "overhead",
		"ablation-wakeup", "ablation-lbbug", "ablation-cgroup", "ablation-preempt",
	}
	have := map[string]bool{}
	for _, e := range Experiments() {
		have[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if _, err := ByID("fig1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

func TestMachineConfigTopologies(t *testing.T) {
	if got := (MachineConfig{Cores: 1}).Topology().NCores(); got != 1 {
		t.Fatalf("1-core topo has %d cores", got)
	}
	if got := (MachineConfig{Cores: 32}).Topology().NCores(); got != 32 {
		t.Fatalf("32-core topo has %d cores", got)
	}
	if got := (MachineConfig{Cores: 8}).Topology().NCores(); got != 8 {
		t.Fatalf("8-core topo has %d cores", got)
	}
	if got := (MachineConfig{Cores: 4}).Topology().NCores(); got != 4 {
		t.Fatalf("4-core topo has %d cores", got)
	}
	for _, kind := range []SchedulerKind{CFS, ULE, FIFO} {
		m := NewMachine(MachineConfig{Cores: 1, Kind: kind})
		if m.Scheduler().Name() == "" {
			t.Fatalf("scheduler for %v has no name", kind)
		}
	}
}

// TestTable2Shape is the headline per-core result: ULE starves fibo,
// doubles sysbench throughput, and slashes latency.
func TestTable2Shape(t *testing.T) {
	c := coSched(CFS, 0.1)
	u := coSched(ULE, 0.1)
	if u.txPerSec <= 1.3*c.txPerSec {
		t.Errorf("ULE tx/s %.0f not ≫ CFS %.0f (paper ratio 1.83)", u.txPerSec, c.txPerSec)
	}
	if u.latencyAvg >= c.latencyAvg {
		t.Errorf("ULE latency %v not < CFS %v", u.latencyAvg, c.latencyAvg)
	}
	// Starvation: fibo accumulates almost nothing under ULE while sysbench
	// runs, but about half the CPU under CFS.
	if u.fiboDuring > 500*time.Millisecond {
		t.Errorf("fibo got %v under ULE during sysbench; expected starvation", u.fiboDuring)
	}
	if c.fiboDuring < time.Second {
		t.Errorf("fibo got only %v under CFS during sysbench", c.fiboDuring)
	}
	// Figure 2 shape: fibo's penalty hits the maximum; sysbench threads
	// stay interactive.
	if got := u.penalties.Get("fibo").Max(); got < 85 {
		t.Errorf("fibo max penalty = %v, want approaching 100", got)
	}
	if got := u.penalties.Get("sysbench").Last().V; got > 30 {
		t.Errorf("sysbench mean penalty = %v, want interactive (<30)", got)
	}
}

func TestFig3Shape(t *testing.T) {
	r, err := ByID("fig3")
	if err != nil {
		t.Fatal(err)
	}
	res := r.Run(0.15)
	var inter, batch, starved float64
	for _, row := range res.Rows {
		if row.Label == "threads" {
			inter = row.Values["interactive"]
			batch = row.Values["batch"]
			starved = row.Values["batch_starved"]
		}
	}
	if inter < 50 || batch < 10 {
		t.Fatalf("split %v/%v; want a meaningful split (paper 80/48)", inter, batch)
	}
	if starved < batch*0.8 {
		t.Fatalf("only %v of %v batch threads starved", starved, batch)
	}
}

func TestFig6Shape(t *testing.T) {
	// Scaled down: ULE converges to a perfectly even state but needs many
	// balancer invocations; CFS balances fast but imperfectly.
	_, ur := runFig6(ULE, 0.15, false)
	_, cr := runFig6(CFS, 0.15, false)
	ut := ur.Rows[0].Values["time_to_balance_s"]
	uspread := ur.Rows[0].Values["final_spread"]
	cspread := cr.Rows[0].Values["final_spread"]
	if ut <= 0 && uspread > 1 {
		t.Fatalf("ULE never balanced (spread %v)", uspread)
	}
	if ut > 0 && ut < 5 {
		t.Fatalf("ULE balanced in %vs; expected slow convergence", ut)
	}
	// CFS: fast near-balance. Check it moved the bulk quickly by requiring
	// a small final spread yet no perfect balance claim.
	if cspread > 4 {
		t.Fatalf("CFS final spread %v too large", cspread)
	}
}

func TestFig7Shape(t *testing.T) {
	e, err := ByID("fig7")
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run(0.3)
	var uleT, cfsT float64
	for _, row := range res.Rows {
		if row.Label == "ule" {
			uleT = row.Values["time_to_all_runnable_s"]
		}
		if row.Label == "cfs" {
			cfsT = row.Values["time_to_all_runnable_s"]
		}
	}
	if uleT <= 0 || cfsT <= 0 {
		t.Fatalf("wake chain incomplete: ule=%v cfs=%v", uleT, cfsT)
	}
	if uleT <= cfsT {
		t.Fatalf("ULE chain (%.1fs) not slower than CFS (%.1fs); paper: 11s vs 2s", uleT, cfsT)
	}
}

func TestAblationCgroup(t *testing.T) {
	e, err := ByID("ablation-cgroup")
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run(0.2)
	on := res.Rows[0].Values["cgroups_on"]
	off := res.Rows[0].Values["cgroups_off"]
	if on < 0.3 {
		t.Fatalf("fibo share with cgroups = %v, want ~0.5", on)
	}
	if off > on/2 {
		t.Fatalf("fibo share without cgroups = %v, want ≪ %v", off, on)
	}
}

func TestAblationPreempt(t *testing.T) {
	e, err := ByID("ablation-preempt")
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run(0.3)
	cfs := res.Rows[0].Values["cfs"]
	stock := res.Rows[0].Values["ule"]
	preempt := res.Rows[0].Values["ule_full_preempt"]
	if stock <= cfs {
		t.Fatalf("apache: ULE (%.0f) not faster than CFS (%.0f)", stock, cfs)
	}
	if preempt >= stock {
		t.Fatalf("apache: full-preempt ULE (%.0f) not slower than stock (%.0f)", preempt, stock)
	}
}

func TestResultString(t *testing.T) {
	r := &Result{ID: "x", Title: "t"}
	r.Rows = append(r.Rows, Row{Label: "a", Values: map[string]float64{"v": 1.5}})
	r.AddNote("hello %d", 7)
	s := r.String()
	for _, want := range []string{"== x: t ==", "v=1.5", "hello 7"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Result.String missing %q:\n%s", want, s)
		}
	}
}

func TestScaleDur(t *testing.T) {
	if got := scaleDur(10*time.Second, 0.5, time.Second); got != 5*time.Second {
		t.Fatalf("scaleDur = %v", got)
	}
	if got := scaleDur(10*time.Second, 0.01, time.Second); got != time.Second {
		t.Fatalf("floor: %v", got)
	}
}

var _ = apps.ShellWarmup
