package core

// Cross-validation of the tickless engine: a representative trial grid runs
// once with the pre-tickless semantics (ForceIdleTicks: idle ticks always
// fire) and once on the tickless path, and the outcomes must be identical —
// trace event counts, per-thread runtimes, and the experiment Result rows
// built from them — for cfs, ule, and fifo (which opt in to idle ticks) as
// well as for a registered variant that opts out (whose idle tick is a
// no-op, the NeedsIdleTick()==false contract).

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// noIdleTickFIFO is FIFO with a no-op idle tick that opts out of idle
// ticks: the tickless path must be indistinguishable from forced ticking.
type noIdleTickFIFO struct{ *sim.FIFO }

func (s noIdleTickFIFO) NeedsIdleTick() bool { return false }

func (s noIdleTickFIFO) Tick(c *sim.Core, curr *sim.Thread) {
	if curr == nil {
		return
	}
	s.FIFO.Tick(c, curr)
}

const ticklessFIFOKind SchedulerKind = "test-fifo-tickless"

func init() {
	MustRegister(ticklessFIFOKind, func(mc MachineConfig) sim.Scheduler {
		return noIdleTickFIFO{sim.NewFIFO()}
	})
}

// ticklessValidationTrial is one machine of the validation grid: pinned
// spinners load two cores while sleep-heavy workers leave the rest mostly
// idle, exercising burst-end, sleep-wake, tick, steal, and balance paths.
func ticklessValidationTrial(kind SchedulerKind, force bool) Trial[Row] {
	return Trial[Row]{
		Name:    fmt.Sprintf("tickless-xval/%s/force=%v", kind, force),
		Machine: MachineConfig{Cores: 8, Kind: kind, Seed: 11, KernelNoise: true, ForceIdleTicks: force},
		Workload: func(m *sim.Machine) {
			for i := 0; i < 4; i++ {
				m.StartThreadCfg(sim.ThreadConfig{
					Name: fmt.Sprintf("spin-%d", i), Group: "spin", Pinned: []int{i % 2},
					Prog: &workload.Loop{Burst: 3 * time.Millisecond},
				})
			}
			for i := 0; i < 6; i++ {
				m.StartThread(fmt.Sprintf("napper-%d", i), "nap", 0, &workload.FiniteCompute{
					Burst: 400 * time.Microsecond, N: 200, IOSleep: 2 * time.Millisecond,
				})
			}
		},
		Window: 400 * time.Millisecond,
		Extract: func(m *sim.Machine) Row {
			var run time.Duration
			for _, th := range m.Threads() {
				run += th.RunTime
			}
			vals := map[string]float64{
				"events":    float64(m.EventsProcessed()),
				"runtime_s": run.Seconds(),
			}
			for k := trace.Kind(0); k < 8; k++ {
				vals["trace_"+k.String()] = float64(m.Trace.Count(k))
			}
			for i, n := range m.RunnableCounts() {
				vals[fmt.Sprintf("runnable_%d", i)] = float64(n)
			}
			return Row{Label: string(kind), Values: vals}
		},
	}
}

// TestTicklessCrossValidation runs the validation grid under both engine
// semantics and asserts identical Result rows per scheduler. The events
// count is compared separately: for opt-in schedulers both paths process
// identical event streams, while the opt-out variant must process fewer
// events tickless than forced with everything else unchanged.
func TestTicklessCrossValidation(t *testing.T) {
	kinds := []SchedulerKind{CFS, ULE, FIFO, ticklessFIFOKind}
	var trials []Trial[Row]
	for _, kind := range kinds {
		for _, force := range []bool{false, true} {
			trials = append(trials, ticklessValidationTrial(kind, force))
		}
	}
	rows := RunTrials(trials)
	for i := 0; i < len(rows); i += 2 {
		tickless, forced := rows[i], rows[i+1]
		kind := kinds[i/2]
		ticklessEvents := tickless.Values["events"]
		forcedEvents := forced.Values["events"]
		delete(tickless.Values, "events")
		delete(forced.Values, "events")
		a := (&Result{ID: "xval", Rows: []Row{tickless}}).String()
		b := (&Result{ID: "xval", Rows: []Row{forced}}).String()
		if a != b {
			t.Errorf("%s: tickless row differs from forced-idle-ticks row\ntickless: %s\nforced:   %s", kind, a, b)
		}
		if kind == ticklessFIFOKind {
			if ticklessEvents >= forcedEvents {
				t.Errorf("%s: tickless processed %v events, want fewer than forced %v",
					kind, ticklessEvents, forcedEvents)
			}
		} else if ticklessEvents != forcedEvents {
			t.Errorf("%s: events %v (tickless) != %v (forced)", kind, ticklessEvents, forcedEvents)
		}
	}
}
