package core

import (
	"encoding/json"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/memo"
	"repro/internal/runner"
	"repro/internal/sim"
)

// memoTrial builds a trivially cheap cacheable trial: the outcome is the
// machine's final virtual time in ns, and execs counts real executions so
// tests can distinguish simulated cells from deduped/cached ones.
func memoTrial(name string, key memo.Key, seed int64, execs *atomic.Int64) Trial[int64] {
	return Trial[int64]{
		Name:    name,
		Machine: MachineConfig{Cores: 1, Kind: FIFO, Seed: seed},
		Window:  time.Millisecond,
		Extract: func(m *sim.Machine) int64 {
			execs.Add(1)
			return int64(m.Now())
		},
		CacheKey: key,
		Encode:   func(v int64) ([]byte, error) { return json.Marshal(v) },
		Decode: func(b []byte) (int64, error) {
			var v int64
			err := json.Unmarshal(b, &v)
			return v, err
		},
	}
}

func TestGridDedupIdenticalCells(t *testing.T) {
	key := memo.NewHasher("t").Str("cell").Sum()
	var execs atomic.Int64
	// Three identical cells (same pre-key, same explicit seed → same
	// resolved seed) plus one distinct cell and one uncacheable cell.
	otherKey := memo.NewHasher("t").Str("other").Sum()
	trials := []Trial[int64]{
		memoTrial("dup", key, 7, &execs),
		memoTrial("dup", key, 7, &execs),
		memoTrial("other", otherKey, 8, &execs),
		memoTrial("dup", key, 7, &execs),
		memoTrial("nocache", memo.Key{}, 7, &execs),
	}
	before := DedupedTrials()
	out := RunTrials(trials)
	if got := execs.Load(); got != 3 {
		t.Fatalf("executed %d trials, want 3 (2 deduped)", got)
	}
	if DedupedTrials()-before != 2 {
		t.Fatalf("deduped counter moved by %d, want 2", DedupedTrials()-before)
	}
	if out[0] != out[1] || out[0] != out[3] {
		t.Fatalf("fanned-out results differ: %v", out)
	}
	if out[0] == 0 || out[2] == 0 || out[4] == 0 {
		t.Fatalf("zero outcomes: %v", out)
	}
}

func TestGridDedupRespectsResolvedSeeds(t *testing.T) {
	// Same pre-key, explicit seed 0: the derived path gives same-named
	// cells distinct occurrence seeds, so they must NOT dedupe.
	key := memo.NewHasher("t").Str("derived").Sum()
	var execs atomic.Int64
	trials := []Trial[int64]{
		memoTrial("d", key, 0, &execs),
		memoTrial("d", key, 0, &execs),
	}
	RunTrials(trials)
	if got := execs.Load(); got != 2 {
		t.Fatalf("executed %d trials, want 2 (distinct derived seeds)", got)
	}
}

func TestGridDedupFansOutFailures(t *testing.T) {
	key := memo.NewHasher("t").Str("boom").Sum()
	mk := func(name string) Trial[int64] {
		return Trial[int64]{
			Name:     name,
			Machine:  MachineConfig{Cores: 1, Kind: FIFO, Seed: 3},
			Window:   time.Millisecond,
			Extract:  func(m *sim.Machine) int64 { panic("boom") },
			CacheKey: key,
			Encode:   func(v int64) ([]byte, error) { return json.Marshal(v) },
			Decode: func(b []byte) (int64, error) {
				var v int64
				return v, json.Unmarshal(b, &v)
			},
		}
	}
	_, errs := RunTrialsErr([]Trial[int64]{mk("boom"), mk("boom")})
	if len(errs) != 2 {
		t.Fatalf("got %d errors, want the failure fanned out to both cells", len(errs))
	}
	if errs[0].Index != 0 || errs[1].Index != 1 {
		t.Fatalf("error indices %d,%d, want 0,1", errs[0].Index, errs[1].Index)
	}
	for _, e := range errs {
		if fmt.Sprintf("%v", e.Value) != "boom" {
			t.Fatalf("error value %v, want boom", e.Value)
		}
	}
}

func TestTrialCacheHitSkipsExecution(t *testing.T) {
	c, err := memo.New("")
	if err != nil {
		t.Fatal(err)
	}
	SetTrialCache(c)
	defer SetTrialCache(nil)

	key := memo.NewHasher("t").Str("cached").Sum()
	var execs atomic.Int64
	grid := func() []Trial[int64] {
		return []Trial[int64]{memoTrial("c1", key, 5, &execs)}
	}
	first := RunTrials(grid())
	second := RunTrials(grid())
	if got := execs.Load(); got != 1 {
		t.Fatalf("executed %d times, want 1 (second run must hit)", got)
	}
	if first[0] != second[0] {
		t.Fatalf("cached result %v != fresh result %v", second[0], first[0])
	}
	st := c.Stats()
	if st.Hits != 1 || st.Stores != 1 {
		t.Fatalf("cache stats %+v, want 1 hit / 1 store", st)
	}
}

func TestTrialCacheKeyedByResolvedSeed(t *testing.T) {
	c, err := memo.New("")
	if err != nil {
		t.Fatal(err)
	}
	SetTrialCache(c)
	defer SetTrialCache(nil)

	key := memo.NewHasher("t").Str("seeded").Sum()
	var execs atomic.Int64
	RunTrials([]Trial[int64]{memoTrial("s", key, 11, &execs)})
	RunTrials([]Trial[int64]{memoTrial("s", key, 12, &execs)})
	if got := execs.Load(); got != 2 {
		t.Fatalf("executed %d times, want 2 (different seeds must not collide)", got)
	}
}

func TestTrialCacheDisabledByDefault(t *testing.T) {
	if TrialCache() != nil {
		t.Fatal("trial cache installed by default")
	}
	key := memo.NewHasher("t").Str("nocache-default").Sum()
	var execs atomic.Int64
	RunTrials([]Trial[int64]{memoTrial("n", key, 9, &execs)})
	RunTrials([]Trial[int64]{memoTrial("n", key, 9, &execs)})
	if got := execs.Load(); got != 2 {
		t.Fatalf("executed %d times, want 2 (no cross-grid memoization without a cache)", got)
	}
}

func TestGridDedupByteIdenticalAcrossWorkers(t *testing.T) {
	key := memo.NewHasher("t").Str("width").Sum()
	grid := func(execs *atomic.Int64) []Trial[int64] {
		var trials []Trial[int64]
		for i := 0; i < 4; i++ {
			trials = append(trials, memoTrial("w", key, 21, execs))
			trials = append(trials, memoTrial(fmt.Sprintf("w%d", i), memo.NewHasher("t").Str(fmt.Sprintf("w%d", i)).Sum(), int64(30+i), execs))
		}
		return trials
	}
	var e1, e8 atomic.Int64
	var seq, par []int64
	runner.WithWorkers(1, func() { seq = RunTrials(grid(&e1)) })
	runner.WithWorkers(8, func() { par = RunTrials(grid(&e8)) })
	if e1.Load() != e8.Load() {
		t.Fatalf("execution counts differ across widths: %d vs %d", e1.Load(), e8.Load())
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("index %d differs across widths: %d vs %d", i, seq[i], par[i])
		}
	}
}
