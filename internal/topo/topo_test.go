package topo

import (
	"testing"
	"testing/quick"
)

func TestDefaultLayout(t *testing.T) {
	tp := Default()
	if got := tp.NCores(); got != 32 {
		t.Fatalf("NCores = %d, want 32", got)
	}
	if got := tp.NNodes(); got != 4 {
		t.Fatalf("NNodes = %d, want 4", got)
	}
	if got := tp.NLLCs(); got != 4 {
		t.Fatalf("NLLCs = %d, want 4", got)
	}
	for c := 0; c < 32; c++ {
		if want := c / 8; tp.NodeOf(c) != want {
			t.Errorf("NodeOf(%d) = %d, want %d", c, tp.NodeOf(c), want)
		}
		if want := c / 8; tp.LLCOf(c) != want {
			t.Errorf("LLCOf(%d) = %d, want %d", c, tp.LLCOf(c), want)
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	bad := []Config{
		{NUMANodes: 0, LLCsPerNode: 1, CoresPerLLC: 1},
		{NUMANodes: 1, LLCsPerNode: 0, CoresPerLLC: 1},
		{NUMANodes: 1, LLCsPerNode: 1, CoresPerLLC: 0},
		{NUMANodes: -3, LLCsPerNode: 2, CoresPerLLC: 2},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) succeeded, want error", cfg)
		}
	}
}

func TestSMTDefaultsToOne(t *testing.T) {
	tp := MustNew(Config{NUMANodes: 1, LLCsPerNode: 1, CoresPerLLC: 4})
	if got := tp.NCores(); got != 4 {
		t.Fatalf("NCores = %d, want 4", got)
	}
	if g := tp.Group(0, LevelSMT); len(g) != 1 || g[0] != 0 {
		t.Fatalf("Group(0, SMT) = %v, want [0]", g)
	}
}

func TestGroupsInclusiveAndConsistent(t *testing.T) {
	tp := MustNew(Config{NUMANodes: 2, LLCsPerNode: 2, CoresPerLLC: 2, SMTWidth: 2})
	n := tp.NCores()
	if n != 16 {
		t.Fatalf("NCores = %d, want 16", n)
	}
	for c := 0; c < n; c++ {
		for lvl := LevelSelf; lvl <= LevelMachine; lvl++ {
			g := tp.Group(c, lvl)
			if !contains(g, c) {
				t.Errorf("Group(%d, %v) = %v does not contain %d", c, lvl, g, c)
			}
		}
		if len(tp.Group(c, LevelSelf)) != 1 {
			t.Errorf("Group(%d, self) has %d members", c, len(tp.Group(c, LevelSelf)))
		}
		if len(tp.Group(c, LevelSMT)) != 2 {
			t.Errorf("Group(%d, smt) has %d members, want 2", c, len(tp.Group(c, LevelSMT)))
		}
		if len(tp.Group(c, LevelMachine)) != n {
			t.Errorf("Group(%d, machine) has %d members, want %d", c, len(tp.Group(c, LevelMachine)), n)
		}
	}
}

func TestGroupLevelsNest(t *testing.T) {
	tp := Default()
	for c := 0; c < tp.NCores(); c++ {
		prev := tp.Group(c, LevelSelf)
		for lvl := LevelSMT; lvl <= LevelMachine; lvl++ {
			g := tp.Group(c, lvl)
			if len(g) < len(prev) {
				t.Fatalf("core %d: level %v group smaller than %v group", c, lvl, lvl-1)
			}
			for _, m := range prev {
				if !contains(g, m) {
					t.Fatalf("core %d: member %d of level %v missing from level %v", c, m, lvl-1, lvl)
				}
			}
			prev = g
		}
	}
}

func TestDistanceSymmetricAndConsistent(t *testing.T) {
	tp := Default()
	f := func(a, b uint8) bool {
		x, y := int(a)%tp.NCores(), int(b)%tp.NCores()
		d1, d2 := tp.Distance(x, y), tp.Distance(y, x)
		if d1 != d2 {
			return false
		}
		if x == y {
			return d1 == LevelSelf
		}
		if tp.ShareLLC(x, y) {
			return d1 == LevelLLC
		}
		if tp.ShareNode(x, y) {
			return d1 == LevelNUMA
		}
		return d1 == LevelMachine
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShareHelpers(t *testing.T) {
	tp := Default()
	if !tp.ShareLLC(0, 7) || tp.ShareLLC(0, 8) {
		t.Error("ShareLLC wrong at node boundary")
	}
	if !tp.ShareNode(8, 15) || tp.ShareNode(7, 8) {
		t.Error("ShareNode wrong at node boundary")
	}
}

func TestNodeAndLLCCoresPartition(t *testing.T) {
	tp := Default()
	seen := make(map[int]int)
	for n := 0; n < tp.NNodes(); n++ {
		for _, c := range tp.NodeCores(n) {
			seen[c]++
		}
	}
	if len(seen) != tp.NCores() {
		t.Fatalf("node partition covers %d cores, want %d", len(seen), tp.NCores())
	}
	for c, k := range seen {
		if k != 1 {
			t.Fatalf("core %d appears %d times in node partition", c, k)
		}
	}
}

func TestLevelsWiden(t *testing.T) {
	tp := Default()
	ls := tp.Levels(LevelLLC)
	want := []Level{LevelLLC, LevelNUMA, LevelMachine}
	if len(ls) != len(want) {
		t.Fatalf("Levels = %v, want %v", ls, want)
	}
	for i := range ls {
		if ls[i] != want[i] {
			t.Fatalf("Levels = %v, want %v", ls, want)
		}
	}
}

func TestGroupClampsLevel(t *testing.T) {
	tp := SingleCore()
	if g := tp.Group(0, Level(99)); len(g) != 1 {
		t.Fatalf("Group with out-of-range level = %v", g)
	}
	if g := tp.Group(0, Level(-1)); len(g) != 1 {
		t.Fatalf("Group with negative level = %v", g)
	}
}

func TestStringer(t *testing.T) {
	if s := Default().String(); s != "32 cores / 4 nodes / 4 LLCs" {
		t.Fatalf("String = %q", s)
	}
	if LevelLLC.String() != "llc" || Level(42).String() != "level(42)" {
		t.Fatal("Level.String wrong")
	}
}
