// Package topo models the hardware topology a scheduler reads: which cores
// share an SMT sibling, a last-level cache, or a NUMA node. Both CFS's
// scheduling domains and ULE's cpu_group hierarchy are views over this
// structure.
//
// The default machine mirrors the paper's evaluation box: 32 cores arranged
// as 4 NUMA nodes of 8 cores, each node sharing one LLC. Topologies are
// immutable after construction.
package topo

import (
	"fmt"
	"strings"
)

// Level identifies a sharing level in the topology, ordered from the
// tightest (same core) to the loosest (whole machine). Higher values mean
// more distant cores and therefore more expensive migrations.
type Level int

const (
	// LevelSelf is the core itself.
	LevelSelf Level = iota
	// LevelSMT groups hardware threads of one physical core.
	LevelSMT
	// LevelLLC groups cores sharing a last-level cache.
	LevelLLC
	// LevelNUMA groups cores on one NUMA node.
	LevelNUMA
	// LevelMachine is the whole machine.
	LevelMachine

	numLevels
)

// String returns the conventional name of the level.
func (l Level) String() string {
	switch l {
	case LevelSelf:
		return "self"
	case LevelSMT:
		return "smt"
	case LevelLLC:
		return "llc"
	case LevelNUMA:
		return "numa"
	case LevelMachine:
		return "machine"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// Topology is an immutable description of the machine layout.
type Topology struct {
	nCores int
	// group[level][core] is the sorted set of cores sharing that level with
	// core (inclusive of core itself).
	group [numLevels][][]int
	// node[core] is the NUMA node index of core.
	node []int
	// llc[core] is the LLC group index of core.
	llc []int
	// nodes[n] lists the cores of NUMA node n.
	nodes [][]int
	// llcs[g] lists the cores of LLC group g.
	llcs [][]int
}

// Config describes a machine to build. All counts must be ≥ 1.
type Config struct {
	// NUMANodes is the number of NUMA nodes.
	NUMANodes int
	// LLCsPerNode is the number of last-level-cache groups per node.
	LLCsPerNode int
	// CoresPerLLC is the number of cores sharing each LLC.
	CoresPerLLC int
	// SMTWidth is the number of hardware threads per physical core. 1
	// disables SMT (the paper's machine runs without it).
	SMTWidth int
}

// New builds a topology from cfg. Core IDs are dense, starting at 0,
// enumerated node-major then LLC-major, which matches how both schedulers
// walk hierarchies outward from a core.
func New(cfg Config) (*Topology, error) {
	if cfg.NUMANodes < 1 || cfg.LLCsPerNode < 1 || cfg.CoresPerLLC < 1 {
		return nil, fmt.Errorf("topo: all counts must be >= 1, got %+v", cfg)
	}
	if cfg.SMTWidth < 1 {
		cfg.SMTWidth = 1
	}
	n := cfg.NUMANodes * cfg.LLCsPerNode * cfg.CoresPerLLC * cfg.SMTWidth
	t := &Topology{
		nCores: n,
		node:   make([]int, n),
		llc:    make([]int, n),
	}
	perNode := cfg.LLCsPerNode * cfg.CoresPerLLC * cfg.SMTWidth
	perLLC := cfg.CoresPerLLC * cfg.SMTWidth
	for c := 0; c < n; c++ {
		t.node[c] = c / perNode
		t.llc[c] = c / perLLC
	}
	t.nodes = make([][]int, cfg.NUMANodes)
	for c := 0; c < n; c++ {
		t.nodes[t.node[c]] = append(t.nodes[t.node[c]], c)
	}
	nLLC := cfg.NUMANodes * cfg.LLCsPerNode
	t.llcs = make([][]int, nLLC)
	for c := 0; c < n; c++ {
		t.llcs[t.llc[c]] = append(t.llcs[t.llc[c]], c)
	}

	all := make([]int, n)
	for c := range all {
		all[c] = c
	}
	for lvl := LevelSelf; lvl < numLevels; lvl++ {
		t.group[lvl] = make([][]int, n)
	}
	for c := 0; c < n; c++ {
		t.group[LevelSelf][c] = []int{c}
		smtBase := c / cfg.SMTWidth * cfg.SMTWidth
		smt := make([]int, cfg.SMTWidth)
		for i := range smt {
			smt[i] = smtBase + i
		}
		t.group[LevelSMT][c] = smt
		t.group[LevelLLC][c] = t.llcs[t.llc[c]]
		t.group[LevelNUMA][c] = t.nodes[t.node[c]]
		t.group[LevelMachine][c] = all
	}
	return t, nil
}

// MustNew is New but panics on error; for package-level defaults and tests.
func MustNew(cfg Config) *Topology {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Default returns the paper's evaluation machine: 32 cores, 4 NUMA nodes,
// one LLC per node, no SMT.
func Default() *Topology {
	return MustNew(Config{NUMANodes: 4, LLCsPerNode: 1, CoresPerLLC: 8, SMTWidth: 1})
}

// SingleCore returns a one-core machine, used by the paper's §5 per-core
// scheduling experiments.
func SingleCore() *Topology {
	return MustNew(Config{NUMANodes: 1, LLCsPerNode: 1, CoresPerLLC: 1, SMTWidth: 1})
}

// Small returns an 8-core desktop-like machine (2 LLC groups of 4), the
// paper's secondary i7 machine analogue.
func Small() *Topology {
	return MustNew(Config{NUMANodes: 1, LLCsPerNode: 2, CoresPerLLC: 4, SMTWidth: 1})
}

// NCores returns the number of cores.
func (t *Topology) NCores() int { return t.nCores }

// NNodes returns the number of NUMA nodes.
func (t *Topology) NNodes() int { return len(t.nodes) }

// NLLCs returns the number of LLC groups.
func (t *Topology) NLLCs() int { return len(t.llcs) }

// NodeOf returns the NUMA node index of core c.
func (t *Topology) NodeOf(c int) int { return t.node[c] }

// LLCOf returns the LLC group index of core c.
func (t *Topology) LLCOf(c int) int { return t.llc[c] }

// NodeCores returns the cores of NUMA node n. The returned slice must not
// be modified.
func (t *Topology) NodeCores(n int) []int { return t.nodes[n] }

// LLCCores returns the cores of LLC group g. The returned slice must not be
// modified.
func (t *Topology) LLCCores(g int) []int { return t.llcs[g] }

// Group returns the cores sharing level lvl with core c, including c. The
// returned slice must not be modified.
func (t *Topology) Group(c int, lvl Level) []int {
	if lvl < LevelSelf {
		lvl = LevelSelf
	}
	if lvl >= numLevels {
		lvl = LevelMachine
	}
	return t.group[lvl][c]
}

// ShareLLC reports whether cores a and b share a last-level cache.
func (t *Topology) ShareLLC(a, b int) bool { return t.llc[a] == t.llc[b] }

// ShareNode reports whether cores a and b are on the same NUMA node.
func (t *Topology) ShareNode(a, b int) bool { return t.node[a] == t.node[b] }

// Distance returns the tightest level at which cores a and b are grouped:
// LevelSelf for a == b, LevelLLC for cache siblings, etc. Schedulers use it
// to price migrations.
func (t *Topology) Distance(a, b int) Level {
	switch {
	case a == b:
		return LevelSelf
	case len(t.group[LevelSMT][a]) > 1 && contains(t.group[LevelSMT][a], b):
		return LevelSMT
	case t.llc[a] == t.llc[b]:
		return LevelLLC
	case t.node[a] == t.node[b]:
		return LevelNUMA
	default:
		return LevelMachine
	}
}

// Levels returns the widening sequence of levels above lvl up to the whole
// machine, used when a scheduler expands a failed search outward.
func (t *Topology) Levels(from Level) []Level {
	var out []Level
	for l := from; l <= LevelMachine; l++ {
		out = append(out, l)
	}
	return out
}

// String summarises the layout, e.g. "32 cores / 4 nodes / 4 LLCs".
func (t *Topology) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d cores / %d nodes / %d LLCs", t.nCores, len(t.nodes), len(t.llcs))
	return b.String()
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
