package pelt

import (
	"testing"
	"testing/quick"
	"time"
)

func TestAlwaysRunningConverges(t *testing.T) {
	var a Avg
	// 2 seconds of continuous running in 1ms steps.
	for now := time.Millisecond; now <= 2*time.Second; now += time.Millisecond {
		a.Update(now, true)
	}
	u := a.Utilization()
	if u < 0.97 {
		t.Fatalf("utilization after 2s running = %v, want ~1", u)
	}
	if l := a.Load(1024); l < 990 || l > 1040 {
		t.Fatalf("Load(1024) = %d, want ~1024", l)
	}
}

func TestIdleDecays(t *testing.T) {
	var a Avg
	for now := time.Millisecond; now <= time.Second; now += time.Millisecond {
		a.Update(now, true)
	}
	high := a.Utilization()
	// ~32ms of idleness should halve the sum (half-life).
	a.Update(time.Second+33*time.Millisecond, false)
	mid := a.Utilization()
	if mid > 0.6*high || mid < 0.4*high {
		t.Fatalf("after one half-life: %v, want ~half of %v", mid, high)
	}
	// Long idle decays to ~0.
	a.Update(3*time.Second, false)
	if a.Utilization() > 0.001 {
		t.Fatalf("after 2s idle: %v, want ~0", a.Utilization())
	}
}

func TestFiftyPercentDuty(t *testing.T) {
	var a Avg
	// 1ms on, 1ms off for 2 seconds.
	now := time.Duration(0)
	for i := 0; i < 1000; i++ {
		now += time.Millisecond
		a.Update(now, true)
		now += time.Millisecond
		a.Update(now, false)
	}
	u := a.Utilization()
	if u < 0.40 || u > 0.60 {
		t.Fatalf("50%% duty cycle utilization = %v", u)
	}
}

func TestMostlySleepingIsLight(t *testing.T) {
	// The paper's example: a thread that mostly sleeps has low load.
	var a Avg
	now := time.Duration(0)
	for i := 0; i < 200; i++ {
		now += 100 * time.Microsecond
		a.Update(now, true)
		now += 10 * time.Millisecond
		a.Update(now, false)
	}
	if u := a.Utilization(); u > 0.05 {
		t.Fatalf("mostly-sleeping utilization = %v, want < 0.05", u)
	}
}

func TestUpdateIgnoresNonMonotonic(t *testing.T) {
	var a Avg
	a.Update(time.Second, true)
	s := a.Sum()
	a.Update(500*time.Millisecond, true) // must be a no-op
	if a.Sum() != s || a.LastUpdate() != time.Second {
		t.Fatal("non-monotonic update changed state")
	}
}

func TestDecayHalving(t *testing.T) {
	if got := decay(1<<20, 32); got != 1<<19 {
		t.Fatalf("decay by 32 windows = %d, want exact halving", got)
	}
	if got := decay(1000, 0); got != 1000 {
		t.Fatalf("decay by 0 = %d", got)
	}
	if got := decay(0, 100); got != 0 {
		t.Fatal("decay of 0 nonzero")
	}
	// Monotone: more windows, less remains.
	prev := uint64(1 << 30)
	for n := 1; n < 200; n++ {
		got := decay(1<<30, n)
		if got > prev {
			t.Fatalf("decay(%d) = %d > decay(%d) = %d", n, got, n-1, prev)
		}
		prev = got
	}
}

// Property: utilization is always within [0,1] and load is monotone in
// weight, for arbitrary run/idle schedules.
func TestQuickBounds(t *testing.T) {
	f := func(steps []bool) bool {
		var a Avg
		now := time.Duration(0)
		for _, run := range steps {
			now += 700 * time.Microsecond
			a.Update(now, run)
			u := a.Utilization()
			if u < 0 || u > 1 {
				return false
			}
			if a.Load(512) > a.Load(1024) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBigGapSingleUpdate(t *testing.T) {
	var a Avg
	// One giant running interval should saturate close to max.
	a.Update(10*time.Second, true)
	if u := a.Utilization(); u < 0.95 {
		t.Fatalf("after one 10s running update: %v", u)
	}
}
