// Package pelt implements Linux's Per-Entity Load Tracking, the load metric
// the paper's §2.1 describes: "the load of a thread corresponds to the
// average CPU utilization of a thread: a thread that never sleeps has a
// higher load than one that sleeps a lot", weighted by priority.
//
// As in the kernel, time is divided into 1024 µs windows and contribution
// decays geometrically with y^32 = 1/2, so roughly the last 345 ms dominate.
// The sum converges to LoadAvgMax for an always-running entity; Load() is
// normalised so an always-running weight-w entity reports ~w.
package pelt

import "time"

const (
	// Window is the accumulation period (kernel: 1024 µs).
	Window = 1024 * time.Microsecond
	// halfLifeWindows is the decay half-life in windows (kernel: 32).
	halfLifeWindows = 32
	// LoadAvgMax is the closed-form maximum of the decayed series
	// sum_{i>=0} 1024 * y^i with y = 2^(-1/32) (kernel value: 47742).
	LoadAvgMax = 47742
)

// runnableAvgYN holds y^n * 2^32 for n in [0,31], the kernel's
// runnable_avg_yN_inv table, used for exact fixed-point decay.
var runnableAvgYN = [halfLifeWindows]uint64{
	0xffffffff, 0xfa83b2da, 0xf5257d14, 0xefe4b99a, 0xeac0c6e6, 0xe5b906e6,
	0xe0ccdeeb, 0xdbfbb796, 0xd744fcc9, 0xd2a81d91, 0xce248c14, 0xc9b9bd85,
	0xc5672a10, 0xc12c4cc9, 0xbd08a39e, 0xb8fbaf46, 0xb504f333, 0xb123f581,
	0xad583ee9, 0xa9a15ab4, 0xa5fed6a9, 0xa2704302, 0x9ef5325f, 0x9b8d39b9,
	0x9837f050, 0x94f4efa8, 0x91c3d373, 0x8ea4398a, 0x8b95c1e3, 0x88980e80,
	0x85aac367, 0x82cd8698,
}

// decay multiplies v by y^n using the kernel's table-driven fixed point.
func decay(v uint64, n int) uint64 {
	if n < 0 {
		return v
	}
	// Each 32 windows halves.
	for n >= halfLifeWindows {
		v >>= 1
		n -= halfLifeWindows
		if v == 0 {
			return 0
		}
	}
	if n == 0 {
		return v
	}
	return (v * runnableAvgYN[n]) >> 32
}

// Avg tracks one entity's (or one runqueue's) decayed running average.
type Avg struct {
	// sum is the decayed sum of µs-of-contribution.
	sum uint64
	// lastUpdate is the simulated time the average was last rolled forward.
	lastUpdate time.Duration
	// rem is the unfilled part of the current window, in µs.
	rem uint64
}

// Update rolls the average forward to now, with the entity having been
// "active" (runnable/running) for the whole interval if running is true,
// and idle otherwise. Calls must have non-decreasing now.
func (a *Avg) Update(now time.Duration, running bool) {
	delta := now - a.lastUpdate
	if delta <= 0 {
		return
	}
	a.lastUpdate = now
	us := uint64(delta / time.Microsecond)
	if us == 0 {
		return
	}
	winUS := uint64(Window / time.Microsecond)

	// Fill the current partial window.
	space := winUS - a.rem
	if us < space {
		if running {
			a.sum += us
		}
		a.rem += us
		return
	}
	if running {
		a.sum += space
	}
	us -= space

	// Complete windows: decay once for the boundary, then n full windows.
	fullWindows := int(us / winUS)
	a.sum = decay(a.sum, 1+fullWindows)
	if running {
		// Contribution of the n full windows themselves, decayed in closed
		// form: sum_{i=1..n} 1024*y^i = LoadAvgMax*(1 - y^n) - 1024... use
		// iterative add capped by window count to stay exact and simple;
		// fullWindows is small for the sim's ms-scale updates.
		contrib := uint64(0)
		for i := fullWindows; i >= 1; i-- {
			contrib = decay(contrib, 1)
			contrib += winUS
		}
		// contrib currently holds sum for windows aligned at the newest
		// edge; it was built newest-last so one more decay aligns it.
		a.sum += decay(contrib, 0)
	}
	a.rem = us % winUS
	if running {
		a.sum += a.rem
	}
}

// Load returns the current average scaled by weight: an always-running
// entity of weight w reports ≈ w; a never-running one reports 0.
func (a *Avg) Load(weight int64) int64 {
	return int64(a.sum) * weight / LoadAvgMax
}

// Utilization returns the average as a fraction in [0, ~1].
func (a *Avg) Utilization() float64 {
	u := float64(a.sum) / LoadAvgMax
	if u > 1 {
		u = 1
	}
	return u
}

// Prime initialises the average as if the entity had been active for frac
// of the recent past (kernel init_entity_runnable_average gives new tasks
// full load so placement does not mistake them for idle).
func (a *Avg) Prime(now time.Duration, frac float64) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	a.sum = uint64(frac * LoadAvgMax)
	a.lastUpdate = now
	a.rem = 0
}

// Sum exposes the raw decayed sum (for tests).
func (a *Avg) Sum() uint64 { return a.sum }

// LastUpdate returns the time of the last roll-forward.
func (a *Avg) LastUpdate() time.Duration { return a.lastUpdate }
