package dtrace

// The dtrace/v1 columnar on-disk format. Self-describing and stable:
//
//	line 1:  "dtrace/v1\n"                     (magic)
//	line 2:  JSON header + "\n"                (column descriptors, options)
//	then, until EOF, chunks:
//	  JSON chunk header + "\n"                 {"records":N,"cands":M}
//	  one block per header column, in header order:
//	    fixed columns:    N × width bytes, little-endian
//	    cand_id/cand_key: M × width bytes, little-endian
//
// One chunk is one ring flush, which is what lets the recorder spill an
// unbounded run through a bounded ring. The header's column list is the
// single source of truth for what a chunk contains; readers must use it
// rather than assuming the full column set.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Magic is the first line of every dtrace/v1 stream.
const Magic = "dtrace/v1"

// colMask selects optional column groups.
type colMask uint8

const (
	groupOther colMask = 1 << iota
	groupWait
	groupDigest
	groupCand

	maskAll = groupOther | groupWait | groupDigest | groupCand
)

var groupByName = map[string]colMask{
	"other":   groupOther,
	"wait_ns": groupWait,
	"digest":  groupDigest,
	"cand":    groupCand,
}

// colDef describes one column of the canonical set, in canonical order.
type colDef struct {
	name  string
	typ   string // i64, u64, i32, u16, u8
	width int
	group colMask // 0 = mandatory
	vary  bool    // sized by the chunk's cand count, not its record count
}

var colDefs = []colDef{
	{"t_ns", "i64", 8, 0, false},
	{"core", "i32", 4, 0, false},
	{"kind", "u8", 1, 0, false},
	{"thread", "i32", 4, 0, false},
	{"other", "i32", 4, groupOther, false},
	{"wait_ns", "i64", 8, groupWait, false},
	{"digest", "u64", 8, groupDigest, false},
	{"cand_len", "u16", 2, groupCand, false},
	{"cand_id", "i32", 4, groupCand, true},
	{"cand_key", "i64", 8, groupCand, true},
}

// ColumnDesc is one column entry of the self-describing header.
type ColumnDesc struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// Header is the dtrace/v1 JSON header (line 2 of the stream).
type Header struct {
	Columns []ColumnDesc `json:"columns"`
	Sample  int          `json:"sample"`
	Window  int          `json:"window"`
}

// chunkHeader prefixes each chunk.
type chunkHeader struct {
	Records int `json:"records"`
	Cands   int `json:"cands"`
}

// encoder streams the columnar encoding to a sink, enforcing MaxBytes.
type encoder struct {
	cols    colMask
	opts    Options
	buf     *bytes.Buffer // in-memory output when opts.Sink == nil
	w       io.Writer
	scratch []byte
	written int64
	max     int64
	err     error
}

func (e *encoder) init(cols colMask, opts Options) {
	e.cols = cols
	e.opts = opts
	e.max = opts.MaxBytes
	if opts.Sink != nil {
		e.w = opts.Sink
	} else {
		e.buf = &bytes.Buffer{}
		e.w = e.buf
	}
}

// headerFor builds the self-describing header for a column selection.
func headerFor(cols colMask, sample, window int) Header {
	h := Header{Sample: sample, Window: window, Columns: []ColumnDesc{}}
	for _, cd := range colDefs {
		if cd.group == 0 || cols&cd.group != 0 {
			h.Columns = append(h.Columns, ColumnDesc{Name: cd.name, Type: cd.typ})
		}
	}
	return h
}

func (e *encoder) writeHeader() error {
	hdr, err := json.Marshal(headerFor(e.cols, e.opts.Sample, e.opts.Window))
	if err != nil {
		return err
	}
	n, err := fmt.Fprintf(e.w, "%s\n%s\n", Magic, hdr)
	e.written += int64(n)
	e.err = err
	return err
}

// writeChunk encodes the recorder's ring as one chunk. Returns false when
// the chunk was dropped (byte cap reached or a prior sink error).
func (e *encoder) writeChunk(r *Recorder) bool {
	if e.err != nil {
		return false
	}
	nc := len(r.candID)
	hdr := fmt.Sprintf("{\"records\":%d,\"cands\":%d}\n", r.n, nc)
	size := int64(len(hdr))
	for _, cd := range colDefs {
		if cd.group != 0 && e.cols&cd.group == 0 {
			continue
		}
		if cd.vary {
			size += int64(nc * cd.width)
		} else {
			size += int64(r.n * cd.width)
		}
	}
	if e.written+size > e.max {
		return false
	}
	if cap(e.scratch) < int(size) {
		e.scratch = make([]byte, 0, int(size))
	}
	b := append(e.scratch[:0], hdr...)
	for _, cd := range colDefs {
		if cd.group != 0 && e.cols&cd.group == 0 {
			continue
		}
		switch cd.name {
		case "t_ns":
			b = appendI64s(b, r.tNS)
		case "core":
			b = appendI32s(b, r.core)
		case "kind":
			b = append(b, r.kind...)
		case "thread":
			b = appendI32s(b, r.thread)
		case "other":
			b = appendI32s(b, r.other)
		case "wait_ns":
			b = appendI64s(b, r.waitNS)
		case "digest":
			b = appendU64s(b, r.digest)
		case "cand_len":
			b = appendU16s(b, r.candLen)
		case "cand_id":
			b = appendI32s(b, r.candID)
		case "cand_key":
			b = appendI64s(b, r.candKey)
		}
	}
	e.scratch = b[:0]
	n, err := e.w.Write(b)
	e.written += int64(n)
	if err != nil {
		e.err = err
		return false
	}
	return true
}

func appendI64s(b []byte, vs []int64) []byte {
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	return b
}

func appendU64s(b []byte, vs []uint64) []byte {
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint64(b, v)
	}
	return b
}

func appendI32s(b []byte, vs []int32) []byte {
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint32(b, uint32(v))
	}
	return b
}

func appendU16s(b []byte, vs []uint16) []byte {
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint16(b, v)
	}
	return b
}

// Candidate is one decoded candidate-set entry. For pick records ID is a
// thread id and Key the scheduler's ordering key; for wake records ID is
// an allowed core and Key its runnable depth at decision time.
type Candidate struct {
	ID  int32
	Key int64
}

// Rec is one decoded decision record. Columns absent from the trace
// decode as zero values (Other as -1).
type Rec struct {
	T      int64 // virtual time, ns
	Core   int32 // deciding / target core
	Kind   Kind
	Thread int32
	Other  int32 // wake origin, migrate source, steal victim; -1 = none
	WaitNS int64
	Digest uint64
	Cand   []Candidate
}

// Trace is a fully decoded dtrace/v1 stream.
type Trace struct {
	Header Header
	Recs   []Rec
}

// DecodeHeader parses and validates the magic and header lines,
// returning the header and the offset where chunks begin.
func DecodeHeader(data []byte) (Header, int, error) {
	var h Header
	rest, ok := bytes.CutPrefix(data, []byte(Magic+"\n"))
	if !ok {
		return h, 0, fmt.Errorf("dtrace: bad magic (want %q)", Magic)
	}
	nl := bytes.IndexByte(rest, '\n')
	if nl < 0 {
		return h, 0, fmt.Errorf("dtrace: truncated header")
	}
	if err := json.Unmarshal(rest[:nl], &h); err != nil {
		return h, 0, fmt.Errorf("dtrace: header: %w", err)
	}
	for _, c := range h.Columns {
		if w := typeWidth(c.Type); w == 0 {
			return h, 0, fmt.Errorf("dtrace: column %q has unknown type %q", c.Name, c.Type)
		}
	}
	return h, len(Magic) + 1 + nl + 1, nil
}

func typeWidth(typ string) int {
	switch typ {
	case "i64", "u64":
		return 8
	case "i32":
		return 4
	case "u16":
		return 2
	case "u8":
		return 1
	}
	return 0
}

// Decode parses a complete dtrace/v1 stream.
func Decode(data []byte) (*Trace, error) {
	h, off, err := DecodeHeader(data)
	if err != nil {
		return nil, err
	}
	tr := &Trace{Header: h}
	body := data[off:]
	for len(body) > 0 {
		nl := bytes.IndexByte(body, '\n')
		if nl < 0 {
			return nil, fmt.Errorf("dtrace: truncated chunk header")
		}
		var ch chunkHeader
		if err := json.Unmarshal(body[:nl], &ch); err != nil {
			return nil, fmt.Errorf("dtrace: chunk header: %w", err)
		}
		if ch.Records < 0 || ch.Cands < 0 {
			return nil, fmt.Errorf("dtrace: negative chunk counts %+v", ch)
		}
		body = body[nl+1:]
		base := len(tr.Recs)
		for i := 0; i < ch.Records; i++ {
			rec := Rec{Other: -1}
			tr.Recs = append(tr.Recs, rec)
		}
		var candID []int32
		var candKey []int64
		for _, c := range h.Columns {
			w := typeWidth(c.Type)
			n := ch.Records
			if c.Name == "cand_id" || c.Name == "cand_key" {
				n = ch.Cands
			}
			need := n * w
			if len(body) < need {
				return nil, fmt.Errorf("dtrace: truncated column %q (need %d bytes, have %d)", c.Name, need, len(body))
			}
			col := body[:need]
			body = body[need:]
			switch c.Name {
			case "t_ns":
				for i := 0; i < n; i++ {
					tr.Recs[base+i].T = int64(binary.LittleEndian.Uint64(col[i*8:]))
				}
			case "core":
				for i := 0; i < n; i++ {
					tr.Recs[base+i].Core = int32(binary.LittleEndian.Uint32(col[i*4:]))
				}
			case "kind":
				for i := 0; i < n; i++ {
					tr.Recs[base+i].Kind = Kind(col[i])
				}
			case "thread":
				for i := 0; i < n; i++ {
					tr.Recs[base+i].Thread = int32(binary.LittleEndian.Uint32(col[i*4:]))
				}
			case "other":
				for i := 0; i < n; i++ {
					tr.Recs[base+i].Other = int32(binary.LittleEndian.Uint32(col[i*4:]))
				}
			case "wait_ns":
				for i := 0; i < n; i++ {
					tr.Recs[base+i].WaitNS = int64(binary.LittleEndian.Uint64(col[i*8:]))
				}
			case "digest":
				for i := 0; i < n; i++ {
					tr.Recs[base+i].Digest = binary.LittleEndian.Uint64(col[i*8:])
				}
			case "cand_len":
				// Applied after cand_id/cand_key are read.
				for i := 0; i < n; i++ {
					tr.Recs[base+i].Cand = make([]Candidate, binary.LittleEndian.Uint16(col[i*2:]))
				}
			case "cand_id":
				candID = make([]int32, n)
				for i := range candID {
					candID[i] = int32(binary.LittleEndian.Uint32(col[i*4:]))
				}
			case "cand_key":
				candKey = make([]int64, n)
				for i := range candKey {
					candKey[i] = int64(binary.LittleEndian.Uint64(col[i*8:]))
				}
			default:
				// Unknown (future) column: skipped — the width made that safe.
			}
		}
		// Stitch the flat candidate arrays back onto the records.
		off := 0
		for i := base; i < len(tr.Recs); i++ {
			want := len(tr.Recs[i].Cand)
			if off+want > len(candID) || len(candID) != len(candKey) {
				return nil, fmt.Errorf("dtrace: cand_len sum exceeds chunk cand count")
			}
			for j := 0; j < want; j++ {
				tr.Recs[i].Cand[j] = Candidate{ID: candID[off+j], Key: candKey[off+j]}
			}
			off += want
		}
		if candID != nil && off != len(candID) {
			return nil, fmt.Errorf("dtrace: chunk cand count %d does not match cand_len sum %d", len(candID), off)
		}
	}
	return tr, nil
}
