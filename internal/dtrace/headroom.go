package dtrace

// The oracle headroom analyzer: how much of the wakeup queueing a
// scheduler inflicted could a clairvoyant placer have avoided?
//
// Model. Each wake record carries the placement alternatives the
// scheduler had — the cores the thread was allowed on, each with its
// runnable depth at decision time — and the core actually chosen. The
// modeled cost of placing a wake on core c is c's corrected depth: the
// recorded depth, minus earlier in-window actual placements on c (they
// are part of the recorded depth but would not exist under the
// alternative), plus earlier in-window hypothetical placements (they
// would). Costs are summed per window; "achieved" is the schedule the
// scheduler produced, "attainable" the exhaustive minimum over
// alternative assignments.
//
// Search bounds. Windows are Options.Window consecutive wake decisions
// (≤ MaxWindow); within a window the search branches over the
// Options.Branch cheapest candidates per decision (≤ MaxBranch, ties cut
// by core id), depth-first with a partial-cost bound. Worst case is
// branch^window nodes per window — at the defaults (8, 4), 65536 — and
// the bound prunes most of it. The restriction to per-decision cheapest
// candidates makes the result a lower bound on the true oracle's
// improvement: headroom_pct is conservative.
//
// headroom_pct = 100 × (achieved − attainable) / achieved. 0 means the
// scheduler's placements were queue-optimal under this model; larger
// values mean a better placer had that fraction of modeled queueing to
// reclaim. Everything is integer arithmetic over the recorded trace, so
// the result is deterministic and identical whether computed online by
// the Recorder or offline from a decoded trace (ComputeHeadroom).

// Headroom is the analyzer's verdict over a run's wake decisions.
type Headroom struct {
	// Wakes counts the wake decisions analyzed.
	Wakes int `json:"wakes"`
	// Achieved is the summed modeled queue depth of the scheduler's
	// actual placements.
	Achieved int64 `json:"achieved"`
	// Attainable is the summed depth of the best placements the
	// windowed exhaustive search found.
	Attainable int64 `json:"attainable"`
	// Pct is 100 × (Achieved − Attainable) / Achieved, 0 when no
	// queueing was observed.
	Pct float64 `json:"pct"`
}

// wakeDecision is one buffered wake: the chosen core and the allowed
// cores with their recorded depths.
type wakeDecision struct {
	chosen int32
	cands  []Candidate
}

// headroomAcc accumulates windows online. All storage is preallocated.
type headroomAcc struct {
	window int
	branch int
	buf    []wakeDecision
	n      int

	// Search scratch.
	ranked  []Candidate // per-decision corrected + ranked candidates
	assign  []int32     // current partial assignment
	achOne  []int64     // per-decision achieved cost within the window
	wakes   int
	ach     int64
	att     int64
	settled bool
}

func (a *headroomAcc) init(window, branch int) {
	a.window = window
	a.branch = branch
	a.buf = make([]wakeDecision, window)
	for i := range a.buf {
		a.buf[i].cands = make([]Candidate, 0, 64)
	}
	a.ranked = make([]Candidate, 0, 64)
	a.assign = make([]int32, window)
	a.achOne = make([]int64, window)
}

// observe buffers one wake decision; loads is the per-core runnable
// depth vector at decision time (indexed by core id). Only cores the
// thread may run on become candidates.
func (a *headroomAcc) observe(chosen int32, t canRunner, loads []int) {
	d := &a.buf[a.n]
	d.chosen = chosen
	d.cands = d.cands[:0]
	for id, load := range loads {
		if !t.CanRunOn(id) || len(d.cands) == maxCandPerRec {
			continue
		}
		d.cands = append(d.cands, Candidate{ID: int32(id), Key: int64(load)})
	}
	a.n++
	if a.n == a.window {
		a.solveWindow()
	}
}

// observeCands is observe for replay from a decoded trace, where the
// allowed-core set and depths come straight from the record.
func (a *headroomAcc) observeCands(chosen int32, cands []Candidate) {
	d := &a.buf[a.n]
	d.chosen = chosen
	d.cands = append(d.cands[:0], cands...)
	a.n++
	if a.n == a.window {
		a.solveWindow()
	}
}

// canRunner is the slice of sim.Thread the accumulator needs.
type canRunner interface{ CanRunOn(id int) bool }

// depthOf finds a core's recorded depth in a candidate set (-1: absent).
func depthOf(cands []Candidate, core int32) int64 {
	for _, c := range cands {
		if c.ID == core {
			return c.Key
		}
	}
	return -1
}

// corrected returns decision i's modeled cost on core: recorded depth,
// minus earlier in-window actual placements on core, plus earlier
// hypothetical ones (assign[:i]), floored at 0. A core missing from the
// record (raced offline) is priced at its hypothetical-only depth.
func (a *headroomAcc) corrected(i int, core int32) int64 {
	d := &a.buf[i]
	depth := depthOf(d.cands, core)
	if depth < 0 {
		depth = 0
	}
	for j := 0; j < i; j++ {
		if a.buf[j].chosen == core {
			depth--
		}
		if a.assign[j] == core {
			depth++
		}
	}
	if depth < 0 {
		depth = 0
	}
	return depth
}

// solveWindow scores the buffered window and resets it.
func (a *headroomAcc) solveWindow() {
	n := a.n
	a.n = 0
	if n == 0 {
		return
	}
	// Achieved: the actual schedule's cost. The prior-placement
	// corrections cancel for the actual assignment, so it is simply the
	// recorded depth of each chosen core.
	var achieved int64
	for i := 0; i < n; i++ {
		d := &a.buf[i]
		c := depthOf(d.cands, d.chosen)
		if c < 0 {
			c = 0
		}
		a.achOne[i] = c
		achieved += c
	}
	best := achieved // the actual schedule is always attainable
	a.search(0, n, 0, &best)
	a.wakes += n
	a.ach += achieved
	a.att += best
}

// search branches decision i over its cheapest candidates, bounding on
// the partial cost.
func (a *headroomAcc) search(i, n int, cost int64, best *int64) {
	if cost >= *best {
		return
	}
	if i == n {
		*best = cost
		return
	}
	d := &a.buf[i]
	// Rank this decision's candidates by corrected cost (ties: core id).
	a.ranked = a.ranked[:0]
	for _, c := range d.cands {
		a.ranked = append(a.ranked, Candidate{ID: c.ID, Key: a.corrected(i, c.ID)})
	}
	sortCandidates(a.ranked)
	width := a.branch
	if width > len(a.ranked) {
		width = len(a.ranked)
	}
	if width == 0 {
		// No recorded alternatives (candidate column truncated): charge
		// the achieved cost and move on.
		a.assign[i] = d.chosen
		a.search(i+1, n, cost+a.achOne[i], best)
		return
	}
	// a.ranked is rebuilt by deeper levels, so capture the slice we need.
	var top [MaxBranch]Candidate
	copy(top[:], a.ranked[:width])
	for _, c := range top[:width] {
		a.assign[i] = c.ID
		a.search(i+1, n, cost+c.Key, best)
	}
}

// finish scores a final partial window.
func (a *headroomAcc) finish() {
	if a.settled {
		return
	}
	a.settled = true
	a.solveWindow()
}

// result renders the accumulated verdict.
func (a *headroomAcc) result() Headroom {
	h := Headroom{Wakes: a.wakes, Achieved: a.ach, Attainable: a.att}
	if a.ach > 0 {
		h.Pct = 100 * float64(a.ach-a.att) / float64(a.ach)
	}
	return h
}

// ComputeHeadroom replays the analyzer over a decoded trace's wake
// records. With the cand column group recorded and no dropped chunks it
// reproduces the online Recorder.Headroom exactly; without candidates it
// sees no alternatives and reports zero headroom. window and branch of 0
// take the trace header's window and the default branch.
func ComputeHeadroom(tr *Trace, window, branch int) Headroom {
	if window == 0 {
		window = tr.Header.Window
	}
	if window < 1 || window > MaxWindow {
		window = defaultWindow
	}
	if branch == 0 {
		branch = defaultBranch
	}
	if branch > MaxBranch {
		branch = MaxBranch
	}
	var acc headroomAcc
	acc.init(window, branch)
	for i := range tr.Recs {
		r := &tr.Recs[i]
		if r.Kind != KindWake {
			continue
		}
		acc.observeCands(r.Core, r.Cand)
	}
	acc.finish()
	return acc.result()
}
