package dtrace

// The -trace-csv debug rendering: a flat, human-greppable projection of
// a dtrace/v1 stream. One row per record, the candidate set flattened to
// "id:key|id:key|…". Columns absent from the trace render empty.

import (
	"fmt"
	"strconv"
)

// CSVHeader is the column row of the CSV rendering, without the optional
// leading "trial" column.
const CSVHeader = "t_ns,core,kind,thread,other,wait_ns,digest,cand"

// AppendCSV renders the trace's records as CSV rows appended to dst,
// prefixing each row with the trial column when trial is non-empty. It
// does not write a header row — callers own that (and the choice of the
// trial column).
func (tr *Trace) AppendCSV(dst []byte, trial string) []byte {
	has := map[string]bool{}
	for _, c := range tr.Header.Columns {
		has[c.Name] = true
	}
	for i := range tr.Recs {
		r := &tr.Recs[i]
		if trial != "" {
			dst = append(dst, trial...)
			dst = append(dst, ',')
		}
		dst = strconv.AppendInt(dst, r.T, 10)
		dst = append(dst, ',')
		dst = strconv.AppendInt(dst, int64(r.Core), 10)
		dst = append(dst, ',')
		dst = append(dst, r.Kind.String()...)
		dst = append(dst, ',')
		dst = strconv.AppendInt(dst, int64(r.Thread), 10)
		dst = append(dst, ',')
		if has["other"] {
			dst = strconv.AppendInt(dst, int64(r.Other), 10)
		}
		dst = append(dst, ',')
		if has["wait_ns"] {
			dst = strconv.AppendInt(dst, r.WaitNS, 10)
		}
		dst = append(dst, ',')
		if has["digest"] {
			dst = append(dst, fmt.Sprintf("%016x", r.Digest)...)
		}
		dst = append(dst, ',')
		for j, c := range r.Cand {
			if j > 0 {
				dst = append(dst, '|')
			}
			dst = strconv.AppendInt(dst, int64(c.ID), 10)
			dst = append(dst, ':')
			dst = strconv.AppendInt(dst, c.Key, 10)
		}
		dst = append(dst, '\n')
	}
	return dst
}

// CSV decodes an encoded dtrace/v1 stream and renders it as a standalone
// CSV document with a header row.
func CSV(data []byte) ([]byte, error) {
	tr, err := Decode(data)
	if err != nil {
		return nil, err
	}
	out := append([]byte(CSVHeader), '\n')
	return tr.AppendCSV(out, ""), nil
}
