package dtrace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/topo"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runSleeper alternates CPU bursts and timed sleeps forever — enough to
// exercise picks, wakes, steals, and migrations on FIFO.
type runSleeper struct {
	run, sleep time.Duration
	sleeping   bool
}

func (p *runSleeper) Next(ctx *sim.Ctx) sim.Op {
	p.sleeping = !p.sleeping
	if p.sleeping {
		return sim.Run(p.run)
	}
	return sim.Sleep(p.sleep)
}

// record runs the reference workload with a recorder and returns it
// closed. All tests share this fixture so goldens stay small.
func record(t *testing.T, opts Options) (*Recorder, *sim.Machine) {
	t.Helper()
	sched := sim.NewFIFO()
	m := sim.NewMachine(topo.Small(), sched, sim.Options{Seed: 11})
	r, err := Attach(m, opts)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	for i := 0; i < 6; i++ {
		m.StartThread("w", "app", 0, &runSleeper{run: 700 * time.Microsecond, sleep: 400 * time.Microsecond})
	}
	m.Run(20 * time.Millisecond)
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return r, m
}

func TestRoundTrip(t *testing.T) {
	r, _ := record(t, Options{})
	data := r.Bytes()
	sum := r.Summary()
	if sum.Records == 0 || sum.Picks == 0 || sum.Wakes == 0 {
		t.Fatalf("empty trace: %+v", sum)
	}
	if sum.Dropped != 0 {
		t.Fatalf("unexpected drops: %+v", sum)
	}
	if int64(len(data)) != sum.Bytes {
		t.Fatalf("Bytes()=%d, Summary.Bytes=%d", len(data), sum.Bytes)
	}
	tr, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if uint64(len(tr.Recs)) != sum.Records {
		t.Fatalf("decoded %d records, summary says %d", len(tr.Recs), sum.Records)
	}
	last := int64(-1)
	var wakes int
	for i := range tr.Recs {
		rec := &tr.Recs[i]
		if rec.T < last {
			t.Fatalf("record %d: time went backwards (%d after %d)", i, rec.T, last)
		}
		last = rec.T
		if rec.Kind < KindPick || rec.Kind > KindSteal {
			t.Fatalf("record %d: bad kind %d", i, rec.Kind)
		}
		if rec.Kind == KindWake {
			wakes++
			if len(rec.Cand) == 0 {
				t.Fatalf("record %d: wake without placement candidates", i)
			}
		}
		if rec.Kind == KindPick && rec.Other != -1 {
			t.Fatalf("record %d: pick with other=%d", i, rec.Other)
		}
	}
	if wakes == 0 {
		t.Fatal("no wake records decoded")
	}
	// The offline replay of the headroom analyzer must agree with the
	// online accumulator exactly.
	online := r.Headroom()
	replay := ComputeHeadroom(tr, 0, 0)
	if online != replay {
		t.Fatalf("headroom online %+v != replay %+v", online, replay)
	}
	if online.Wakes == 0 || online.Attainable > online.Achieved {
		t.Fatalf("implausible headroom %+v", online)
	}
}

func TestDeterminism(t *testing.T) {
	r1, _ := record(t, Options{})
	r2, _ := record(t, Options{})
	if !bytes.Equal(r1.Bytes(), r2.Bytes()) {
		t.Fatal("identical runs produced different traces")
	}
	// The heap engine must produce the byte-identical trace.
	sim.SetForceEventHeap(true)
	defer sim.SetForceEventHeap(false)
	r3, _ := record(t, Options{})
	if !bytes.Equal(r1.Bytes(), r3.Bytes()) {
		t.Fatal("wheel and heap engines produced different traces")
	}
}

func TestColumnSelection(t *testing.T) {
	r, _ := record(t, Options{Columns: []string{"digest"}})
	tr, err := Decode(r.Bytes())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	names := map[string]bool{}
	for _, c := range tr.Header.Columns {
		names[c.Name] = true
	}
	for _, want := range []string{"t_ns", "core", "kind", "thread", "digest"} {
		if !names[want] {
			t.Fatalf("column %q missing from header %v", want, tr.Header.Columns)
		}
	}
	for _, absent := range []string{"other", "wait_ns", "cand_len", "cand_id", "cand_key"} {
		if names[absent] {
			t.Fatalf("deselected column %q present in header", absent)
		}
	}
	for i := range tr.Recs {
		if len(tr.Recs[i].Cand) != 0 || tr.Recs[i].WaitNS != 0 {
			t.Fatalf("record %d carries deselected data: %+v", i, tr.Recs[i])
		}
		if tr.Recs[i].Kind != KindPick && tr.Recs[i].Digest == 0 {
			t.Fatalf("record %d: digest zero despite selection", i)
		}
	}
	// Headroom still works online without the cand columns on disk.
	if hr := r.Headroom(); hr.Wakes == 0 {
		t.Fatalf("online headroom lost without cand columns: %+v", hr)
	}

	if _, err := Attach(sim.NewMachine(topo.Small(), sim.NewFIFO(), sim.Options{}), Options{Columns: []string{"bogus"}}); err == nil {
		t.Fatal("unknown column group accepted")
	}
}

func TestSampling(t *testing.T) {
	full, _ := record(t, Options{})
	sampled, _ := record(t, Options{Sample: 4})
	fs, ss := full.Summary(), sampled.Summary()
	if fs.Decisions != ss.Decisions {
		t.Fatalf("sampling changed the decision count: %d vs %d", fs.Decisions, ss.Decisions)
	}
	// Per-kind counts follow ceil(seen/4).
	wantPicks := (fs.Picks + 3) / 4
	if ss.Picks != wantPicks {
		t.Fatalf("sample=4 kept %d picks, want %d of %d", ss.Picks, wantPicks, fs.Picks)
	}
	if ss.Bytes >= fs.Bytes {
		t.Fatalf("sampled trace not smaller: %d vs %d bytes", ss.Bytes, fs.Bytes)
	}
}

func TestMaxBytesDropsWholeChunks(t *testing.T) {
	r, _ := record(t, Options{Ring: 64, MaxBytes: 8192})
	sum := r.Summary()
	if sum.Dropped == 0 {
		t.Fatalf("no drops despite 8 KiB cap: %+v", sum)
	}
	if sum.Bytes > 8192 {
		t.Fatalf("output %d bytes exceeds cap", sum.Bytes)
	}
	// The surviving prefix still decodes.
	tr, err := Decode(r.Bytes())
	if err != nil {
		t.Fatalf("Decode of capped trace: %v", err)
	}
	if uint64(len(tr.Recs)) != sum.Records-sum.Dropped {
		t.Fatalf("decoded %d records, want %d kept of %d", len(tr.Recs), sum.Records-sum.Dropped, sum.Records)
	}
}

// TestOfflineCoreDecisions pins the satellite contract directly at the
// sim layer: once a core is hot-unplugged, no pick fires on it and no
// wake targets it.
func TestOfflineCoreDecisions(t *testing.T) {
	sched := sim.NewFIFO()
	m := sim.NewMachine(topo.Small(), sched, sim.Options{Seed: 3})
	r, err := Attach(m, Options{})
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	for i := 0; i < 8; i++ {
		m.StartThread("w", "app", 0, &runSleeper{run: 600 * time.Microsecond, sleep: 300 * time.Microsecond})
	}
	m.Run(5 * time.Millisecond)
	const victim = 1
	offAt := int64(m.Now())
	if !m.OfflineCore(victim) {
		t.Fatal("OfflineCore refused")
	}
	m.Run(15 * time.Millisecond)
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	tr, err := Decode(r.Bytes())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	for i := range tr.Recs {
		rec := &tr.Recs[i]
		if rec.T < offAt || rec.Core != victim {
			continue
		}
		if rec.Kind == KindPick || rec.Kind == KindWake {
			t.Fatalf("%v decision on offlined core %d at t=%d", rec.Kind, victim, rec.T)
		}
	}
}

func TestCSV(t *testing.T) {
	r, _ := record(t, Options{})
	out, err := CSV(r.Bytes())
	if err != nil {
		t.Fatalf("CSV: %v", err)
	}
	lines := strings.Split(strings.TrimRight(string(out), "\n"), "\n")
	if lines[0] != CSVHeader {
		t.Fatalf("CSV header %q", lines[0])
	}
	if uint64(len(lines)-1) != r.Summary().Records {
		t.Fatalf("CSV rows %d != records %d", len(lines)-1, r.Summary().Records)
	}
	var sawWake bool
	for _, ln := range lines[1:] {
		f := strings.Split(ln, ",")
		if len(f) != 8 {
			t.Fatalf("CSV row has %d fields: %q", len(f), ln)
		}
		if f[2] == "wake" && strings.Contains(f[7], ":") {
			sawWake = true
		}
	}
	if !sawWake {
		t.Fatal("no wake row with rendered candidates")
	}
}

// TestHeadroomSynthetic checks the analyzer's arithmetic on a
// hand-built window: two wakes both crammed onto a loaded core while an
// idle one sat free.
func TestHeadroomSynthetic(t *testing.T) {
	tr := &Trace{Header: Header{Window: 4}}
	cands := []Candidate{{ID: 0, Key: 3}, {ID: 1, Key: 0}}
	tr.Recs = []Rec{
		{Kind: KindWake, Core: 0, Cand: cands},
		{Kind: KindWake, Core: 0, Cand: []Candidate{{ID: 0, Key: 4}, {ID: 1, Key: 0}}},
	}
	hr := ComputeHeadroom(tr, 0, 0)
	// Achieved: 3 + 4. Attainable: wake both onto core 1 → 0 + 1.
	if hr.Achieved != 7 || hr.Attainable != 1 {
		t.Fatalf("headroom %+v, want achieved=7 attainable=1", hr)
	}
	if hr.Pct < 85 || hr.Pct > 86 {
		t.Fatalf("pct %v, want 6/7", hr.Pct)
	}
	// Optimal placements yield zero headroom.
	tr.Recs = []Rec{
		{Kind: KindWake, Core: 1, Cand: cands},
		{Kind: KindWake, Core: 1, Cand: []Candidate{{ID: 0, Key: 3}, {ID: 1, Key: 1}}},
	}
	if hr := ComputeHeadroom(tr, 0, 0); hr.Pct != 0 {
		t.Fatalf("optimal schedule reported headroom %+v", hr)
	}
}

// TestGolden pins the dtrace/v1 header line and a small recorded window
// byte-for-byte. Regenerate with: go test ./internal/dtrace -run Golden -update
func TestGolden(t *testing.T) {
	r, _ := record(t, Options{Ring: 32, Sample: 8})
	data := r.Bytes()
	path := filepath.Join("testdata", "small.dtrace")
	if *update {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(data, want) {
		i := 0
		for i < len(data) && i < len(want) && data[i] == want[i] {
			i++
		}
		t.Fatalf("trace diverges from golden at byte %d of %d (golden %d bytes)", i, len(data), len(want))
	}
	// The header line itself is part of the stable format surface.
	nl := bytes.IndexByte(data, '\n')
	hdr := data[nl+1:]
	hdr = hdr[:bytes.IndexByte(hdr, '\n')]
	const wantHdr = `{"columns":[{"name":"t_ns","type":"i64"},{"name":"core","type":"i32"},{"name":"kind","type":"u8"},{"name":"thread","type":"i32"},{"name":"other","type":"i32"},{"name":"wait_ns","type":"i64"},{"name":"digest","type":"u64"},{"name":"cand_len","type":"u16"},{"name":"cand_id","type":"i32"},{"name":"cand_key","type":"i64"}],"sample":8,"window":8}`
	if string(hdr) != wantHdr {
		t.Fatalf("header line changed:\n got %s\nwant %s", hdr, wantHdr)
	}
}
