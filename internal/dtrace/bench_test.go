package dtrace

// BenchmarkTraceOverhead prices the recorder from both sides: "off" is
// the BenchmarkEngineEvents workload on a machine with no recorder — it
// must stay 0 allocs/op, proving the new OnPick/OnWake sites cost a nil
// check — while "on" attaches a full recorder draining to io.Discard,
// pricing real per-decision capture. TestZeroRecorderAllocFree pins the
// "off" side as a plain test so CI enforces it without benchmark noise.

import (
	"io"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/topo"
)

func benchTrace(b *testing.B, attach bool) {
	sched := sim.NewFIFO()
	m := sim.NewMachine(topo.Small(), sched, sim.Options{Seed: 9})
	for i := 0; i < 12; i++ {
		m.StartThread("w", "app", 0, &runSleeper{run: 700 * time.Microsecond, sleep: 400 * time.Microsecond})
	}
	if attach {
		if _, err := Attach(m, Options{Sink: io.Discard, MaxBytes: 1 << 40}); err != nil {
			b.Fatal(err)
		}
	}
	m.Run(250 * time.Millisecond) // settle heap, runqueue, and scratch capacity
	b.ReportAllocs()
	b.ResetTimer()
	start := m.EventsProcessed()
	for i := 0; i < b.N; i++ {
		m.Run(m.Now() + time.Millisecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(m.EventsProcessed()-start)/float64(b.N), "events/op")
}

func BenchmarkTraceOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) { benchTrace(b, false) })
	b.Run("on", func(b *testing.B) { benchTrace(b, true) })
}

// TestZeroRecorderAllocFree: a machine without a recorder allocates
// nothing in the hot paths — the zero-recorder contract the tentpole
// must not regress.
func TestZeroRecorderAllocFree(t *testing.T) {
	m := sim.NewMachine(topo.Small(), sim.NewFIFO(), sim.Options{Seed: 9})
	for i := 0; i < 12; i++ {
		m.StartThread("w", "app", 0, &runSleeper{run: 700 * time.Microsecond, sleep: 400 * time.Microsecond})
	}
	m.Run(250 * time.Millisecond)
	avg := testing.AllocsPerRun(20, func() {
		m.Run(m.Now() + 5*time.Millisecond)
	})
	if avg != 0 {
		t.Fatalf("zero-recorder hot paths allocated %.1f allocs per 5ms window, want 0", avg)
	}
}

// TestRecorderSteadyStateAllocFree: with a recorder attached and warmed,
// recording itself allocates nothing — the arena/ring/scratch are all
// preallocated and the sink write is the only byte sink.
func TestRecorderSteadyStateAllocFree(t *testing.T) {
	sched := sim.NewFIFO()
	m := sim.NewMachine(topo.Small(), sched, sim.Options{Seed: 9})
	r, err := Attach(m, Options{Sink: io.Discard, MaxBytes: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		m.StartThread("w", "app", 0, &runSleeper{run: 700 * time.Microsecond, sleep: 400 * time.Microsecond})
	}
	m.Run(250 * time.Millisecond) // past the first flush: scratch is sized
	avg := testing.AllocsPerRun(20, func() {
		m.Run(m.Now() + 5*time.Millisecond)
	})
	if avg != 0 {
		t.Fatalf("recorder steady state allocated %.1f allocs per 5ms window, want 0", avg)
	}
	_ = r
}
