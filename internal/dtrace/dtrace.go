// Package dtrace records per-decision scheduler traces: one compact
// record for every pick, wakeup-placement, migration, and steal decision
// the simulated scheduler makes, streamed into an allocation-bounded
// ring and encoded in the stable columnar dtrace/v1 format (columnar.go).
//
// The recorder is a pure observer over the sim hook points (OnPick,
// OnWake, OnMigrate, OnSteal): attaching it perturbs nothing, and a
// machine with no recorder attached pays only the engine's nil hook-table
// check. Candidate sets for pick decisions come from the scheduler's
// optional sim.PickExplainer capability; wake records instead carry the
// per-core load vector over the cores the woken thread was allowed on —
// the placement alternatives — which is what the headroom analyzer
// (headroom.go) searches over.
//
// Everything the recorder emits is a deterministic function of the
// simulated run and the options, so traces are byte-identical across
// worker-pool widths and across the wheel/heap event engines.
package dtrace

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/sim"
)

// Kind tags a decision record.
type Kind uint8

const (
	// KindPick: a core's PickNext chose a thread.
	KindPick Kind = 1
	// KindWake: SelectCore placed a thread waking from sleep/block.
	KindWake Kind = 2
	// KindMigrate: a balancer/stealer moved a runnable thread.
	KindMigrate Kind = 3
	// KindSteal: an idle core stole from a victim (the accompanying
	// migration is recorded too).
	KindSteal Kind = 4
)

var kindNames = [...]string{0: "?", KindPick: "pick", KindWake: "wake", KindMigrate: "migrate", KindSteal: "steal"}

// String returns the kind's CSV rendering.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "?"
}

// Limits of the recorder's fixed-size structures.
const (
	defaultRing     = 4096
	defaultMaxBytes = 32 << 20
	defaultSample   = 1
	defaultWindow   = 8
	defaultBranch   = 4
	// maxCandPerRec bounds one record's candidate set; longer views are
	// truncated (deterministically — a prefix of the explainer's order).
	maxCandPerRec = 256
	// MaxWindow bounds the headroom search window (branch^window nodes).
	MaxWindow = 16
	// MaxBranch bounds the per-decision branching of the headroom search.
	MaxBranch = 8
)

// Options configures a Recorder. The zero value means: record every
// decision, all columns, 4096-record ring, 32 MiB output cap, in-memory
// output, headroom window 8 × branch 4.
type Options struct {
	// Sample records every Sample-th decision of each kind (1 = all).
	Sample int
	// Ring is the record capacity of the in-memory ring; a full ring
	// flushes one columnar chunk to the output.
	Ring int
	// MaxBytes caps the encoded output. Chunks that would exceed it are
	// dropped whole (counted in Summary.Dropped); the header always fits.
	MaxBytes int64
	// Columns selects optional column groups to record (see
	// ColumnGroups); nil = all. The mandatory t_ns/core/kind/thread
	// columns are always present.
	Columns []string
	// Window is the headroom search window in wake decisions (≤ MaxWindow).
	Window int
	// Branch is the headroom search's per-decision branching (≤ MaxBranch).
	Branch int
	// Sink receives the encoded trace as it is produced; nil buffers
	// in memory (Recorder.Bytes).
	Sink io.Writer
}

// ColumnGroups lists the optional column groups a trace block or Options
// may select: "other" (origin/victim core), "wait_ns" (decision latency
// input), "digest" (runqueue snapshot digest), "cand" (candidate sets).
func ColumnGroups() []string { return []string{"other", "wait_ns", "digest", "cand"} }

// normalize fills defaults and validates; returns the group inclusion set.
func (o *Options) normalize() (colMask, error) {
	if o.Sample == 0 {
		o.Sample = defaultSample
	}
	if o.Sample < 1 || o.Sample > 1_000_000 {
		return 0, fmt.Errorf("dtrace: sample %d out of range [1, 1000000]", o.Sample)
	}
	if o.Ring == 0 {
		o.Ring = defaultRing
	}
	if o.Ring < 16 || o.Ring > 1<<20 {
		return 0, fmt.Errorf("dtrace: ring %d out of range [16, 1048576]", o.Ring)
	}
	if o.MaxBytes == 0 {
		o.MaxBytes = defaultMaxBytes
	}
	if o.MaxBytes < 4096 {
		return 0, fmt.Errorf("dtrace: maxBytes %d too small (min 4096)", o.MaxBytes)
	}
	if o.Window == 0 {
		o.Window = defaultWindow
	}
	if o.Window < 1 || o.Window > MaxWindow {
		return 0, fmt.Errorf("dtrace: window %d out of range [1, %d]", o.Window, MaxWindow)
	}
	if o.Branch == 0 {
		o.Branch = defaultBranch
	}
	if o.Branch < 1 || o.Branch > MaxBranch {
		return 0, fmt.Errorf("dtrace: branch %d out of range [1, %d]", o.Branch, MaxBranch)
	}
	mask := colMask(0)
	if o.Columns == nil {
		return maskAll, nil
	}
	for _, name := range o.Columns {
		g, ok := groupByName[name]
		if !ok {
			return 0, fmt.Errorf("dtrace: unknown column group %q (have %v)", name, ColumnGroups())
		}
		mask |= g
	}
	return mask, nil
}

// Summary reports what a finished Recorder saw and kept.
type Summary struct {
	// Decisions counts decision points observed, before sampling.
	Decisions uint64 `json:"decisions"`
	// Records counts records kept (after sampling, including dropped).
	Records uint64 `json:"records"`
	Picks   uint64 `json:"picks"`
	Wakes   uint64 `json:"wakes"`
	Migrate uint64 `json:"migrates"`
	Steals  uint64 `json:"steals"`
	// Dropped counts records discarded because MaxBytes was reached.
	Dropped uint64 `json:"dropped,omitempty"`
	// Bytes is the encoded output size (header + surviving chunks).
	Bytes int64 `json:"bytes"`
}

// Recorder captures decision records from a machine's hooks. Create with
// Attach; call Close after the run, then Bytes/Summary/Headroom.
//
// All hot-path state is preallocated at Attach: the SoA ring, the
// candidate arena, the encode scratch, and the headroom window. Recording
// a decision allocates nothing; flushing writes one encoded chunk to the
// sink (an in-memory buffer grows amortized, bounded by MaxBytes).
type Recorder struct {
	m    *sim.Machine
	opts Options
	cols colMask

	// SoA ring, capacity opts.Ring.
	tNS     []int64
	core    []int32
	kind    []uint8
	thread  []int32
	other   []int32
	waitNS  []int64
	digest  []uint64
	candLen []uint16
	n       int

	// Candidate arena backing the ring's candidate sets.
	candID  []int32
	candKey []int64

	enc encoder

	// Per-kind decision counters (pre-sampling), indexed by Kind.
	seen [5]uint64
	// Per-kind kept-record counters.
	kept    [5]uint64
	dropped uint64

	// Reused scratch.
	loadBuf []int
	pickBuf []sim.PickCandidate

	hr        headroomAcc
	explainer sim.PickExplainer
	closed    bool
}

// Attach validates opts, preallocates the recorder, registers its hooks
// on m, and writes the dtrace/v1 header. Must be called before the run;
// pick candidate views are captured iff the machine's scheduler
// implements sim.PickExplainer.
func Attach(m *sim.Machine, opts Options) (*Recorder, error) {
	cols, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	r := &Recorder{
		m:       m,
		opts:    opts,
		cols:    cols,
		tNS:     make([]int64, 0, opts.Ring),
		core:    make([]int32, 0, opts.Ring),
		kind:    make([]uint8, 0, opts.Ring),
		thread:  make([]int32, 0, opts.Ring),
		other:   make([]int32, 0, opts.Ring),
		waitNS:  make([]int64, 0, opts.Ring),
		digest:  make([]uint64, 0, opts.Ring),
		candLen: make([]uint16, 0, opts.Ring),
		candID:  make([]int32, 0, opts.Ring*4+maxCandPerRec),
		candKey: make([]int64, 0, opts.Ring*4+maxCandPerRec),
		loadBuf: make([]int, len(m.Cores)),
		pickBuf: make([]sim.PickCandidate, 0, maxCandPerRec),
	}
	r.hr.init(opts.Window, opts.Branch)
	if ex, ok := m.Scheduler().(sim.PickExplainer); ok {
		r.explainer = ex
	}
	r.enc.init(cols, opts)
	if err := r.enc.writeHeader(); err != nil {
		return nil, err
	}
	m.OnPick(r.onPick)
	m.OnWake(r.onWake)
	m.OnMigrate(r.onMigrate)
	m.OnSteal(r.onSteal)
	return r, nil
}

// sampled counts a decision of kind k and reports whether it is kept.
func (r *Recorder) sampled(k Kind) bool {
	n := r.seen[k]
	r.seen[k] = n + 1
	return n%uint64(r.opts.Sample) == 0
}

// push appends one record to the ring; cands were already staged into the
// arena by the caller (nc of them).
func (r *Recorder) push(k Kind, t time.Duration, core, thread, other int32, wait int64, nc int) {
	r.kept[k]++
	r.tNS = append(r.tNS, int64(t))
	r.core = append(r.core, core)
	r.kind = append(r.kind, uint8(k))
	r.thread = append(r.thread, thread)
	r.other = append(r.other, other)
	r.waitNS = append(r.waitNS, wait)
	if r.cols&groupDigest != 0 {
		r.digest = append(r.digest, r.snapshotDigest())
	} else {
		r.digest = append(r.digest, 0)
	}
	r.candLen = append(r.candLen, uint16(nc))
	r.n++
	if r.n == r.opts.Ring || len(r.candID) >= cap(r.candID)-maxCandPerRec {
		r.flush()
	}
}

// snapshotDigest hashes the per-core runnable depths (FNV-1a 64).
func (r *Recorder) snapshotDigest() uint64 {
	r.loadBuf = r.m.RunnableCountsInto(r.loadBuf)
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, n := range r.loadBuf {
		v := uint64(n)
		for i := 0; i < 4; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	return h
}

// queueWait is the decision-latency input for queued threads: time since
// the thread last became runnable or last ran, whichever is later.
func (r *Recorder) queueWait(t *sim.Thread) int64 {
	since := t.LastEnqueuedAt
	if t.LastRanAt > since {
		since = t.LastRanAt
	}
	return int64(r.m.Now() - since)
}

func (r *Recorder) onPick(c *sim.Core, t *sim.Thread) {
	if !r.sampled(KindPick) {
		return
	}
	nc := 0
	if r.cols&groupCand != 0 && r.explainer != nil {
		r.pickBuf = r.explainer.ExplainPick(c, r.pickBuf)
		for _, pc := range r.pickBuf {
			if pc.TID == int32(t.ID) {
				continue // the chosen thread is its own column
			}
			if nc == maxCandPerRec {
				break
			}
			r.candID = append(r.candID, pc.TID)
			r.candKey = append(r.candKey, pc.Key)
			nc++
		}
	}
	r.push(KindPick, r.m.Now(), int32(c.ID), int32(t.ID), -1, r.queueWait(t), nc)
}

func (r *Recorder) onWake(target, origin *sim.Core, t *sim.Thread) {
	// Headroom sees every sampled wake even when the cand columns are not
	// being written out, so feed it before the column check.
	if !r.sampled(KindWake) {
		return
	}
	r.loadBuf = r.m.RunnableCountsInto(r.loadBuf)
	r.hr.observe(int32(target.ID), t, r.loadBuf)
	nc := 0
	if r.cols&groupCand != 0 {
		// Wake candidates are the placement alternatives: every core the
		// thread was allowed on (online, affinity-permitting), keyed by
		// its runnable depth at decision time.
		for id, load := range r.loadBuf {
			if !t.CanRunOn(id) || nc == maxCandPerRec {
				continue
			}
			r.candID = append(r.candID, int32(id))
			r.candKey = append(r.candKey, int64(load))
			nc++
		}
	}
	// Wake latency input: time since the thread last gave up a core
	// (the whole sleep/block span; threads that never ran count from 0).
	wait := int64(r.m.Now() - t.LastRanAt)
	r.push(KindWake, r.m.Now(), int32(target.ID), int32(t.ID), int32(coreIDOr(origin, -1)), wait, nc)
}

func (r *Recorder) onMigrate(from, to *sim.Core, t *sim.Thread) {
	if !r.sampled(KindMigrate) {
		return
	}
	r.push(KindMigrate, r.m.Now(), int32(to.ID), int32(t.ID), int32(from.ID), r.queueWait(t), 0)
}

func (r *Recorder) onSteal(c, victim *sim.Core, t *sim.Thread) {
	if !r.sampled(KindSteal) {
		return
	}
	r.push(KindSteal, r.m.Now(), int32(c.ID), int32(t.ID), int32(victim.ID), r.queueWait(t), 0)
}

func coreIDOr(c *sim.Core, or int) int {
	if c == nil {
		return or
	}
	return c.ID
}

// flush encodes the ring as one chunk and resets it. A chunk that would
// push the output past MaxBytes is dropped whole and counted.
func (r *Recorder) flush() {
	if r.n == 0 {
		return
	}
	if !r.enc.writeChunk(r) {
		r.dropped += uint64(r.n)
	}
	r.tNS = r.tNS[:0]
	r.core = r.core[:0]
	r.kind = r.kind[:0]
	r.thread = r.thread[:0]
	r.other = r.other[:0]
	r.waitNS = r.waitNS[:0]
	r.digest = r.digest[:0]
	r.candLen = r.candLen[:0]
	r.candID = r.candID[:0]
	r.candKey = r.candKey[:0]
	r.n = 0
}

// Close flushes the final partial chunk and the headroom accumulator's
// partial window. The recorder keeps observing hooks if the machine runs
// further, but nothing more is encoded.
func (r *Recorder) Close() error {
	if r.closed {
		return r.enc.err
	}
	r.closed = true
	r.flush()
	r.hr.finish()
	return r.enc.err
}

// Bytes returns the encoded trace when buffering in memory (Options.Sink
// nil); nil otherwise. Valid after Close.
func (r *Recorder) Bytes() []byte {
	if r.enc.buf == nil {
		return nil
	}
	return r.enc.buf.Bytes()
}

// Summary reports the recorder's counters. Valid after Close.
func (r *Recorder) Summary() Summary {
	var total, decided uint64
	for _, n := range r.kept {
		total += n
	}
	for _, n := range r.seen {
		decided += n
	}
	return Summary{
		Decisions: decided,
		Records:   total,
		Picks:     r.kept[KindPick],
		Wakes:     r.kept[KindWake],
		Migrate:   r.kept[KindMigrate],
		Steals:    r.kept[KindSteal],
		Dropped:   r.dropped,
		Bytes:     r.enc.written,
	}
}

// Headroom returns the oracle headroom analysis over the recorded wake
// decisions. Valid after Close.
func (r *Recorder) Headroom() Headroom { return r.hr.result() }

// sortCandidates orders a candidate slice by (key, id) — the canonical
// order used by the headroom search's branch cut.
func sortCandidates(cs []Candidate) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Key != cs[j].Key {
			return cs[i].Key < cs[j].Key
		}
		return cs[i].ID < cs[j].ID
	})
}
