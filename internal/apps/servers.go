package apps

import (
	"fmt"
	"time"

	"repro/internal/ipc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// SysbenchConfig parameterises the sysbench/MySQL model: a closed-loop
// OLTP server with one connection per worker thread and client think time
// — workers sleep between requests ("these threads are never all active at
// the same time; they mostly wait for incoming requests", §5.1).
type SysbenchConfig struct {
	// Threads is the worker/connection count (the paper uses 80 and 128 on
	// one core in §5.1/§5.2, 128 on the multicore).
	Threads int
	// InitPerWorker is the master's CPU burn before each fork — the §5.2
	// mechanism that pushes later workers past the interactivity
	// threshold (~18 ms makes the crossing land near worker 80 with a
	// bash-like parent).
	InitPerWorker time.Duration
	// Service is a transaction's CPU demand.
	Service time.Duration
	// CritPermille is the fraction (‰) of transactions taking the global
	// lock; Crit is the critical-section length (the §6.4 MySQL lock
	// contention).
	CritPermille int
	Crit         time.Duration
	// Think is the per-connection client think time between a response
	// and the next request.
	Think time.Duration
	// TxTarget stops the workload (MarkDone) after that many completed
	// transactions; 0 runs forever. Table 2 measures a fixed workload.
	TxTarget uint64
}

// DefaultSysbench returns the configuration used by the single-core
// experiments: 80 connections at ~1.4× one core of demand, so ULE (which
// starves fibo and serves at full speed) stays ahead of the offered load
// while CFS (fair-sharing with fibo) saturates.
func DefaultSysbench() SysbenchConfig {
	return SysbenchConfig{
		Threads:       80,
		InitPerWorker: 18 * time.Millisecond,
		Service:       900 * time.Microsecond,
		CritPermille:  300,
		Crit:          100 * time.Microsecond,
		Think:         50 * time.Millisecond,
	}
}

// Sysbench builds the OLTP server model with the given config.
func Sysbench(cfg SysbenchConfig) Spec {
	return Spec{Name: "sysbench", New: func(m *sim.Machine, env Env) *Instance {
		if cfg.Threads == 0 {
			cfg = DefaultSysbench()
		}
		if cfg.Think <= 0 {
			cfg.Think = 50 * time.Millisecond
		}
		in := Launch(m, "sysbench", env, func(in *Instance) sim.Program {
			// One connection per worker thread, as in MySQL's
			// thread-per-connection model: each worker serves only its own
			// connection's requests, so a starved worker stalls exactly one
			// connection (the Figure 3 behaviour).
			shared := &stats.Histogram{}
			in.Latency = shared
			mu := ipc.NewMutex("mysql.lock")
			queues := make([]*ipc.ReqQueue, cfg.Threads)
			for i := range queues {
				queues[i] = ipc.NewReqQueue(fmt.Sprintf("sysbench.conn%d", i))
				queues[i].Latency = shared
			}
			stopped := false
			onDone := func(i int) func() {
				return func() {
					in.AddOp()
					if cfg.TxTarget > 0 && in.Ops() >= cfg.TxTarget {
						if !stopped {
							stopped = true
							in.MarkDone()
						}
						return
					}
					// Closed loop: the connection thinks, then sends again.
					m.After(cfg.Think, func() {
						if !stopped {
							queues[i].Push(m, cfg.Service)
						}
					})
				}
			}
			return &workload.Forker{
				N:        cfg.Threads,
				InitCost: cfg.InitPerWorker,
				Child: func(i int) (string, sim.Program) {
					return fmt.Sprintf("worker-%d", i), &workload.ServerWorker{
						Q: queues[i], Mu: mu, CritPermille: cfg.CritPermille, Crit: cfg.Crit,
						OnDone: onDone(i),
					}
				},
				OnForked: func(i int, t *sim.Thread) {
					in.Workers = append(in.Workers, t)
					if i == cfg.Threads-1 {
						// Prepare phase over: every connection issues its
						// first request, staggered across one think time.
						for c := 0; c < cfg.Threads; c++ {
							cc := c
							m.After(time.Duration(cc)*cfg.Think/time.Duration(cfg.Threads), func() {
								queues[cc].Push(m, cfg.Service)
							})
						}
					}
				},
			}
		})
		return in
	}}
}

// SysbenchDefault is the catalog entry with default parameters.
func SysbenchDefault() Spec {
	s := Sysbench(SysbenchConfig{})
	s.Name = "sysbench"
	return s
}

// RocksDB is the read-mostly key-value store: many light reads, a small
// locked write fraction, and a batch compaction thread.
func RocksDB() Spec {
	return Spec{Name: "rocksdb", New: func(m *sim.Machine, env Env) *Instance {
		threads := 64
		service := 300 * time.Microsecond
		rate := int(1.1 * float64(env.Cores) / service.Seconds())
		return Launch(m, "rocksdb", env, func(in *Instance) sim.Program {
			q := ipc.NewReqQueue("rocksdb")
			q.MaxDepth = 4 * threads
			in.Latency = q.Latency
			mu := ipc.NewMutex("memtable.lock")
			interval := time.Duration(int64(time.Second) / int64(rate))
			started := false
			startLoad := func() {
				if started {
					return
				}
				started = true
				m.Every(interval, interval, func() bool {
					q.Push(m, service)
					return true
				})
			}
			return &workload.Forker{
				N:        threads + 1,
				InitCost: 10 * time.Millisecond,
				Child: func(i int) (string, sim.Program) {
					if i == threads {
						// Background compaction: pure batch CPU.
						return "compaction", &workload.Loop{Burst: 2 * time.Millisecond, JitterPct: 20}
					}
					return fmt.Sprintf("reader-%d", i), &workload.ServerWorker{
						Q: q, Mu: mu, CritPermille: 100, Crit: 50 * time.Microsecond,
						OnDone: in.AddOp,
					}
				},
				OnForked: func(i int, t *sim.Thread) {
					in.Workers = append(in.Workers, t)
					if i == threads {
						startLoad()
					}
				},
			}
		})
	}}
}

// Apache is the §5.3 preemption case study: httpd with 100 worker threads
// and ab, a single-threaded load injector sending 100-request batches. On
// CFS every response wakes a worker that preempts ab (2M preemptions in
// the paper); ULE never preempts, letting ab batch its work.
func Apache() Spec {
	return Spec{Name: "apache", New: func(m *sim.Machine, env Env) *Instance {
		const window = 100
		const httpdThreads = 100
		return Launch(m, "apache", env, func(in *Instance) sim.Program {
			q := ipc.NewReqQueue("httpd")
			in.Latency = q.Latency
			resp := sim.NewWaitQueue("ab.resp")
			outstanding := 0
			return &workload.Forker{
				N:        httpdThreads + 1,
				InitCost: 200 * time.Microsecond,
				Child: func(i int) (string, sim.Program) {
					if i == httpdThreads {
						// ab: forked last, like starting the load injector
						// after the server is up.
						return "ab", &workload.BatchClient{
							Q: q, Window: window,
							SendCost: 15 * time.Microsecond,
							Service:  120 * time.Microsecond,
							RespWQ:   resp, Outstanding: &outstanding,
							OnRoundTrip: in.AddOp,
						}
					}
					return fmt.Sprintf("httpd-%d", i), &workload.RespondingWorker{
						Q: q, RespWQ: resp, Outstanding: &outstanding,
					}
				},
				OnForked: func(i int, t *sim.Thread) { in.Workers = append(in.Workers, t) },
			}
		})
	}}
}

// Hackbench is the kernel community's scheduler stress test: groups of 20
// senders and 20 receivers exchanging messages over pipes. groups=10 is
// the paper's Hackb-10 (400 threads); groups=800 is Hackb-800 (32,000
// threads, 1% ULE overhead in §6.3). Each sender distributes msgsPerSender
// messages round-robin over the group's 20 pipes; each receiver drains
// msgsPerSender messages from its own pipe.
func Hackbench(groups, msgsPerSender int) Spec {
	name := fmt.Sprintf("hackb-%d", groups)
	return Spec{Name: name, New: func(m *sim.Machine, env Env) *Instance {
		const fanout = 20
		// Round up so every pipe carries the same message count and every
		// receiver terminates.
		msgsPerSender = (msgsPerSender + fanout - 1) / fanout * fanout
		return Launch(m, name, env, func(in *Instance) sim.Program {
			receiversLeft := groups * fanout
			return &workload.Forker{
				N:        groups,
				InitCost: 100 * time.Microsecond,
				Child: func(g int) (string, sim.Program) {
					// Each group master creates its pipes and forks its 40
					// members: receivers first, then senders.
					pipes := make([]*ipc.Pipe, fanout)
					for i := range pipes {
						pipes[i] = ipc.NewPipe(fmt.Sprintf("hb.g%d.p%d", g, i), 8)
					}
					return fmt.Sprintf("group-%d", g), &workload.Forker{
						N:        2 * fanout,
						InitCost: 20 * time.Microsecond,
						Child: func(i int) (string, sim.Program) {
							if i < fanout {
								return fmt.Sprintf("recv-%d-%d", g, i), &workload.PipeReceiver{
									Pipe: pipes[i], PerMsg: 20 * time.Microsecond,
									Total:  msgsPerSender,
									OnRecv: func() { in.AddOp() },
								}
							}
							return fmt.Sprintf("send-%d-%d", g, i-fanout), &workload.PipeSender{
								Pipes: pipes, PerMsg: 20 * time.Microsecond,
								Total: msgsPerSender, MsgSize: 100,
							}
						},
						OnForked: func(i int, t *sim.Thread) {
							in.Workers = append(in.Workers, t)
							if i < fanout {
								t.OnExit = func(*sim.Thread) {
									receiversLeft--
									if receiversLeft == 0 {
										in.MarkDone()
									}
								}
							}
						},
					}
				},
			}
		})
	}}
}
