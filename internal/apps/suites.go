package apps

import (
	"fmt"
	"time"

	"repro/internal/ipc"
	"repro/internal/sim"
	"repro/internal/workload"
)

// barrierApp builds a one-thread-per-core iterated-phases application with
// a spin-then-sleep barrier — the NAS shape. Phase lengths and barrier spin
// budgets distinguish the suite members.
func barrierApp(name string, phase time.Duration, jitterPct int, spin, ioSleep time.Duration) Spec {
	return Spec{Name: name, New: func(m *sim.Machine, env Env) *Instance {
		return Launch(m, name, env, func(in *Instance) sim.Program {
			n := env.Cores
			bar := ipc.NewBarrier(name+".bar", n, spin)
			return &workload.Forker{
				N:        n,
				InitCost: time.Millisecond,
				Child: func(i int) (string, sim.Program) {
					return fmt.Sprintf("rank-%d", i), &workload.BarrierWorker{
						Bar: bar, Phase: phase, JitterPct: jitterPct,
						IOSleep: ioSleep, OnPhase: in.AddOp,
					}
				},
				OnForked: func(i int, t *sim.Thread) { in.Workers = append(in.Workers, t) },
			}
		})
	}}
}

// NAS suite (§4.2). MG is the paper's §6.3 case study: long phases with a
// 100 ms spin budget before sleeping — "when a thread has finished its
// computation, it waits on a spin-barrier for 100ms and then sleeps".
// Phase lengths and jitters are per-kernel behavioural skeletons.

// NASBT is block tridiagonal solve.
func NASBT() Spec { return barrierApp("BT", 40*time.Millisecond, 10, time.Millisecond, 0) }

// NASCG is conjugate gradient: short communication-bound phases.
func NASCG() Spec { return barrierApp("CG", 8*time.Millisecond, 15, time.Millisecond, 0) }

// NASDC is the data-cube benchmark: I/O between phases.
func NASDC() Spec {
	return barrierApp("DC", 10*time.Millisecond, 10, time.Millisecond, 5*time.Millisecond)
}

// NASEP is embarrassingly parallel: no barriers at all.
func NASEP() Spec {
	return Spec{Name: "EP", New: func(m *sim.Machine, env Env) *Instance {
		return Launch(m, "EP", env, func(in *Instance) sim.Program {
			return &workload.Forker{
				N:        env.Cores,
				InitCost: time.Millisecond,
				Child: func(i int) (string, sim.Program) {
					return fmt.Sprintf("rank-%d", i), &workload.Loop{
						Burst: 20 * time.Millisecond, JitterPct: 5, OnOp: in.AddOp,
					}
				},
				OnForked: func(i int, t *sim.Thread) { in.Workers = append(in.Workers, t) },
			}
		})
	}}
}

// NASFT is the 3-D FFT: long phases, sensitive to double-stacked threads.
func NASFT() Spec { return barrierApp("FT", 60*time.Millisecond, 5, 10*time.Millisecond, 0) }

// NASIS is integer sort: very short phases, barrier-dominated.
func NASIS() Spec { return barrierApp("IS", 4*time.Millisecond, 20, time.Millisecond, 0) }

// NASLU is the LU solver.
func NASLU() Spec { return barrierApp("LU", 25*time.Millisecond, 10, time.Millisecond, 0) }

// NASMG is the multigrid kernel — the +73% ULE win of Figure 8.
func NASMG() Spec { return barrierApp("MG", 180*time.Millisecond, 5, 100*time.Millisecond, 0) }

// NASSP is the scalar pentadiagonal solver.
func NASSP() Spec { return barrierApp("SP", 30*time.Millisecond, 10, time.Millisecond, 0) }

// NASUA is unstructured adaptive mesh: longer phases, like FT.
func NASUA() Spec { return barrierApp("UA", 50*time.Millisecond, 8, 10*time.Millisecond, 0) }

// PARSEC suite (§4.2): three archetypes — data-parallel with barriers,
// pipeline-parallel with stage queues (sleepy, interactive-leaning under
// ULE), and independent task pools.

// Blackscholes is data-parallel option pricing (the batch half of the
// Figure 9 blackscholes+ferret pair).
func Blackscholes() Spec {
	return barrierApp("blackscholes", 30*time.Millisecond, 5, time.Millisecond, 0)
}

// Bodytrack alternates parallel phases with a sequential stage.
func Bodytrack() Spec {
	return barrierApp("bodytrack", 12*time.Millisecond, 25, time.Millisecond, 2*time.Millisecond)
}

// Canneal is lock-heavy simulated annealing over a shared netlist.
func Canneal() Spec {
	return Spec{Name: "canneal", New: func(m *sim.Machine, env Env) *Instance {
		return Launch(m, "canneal", env, func(in *Instance) sim.Program {
			mu := ipc.NewMutex("canneal.netlist")
			return &workload.Forker{
				N:        env.Cores,
				InitCost: 2 * time.Millisecond,
				Child: func(i int) (string, sim.Program) {
					return fmt.Sprintf("anneal-%d", i), &workload.LockedLoop{
						Mu: mu, Crit: 50 * time.Microsecond, Local: 400 * time.Microsecond,
						OnOp: in.AddOp,
					}
				},
				OnForked: func(i int, t *sim.Thread) { in.Workers = append(in.Workers, t) },
			}
		})
	}}
}

// Facesim is data-parallel physics with barriers.
func Facesim() Spec {
	return barrierApp("facesim", 45*time.Millisecond, 10, time.Millisecond, 0)
}

// Ferret is the 4-stage similarity-search pipeline; its stage workers
// block on queues and classify interactive under ULE (the protected half
// of the Figure 9 pair).
func Ferret() Spec {
	return pipelineApp("ferret", []time.Duration{
		300 * time.Microsecond, // segment
		time.Millisecond,       // extract
		2 * time.Millisecond,   // index
		3 * time.Millisecond,   // rank
	})
}

// Fluidanimate has fine-grained per-frame barriers.
func Fluidanimate() Spec {
	return barrierApp("fluidanimate", 8*time.Millisecond, 10, 500*time.Microsecond, 0)
}

// Freqmine is an independent task-pool miner.
func Freqmine() Spec { return poolApp("freqmine", 5*time.Millisecond) }

// Raytrace is an independent task-pool renderer.
func Raytrace() Spec { return poolApp("raytrace", 4*time.Millisecond) }

// Streamcluster is barrier-dominated clustering.
func Streamcluster() Spec {
	return barrierApp("streamcluster", 6*time.Millisecond, 10, 500*time.Microsecond, 0)
}

// Swaptions is an independent task pool with long kernels.
func Swaptions() Spec { return poolApp("swaptions", 10*time.Millisecond) }

// Vips is a 3-stage image pipeline.
func Vips() Spec {
	return pipelineApp("vips", []time.Duration{
		500 * time.Microsecond,
		2 * time.Millisecond,
		time.Millisecond,
	})
}

// X264 is the encoder pipeline with a jittery encode stage.
func X264() Spec {
	return pipelineApp("x264", []time.Duration{
		time.Millisecond,
		6 * time.Millisecond,
		500 * time.Microsecond,
	})
}

// poolApp is a per-core pool of independent compute workers.
func poolApp(name string, burst time.Duration) Spec {
	return Spec{Name: name, New: func(m *sim.Machine, env Env) *Instance {
		return Launch(m, name, env, func(in *Instance) sim.Program {
			return &workload.Forker{
				N:        env.Cores,
				InitCost: time.Millisecond,
				Child: func(i int) (string, sim.Program) {
					return fmt.Sprintf("pool-%d", i), &workload.Loop{
						Burst: burst, JitterPct: 15, OnOp: in.AddOp,
					}
				},
				OnForked: func(i int, t *sim.Thread) { in.Workers = append(in.Workers, t) },
			}
		})
	}}
}

// pipelineApp is a source → stages → sink pipeline; each middle stage gets
// a worker pool sized to the machine.
func pipelineApp(name string, stageCosts []time.Duration) Spec {
	return Spec{Name: name, New: func(m *sim.Machine, env Env) *Instance {
		return Launch(m, name, env, func(in *Instance) sim.Program {
			nStages := len(stageCosts)
			pipes := make([]*ipc.Pipe, nStages)
			for i := range pipes {
				pipes[i] = ipc.NewPipe(fmt.Sprintf("%s.q%d", name, i), 16)
			}
			// Worker pool per stage: divide the cores across stages, at
			// least one each.
			perStage := env.Cores / nStages
			if perStage < 1 {
				perStage = 1
			}
			total := nStages * perStage
			return &workload.Forker{
				N:        total,
				InitCost: time.Millisecond,
				Child: func(i int) (string, sim.Program) {
					stage := i % nStages
					var out *ipc.Pipe
					if stage+1 < nStages {
						out = pipes[stage+1]
					}
					ps := &workload.PipelineStage{
						In: pipes[stage], Out: out,
						Cost: stageCosts[stage], JitterPct: 20,
					}
					if stage == nStages-1 {
						ps.OnItem = in.AddOp
					}
					return fmt.Sprintf("stage%d-%d", stage, i/nStages), ps
				},
				OnForked: func(i int, t *sim.Thread) { in.Workers = append(in.Workers, t) },
				Then:     &workload.Source{Out: pipes[0], Cost: 200 * time.Microsecond},
			}
		})
	}}
}
