package apps

import (
	"testing"
	"time"

	"repro/internal/cfs"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/ule"
)

func cfsMachine(tp *topo.Topology, seed int64) *sim.Machine {
	return sim.NewMachine(tp, cfs.NewDefault(), sim.Options{Seed: seed})
}

func uleMachine(tp *topo.Topology, seed int64) *sim.Machine {
	return sim.NewMachine(tp, ule.NewDefault(), sim.Options{Seed: seed})
}

func TestCatalogSizes(t *testing.T) {
	// 42 bars = the paper's "37 applications" with scimark's six variants
	// counted once (Figure 5's x-axis).
	if got := len(Catalog()); got != 42 {
		t.Fatalf("Catalog has %d bars, want 42", got)
	}
	if got := len(CatalogMulticore()); got != 44 {
		t.Fatalf("CatalogMulticore has %d bars, want 44 (fig 8)", got)
	}
	seen := map[string]bool{}
	for _, s := range CatalogMulticore() {
		if seen[s.Name] {
			t.Fatalf("duplicate app name %q", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("MG"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("fibo"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("openweb"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Fatal("expected error")
	}
	if len(Names()) != 44 {
		t.Fatalf("Names = %d", len(Names()))
	}
}

// TestEveryAppMakesProgress launches each catalog app alone on a small
// machine under both schedulers and requires nonzero work.
func TestEveryAppMakesProgress(t *testing.T) {
	for _, spec := range Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			for _, mk := range []struct {
				name string
				m    *sim.Machine
			}{
				{"cfs", cfsMachine(topo.Small(), 11)},
				{"ule", uleMachine(topo.Small(), 11)},
			} {
				in := spec.New(mk.m, Env{Cores: mk.m.Topo.NCores()})
				mk.m.Run(ShellWarmup + 8*time.Second)
				if in.Ops() == 0 {
					t.Errorf("%s on %s made no progress", spec.Name, mk.name)
				}
				if in.Master == nil {
					t.Errorf("%s on %s never launched", spec.Name, mk.name)
				}
			}
		})
	}
}

func TestOpenLoopWebServesAndRecordsLatency(t *testing.T) {
	m := cfsMachine(topo.Small(), 3)
	in := OpenLoopWeb(OpenLoopConfig{Rate: 2000}).New(m, Env{Cores: 8})
	m.Run(ShellWarmup + 3*time.Second)
	if in.Ops() == 0 {
		t.Fatal("openweb served no requests")
	}
	if in.Latency == nil || in.Latency.Count() == 0 {
		t.Fatal("openweb recorded no latency samples")
	}
	// Offered load is ~2000 req/s over ~3 s; a lightly loaded 8-core box
	// must complete most of it.
	if in.Ops() < 4000 {
		t.Fatalf("openweb completed %d requests, want ≥4000", in.Ops())
	}
}

func TestFiboIsPureCompute(t *testing.T) {
	m := cfsMachine(topo.SingleCore(), 1)
	in := Fibo().New(m, Env{Cores: 1})
	m.Run(ShellWarmup + 5*time.Second)
	if in.Master.SleepTime > time.Millisecond {
		t.Fatalf("fibo slept %v", in.Master.SleepTime)
	}
	// ~5s of compute minus shell overhead.
	if in.Master.RunTime < 4500*time.Millisecond {
		t.Fatalf("fibo ran only %v", in.Master.RunTime)
	}
}

func TestSysbenchMasterForkDegradation(t *testing.T) {
	// §5.2: workers forked early are interactive under ULE; later ones
	// batch. Verify the split exists with the default 128-thread config.
	m := uleMachine(topo.SingleCore(), 1)
	u := m.Scheduler().(*ule.Sched)
	cfg := DefaultSysbench()
	cfg.Threads = 128
	in := Sysbench(cfg).New(m, Env{Cores: 1})
	// Give the master time to fork all 128 workers (128×15ms ≈ 2s of CPU,
	// shared with running workers) and the workers time to classify.
	m.Run(ShellWarmup + 30*time.Second)
	if len(in.Workers) != 128 {
		t.Fatalf("forked %d/128 workers", len(in.Workers))
	}
	inter, batch := 0, 0
	for _, w := range in.Workers {
		if u.Interactive(w) {
			inter++
		} else {
			batch++
		}
	}
	if inter < 40 || batch < 20 {
		t.Fatalf("interactive/batch split = %d/%d; want a real split (paper: 80/48)", inter, batch)
	}
}

func TestApacheBatchingOnULEvsPreemptionOnCFS(t *testing.T) {
	run := func(m *sim.Machine) (ops uint64, preempts uint64) {
		in := Apache().New(m, Env{Cores: 1})
		m.Run(ShellWarmup + 10*time.Second)
		var ab *sim.Thread
		for _, w := range in.Workers {
			if w.Name == "ab" {
				ab = w
			}
		}
		if ab == nil {
			t.Fatal("no ab thread")
		}
		return in.Ops(), m.Trace.PreemptionsOf(ab.ID)
	}
	cm := cfsMachine(topo.SingleCore(), 3)
	uops, upre := uint64(0), uint64(0)
	cops, cpre := run(cm)
	um := uleMachine(topo.SingleCore(), 3)
	uops, upre = run(um)
	if cpre == 0 {
		t.Fatalf("CFS never preempted ab (got %d)", cpre)
	}
	if upre != 0 {
		t.Fatalf("ULE preempted ab %d times; preemption is disabled", upre)
	}
	if uops <= cops {
		t.Fatalf("apache ops ULE=%d vs CFS=%d; ULE should win (paper: +40%%)", uops, cops)
	}
	_ = uops
}

func TestMGOneThreadPerCoreULE(t *testing.T) {
	m := uleMachine(topo.Small(), 5)
	StartKernelNoise(m, 15*time.Millisecond, 300*time.Microsecond)
	in := NASMG().New(m, Env{Cores: 8})
	m.Run(ShellWarmup + 10*time.Second)
	if len(in.Workers) != 8 {
		t.Fatalf("MG forked %d ranks", len(in.Workers))
	}
	// Each rank should sit on its own core.
	coreSet := map[int]int{}
	for _, w := range in.Workers {
		if w.Core() != nil {
			coreSet[w.Core().ID]++
		}
	}
	for c, n := range coreSet {
		if n > 1 {
			t.Fatalf("ULE stacked %d MG ranks on core %d", n, c)
		}
	}
}

func TestHackbenchCompletes(t *testing.T) {
	m := cfsMachine(topo.Small(), 9)
	in := Hackbench(2, 100).New(m, Env{Cores: 8})
	ok := m.RunUntil(in.Done, ShellWarmup+30*time.Second)
	if !ok {
		t.Fatalf("hackbench did not finish; ops=%d", in.Ops())
	}
	// 2 groups × 20 receivers × 100 messages.
	if in.Ops() != 2*20*100 {
		t.Fatalf("ops = %d, want 4000", in.Ops())
	}
	if in.Perf() <= 0 {
		t.Fatal("no perf")
	}
}

func TestScimarkSlowerOnULE(t *testing.T) {
	// §5.3: the JVM service threads are interactive under ULE and delay
	// the compute thread; CFS's fairness bounds them.
	run := func(m *sim.Machine) float64 {
		in := Scimark(1).New(m, Env{Cores: 1})
		m.Run(ShellWarmup + 15*time.Second)
		return in.Perf()
	}
	c := run(cfsMachine(topo.SingleCore(), 7))
	u := run(uleMachine(topo.SingleCore(), 7))
	if u >= c {
		t.Fatalf("scimark ULE=%.1f vs CFS=%.1f ops/s; ULE should be slower", u, c)
	}
	ratio := u / c
	if ratio > 0.95 {
		t.Fatalf("scimark ULE/CFS = %.2f; want a visible gap (paper: 0.64)", ratio)
	}
}

func TestShellStaysInteractive(t *testing.T) {
	m := uleMachine(topo.SingleCore(), 1)
	u := m.Scheduler().(*ule.Sched)
	in := Fibo().New(m, Env{Cores: 1})
	m.Run(ShellWarmup + 5*time.Second)
	var shell *sim.Thread
	for _, th := range m.Threads() {
		if th.Group == "shell" {
			shell = th
		}
	}
	if shell == nil {
		t.Fatal("no shell thread")
	}
	if sc := u.Score(shell); sc > 30 {
		t.Fatalf("shell score = %d; bash-alike must be interactive", sc)
	}
	// And fibo's master is batch by now.
	if sc := u.Score(in.Master); sc < 60 {
		t.Fatalf("fibo score = %d; must be batch", sc)
	}
}
