// Package apps models the paper's 37-application evaluation suite plus
// fibo and hackbench (§4.2): Phoronix applications, the NAS and PARSEC
// suites, sysbench/MySQL and RocksDB servers, and the apache/ab pair. Each
// model is a parameterised composition of workload state machines encoding
// the behavioural skeleton the paper describes (sleep/run/fork/barrier/lock
// patterns); DESIGN.md §5 documents the mapping.
//
// Every application is launched from a "shell" thread that mostly sleeps —
// under ULE the master inherits this interactive history at fork, which is
// the starting point of the paper's §5.2 starvation analysis.
package apps

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Env parameterises an application instance.
type Env struct {
	// Cores is the machine width; thread counts scale with it.
	Cores int
	// StartAt is when the shell forks the application master. Shells need
	// ~2 s of sleep history first for realistic ULE inheritance; Launch
	// enforces a floor.
	StartAt time.Duration
}

// ShellWarmup is the minimum shell age before an app launches; the shell
// sleeps (like bash awaiting input) and accumulates the interactive history
// its children inherit.
const ShellWarmup = 2 * time.Second

// Instance is one running application.
type Instance struct {
	// Name is the instance name (catalog name, possibly suffixed).
	Name string
	// Group is the cgroup/application identifier for CFS group fairness.
	Group string

	// Latency is the request-latency histogram for server apps (nil
	// otherwise).
	Latency *stats.Histogram

	m         *sim.Machine
	ops       uint64
	startedAt time.Duration
	doneAt    time.Duration
	done      bool

	// Master is the application's first thread (after the shell).
	Master *sim.Thread
	// Workers are registered worker threads, for per-thread probes.
	Workers []*sim.Thread
}

// AddOp records one unit of useful work.
func (in *Instance) AddOp() { in.ops++ }

// AddOps records n units of useful work.
func (in *Instance) AddOps(n int) { in.ops += uint64(n) }

// Ops returns the work units completed so far.
func (in *Instance) Ops() uint64 { return in.ops }

// MarkDone freezes the completion time (run-to-completion apps).
func (in *Instance) MarkDone() {
	if !in.done {
		in.done = true
		in.doneAt = in.m.Now()
	}
}

// Done reports whether the app completed.
func (in *Instance) Done() bool { return in.done }

// Perf is the paper's §5.3 metric: operations per second for servers and
// throughput apps — equivalently 1/execution-time per work unit for
// run-to-completion apps. Higher is better.
func (in *Instance) Perf() float64 {
	end := in.m.Now()
	if in.done {
		end = in.doneAt
	}
	elapsed := (end - in.startedAt).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(in.ops) / elapsed
}

// Spec is a catalog entry: a named application constructor.
type Spec struct {
	// Name as the paper's figures label it.
	Name string
	// New launches the application (via a shell) and returns its instance.
	New func(m *sim.Machine, env Env) *Instance
}

// shellProg mostly sleeps, then forks the app master at the requested
// time, then goes back to sleeping forever — bash.
type shellProg struct {
	at       time.Duration
	spawn    func(ctx *sim.Ctx)
	launched bool
	burst    bool
}

// Next implements sim.Program.
func (s *shellProg) Next(ctx *sim.Ctx) sim.Op {
	if s.launched {
		return sim.Sleep(time.Hour)
	}
	if ctx.Now() >= s.at {
		s.launched = true
		s.spawn(ctx)
		return sim.Sleep(time.Hour)
	}
	// Interactive idle: a tiny burst then sleep towards the launch time.
	if !s.burst {
		s.burst = true
		return sim.Run(200 * time.Microsecond)
	}
	s.burst = false
	remaining := s.at - ctx.Now()
	slp := 100 * time.Millisecond
	if remaining < slp {
		slp = remaining
	}
	return sim.Sleep(slp)
}

// Launch spawns a shell that forks prog as the app's master thread at
// env.StartAt (floored to ShellWarmup), wiring the instance bookkeeping.
func Launch(m *sim.Machine, name string, env Env, master func(in *Instance) sim.Program) *Instance {
	in := &Instance{Name: name, Group: name, m: m}
	at := env.StartAt
	if at < ShellWarmup {
		at = ShellWarmup
	}
	sh := &shellProg{at: at}
	sh.spawn = func(ctx *sim.Ctx) {
		in.startedAt = ctx.Now()
		in.Master = ctx.Fork(name+"-master", in.Group, 0, master(in))
	}
	m.StartThread(name+"-shell", "shell", 0, sh)
	return in
}

// StartKernelNoise spawns one kworker per core (pinned, group "kernel"):
// the short periodic bursts whose load micro-changes §6.3 blames for CFS's
// MG placement mistakes. Returns the threads for inspection.
func StartKernelNoise(m *sim.Machine, period, burst time.Duration) []*sim.Thread {
	var out []*sim.Thread
	for i := range m.Cores {
		t := m.StartThreadCfg(sim.ThreadConfig{
			Name:   fmt.Sprintf("kworker/%d", i),
			Group:  "kernel",
			Pinned: []int{i},
			Prog:   &kworkerProg{period: period, burst: burst},
		})
		out = append(out, t)
	}
	return out
}

// kworkerProg is a jittered periodic housekeeping burst. Burst length
// jitters up to 4×, occasionally exceeding CFS's cache-hot window so the
// balancer sees a real micro-imbalance.
type kworkerProg struct {
	period, burst time.Duration
	ran           bool
}

// Next implements sim.Program.
func (k *kworkerProg) Next(ctx *sim.Ctx) sim.Op {
	if k.ran {
		k.ran = false
		return sim.Sleep(k.period + time.Duration(ctx.Rand().Int63n(int64(k.period))))
	}
	k.ran = true
	return sim.Run(k.burst + time.Duration(ctx.Rand().Int63n(int64(3*k.burst))))
}
