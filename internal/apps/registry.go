package apps

import "fmt"

// Catalog returns the 37 applications of Figures 5 and 8, in the paper's
// bar order. Hackbench variants (Figure 8 only) are appended by
// CatalogMulticore.
func Catalog() []Spec {
	specs := []Spec{
		BuildApache(),
		BuildPHP(),
		SevenZip(),
		Gzip(),
		CRay(),
		DCraw(),
		Himeno(),
		Hmmer(),
	}
	for v := 1; v <= 6; v++ {
		specs = append(specs, Scimark(v))
	}
	for v := 1; v <= 3; v++ {
		specs = append(specs, John(v))
	}
	specs = append(specs,
		Apache(),
		NASBT(), NASCG(), NASDC(), NASEP(), NASFT(),
		NASIS(), NASLU(), NASMG(), NASSP(), NASUA(),
		SysbenchDefault(),
		RocksDB(),
		Blackscholes(), Bodytrack(), Canneal(), Facesim(),
		Ferret(), Fluidanimate(), Freqmine(), Raytrace(),
		Streamcluster(), Swaptions(), Vips(), X264(),
	)
	return specs
}

// CatalogMulticore is the Figure 8 bar list: the 37 applications plus the
// two hackbench configurations.
func CatalogMulticore() []Spec {
	specs := Catalog()
	specs = append(specs,
		Hackbench(800, 40), // Hackb-800: 32,000 threads
		Hackbench(10, 400), // Hackb-10: 400 threads
	)
	return specs
}

// ByName finds a catalog entry (including fibo and hackbench variants).
func ByName(name string) (Spec, error) {
	for _, s := range CatalogMulticore() {
		if s.Name == name {
			return s, nil
		}
	}
	if name == "fibo" {
		return Fibo(), nil
	}
	if name == "openweb" {
		return OpenLoopWeb(OpenLoopConfig{}), nil
	}
	return Spec{}, fmt.Errorf("apps: unknown application %q", name)
}

// Names lists all catalog names (multicore set).
func Names() []string {
	var out []string
	for _, s := range CatalogMulticore() {
		out = append(out, s.Name)
	}
	return out
}
