package apps

import (
	"fmt"
	"time"

	"repro/internal/ipc"
	"repro/internal/sim"
	"repro/internal/workload"
)

// OpenLoopConfig parameterises the open-loop web front-end model: a worker
// pool draining a request queue fed by a workload.OpenLoop traffic source at
// a fixed offered rate, independent of how fast the server keeps up. It is
// the tail-latency-first counterpart of the closed-loop sysbench model: when
// the scheduler delays a worker, the queue grows and the p99 shows it.
type OpenLoopConfig struct {
	// Workers is the serving thread count; 0 defaults to 2× cores.
	Workers int
	// Rate is the offered load in requests per simulated second; 0
	// defaults to 60% of the machine's service capacity.
	Rate float64
	// Dist selects the inter-arrival distribution (default Poisson).
	Dist workload.ArrivalDist
	// Service is one request's CPU demand (default 300µs).
	Service time.Duration
	// ServiceJitterPct varies Service per request.
	ServiceJitterPct int
	// Seed seeds the arrival generator; 0 derives one from the machine's
	// PRNG at launch.
	Seed int64
}

// OpenLoopWeb builds the open-loop server with the given config. The master
// forks the worker pool like any server app (inheriting shell history, the
// §5.2 ULE mechanism), then the arrival timer chain starts — from timer
// context, so injection costs no simulated CPU and the offered load is
// unaffected by scheduling.
func OpenLoopWeb(cfg OpenLoopConfig) Spec {
	return Spec{Name: "openweb", New: func(m *sim.Machine, env Env) *Instance {
		// Defaults depend on env.Cores, so they resolve into locals here:
		// one Spec may launch on machines of different widths (and from
		// parallel pool trials), and the captured cfg must stay untouched.
		cores := env.Cores
		if cores <= 0 {
			cores = 1
		}
		workers := cfg.Workers
		if workers <= 0 {
			workers = 2 * cores
		}
		service := cfg.Service
		if service <= 0 {
			service = 300 * time.Microsecond
		}
		rate := cfg.Rate
		if rate <= 0 {
			rate = 0.6 * float64(cores) / service.Seconds()
		}
		dist := cfg.Dist
		if dist == "" {
			dist = workload.Poisson
		}
		return Launch(m, "openweb", env, func(in *Instance) sim.Program {
			q := ipc.NewReqQueue("openweb")
			in.Latency = q.Latency
			seed := cfg.Seed
			if seed == 0 {
				seed = m.Rand().Int63n(1<<62) + 1
			}
			return &workload.Forker{
				N:        workers,
				InitCost: 500 * time.Microsecond,
				Child: func(i int) (string, sim.Program) {
					return fmt.Sprintf("web-%d", i), &workload.ServerWorker{Q: q, OnDone: in.AddOp}
				},
				OnForked: func(i int, t *sim.Thread) {
					in.Workers = append(in.Workers, t)
					if i == workers-1 {
						workload.OpenLoop{
							Q:       q,
							Gen:     workload.NewArrivalGen(dist, time.Duration(float64(time.Second)/rate), seed),
							Service: service, ServiceJitterPct: cfg.ServiceJitterPct,
						}.StartOn(m)
					}
				},
			}
		})
	}}
}
