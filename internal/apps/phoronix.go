package apps

import (
	"fmt"
	"time"

	"repro/internal/ipc"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fibo is the paper's synthetic CPU hog: one thread, never sleeps (§5.1).
func Fibo() Spec {
	return Spec{Name: "fibo", New: func(m *sim.Machine, env Env) *Instance {
		return Launch(m, "fibo", env, func(in *Instance) sim.Program {
			return &workload.Loop{Burst: 10 * time.Millisecond, OnOp: in.AddOp}
		})
	}}
}

// BuildApache models a compilation benchmark: the master forks a stream of
// compile jobs (short CPU bursts with I/O stalls); finished children refund
// their runtime to the master under ULE.
func BuildApache() Spec { return buildApp("build-apache", 6, 8*time.Millisecond, 10) }

// BuildPHP is the larger compilation benchmark.
func BuildPHP() Spec { return buildApp("build-php", 5, 12*time.Millisecond, 12) }

func buildApp(name string, jobsPerCore int, burst time.Duration, burstsPerJob int) Spec {
	return Spec{Name: name, New: func(m *sim.Machine, env Env) *Instance {
		jobs := jobsPerCore * env.Cores
		return Launch(m, name, env, func(in *Instance) sim.Program {
			remaining := jobs
			return &workload.Forker{
				N:        jobs,
				InitCost: time.Millisecond,
				Child: func(i int) (string, sim.Program) {
					return fmt.Sprintf("cc-%d", i), &workload.FiniteCompute{
						Burst: burst, JitterPct: 20, N: burstsPerJob,
						IOSleep: 2 * time.Millisecond,
						OnOp:    in.AddOp,
						OnDone: func() {
							remaining--
							if remaining == 0 {
								in.MarkDone()
							}
						},
					}
				},
				OnForked: func(i int, t *sim.Thread) { in.Workers = append(in.Workers, t) },
			}
		})
	}}
}

// SevenZip is parallel compression: a light feeder and per-core compressor
// workers over a bounded chunk pipe.
func SevenZip() Spec {
	return Spec{Name: "7zip", New: func(m *sim.Machine, env Env) *Instance {
		return Launch(m, "7zip", env, func(in *Instance) sim.Program {
			pipe := ipc.NewPipe("7zip.chunks", 16)
			return &workload.Forker{
				N:        env.Cores,
				InitCost: 500 * time.Microsecond,
				Child: func(i int) (string, sim.Program) {
					return fmt.Sprintf("lzma-%d", i), &workload.PipelineStage{
						In: pipe, Cost: 4 * time.Millisecond, JitterPct: 15, OnItem: in.AddOp,
					}
				},
				OnForked: func(i int, t *sim.Thread) { in.Workers = append(in.Workers, t) },
				Then:     &workload.Source{Out: pipe, Cost: 150 * time.Microsecond},
			}
		})
	}}
}

// Gzip is single-stream compression: a reader feeding one compressor.
func Gzip() Spec {
	return Spec{Name: "gzip", New: func(m *sim.Machine, env Env) *Instance {
		return Launch(m, "gzip", env, func(in *Instance) sim.Program {
			pipe := ipc.NewPipe("gzip.blocks", 4)
			return &workload.Forker{
				N:        1,
				InitCost: 500 * time.Microsecond,
				Child: func(i int) (string, sim.Program) {
					return "deflate", &workload.PipelineStage{
						In: pipe, Cost: 3 * time.Millisecond, JitterPct: 10, OnItem: in.AddOp,
					}
				},
				OnForked: func(i int, t *sim.Thread) { in.Workers = append(in.Workers, t) },
				Then:     &workload.Source{Out: pipe, Cost: 200 * time.Microsecond},
			}
		})
	}}
}

// CRayProbe, when set, is called with the worker index each time a c-ray
// worker passes the cascading barrier (test/figure instrumentation).
var CRayProbe func(i int)

// CRay is the §6.2 study application: 16 threads per core released through
// a cascading chain (thread i wakes thread i+1), then pure rendering.
func CRay() Spec {
	return Spec{Name: "c-ray", New: func(m *sim.Machine, env Env) *Instance {
		return Launch(m, "c-ray", env, func(in *Instance) sim.Program {
			n := 16 * env.Cores
			wqs := make([]*sim.WaitQueue, n)
			released := make([]bool, n)
			for i := range wqs {
				wqs[i] = sim.NewWaitQueue(fmt.Sprintf("c-ray.start.%d", i))
			}
			release := func(ctx *sim.Ctx, i int) {
				released[i] = true
				ctx.Broadcast(wqs[i])
			}
			return &workload.Forker{
				N: n,
				// 4 ms of scene setup per thread: the fork loop spans the
				// master's interactivity crossing, classifying earlier
				// threads interactive and later ones batch (§6.2).
				InitCost: 4 * time.Millisecond,
				Child: func(i int) (string, sim.Program) {
					cw := &workload.CascadeWorker{
						Self: wqs[i], Released: &released[i],
						Chunk:   2 * time.Millisecond,
						OnChunk: in.AddOp,
					}
					if i+1 < n {
						next := i + 1
						cw.ReleaseNext = func(ctx *sim.Ctx) { release(ctx, next) }
					}
					if CRayProbe != nil {
						idx := i
						prev := cw.OnAwake
						cw.OnAwake = func() {
							if prev != nil {
								prev()
							}
							CRayProbe(idx)
						}
					}
					return fmt.Sprintf("render-%d", i), cw
				},
				OnForked: func(i int, t *sim.Thread) { in.Workers = append(in.Workers, t) },
				Then: sim.ProgramFunc(func(ctx *sim.Ctx) sim.Op {
					// Kick the cascade, then behave like a joined main().
					release(ctx, 0)
					return sim.Sleep(time.Hour)
				}),
			}
		})
	}}
}

// DCraw is RAW photo conversion: single-threaded compute with periodic I/O.
func DCraw() Spec {
	return Spec{Name: "dcraw", New: func(m *sim.Machine, env Env) *Instance {
		return Launch(m, "dcraw", env, func(in *Instance) sim.Program {
			return &workload.FiniteCompute{
				Burst: 6 * time.Millisecond, JitterPct: 10, N: 1 << 30,
				IOSleep: 500 * time.Microsecond, OnOp: in.AddOp,
			}
		})
	}}
}

// Himeno is a memory-bound pressure solver: one long-burst compute thread.
func Himeno() Spec { return singleCompute("himeno", 15*time.Millisecond) }

// Hmmer is profile HMM search: one medium-burst compute thread.
func Hmmer() Spec { return singleCompute("hmmer", 5*time.Millisecond) }

func singleCompute(name string, burst time.Duration) Spec {
	return Spec{Name: name, New: func(m *sim.Machine, env Env) *Instance {
		return Launch(m, name, env, func(in *Instance) sim.Program {
			return &workload.Loop{Burst: burst, JitterPct: 5, OnOp: in.AddOp}
		})
	}}
}

// Scimark is the §5.3 case study: a single Java compute thread plus JVM
// service threads (GC/JIT) that wake periodically and spin-poll watching
// the mutator's progress. Six variants differ in kernel size and service
// aggressiveness; ULE's interactive classification of the service threads
// lets them exhaust their spin budgets, delaying the compute thread.
func Scimark(variant int) Spec {
	// (poll period, spin budget, kernel burst) per variant. Budgets larger
	// than CFS's ~10 ms effective preemption window differentiate the
	// schedulers: CFS cuts the poll short once the mutator's vruntime
	// catches up; ULE lets the interactive poller exhaust the budget.
	params := []struct {
		period, budget, burst time.Duration
	}{
		{50 * time.Millisecond, 20 * time.Millisecond, 2 * time.Millisecond},
		{50 * time.Millisecond, 14 * time.Millisecond, 1500 * time.Microsecond},
		{60 * time.Millisecond, 10 * time.Millisecond, 2500 * time.Microsecond},
		{55 * time.Millisecond, 18 * time.Millisecond, 2 * time.Millisecond},
		{80 * time.Millisecond, 12 * time.Millisecond, 3 * time.Millisecond},
		{60 * time.Millisecond, 16 * time.Millisecond, 2 * time.Millisecond},
	}
	p := params[(variant-1)%len(params)]
	name := fmt.Sprintf("scimark2-(%d)", variant)
	return Spec{Name: name, New: func(m *sim.Machine, env Env) *Instance {
		return Launch(m, name, env, func(in *Instance) sim.Program {
			progress := sim.NewWaitQueue(name + ".progress")
			return &workload.Forker{
				N:        2, // two JVM service threads
				InitCost: time.Millisecond,
				Child: func(i int) (string, sim.Program) {
					return fmt.Sprintf("jvm-svc-%d", i), &workload.SpinPoller{
						Progress: progress,
						Period:   p.period + time.Duration(i)*time.Millisecond,
						Budget:   p.budget,
					}
				},
				OnForked: func(i int, t *sim.Thread) { in.Workers = append(in.Workers, t) },
				Then: &workload.Loop{
					Burst: p.burst, JitterPct: 10, OnOp: in.AddOp, Progress: progress,
				},
			}
		})
	}}
}

// John is john-the-ripper password cracking: per-core independent compute
// workers; three variants are three hash kernels.
func John(variant int) Spec {
	bursts := []time.Duration{3 * time.Millisecond, 5 * time.Millisecond, 8 * time.Millisecond}
	b := bursts[(variant-1)%len(bursts)]
	name := fmt.Sprintf("john-(%d)", variant)
	return Spec{Name: name, New: func(m *sim.Machine, env Env) *Instance {
		return Launch(m, name, env, func(in *Instance) sim.Program {
			return &workload.Forker{
				N:        env.Cores,
				InitCost: time.Millisecond,
				Child: func(i int) (string, sim.Program) {
					return fmt.Sprintf("crack-%d", i), &workload.Loop{
						Burst: b, JitterPct: 5, OnOp: in.AddOp,
					}
				},
				OnForked: func(i int, t *sim.Thread) { in.Workers = append(in.Workers, t) },
			}
		})
	}}
}
