package battle

// Markdown rendering of battle reports: the human-readable "who wins
// where, by how much" view — per-cell means with confidence intervals,
// head-to-head verdicts, and the scoreboard with a one-line conclusion.
// The rendering is a pure function of the report, so markdown output is
// byte-identical wherever the report is.

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/scenario"
)

// Markdown renders the report as a GitHub-flavoured markdown battle
// matrix.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Battle matrix: %s\n\n", r.Scenario)
	if r.Description != "" {
		fmt.Fprintf(&b, "%s\n\n", r.Description)
	}
	fmt.Fprintf(&b, "%d seeds %v · %.0f%% bootstrap CIs (%d resamples) · base seed %d · scale %s\n",
		len(r.Seeds), r.Seeds, r.Confidence*100, r.BootstrapIters, r.BaseSeed, fmtF(r.CLIScale))
	for gi := range r.Groups {
		g := &r.Groups[gi]
		fmt.Fprintf(&b, "\n## %d cores · scale %s\n\n", g.Cores, fmtF(g.Scale))
		g.cellTable(&b)
		g.pairTable(&b)
		g.scoreboard(&b)
	}
	return b.String()
}

// cellTable writes the per-scheduler summary table: one row per metric,
// one column per scheduler, cells as "mean [ci_lo, ci_hi]".
func (g *Group) cellTable(b *strings.Builder) {
	fmt.Fprintf(b, "| metric |")
	for _, s := range g.Schedulers {
		fmt.Fprintf(b, " %s |", s)
	}
	fmt.Fprintf(b, "\n|---|")
	for range g.Schedulers {
		fmt.Fprintf(b, "---|")
	}
	fmt.Fprintln(b)
	for mi := range g.Metrics {
		mt := &g.Metrics[mi]
		fmt.Fprintf(b, "| %s %s |", mt.Metric, arrow(mt.Better))
		for _, c := range mt.Cells {
			fmt.Fprintf(b, " %s [%s, %s] |", fmtF(c.Sample.Mean), fmtF(c.CILo), fmtF(c.CIHi))
		}
		fmt.Fprintln(b)
	}
}

// pairTable writes every head-to-head verdict.
func (g *Group) pairTable(b *strings.Builder) {
	any := false
	for mi := range g.Metrics {
		if len(g.Metrics[mi].Pairs) > 0 {
			any = true
			break
		}
	}
	if !any {
		return
	}
	fmt.Fprintf(b, "\n### Head-to-head\n\n")
	fmt.Fprintln(b, "| metric | matchup | verdict | margin | Δ mean [CI] | effect |")
	fmt.Fprintln(b, "|---|---|---|---|---|---|")
	for mi := range g.Metrics {
		mt := &g.Metrics[mi]
		for _, p := range mt.Pairs {
			verdict := "tie"
			margin := "—"
			if p.Winner != "" {
				verdict = fmt.Sprintf("**%s**", p.Winner)
				margin = fmt.Sprintf("%.1f%%", p.MarginPct)
			}
			fmt.Fprintf(b, "| %s %s | %s vs %s | %s | %s | %s [%s, %s] | %s |\n",
				mt.Metric, arrow(mt.Better), p.A, p.B, verdict, margin,
				fmtF(p.DeltaMean), fmtF(p.DeltaCILo), fmtF(p.DeltaCIHi), fmtF(p.EffectSize))
		}
	}
}

// scoreboard writes the tally and the group's one-line conclusion.
func (g *Group) scoreboard(b *strings.Builder) {
	if len(g.Scoreboard) < 2 {
		return
	}
	fmt.Fprintf(b, "\n### Scoreboard\n\n")
	fmt.Fprintln(b, "| scheduler | wins | losses | ties |")
	fmt.Fprintln(b, "|---|---|---|---|")
	for _, s := range g.Scoreboard {
		fmt.Fprintf(b, "| %s | %d | %d | %d |\n", s.Scheduler, s.Wins, s.Losses, s.Ties)
	}
	fmt.Fprintf(b, "\n%s\n", g.conclusion())
}

// conclusion phrases the scoreboard as the paper would: a leader when one
// scheduler out-wins the rest, the no-dominator finding otherwise.
func (g *Group) conclusion() string {
	best, runnerUp := -1, -1
	var leader string
	for _, s := range g.Scoreboard {
		switch {
		case s.Wins > best:
			runnerUp = best
			best, leader = s.Wins, s.Scheduler
		case s.Wins > runnerUp:
			runnerUp = s.Wins
		}
	}
	if best > runnerUp && best > 0 {
		undefeated := ""
		for _, s := range g.Scoreboard {
			if s.Scheduler == leader && s.Losses == 0 {
				undefeated = ", undefeated"
			}
		}
		return fmt.Sprintf("`%s` leads this matchup with %d significant wins%s.", leader, best, undefeated)
	}
	return "No scheduler dominates: wins split across metrics — the paper's conclusion."
}

// arrow marks the winning direction in table rows.
func arrow(better string) string {
	if better == scenario.Higher {
		return "↑"
	}
	return "↓"
}

// fmtF renders a float compactly and deterministically: 4 significant
// digits, no exponent noise for the usual magnitudes.
func fmtF(v float64) string {
	return strconv.FormatFloat(v, 'g', 4, 64)
}
