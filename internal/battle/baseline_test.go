package battle

import (
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/scenario"
)

// writeMini writes the mini scenario spec to disk so Check can re-load it
// by path, and returns a baseline snapshotted from a fresh battle run.
func writeMini(t *testing.T, opt Options) (path string, base *Baseline) {
	t.Helper()
	path = t.TempDir() + "/mini-battle.json"
	if err := os.WriteFile(path, []byte(miniSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	rep := miniBattle(t, opt)
	base = NewBaseline([]*Report{rep}, opt, map[string]string{rep.Scenario: path})
	return path, base
}

func TestBaselineRoundTrip(t *testing.T) {
	opt := Options{Replications: 3}
	_, base := writeMini(t, opt)
	if base.Schema != BaselineSchema || base.Replications != 3 || base.CLIScale != 1 {
		t.Fatalf("baseline header = %+v", base)
	}
	if len(base.Scenarios) != 1 || len(base.Scenarios[0].Groups) != 1 {
		t.Fatalf("baseline shape = %+v", base.Scenarios)
	}
	if len(base.Scenarios[0].Groups[0].Entries) == 0 {
		t.Fatal("baseline has no cells")
	}

	file := t.TempDir() + "/base.json"
	if err := WriteBaseline(file, base); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(file)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Replications != base.Replications || len(loaded.Scenarios) != 1 {
		t.Fatalf("loaded = %+v", loaded)
	}

	// A baseline with the wrong schema must be rejected.
	if err := os.WriteFile(file, []byte(`{"schema": "bogus/v1", "scenarios": [{}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(file); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("bad schema accepted: %v", err)
	}
}

// TestCheckSelfConsistent: an unchanged simulator re-runs the baseline
// bit-for-bit, so checking a fresh snapshot against itself passes.
func TestCheckSelfConsistent(t *testing.T) {
	_, base := writeMini(t, Options{Replications: 3})
	regs, reports, err := Check(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("self-check regressed: %v", regs)
	}
	if len(reports) != 1 || reports[0].Scenario != "mini-battle" {
		t.Fatalf("check reports = %+v", reports)
	}
}

// TestCheckDetectsRegression: doctoring a baseline cell so the current run
// sits significantly on the worse side must fire the gate — in both
// metric directions — while movement in the better direction stays quiet.
func TestCheckDetectsRegression(t *testing.T) {
	_, base := writeMini(t, Options{Replications: 3})
	entries := base.Scenarios[0].Groups[0].Entries
	doctor := func(metric, sched string, f func(*BaselineEntry)) {
		for i := range entries {
			if entries[i].Metric == metric && entries[i].Scheduler == sched {
				f(&entries[i])
				return
			}
		}
		t.Fatalf("no baseline cell %s/%s", sched, metric)
	}

	// Higher-better metric: pretend throughput used to be 10x.
	doctor("ops_per_sec", "cfs", func(e *BaselineEntry) {
		e.Mean *= 10
		e.CILo *= 10
		e.CIHi *= 10
	})
	regs, _, err := Check(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "ops_per_sec" || regs[0].Scheduler != "cfs" {
		t.Fatalf("regressions = %v, want the doctored throughput cell", regs)
	}
	if msg := regs[0].String(); !strings.Contains(msg, "below baseline CI") {
		t.Fatalf("regression message: %s", msg)
	}

	// Restore, then doctor a lower-better metric: pretend p99 used to be
	// far smaller.
	doctor("ops_per_sec", "cfs", func(e *BaselineEntry) {
		e.Mean /= 10
		e.CILo /= 10
		e.CIHi /= 10
	})
	doctor("p99_us", "ule", func(e *BaselineEntry) {
		e.Mean /= 100
		e.CILo /= 100
		e.CIHi /= 100
	})
	regs, _, err = Check(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "p99_us" || regs[0].Better != scenario.Lower {
		t.Fatalf("regressions = %v, want the doctored p99 cell", regs)
	}

	// Movement in the better direction is not a regression: a baseline
	// whose p99 was far WORSE than today's must pass.
	doctor("p99_us", "ule", func(e *BaselineEntry) {
		e.Mean *= 10000
		e.CILo *= 10000
		e.CIHi *= 10000
	})
	regs, _, err = Check(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regs)
	}
}

// TestCheckHonoursBaselineBaseSeed: a baseline captured under a non-zero
// -seed must self-check cleanly from a process running with the default
// seed — Check installs the recorded base seed for the re-run and
// restores the caller's afterwards.
func TestCheckHonoursBaselineBaseSeed(t *testing.T) {
	core.SetBaseSeed(7)
	path, base := writeMini(t, Options{Replications: 3})
	core.SetBaseSeed(0)
	defer core.SetBaseSeed(0)
	if base.BaseSeed != 7 {
		t.Fatalf("baseline base seed = %d, want 7", base.BaseSeed)
	}
	regs, reports, err := Check(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("seed-7 baseline regressed under a seed-0 checker: %v", regs)
	}
	if reports[0].BaseSeed != 7 {
		t.Fatalf("check re-ran under base seed %d, want the baseline's 7", reports[0].BaseSeed)
	}
	if core.BaseSeed() != 0 {
		t.Fatalf("Check leaked base seed %d", core.BaseSeed())
	}

	// Sanity: the same snapshot does NOT reproduce under the wrong seed —
	// the samples genuinely differ, which is what makes restoring the
	// recorded seed load-bearing. (Means may or may not drift outside CIs,
	// so compare raw per-seed values instead of gate verdicts.)
	var seed0 *Report
	func() {
		sp, err := scenario.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if seed0, err = Run(sp, Options{Replications: 3}); err != nil {
			t.Fatal(err)
		}
	}()
	same := true
	g7, g0 := reports[0].Groups[0], seed0.Groups[0]
	for mi := range g7.Metrics {
		for ci := range g7.Metrics[mi].Cells {
			for vi, v := range g7.Metrics[mi].Cells[ci].Values {
				if g0.Metrics[mi].Cells[ci].Values[vi] != v {
					same = false
				}
			}
		}
	}
	if same {
		t.Fatal("seed 7 and seed 0 runs produced identical samples; base seed is not reaching the trials")
	}
}

// TestCheckMissingCell: a baseline cell the re-run no longer produces is a
// failure, not a silent skip.
func TestCheckMissingCell(t *testing.T) {
	_, base := writeMini(t, Options{Replications: 3})
	entries := &base.Scenarios[0].Groups[0].Entries
	*entries = append(*entries, BaselineEntry{
		Scheduler: "cfs", Metric: "p99_us[vanished]", Better: scenario.Lower,
		N: 3, Mean: 1, CILo: 1, CIHi: 1,
	})
	regs, _, err := Check(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !regs[0].Missing {
		t.Fatalf("regressions = %v, want one missing-cell failure", regs)
	}
	if msg := regs[0].String(); !strings.Contains(msg, "missing") {
		t.Fatalf("missing-cell message: %s", msg)
	}
}

// TestCheckDeterministicAcrossJobs: the gate's verdicts are byte-identical
// at any pool width, like everything else.
func TestCheckDeterministicAcrossJobs(t *testing.T) {
	_, base := writeMini(t, Options{Replications: 3})
	// Doctor one cell so the check produces a non-trivial verdict list.
	base.Scenarios[0].Groups[0].Entries[0].Mean *= 10
	base.Scenarios[0].Groups[0].Entries[0].CILo *= 10
	base.Scenarios[0].Groups[0].Entries[0].CIHi *= 10

	var r1, r8 []Regression
	runner.WithWorkers(1, func() {
		var err error
		if r1, _, err = Check(base); err != nil {
			t.Fatal(err)
		}
	})
	runner.WithWorkers(8, func() {
		var err error
		if r8, _, err = Check(base); err != nil {
			t.Fatal(err)
		}
	})
	if len(r1) != len(r8) {
		t.Fatalf("regression counts differ: %d vs %d", len(r1), len(r8))
	}
	for i := range r1 {
		if r1[i] != r8[i] {
			t.Fatalf("regression %d differs:\n%+v\n%+v", i, r1[i], r8[i])
		}
	}
}
