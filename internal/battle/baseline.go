package battle

// Baseline snapshots and the regression gate. A baseline file is a
// committed, small-scale battle run boiled down to per-cell means and
// confidence intervals. `schedbattle -check` re-runs every scenario the
// baseline covers at the recorded scale and replication count, then
// compares cell against cell: a regression is a statistically significant
// move in the metric's worse direction — the current mean falls outside
// the baseline's interval on the losing side AND the baseline mean falls
// outside the current interval, so two noisy-but-overlapping runs never
// fire the gate. With an unchanged simulator the re-run reproduces the
// baseline bit-for-bit (everything is seeded), so the gate is silent until
// a code change actually moves a metric.

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/scenario"
)

// BaselineSchema versions the baseline snapshot format.
const BaselineSchema = "schedbattle/battle-baseline/v1"

// Baseline is a committed snapshot of one or more battle runs.
type Baseline struct {
	Schema string `json:"schema"`
	// CLIScale and Replications record how the snapshot was produced;
	// Check re-runs with exactly these.
	CLIScale       float64 `json:"cli_scale"`
	Replications   int     `json:"replications"`
	Confidence     float64 `json:"confidence"`
	BootstrapIters int     `json:"bootstrap_iters"`
	BaseSeed       int64   `json:"base_seed"`

	Scenarios []BaselineScenario `json:"scenarios"`
}

// BaselineScenario is one scenario's snapshot. Source is what Check hands
// to scenario.Load — the bundled name, or a spec file path for
// out-of-tree scenarios.
type BaselineScenario struct {
	Scenario string          `json:"scenario"`
	Source   string          `json:"source,omitempty"`
	Groups   []BaselineGroup `json:"groups"`
}

// BaselineGroup snapshots one (cores, scale) sweep point.
type BaselineGroup struct {
	Cores   int             `json:"cores"`
	Scale   float64         `json:"scale"`
	Entries []BaselineEntry `json:"entries"`
}

// BaselineEntry is one (scheduler, metric) cell's committed summary.
type BaselineEntry struct {
	Scheduler string  `json:"scheduler"`
	Metric    string  `json:"metric"`
	Better    string  `json:"better"`
	N         int     `json:"n"`
	Mean      float64 `json:"mean"`
	CILo      float64 `json:"ci_lo"`
	CIHi      float64 `json:"ci_hi"`
}

// NewBaseline snapshots finished battle reports. sources maps scenario
// name → the Source recorded for re-loading; missing entries default to
// the scenario name (bundled library lookup).
func NewBaseline(reports []*Report, opt Options, sources map[string]string) *Baseline {
	opt = opt.withDefaults()
	b := &Baseline{
		Schema:         BaselineSchema,
		CLIScale:       opt.Scale,
		Replications:   opt.Replications,
		Confidence:     opt.Confidence,
		BootstrapIters: opt.BootstrapIters,
	}
	for _, r := range reports {
		b.BaseSeed = r.BaseSeed
		bs := BaselineScenario{Scenario: r.Scenario}
		if src, ok := sources[r.Scenario]; ok && src != r.Scenario {
			bs.Source = src
		}
		for gi := range r.Groups {
			g := &r.Groups[gi]
			bg := BaselineGroup{Cores: g.Cores, Scale: g.Scale}
			for mi := range g.Metrics {
				mt := &g.Metrics[mi]
				for _, c := range mt.Cells {
					bg.Entries = append(bg.Entries, BaselineEntry{
						Scheduler: c.Scheduler,
						Metric:    mt.Metric,
						Better:    mt.Better,
						N:         c.Sample.N,
						Mean:      c.Sample.Mean,
						CILo:      c.CILo,
						CIHi:      c.CIHi,
					})
				}
			}
			bs.Groups = append(bs.Groups, bg)
		}
		b.Scenarios = append(b.Scenarios, bs)
	}
	return b
}

// WriteBaseline marshals b to path as indented JSON (scenario report
// conventions: trailing newline, stable field order).
func WriteBaseline(path string, b *Baseline) error {
	return scenario.WriteReport(path, b)
}

// LoadBaseline reads and sanity-checks a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("battle: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("battle: %s: %w", path, err)
	}
	if b.Schema != BaselineSchema {
		return nil, fmt.Errorf("battle: %s: schema %q, want %q", path, b.Schema, BaselineSchema)
	}
	if len(b.Scenarios) == 0 {
		return nil, fmt.Errorf("battle: %s: baseline covers no scenarios", path)
	}
	return &b, nil
}

// Regression is one gate failure: a cell that moved significantly in its
// metric's worse direction relative to the baseline — or vanished.
type Regression struct {
	Scenario  string  `json:"scenario"`
	Cores     int     `json:"cores"`
	Scale     float64 `json:"scale"`
	Scheduler string  `json:"scheduler"`
	Metric    string  `json:"metric"`
	Better    string  `json:"better"`
	// Baseline vs current cell summaries; Missing marks a cell the re-run
	// no longer produced at all.
	BaselineMean float64 `json:"baseline_mean"`
	BaselineLo   float64 `json:"baseline_ci_lo"`
	BaselineHi   float64 `json:"baseline_ci_hi"`
	Mean         float64 `json:"mean,omitempty"`
	CILo         float64 `json:"ci_lo,omitempty"`
	CIHi         float64 `json:"ci_hi,omitempty"`
	Missing      bool    `json:"missing,omitempty"`
}

// String renders a one-line human-readable account of the failure. The
// position includes the sweep scale so cells differing only by scale stay
// distinguishable.
func (r Regression) String() string {
	where := fmt.Sprintf("%s/c%d/x%g/%s/%s", r.Scenario, r.Cores, r.Scale, r.Scheduler, r.Metric)
	if r.Missing {
		return fmt.Sprintf("%s: cell missing from the re-run (baseline mean %g)", where, r.BaselineMean)
	}
	dir := "above"
	if r.Better == scenario.Higher {
		dir = "below"
	}
	return fmt.Sprintf("%s: mean %g %s baseline CI [%g, %g] (baseline mean %g, current CI [%g, %g])",
		where, r.Mean, dir, r.BaselineLo, r.BaselineHi, r.BaselineMean, r.CILo, r.CIHi)
}

// Check re-runs every scenario the baseline covers — at the baseline's
// scale, replication count, bootstrap settings, AND base seed — and
// returns the regressions plus the fresh battle reports (for the markdown
// artifact). The recorded base seed is installed for the duration of the
// re-run (and restored after), so a baseline captured under -seed 7 is
// compared against the same seed universe whatever the checking process's
// own -seed is; without that, every mean would shift for non-code reasons.
// An error means a scenario could not be run at all; an empty regression
// slice with a nil error is a pass.
func Check(b *Baseline) ([]Regression, []*Report, error) {
	prevSeed := core.BaseSeed()
	core.SetBaseSeed(b.BaseSeed)
	defer core.SetBaseSeed(prevSeed)
	opt := Options{
		Replications:   b.Replications,
		Scale:          b.CLIScale,
		Confidence:     b.Confidence,
		BootstrapIters: b.BootstrapIters,
	}
	var (
		regs    []Regression
		reports []*Report
	)
	for _, bs := range b.Scenarios {
		src := bs.Source
		if src == "" {
			src = bs.Scenario
		}
		sp, err := scenario.Load(src)
		if err != nil {
			return nil, nil, err
		}
		rep, err := Run(sp, opt)
		if err != nil {
			return nil, nil, fmt.Errorf("battle: %s: %w", bs.Scenario, err)
		}
		reports = append(reports, rep)
		regs = append(regs, compareBaseline(&bs, rep)...)
	}
	return regs, reports, nil
}

// compareBaseline gates one scenario's re-run against its snapshot.
func compareBaseline(bs *BaselineScenario, rep *Report) []Regression {
	// Index current cells by (cores, scale, scheduler, metric). Scale
	// floats round-trip JSON exactly, so exact keys are safe.
	type cellKey struct {
		cores  int
		scale  float64
		sched  string
		metric string
	}
	cur := map[cellKey]Cell{}
	for gi := range rep.Groups {
		g := &rep.Groups[gi]
		for mi := range g.Metrics {
			mt := &g.Metrics[mi]
			for _, c := range mt.Cells {
				cur[cellKey{g.Cores, g.Scale, c.Scheduler, mt.Metric}] = c
			}
		}
	}
	var regs []Regression
	for _, bg := range bs.Groups {
		for _, e := range bg.Entries {
			reg := Regression{
				Scenario: bs.Scenario, Cores: bg.Cores, Scale: bg.Scale,
				Scheduler: e.Scheduler, Metric: e.Metric, Better: e.Better,
				BaselineMean: e.Mean, BaselineLo: e.CILo, BaselineHi: e.CIHi,
			}
			c, ok := cur[cellKey{bg.Cores, bg.Scale, e.Scheduler, e.Metric}]
			if !ok {
				reg.Missing = true
				regs = append(regs, reg)
				continue
			}
			reg.Mean, reg.CILo, reg.CIHi = c.Sample.Mean, c.CILo, c.CIHi
			if regressed(e, c) {
				regs = append(regs, reg)
			}
		}
	}
	return regs
}

// regressed applies the gate: significant movement in the worse direction.
// Both intervals must reject the other side's mean — the current mean sits
// outside the baseline CI on the losing side, and the baseline mean sits
// outside the current CI — so the gate fires on real shifts, not interval
// edges grazing each other.
func regressed(base BaselineEntry, c Cell) bool {
	if base.Better == scenario.Higher {
		return c.Sample.Mean < base.CILo && base.Mean > c.CIHi
	}
	return c.Sample.Mean > base.CIHi && base.Mean < c.CILo
}
