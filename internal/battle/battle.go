// Package battle is the conclusions layer of the reproduction: it turns
// raw per-trial scenario reports into the paper's headline artifact — a
// comparison table of per-workload winners and margins. A battle run
// replicates a scenario across a multi-seed axis (on the shared runner
// pool), summarises every (scheduler, metric) cell with a mean and a
// seeded deterministic bootstrap confidence interval, pairs schedulers
// head-to-head over per-seed deltas, and declares a win/loss/tie verdict
// per matchup — significant only when the delta's interval excludes zero.
// The same machinery snapshots baselines and re-checks them, turning the
// scenario library into a statistical regression gate (see baseline.go).
//
// Determinism: a battle report is a pure function of (spec, options, base
// seed). Scenario reports are byte-identical at any -jobs width, and the
// inference on top draws only from private generators seeded via
// runner.DeriveSeed over stable cell keys — so battle matrices, markdown
// renderings, and -check verdicts are byte-identical at any pool width
// too.
package battle

import (
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// Schema versions the battle report format.
const Schema = "schedbattle/battle-report/v1"

// Verdicts of a head-to-head pair, from scheduler A's perspective.
const (
	VerdictWin  = "win"
	VerdictLoss = "loss"
	VerdictTie  = "tie"
)

// Options parameterise a battle run.
type Options struct {
	// Replications is the seed-axis width (default 5): every scheduler of
	// the scenario runs once per seed, and inference pairs them seed-wise.
	Replications int
	// Scale is the CLI duration scale in (0,1] (default 1).
	Scale float64
	// Confidence is the two-sided interval level (default 0.95).
	Confidence float64
	// BootstrapIters is the resample count per interval (default 1000).
	BootstrapIters int
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Replications < 1 {
		o.Replications = 5
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Confidence <= 0 || o.Confidence >= 1 {
		o.Confidence = 0.95
	}
	if o.BootstrapIters < 1 {
		o.BootstrapIters = 1000
	}
	return o
}

// Report is one scenario's battle matrix.
type Report struct {
	Schema      string  `json:"schema"`
	Scenario    string  `json:"scenario"`
	Description string  `json:"description,omitempty"`
	BaseSeed    int64   `json:"base_seed"`
	CLIScale    float64 `json:"cli_scale"`
	// Seeds is the replication axis every scheduler ran over.
	Seeds          []int64 `json:"seeds"`
	Confidence     float64 `json:"confidence"`
	BootstrapIters int     `json:"bootstrap_iters"`
	// Groups holds one matrix per swept (cores, scale) point, in sweep
	// order.
	Groups []Group `json:"groups"`
}

// Group is the battle matrix of one (cores, scale) sweep point: per-cell
// summaries, head-to-head pairs, and the win/loss scoreboard.
type Group struct {
	Cores int     `json:"cores"`
	Scale float64 `json:"scale"`
	// Schedulers lists the contenders in spec order.
	Schedulers []string      `json:"schedulers"`
	Metrics    []MetricTable `json:"metrics"`
	// Scoreboard tallies significant wins/losses per scheduler across all
	// metrics and matchups of the group, in Schedulers order.
	Scoreboard []Score `json:"scoreboard"`
}

// Score is one scheduler's tally across a group's matchups.
type Score struct {
	Scheduler string `json:"scheduler"`
	Wins      int    `json:"wins"`
	Losses    int    `json:"losses"`
	Ties      int    `json:"ties"`
}

// MetricTable is one metric's row of the matrix: a summary cell per
// scheduler plus every pairwise verdict.
type MetricTable struct {
	Metric string `json:"metric"`
	Better string `json:"better"`
	Cells  []Cell `json:"cells"`
	Pairs  []Pair `json:"pairs,omitempty"`
}

// Cell summarises one (scheduler, metric) sample across the seed axis:
// per-seed values in seed order, their mean and spread, and the bootstrap
// confidence interval of the mean.
type Cell struct {
	Scheduler string       `json:"scheduler"`
	Sample    stats.Sample `json:"sample"`
	CILo      float64      `json:"ci_lo"`
	CIHi      float64      `json:"ci_hi"`
	// Values are the raw per-seed measurements (Seeds order), kept so a
	// report is auditable without re-running.
	Values []float64 `json:"values"`
}

// Pair is one head-to-head comparison. Delta is B minus A, paired per
// seed; the verdict is significant only when the delta's bootstrap
// interval excludes zero, and is phrased from A's perspective (Winner
// names the winning scheduler, empty on tie).
type Pair struct {
	A          string  `json:"a"`
	B          string  `json:"b"`
	DeltaMean  float64 `json:"delta_mean"`
	DeltaCILo  float64 `json:"delta_ci_lo"`
	DeltaCIHi  float64 `json:"delta_ci_hi"`
	EffectSize float64 `json:"effect_size"`
	// MarginPct is the winner's advantage relative to the loser's mean, in
	// percent; 0 on ties.
	MarginPct float64 `json:"margin_pct"`
	Verdict   string  `json:"verdict"`
	Winner    string  `json:"winner,omitempty"`
}

// Run replicates the scenario across opt.Replications seeds and builds its
// battle matrix. The scenario needs at least two schedulers to produce
// head-to-head pairs; with one, the report still carries per-cell
// summaries (useful for baselines).
func Run(sp *scenario.Spec, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	seeds := sp.ReplicationSeeds(opt.Replications)
	srep, err := sp.WithSeeds(seeds).Run(opt.Scale)
	if err != nil {
		return nil, err
	}
	return build(srep, seeds, opt)
}

// groupKey identifies one (cores, scale) sweep point.
type groupKey struct {
	cores int
	scale float64
}

func (k groupKey) String() string {
	return fmt.Sprintf("c%d/x%s", k.cores, strconv.FormatFloat(k.scale, 'g', -1, 64))
}

// rawGroup collects one sweep point's trials before inference.
type rawGroup struct {
	key groupKey
	// scheds in first-appearance (= spec) order; trials per sched in seed
	// order, as the compile-order report guarantees.
	scheds []string
	trials map[string][]*scenario.TrialReport
}

// build assembles the battle report from a finished scenario report.
func build(srep *scenario.Report, seeds []int64, opt Options) (*Report, error) {
	groups, err := groupTrials(srep, seeds)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Schema:         Schema,
		Scenario:       srep.Scenario,
		Description:    srep.Description,
		BaseSeed:       core.BaseSeed(),
		CLIScale:       opt.Scale,
		Seeds:          seeds,
		Confidence:     opt.Confidence,
		BootstrapIters: opt.BootstrapIters,
	}
	// Inference per group is independent and deterministic (each interval
	// draws from a private generator seeded by its cell key), so fan the
	// groups out on the runner pool like the trials themselves; Map
	// preserves order.
	rep.Groups = runner.Map(len(groups), func(i int) Group {
		return buildGroup(srep.Scenario, groups[i], opt)
	})
	return rep, nil
}

// groupTrials splits the report's trials by (cores, scale) and validates
// the replication structure: every scheduler of a group must have exactly
// one trial per seed, in seed order.
func groupTrials(srep *scenario.Report, seeds []int64) ([]*rawGroup, error) {
	var (
		order []*rawGroup
		byKey = map[groupKey]*rawGroup{}
	)
	for i := range srep.Trials {
		tr := &srep.Trials[i]
		k := groupKey{cores: tr.Cores, scale: tr.Scale}
		g, ok := byKey[k]
		if !ok {
			g = &rawGroup{key: k, trials: map[string][]*scenario.TrialReport{}}
			byKey[k] = g
			order = append(order, g)
		}
		if _, seen := g.trials[tr.Scheduler]; !seen {
			g.scheds = append(g.scheds, tr.Scheduler)
		}
		g.trials[tr.Scheduler] = append(g.trials[tr.Scheduler], tr)
	}
	for _, g := range order {
		for _, sched := range g.scheds {
			trs := g.trials[sched]
			if len(trs) != len(seeds) {
				return nil, fmt.Errorf("battle: %s/%s has %d replications, want %d", g.key, sched, len(trs), len(seeds))
			}
			for i, tr := range trs {
				if tr.Seed != seeds[i] {
					return nil, fmt.Errorf("battle: %s/%s replication %d ran seed %d, want %d", g.key, sched, i, tr.Seed, seeds[i])
				}
			}
		}
	}
	return order, nil
}

// buildGroup runs the inference for one sweep point: metric tables over
// the metrics every replication recorded, pairwise verdicts, and the
// scoreboard.
func buildGroup(scenName string, g *rawGroup, opt Options) Group {
	out := Group{Cores: g.key.cores, Scale: g.key.scale, Schedulers: g.scheds}
	score := map[string]*Score{}
	for _, sched := range g.scheds {
		score[sched] = &Score{Scheduler: sched}
	}

	for _, md := range commonMetrics(g) {
		mt := MetricTable{Metric: md.Name, Better: md.Better}
		values := map[string][]float64{}
		for _, sched := range g.scheds {
			xs := make([]float64, len(g.trials[sched]))
			for i, tr := range g.trials[sched] {
				xs[i], _ = tr.MetricValue(md.Name)
			}
			values[sched] = xs
			key := fmt.Sprintf("%s/%s/%s/%s", scenName, g.key, md.Name, sched)
			lo, hi := stats.BootstrapMeanCI(xs, opt.Confidence, opt.BootstrapIters,
				runner.DeriveSeed(core.BaseSeed(), key, 0))
			mt.Cells = append(mt.Cells, Cell{
				Scheduler: sched,
				Sample:    stats.Summarize(xs),
				CILo:      lo, CIHi: hi,
				Values: xs,
			})
		}
		for i := 0; i < len(g.scheds); i++ {
			for j := i + 1; j < len(g.scheds); j++ {
				a, b := g.scheds[i], g.scheds[j]
				key := fmt.Sprintf("%s/%s/%s/%s|%s", scenName, g.key, md.Name, a, b)
				p := comparePair(a, b, values[a], values[b], md.Better, opt,
					runner.DeriveSeed(core.BaseSeed(), key, 0))
				mt.Pairs = append(mt.Pairs, p)
				switch p.Winner {
				case a:
					score[a].Wins++
					score[b].Losses++
				case b:
					score[b].Wins++
					score[a].Losses++
				default:
					score[a].Ties++
					score[b].Ties++
				}
			}
		}
		out.Metrics = append(out.Metrics, mt)
	}
	for _, sched := range g.scheds {
		out.Scoreboard = append(out.Scoreboard, *score[sched])
	}
	return out
}

// commonMetrics returns the metric defs every trial of the group exposes,
// in the first trial's stable order — a metric missing from any single
// replication (e.g. an entry that recorded no latency under one seed)
// cannot form comparable samples and is dropped.
func commonMetrics(g *rawGroup) []scenario.MetricDef {
	if len(g.scheds) == 0 {
		return nil
	}
	first := g.trials[g.scheds[0]][0]
	var defs []scenario.MetricDef
	for _, md := range first.Metrics() {
		everywhere := true
		for _, sched := range g.scheds {
			for _, tr := range g.trials[sched] {
				if _, ok := tr.MetricValue(md.Name); !ok {
					everywhere = false
					break
				}
			}
			if !everywhere {
				break
			}
		}
		if everywhere {
			defs = append(defs, md)
		}
	}
	return defs
}

// comparePair builds one head-to-head verdict from paired per-seed deltas.
func comparePair(a, b string, xa, xb []float64, better string, opt Options, seed int64) Pair {
	deltas := stats.PairedDeltas(xa, xb) // b - a, per seed
	lo, hi := stats.BootstrapMeanCI(deltas, opt.Confidence, opt.BootstrapIters, seed)
	p := Pair{
		A: a, B: b,
		DeltaMean: stats.Mean(deltas),
		DeltaCILo: lo, DeltaCIHi: hi,
		EffectSize: stats.CohenD(deltas),
		Verdict:    VerdictTie,
	}
	// Significant only when the interval excludes zero; direction then
	// picks the winner under the metric's polarity.
	if lo > 0 || hi < 0 {
		bWins := p.DeltaMean > 0 // B's values larger
		if better == scenario.Lower {
			bWins = !bWins
		}
		if bWins {
			p.Winner, p.Verdict = b, VerdictLoss
		} else {
			p.Winner, p.Verdict = a, VerdictWin
		}
		ma, mb := stats.Mean(xa), stats.Mean(xb)
		loserMean := mb
		if p.Winner == b {
			loserMean = ma
		}
		if loserMean != 0 {
			p.MarginPct = 100 * abs(mb-ma) / abs(loserMean)
		}
	}
	return p
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
