package battle

import (
	"bytes"
	"testing"

	"repro/internal/runner"
	"repro/internal/scenario"
)

// miniSpec is a tiny two-scheduler scenario: an open-loop stream (latency
// metrics) plus a batch loop (throughput), small enough that a 3-seed
// battle runs in milliseconds.
const miniSpec = `{
  "name": "mini-battle",
  "description": "two schedulers, one open-loop stream, one batch loop",
  "machine": {"cores": [2]},
  "schedulers": [{"kind": "cfs"}, {"kind": "ule"}],
  "window": "200ms",
  "workload": [
    {"name": "web", "openloop": {"workers": 2, "rate": 2000, "service": "150us"}},
    {"name": "batch", "loop": {"burst": "1ms"}, "count": 2}
  ]
}`

func miniBattle(t *testing.T, opt Options) *Report {
	t.Helper()
	sp, err := scenario.Parse("mini-battle.json", []byte(miniSpec))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sp, opt)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestBattleReportShape(t *testing.T) {
	rep := miniBattle(t, Options{Replications: 3})
	if rep.Schema != Schema || rep.Scenario != "mini-battle" {
		t.Fatalf("header = %q %q", rep.Schema, rep.Scenario)
	}
	if len(rep.Seeds) != 3 || rep.Seeds[0] != 1 || rep.Seeds[2] != 3 {
		t.Fatalf("seeds = %v, want [1 2 3]", rep.Seeds)
	}
	if len(rep.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(rep.Groups))
	}
	g := rep.Groups[0]
	if g.Cores != 2 || len(g.Schedulers) != 2 {
		t.Fatalf("group = %+v", g)
	}
	if len(g.Metrics) == 0 {
		t.Fatal("no metric tables formed")
	}
	for _, mt := range g.Metrics {
		if len(mt.Cells) != 2 {
			t.Fatalf("%s: %d cells, want 2", mt.Metric, len(mt.Cells))
		}
		if len(mt.Pairs) != 1 {
			t.Fatalf("%s: %d pairs, want 1", mt.Metric, len(mt.Pairs))
		}
		for _, c := range mt.Cells {
			if c.Sample.N != 3 || len(c.Values) != 3 {
				t.Fatalf("%s/%s: sample %+v values %v", mt.Metric, c.Scheduler, c.Sample, c.Values)
			}
			if !(c.CILo <= c.Sample.Mean && c.Sample.Mean <= c.CIHi) {
				t.Fatalf("%s/%s: mean %g outside its own CI [%g, %g]",
					mt.Metric, c.Scheduler, c.Sample.Mean, c.CILo, c.CIHi)
			}
		}
		p := mt.Pairs[0]
		switch p.Verdict {
		case VerdictTie:
			if p.Winner != "" || p.MarginPct != 0 {
				t.Fatalf("%s: tie with winner %q margin %g", mt.Metric, p.Winner, p.MarginPct)
			}
		case VerdictWin:
			if p.Winner != p.A {
				t.Fatalf("%s: verdict win but winner %q != %q", mt.Metric, p.Winner, p.A)
			}
		case VerdictLoss:
			if p.Winner != p.B {
				t.Fatalf("%s: verdict loss but winner %q != %q", mt.Metric, p.Winner, p.B)
			}
		default:
			t.Fatalf("%s: unknown verdict %q", mt.Metric, p.Verdict)
		}
	}
	// The per-entry tail metric must be present: web records latency.
	found := false
	for _, mt := range g.Metrics {
		if mt.Metric == "p99_us[web]" {
			found = true
		}
	}
	if !found {
		t.Fatalf("per-entry metric p99_us[web] missing; metrics: %v", metricNames(g))
	}
	// Scoreboard totals must account for every pair of every metric.
	wins, losses, ties := 0, 0, 0
	for _, s := range g.Scoreboard {
		wins += s.Wins
		losses += s.Losses
		ties += s.Ties
	}
	if wins != losses || wins+ties/2 != len(g.Metrics) {
		t.Fatalf("scoreboard inconsistent: wins %d losses %d ties %d over %d metrics",
			wins, losses, ties, len(g.Metrics))
	}
}

func metricNames(g Group) []string {
	var names []string
	for _, mt := range g.Metrics {
		names = append(names, mt.Metric)
	}
	return names
}

// TestBattleDeterminismAcrossJobs is the battle byte-identity guarantee:
// the marshalled battle matrix and its markdown rendering must be
// byte-identical at -jobs 1 and -jobs 8.
func TestBattleDeterminismAcrossJobs(t *testing.T) {
	var j1, j8 *Report
	runner.WithWorkers(1, func() { j1 = miniBattle(t, Options{Replications: 4}) })
	runner.WithWorkers(8, func() { j8 = miniBattle(t, Options{Replications: 4}) })

	b1, err := scenario.MarshalReport(j1)
	if err != nil {
		t.Fatal(err)
	}
	b8, err := scenario.MarshalReport(j8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b8) {
		t.Fatalf("battle JSON differs between -jobs 1 and -jobs 8:\n%s\n---\n%s", b1, b8)
	}
	if m1, m8 := j1.Markdown(), j8.Markdown(); m1 != m8 {
		t.Fatalf("battle markdown differs between -jobs 1 and -jobs 8:\n%s\n---\n%s", m1, m8)
	}
}

// TestBattleConvergenceVerdictAcrossJobs is the telemetry acceptance
// gate: a bundled scenario with a series block (web-tail) must produce a
// battle verdict over the derived convergence_us metric, byte-identical
// at -jobs 1 and -jobs 8.
func TestBattleConvergenceVerdictAcrossJobs(t *testing.T) {
	sp, err := scenario.LoadBuiltin("web-tail")
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Report {
		rep, err := Run(sp, Options{Replications: 3, Scale: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	var j1, j8 *Report
	runner.WithWorkers(1, func() { j1 = run() })
	runner.WithWorkers(8, func() { j8 = run() })

	found := false
	for _, g := range j1.Groups {
		for _, mt := range g.Metrics {
			if mt.Metric != scenario.MetricConvergenceUS {
				continue
			}
			found = true
			if mt.Better != scenario.Lower {
				t.Fatalf("convergence_us direction = %q, want lower", mt.Better)
			}
			if len(mt.Cells) != 2 || len(mt.Pairs) != 1 {
				t.Fatalf("convergence_us table malformed: %d cells, %d pairs", len(mt.Cells), len(mt.Pairs))
			}
			if v := mt.Pairs[0].Verdict; v != VerdictWin && v != VerdictLoss && v != VerdictTie {
				t.Fatalf("convergence_us verdict = %q", v)
			}
		}
	}
	if !found {
		t.Fatal("no convergence_us metric table in the web-tail battle")
	}

	b1, err := scenario.MarshalReport(j1)
	if err != nil {
		t.Fatal(err)
	}
	b8, err := scenario.MarshalReport(j8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b8) {
		t.Fatal("convergence battle matrix differs between -jobs 1 and -jobs 8")
	}
}

// TestBattleBootstrapStability: identical runs draw identical bootstrap
// streams (the generators are seeded from stable cell keys), so repeated
// in-process runs agree bit-for-bit.
func TestBattleBootstrapStability(t *testing.T) {
	a := miniBattle(t, Options{Replications: 3})
	b := miniBattle(t, Options{Replications: 3})
	ba, _ := scenario.MarshalReport(a)
	bb, _ := scenario.MarshalReport(b)
	if !bytes.Equal(ba, bb) {
		t.Fatal("repeated battle runs disagree: bootstrap seeding is unstable")
	}
}

// TestReplicationSeeds: the spec's pinned seeds lead, unique fill seeds
// follow.
func TestReplicationSeeds(t *testing.T) {
	sp := &scenario.Spec{Seeds: []int64{7, 9}}
	got := sp.ReplicationSeeds(4)
	want := []int64{7, 9, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ReplicationSeeds(4) = %v, want %v", got, want)
		}
	}
	if n := len(sp.ReplicationSeeds(1)); n != 1 {
		t.Fatalf("ReplicationSeeds(1) len = %d", n)
	}
	// Fill must skip seeds the spec already pinned.
	sp = &scenario.Spec{Seeds: []int64{2}}
	got = sp.ReplicationSeeds(3)
	if got[0] != 2 || got[1] != 1 || got[2] != 3 {
		t.Fatalf("ReplicationSeeds(3) = %v, want [2 1 3]", got)
	}
}

// TestComparePairVerdicts drives the verdict logic directly with synthetic
// samples.
func TestComparePairVerdicts(t *testing.T) {
	opt := Options{}.withDefaults()
	// B strictly larger on a higher-is-better metric: B wins.
	xa := []float64{10, 11, 10, 12, 11}
	xb := []float64{20, 21, 20, 22, 21}
	p := comparePair("a", "b", xa, xb, scenario.Higher, opt, 1)
	if p.Verdict != VerdictLoss || p.Winner != "b" {
		t.Fatalf("higher-better: %+v", p)
	}
	if p.MarginPct < 50 {
		t.Fatalf("margin = %g, want ~90+%%", p.MarginPct)
	}
	// Same data on a lower-is-better metric: A wins.
	p = comparePair("a", "b", xa, xb, scenario.Lower, opt, 1)
	if p.Verdict != VerdictWin || p.Winner != "a" {
		t.Fatalf("lower-better: %+v", p)
	}
	// Identical samples: tie with a collapsed zero interval.
	p = comparePair("a", "b", xa, xa, scenario.Higher, opt, 1)
	if p.Verdict != VerdictTie || p.Winner != "" || p.DeltaCILo != 0 || p.DeltaCIHi != 0 {
		t.Fatalf("identical samples: %+v", p)
	}
}
