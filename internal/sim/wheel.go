package sim

import (
	"math/bits"
	"time"
)

// The hierarchical timer wheel: the engine's default event queue. Most
// simulation events — scheduler ticks, burst ends, timed sleeps — are armed
// a short horizon ahead of the clock, so a wheel turns the heap's O(log n)
// sift per insert/expire into O(1) slot appends and batched slot drains.
//
// Layout: wheelLevels rings of wheelSlots slots over the event clock
// (nanosecond time.Duration values). Level k's slots are
// 2^(wheelShift0 + k*wheelBits) ns wide — 4.096µs at level 0, then ~1ms,
// ~268ms, ~68.7s. Filing is delta-based: an event goes to the lowest level
// where its slot index is within a full ring of the cursor's position at
// that level, so anything under ~1ms of horizon lands in level 0 no matter
// where the boundaries fall, under ~268ms in level 1, and so on; events
// past the top level's rolling horizon (~4.9h) wait in a small overflow
// heap. When the cursor reaches a higher-level slot, that slot's events
// cascade one level down (each event cascades at most wheelLevels-1 times),
// and when the overflow's span becomes reachable its events are refiled.
//
// Determinism contract: events pop in strictly increasing (at, seq) order —
// exactly the binary heap's total order, so the two engines are
// byte-interchangeable (Options.UseEventHeap; the cross-validation suite
// holds them to that). The invariants behind it:
//
//  1. Every undelivered event with at < curEnd (= cursor slot start) is in
//     cur, sorted by (at, seq), undrained portion cur[curIdx:].
//  2. The cursor never sits inside an occupied upper-level slot: whenever
//     it enters one — stepping past a drained slot or jumping forward in
//     advance() — the slot cascades immediately (cascadeInto), before any
//     push can file newer events into the lower levels that slot feeds.
//     file() preserves this: it never targets a slot containing the
//     cursor, because an event inside the cursor's level-k slot is always
//     within a ring of the cursor at level k-1 and files lower.
//  3. advance() always picks the earliest non-empty slot: level 0 is
//     scanned up to the next level-1 boundary first (no higher-level slot
//     can start before that boundary), and past it every level is scanned
//     a full ring, taking the slot with the smallest start — ties to the
//     higher level, whose slot's events may precede the lower's.
//
// Slot drains sort once and then serve pops by index — the batched
// same-timestamp processing the dispatch loop relies on: one advance()
// prepares a whole slot, and Machine.Run consumes it without touching the
// wheel structure again.
const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelShift0 = 12 // 4.096µs level-0 slots
	wheelLevels = 4

	// wheelSlotCap seeds every slot's backing array (one arena allocation
	// at init), so steady-state filing into rarely-visited slots does not
	// allocate; busier slots grow once and keep their capacity.
	wheelSlotCap = 2
)

// wheelLevel is one ring of slots plus a non-empty bitmap for O(1) scans.
type wheelLevel struct {
	slots  [wheelSlots][]event
	bitmap [wheelSlots / 64]uint64
}

// mark flags slot idx (masked absolute index) as non-empty.
func (lv *wheelLevel) mark(idx int64) {
	lv.bitmap[idx>>6] |= 1 << uint(idx&63)
}

// clear flags slot idx as empty.
func (lv *wheelLevel) clear(idx int64) {
	lv.bitmap[idx>>6] &^= 1 << uint(idx&63)
}

// occupied reports whether slot idx holds events.
func (lv *wheelLevel) occupied(idx int64) bool {
	return lv.bitmap[idx>>6]&(1<<uint(idx&63)) != 0
}

// next returns the first non-empty absolute slot in [from, to), scanning
// the bitmap word-wise. to-from <= wheelSlots, so although the masked
// window may wrap the ring, no slot is visited twice.
func (lv *wheelLevel) next(from, to int64) (int64, bool) {
	for s := from; s < to; {
		idx := s & wheelMask
		word := lv.bitmap[idx>>6] >> uint(idx&63)
		if word != 0 {
			s += int64(bits.TrailingZeros64(word))
			if s >= to {
				return 0, false
			}
			return s, true
		}
		s += 64 - (idx & 63)
	}
	return 0, false
}

// timerWheel is the engine's event queue. init must run before use.
type timerWheel struct {
	// cur is the current slot batch: all undelivered events earlier than
	// curEnd(), sorted by (at, seq); cur[:curIdx] is already delivered.
	cur    []event
	curIdx int
	// cursor is the next unvisited absolute level-0 slot index; everything
	// before cursor<<wheelShift0 is delivered or in cur.
	cursor int64
	// size counts events filed in the levels (excluding cur and overflow).
	size   int
	levels [wheelLevels]wheelLevel
	// over holds events beyond the top level's rolling horizon, ordered;
	// they are refiled when their span becomes reachable.
	over eventHeap
}

// init carves every slot's initial backing out of one arena, so filing
// allocates only when a slot outgrows wheelSlotCap (and then keeps the
// larger capacity for the rest of the run).
func (w *timerWheel) init() {
	arena := make([]event, wheelLevels*wheelSlots*wheelSlotCap)
	i := 0
	for k := range w.levels {
		for s := range w.levels[k].slots {
			w.levels[k].slots[s] = arena[i : i : i+wheelSlotCap]
			i += wheelSlotCap
		}
	}
}

// curEnd is the exclusive upper bound of the region covered by cur.
func (w *timerWheel) curEnd() time.Duration {
	return time.Duration(w.cursor << wheelShift0)
}

// len reports the number of undelivered events.
func (w *timerWheel) len() int {
	return (len(w.cur) - w.curIdx) + w.size + w.over.len()
}

// push files one event. Events always arrive with at >= the machine clock
// and a fresh (maximal) seq, which invariants 1-3 above rely on.
func (w *timerWheel) push(e event) {
	if int64(e.at)>>wheelShift0 < w.cursor {
		w.pushCur(e)
		return
	}
	w.file(e)
}

// pushCur ordered-inserts into the live batch. The event's seq is the
// largest issued, so it sorts after every queued event with at' <= at;
// binary search on at alone finds the spot.
func (w *timerWheel) pushCur(e event) {
	i, j := w.curIdx, len(w.cur)
	for i < j {
		h := int(uint(i+j) >> 1)
		if w.cur[h].at <= e.at {
			i = h + 1
		} else {
			j = h
		}
	}
	w.cur = append(w.cur, event{})
	copy(w.cur[i+1:], w.cur[i:])
	w.cur[i] = e
}

// file places an event with at >= curEnd into the lowest level whose ring
// reaches it from the cursor, or the overflow heap beyond the top horizon.
func (w *timerWheel) file(e event) {
	slot := int64(e.at) >> wheelShift0
	for k := 0; k < wheelLevels; k++ {
		shift := uint(wheelBits * k)
		if slot>>shift-w.cursor>>shift < wheelSlots {
			lv := &w.levels[k]
			idx := (slot >> shift) & wheelMask
			lv.slots[idx] = append(lv.slots[idx], e)
			lv.mark(idx)
			w.size++
			return
		}
	}
	w.over.push(e)
}

// peekAt returns the next event's time without consuming it, advancing the
// wheel to the next non-empty slot if the live batch is drained.
func (w *timerWheel) peekAt() (time.Duration, bool) {
	if w.curIdx < len(w.cur) {
		return w.cur[w.curIdx].at, true
	}
	if !w.advance() {
		return 0, false
	}
	return w.cur[w.curIdx].at, true
}

// pop consumes the next event; peekAt must have returned true.
func (w *timerWheel) pop() event {
	e := w.cur[w.curIdx]
	w.curIdx++
	return e
}

// advance drains the earliest non-empty slot into cur (invariant 3).
// Returns false when the queue is empty.
func (w *timerWheel) advance() bool {
	w.cur = w.cur[:0]
	w.curIdx = 0
	for {
		// Refile overflow events the top ring now covers, *before* slot
		// selection: the cursor may have advanced past enough top-level
		// boundaries since they were parked that they are reachable — and
		// a later event filed directly into the wheel must not overtake
		// them. With an empty wheel, jump straight to the overflow's span
		// first so the refile lands its head.
		const topShift = uint(wheelBits * (wheelLevels - 1))
		if w.size == 0 {
			if w.over.len() == 0 {
				return false
			}
			w.cursor = int64(w.over.es[0].at) >> wheelShift0
		}
		for w.over.len() > 0 {
			slot := int64(w.over.es[0].at) >> wheelShift0
			if slot>>topShift-w.cursor>>topShift >= wheelSlots {
				break
			}
			w.file(w.over.pop())
		}
		// Fast path: the earliest level-0 slot before the next level-1
		// boundary. No higher-level slot can start before that boundary
		// (their starts are coarser-aligned and the cursor's own containing
		// slots are empty), so a hit here is the global minimum.
		blockEnd := (w.cursor &^ wheelMask) + wheelSlots
		if s, ok := w.levels[0].next(w.cursor, blockEnd); ok {
			w.drainSlot(s)
			return true
		}
		// Otherwise: earliest occupied slot across all levels, each level
		// scanned one full ring from the cursor's position. Ties go to the
		// higher level — its slot's events may precede the lower slot's.
		best, bestLevel := int64(-1), -1
		if s, ok := w.levels[0].next(blockEnd, w.cursor+wheelSlots); ok {
			best, bestLevel = s, 0
		}
		for k := 1; k < wheelLevels; k++ {
			shift := uint(wheelBits * k)
			pos := w.cursor >> shift
			if s, ok := w.levels[k].next(pos, pos+wheelSlots); ok {
				if abs := s << shift; best < 0 || abs <= best {
					best, bestLevel = abs, k
				}
			}
		}
		if bestLevel < 0 {
			panic("sim: timer wheel scanned empty with events filed")
		}
		if bestLevel == 0 {
			w.drainSlot(best)
			return true
		}
		// Jump to the winning slot's start, then cascade *every* occupied
		// slot containing the new cursor (invariant 2) — not just the
		// winner: its start can coincide with an occupied slot at another
		// level (a level-2 boundary is also a level-1 boundary), and
		// leaving that one behind would strand its events while the fast
		// path marches past them. The rescan then finds the earliest
		// refiled event.
		w.cursor = best
		w.cascadeInto()
	}
}

// drainSlot moves level-0 slot s into cur, sorted, and steps the cursor
// past it. Stepping past may put the cursor inside occupied higher-level
// slots; those cascade immediately (invariant 2) — before push() can file
// new events into the lower levels they feed.
func (w *timerWheel) drainSlot(s int64) {
	lv := &w.levels[0]
	idx := s & wheelMask
	sl := lv.slots[idx]
	w.cur = append(w.cur[:0], sl...)
	lv.slots[idx] = sl[:0]
	lv.clear(idx)
	w.size -= len(w.cur)
	w.cursor = s + 1
	if w.cursor&wheelMask == 0 {
		w.cascadeInto()
	}
	sortEvents(w.cur)
}

// cascadeInto cascades every occupied slot that contains the cursor,
// top-down (a higher cascade may feed lower levels, never an occupied
// containing slot — see invariant 2). It reports whether any slot
// cascaded.
func (w *timerWheel) cascadeInto() bool {
	any := false
	for k := wheelLevels - 1; k >= 1; k-- {
		pos := w.cursor >> uint(wheelBits*k)
		if w.levels[k].occupied(pos & wheelMask) {
			w.cascade(k, pos)
			any = true
		}
	}
	return any
}

// cascade refiles level-k slot s into the lower levels. The cursor is
// inside the slot, so every event refiles strictly below k; the slot's
// backing array is untouched by those appends and is kept for reuse.
func (w *timerWheel) cascade(k int, s int64) {
	lv := &w.levels[k]
	idx := s & wheelMask
	sl := lv.slots[idx]
	lv.clear(idx)
	w.size -= len(sl)
	for i := range sl {
		w.file(sl[i])
	}
	lv.slots[idx] = sl[:0]
}

// sortEvents orders a drained slot by (at, seq): insertion sort for the
// common small batch, sift-down heapsort (in place, allocation-free,
// deterministic) past that.
func sortEvents(es []event) {
	n := len(es)
	if n < 2 {
		return
	}
	if n <= 32 {
		for i := 1; i < n; i++ {
			e := es[i]
			j := i - 1
			for j >= 0 && eventBefore(&e, &es[j]) {
				es[j+1] = es[j]
				j--
			}
			es[j+1] = e
		}
		return
	}
	// Max-heapify then extract: ascending order without allocations.
	for i := n/2 - 1; i >= 0; i-- {
		siftDownEvents(es, i, n)
	}
	for end := n - 1; end > 0; end-- {
		es[0], es[end] = es[end], es[0]
		siftDownEvents(es, 0, end)
	}
}

// siftDownEvents restores the max-heap property for es[:n] rooted at i.
func siftDownEvents(es []event, i, n int) {
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if r := c + 1; r < n && eventBefore(&es[c], &es[r]) {
			c = r
		}
		if !eventBefore(&es[i], &es[c]) {
			return
		}
		es[i], es[c] = es[c], es[i]
		i = c
	}
}
