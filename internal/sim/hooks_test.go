package sim

import (
	"testing"
	"time"

	"repro/internal/topo"
)

// TestHooksFire pins the hook-point contract: every registered observer
// fires at its transition, counts line up with the trace's exact counts
// where both exist, and a machine without registrations carries no hook
// table at all (the fast path).
func TestHooksFire(t *testing.T) {
	m := NewMachine(topo.Small(), NewFIFO(), Options{Seed: 5})
	if m.hooks != nil {
		t.Fatal("hook table allocated before any registration")
	}

	var enq, disp, mig, steal, tick int
	m.OnEnqueue(func(c *Core, th *Thread, flags int) {
		if th.State() != StateRunnable {
			t.Errorf("enqueue hook saw state %v", th.State())
		}
		enq++
	})
	m.OnDispatch(func(c *Core, th *Thread) {
		if c.Curr != th {
			t.Error("dispatch hook fired with thread not current")
		}
		disp++
	})
	m.OnMigrate(func(from, to *Core, th *Thread) {
		if from == to {
			t.Error("migrate hook with from == to")
		}
		mig++
	})
	m.OnSteal(func(c, victim *Core, th *Thread) { steal++ })
	m.OnTick(func(c *Core) { tick++ })

	for i := 0; i < 12; i++ {
		m.StartThread("w", "app", 0, &runSleeper{run: 700 * time.Microsecond, sleep: 400 * time.Microsecond})
	}
	m.Run(500 * time.Millisecond)

	if enq == 0 || disp == 0 || tick == 0 {
		t.Fatalf("hooks silent: enqueue=%d dispatch=%d tick=%d", enq, disp, tick)
	}
	// FIFO steals queued work when idle; the steal hook and its Migrate
	// both fire.
	if steal == 0 || mig == 0 {
		t.Fatalf("steal/migrate hooks silent: steal=%d migrate=%d", steal, mig)
	}
	if mig < steal {
		t.Fatalf("every steal migrates: migrate=%d < steal=%d", mig, steal)
	}
}

// TestHooksDoNotPerturb is the observation-only guarantee behind the
// telemetry layer: a machine with (counting) hooks registered runs the
// exact same simulation — same event count, same trace counts — as one
// without.
func TestHooksDoNotPerturb(t *testing.T) {
	run := func(withHooks bool) (uint64, map[string]uint64) {
		m := NewMachine(topo.Small(), NewFIFO(), Options{Seed: 7})
		if withHooks {
			m.OnEnqueue(func(c *Core, th *Thread, flags int) {})
			m.OnDispatch(func(c *Core, th *Thread) {})
			m.OnMigrate(func(from, to *Core, th *Thread) {})
			m.OnSteal(func(c, victim *Core, th *Thread) {})
			m.OnTick(func(c *Core) {})
		}
		for i := 0; i < 8; i++ {
			m.StartThread("w", "app", 0, &runSleeper{run: 900 * time.Microsecond, sleep: 300 * time.Microsecond})
		}
		m.Run(300 * time.Millisecond)
		counts := map[string]uint64{}
		for _, th := range m.Threads() {
			counts["runtime"] += uint64(th.RunTime)
		}
		return m.EventsProcessed(), counts
	}
	e1, c1 := run(false)
	e2, c2 := run(true)
	if e1 != e2 {
		t.Fatalf("hooks changed event count: %d vs %d", e1, e2)
	}
	if c1["runtime"] != c2["runtime"] {
		t.Fatalf("hooks changed accumulated runtime: %d vs %d", c1["runtime"], c2["runtime"])
	}
}
