package sim

// Stable observation hook points for the telemetry layer (internal/probe).
// Hooks fire at the engine's scheduler-visible transitions:
//
//   - enqueue:  a thread became runnable on a core (fork, wakeup,
//     migration arrival) — after the scheduler's Enqueue ran, before any
//     dispatch/preemption it triggers;
//   - dispatch: a core started running a thread;
//   - migrate:  a balancer/stealer moved a runnable thread between cores
//     (fires before the arrival's enqueue hook);
//   - steal:    an idle core stole a thread from a victim (reported by
//     the scheduler via TraceSteal; the accompanying Migrate also fires);
//   - tick:     a scheduler tick fired on a core (after token
//     validation, i.e. only ticks that actually run).
//
// Contract: hooks are pure observers. They run inside the engine's
// dispatch path and MUST NOT mutate simulation state (no thread starts,
// wakes, migrations, or timer arming) — only read state and record. The
// engine does not defend against violations.
//
// The no-hooks fast path is a single nil check per site: a machine with
// no hooks registered pays no allocation and no per-event call, which is
// what keeps the tickless engine's zero-probe numbers intact
// (BenchmarkProbeOverhead in internal/probe).
type hooks struct {
	enqueue  []func(c *Core, t *Thread, flags int)
	dispatch []func(c *Core, t *Thread)
	migrate  []func(from, to *Core, t *Thread)
	steal    []func(c, victim *Core, t *Thread)
	tick     []func(c *Core)
}

// ensureHooks lazily allocates the hook table: machines that never attach
// a probe never carry one.
func (m *Machine) ensureHooks() *hooks {
	if m.hooks == nil {
		m.hooks = &hooks{}
	}
	return m.hooks
}

// OnEnqueue registers an observer for threads becoming runnable on a core.
func (m *Machine) OnEnqueue(fn func(c *Core, t *Thread, flags int)) {
	h := m.ensureHooks()
	h.enqueue = append(h.enqueue, fn)
}

// OnDispatch registers an observer for a core starting to run a thread.
func (m *Machine) OnDispatch(fn func(c *Core, t *Thread)) {
	h := m.ensureHooks()
	h.dispatch = append(h.dispatch, fn)
}

// OnMigrate registers an observer for runnable-thread migrations.
func (m *Machine) OnMigrate(fn func(from, to *Core, t *Thread)) {
	h := m.ensureHooks()
	h.migrate = append(h.migrate, fn)
}

// OnSteal registers an observer for idle steals.
func (m *Machine) OnSteal(fn func(c, victim *Core, t *Thread)) {
	h := m.ensureHooks()
	h.steal = append(h.steal, fn)
}

// OnTick registers an observer for scheduler ticks that actually fire.
func (m *Machine) OnTick(fn func(c *Core)) {
	h := m.ensureHooks()
	h.tick = append(h.tick, fn)
}
