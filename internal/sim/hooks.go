package sim

// Stable observation hook points for the telemetry layer (internal/probe).
// Hooks fire at the engine's scheduler-visible transitions:
//
//   - enqueue:  a thread became runnable on a core (fork, wakeup,
//     migration arrival) — after the scheduler's Enqueue ran, before any
//     dispatch/preemption it triggers;
//   - dispatch: a core started running a thread;
//   - migrate:  a balancer/stealer moved a runnable thread between cores
//     (fires before the arrival's enqueue hook);
//   - steal:    an idle core stole a thread from a victim (reported by
//     the scheduler via TraceSteal; the accompanying Migrate also fires);
//   - tick:     a scheduler tick fired on a core (after token
//     validation, i.e. only ticks that actually run);
//   - pick:     a core's PickNext chose a thread — the decision point of
//     pick_next_task/sched_choose. Fires after the engine validated the
//     pick, before the thread starts running; never on an offline core.
//     At this instant the chosen thread has been removed from the
//     scheduler's queue structures, so a PickExplainer snapshot taken
//     inside the hook shows the residual candidates it beat;
//   - wake:     a wakeup placement decision — SelectCore chose target for
//     a thread waking from sleep/block (select_task_rq/sched_pickcpu).
//     Fires before the wakeup's enqueue (and before any enqueue/dispatch
//     hooks it triggers); origin is the core the wake happened on, nil
//     for timer wakeups. Fork placements do not fire it.
//
// Contract: hooks are pure observers. They run inside the engine's
// dispatch path and MUST NOT mutate simulation state (no thread starts,
// wakes, migrations, or timer arming) — only read state and record. The
// engine does not defend against violations.
//
// The no-hooks fast path is a single nil check per site: a machine with
// no hooks registered pays no allocation and no per-event call, which is
// what keeps the tickless engine's zero-probe numbers intact
// (BenchmarkProbeOverhead in internal/probe).
type hooks struct {
	enqueue  []func(c *Core, t *Thread, flags int)
	dispatch []func(c *Core, t *Thread)
	migrate  []func(from, to *Core, t *Thread)
	steal    []func(c, victim *Core, t *Thread)
	tick     []func(c *Core)
	pick     []func(c *Core, t *Thread)
	wake     []func(target, origin *Core, t *Thread)
}

// ensureHooks lazily allocates the hook table: machines that never attach
// a probe never carry one.
func (m *Machine) ensureHooks() *hooks {
	if m.hooks == nil {
		m.hooks = &hooks{}
	}
	return m.hooks
}

// OnEnqueue registers an observer for threads becoming runnable on a core.
func (m *Machine) OnEnqueue(fn func(c *Core, t *Thread, flags int)) {
	h := m.ensureHooks()
	h.enqueue = append(h.enqueue, fn)
}

// OnDispatch registers an observer for a core starting to run a thread.
func (m *Machine) OnDispatch(fn func(c *Core, t *Thread)) {
	h := m.ensureHooks()
	h.dispatch = append(h.dispatch, fn)
}

// OnMigrate registers an observer for runnable-thread migrations.
func (m *Machine) OnMigrate(fn func(from, to *Core, t *Thread)) {
	h := m.ensureHooks()
	h.migrate = append(h.migrate, fn)
}

// OnSteal registers an observer for idle steals.
func (m *Machine) OnSteal(fn func(c, victim *Core, t *Thread)) {
	h := m.ensureHooks()
	h.steal = append(h.steal, fn)
}

// OnTick registers an observer for scheduler ticks that actually fire.
func (m *Machine) OnTick(fn func(c *Core)) {
	h := m.ensureHooks()
	h.tick = append(h.tick, fn)
}

// OnPick registers an observer for pick decisions: c chose t to run next.
func (m *Machine) OnPick(fn func(c *Core, t *Thread)) {
	h := m.ensureHooks()
	h.pick = append(h.pick, fn)
}

// OnWake registers an observer for wakeup placement decisions: SelectCore
// chose target for t waking on origin (nil for timer wakeups).
func (m *Machine) OnWake(fn func(target, origin *Core, t *Thread)) {
	h := m.ensureHooks()
	h.wake = append(h.wake, fn)
}

// PickCandidate is one entry of a scheduler's candidate view of a core:
// a runnable thread it accounts on that core's queue structures, tagged
// with the scheduler's own ordering key (CFS: vruntime; ULE: priority;
// FIFO: queue position). Lower keys sort earlier in the scheduler's own
// preference order, but Explain order is the scheduler's natural queue
// iteration, not key-sorted.
type PickCandidate struct {
	TID int32 // thread id
	Key int64 // scheduler-specific ordering key
}

// PickExplainer is an optional Scheduler capability: schedulers that can
// expose their per-core candidate view implement it so trace recorders
// can capture what a pick decision chose between. ExplainPick appends c's
// queued candidates to buf[:0] and returns it (the engine-convention
// reuse-the-buffer contract; implementations must not retain buf).
//
// Contract: pure observer — must not mutate scheduler or engine state.
// The iteration order must be deterministic for a given queue state.
// Called from inside an OnPick hook, the just-picked thread has already
// been removed from queue structures; implementations that track the
// running thread in a side list (CFS) may still include it — consumers
// that want only the beaten candidates filter the chosen TID.
type PickExplainer interface {
	ExplainPick(c *Core, buf []PickCandidate) []PickCandidate
}
