package sim

// WaitQueue is a FIFO queue of voluntarily blocked threads, plus the set of
// spinners currently watching it. It is the one blocking primitive the
// kernel substrate exposes; the ipc package builds mutexes, barriers, pipes
// and request queues on top of it.
type WaitQueue struct {
	// Name labels the queue in traces.
	Name string

	waiters []*Thread
	// spinners are threads with an active OpSpin watching this queue; a
	// Broadcast releases them early.
	spinners []*Thread
}

// NewWaitQueue returns an empty named wait queue.
func NewWaitQueue(name string) *WaitQueue { return &WaitQueue{Name: name} }

// Len returns the number of blocked threads (spinners excluded).
func (wq *WaitQueue) Len() int { return len(wq.waiters) }

// Spinners returns the number of threads spin-watching the queue.
func (wq *WaitQueue) Spinners() int { return len(wq.spinners) }

func (wq *WaitQueue) addWaiter(t *Thread) {
	wq.waiters = append(wq.waiters, t)
	t.wq = wq
}

func (wq *WaitQueue) removeWaiter(t *Thread) {
	for i, w := range wq.waiters {
		if w == t {
			wq.waiters = append(wq.waiters[:i], wq.waiters[i+1:]...)
			t.wq = nil
			return
		}
	}
}

func (wq *WaitQueue) popWaiter() *Thread {
	if len(wq.waiters) == 0 {
		return nil
	}
	t := wq.waiters[0]
	wq.waiters = wq.waiters[1:]
	t.wq = nil
	return t
}

func (wq *WaitQueue) addSpinner(t *Thread) {
	wq.spinners = append(wq.spinners, t)
	t.spinWQ = wq
}

func (wq *WaitQueue) removeSpinner(t *Thread) {
	for i, w := range wq.spinners {
		if w == t {
			wq.spinners = append(wq.spinners[:i], wq.spinners[i+1:]...)
			t.spinWQ = nil
			return
		}
	}
}
