package sim

import (
	"testing"
	"time"

	"repro/internal/topo"
)

// noHotplug wraps FIFO but hides its Hotplugger capability (the field
// shadows the promoted CoreOffline method), forcing the engine's default
// drain path.
type noHotplug struct {
	*FIFO
	CoreOffline struct{} //nolint:unused — shadows the promoted method
}

func TestOfflineCoreDrainsAndRefusesWork(t *testing.T) {
	for name, mk := range map[string]func() Scheduler{
		"fifo-hotplugger": func() Scheduler { return NewFIFO() },
		"default-drain":   func() Scheduler { return &noHotplug{FIFO: NewFIFO()} },
	} {
		t.Run(name, func(t *testing.T) {
			m := newTestMachine(t, topo.Small())
			_ = mk // scheduler kind is fixed by newTestMachine for fifo; rebuild for the wrapper
			if name == "default-drain" {
				m = NewMachine(topo.Small(), &noHotplug{FIFO: NewFIFO()}, Options{Seed: 7, Cost: &CostModel{}, TraceCapacity: 10000})
			}
			var ths []*Thread
			for i := 0; i < 12; i++ {
				ths = append(ths, m.StartThread("w", "app", 0, &looper{burst: time.Millisecond}))
			}
			m.Run(20 * time.Millisecond)
			if !m.OfflineCore(3) {
				t.Fatal("OfflineCore(3) refused")
			}
			if m.OnlineCores() != 7 {
				t.Fatalf("OnlineCores = %d, want 7", m.OnlineCores())
			}
			if !m.Cores[3].Offline() {
				t.Fatal("core 3 not marked offline")
			}
			// Nothing may remain on — or ever return to — the dead core.
			for _, th := range ths {
				if th.Core() == m.Cores[3] {
					t.Fatalf("thread %s still on offline core", th.Name)
				}
			}
			m.Run(100 * time.Millisecond)
			for _, th := range ths {
				if th.Core() == m.Cores[3] {
					t.Fatalf("thread %s placed on offline core after drain", th.Name)
				}
			}
			if m.Cores[3].Curr != nil {
				t.Fatal("offline core is running a thread")
			}
			if got := m.Counters.Value("hotplug.offline"); got != 1 {
				t.Fatalf("hotplug.offline = %d", got)
			}
		})
	}
}

func TestOfflineLastCoreRefused(t *testing.T) {
	m := newTestMachine(t, topo.SingleCore())
	if m.OfflineCore(0) {
		t.Fatal("offlining the last online core must refuse")
	}
	m2 := newTestMachine(t, topo.Small())
	for id := 0; id < 7; id++ {
		if !m2.OfflineCore(id) {
			t.Fatalf("OfflineCore(%d) refused with %d online", id, m2.OnlineCores())
		}
	}
	if m2.OfflineCore(7) {
		t.Fatal("last survivor went offline")
	}
	if m2.OfflineCore(3) {
		t.Fatal("already-offline core offlined twice")
	}
}

func TestOfflineBreaksUnsatisfiablePinning(t *testing.T) {
	m := newTestMachine(t, topo.Small())
	th := m.StartThreadCfg(ThreadConfig{
		Name: "pinned", Group: "app", Pinned: []int{2},
		Prog: &script{ops: []Op{Run(5 * time.Millisecond), Run(5 * time.Millisecond)}},
	})
	m.Run(time.Millisecond) // mid first burst on core 2
	if !m.OfflineCore(2) {
		t.Fatal("OfflineCore(2) refused")
	}
	if th.Pinned != nil {
		t.Fatal("unsatisfiable pin not broken")
	}
	if got := m.Counters.Value("hotplug.affinity_breaks"); got != 1 {
		t.Fatalf("hotplug.affinity_breaks = %d", got)
	}
	m.Run(time.Second)
	if th.State() != StateDead {
		t.Fatalf("pinned thread stranded: state %v", th.State())
	}
	if got, want := th.RunTime, 10*time.Millisecond; got != want {
		t.Fatalf("RunTime = %v, want %v (burst lost in the drain)", got, want)
	}
	// A thread spawned with a dead-core-only pin is fixed at birth.
	th2 := m.StartThreadCfg(ThreadConfig{
		Name: "born-pinned", Group: "app", Pinned: []int{2},
		Prog: &script{ops: []Op{Run(time.Millisecond)}},
	})
	m.Run(time.Second + 100*time.Millisecond)
	if th2.State() != StateDead {
		t.Fatalf("born-pinned thread stranded: state %v", th2.State())
	}
	if got := m.Counters.Value("hotplug.affinity_breaks"); got != 2 {
		t.Fatalf("hotplug.affinity_breaks = %d after spawn", got)
	}
}

// TestOfflineMidBurstStrandsNothing is the pending-event lockstep gate:
// offlining a core whose current thread holds an in-flight burst-end (and
// whose tick chain is armed) must strand neither — the burst completes
// elsewhere, identically under both event engines.
func TestOfflineMidBurstStrandsNothing(t *testing.T) {
	run := func(heap bool) (events uint64, runtime time.Duration, finished bool) {
		prev := SetForceEventHeap(heap)
		defer SetForceEventHeap(prev)
		m := newTestMachine(t, topo.Small())
		th := m.StartThreadCfg(ThreadConfig{
			Name: "victim", Group: "app", Pinned: []int{1},
			Prog: &script{ops: []Op{Run(50 * time.Millisecond)}},
		})
		// Background load so the drain has real queues to contend with.
		for i := 0; i < 10; i++ {
			m.StartThread("bg", "app", 0, &looper{burst: 2 * time.Millisecond})
		}
		m.At(10*time.Millisecond, func() { // mid-burst, burst-end pending at 50ms
			if !m.OfflineCore(1) {
				t.Error("OfflineCore(1) refused")
			}
		})
		m.Run(300 * time.Millisecond)
		return m.EventsProcessed(), th.RunTime, th.State() == StateDead
	}
	we, wr, wf := run(false)
	he, hr, hf := run(true)
	if !wf || !hf {
		t.Fatalf("victim did not finish: wheel=%v heap=%v", wf, hf)
	}
	if wr != 50*time.Millisecond || hr != 50*time.Millisecond {
		t.Fatalf("victim RunTime wheel=%v heap=%v, want 50ms both", wr, hr)
	}
	if we != he {
		t.Fatalf("engines diverged: wheel %d events, heap %d events", we, he)
	}
}

func TestOnlineCoreRejoins(t *testing.T) {
	m := newTestMachine(t, topo.Small())
	for i := 0; i < 16; i++ {
		m.StartThread("w", "app", 0, &looper{burst: time.Millisecond})
	}
	m.Run(10 * time.Millisecond)
	if !m.OfflineCore(5) {
		t.Fatal("OfflineCore(5) refused")
	}
	m.Run(20 * time.Millisecond)
	dispatched := false
	m.OnDispatch(func(c *Core, _ *Thread) {
		if c.ID == 5 {
			dispatched = true
		}
	})
	if !m.OnlineCore(5) {
		t.Fatal("OnlineCore(5) refused")
	}
	if m.OnlineCores() != 8 {
		t.Fatalf("OnlineCores = %d, want 8", m.OnlineCores())
	}
	m.Run(100 * time.Millisecond)
	if !dispatched {
		t.Fatal("re-onlined core never dispatched a thread")
	}
	if m.OnlineCore(5) {
		t.Fatal("onlining an online core must refuse")
	}
}

// TestThrottleStretchesBursts pins the fixed-point speed math end to end:
// a burst at factor f takes exactly ceil(work/f) wall time, and restoring
// full speed restores exact 1:1 accounting.
func TestThrottleStretchesBursts(t *testing.T) {
	m := newTestMachine(t, topo.SingleCore())
	m.SetCoreSpeed(0, 0.5)
	th := m.StartThread("slow", "app", 0, &script{ops: []Op{Run(10 * time.Millisecond)}})
	m.RunUntil(func() bool { return th.State() == StateDead }, time.Second)
	if got, want := m.Now(), 20*time.Millisecond; got != want {
		t.Fatalf("half-speed 10ms burst finished at %v, want %v", got, want)
	}
	m.SetCoreSpeed(0, 1.0)
	th2 := m.StartThread("fast", "app", 0, &script{ops: []Op{Run(10 * time.Millisecond)}})
	start := m.Now()
	m.RunUntil(func() bool { return th2.State() == StateDead }, time.Second)
	if got, want := m.Now()-start, 10*time.Millisecond; got != want {
		t.Fatalf("full-speed 10ms burst took %v, want %v", got, want)
	}
}

// TestThrottleMidBurstReArms: changing speed under a running burst
// flushes at the old rate and re-arms the remainder at the new one.
func TestThrottleMidBurstReArms(t *testing.T) {
	m := newTestMachine(t, topo.SingleCore())
	th := m.StartThread("w", "app", 0, &script{ops: []Op{Run(10 * time.Millisecond)}})
	m.At(5*time.Millisecond, func() { m.SetCoreSpeed(0, 0.25) })
	m.RunUntil(func() bool { return th.State() == StateDead }, time.Second)
	// 5ms at full speed + 5ms of work at quarter speed = 5 + 20 = 25ms.
	if got, want := m.Now(), 25*time.Millisecond; got != want {
		t.Fatalf("finished at %v, want %v", got, want)
	}
}

// TestSpeedCarryExactness: chunked wall-time accounting accumulates
// exactly the same work as one flush — the carry makes floor division
// telescope — and wallFor/workFor pair so bursts always complete.
func TestSpeedCarryExactness(t *testing.T) {
	c := &Core{}
	for _, factor := range []float64{1.0 / 3, 0.07, 0.99, 0.5} {
		num := int64(factor*speedDen + 0.5)
		if num < 1 {
			num = 1
		}
		c.speedNum = num
		for _, work := range []time.Duration{1, 777, time.Microsecond, 10 * time.Millisecond} {
			wall := c.wallFor(work)
			c.workCarry = 0
			if got := c.workFor(wall); got < work {
				t.Fatalf("factor %g: workFor(wallFor(%v)) = %v < work", factor, work, got)
			}
			// Chunked flushes must telescope to the same total.
			c.workCarry = 0
			var sum time.Duration
			for rem := wall; rem > 0; {
				step := rem/7 + 1
				sum += c.workFor(step)
				rem -= step
			}
			c.workCarry = 0
			if whole := c.workFor(wall); sum != whole {
				t.Fatalf("factor %g work %v: chunked %v != whole %v", factor, work, sum, whole)
			}
		}
	}
}

func TestWallDeadlineFires(t *testing.T) {
	m := newTestMachine(t, topo.SingleCore())
	m.StartThread("spin", "app", 0, &looper{burst: 10 * time.Microsecond})
	m.SetWallDeadline(time.Now().Add(-time.Second)) // already expired
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expired wall deadline did not fire")
		}
		if _, ok := r.(*WallDeadlineError); !ok {
			t.Fatalf("panic value %T, want *WallDeadlineError", r)
		}
	}()
	// >64k events so the throttled check runs: 10µs bursts for 2s.
	m.Run(2 * time.Second)
}

func TestWallDeadlineDisarmed(t *testing.T) {
	m := newTestMachine(t, topo.SingleCore())
	m.StartThread("spin", "app", 0, &looper{burst: 10 * time.Microsecond})
	m.SetWallDeadline(time.Now().Add(-time.Second))
	m.SetWallDeadline(time.Time{}) // zero time disarms
	m.Run(time.Second)             // must not panic
}
