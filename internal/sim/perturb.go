package sim

import (
	"fmt"
	"time"
)

// This file holds the engine-level perturbation primitives the fault
// layer (internal/fault) drives: CPU hotplug, per-core frequency
// scaling, and the wall-clock trial watchdog. All of them are ordinary
// simulation-goroutine calls — typically invoked from Machine.At
// callbacks — and are fully deterministic except the watchdog, which
// reads the host clock and exists precisely to turn nondeterministic
// hangs into clean per-trial failures.

// Hotplugger is an optional Scheduler capability for CPU hotplug. When
// implemented, CoreOffline must migrate every thread still queued on c
// to other cores — c is already marked offline, so the scheduler's own
// placement helpers (which filter through Thread.CanRunOn) naturally
// avoid it — and CoreOnline may rebuild per-core state before the
// engine dispatches the core. Schedulers without the capability get the
// engine's default drain: one SelectCore+Migrate per stranded thread.
type Hotplugger interface {
	CoreOffline(c *Core)
	CoreOnline(c *Core)
}

// OnlineCores returns the number of cores currently online.
func (m *Machine) OnlineCores() int { return len(m.coreArr) - m.nOffline }

// OfflineCore hot-unplugs core id: the running thread (if any) is put
// back into the queues, every queued thread is migrated off, the tick
// chain stops, and placement refuses the core until OnlineCore.
// Threads whose affinity becomes unsatisfiable have their pin cleared
// — select_fallback_rq semantics — counted in hotplug.affinity_breaks.
// Returns false (and does nothing) if the core is already offline or is
// the last online core.
func (m *Machine) OfflineCore(id int) bool {
	c := &m.coreArr[id]
	if c.offline || m.OnlineCores() <= 1 {
		return false
	}
	c.offline = true
	m.nOffline++
	// Break now-unsatisfiable pins before any placement decision runs.
	for _, t := range m.threads {
		if t.state == StateDead || t.Pinned == nil {
			continue
		}
		if !m.anyAllowed(t) {
			t.Pinned = nil
			m.Counters.Get("hotplug.affinity_breaks").Inc(1)
		}
	}
	if c.Curr != nil {
		m.deschedule(c, 0)
	}
	if hp, ok := m.sched.(Hotplugger); ok {
		hp.CoreOffline(c)
	} else {
		m.drainCore(c)
	}
	if n := m.sched.NrRunnable(c); n != 0 {
		panic(fmt.Sprintf("sim: core %d still has %d runnable threads after offline drain", id, n))
	}
	c.markIdle()
	// Stop the tick chain entirely; any in-flight tick event is dropped
	// by the token bump, and the park state is cleared so fireTick's
	// watermark branch cannot misread the dead event as a parked tick.
	m.coreTok[id].tick++
	c.tickParked = false
	c.parkAt = -1
	c.parkWatermark = 0
	m.Counters.Get("hotplug.offline").Inc(1)
	return true
}

// OnlineCore re-plugs a core taken down by OfflineCore: the tick chain
// restarts on the core's original staggered grid and the scheduler gets
// an immediate dispatch so idle balancing can pull queued work over —
// the recovery mechanism the fault scenarios measure. Returns false if
// the core is not offline.
func (m *Machine) OnlineCore(id int) bool {
	c := &m.coreArr[id]
	if !c.offline {
		return false
	}
	c.offline = false
	m.nOffline--
	if m.idleTicks {
		m.armTick(c, c.nextGridTick(m.now))
	} else {
		// Tickless: stay parked; the next markBusy re-arms on the grid.
		// There is no suppressed event to watermark against, so a wake
		// landing exactly on a grid point counts as armed after it.
		c.tickParked = true
		c.parkAt = -1
		c.parkWatermark = 0
	}
	if hp, ok := m.sched.(Hotplugger); ok {
		hp.CoreOnline(c)
	}
	m.Counters.Get("hotplug.online").Inc(1)
	if c.Curr == nil && !c.dispatching {
		m.dispatch(c)
	}
	return true
}

// drainCore is the default hotplug drain for schedulers without the
// Hotplugger capability: every thread still queued on c is re-placed
// through SelectCore and migrated.
func (m *Machine) drainCore(c *Core) {
	// Collect first: Migrate dispatches the target, and the nested
	// program activity can start or sleep a later candidate.
	var cands []*Thread
	for _, t := range m.threads {
		if t.state == StateRunnable && t.core == c {
			cands = append(cands, t)
		}
	}
	for _, t := range cands {
		if t.state != StateRunnable || t.core != c {
			continue
		}
		target := m.sched.SelectCore(t, nil, FlagMigrate)
		m.assertAllowed(target, t)
		m.Migrate(t, c, target)
	}
}

// anyAllowed reports whether any core of t's pin set is online.
func (m *Machine) anyAllowed(t *Thread) bool {
	for _, id := range t.Pinned {
		if id >= 0 && id < len(m.coreArr) && !m.coreArr[id].offline {
			return true
		}
	}
	return false
}

// ensurePlaceable clears an unsatisfiable pin (every pinned core
// offline) before a placement decision, counting the break. Covers
// threads created with explicit affinity after their cores went down;
// existing threads are fixed eagerly by OfflineCore.
func (m *Machine) ensurePlaceable(t *Thread) {
	if m.nOffline == 0 || t.Pinned == nil {
		return
	}
	if !m.anyAllowed(t) {
		t.Pinned = nil
		m.Counters.Get("hotplug.affinity_breaks").Inc(1)
	}
}

// SetCoreSpeed sets core id's execution speed factor (frequency
// throttling): a throttled core retires Run/Spin work at factor × wall
// rate, so bursts stretch by 1/factor. factor 1 restores full speed.
// Takes effect immediately — the running burst is flushed at the old
// speed and its end event re-armed at the new one. The factor is
// quantised to a multiple of 1/65536 (Core.speedDen).
func (m *Machine) SetCoreSpeed(id int, factor float64) {
	if factor <= 0 {
		panic("sim: SetCoreSpeed with non-positive factor")
	}
	c := &m.coreArr[id]
	c.flushRun()
	num := int64(factor*speedDen + 0.5)
	if num < 1 {
		num = 1
	}
	if num == speedDen {
		num = 0 // full-speed fast path
		c.workCarry = 0
	}
	c.speedNum = num
	t := c.Curr
	if t != nil && t.opValid && (t.op.Kind == OpRun || t.op.Kind == OpSpin) {
		m.scheduleBurstEnd(c)
	}
}

// deadlineMask throttles the watchdog's host-clock reads to one every
// 65536 events.
const deadlineMask = 1<<16 - 1

// SetWallDeadline arms the wall-clock watchdog: once the host clock
// passes at, event processing panics with *WallDeadlineError — which
// the runner pool recovers into a per-trial error — instead of letting
// a runaway or hung trial wedge the whole grid. The zero time disarms
// the watchdog. The check costs one compare per event plus one host
// clock read per 64k events, and never fires on a healthy trial, so
// determinism is unaffected.
func (m *Machine) SetWallDeadline(at time.Time) { m.wallDeadline = at }

// WallDeadlineError is the panic value raised when the wall-clock
// watchdog fires.
type WallDeadlineError struct {
	// SimTime is the simulated clock when the deadline hit.
	SimTime time.Duration
	// Events is how many events had been processed.
	Events uint64
}

func (e *WallDeadlineError) Error() string {
	return fmt.Sprintf("sim: trial exceeded its wall-clock deadline (simulated %v, %d events processed)",
		e.SimTime, e.Events)
}

func (m *Machine) checkDeadline() {
	if m.wallDeadline.IsZero() || time.Now().Before(m.wallDeadline) {
		return
	}
	panic(&WallDeadlineError{SimTime: m.now, Events: m.events})
}
