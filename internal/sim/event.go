package sim

import (
	"math/rand"
	"time"
)

// eventKind tags a typed timer event. The hot timer paths — scheduler
// ticks, burst ends, timed sleep wake-ups — are fully described by
// (kind, target, token) and stored inline in the event queue, so arming
// them allocates nothing. Closures survive only in the rare generic kind
// (workload/driver callbacks) and in the per-Every periodic state, which is
// allocated once per registration and reused across firings.
type eventKind uint8

const (
	// evGeneric runs an arbitrary callback (Machine.At / Machine.After).
	evGeneric eventKind = iota
	// evTick is a per-core scheduler tick; token is validated against
	// Machine.coreTok[core].tick, dropping parked or superseded ticks.
	evTick
	// evBurstEnd completes the running thread's CPU burst on a core; token
	// is validated against Machine.coreTok[core].burst.
	evBurstEnd
	// evSleepWake ends a timed OpSleep; token is validated against
	// Machine.sleepTok[tid-1].
	evSleepWake
	// evPeriodic re-fires a Machine.Every callback until it returns false.
	evPeriodic
)

// callback is the side-table slot of a generic or periodic event: closures
// live here, referenced from queued events by handle, keeping the queue
// elements pointer-free (no GC write barriers on copies). Slots are free-listed:
// a generic slot is released when it fires, a periodic one when its fn
// returns false, so steady-state timer traffic allocates nothing.
type callback struct {
	fn     func()      // generic
	pfn    func() bool // periodic
	period time.Duration
	next   int32 // freelist link while the slot is free
}

// event is one scheduled occurrence. Ordering is (at, seq): equal-time
// events fire in scheduling order, making the simulation fully
// deterministic. The struct carries no pointers: targets are dense IDs
// (cores, threads) or callback handles, validated by token where an
// in-flight event can be superseded.
type event struct {
	at    time.Duration
	seq   uint64
	token uint64
	// armed is the simulated time the event was scheduled; tick re-arming
	// on busy transitions consults it to reproduce always-ticking
	// same-timestamp ordering (see Core.nextGridTick).
	armed time.Duration
	id    int32 // core ID (tick, burstEnd) or callback handle (generic, periodic)
	tid   int32 // thread ID (burstEnd, sleepWake)
	kind  eventKind
}

// eventHeap is a binary min-heap of events ordered by (at, seq): the
// original engine queue, kept as the cross-validation escape hatch
// (Options.UseEventHeap) and as the timer wheel's overflow structure.
type eventHeap struct {
	es []event
}

func (h *eventHeap) len() int { return len(h.es) }

// eventBefore reports whether a fires before b: (at, seq) lexicographic,
// and seq is unique, so this is a total order.
func eventBefore(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts e, sifting a hole up instead of swapping: each step copies
// one parent down, and e lands once.
func (h *eventHeap) push(e event) {
	h.es = append(h.es, e)
	i := len(h.es) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventBefore(&e, &h.es[p]) {
			break
		}
		h.es[i] = h.es[p]
		i = p
	}
	h.es[i] = e
}

// pop removes the minimum, sifting the displaced tail element down through
// a hole. The vacated tail slot is zeroed so it cannot leak a stale event:
// heap elements are pointer-free, but the invariant keeps the leak fixed if
// a reference-carrying field is ever added back (closures themselves are
// released by Machine.freeCallback when their slot retires).
func (h *eventHeap) pop() event {
	top := h.es[0]
	last := len(h.es) - 1
	e := h.es[last]
	h.es[last] = event{}
	h.es = h.es[:last]
	if last > 0 {
		i := 0
		for {
			c := 2*i + 1
			if c >= last {
				break
			}
			if r := c + 1; r < last && eventBefore(&h.es[r], &h.es[c]) {
				c = r
			}
			if !eventBefore(&h.es[c], &e) {
				break
			}
			h.es[i] = h.es[c]
			i = c
		}
		h.es[i] = e
	}
	return top
}

// Rand is the machine's deterministic PRNG. It wraps math/rand so every
// consumer (schedulers' balance jitter, workload think times) draws from
// one seeded stream in event order.
type Rand struct {
	r *rand.Rand
}

func newRand(seed int64) *Rand {
	return &Rand{r: rand.New(rand.NewSource(seed))}
}

// Intn returns a uniform int in [0, n).
func (r *Rand) Intn(n int) int { return r.r.Intn(n) }

// Int63n returns a uniform int64 in [0, n).
func (r *Rand) Int63n(n int64) int64 { return r.r.Int63n(n) }

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 { return r.r.Float64() }

// DurationIn returns a uniform duration in [lo, hi).
func (r *Rand) DurationIn(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(r.r.Int63n(int64(hi-lo)))
}

// ExpDuration returns an exponentially distributed duration with the given
// mean, capped at 100× the mean (open-loop arrival processes).
func (r *Rand) ExpDuration(mean time.Duration) time.Duration {
	d := time.Duration(r.r.ExpFloat64() * float64(mean))
	if d > 100*mean {
		d = 100 * mean
	}
	return d
}
