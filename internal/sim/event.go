package sim

import (
	"math/rand"
	"time"
)

// event is one scheduled callback. Ordering is (at, seq): equal-time events
// fire in scheduling order, making the simulation fully deterministic.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

// eventHeap is a binary min-heap of events.
type eventHeap struct {
	es []event
}

func (h *eventHeap) len() int { return len(h.es) }

func (h *eventHeap) less(i, j int) bool {
	if h.es[i].at != h.es[j].at {
		return h.es[i].at < h.es[j].at
	}
	return h.es[i].seq < h.es[j].seq
}

func (h *eventHeap) push(e event) {
	h.es = append(h.es, e)
	i := len(h.es) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.es[i], h.es[p] = h.es[p], h.es[i]
		i = p
	}
}

func (h *eventHeap) pop() event {
	top := h.es[0]
	last := len(h.es) - 1
	h.es[0] = h.es[last]
	h.es = h.es[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.less(l, small) {
			small = l
		}
		if r < last && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		h.es[i], h.es[small] = h.es[small], h.es[i]
		i = small
	}
	return top
}

// Rand is the machine's deterministic PRNG. It wraps math/rand so every
// consumer (schedulers' balance jitter, workload think times) draws from
// one seeded stream in event order.
type Rand struct {
	r *rand.Rand
}

func newRand(seed int64) *Rand {
	return &Rand{r: rand.New(rand.NewSource(seed))}
}

// Intn returns a uniform int in [0, n).
func (r *Rand) Intn(n int) int { return r.r.Intn(n) }

// Int63n returns a uniform int64 in [0, n).
func (r *Rand) Int63n(n int64) int64 { return r.r.Int63n(n) }

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 { return r.r.Float64() }

// DurationIn returns a uniform duration in [lo, hi).
func (r *Rand) DurationIn(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(r.r.Int63n(int64(hi-lo)))
}

// ExpDuration returns an exponentially distributed duration with the given
// mean, capped at 100× the mean (open-loop arrival processes).
func (r *Rand) ExpDuration(mean time.Duration) time.Duration {
	d := time.Duration(r.r.ExpFloat64() * float64(mean))
	if d > 100*mean {
		d = 100 * mean
	}
	return d
}
