package sim

import "time"

// FIFO is a deliberately simple reference scheduler: per-core FIFO
// runqueues, a fixed round-robin timeslice, least-loaded placement and
// single-thread idle stealing. It exists to (a) document the Scheduler
// contract with a minimal implementation, (b) give engine tests a
// scheduler with no policy surprises, and (c) serve as a neutral baseline
// in ablation benchmarks.
type FIFO struct {
	// Slice is the round-robin quantum (default 10 ms).
	Slice time.Duration

	m   *Machine
	rqs []fifoRQ
}

type fifoRQ struct {
	// queue[head:] are the waiting threads in FIFO order. Popping advances
	// head (the slot is nil'd) and the backing array is compacted in
	// amortized batches, so dispatch is O(1) and steady state allocates
	// nothing.
	queue []*Thread
	head  int
	// load counts runnable threads including the running one.
	load int
	// sliceLeft tracks the current thread's remaining quantum.
	sliceLeft time.Duration
}

func (rq *fifoRQ) size() int { return len(rq.queue) - rq.head }

// popHead removes and returns the oldest waiting thread.
func (rq *fifoRQ) popHead() *Thread {
	t := rq.queue[rq.head]
	rq.queue[rq.head] = nil
	rq.head++
	rq.compact()
	return t
}

// pushHead prepends a thread (preempted threads resume first).
func (rq *fifoRQ) pushHead(t *Thread) {
	if rq.head > 0 {
		rq.head--
		rq.queue[rq.head] = t
		return
	}
	rq.queue = append(rq.queue, nil)
	copy(rq.queue[1:], rq.queue)
	rq.queue[0] = t
}

// remove unlinks an arbitrary queued thread, reporting whether it was
// found.
func (rq *fifoRQ) remove(t *Thread) bool {
	for i := rq.head; i < len(rq.queue); i++ {
		if rq.queue[i] == t {
			copy(rq.queue[i:], rq.queue[i+1:])
			rq.queue[len(rq.queue)-1] = nil
			rq.queue = rq.queue[:len(rq.queue)-1]
			rq.compact()
			return true
		}
	}
	return false
}

// compact reclaims the popped prefix: immediately when the queue empties,
// otherwise once the dead prefix dominates the backing array (amortized
// O(1) per pop).
func (rq *fifoRQ) compact() {
	switch {
	case rq.head == len(rq.queue):
		rq.queue = rq.queue[:0]
		rq.head = 0
	case rq.head >= 32 && rq.head*2 >= len(rq.queue):
		n := copy(rq.queue, rq.queue[rq.head:])
		for i := n; i < len(rq.queue); i++ {
			rq.queue[i] = nil
		}
		rq.queue = rq.queue[:n]
		rq.head = 0
	}
}

// NewFIFO returns a FIFO scheduler with the default quantum.
func NewFIFO() *FIFO { return &FIFO{Slice: 10 * time.Millisecond} }

// Name implements Scheduler.
func (f *FIFO) Name() string { return "fifo" }

// Attach implements Scheduler.
func (f *FIFO) Attach(m *Machine) {
	f.m = m
	f.rqs = make([]fifoRQ, len(m.Cores))
	if f.Slice <= 0 {
		f.Slice = 10 * time.Millisecond
	}
}

// TickPeriod implements Scheduler.
func (f *FIFO) TickPeriod() time.Duration { return time.Millisecond }

// NeedsIdleTick implements Scheduler: idle cores retry stealing from Tick,
// so suppressing idle ticks would change when work is picked up.
func (f *FIFO) NeedsIdleTick() bool { return true }

// Enqueue implements Scheduler.
func (f *FIFO) Enqueue(c *Core, t *Thread, flags int) {
	rq := &f.rqs[c.ID]
	rq.queue = append(rq.queue, t)
	rq.load++
}

// Dequeue implements Scheduler.
func (f *FIFO) Dequeue(c *Core, t *Thread, flags int) {
	rq := &f.rqs[c.ID]
	rq.load--
	if c.Curr == t {
		return // running threads are not in the queue
	}
	if !rq.remove(t) {
		panic("fifo: dequeue of unknown thread")
	}
}

// Yield implements Scheduler.
func (f *FIFO) Yield(c *Core, t *Thread) {}

// PickNext implements Scheduler.
func (f *FIFO) PickNext(c *Core) *Thread {
	rq := &f.rqs[c.ID]
	if rq.size() == 0 {
		return nil
	}
	t := rq.popHead()
	rq.sliceLeft = f.Slice
	return t
}

// PutPrev implements Scheduler.
func (f *FIFO) PutPrev(c *Core, t *Thread, flags int) {
	rq := &f.rqs[c.ID]
	if flags&FlagPreempted != 0 {
		rq.pushHead(t)
		return
	}
	rq.queue = append(rq.queue, t)
}

// SelectCore implements Scheduler: least-loaded allowed core.
func (f *FIFO) SelectCore(t *Thread, origin *Core, flags int) *Core {
	var best *Core
	bestLoad := int(^uint(0) >> 1)
	for i, c := range f.m.Cores {
		if !t.CanRunOn(c.ID) {
			continue
		}
		if f.rqs[i].load < bestLoad {
			best, bestLoad = c, f.rqs[i].load
		}
	}
	return best
}

// CheckPreempt implements Scheduler: never preempt.
func (f *FIFO) CheckPreempt(c *Core, t *Thread, flags int) bool { return false }

// Tick implements Scheduler.
func (f *FIFO) Tick(c *Core, curr *Thread) {
	if curr == nil {
		// Idle cores retry stealing each tick; a successful Migrate
		// dispatches the core as a side effect of the enqueue.
		f.IdleBalance(c)
		return
	}
	rq := &f.rqs[c.ID]
	rq.sliceLeft -= f.TickPeriod()
	if rq.sliceLeft <= 0 && rq.size() > 0 {
		c.NeedResched = true
	}
}

// Fork implements Scheduler.
func (f *FIFO) Fork(parent, child *Thread) {}

// Exit implements Scheduler.
func (f *FIFO) Exit(t *Thread) {}

// IdleBalance implements Scheduler: steal one queued thread from the most
// loaded core.
func (f *FIFO) IdleBalance(c *Core) bool {
	var victim *Core
	most := 1 // need at least one queued beyond the running thread
	for i, o := range f.m.Cores {
		if o == c {
			continue
		}
		if f.rqs[i].size() > most-1 && f.rqs[i].load > most {
			victim, most = o, f.rqs[i].load
		}
	}
	if victim == nil {
		return false
	}
	// Steal the oldest queued thread allowed on c.
	rq := &f.rqs[victim.ID]
	for _, t := range rq.queue[rq.head:] {
		if t.CanRunOn(c.ID) {
			f.m.TraceSteal(c, victim, t)
			f.m.Migrate(t, victim, c)
			return true
		}
	}
	return false
}

// NrRunnable implements Scheduler.
func (f *FIFO) NrRunnable(c *Core) int { return f.rqs[c.ID].load }

// ExplainPick implements PickExplainer: the candidate view is the FIFO
// queue itself, keyed by queue position (0 = next to run).
func (f *FIFO) ExplainPick(c *Core, buf []PickCandidate) []PickCandidate {
	buf = buf[:0]
	rq := &f.rqs[c.ID]
	for i, t := range rq.queue[rq.head:] {
		buf = append(buf, PickCandidate{TID: int32(t.ID), Key: int64(i)})
	}
	return buf
}

// CoreOffline implements Hotplugger: migrate every queued thread to the
// least-loaded online core (SelectCore filters offline cores through
// CanRunOn).
func (f *FIFO) CoreOffline(c *Core) {
	rq := &f.rqs[c.ID]
	for rq.size() > 0 {
		t := rq.queue[rq.head]
		target := f.SelectCore(t, nil, FlagMigrate)
		if target == nil {
			panic("fifo: no online core for " + t.Name)
		}
		f.m.Migrate(t, c, target)
	}
}

// CoreOnline implements Hotplugger: nothing to rebuild — the engine's
// post-online dispatch pulls work back via IdleBalance.
func (f *FIFO) CoreOnline(c *Core) {}

var _ Scheduler = (*FIFO)(nil)
var _ Hotplugger = (*FIFO)(nil)
var _ PickExplainer = (*FIFO)(nil)
