package sim

import (
	"math/rand"
	"testing"
	"time"
)

// The timer wheel's determinism contract is "pops in exactly the binary
// heap's (at, seq) order". These tests hold it to that with the heap as the
// oracle, concentrating on the places a hierarchical wheel can go subtly
// wrong: slot and level boundaries, cascades the cursor lands inside,
// far-future overflow refiling, and same-timestamp seq ordering.

// wheelOracle drives a wheel and a heap through one interleaved
// push/pop schedule and fails on the first divergence.
type wheelOracle struct {
	t     *testing.T
	w     timerWheel
	h     eventHeap
	seq   uint64
	clock time.Duration
	pops  int
}

func newWheelOracle(t *testing.T) *wheelOracle {
	o := &wheelOracle{t: t}
	o.w.init()
	return o
}

// push schedules an event at the given time on both queues. Times before
// the current clock are clamped to it, matching the engine's "never
// schedule into the past" guarantee.
func (o *wheelOracle) push(at time.Duration) {
	if at < o.clock {
		at = o.clock
	}
	o.seq++
	e := event{at: at, seq: o.seq, id: int32(o.seq)}
	o.w.push(e)
	o.h.push(e)
}

// pop consumes one event from both queues and compares. Returns false when
// both are empty; diverging emptiness or content fails the test.
func (o *wheelOracle) pop() bool {
	o.t.Helper()
	wAt, wOK := o.w.peekAt()
	hOK := o.h.len() > 0
	if wOK != hOK {
		o.t.Fatalf("pop %d: wheel nonempty=%v, heap nonempty=%v", o.pops, wOK, hOK)
	}
	if !wOK {
		return false
	}
	we := o.w.pop()
	he := o.h.pop()
	if we != he {
		o.t.Fatalf("pop %d: wheel {at=%v seq=%d}, heap {at=%v seq=%d}",
			o.pops, we.at, we.seq, he.at, he.seq)
	}
	if wAt != we.at {
		o.t.Fatalf("pop %d: peekAt %v but popped at=%v", o.pops, wAt, we.at)
	}
	if we.at < o.clock {
		o.t.Fatalf("pop %d: time went backwards: %v after %v", o.pops, we.at, o.clock)
	}
	o.clock = we.at
	o.pops++
	return true
}

// drain pops until both queues are empty.
func (o *wheelOracle) drain() {
	for o.pop() {
	}
	if got := o.w.len(); got != 0 {
		o.t.Fatalf("wheel len = %d after drain", got)
	}
}

// TestWheelMatchesHeapFuzz interleaves random pushes and pops with horizons
// spanning every wheel level and the overflow, across several seeds.
func TestWheelMatchesHeapFuzz(t *testing.T) {
	// Horizon buckets, one per structural regime: within the current
	// level-0 slot, level 0, each higher level, and past the top horizon.
	horizons := []time.Duration{
		1 << wheelShift0,                                // same/adjacent slot
		wheelSlots << wheelShift0,                       // level 0 ring
		wheelSlots << (wheelShift0 + wheelBits),         // level 1
		wheelSlots << (wheelShift0 + 2*wheelBits),       // level 2
		wheelSlots << (wheelShift0 + 3*wheelBits),       // level 3
		2 * (wheelSlots << (wheelShift0 + 3*wheelBits)), // overflow
	}
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		o := newWheelOracle(t)
		for step := 0; step < 4000; step++ {
			switch {
			case rng.Intn(3) == 0 && o.h.len() > 0:
				o.pop()
			default:
				h := horizons[rng.Intn(len(horizons))]
				o.push(o.clock + time.Duration(rng.Int63n(int64(h))))
			}
		}
		o.drain()
	}
}

// TestWheelSlotEdges pins events to exact slot boundaries of every level,
// one tick before, and one tick after — the off-by-one surface of filing,
// draining, and cascading.
func TestWheelSlotEdges(t *testing.T) {
	o := newWheelOracle(t)
	for level := 0; level < wheelLevels; level++ {
		width := int64(1) << uint(wheelShift0+level*wheelBits)
		for _, mult := range []int64{1, 2, wheelSlots - 1, wheelSlots, wheelSlots + 1} {
			base := o.clock + time.Duration(mult*width)
			o.push(base - 1)
			o.push(base)
			o.push(base + 1)
		}
		// Consume a few to move the cursor into the middle of a ring.
		o.pop()
		o.pop()
	}
	o.drain()
}

// TestWheelSameTimestampSeqOrder checks that a burst of equal-time events
// pops in push (seq) order even when they land via different levels:
// some filed directly, some arriving after the cursor has moved (pushCur).
func TestWheelSameTimestampSeqOrder(t *testing.T) {
	o := newWheelOracle(t)
	at := o.clock + 300*time.Microsecond
	for i := 0; i < 64; i++ {
		o.push(at)
	}
	// Deliver the first few, then push more at the *same* timestamp — the
	// engine does this constantly (equal-time wakeups during a dispatch).
	for i := 0; i < 8; i++ {
		o.pop()
	}
	for i := 0; i < 16; i++ {
		o.push(at)
	}
	o.drain()
}

// TestWheelFarFutureOverflow exercises the overflow heap: events beyond the
// top level's rolling horizon must wait there and refile — in order — once
// the wheel empties, including a second generation pushed after the jump.
func TestWheelFarFutureOverflow(t *testing.T) {
	o := newWheelOracle(t)
	topSpan := time.Duration(wheelSlots) << uint(wheelShift0+3*wheelBits)
	for i := 0; i < 10; i++ {
		o.push(o.clock + 2*topSpan + time.Duration(i)*time.Millisecond)
	}
	o.push(o.clock + 5*topSpan) // beyond even the refiled span
	o.push(o.clock + time.Millisecond)
	for o.pop() {
		if o.pops == 5 {
			// Mid-drain, after the overflow jump: near events again.
			o.push(o.clock + 100*time.Microsecond)
		}
	}
	o.drain()
}

// TestWheelCascadeUnderCursor pushes an event into a higher-level slot,
// then advances the cursor into that slot's span with nearer events — the
// cascade-on-entry path (invariant 2) that keeps later same-slot arrivals
// from overtaking the cascaded ones.
func TestWheelCascadeUnderCursor(t *testing.T) {
	o := newWheelOracle(t)
	l1 := time.Duration(1) << uint(wheelShift0+wheelBits) // level-1 slot width
	// Far event: lands in a level-1 (or higher) slot.
	o.push(o.clock + 3*l1 + 17*time.Microsecond)
	// Near events marching the cursor across level-1 boundaries.
	for i := 1; i <= 40; i++ {
		o.push(o.clock + time.Duration(i)*100*time.Microsecond)
	}
	for i := 0; i < 20; i++ {
		o.pop()
		// New arrivals just ahead of the clock, squeezed between the
		// cursor and the not-yet-cascaded far event.
		o.push(o.clock + 50*time.Microsecond)
	}
	o.drain()
}

// TestWheelCoincidentLevelBoundaries pins the stranding bug where the
// candidate scan jumped the cursor to a winning slot's start and cascaded
// only that slot: a level-2 slot's start is also a level-1 boundary, so an
// occupied level-1 slot can share it, and skipping its cascade leaves the
// cursor inside an occupied slot (invariant 2 broken). Its events are then
// overtaken by the refiled level-2 ones and delivered late, out of order.
func TestWheelCoincidentLevelBoundaries(t *testing.T) {
	o := newWheelOracle(t)
	l2span := time.Duration(wheelSlots) << uint(wheelShift0+wheelBits)
	// A: beyond the level-1 ring from slot 0, so it files at level 2 —
	// into the slot starting exactly at l2span.
	o.push(l2span + 600*time.Microsecond)
	// March the cursor past one level-1 boundary so the next push can
	// reach the l2span boundary from within a level-1 ring.
	o.push(o.clock + time.Duration(wheelSlots+3)<<wheelShift0)
	o.pop()
	// B: earlier than A, inside the same first level-1 block of A's
	// level-2 slot; files at level 1 into the slot whose start coincides
	// with that level-2 slot's start. Both must cascade on the jump, or B
	// is stranded while A drains first.
	o.push(l2span + 100*time.Microsecond)
	o.drain()
}

// TestWheelLen holds len() to the oracle through a mixed workload.
func TestWheelLen(t *testing.T) {
	o := newWheelOracle(t)
	rng := rand.New(rand.NewSource(99))
	for step := 0; step < 1000; step++ {
		if rng.Intn(2) == 0 {
			o.push(o.clock + time.Duration(rng.Int63n(int64(50*time.Millisecond))))
		} else {
			o.pop()
		}
		if o.w.len() != o.h.len() {
			t.Fatalf("step %d: wheel len %d, heap len %d", step, o.w.len(), o.h.len())
		}
	}
	o.drain()
}
