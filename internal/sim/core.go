package sim

import (
	"fmt"
	"time"
)

// Core models one CPU. The engine owns dispatch; schedulers own runqueues.
type Core struct {
	// ID is the dense core index matching the topology.
	ID int

	mach *Machine

	// Curr is the running thread, nil when idle.
	Curr *Thread
	// NeedResched requests a reschedule at the next safe point; scheduler
	// Tick handlers set it on timeslice expiry.
	NeedResched bool

	// runStart is when the current accounting segment began (burst start,
	// or the last flush point).
	runStart time.Duration
	// burstToken invalidates in-flight burst-end events.
	burstToken uint64

	// lastThread is the thread that last occupied the core, to price
	// context switches.
	lastThread *Thread

	// dispatching guards against re-entrant dispatch while IdleBalance
	// pulls work.
	dispatching bool
	// inBoundary is set while a program's Next() runs on this core;
	// preemption of the mid-transition thread is deferred.
	inBoundary bool

	// BusyTime is cumulative thread execution time.
	BusyTime time.Duration
	// SchedTime is cumulative time charged to scheduler work (context
	// switches, placement scans).
	SchedTime time.Duration
	// ScanTime is the subset of SchedTime spent in placement scans — the
	// §6.3 "time spent in the scheduler" metric the paper reports.
	ScanTime time.Duration
	// IdleTime is cumulative idle time.
	IdleTime  time.Duration
	idleSince time.Duration
	wasIdle   bool
}

// Machine returns the owning machine.
func (c *Core) Machine() *Machine { return c.mach }

// Idle reports whether the core has no running thread.
func (c *Core) Idle() bool { return c.Curr == nil }

// flushRun folds the elapsed segment of the running thread into its
// accounting; schedulers always observe fresh RunTime.
func (c *Core) flushRun() {
	t := c.Curr
	if t == nil {
		return
	}
	now := c.mach.now
	if now <= c.runStart {
		return
	}
	delta := now - c.runStart
	c.runStart = now
	t.RunTime += delta
	c.BusyTime += delta
	if t.opValid && (t.op.Kind == OpRun || t.op.Kind == OpSpin) {
		t.opRemaining -= delta
		if t.opRemaining < 0 {
			t.opRemaining = 0
		}
	}
}

// chargeSched consumes d of core time as scheduler work. If a thread is
// running, its burst is pushed out by d (kernel work delays user work —
// the mechanism behind ULE's sysbench wakeup-scan overhead, §6.3).
func (c *Core) chargeSched(d time.Duration) {
	if d <= 0 {
		return
	}
	c.SchedTime += d
	if c.Curr != nil {
		c.flushRun()
		// Keep any not-yet-started delay (switch cost, earlier charges).
		base := c.runStart
		if base < c.mach.now {
			base = c.mach.now
		}
		c.runStart = base + d
		if c.Curr.opValid && (c.Curr.op.Kind == OpRun || c.Curr.op.Kind == OpSpin) {
			c.mach.scheduleBurstEnd(c)
		}
	}
}

func (c *Core) markIdle() {
	if !c.wasIdle {
		c.wasIdle = true
		c.idleSince = c.mach.now
	}
}

func (c *Core) markBusy() {
	if c.wasIdle {
		c.wasIdle = false
		c.IdleTime += c.mach.now - c.idleSince
	}
}

// Utilization returns busy/(busy+sched+idle) over the simulated run.
func (c *Core) Utilization() float64 {
	total := c.BusyTime + c.SchedTime + c.IdleTime
	if c.wasIdle {
		total += c.mach.now - c.idleSince
	}
	if total == 0 {
		return 0
	}
	return float64(c.BusyTime) / float64(total)
}

// SchedFraction returns the fraction of non-idle cycles spent in scheduler
// work, the §6.3 metric.
func (c *Core) SchedFraction() float64 {
	den := c.BusyTime + c.SchedTime
	if den == 0 {
		return 0
	}
	return float64(c.SchedTime) / float64(den)
}

// String renders the core state.
func (c *Core) String() string {
	if c.Curr == nil {
		return fmt.Sprintf("core%d[idle]", c.ID)
	}
	return fmt.Sprintf("core%d[%s]", c.ID, c.Curr.Name)
}
