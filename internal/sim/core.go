package sim

import (
	"fmt"
	"time"
)

// Core models one CPU. The engine owns dispatch; schedulers own runqueues.
type Core struct {
	// ID is the dense core index matching the topology.
	ID int

	mach *Machine

	// Curr is the running thread, nil when idle.
	Curr *Thread
	// NeedResched requests a reschedule at the next safe point; scheduler
	// Tick handlers set it on timeslice expiry.
	NeedResched bool

	// runStart is when the current accounting segment began (burst start,
	// or the last flush point). Burst-end and tick validation tokens live
	// in the machine's dense Machine.coreTok table, not here, so stale
	// timer events are dropped without loading this struct.
	runStart time.Duration

	// tickOffset staggers this core's tick grid (offset + k*period, k ≥ 1).
	tickOffset time.Duration
	// tickParked is set while the tick is suppressed on an idle core
	// (tickless mode only); markBusy re-arms on the grid.
	tickParked bool
	// lastTick is when this core's tick last fired, so grid re-arming
	// never double-fires a grid point within one timestamp.
	lastTick time.Duration
	// tickAt is the absolute time of the currently armed tick; parking
	// records it as parkAt, the first suppressed grid point. When the
	// superseded tick event pops there (a token-mismatch no-op),
	// parkWatermark captures the sequence counter — the position the
	// always-ticking engine's idle tick would have fired at — so a wake
	// exactly one period later can reproduce its same-timestamp ordering
	// (nextGridTick).
	tickAt        time.Duration
	parkAt        time.Duration
	parkWatermark uint64

	// lastThread is the thread that last occupied the core, to price
	// context switches.
	lastThread *Thread

	// dispatching guards against re-entrant dispatch while IdleBalance
	// pulls work.
	dispatching bool
	// inBoundary is set while a program's Next() runs on this core;
	// preemption of the mid-transition thread is deferred.
	inBoundary bool

	// offline marks a hot-unplugged core (Machine.OfflineCore): placement
	// refuses it (Thread.CanRunOn), its tick chain is stopped, and dispatch
	// never runs IdleBalance on it until Machine.OnlineCore.
	offline bool

	// speedNum scales the rate the core retires Run/Spin work relative to
	// wall time (frequency throttling): a running burst consumes
	// speedNum/speedDen of work per wall nanosecond. Zero means full
	// speed. workCarry accumulates the sub-nanosecond remainder of the
	// fixed-point division so cumulative work is exact no matter how
	// finely flushes slice the burst.
	speedNum  int64
	workCarry int64

	// BusyTime is cumulative thread execution time.
	BusyTime time.Duration
	// SchedTime is cumulative time charged to scheduler work (context
	// switches, placement scans).
	SchedTime time.Duration
	// ScanTime is the subset of SchedTime spent in placement scans — the
	// §6.3 "time spent in the scheduler" metric the paper reports.
	ScanTime time.Duration
	// IdleTime is cumulative idle time.
	IdleTime  time.Duration
	idleSince time.Duration
	wasIdle   bool
}

// Machine returns the owning machine.
func (c *Core) Machine() *Machine { return c.mach }

// Idle reports whether the core has no running thread.
func (c *Core) Idle() bool { return c.Curr == nil }

// Offline reports whether the core is hot-unplugged.
func (c *Core) Offline() bool { return c.offline }

// speedDen is the fixed denominator of the core speed fraction: factors
// resolve to a multiple of 1/65536, small enough that work×speedDen
// arithmetic cannot overflow int64 for any realistic simulated window.
const speedDen = 1 << 16

// Speed returns the core's current speed factor (1.0 = full speed).
func (c *Core) Speed() float64 {
	if c.speedNum == 0 {
		return 1
	}
	return float64(c.speedNum) / float64(speedDen)
}

// wallFor returns the wall time the core needs to retire work at its
// current speed. The ceiling pairs with workFor's floor-with-carry so a
// burst-end event armed wallFor(remaining) out always finds the work
// fully retired when it fires.
func (c *Core) wallFor(work time.Duration) time.Duration {
	if c.speedNum == 0 || work <= 0 {
		return work
	}
	return time.Duration((int64(work)*speedDen + c.speedNum - 1) / c.speedNum)
}

// workFor converts an elapsed wall segment into retired work at the
// core's speed, carrying the fixed-point remainder across calls so
// arbitrarily fine flush granularity (ticks, charges) loses nothing.
func (c *Core) workFor(delta time.Duration) time.Duration {
	if c.speedNum == 0 {
		return delta
	}
	num := int64(delta)*c.speedNum + c.workCarry
	c.workCarry = num % speedDen
	return time.Duration(num / speedDen)
}

// flushRun folds the elapsed segment of the running thread into its
// accounting; schedulers always observe fresh RunTime.
func (c *Core) flushRun() {
	t := c.Curr
	if t == nil {
		return
	}
	now := c.mach.now
	if now <= c.runStart {
		return
	}
	delta := now - c.runStart
	c.runStart = now
	t.RunTime += delta
	c.BusyTime += delta
	if t.opValid && (t.op.Kind == OpRun || t.op.Kind == OpSpin) {
		t.opRemaining -= c.workFor(delta)
		if t.opRemaining < 0 {
			t.opRemaining = 0
		}
	}
}

// chargeSched consumes d of core time as scheduler work. If a thread is
// running, its burst is pushed out by d (kernel work delays user work —
// the mechanism behind ULE's sysbench wakeup-scan overhead, §6.3).
func (c *Core) chargeSched(d time.Duration) {
	if d <= 0 {
		return
	}
	c.SchedTime += d
	if c.Curr != nil {
		c.flushRun()
		// Keep any not-yet-started delay (switch cost, earlier charges).
		base := c.runStart
		if base < c.mach.now {
			base = c.mach.now
		}
		c.runStart = base + d
		if c.Curr.opValid && (c.Curr.op.Kind == OpRun || c.Curr.op.Kind == OpSpin) {
			c.mach.scheduleBurstEnd(c)
		}
	}
}

func (c *Core) markIdle() {
	if !c.wasIdle {
		c.wasIdle = true
		c.idleSince = c.mach.now
		if !c.mach.idleTicks && !c.tickParked {
			// Tickless: park the tick; the in-flight event is dropped by
			// the token bump when it pops (recording parkWatermark there).
			c.tickParked = true
			c.mach.coreTok[c.ID].tick++
			c.parkAt = c.tickAt
			c.parkWatermark = 0
		}
	}
}

func (c *Core) markBusy() {
	if c.wasIdle {
		c.wasIdle = false
		c.IdleTime += c.mach.now - c.idleSince
		if c.tickParked {
			c.tickParked = false
			c.mach.armTick(c, c.nextGridTick(c.mach.now))
		}
	}
}

// nextGridTick returns the earliest point of the core's staggered tick grid
// (tickOffset + k*period, k ≥ 1) at or after now that an always-ticking
// core would still observe as a busy tick, so a core that idled through
// some grid points resumes ticking at exactly the times an always-ticking
// core would.
//
// The at == now boundary (a wake landing exactly on a grid point) follows
// always-ticking event order: there the tick event for `now` was armed at
// the previous grid point, so the waking event fires first — leaving the
// tick a busy one — only if it was armed earlier than that re-arm. An
// event armed strictly before the previous grid point always wins; one
// armed strictly after always loses. An event armed exactly at the
// previous grid point is resolved by parkWatermark when that point is the
// first suppressed one (the superseded tick event popped there, recording
// the position the always-ticking idle tick fired at); deeper into a
// parked window no event exists to compare against, and the event is
// treated as armed after the suppressed tick.
func (c *Core) nextGridTick(now time.Duration) time.Duration {
	p := c.mach.tickPeriod
	n := now - c.tickOffset
	var at time.Duration
	if n <= p {
		at = c.tickOffset + p
	} else {
		at = c.tickOffset + n/p*p
		if at < now {
			at += p
		}
	}
	if at == now {
		armedBefore := at - p
		if armedBefore == c.tickOffset {
			armedBefore = 0 // first grid point: armed at construction
		}
		include := c.mach.curArmed < armedBefore
		if !include && c.mach.curArmed == armedBefore && armedBefore == c.parkAt {
			include = c.mach.curSeq <= c.parkWatermark
		}
		if !include {
			at += p
		}
	}
	if at <= c.lastTick {
		at += p
	}
	return at
}

// BusySoFar returns cumulative thread execution time including the
// running thread's in-flight, not-yet-flushed segment — the read
// telemetry samplers use mid-burst (BusyTime alone lags by up to one
// burst at a timer-driven sample point).
func (c *Core) BusySoFar() time.Duration {
	b := c.BusyTime
	if c.Curr != nil && c.mach.now > c.runStart {
		b += c.mach.now - c.runStart
	}
	return b
}

// Utilization returns busy/(busy+sched+idle) over the simulated run.
func (c *Core) Utilization() float64 {
	total := c.BusyTime + c.SchedTime + c.IdleTime
	if c.wasIdle {
		total += c.mach.now - c.idleSince
	}
	if total == 0 {
		return 0
	}
	return float64(c.BusyTime) / float64(total)
}

// SchedFraction returns the fraction of non-idle cycles spent in scheduler
// work, the §6.3 metric.
func (c *Core) SchedFraction() float64 {
	den := c.BusyTime + c.SchedTime
	if den == 0 {
		return 0
	}
	return float64(c.SchedTime) / float64(den)
}

// String renders the core state.
func (c *Core) String() string {
	if c.Curr == nil {
		return fmt.Sprintf("core%d[idle]", c.ID)
	}
	return fmt.Sprintf("core%d[%s]", c.ID, c.Curr.Name)
}
