package sim

// Engine microbenchmarks: the perf trajectory of the event core is tracked
// from these plus BenchmarkSimulatorThroughput (repo root) and the
// `schedbattle -perf` harness (BENCH_engine.json). Run with -benchmem: the
// hot timer paths must report 0 allocs/op.

import (
	"testing"
	"time"

	"repro/internal/topo"
)

// BenchmarkEngineEvents drives the hot timer paths — burst-end, tick,
// sleep-wake, wakeup dispatch — on a warmed 8-core machine. One op is 1 ms
// of simulated time; events/op reports the event rate behind it.
func BenchmarkEngineEvents(b *testing.B) {
	m := NewMachine(topo.Small(), NewFIFO(), Options{Seed: 9})
	for i := 0; i < 12; i++ {
		m.StartThread("w", "app", 0, &runSleeper{run: 700 * time.Microsecond, sleep: 400 * time.Microsecond})
	}
	m.Run(250 * time.Millisecond) // settle heap, runqueue, and callback capacity
	b.ReportAllocs()
	b.ResetTimer()
	start := m.EventsProcessed()
	for i := 0; i < b.N; i++ {
		m.Run(m.Now() + time.Millisecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(m.EventsProcessed()-start)/float64(b.N), "events/op")
}

// benchIdleMachine measures an idle 32-core machine for one simulated
// second per op: tickless it is fully quiescent; with idle ticks forced it
// pays the pre-tickless per-core tick stream (32 cores × 1000 Hz).
func benchIdleMachine(b *testing.B, force bool) {
	m := NewMachine(topo.Default(), newTicklessFIFO(false), Options{Seed: 1, ForceIdleTicks: force})
	b.ReportAllocs()
	b.ResetTimer()
	start := m.EventsProcessed()
	for i := 0; i < b.N; i++ {
		m.Run(m.Now() + time.Second)
	}
	b.StopTimer()
	b.ReportMetric(float64(m.EventsProcessed()-start)/float64(b.N), "events/op")
}

func BenchmarkIdleMachine(b *testing.B) {
	b.Run("tickless", func(b *testing.B) { benchIdleMachine(b, false) })
	b.Run("forced-idle-ticks", func(b *testing.B) { benchIdleMachine(b, true) })
}
