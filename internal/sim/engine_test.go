package sim

import (
	"testing"
	"time"

	"repro/internal/topo"
	"repro/internal/trace"
)

// script is a test program executing a fixed list of ops, then exiting.
type script struct {
	ops []Op
	i   int
	// hooks run before the op at the same index is returned.
	hooks map[int]func(*Ctx)
}

func (s *script) Next(ctx *Ctx) Op {
	if s.hooks != nil {
		if h, ok := s.hooks[s.i]; ok {
			h(ctx)
		}
	}
	if s.i >= len(s.ops) {
		return Exit()
	}
	op := s.ops[s.i]
	s.i++
	return op
}

// looper runs bursts of the given length forever.
type looper struct{ burst time.Duration }

func (l *looper) Next(ctx *Ctx) Op { return Run(l.burst) }

func newTestMachine(t *testing.T, tp *topo.Topology) *Machine {
	t.Helper()
	return NewMachine(tp, NewFIFO(), Options{Seed: 7, Cost: &CostModel{}, TraceCapacity: 10000})
}

func TestSingleThreadRunsAndExits(t *testing.T) {
	m := newTestMachine(t, topo.SingleCore())
	th := m.StartThread("worker", "app", 0, &script{ops: []Op{Run(5 * time.Millisecond), Run(3 * time.Millisecond)}})
	m.Run(time.Second)
	if th.State() != StateDead {
		t.Fatalf("state = %v, want dead", th.State())
	}
	if got, want := th.RunTime, 8*time.Millisecond; got != want {
		t.Fatalf("RunTime = %v, want %v", got, want)
	}
	if m.LiveThreads() != 0 {
		t.Fatalf("LiveThreads = %d", m.LiveThreads())
	}
	if m.Trace.Count(trace.Exit) != 1 {
		t.Fatal("missing exit trace")
	}
}

func TestSleepAccountsSleepTime(t *testing.T) {
	m := newTestMachine(t, topo.SingleCore())
	th := m.StartThread("sleepy", "app", 0, &script{ops: []Op{
		Run(time.Millisecond),
		Sleep(50 * time.Millisecond),
		Run(time.Millisecond),
	}})
	m.Run(time.Second)
	if th.State() != StateDead {
		t.Fatalf("state = %v", th.State())
	}
	if got := th.SleepTime; got != 50*time.Millisecond {
		t.Fatalf("SleepTime = %v, want 50ms", got)
	}
	if got := th.RunTime; got != 2*time.Millisecond {
		t.Fatalf("RunTime = %v, want 2ms", got)
	}
}

func TestBlockAndSignal(t *testing.T) {
	m := newTestMachine(t, topo.SingleCore())
	wq := NewWaitQueue("q")
	waiter := m.StartThread("waiter", "app", 0, &script{ops: []Op{Block(wq), Run(time.Millisecond)}})
	m.StartThread("signaler", "app", 0, &script{ops: []Op{Run(10 * time.Millisecond)}, hooks: map[int]func(*Ctx){
		1: func(ctx *Ctx) { ctx.Signal(wq, 1) }, // after the run burst
	}})
	// The hook at index 1 fires when the signaler asks for its second op,
	// i.e. 10ms in (after waiter blocked).
	m.Run(time.Second)
	if waiter.State() != StateDead {
		t.Fatalf("waiter state = %v", waiter.State())
	}
	// Waiter slept from ~0 to ~10ms.
	if waiter.SleepTime < 9*time.Millisecond || waiter.SleepTime > 11*time.Millisecond {
		t.Fatalf("waiter SleepTime = %v, want ~10ms", waiter.SleepTime)
	}
}

func TestWakeOnTimedSleepCancelsTimer(t *testing.T) {
	m := newTestMachine(t, topo.SingleCore())
	var sleeper *Thread
	sleeper = m.StartThread("s", "app", 0, &script{ops: []Op{
		Sleep(time.Hour), // would sleep forever
		Run(time.Millisecond),
	}})
	m.After(5*time.Millisecond, func() { m.Wake(sleeper) })
	m.Run(time.Second)
	if sleeper.State() != StateDead {
		t.Fatalf("sleeper state = %v, want dead (woken early)", sleeper.State())
	}
	if sleeper.SleepTime > 6*time.Millisecond {
		t.Fatalf("SleepTime = %v, want ~5ms", sleeper.SleepTime)
	}
}

func TestSpinReleasedByBroadcast(t *testing.T) {
	m := newTestMachine(t, topo.MustNew(topo.Config{NUMANodes: 1, LLCsPerNode: 1, CoresPerLLC: 2}))
	wq := NewWaitQueue("barrier")
	spinner := m.StartThread("spinner", "app", 0, &script{ops: []Op{
		Spin(wq, time.Hour), // would spin for an hour
		Run(time.Millisecond),
	}})
	m.StartThread("releaser", "app", 0, &script{ops: []Op{Run(20 * time.Millisecond)}, hooks: map[int]func(*Ctx){
		1: func(ctx *Ctx) { ctx.Broadcast(wq) },
	}})
	m.Run(time.Second)
	if spinner.State() != StateDead {
		t.Fatalf("spinner state = %v", spinner.State())
	}
	// Spinner burned ~20ms spinning (both on separate cores) + 1ms run.
	if spinner.RunTime < 19*time.Millisecond || spinner.RunTime > 22*time.Millisecond {
		t.Fatalf("spinner RunTime = %v, want ~21ms", spinner.RunTime)
	}
	if wq.Spinners() != 0 {
		t.Fatal("spinner not deregistered")
	}
}

func TestSpinTimeoutCompletes(t *testing.T) {
	m := newTestMachine(t, topo.SingleCore())
	wq := NewWaitQueue("never")
	th := m.StartThread("s", "app", 0, &script{ops: []Op{
		Spin(wq, 5*time.Millisecond),
		Run(time.Millisecond),
	}})
	m.Run(time.Second)
	if th.State() != StateDead {
		t.Fatalf("state = %v", th.State())
	}
	if th.RunTime != 6*time.Millisecond {
		t.Fatalf("RunTime = %v, want 6ms", th.RunTime)
	}
}

func TestForkRunsChild(t *testing.T) {
	m := newTestMachine(t, topo.SingleCore())
	var child *Thread
	m.StartThread("parent", "app", 0, &script{
		ops: []Op{Run(time.Millisecond), Run(time.Millisecond)},
		hooks: map[int]func(*Ctx){1: func(ctx *Ctx) {
			child = ctx.Fork("child", "app", 0, &script{ops: []Op{Run(2 * time.Millisecond)}})
		}},
	})
	m.Run(time.Second)
	if child == nil || child.State() != StateDead {
		t.Fatalf("child = %v", child)
	}
	if child.Parent == nil || child.Parent.Name != "parent" {
		t.Fatal("child parent not set")
	}
	if child.RunTime != 2*time.Millisecond {
		t.Fatalf("child RunTime = %v", child.RunTime)
	}
	// Two fork records: the root StartThread and the Ctx.Fork child.
	if got := m.Trace.Count(trace.Fork); got != 2 {
		t.Fatalf("fork trace count = %d, want 2", got)
	}
}

func TestRoundRobinFairnessOnOneCore(t *testing.T) {
	m := newTestMachine(t, topo.SingleCore())
	a := m.StartThread("a", "app", 0, &looper{burst: time.Millisecond})
	b := m.StartThread("b", "app", 0, &looper{burst: time.Millisecond})
	m.Run(2 * time.Second)
	total := a.RunTime + b.RunTime
	if total < 1900*time.Millisecond {
		t.Fatalf("total runtime = %v, core was idle", total)
	}
	ratio := float64(a.RunTime) / float64(total)
	if ratio < 0.45 || ratio > 0.55 {
		t.Fatalf("share of a = %v, want ~0.5 (a=%v b=%v)", ratio, a.RunTime, b.RunTime)
	}
}

func TestIdleStealSpreadsLoad(t *testing.T) {
	m := newTestMachine(t, topo.MustNew(topo.Config{NUMANodes: 1, LLCsPerNode: 1, CoresPerLLC: 4}))
	// Pin 4 spinners to core 0 from birth, then unpin; idle cores steal.
	var ths []*Thread
	for i := 0; i < 4; i++ {
		th := m.StartThreadCfg(ThreadConfig{
			Name: "s", Group: "app", Pinned: []int{0},
			Prog: &looper{burst: time.Millisecond},
		})
		ths = append(ths, th)
	}
	m.Run(50 * time.Millisecond)
	for _, th := range ths {
		m.SetPinned(th, nil)
	}
	m.Run(200 * time.Millisecond)
	counts := m.RunnableCounts()
	for i, n := range counts {
		if n != 1 {
			t.Fatalf("core %d has %d runnable, want 1 (counts=%v)", i, n, counts)
		}
	}
	if m.Trace.Count(trace.Steal) == 0 {
		t.Fatal("no steals traced")
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func() (time.Duration, uint64) {
		m := NewMachine(topo.Small(), NewFIFO(), Options{Seed: 99, TraceCapacity: 0})
		for i := 0; i < 6; i++ {
			m.StartThread("w", "app", 0, &script{ops: []Op{
				Run(3 * time.Millisecond), Sleep(time.Millisecond),
				Run(2 * time.Millisecond), Yield(),
				Run(time.Millisecond),
			}})
		}
		m.Run(time.Second)
		var total time.Duration
		for _, th := range m.Threads() {
			total += th.RunTime
		}
		return total, m.Trace.Count(trace.Switch)
	}
	r1, s1 := run()
	r2, s2 := run()
	if r1 != r2 || s1 != s2 {
		t.Fatalf("non-deterministic: (%v,%d) vs (%v,%d)", r1, s1, r2, s2)
	}
}

func TestCostModelChargesSwitchCost(t *testing.T) {
	cost := CostModel{SwitchCost: 100 * time.Microsecond}
	m := NewMachine(topo.SingleCore(), NewFIFO(), Options{Seed: 1, Cost: &cost})
	m.StartThread("a", "app", 0, &looper{burst: time.Millisecond})
	m.StartThread("b", "app", 0, &looper{burst: time.Millisecond})
	m.Run(time.Second)
	c := m.Cores[0]
	if c.SchedTime == 0 {
		t.Fatal("no scheduler time charged")
	}
	if c.SchedFraction() < 0.001 {
		t.Fatalf("SchedFraction = %v", c.SchedFraction())
	}
	// Busy + sched should fill the second (no idle on a contended core).
	total := c.BusyTime + c.SchedTime
	if total < 990*time.Millisecond {
		t.Fatalf("busy+sched = %v", total)
	}
}

func TestMigrationPenaltyAppliedAcrossLLC(t *testing.T) {
	cost := CostModel{MigrationPenalty: time.Millisecond}
	tp := topo.MustNew(topo.Config{NUMANodes: 2, LLCsPerNode: 1, CoresPerLLC: 1})
	m := NewMachine(tp, NewFIFO(), Options{Seed: 1, Cost: &cost})
	// Two spinners pinned to core 0; unpin one so core 1 steals it across
	// the LLC boundary.
	a := m.StartThreadCfg(ThreadConfig{Name: "a", Group: "app", Pinned: []int{0}, Prog: &looper{burst: time.Millisecond}})
	b := m.StartThreadCfg(ThreadConfig{Name: "b", Group: "app", Pinned: []int{0}, Prog: &looper{burst: time.Millisecond}})
	m.Run(10 * time.Millisecond)
	m.SetPinned(b, nil)
	m.Run(100 * time.Millisecond)
	if m.Trace.Count(trace.Migrate) == 0 {
		t.Fatal("no migration happened")
	}
	_ = a
}

func TestRunUntilPredicate(t *testing.T) {
	m := newTestMachine(t, topo.SingleCore())
	th := m.StartThread("w", "app", 0, &script{ops: []Op{Run(30 * time.Millisecond)}})
	ok := m.RunUntil(func() bool { return th.State() == StateDead }, time.Second)
	if !ok {
		t.Fatal("predicate not satisfied")
	}
	if m.Now() > 40*time.Millisecond {
		t.Fatalf("ran too long: %v", m.Now())
	}
	// Unsatisfiable predicate times out at max.
	ok = m.RunUntil(func() bool { return false }, 50*time.Millisecond)
	if ok {
		t.Fatal("predicate mysteriously satisfied")
	}
}

func TestEveryRepeatsUntilFalse(t *testing.T) {
	m := newTestMachine(t, topo.SingleCore())
	var fired int
	m.Every(10*time.Millisecond, 10*time.Millisecond, func() bool {
		fired++
		return fired < 5
	})
	m.Run(time.Second)
	if fired != 5 {
		t.Fatalf("fired %d times, want 5", fired)
	}
}

func TestZeroOpGuardPanics(t *testing.T) {
	m := newTestMachine(t, topo.SingleCore())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for stuck program")
		}
	}()
	m.StartThread("stuck", "app", 0, ProgramFunc(func(ctx *Ctx) Op { return Run(0) }))
	m.Run(time.Second)
}

func TestWakeRunningIsNoop(t *testing.T) {
	m := newTestMachine(t, topo.SingleCore())
	th := m.StartThread("w", "app", 0, &script{ops: []Op{Run(10 * time.Millisecond)}})
	m.After(time.Millisecond, func() { m.Wake(th) }) // running: no-op
	m.Run(time.Second)
	if th.RunTime != 10*time.Millisecond {
		t.Fatalf("RunTime = %v", th.RunTime)
	}
}

func TestExitWQBroadcastsJoiners(t *testing.T) {
	m := newTestMachine(t, topo.MustNew(topo.Config{NUMANodes: 1, LLCsPerNode: 1, CoresPerLLC: 2}))
	worker := m.StartThread("worker", "app", 0, &script{ops: []Op{Run(10 * time.Millisecond)}})
	joiner := m.StartThread("joiner", "app", 0, &script{ops: []Op{Block(worker.ExitWQ), Run(time.Millisecond)}})
	m.Run(time.Second)
	if joiner.State() != StateDead {
		t.Fatalf("joiner state = %v, want dead after join", joiner.State())
	}
	if joiner.SleepTime < 9*time.Millisecond {
		t.Fatalf("joiner SleepTime = %v", joiner.SleepTime)
	}
}

func TestPinnedThreadStaysPut(t *testing.T) {
	m := newTestMachine(t, topo.Small())
	th := m.StartThread("pinned", "app", 0, &script{ops: []Op{
		Run(time.Millisecond), Sleep(time.Millisecond),
		Run(time.Millisecond), Sleep(time.Millisecond),
		Run(time.Millisecond),
	}})
	m.SetPinned(th, []int{3})
	// Give it load elsewhere so placement would prefer other cores.
	for i := 0; i < 4; i++ {
		m.StartThread("bg", "app", 0, &looper{burst: time.Millisecond})
	}
	m.Run(time.Second)
	if th.State() != StateDead {
		t.Fatalf("state = %v", th.State())
	}
	// Its last core must be 3 — the only allowed one after pinning. (The
	// first placement happened before SetPinned, so check LastCore only.)
	if th.LastCore == nil {
		t.Fatal("never ran")
	}
}

func TestThreadConservation(t *testing.T) {
	// No thread may be lost or duplicated across heavy churn.
	m := newTestMachine(t, topo.Small())
	const n = 40
	for i := 0; i < n; i++ {
		m.StartThread("w", "app", 0, &script{ops: []Op{
			Run(time.Millisecond), Sleep(2 * time.Millisecond),
			Run(time.Millisecond), Yield(),
			Run(3 * time.Millisecond),
		}})
	}
	m.Run(5 * time.Second)
	if m.LiveThreads() != 0 {
		t.Fatalf("LiveThreads = %d, want 0", m.LiveThreads())
	}
	for _, th := range m.Threads() {
		if th.State() != StateDead {
			t.Fatalf("thread %v not dead", th)
		}
		if th.RunTime != 5*time.Millisecond {
			t.Fatalf("thread %v RunTime = %v, want 5ms", th, th.RunTime)
		}
	}
}
