package sim

import (
	"testing"
	"time"

	"repro/internal/topo"
	"repro/internal/trace"
)

// script is a test program executing a fixed list of ops, then exiting.
type script struct {
	ops []Op
	i   int
	// hooks run before the op at the same index is returned.
	hooks map[int]func(*Ctx)
}

func (s *script) Next(ctx *Ctx) Op {
	if s.hooks != nil {
		if h, ok := s.hooks[s.i]; ok {
			h(ctx)
		}
	}
	if s.i >= len(s.ops) {
		return Exit()
	}
	op := s.ops[s.i]
	s.i++
	return op
}

// looper runs bursts of the given length forever.
type looper struct{ burst time.Duration }

func (l *looper) Next(ctx *Ctx) Op { return Run(l.burst) }

func newTestMachine(t *testing.T, tp *topo.Topology) *Machine {
	t.Helper()
	return NewMachine(tp, NewFIFO(), Options{Seed: 7, Cost: &CostModel{}, TraceCapacity: 10000})
}

func TestSingleThreadRunsAndExits(t *testing.T) {
	m := newTestMachine(t, topo.SingleCore())
	th := m.StartThread("worker", "app", 0, &script{ops: []Op{Run(5 * time.Millisecond), Run(3 * time.Millisecond)}})
	m.Run(time.Second)
	if th.State() != StateDead {
		t.Fatalf("state = %v, want dead", th.State())
	}
	if got, want := th.RunTime, 8*time.Millisecond; got != want {
		t.Fatalf("RunTime = %v, want %v", got, want)
	}
	if m.LiveThreads() != 0 {
		t.Fatalf("LiveThreads = %d", m.LiveThreads())
	}
	if m.Trace.Count(trace.Exit) != 1 {
		t.Fatal("missing exit trace")
	}
}

func TestSleepAccountsSleepTime(t *testing.T) {
	m := newTestMachine(t, topo.SingleCore())
	th := m.StartThread("sleepy", "app", 0, &script{ops: []Op{
		Run(time.Millisecond),
		Sleep(50 * time.Millisecond),
		Run(time.Millisecond),
	}})
	m.Run(time.Second)
	if th.State() != StateDead {
		t.Fatalf("state = %v", th.State())
	}
	if got := th.SleepTime; got != 50*time.Millisecond {
		t.Fatalf("SleepTime = %v, want 50ms", got)
	}
	if got := th.RunTime; got != 2*time.Millisecond {
		t.Fatalf("RunTime = %v, want 2ms", got)
	}
}

func TestBlockAndSignal(t *testing.T) {
	m := newTestMachine(t, topo.SingleCore())
	wq := NewWaitQueue("q")
	waiter := m.StartThread("waiter", "app", 0, &script{ops: []Op{Block(wq), Run(time.Millisecond)}})
	m.StartThread("signaler", "app", 0, &script{ops: []Op{Run(10 * time.Millisecond)}, hooks: map[int]func(*Ctx){
		1: func(ctx *Ctx) { ctx.Signal(wq, 1) }, // after the run burst
	}})
	// The hook at index 1 fires when the signaler asks for its second op,
	// i.e. 10ms in (after waiter blocked).
	m.Run(time.Second)
	if waiter.State() != StateDead {
		t.Fatalf("waiter state = %v", waiter.State())
	}
	// Waiter slept from ~0 to ~10ms.
	if waiter.SleepTime < 9*time.Millisecond || waiter.SleepTime > 11*time.Millisecond {
		t.Fatalf("waiter SleepTime = %v, want ~10ms", waiter.SleepTime)
	}
}

func TestWakeOnTimedSleepCancelsTimer(t *testing.T) {
	m := newTestMachine(t, topo.SingleCore())
	var sleeper *Thread
	sleeper = m.StartThread("s", "app", 0, &script{ops: []Op{
		Sleep(time.Hour), // would sleep forever
		Run(time.Millisecond),
	}})
	m.After(5*time.Millisecond, func() { m.Wake(sleeper) })
	m.Run(time.Second)
	if sleeper.State() != StateDead {
		t.Fatalf("sleeper state = %v, want dead (woken early)", sleeper.State())
	}
	if sleeper.SleepTime > 6*time.Millisecond {
		t.Fatalf("SleepTime = %v, want ~5ms", sleeper.SleepTime)
	}
}

func TestSpinReleasedByBroadcast(t *testing.T) {
	m := newTestMachine(t, topo.MustNew(topo.Config{NUMANodes: 1, LLCsPerNode: 1, CoresPerLLC: 2}))
	wq := NewWaitQueue("barrier")
	spinner := m.StartThread("spinner", "app", 0, &script{ops: []Op{
		Spin(wq, time.Hour), // would spin for an hour
		Run(time.Millisecond),
	}})
	m.StartThread("releaser", "app", 0, &script{ops: []Op{Run(20 * time.Millisecond)}, hooks: map[int]func(*Ctx){
		1: func(ctx *Ctx) { ctx.Broadcast(wq) },
	}})
	m.Run(time.Second)
	if spinner.State() != StateDead {
		t.Fatalf("spinner state = %v", spinner.State())
	}
	// Spinner burned ~20ms spinning (both on separate cores) + 1ms run.
	if spinner.RunTime < 19*time.Millisecond || spinner.RunTime > 22*time.Millisecond {
		t.Fatalf("spinner RunTime = %v, want ~21ms", spinner.RunTime)
	}
	if wq.Spinners() != 0 {
		t.Fatal("spinner not deregistered")
	}
}

func TestSpinTimeoutCompletes(t *testing.T) {
	m := newTestMachine(t, topo.SingleCore())
	wq := NewWaitQueue("never")
	th := m.StartThread("s", "app", 0, &script{ops: []Op{
		Spin(wq, 5*time.Millisecond),
		Run(time.Millisecond),
	}})
	m.Run(time.Second)
	if th.State() != StateDead {
		t.Fatalf("state = %v", th.State())
	}
	if th.RunTime != 6*time.Millisecond {
		t.Fatalf("RunTime = %v, want 6ms", th.RunTime)
	}
}

func TestForkRunsChild(t *testing.T) {
	m := newTestMachine(t, topo.SingleCore())
	var child *Thread
	m.StartThread("parent", "app", 0, &script{
		ops: []Op{Run(time.Millisecond), Run(time.Millisecond)},
		hooks: map[int]func(*Ctx){1: func(ctx *Ctx) {
			child = ctx.Fork("child", "app", 0, &script{ops: []Op{Run(2 * time.Millisecond)}})
		}},
	})
	m.Run(time.Second)
	if child == nil || child.State() != StateDead {
		t.Fatalf("child = %v", child)
	}
	if child.Parent == nil || child.Parent.Name != "parent" {
		t.Fatal("child parent not set")
	}
	if child.RunTime != 2*time.Millisecond {
		t.Fatalf("child RunTime = %v", child.RunTime)
	}
	// Two fork records: the root StartThread and the Ctx.Fork child.
	if got := m.Trace.Count(trace.Fork); got != 2 {
		t.Fatalf("fork trace count = %d, want 2", got)
	}
}

func TestRoundRobinFairnessOnOneCore(t *testing.T) {
	m := newTestMachine(t, topo.SingleCore())
	a := m.StartThread("a", "app", 0, &looper{burst: time.Millisecond})
	b := m.StartThread("b", "app", 0, &looper{burst: time.Millisecond})
	m.Run(2 * time.Second)
	total := a.RunTime + b.RunTime
	if total < 1900*time.Millisecond {
		t.Fatalf("total runtime = %v, core was idle", total)
	}
	ratio := float64(a.RunTime) / float64(total)
	if ratio < 0.45 || ratio > 0.55 {
		t.Fatalf("share of a = %v, want ~0.5 (a=%v b=%v)", ratio, a.RunTime, b.RunTime)
	}
}

func TestIdleStealSpreadsLoad(t *testing.T) {
	m := newTestMachine(t, topo.MustNew(topo.Config{NUMANodes: 1, LLCsPerNode: 1, CoresPerLLC: 4}))
	// Pin 4 spinners to core 0 from birth, then unpin; idle cores steal.
	var ths []*Thread
	for i := 0; i < 4; i++ {
		th := m.StartThreadCfg(ThreadConfig{
			Name: "s", Group: "app", Pinned: []int{0},
			Prog: &looper{burst: time.Millisecond},
		})
		ths = append(ths, th)
	}
	m.Run(50 * time.Millisecond)
	for _, th := range ths {
		m.SetPinned(th, nil)
	}
	m.Run(200 * time.Millisecond)
	counts := m.RunnableCounts()
	for i, n := range counts {
		if n != 1 {
			t.Fatalf("core %d has %d runnable, want 1 (counts=%v)", i, n, counts)
		}
	}
	if m.Trace.Count(trace.Steal) == 0 {
		t.Fatal("no steals traced")
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func() (time.Duration, uint64) {
		m := NewMachine(topo.Small(), NewFIFO(), Options{Seed: 99, TraceCapacity: 0})
		for i := 0; i < 6; i++ {
			m.StartThread("w", "app", 0, &script{ops: []Op{
				Run(3 * time.Millisecond), Sleep(time.Millisecond),
				Run(2 * time.Millisecond), Yield(),
				Run(time.Millisecond),
			}})
		}
		m.Run(time.Second)
		var total time.Duration
		for _, th := range m.Threads() {
			total += th.RunTime
		}
		return total, m.Trace.Count(trace.Switch)
	}
	r1, s1 := run()
	r2, s2 := run()
	if r1 != r2 || s1 != s2 {
		t.Fatalf("non-deterministic: (%v,%d) vs (%v,%d)", r1, s1, r2, s2)
	}
}

func TestCostModelChargesSwitchCost(t *testing.T) {
	cost := CostModel{SwitchCost: 100 * time.Microsecond}
	m := NewMachine(topo.SingleCore(), NewFIFO(), Options{Seed: 1, Cost: &cost})
	m.StartThread("a", "app", 0, &looper{burst: time.Millisecond})
	m.StartThread("b", "app", 0, &looper{burst: time.Millisecond})
	m.Run(time.Second)
	c := m.Cores[0]
	if c.SchedTime == 0 {
		t.Fatal("no scheduler time charged")
	}
	if c.SchedFraction() < 0.001 {
		t.Fatalf("SchedFraction = %v", c.SchedFraction())
	}
	// Busy + sched should fill the second (no idle on a contended core).
	total := c.BusyTime + c.SchedTime
	if total < 990*time.Millisecond {
		t.Fatalf("busy+sched = %v", total)
	}
}

func TestMigrationPenaltyAppliedAcrossLLC(t *testing.T) {
	cost := CostModel{MigrationPenalty: time.Millisecond}
	tp := topo.MustNew(topo.Config{NUMANodes: 2, LLCsPerNode: 1, CoresPerLLC: 1})
	m := NewMachine(tp, NewFIFO(), Options{Seed: 1, Cost: &cost})
	// Two spinners pinned to core 0; unpin one so core 1 steals it across
	// the LLC boundary.
	a := m.StartThreadCfg(ThreadConfig{Name: "a", Group: "app", Pinned: []int{0}, Prog: &looper{burst: time.Millisecond}})
	b := m.StartThreadCfg(ThreadConfig{Name: "b", Group: "app", Pinned: []int{0}, Prog: &looper{burst: time.Millisecond}})
	m.Run(10 * time.Millisecond)
	m.SetPinned(b, nil)
	m.Run(100 * time.Millisecond)
	if m.Trace.Count(trace.Migrate) == 0 {
		t.Fatal("no migration happened")
	}
	_ = a
}

func TestRunUntilPredicate(t *testing.T) {
	m := newTestMachine(t, topo.SingleCore())
	th := m.StartThread("w", "app", 0, &script{ops: []Op{Run(30 * time.Millisecond)}})
	ok := m.RunUntil(func() bool { return th.State() == StateDead }, time.Second)
	if !ok {
		t.Fatal("predicate not satisfied")
	}
	if m.Now() > 40*time.Millisecond {
		t.Fatalf("ran too long: %v", m.Now())
	}
	// Unsatisfiable predicate times out at max.
	ok = m.RunUntil(func() bool { return false }, 50*time.Millisecond)
	if ok {
		t.Fatal("predicate mysteriously satisfied")
	}
}

func TestEveryRepeatsUntilFalse(t *testing.T) {
	m := newTestMachine(t, topo.SingleCore())
	var fired int
	m.Every(10*time.Millisecond, 10*time.Millisecond, func() bool {
		fired++
		return fired < 5
	})
	m.Run(time.Second)
	if fired != 5 {
		t.Fatalf("fired %d times, want 5", fired)
	}
}

func TestZeroOpGuardPanics(t *testing.T) {
	m := newTestMachine(t, topo.SingleCore())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for stuck program")
		}
	}()
	m.StartThread("stuck", "app", 0, ProgramFunc(func(ctx *Ctx) Op { return Run(0) }))
	m.Run(time.Second)
}

func TestWakeRunningIsNoop(t *testing.T) {
	m := newTestMachine(t, topo.SingleCore())
	th := m.StartThread("w", "app", 0, &script{ops: []Op{Run(10 * time.Millisecond)}})
	m.After(time.Millisecond, func() { m.Wake(th) }) // running: no-op
	m.Run(time.Second)
	if th.RunTime != 10*time.Millisecond {
		t.Fatalf("RunTime = %v", th.RunTime)
	}
}

func TestExitWQBroadcastsJoiners(t *testing.T) {
	m := newTestMachine(t, topo.MustNew(topo.Config{NUMANodes: 1, LLCsPerNode: 1, CoresPerLLC: 2}))
	worker := m.StartThread("worker", "app", 0, &script{ops: []Op{Run(10 * time.Millisecond)}})
	joiner := m.StartThread("joiner", "app", 0, &script{ops: []Op{Block(worker.ExitWQ), Run(time.Millisecond)}})
	m.Run(time.Second)
	if joiner.State() != StateDead {
		t.Fatalf("joiner state = %v, want dead after join", joiner.State())
	}
	if joiner.SleepTime < 9*time.Millisecond {
		t.Fatalf("joiner SleepTime = %v", joiner.SleepTime)
	}
}

func TestPinnedThreadStaysPut(t *testing.T) {
	m := newTestMachine(t, topo.Small())
	th := m.StartThread("pinned", "app", 0, &script{ops: []Op{
		Run(time.Millisecond), Sleep(time.Millisecond),
		Run(time.Millisecond), Sleep(time.Millisecond),
		Run(time.Millisecond),
	}})
	m.SetPinned(th, []int{3})
	// Give it load elsewhere so placement would prefer other cores.
	for i := 0; i < 4; i++ {
		m.StartThread("bg", "app", 0, &looper{burst: time.Millisecond})
	}
	m.Run(time.Second)
	if th.State() != StateDead {
		t.Fatalf("state = %v", th.State())
	}
	// Its last core must be 3 — the only allowed one after pinning. (The
	// first placement happened before SetPinned, so check LastCore only.)
	if th.LastCore == nil {
		t.Fatal("never ran")
	}
}

// tickRec is one recorded scheduler tick: when it fired and whether the
// core was busy.
type tickRec struct {
	at   time.Duration
	busy bool
}

// ticklessFIFO wraps FIFO with a no-op idle tick and NeedsIdleTick() ==
// false — the reference scheduler for the tickless engine tests and
// benchmarks. With record set it logs every Tick invocation per core.
type ticklessFIFO struct {
	*FIFO
	record bool
	ticks  [][]tickRec
}

func newTicklessFIFO(record bool) *ticklessFIFO {
	return &ticklessFIFO{FIFO: NewFIFO(), record: record}
}

func (s *ticklessFIFO) Attach(m *Machine) {
	s.FIFO.Attach(m)
	s.ticks = make([][]tickRec, len(m.Cores))
}

func (s *ticklessFIFO) NeedsIdleTick() bool { return false }

func (s *ticklessFIFO) Tick(c *Core, curr *Thread) {
	if s.record {
		s.ticks[c.ID] = append(s.ticks[c.ID], tickRec{at: c.Machine().Now(), busy: curr != nil})
	}
	if curr == nil {
		return // no idle-tick work: the NeedsIdleTick()==false contract
	}
	s.FIFO.Tick(c, curr)
}

// busyTicks filters a core's recorded ticks to those with a running thread.
func busyTicks(recs []tickRec) []time.Duration {
	var out []time.Duration
	for _, r := range recs {
		if r.busy {
			out = append(out, r.at)
		}
	}
	return out
}

// TestTickGridPreservedAcrossIdle is the tick-suppression contract: a core
// that idles mid-period and wakes later must tick at exactly the same
// absolute times as an always-ticking core (ForceIdleTicks) observes on its
// busy ticks. Core 1's 1 ms grid is staggered by 0.5 ms; both scenarios
// wake exactly on a grid point, from the two sides of the always-ticking
// same-timestamp ordering: a sleep armed before the previous grid point
// loses to the in-flight tick (which therefore fires busy, after the wake),
// while a sleep armed after it fires first in always-ticking order too —
// there the tick runs idle before the wake, so the wake instant must not
// gain a busy tick.
func TestTickGridPreservedAcrossIdle(t *testing.T) {
	ms := time.Millisecond
	us := time.Microsecond
	cases := []struct {
		name string
		ops  []Op
		want []time.Duration // expected core-1 busy ticks
	}{
		{
			name: "sleep-armed-before-previous-grid-point",
			// Idle 2.5..9.5 ms; the sleep was armed at 2.5 < 8.5, so the
			// wake at 9.5 observes a busy tick at 9.5, then 10.5..13.5.
			ops:  []Op{Run(2500 * us), Sleep(7 * ms), Run(5 * ms)},
			want: []time.Duration{1500 * us, 9500 * us, 10500 * us, 11500 * us, 12500 * us, 13500 * us},
		},
		{
			name: "sleep-armed-after-previous-grid-point",
			// Idle 2.7..3.5 ms; the sleep was armed at 2.7 > 2.5, so the
			// always-ticking tick at 3.5 fires idle before the wake — no
			// busy tick at the wake instant, next at 4.5.
			ops:  []Op{Run(2700 * us), Sleep(800 * us), Run(2 * ms)},
			want: []time.Duration{1500 * us, 2500 * us, 4500 * us},
		},
		{
			name: "sleep-armed-exactly-at-previous-grid-point",
			// The burst ends exactly on the 2.5 ms grid point and arms a
			// one-period sleep: the wake event (armed before the
			// always-ticking idle tick at 2.5 fired) beats the re-armed
			// tick at 3.5, which therefore fires busy — the parkWatermark
			// tie-break.
			ops:  []Op{Run(2500 * us), Sleep(1 * ms), Run(3 * ms)},
			want: []time.Duration{1500 * us, 3500 * us, 4500 * us, 5500 * us},
		},
	}
	tp := topo.MustNew(topo.Config{NUMANodes: 1, LLCsPerNode: 1, CoresPerLLC: 2})
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(force bool) (*ticklessFIFO, *Machine) {
				s := newTicklessFIFO(true)
				m := NewMachine(tp, s, Options{Seed: 7, Cost: &CostModel{}, ForceIdleTicks: force})
				m.StartThreadCfg(ThreadConfig{Name: "busy", Group: "app", Pinned: []int{0},
					Prog: &looper{burst: time.Millisecond}})
				m.StartThreadCfg(ThreadConfig{Name: "onoff", Group: "app", Pinned: []int{1},
					Prog: &script{ops: tc.ops}})
				m.Run(20 * time.Millisecond)
				return s, m
			}

			tickless, mt := run(false)
			forced, mf := run(true)

			// The workload must behave identically either way.
			for i, th := range mt.Threads() {
				if got, want := th.RunTime, mf.Threads()[i].RunTime; got != want {
					t.Fatalf("thread %d RunTime %v (tickless) != %v (forced)", i, got, want)
				}
			}
			for core := 0; core < 2; core++ {
				supp := tickless.ticks[core]
				for _, r := range supp {
					if !r.busy {
						t.Fatalf("tickless: core %d ticked while idle at %v", core, r.at)
					}
				}
				got := busyTicks(supp)
				want := busyTicks(forced.ticks[core])
				if len(got) != len(want) {
					t.Fatalf("core %d: %d busy ticks (tickless) vs %d (forced)\n got %v\nwant %v",
						core, len(got), len(want), got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("core %d tick %d: %v (tickless) != %v (forced)", core, i, got[i], want[i])
					}
				}
			}
			// Pin the absolute core-1 grid times, not just forced-run parity.
			got := busyTicks(tickless.ticks[1])
			if len(got) != len(tc.want) {
				t.Fatalf("core 1 ticks = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("core 1 ticks = %v, want %v", got, tc.want)
				}
			}
			// The forced machine processed the idle ticks the tickless one
			// parked.
			if mf.EventsProcessed() <= mt.EventsProcessed() {
				t.Fatalf("forced events %d <= tickless events %d", mf.EventsProcessed(), mt.EventsProcessed())
			}
		})
	}
}

// TestTickGridAfterReparkOnSameGridPoint: a core that parks, re-arms to
// the same grid point, and re-parks leaves two superseded tick events
// popping at that point. Only the earliest-armed one matches the
// always-ticking engine's tick chain, so the watermark tie-break must use
// it: a sleep armed between the two pops (by another thread's burst-end at
// that timestamp) must not gain a busy tick at its wake, one period later.
func TestTickGridAfterReparkOnSameGridPoint(t *testing.T) {
	tp := topo.MustNew(topo.Config{NUMANodes: 1, LLCsPerNode: 1, CoresPerLLC: 2})
	run := func(force bool) *ticklessFIFO {
		s := newTicklessFIFO(true)
		m := NewMachine(tp, s, Options{Seed: 3, Cost: &CostModel{}, ForceIdleTicks: force})
		// Core 0: busy to 1.2ms (tick for 2ms armed at 1ms), parks, runs
		// 1.5..1.7ms (re-arms to 2ms), re-parks.
		m.StartThreadCfg(ThreadConfig{Name: "x", Group: "app", Pinned: []int{0},
			Prog: &script{ops: []Op{
				Run(1200 * time.Microsecond),
				Sleep(300 * time.Microsecond),
				Run(200 * time.Microsecond),
				Sleep(5 * time.Millisecond),
			}}})
		// Core 1: burst boundary at 1.1ms arms a burst-end for 2ms, which
		// pops between core 0's two superseded ticks and arms a 1ms sleep;
		// the 3ms wake lands on idle core 0 exactly on its grid.
		m.StartThread("y", "app", 0, &script{ops: []Op{
			Run(1100 * time.Microsecond),
			Run(900 * time.Microsecond),
			Sleep(time.Millisecond),
			Run(1500 * time.Microsecond),
		}})
		m.Run(5 * time.Millisecond)
		return s
	}
	tickless := run(false)
	forced := run(true)
	for core := 0; core < 2; core++ {
		got := busyTicks(tickless.ticks[core])
		want := busyTicks(forced.ticks[core])
		if len(got) != len(want) {
			t.Fatalf("core %d busy ticks = %v (tickless), want %v (forced)", core, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("core %d busy ticks = %v (tickless), want %v (forced)", core, got, want)
			}
		}
	}
	// The always-ticking tick at 3ms fires idle before the wake: no busy
	// tick at 3ms, only at 1ms (x) and 4ms (y awake on core 0).
	got := busyTicks(tickless.ticks[0])
	want := []time.Duration{time.Millisecond, 4 * time.Millisecond}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("core 0 busy ticks = %v, want %v", got, want)
	}
}

// TestTickGridAfterOutOfDispatchStart: a thread started between Run
// windows, at an instant that lands exactly on the tick grid, must not gain
// a busy tick at that instant — the always-ticking engine's tick there
// already fired idle, inside the previous Run, before the thread existed.
func TestTickGridAfterOutOfDispatchStart(t *testing.T) {
	run := func(force bool) *ticklessFIFO {
		s := newTicklessFIFO(true)
		m := NewMachine(topo.SingleCore(), s, Options{Seed: 3, Cost: &CostModel{}, ForceIdleTicks: force})
		m.StartThread("a", "app", 0, &script{ops: []Op{Run(500 * time.Microsecond)}})
		m.Run(3 * time.Millisecond) // a exits at 0.5ms; the machine idles to 3ms
		m.StartThread("b", "app", 0, &script{ops: []Op{Run(1500 * time.Microsecond)}})
		m.Run(6 * time.Millisecond)
		return s
	}
	tickless := run(false)
	forced := run(true)
	got := busyTicks(tickless.ticks[0])
	want := busyTicks(forced.ticks[0])
	// b runs 3..4.5ms on the 1ms grid: the only busy tick is at 4ms.
	if len(want) != 1 || want[0] != 4*time.Millisecond {
		t.Fatalf("forced busy ticks = %v, want [4ms]", want)
	}
	if len(got) != len(want) || got[0] != want[0] {
		t.Fatalf("busy ticks = %v (tickless), want %v (forced)", got, want)
	}
}

// TestTicklessIdleMachineProcessesNoEvents: with no work and a scheduler
// that opts out of idle ticks, the engine is fully quiescent.
func TestTicklessIdleMachineProcessesNoEvents(t *testing.T) {
	tp := topo.Small()
	m := NewMachine(tp, newTicklessFIFO(false), Options{Seed: 1})
	m.Run(time.Second)
	if got := m.EventsProcessed(); got != 0 {
		t.Fatalf("idle tickless machine processed %d events, want 0", got)
	}
	forced := NewMachine(tp, newTicklessFIFO(false), Options{Seed: 1, ForceIdleTicks: true})
	forced.Run(time.Second)
	// 8 cores × 1000 ticks/s, minus sub-period staggering remainders.
	if got := forced.EventsProcessed(); got < 7900 {
		t.Fatalf("forced idle machine processed %d events, want ~8000", got)
	}
}

// TestHotTimerPathsAllocFree drives the burst-end / tick / sleep-wake paths
// on a warmed machine and asserts the steady state allocates nothing.
func TestHotTimerPathsAllocFree(t *testing.T) {
	m := NewMachine(topo.Small(), NewFIFO(), Options{Seed: 5})
	for i := 0; i < 12; i++ {
		m.StartThread("w", "app", 0, &runSleeper{run: 700 * time.Microsecond, sleep: 400 * time.Microsecond})
	}
	m.Run(250 * time.Millisecond) // settle heap, runqueue, and callback capacity
	avg := testing.AllocsPerRun(20, func() {
		m.Run(m.Now() + 5*time.Millisecond)
	})
	if avg != 0 {
		t.Fatalf("hot timer paths allocated %.1f allocs per 5ms window, want 0", avg)
	}
}

// runSleeper alternates CPU bursts and timed sleeps forever.
type runSleeper struct {
	run, sleep time.Duration
	sleeping   bool
}

func (p *runSleeper) Next(ctx *Ctx) Op {
	p.sleeping = !p.sleeping
	if p.sleeping {
		return Run(p.run)
	}
	return Sleep(p.sleep)
}

func TestThreadConservation(t *testing.T) {
	// No thread may be lost or duplicated across heavy churn.
	m := newTestMachine(t, topo.Small())
	const n = 40
	for i := 0; i < n; i++ {
		m.StartThread("w", "app", 0, &script{ops: []Op{
			Run(time.Millisecond), Sleep(2 * time.Millisecond),
			Run(time.Millisecond), Yield(),
			Run(3 * time.Millisecond),
		}})
	}
	m.Run(5 * time.Second)
	if m.LiveThreads() != 0 {
		t.Fatalf("LiveThreads = %d, want 0", m.LiveThreads())
	}
	for _, th := range m.Threads() {
		if th.State() != StateDead {
			t.Fatalf("thread %v not dead", th)
		}
		if th.RunTime != 5*time.Millisecond {
			t.Fatalf("thread %v RunTime = %v, want 5ms", th, th.RunTime)
		}
	}
}
