// Package sim is the kernel substrate of the reproduction: a deterministic
// discrete-event simulator of a multicore machine. It owns threads, cores,
// the event clock, context-switch mechanics and the cost model, and defers
// every scheduling decision to a pluggable Scheduler — the same separation
// the paper relies on ("the observed performance differences are solely the
// result of scheduling decisions").
//
// The Scheduler interface mirrors the paper's Table 1: the Linux scheduling
// class API on one side and the equivalent FreeBSD entry points on the
// other (enqueue_task/sched_add, dequeue_task/sched_rem,
// yield_task/sched_relinquish, pick_next_task/sched_choose,
// put_prev_task/sched_switch, select_task_rq/sched_pickcpu).
package sim

import "time"

// OpKind enumerates the actions a thread program can request from the
// kernel at an operation boundary.
type OpKind uint8

const (
	// OpRun consumes Dur of CPU time; it may be preempted and resumed.
	OpRun OpKind = iota
	// OpSleep sleeps voluntarily for Dur (counts as sleep time for ULE's
	// interactivity metric).
	OpSleep
	// OpBlock sleeps voluntarily on WQ until signalled.
	OpBlock
	// OpSpin consumes CPU (like OpRun) for at most Dur, but completes early
	// if WQ is broadcast — a spin-wait watching a condition.
	OpSpin
	// OpYield relinquishes the CPU, staying runnable.
	OpYield
	// OpExit terminates the thread.
	OpExit
)

// String returns the op kind name.
func (k OpKind) String() string {
	switch k {
	case OpRun:
		return "run"
	case OpSleep:
		return "sleep"
	case OpBlock:
		return "block"
	case OpSpin:
		return "spin"
	case OpYield:
		return "yield"
	case OpExit:
		return "exit"
	default:
		return "op(?)"
	}
}

// Op is one action requested by a program. Zero-duration OpRun completes
// immediately; the engine bounds consecutive zero-time ops to catch
// non-advancing programs.
type Op struct {
	Kind OpKind
	Dur  time.Duration
	WQ   *WaitQueue
}

// Run returns an op consuming d of CPU.
func Run(d time.Duration) Op { return Op{Kind: OpRun, Dur: d} }

// Sleep returns an op sleeping voluntarily for d.
func Sleep(d time.Duration) Op { return Op{Kind: OpSleep, Dur: d} }

// Block returns an op blocking on wq until signalled.
func Block(wq *WaitQueue) Op { return Op{Kind: OpBlock, WQ: wq} }

// Spin returns an op spinning on the CPU for at most budget, released early
// when wq is broadcast.
func Spin(wq *WaitQueue, budget time.Duration) Op {
	return Op{Kind: OpSpin, Dur: budget, WQ: wq}
}

// Yield returns an op that gives the CPU back to the scheduler.
func Yield() Op { return Op{Kind: OpYield} }

// Exit returns an op terminating the thread.
func Exit() Op { return Op{Kind: OpExit} }

// Program is the behaviour of a thread: a resumable state machine. Next is
// called at every operation boundary and returns the thread's next action.
// Programs may call Ctx methods (wakeups, forks) during Next; those take
// effect immediately, before the returned op is applied.
type Program interface {
	Next(ctx *Ctx) Op
}

// ProgramFunc adapts a function to the Program interface.
type ProgramFunc func(ctx *Ctx) Op

// Next calls f.
func (f ProgramFunc) Next(ctx *Ctx) Op { return f(ctx) }
