package sim

import (
	"fmt"
	"time"
)

// State is a thread's lifecycle state.
type State uint8

const (
	// StateNew: created but never enqueued.
	StateNew State = iota
	// StateRunnable: waiting in a runqueue.
	StateRunnable
	// StateRunning: executing on a core.
	StateRunning
	// StateSleeping: in a timed voluntary sleep.
	StateSleeping
	// StateBlocked: voluntarily waiting on a WaitQueue.
	StateBlocked
	// StateDead: exited.
	StateDead
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateRunnable:
		return "runnable"
	case StateRunning:
		return "running"
	case StateSleeping:
		return "sleeping"
	case StateBlocked:
		return "blocked"
	case StateDead:
		return "dead"
	default:
		return "state(?)"
	}
}

// Thread is one schedulable entity. Fields the schedulers read are
// exported; mutation is reserved to the engine.
type Thread struct {
	// ID is a unique positive identifier.
	ID int
	// Name identifies the thread for traces and figures ("fibo",
	// "sysbench-worker-17").
	Name string
	// Group names the application the thread belongs to; CFS's cgroup
	// fairness groups threads by this key, and per-application metrics
	// aggregate over it.
	Group string
	// Nice is the Unix niceness, -20..19 (high value = low priority).
	Nice int
	// Parent is the forking thread (nil for initial threads).
	Parent *Thread

	mach  *Machine
	prog  Program
	state State

	// core is the core whose runnable set contains the thread (while
	// Runnable or Running).
	core *Core
	// LastCore is the last core the thread ran on (nil before first run).
	LastCore *Core
	// LastRanAt is the simulated time the thread last gave up a core.
	LastRanAt time.Duration
	// LastEnqueuedAt is when the thread last became runnable.
	LastEnqueuedAt time.Duration

	// RunTime is cumulative CPU time consumed.
	RunTime time.Duration
	// SleepTime is cumulative *voluntary* sleep (OpSleep/OpBlock); time
	// spent waiting on a runqueue counts as neither run nor sleep, exactly
	// as ULE's interactivity metric requires (§2.2).
	SleepTime time.Duration

	// SchedData is the owning scheduler's per-thread state (CFS entity or
	// ULE td_sched).
	SchedData any

	// Pinned restricts the thread to the given core IDs; nil means any
	// core. Models taskset/pthread affinity (the Figure 6 pin/unpin).
	Pinned []int

	// OnExit, if set, runs when the thread dies (application bookkeeping).
	OnExit func(*Thread)

	// ExitWQ is broadcast when the thread exits, supporting joins.
	ExitWQ *WaitQueue

	// current op execution state
	op          Op
	opValid     bool
	opRemaining time.Duration
	spinDone    bool
	// pendingPenalty is extra time the next Run burst costs (cold cache
	// after migration or preemption).
	pendingPenalty time.Duration

	// sleepStart is when the current sleep/block began; the timer-wake
	// validation token lives in the machine's dense Machine.sleepTok table.
	sleepStart time.Duration
	wq         *WaitQueue // wait queue we are blocked on, if any

	// ctx is the thread's reusable Program context, so operation
	// boundaries allocate nothing; nested advances (a forked child
	// dispatching inside the parent's Next) each use their own thread's.
	ctx Ctx

	// spinWQ is the queue this thread's active Spin op watches.
	spinWQ *WaitQueue

	zeroOps int // consecutive zero-time ops, to catch stuck programs
}

// State returns the thread's lifecycle state.
func (t *Thread) State() State { return t.state }

// Core returns the core owning the thread (runqueue or running), nil when
// sleeping/dead.
func (t *Thread) Core() *Core { return t.core }

// Machine returns the machine the thread lives on.
func (t *Thread) Machine() *Machine { return t.mach }

// Running reports whether the thread is currently on a CPU.
func (t *Thread) Running() bool { return t.state == StateRunning }

// CanRunOn reports whether the thread may be placed on core id: the
// core must be online and the thread's affinity (if any) must allow it.
// Every scheduler placement and steal scan filters through here, which
// is what keeps hot-unplugged cores out of all placement decisions.
func (t *Thread) CanRunOn(id int) bool {
	if t.mach.coreArr[id].offline {
		return false
	}
	if t.Pinned == nil {
		return true
	}
	for _, c := range t.Pinned {
		if c == id {
			return true
		}
	}
	return false
}

// String renders a compact thread description.
func (t *Thread) String() string {
	return fmt.Sprintf("T%d(%s/%s %v)", t.ID, t.Name, t.Group, t.state)
}

// Ctx is the restricted kernel interface a Program sees during Next.
type Ctx struct {
	// T is the calling thread.
	T *Thread
	// M is the machine; programs should prefer the Ctx helpers but may use
	// M for read-only inspection.
	M *Machine
}

// Now returns the current simulated time.
func (c *Ctx) Now() time.Duration { return c.M.Now() }

// Wake makes target runnable if it is sleeping or blocked; otherwise it is
// a no-op (matching try_to_wake_up semantics on a running task).
func (c *Ctx) Wake(target *Thread) { c.M.Wake(target) }

// Signal wakes up to n threads blocked on wq (FIFO order).
func (c *Ctx) Signal(wq *WaitQueue, n int) { c.M.Signal(wq, n) }

// Broadcast wakes all threads blocked on wq and releases all spinners
// watching it.
func (c *Ctx) Broadcast(wq *WaitQueue) { c.M.Broadcast(wq) }

// Fork creates a child thread of the caller running prog. The child
// inherits scheduler state per the active scheduler's fork rule (for ULE:
// the parent's interactivity history — the mechanism behind the paper's
// Figures 3/4).
func (c *Ctx) Fork(name, group string, nice int, prog Program) *Thread {
	return c.M.spawn(name, group, nice, prog, c.T)
}

// Rand returns a deterministic per-machine PRNG.
func (c *Ctx) Rand() *Rand { return c.M.Rand() }
