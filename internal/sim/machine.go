package sim

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Machine is the simulated multicore computer: cores, threads, the event
// clock, and one scheduler. All methods must be called from the simulation
// goroutine (the engine is deliberately single-threaded and deterministic).
type Machine struct {
	// Topo is the hardware layout.
	Topo *topo.Topology
	// Cores are the CPUs, indexed by ID.
	Cores []*Core
	// Trace records scheduler events.
	Trace *trace.Buffer
	// Counters collects named counts from schedulers and workloads.
	Counters *stats.CounterSet
	// Cost prices context switches, migrations, and scheduler work.
	Cost CostModel

	sched Scheduler
	rng   *Rand

	// hooks is the telemetry observation table (hooks.go); nil until the
	// first registration, so probe-free machines pay one nil check per
	// hook site and nothing else.
	hooks *hooks

	now time.Duration
	// wheel is the default event queue; heap is the cross-validation
	// escape hatch (Options.UseEventHeap), kept byte-equivalent by the
	// strict (at, seq) total order both implement.
	wheel   timerWheel
	heap    eventHeap
	useHeap bool
	seq     uint64
	events  uint64

	// coreArr is the contiguous backing store of Cores: the dispatch path
	// walks cores by dense index instead of chasing per-core allocations.
	coreArr []Core
	// coreTok / sleepTok are the struct-of-arrays timer-token tables,
	// indexed by core ID and thread ID-1: stale timer events (superseded
	// ticks, re-armed burst ends, cancelled sleep wakes) are dropped from
	// these dense lines without touching the wide Core/Thread structs.
	coreTok  []coreTokens
	sleepTok []uint64

	// cbs is the side table of generic/periodic callbacks, referenced from
	// heap events by handle; cbFree heads its freelist (-1 = empty).
	cbs    []callback
	cbFree int32

	// tickPeriod caches the scheduler's tick period; idleTicks records
	// whether idle cores keep ticking (scheduler capability or the
	// ForceIdleTicks option) or have their ticks parked.
	tickPeriod time.Duration
	idleTicks  bool
	// curArmed/curSeq describe the event currently being dispatched: when
	// it was scheduled and its sequence number (tick re-arm ordering,
	// Core.nextGridTick).
	curArmed time.Duration
	curSeq   uint64

	threads []*Thread
	nextTID int
	live    int

	// nOffline counts hot-unplugged cores; while zero the placement guard
	// (ensurePlaceable) is a single compare.
	nOffline int
	// wallDeadline is the host-clock watchdog instant (perturb.go); zero
	// means disarmed. Run/RunUntil test it every deadlineMask+1 events.
	wallDeadline time.Time

	// execCore is the core whose program code is currently executing (for
	// charging wakeup costs to the waker's CPU); nil in timer context.
	execCore *Core
	// pendingPin carries StartThreadCfg affinity into spawn.
	pendingPin []int

	ticksOn bool
}

// coreTokens packs one core's timer-validation counters: stale burst-end
// and tick events are detected against these two words, four cores per
// cache line, without loading the core struct itself.
type coreTokens struct {
	burst uint64
	tick  uint64
}

// Options configures machine construction.
type Options struct {
	// Seed seeds the deterministic PRNG (default 1).
	Seed int64
	// Cost overrides the default cost model; nil uses DefaultCostModel.
	Cost *CostModel
	// TraceCapacity bounds retained trace records (counts are always
	// exact); default 0 retains counts only.
	TraceCapacity int
	// ForceIdleTicks keeps per-core ticks firing on idle cores even when
	// the scheduler reports NeedsIdleTick() == false — the pre-tickless
	// engine semantics, kept for cross-validation tests and A/B timing.
	ForceIdleTicks bool
	// UseEventHeap runs the machine on the binary-heap event queue instead
	// of the hierarchical timer wheel. Both implement the same strict
	// (at, seq) order, so all outputs are byte-identical; the flag exists
	// for cross-validation and A/B timing.
	UseEventHeap bool
}

// forceEventHeap is the package-wide UseEventHeap override the
// cross-validation suite flips to rebuild identical machines on the heap
// engine without threading an option through every construction site.
var forceEventHeap atomic.Bool

// SetForceEventHeap forces (or stops forcing) every subsequently built
// machine onto the binary-heap event queue, returning the previous
// setting. Intended for wheel-vs-heap cross-validation tests.
func SetForceEventHeap(v bool) bool { return forceEventHeap.Swap(v) }

// ForceEventHeap reports the current package-wide engine override. Trial
// fingerprints fold it in: the engines are byte-interchangeable by
// contract, but the trial cache must never paper over a divergence, so a
// heap-engined run can only ever hit heap-engined entries.
func ForceEventHeap() bool { return forceEventHeap.Load() }

// NewMachine builds a machine with the given topology and scheduler and
// attaches the scheduler. Per-core scheduler ticks start immediately.
func NewMachine(tp *topo.Topology, sched Scheduler, opts Options) *Machine {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	cost := DefaultCostModel()
	if opts.Cost != nil {
		cost = *opts.Cost
	}
	m := &Machine{
		Topo:     tp,
		Trace:    trace.New(opts.TraceCapacity),
		Counters: stats.NewCounterSet(),
		Cost:     cost,
		sched:    sched,
		rng:      newRand(opts.Seed),
		nextTID:  1,
		cbFree:   -1,
	}
	m.useHeap = opts.UseEventHeap || forceEventHeap.Load()
	if !m.useHeap {
		m.wheel.init()
	}
	// One contiguous allocation backs every core plus the dense token
	// table: the dispatch path indexes both by core ID.
	m.coreArr = make([]Core, tp.NCores())
	m.coreTok = make([]coreTokens, tp.NCores())
	m.Cores = make([]*Core, tp.NCores())
	for i := range m.coreArr {
		m.coreArr[i] = Core{ID: i, mach: m, wasIdle: true}
		m.Cores[i] = &m.coreArr[i]
	}
	sched.Attach(m)
	m.idleTicks = opts.ForceIdleTicks || sched.NeedsIdleTick()
	m.startTicks()
	return m
}

// Scheduler returns the attached scheduler.
func (m *Machine) Scheduler() Scheduler { return m.sched }

// Now returns the simulated time since machine start.
func (m *Machine) Now() time.Duration { return m.now }

// Rand returns the machine's deterministic PRNG.
func (m *Machine) Rand() *Rand { return m.rng }

// Threads returns all threads ever created, in creation order. The slice
// must not be modified.
func (m *Machine) Threads() []*Thread { return m.threads }

// LiveThreads returns the number of non-dead threads.
func (m *Machine) LiveThreads() int { return m.live }

// ExecCore returns the core currently executing program code, nil in timer
// context. Schedulers use it to bill placement work to the waking CPU.
func (m *Machine) ExecCore() *Core { return m.execCore }

// schedule clamps the event to now, stamps its sequence number, and pushes
// it. Every event enters the queue through here, so equal-time events fire
// in scheduling order.
func (m *Machine) schedule(e event) {
	if e.at < m.now {
		e.at = m.now
	}
	m.seq++
	e.seq = m.seq
	e.armed = m.now
	if m.useHeap {
		m.heap.push(e)
		return
	}
	m.wheel.push(e)
}

// newCallback takes a free callback slot, growing the side table only when
// the freelist is empty.
func (m *Machine) newCallback() int32 {
	if i := m.cbFree; i >= 0 {
		m.cbFree = m.cbs[i].next
		m.cbs[i].next = -1
		return i
	}
	m.cbs = append(m.cbs, callback{next: -1})
	return int32(len(m.cbs) - 1)
}

// freeCallback clears the slot — releasing the captured closure — and
// returns it to the freelist.
func (m *Machine) freeCallback(i int32) {
	m.cbs[i] = callback{next: m.cbFree}
	m.cbFree = i
}

// At schedules fn at absolute simulated time at (clamped to now).
func (m *Machine) At(at time.Duration, fn func()) {
	h := m.newCallback()
	m.cbs[h].fn = fn
	m.schedule(event{at: at, kind: evGeneric, id: h})
}

// After schedules fn d from now.
func (m *Machine) After(d time.Duration, fn func()) { m.At(m.now+d, fn) }

// Every schedules fn at start and then every period while fn returns true.
// The registration occupies one callback slot for its whole lifetime;
// re-arming is allocation-free.
func (m *Machine) Every(start, period time.Duration, fn func() bool) {
	if period <= 0 {
		panic("sim: Every with non-positive period")
	}
	h := m.newCallback()
	m.cbs[h].pfn = fn
	m.cbs[h].period = period
	m.schedule(event{at: start, kind: evPeriodic, id: h})
}

// fire dispatches one popped event to its handler.
func (m *Machine) fire(e *event) {
	switch e.kind {
	case evBurstEnd:
		if m.coreTok[e.id].burst != e.token {
			return
		}
		c := &m.coreArr[e.id]
		t := m.threads[e.tid-1]
		if c.Curr != t {
			return
		}
		c.flushRun()
		if t.opRemaining > 0 {
			// A charge pushed the burst out; re-arm.
			m.scheduleBurstEnd(c)
			return
		}
		m.completeOpNow(c, t)
	case evTick:
		m.fireTick(&m.coreArr[e.id], e.token)
	case evSleepWake:
		if m.sleepTok[e.tid-1] != e.token {
			return
		}
		if t := m.threads[e.tid-1]; t.state == StateSleeping {
			m.Wake(t)
		}
	case evPeriodic:
		// Index the side table afresh around the call: the callback may
		// register new timers and grow it.
		if m.cbs[e.id].pfn() {
			m.schedule(event{at: m.now + m.cbs[e.id].period, kind: evPeriodic, id: e.id})
		} else {
			m.freeCallback(e.id)
		}
	default:
		fn := m.cbs[e.id].fn
		m.freeCallback(e.id)
		fn()
	}
}

// EventsProcessed returns how many events the machine has dispatched — the
// engine-throughput numerator of the perf harness.
func (m *Machine) EventsProcessed() uint64 { return m.events }

// endRun marks the machine as outside event dispatch: anything happening
// now — workload installed between Run windows, direct Wake calls — counts
// as armed at the current instant, after every dispatched event, for tick
// re-arm ordering (Core.nextGridTick).
func (m *Machine) endRun() {
	m.curArmed = m.now
	m.curSeq = m.seq
}

// qLen reports how many events are pending on the active queue.
func (m *Machine) qLen() int {
	if m.useHeap {
		return m.heap.len()
	}
	return m.wheel.len()
}

// nextEvent pops the next event if it is due at or before until. On the
// wheel engine the common case is one bounds check into the already-sorted
// live slot batch — the batched same-timestamp dispatch the wheel exists
// for; advance() runs only when a batch drains.
func (m *Machine) nextEvent(until time.Duration) (event, bool) {
	if m.useHeap {
		if m.heap.len() == 0 || m.heap.es[0].at > until {
			return event{}, false
		}
		return m.heap.pop(), true
	}
	w := &m.wheel
	if w.curIdx >= len(w.cur) && !w.advance() {
		return event{}, false
	}
	if w.cur[w.curIdx].at > until {
		return event{}, false
	}
	e := w.cur[w.curIdx]
	w.curIdx++
	return e, true
}

// Run processes events until the clock reaches until.
func (m *Machine) Run(until time.Duration) {
	for {
		e, ok := m.nextEvent(until)
		if !ok {
			break
		}
		m.now = e.at
		m.events++
		if m.events&deadlineMask == 0 {
			m.checkDeadline()
		}
		m.curArmed, m.curSeq = e.armed, e.seq
		m.fire(&e)
	}
	if m.now < until {
		m.now = until
	}
	for _, c := range m.Cores {
		c.flushRun()
	}
	m.endRun()
}

// RunUntil processes events until pred returns true or the clock reaches
// max; it reports whether pred was satisfied.
func (m *Machine) RunUntil(pred func() bool, max time.Duration) bool {
	for m.qLen() > 0 {
		if pred() {
			m.endRun()
			return true
		}
		e, ok := m.nextEvent(max)
		if !ok {
			break
		}
		m.now = e.at
		m.events++
		if m.events&deadlineMask == 0 {
			m.checkDeadline()
		}
		m.curArmed, m.curSeq = e.armed, e.seq
		m.fire(&e)
	}
	done := pred()
	if m.now < max && !done {
		m.now = max
	}
	for _, c := range m.Cores {
		c.flushRun()
	}
	m.endRun()
	return done
}

// StartThread creates and enqueues a root thread (no parent): the analogue
// of launching a process from a shell.
func (m *Machine) StartThread(name, group string, nice int, prog Program) *Thread {
	return m.spawn(name, group, nice, prog, nil)
}

// ThreadConfig describes a root thread to start with full control, notably
// birth affinity (the Figure 6 experiment pins 512 threads to core 0
// before they first run).
type ThreadConfig struct {
	Name  string
	Group string
	Nice  int
	// Pinned restricts placement from birth; nil allows any core.
	Pinned []int
	Prog   Program
	// OnExit runs when the thread dies.
	OnExit func(*Thread)
}

// StartThreadCfg creates and enqueues a root thread from cfg.
func (m *Machine) StartThreadCfg(cfg ThreadConfig) *Thread {
	m.pendingPin = cfg.Pinned
	t := m.spawn(cfg.Name, cfg.Group, cfg.Nice, cfg.Prog, nil)
	m.pendingPin = nil
	t.OnExit = cfg.OnExit
	return t
}

func (m *Machine) spawn(name, group string, nice int, prog Program, parent *Thread) *Thread {
	t := &Thread{
		ID:     m.nextTID,
		Name:   name,
		Group:  group,
		Nice:   nice,
		Parent: parent,
		mach:   m,
		prog:   prog,
		state:  StateNew,
		ExitWQ: NewWaitQueue(name + ".exit"),
	}
	t.ctx = Ctx{T: t, M: m}
	if parent != nil {
		t.Pinned = append([]int(nil), parent.Pinned...)
	} else if m.pendingPin != nil {
		t.Pinned = append([]int(nil), m.pendingPin...)
	}
	m.ensurePlaceable(t)
	m.nextTID++
	m.threads = append(m.threads, t)
	m.sleepTok = append(m.sleepTok, 0)
	m.live++
	m.sched.Fork(parent, t)
	origin := m.execCore
	c := m.sched.SelectCore(t, origin, FlagFork)
	m.assertAllowed(c, t)
	m.Trace.Record(trace.Event{At: m.now, Kind: trace.Fork, Core: c.ID, OtherCore: -1, Thread: t.ID})
	m.enqueueRunnable(c, t, FlagFork)
	return t
}

// Wake makes t runnable if it is sleeping or blocked; otherwise no-op.
func (m *Machine) Wake(t *Thread) {
	if t.state != StateSleeping && t.state != StateBlocked {
		return
	}
	m.sleepTok[t.ID-1]++ // cancel any pending timer wake
	if t.wq != nil {
		t.wq.removeWaiter(t)
	}
	t.SleepTime += m.now - t.sleepStart
	t.opValid = false // the sleep/block op is complete
	origin := m.execCore
	target := m.sched.SelectCore(t, origin, FlagWakeup)
	m.assertAllowed(target, t)
	if m.Cost.WakeupFixedCost > 0 {
		payer := origin
		if payer == nil {
			payer = target
		}
		payer.chargeSched(m.Cost.WakeupFixedCost)
	}
	if t.LastCore != nil && t.LastCore != target && !m.Topo.ShareLLC(t.LastCore.ID, target.ID) {
		t.pendingPenalty += m.Cost.MigrationPenalty
	}
	m.Trace.Record(trace.Event{At: m.now, Kind: trace.Wakeup, Core: target.ID, OtherCore: coreID(origin), Thread: t.ID})
	if m.hooks != nil {
		for _, fn := range m.hooks.wake {
			fn(target, origin, t)
		}
	}
	m.enqueueRunnable(target, t, FlagWakeup)
}

// Signal wakes up to n threads blocked on wq, FIFO order.
func (m *Machine) Signal(wq *WaitQueue, n int) {
	for i := 0; i < n; i++ {
		t := wq.popWaiter()
		if t == nil {
			return
		}
		m.Wake(t)
	}
}

// Broadcast wakes all threads blocked on wq and releases every spinner
// watching it.
func (m *Machine) Broadcast(wq *WaitQueue) {
	for {
		t := wq.popWaiter()
		if t == nil {
			break
		}
		m.Wake(t)
	}
	// Release spinners: running ones complete their spin now; preempted
	// ones complete when next dispatched.
	spinners := append([]*Thread(nil), wq.spinners...)
	for _, t := range spinners {
		t.spinDone = true
		if t.state == StateRunning {
			c := t.core
			c.flushRun()
			t.opRemaining = 0
			m.completeOpNow(c, t)
		}
	}
}

// Migrate moves a runnable (not running) thread between cores; balancers
// and stealers call it. The scheduler's Dequeue/Enqueue maintain their own
// structures.
func (m *Machine) Migrate(t *Thread, from, to *Core) {
	if t.state != StateRunnable {
		panic(fmt.Sprintf("sim: Migrate of %v in state %v", t, t.state))
	}
	if from.Curr == t {
		panic("sim: Migrate of running thread")
	}
	if t.core != from {
		panic("sim: Migrate from wrong core")
	}
	if !t.CanRunOn(to.ID) {
		panic("sim: Migrate violates affinity")
	}
	m.sched.Dequeue(from, t, FlagMigrate)
	t.core = nil
	t.state = StateSleeping // transient; enqueueRunnable restores
	if t.LastCore != nil && !m.Topo.ShareLLC(t.LastCore.ID, to.ID) {
		t.pendingPenalty += m.Cost.MigrationPenalty
	}
	m.Trace.Record(trace.Event{At: m.now, Kind: trace.Migrate, Core: from.ID, OtherCore: to.ID, Thread: t.ID})
	if m.hooks != nil {
		for _, fn := range m.hooks.migrate {
			fn(from, to, t)
		}
	}
	m.enqueueRunnable(to, t, FlagMigrate)
}

// SetPinned changes a thread's affinity (taskset). Unpinning takes effect
// through normal balancing, as in the paper's Figure 6 experiment.
func (m *Machine) SetPinned(t *Thread, cores []int) {
	t.Pinned = cores
}

// RunnableCounts samples NrRunnable for every core — the y-axis of the
// paper's Figures 6 and 7.
func (m *Machine) RunnableCounts() []int {
	return m.RunnableCountsInto(nil)
}

// RunnableCountsInto is RunnableCounts sampling into buf, reusing its
// backing array when it is large enough — for tight sampling loops (the
// fig6/fig7 probes run every 250 simulated ms).
func (m *Machine) RunnableCountsInto(buf []int) []int {
	if cap(buf) < len(m.Cores) {
		buf = make([]int, len(m.Cores))
	}
	buf = buf[:len(m.Cores)]
	for i, c := range m.Cores {
		buf[i] = m.sched.NrRunnable(c)
	}
	return buf
}

// ChargeSched bills d of scheduler work to core c (or the exec core when c
// is nil), consuming simulated CPU time.
func (m *Machine) ChargeSched(c *Core, d time.Duration) {
	if c == nil {
		c = m.execCore
	}
	if c == nil {
		return
	}
	c.chargeSched(d)
}

// ChargeScan bills placement-scan work: like ChargeSched but also counted
// in the core's ScanTime (the paper's §6.3 scheduler-time metric).
func (m *Machine) ChargeScan(c *Core, d time.Duration) {
	if c == nil {
		c = m.execCore
	}
	if c == nil {
		return
	}
	c.chargeSched(d)
	c.ScanTime += d
}

// TraceBalance records a balancer invocation for core c.
func (m *Machine) TraceBalance(c *Core) {
	m.Trace.Record(trace.Event{At: m.now, Kind: trace.Balance, Core: c.ID, OtherCore: -1})
}

// TraceSteal records an idle steal by c from victim.
func (m *Machine) TraceSteal(c, victim *Core, t *Thread) {
	m.Trace.Record(trace.Event{At: m.now, Kind: trace.Steal, Core: c.ID, OtherCore: victim.ID, Thread: t.ID})
	if m.hooks != nil {
		for _, fn := range m.hooks.steal {
			fn(c, victim, t)
		}
	}
}

func coreID(c *Core) int {
	if c == nil {
		return -1
	}
	return c.ID
}

func (m *Machine) assertAllowed(c *Core, t *Thread) {
	if c == nil {
		panic(fmt.Sprintf("sim: SelectCore returned nil for %v", t))
	}
	if !t.CanRunOn(c.ID) {
		panic(fmt.Sprintf("sim: SelectCore placed %v on disallowed core %d", t, c.ID))
	}
}

// enqueueRunnable hands t to the scheduler on c and kicks dispatch or
// preemption as needed.
func (m *Machine) enqueueRunnable(c *Core, t *Thread, flags int) {
	t.state = StateRunnable
	t.core = c
	t.LastEnqueuedAt = m.now
	m.sched.Enqueue(c, t, flags)
	if m.hooks != nil {
		for _, fn := range m.hooks.enqueue {
			fn(c, t, flags)
		}
	}
	if c.Curr == nil {
		if !c.dispatching {
			m.dispatch(c)
		}
		return
	}
	if c.Curr != t && m.sched.CheckPreempt(c, t, flags) {
		if c.inBoundary {
			c.NeedResched = true
			return
		}
		m.deschedule(c, FlagPreempted)
		m.dispatch(c)
	}
}

// dispatch fills an empty core with the scheduler's pick.
func (m *Machine) dispatch(c *Core) {
	if c.Curr != nil {
		panic("sim: dispatch on busy core")
	}
	c.dispatching = true
	defer func() { c.dispatching = false }()
	triedIdle := c.offline // offline cores never pull work
	for {
		t := m.sched.PickNext(c)
		if t == nil {
			if !triedIdle {
				triedIdle = true
				if m.sched.IdleBalance(c) {
					continue
				}
			}
			if c.lastThread != nil {
				m.Trace.Record(trace.Event{At: m.now, Kind: trace.Switch, Core: c.ID, OtherCore: -1, Thread: 0, Other: c.lastThread.ID})
				c.lastThread = nil
			}
			c.markIdle()
			return
		}
		if t.state != StateRunnable || t.core != c {
			panic(fmt.Sprintf("sim: PickNext returned %v (state %v, core %v) on core %d", t, t.state, coreID(t.core), c.ID))
		}
		if m.hooks != nil && !c.offline {
			for _, fn := range m.hooks.pick {
				fn(c, t)
			}
		}
		m.start(c, t)
		return
	}
}

// start puts t on c and arms its burst.
func (m *Machine) start(c *Core, t *Thread) {
	c.markBusy()
	t.state = StateRunning
	c.Curr = t
	c.NeedResched = false
	c.runStart = m.now
	if m.Cost.PickFixedCost > 0 {
		c.SchedTime += m.Cost.PickFixedCost
		c.runStart += m.Cost.PickFixedCost
	}
	if c.lastThread != t {
		m.Trace.Record(trace.Event{At: m.now, Kind: trace.Switch, Core: c.ID, OtherCore: -1, Thread: t.ID, Other: threadID(c.lastThread)})
		if m.Cost.SwitchCost > 0 {
			c.SchedTime += m.Cost.SwitchCost
			c.runStart += m.Cost.SwitchCost
		}
	}
	c.lastThread = t
	if m.hooks != nil {
		for _, fn := range m.hooks.dispatch {
			fn(c, t)
		}
	}

	if t.opValid {
		switch t.op.Kind {
		case OpRun, OpSpin:
			if t.op.Kind == OpSpin && t.spinDone {
				// Condition fired while we waited on the runqueue.
				m.completeOpNow(c, t)
				return
			}
			if t.op.Kind == OpRun && t.pendingPenalty > 0 {
				t.opRemaining += t.pendingPenalty
				t.pendingPenalty = 0
			}
			m.scheduleBurstEnd(c)
			m.afterBoundary(c)
			return
		default:
			panic(fmt.Sprintf("sim: thread %v dispatched with pending %v op", t, t.op.Kind))
		}
	}
	m.advance(c, t)
}

// scheduleBurstEnd arms the burst-end event for c's current thread. The
// event is typed and carries only (core, thread, token), so this per-burst
// hot path allocates nothing.
func (m *Machine) scheduleBurstEnd(c *Core) {
	t := c.Curr
	tok := &m.coreTok[c.ID]
	tok.burst++
	m.schedule(event{
		at:    c.runStart + c.wallFor(t.opRemaining),
		kind:  evBurstEnd,
		id:    int32(c.ID),
		tid:   int32(t.ID),
		token: tok.burst,
	})
}

// completeOpNow finishes t's current op on c and advances the program.
func (m *Machine) completeOpNow(c *Core, t *Thread) {
	if t.op.Kind == OpSpin {
		if t.spinWQ != nil {
			t.spinWQ.removeSpinner(t)
		}
		t.spinDone = false
	}
	t.opValid = false
	m.advance(c, t)
}

// advance asks t's program for ops until one consumes time or changes
// state. It runs with t current on c.
func (m *Machine) advance(c *Core, t *Thread) {
	ctx := &t.ctx
	for {
		c.inBoundary = true
		prevExec := m.execCore
		m.execCore = c
		op := t.prog.Next(ctx)
		m.execCore = prevExec
		c.inBoundary = false

		if t.state != StateRunning || c.Curr != t {
			panic(fmt.Sprintf("sim: %v changed state during Next()", t))
		}
		t.op = op
		t.opValid = true
		t.spinDone = false

		switch op.Kind {
		case OpRun:
			d := op.Dur + t.pendingPenalty
			t.pendingPenalty = 0
			if d <= 0 {
				t.opValid = false
				if m.guardZeroOps(t) {
					continue
				}
				return
			}
			t.zeroOps = 0
			t.opRemaining = d
			m.scheduleBurstEnd(c)
			m.afterBoundary(c)
			return
		case OpSpin:
			if op.WQ == nil {
				panic("sim: Spin with nil wait queue")
			}
			if op.Dur <= 0 {
				t.opValid = false
				if m.guardZeroOps(t) {
					continue
				}
				return
			}
			t.zeroOps = 0
			t.opRemaining = op.Dur
			op.WQ.addSpinner(t)
			m.scheduleBurstEnd(c)
			m.afterBoundary(c)
			return
		case OpSleep:
			d := op.Dur
			if d <= 0 {
				d = time.Nanosecond
			}
			t.zeroOps = 0
			m.sleepCurrent(c, t, d)
			return
		case OpBlock:
			if op.WQ == nil {
				panic("sim: Block with nil wait queue")
			}
			t.zeroOps = 0
			m.blockCurrent(c, t, op.WQ)
			return
		case OpYield:
			t.zeroOps = 0
			t.opValid = false
			m.sched.Yield(c, t)
			m.deschedule(c, 0)
			m.dispatch(c)
			return
		case OpExit:
			m.exitCurrent(c, t)
			return
		default:
			panic(fmt.Sprintf("sim: unknown op kind %v", op.Kind))
		}
	}
}

// guardZeroOps counts consecutive zero-time ops; returns true to continue
// the advance loop, panicking if the program cannot make progress.
func (m *Machine) guardZeroOps(t *Thread) bool {
	t.zeroOps++
	if t.zeroOps > 100000 {
		panic(fmt.Sprintf("sim: thread %v stuck issuing zero-time ops", t))
	}
	return true
}

// afterBoundary handles a preemption requested while the thread was inside
// Next() (a wakeup it performed preempts it).
func (m *Machine) afterBoundary(c *Core) {
	if c.NeedResched && c.Curr != nil {
		c.NeedResched = false
		m.deschedule(c, FlagPreempted)
		m.dispatch(c)
	}
}

// deschedule removes the (still runnable) current thread from c, returning
// it to the scheduler's queues. flags: FlagPreempted for involuntary
// wakeup-driven preemption (tail vs head queue placement, cache penalty).
func (m *Machine) deschedule(c *Core, flags int) {
	t := c.Curr
	if t == nil {
		return
	}
	c.flushRun()
	m.coreTok[c.ID].burst++ // invalidate burst-end
	if flags&FlagPreempted != 0 {
		m.Trace.Record(trace.Event{At: m.now, Kind: trace.Preempt, Core: c.ID, OtherCore: -1, Thread: t.ID})
		t.pendingPenalty += m.Cost.PreemptPenalty
	}
	t.state = StateRunnable
	t.LastCore = c
	t.LastRanAt = m.now
	c.Curr = nil
	m.sched.PutPrev(c, t, flags)
}

// sleepCurrent puts the running thread into a timed voluntary sleep.
func (m *Machine) sleepCurrent(c *Core, t *Thread, d time.Duration) {
	m.stopCurrent(c, t, FlagSleep)
	t.state = StateSleeping
	t.sleepStart = m.now
	m.sleepTok[t.ID-1]++
	m.schedule(event{at: m.now + d, kind: evSleepWake, tid: int32(t.ID), token: m.sleepTok[t.ID-1]})
	if c.Curr == nil {
		m.dispatch(c)
	}
}

// blockCurrent puts the running thread to sleep on wq.
func (m *Machine) blockCurrent(c *Core, t *Thread, wq *WaitQueue) {
	m.stopCurrent(c, t, FlagSleep)
	t.state = StateBlocked
	t.sleepStart = m.now
	wq.addWaiter(t)
	if c.Curr == nil {
		m.dispatch(c)
	}
}

// exitCurrent terminates the running thread.
func (m *Machine) exitCurrent(c *Core, t *Thread) {
	m.stopCurrent(c, t, FlagExit)
	t.state = StateDead
	t.opValid = false
	m.live--
	m.sched.Exit(t)
	m.Trace.Record(trace.Event{At: m.now, Kind: trace.Exit, Core: c.ID, OtherCore: -1, Thread: t.ID})
	m.Broadcast(t.ExitWQ)
	if t.OnExit != nil {
		t.OnExit(t)
	}
	// The exit broadcast may already have refilled the core (a joiner was
	// placed here and dispatched); only dispatch if still empty.
	if c.Curr == nil {
		m.dispatch(c)
	}
}

// stopCurrent is the common leave-the-CPU path for sleep/block/exit.
func (m *Machine) stopCurrent(c *Core, t *Thread, flags int) {
	c.flushRun()
	m.coreTok[c.ID].burst++
	t.LastCore = c
	t.LastRanAt = m.now
	// Dequeue while c.Curr still points at t, so the scheduler can tell a
	// running thread (accounting only) from a queued one (unlink).
	m.sched.Dequeue(c, t, flags)
	c.Curr = nil
	t.core = nil
	// The sleep/block op is consumed; the program resumes with a fresh op
	// on wakeup. Exit consumes trivially.
	t.opValid = false
}

// startTicks arms the per-core periodic scheduler tick, staggered so cores
// do not tick in lockstep. When the scheduler reports NeedsIdleTick() ==
// false (and ForceIdleTicks is off), idle cores are tickless: their tick is
// parked while idle and re-armed on markBusy at the next point of the
// core's original staggered grid, so tick times on busy cores are
// bit-identical to an always-ticking machine.
func (m *Machine) startTicks() {
	if m.ticksOn {
		return
	}
	m.ticksOn = true
	period := m.sched.TickPeriod()
	if period <= 0 {
		panic("sim: scheduler TickPeriod must be positive")
	}
	m.tickPeriod = period
	for i := range m.Cores {
		c := m.Cores[i]
		c.tickOffset = period * time.Duration(i) / time.Duration(len(m.Cores))
		if m.idleTicks {
			m.armTick(c, c.tickOffset+period)
		} else {
			// Cores start idle; the first markBusy arms the tick on the
			// core's grid.
			c.tickParked = true
		}
	}
}

// armTick schedules c's next tick at the absolute time at, superseding any
// in-flight tick event for the core.
func (m *Machine) armTick(c *Core, at time.Duration) {
	tok := &m.coreTok[c.ID]
	tok.tick++
	c.tickAt = at
	m.schedule(event{at: at, kind: evTick, id: int32(c.ID), token: tok.tick})
}

// fireTick runs one scheduler tick on c and re-arms or parks the next one.
func (m *Machine) fireTick(c *Core, token uint64) {
	if token != m.coreTok[c.ID].tick {
		// Superseded: the core parked or re-armed since. If this is the
		// parked tick popping at the first suppressed grid point, remember
		// the sequence watermark — the position the always-ticking idle
		// tick would have fired at (Core.nextGridTick's tie-break). After
		// a park/re-arm/re-park cycle several superseded ticks can pop at
		// the same grid point; only the earliest-armed one corresponds to
		// the always-ticking engine's single tick chain, so later pops
		// must not overwrite the watermark.
		if c.tickParked && m.now == c.parkAt && c.parkWatermark == 0 {
			c.parkWatermark = m.seq
		}
		return
	}
	c.lastTick = m.now
	c.flushRun()
	if m.hooks != nil {
		for _, fn := range m.hooks.tick {
			fn(c)
		}
	}
	m.sched.Tick(c, c.Curr)
	if c.NeedResched {
		c.NeedResched = false
		if c.Curr != nil {
			m.deschedule(c, 0)
			m.dispatch(c)
		}
	}
	if !m.idleTicks && c.Curr == nil {
		// Defensive: normally markIdle parks first (and the token check
		// above drops this event). Refresh the park state so a later
		// nextGridTick tie-break cannot read stale values.
		c.tickParked = true
		c.parkAt = m.now + m.tickPeriod
		c.parkWatermark = 0
		return
	}
	m.armTick(c, m.now+m.tickPeriod)
}

func threadID(t *Thread) int {
	if t == nil {
		return 0
	}
	return t.ID
}
