package sim

import "time"

// Enqueue/dequeue/select flags, mirroring the kernel's ENQUEUE_WAKEUP /
// SD_BALANCE_FORK / etc. distinctions that Table 1's functions receive.
const (
	// FlagWakeup: the thread just woke from sleep.
	FlagWakeup = 1 << iota
	// FlagFork: the thread was just created.
	FlagFork
	// FlagMigrate: the thread is moving between cores (balancer/steal).
	FlagMigrate
	// FlagPreempted: the thread was involuntarily descheduled.
	FlagPreempted
	// FlagSleep: the thread is leaving the runnable set voluntarily.
	FlagSleep
	// FlagExit: the thread is dying.
	FlagExit
)

// Scheduler is the scheduling-class interface, the Go rendition of the
// paper's Table 1. The engine guarantees single-threaded invocation; there
// is no locking. Threads handed to Enqueue are not in any queue; PickNext
// must remove the returned thread from queue structures (it remains counted
// as runnable on the core); PutPrev re-inserts a still-runnable thread.
type Scheduler interface {
	// Name identifies the scheduler ("cfs", "ule").
	Name() string

	// Attach binds the scheduler to a machine; called exactly once, before
	// any other method. The scheduler may install timers via
	// machine.After/Every (ULE's core-0 balancer does).
	Attach(m *Machine)

	// TickPeriod is the interval between scheduler ticks on each core
	// (Linux: 1 ms at HZ=1000; FreeBSD: 1/127 s at stathz=127).
	TickPeriod() time.Duration

	// NeedsIdleTick reports whether Tick must keep firing on idle cores.
	// Schedulers that do periodic work from the idle tick — steal retries,
	// periodic balancing, calendar rotation — return true and observe ticks
	// exactly as on an always-ticking machine. When false, the engine parks
	// an idle core's tick and re-arms it on the core's original staggered
	// grid when the core next becomes busy: busy-core tick times are
	// bit-identical either way (a wake landing exactly on a grid point
	// reproduces always-ticking event order from the waking event's arming
	// time, with the first suppressed grid point's sequence watermark
	// breaking the exact tie; an event armed exactly on a suppressed grid
	// point deeper in a parked window counts as armed after that point's
	// idle tick), and Tick is never invoked with a nil curr. Returning
	// false therefore requires that the scheduler's idle tick be a no-op.
	NeedsIdleTick() bool

	// Enqueue makes t runnable on c (enqueue_task / sched_add+sched_wakeup;
	// flags distinguish the two FreeBSD entry points as the port does).
	Enqueue(c *Core, t *Thread, flags int)

	// Dequeue removes t from c's runnable set (dequeue_task / sched_rem).
	// If t is currently running, only accounting is updated.
	Dequeue(c *Core, t *Thread, flags int)

	// Yield handles a voluntary CPU relinquish (yield_task /
	// sched_relinquish) before the engine deschedules t.
	Yield(c *Core, t *Thread)

	// PickNext selects the next thread to run on c (pick_next_task /
	// sched_choose), removing it from queue structures, or returns nil.
	PickNext(c *Core) *Thread

	// PutPrev returns the previously running, still-runnable t to the
	// queue structures (put_prev_task / sched_switch). FlagPreempted marks
	// involuntary wakeup preemption (ULE re-queues those at the head,
	// SRQ_PREEMPTED).
	PutPrev(c *Core, t *Thread, flags int)

	// SelectCore places a woken or newly forked thread (select_task_rq /
	// sched_pickcpu). origin is the core the waking/forking happened on
	// (nil for timer wakeups). The returned core must satisfy t's affinity.
	SelectCore(t *Thread, origin *Core, flags int) *Core

	// CheckPreempt reports whether newly enqueued t should preempt c's
	// current thread (check_preempt_wakeup; ULE: effectively never for
	// user threads — "full preemption is disabled").
	CheckPreempt(c *Core, t *Thread, flags int) bool

	// Tick is the periodic scheduler tick on c; curr is the running thread
	// or nil when idle. Set c.NeedResched to force a reschedule.
	Tick(c *Core, curr *Thread)

	// Fork initialises the child's scheduler state from its parent
	// (task_fork / sched_fork); called before the child is enqueued.
	Fork(parent, child *Thread)

	// Exit releases t's scheduler state (task_dead / sched_exit). For ULE
	// this refunds the child's runtime to its parent.
	Exit(t *Thread)

	// IdleBalance is invoked when c runs out of work, before it goes idle;
	// the scheduler may pull threads (CFS newidle balance, ULE tdq_idled).
	// Return true if a retry of PickNext may find work.
	IdleBalance(c *Core) bool

	// NrRunnable returns the number of runnable threads on c including the
	// running one — ULE's load metric, also used by figures 6/7.
	NrRunnable(c *Core) int
}

// CostModel prices the micro-architectural effects the paper attributes
// performance differences to. Zero values disable an effect.
type CostModel struct {
	// SwitchCost is charged on every context switch between two distinct
	// threads (pipeline/TLB churn).
	SwitchCost time.Duration
	// MigrationPenalty is added to a thread's next Run burst after it
	// moves to a core not sharing the LLC it last ran on (cold caches —
	// why fibo is "slightly faster" isolated on ULE, §5.1).
	MigrationPenalty time.Duration
	// PreemptPenalty is added to a thread's next Run burst after an
	// involuntary preemption (partial cache eviction — the apache/ab
	// effect, §5.3).
	PreemptPenalty time.Duration
	// PerCoreScanCost is charged to the waking core for every core a
	// placement scan examines (ULE's sched_pickcpu loops — the §6.3 "13%
	// of all CPU cycles spent scanning").
	PerCoreScanCost time.Duration
	// WakeupFixedCost is charged per wakeup for the fixed enqueue path.
	WakeupFixedCost time.Duration
	// PickFixedCost is charged per pick_next on the picking core.
	PickFixedCost time.Duration
}

// DefaultCostModel returns the calibrated costs used by the experiments;
// EXPERIMENTS.md documents the calibration.
func DefaultCostModel() CostModel {
	return CostModel{
		SwitchCost:       1500 * time.Nanosecond,
		MigrationPenalty: 30 * time.Microsecond,
		PreemptPenalty:   12 * time.Microsecond,
		PerCoreScanCost:  150 * time.Nanosecond,
		WakeupFixedCost:  800 * time.Nanosecond,
		PickFixedCost:    300 * time.Nanosecond,
	}
}
