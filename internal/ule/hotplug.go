package ule

import (
	"repro/internal/runq"
	"repro/internal/sim"
)

// CoreOffline implements sim.Hotplugger: drain the dead core's tdq —
// realtime queue first, then the timeshare calendar, matching
// tdq_choose's service order — re-placing each thread with
// sched_pickcpu. The core is already marked offline, so every placement
// scan skips it via CanRunOn.
func (s *Sched) CoreOffline(c *sim.Core) {
	q := &s.tdqs[c.ID]
	for {
		var e *runq.Entry
		if e = q.realtime.Choose(); e == nil {
			e = q.timeshare.Choose()
		}
		if e == nil {
			return
		}
		t := e.Payload.(*sim.Thread)
		target := s.SelectCore(t, nil, sim.FlagMigrate)
		s.m.Migrate(t, c, target)
	}
}

// CoreOnline implements sim.Hotplugger: per-core tdq state (calendar
// position, tick count) survives the offline window untouched; the
// engine's post-online dispatch runs tdq_idled to pull work back.
func (s *Sched) CoreOnline(c *sim.Core) {}

var _ sim.Hotplugger = (*Sched)(nil)
