// Package ule implements FreeBSD 11.1's ULE scheduler as ported to Linux by
// the paper (§2.2, §3): interactivity-scored dual runqueues with absolute
// priority for interactive threads, load defined as runnable thread count,
// a cache-affinity-first pickcpu with widening priority scans, a core-0
// periodic balancer moving one thread per donor/receiver pair, and idle
// stealing — with full preemption disabled for user threads.
//
// Port deviations preserved from the paper's §3: the running thread is
// never migrated, and the balancer-never-runs bug of FreeBSD (the paper's
// ref [1]) is fixed by default but available as an ablation.
package ule

import "time"

// Params are the tunables; defaults mirror FreeBSD 11.1 and the paper.
type Params struct {
	// InteractThresh is the score at or below which a thread is
	// interactive (SCHED_INTERACT_THRESH = 30).
	InteractThresh int
	// SlpRunMax caps the runtime+sleeptime history ("limited to the last 5
	// seconds of the thread's lifetime").
	SlpRunMax time.Duration
	// SlpRunForkMax compresses inherited history at fork
	// (SCHED_SLP_RUN_FORK: 2 s).
	SlpRunForkMax time.Duration
	// SliceTicks is the timeslice for a lone thread, in stathz ticks ("10
	// ticks (78ms)").
	SliceTicks int
	// SliceMinTicks is the floor ("a lower bound of 1 tick").
	SliceMinTicks int
	// SliceMinDivisor: at loads >= this, the slice pins to the minimum
	// (SCHED_SLICE_MIN_DIVISOR = 6).
	SliceMinDivisor int
	// AffinityBase is the cache-affinity window at the tightest level;
	// each topology level doubles it (SCHED_AFFINITY scaling).
	AffinityBase time.Duration
	// BalanceMin/BalanceMax bound the uniformly random periodic balancer
	// interval ("every 500-1500ms, the duration chosen randomly").
	BalanceMin, BalanceMax time.Duration
	// StealThresh is the minimum victim load for idle stealing
	// (steal_thresh = 2: at least one queued thread beyond the running
	// one).
	StealThresh int
	// FixBalancerBug keeps the periodic balancer running (the paper fixed
	// FreeBSD's bug [1]); false reproduces stock FreeBSD 11.1, where it
	// never executes.
	FixBalancerBug bool
	// WakeupPrevCPUOnly replaces sched_pickcpu with "return the previous
	// CPU" — the paper's §6.3 validation experiment for the wakeup scan
	// overhead.
	WakeupPrevCPUOnly bool
	// FullPreempt enables wakeup preemption by interactive threads, an
	// ablation of "full preemption is disabled".
	FullPreempt bool
}

// DefaultParams returns the paper's ULE configuration.
func DefaultParams() Params {
	return Params{
		InteractThresh:  30,
		SlpRunMax:       5 * time.Second,
		SlpRunForkMax:   2 * time.Second,
		SliceTicks:      10,
		SliceMinTicks:   1,
		SliceMinDivisor: 6,
		AffinityBase:    8 * time.Millisecond,
		BalanceMin:      500 * time.Millisecond,
		BalanceMax:      1500 * time.Millisecond,
		StealThresh:     2,
		FixBalancerBug:  true,
	}
}

// Priority bands, scaled into one 0..PriIdle space the way the paper's port
// scales ULE scores into the CFS priority range (§3). Lower is better.
const (
	// PriMinInteract..PriMaxInteract hold interactive threads.
	PriMinInteract = 0
	PriMaxInteract = 47
	// PriMinBatch..PriMaxBatch hold batch (timeshare) threads.
	PriMinBatch = 48
	PriMaxBatch = 111
	// PriIdle is the idle-queue priority.
	PriIdle = 119
)

// tickPeriod is stathz = 127 Hz — "1 tick (1/127th of a second)".
const tickPeriod = time.Second / 127
