package ule

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

type looper struct{ burst time.Duration }

func (l *looper) Next(ctx *sim.Ctx) sim.Op { return sim.Run(l.burst) }

type sleeper struct {
	run, sleep time.Duration
	state      int
	Runs       int
}

func (s *sleeper) Next(ctx *sim.Ctx) sim.Op {
	if s.state == 0 {
		s.state = 1
		s.Runs++
		return sim.Run(s.run)
	}
	s.state = 0
	return sim.Sleep(s.sleep)
}

func newMachine(p Params, tp *topo.Topology, seed int64) (*sim.Machine, *Sched) {
	s := New(p)
	m := sim.NewMachine(tp, s, sim.Options{Seed: seed, Cost: &sim.CostModel{}, TraceCapacity: 0})
	return m, s
}

func TestInteractScoreFormula(t *testing.T) {
	cases := []struct {
		r, s time.Duration
		want int
	}{
		{0, 0, 0},
		{0, time.Second, 0},
		{time.Second, 0, 100},
		{time.Second, time.Second, 50},
		{time.Second, 2 * time.Second, 25}, // m·r/s = 50·1/2
		{2 * time.Second, time.Second, 75}, // 2m − m·s/r = 100−25
		{time.Second, 4 * time.Second, 12}, // 50/4
		{4 * time.Second, time.Second, 88}, // 100 − 50/4 (integer div)
		{time.Millisecond, 5 * time.Second, 0},
	}
	for _, c := range cases {
		if got := interactScore(c.r, c.s); got != c.want {
			t.Errorf("interactScore(%v,%v) = %d, want %d", c.r, c.s, got, c.want)
		}
	}
}

func TestInteractScoreRangeProperty(t *testing.T) {
	f := func(r, s uint32) bool {
		got := interactScore(time.Duration(r)*time.Microsecond, time.Duration(s)*time.Microsecond)
		return got >= 0 && got <= 100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInteractUpdateWindowProperty(t *testing.T) {
	p := DefaultParams()
	f := func(rs []uint16) bool {
		var r, s time.Duration
		for i, x := range rs {
			d := time.Duration(x) * time.Millisecond
			if i%2 == 0 {
				r += d
			} else {
				s += d
			}
			p.interactUpdate(&r, &s)
			if r < 0 || s < 0 {
				return false
			}
			// History must never exceed twice the window.
			if r+s > 2*p.SlpRunMax {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSpinnerBecomesBatchSleeperStaysInteractive(t *testing.T) {
	m, s := newMachine(DefaultParams(), topo.SingleCore(), 1)
	spin := m.StartThread("spin", "a", 0, &looper{burst: time.Millisecond})
	slp := m.StartThread("slp", "b", 0, &sleeper{run: 100 * time.Microsecond, sleep: 10 * time.Millisecond})
	m.Run(10 * time.Second)
	if sc := s.Score(spin); sc <= 50 {
		t.Fatalf("spinner score = %d, want > 50 (batch)", sc)
	}
	if sc := s.Score(slp); sc > DefaultParams().InteractThresh {
		t.Fatalf("sleeper score = %d, want <= 30 (interactive)", sc)
	}
	if s.Interactive(spin) {
		t.Fatal("spinner classified interactive")
	}
	if !s.Interactive(slp) {
		t.Fatal("sleeper classified batch")
	}
}

// TestInteractiveStarvesBatch is the paper's core §5.1 result in miniature:
// interactive threads that saturate the core starve batch threads without
// bound.
func TestInteractiveStarvesBatch(t *testing.T) {
	m, _ := newMachine(DefaultParams(), topo.SingleCore(), 1)
	fibo := m.StartThread("fibo", "fibo", 0, &looper{burst: time.Millisecond})
	// Warm up fibo so it is batch.
	m.Run(3 * time.Second)
	// 20 "interactive" threads that collectively saturate the core: each
	// sleeps 4ms then runs 1ms: with 20 of them the demand is ≥ 1 core,
	// but each still sleeps ≥ 60% of its window because they queue behind
	// each other (queue wait is neither sleep nor run).
	for i := 0; i < 20; i++ {
		m.StartThread("svc", "db", 0, &sleeper{run: time.Millisecond, sleep: 4 * time.Millisecond})
	}
	fiboBefore := fibo.RunTime
	m.Run(m.Now() + 5*time.Second)
	starved := fibo.RunTime - fiboBefore
	if starved > 250*time.Millisecond {
		t.Fatalf("fibo got %v of 5s under interactive load; ULE should starve it", starved)
	}
}

// TestCFSStyleFairnessAmongBatch: batch threads share the core round-robin.
func TestBatchFairness(t *testing.T) {
	m, _ := newMachine(DefaultParams(), topo.SingleCore(), 1)
	a := m.StartThread("a", "app", 0, &looper{burst: time.Millisecond})
	b := m.StartThread("b", "app", 0, &looper{burst: time.Millisecond})
	m.Run(10 * time.Second)
	ratio := float64(a.RunTime) / float64(a.RunTime+b.RunTime)
	if ratio < 0.40 || ratio > 0.60 {
		t.Fatalf("batch share = %v, want ~0.5", ratio)
	}
}

func TestNoWakeupPreemption(t *testing.T) {
	m, _ := newMachine(DefaultParams(), topo.SingleCore(), 1)
	m.StartThread("hog", "a", 0, &looper{burst: 50 * time.Millisecond})
	m.StartThread("inter", "b", 0, &sleeper{run: 100 * time.Microsecond, sleep: 5 * time.Millisecond})
	m.Run(5 * time.Second)
	if got := m.Trace.Count(trace.Preempt); got != 0 {
		t.Fatalf("ULE produced %d wakeup preemptions; full preemption is disabled", got)
	}
}

func TestFullPreemptAblation(t *testing.T) {
	p := DefaultParams()
	p.FullPreempt = true
	m, _ := newMachine(p, topo.SingleCore(), 1)
	m.StartThread("hog", "a", 0, &looper{burst: 50 * time.Millisecond})
	m.StartThread("inter", "b", 0, &sleeper{run: 100 * time.Microsecond, sleep: 5 * time.Millisecond})
	m.Run(5 * time.Second)
	if got := m.Trace.Count(trace.Preempt); got == 0 {
		t.Fatal("FullPreempt ablation produced no preemptions")
	}
}

func TestTimesliceDividedByLoad(t *testing.T) {
	p := DefaultParams()
	s := New(p)
	q := &tdq{}
	q.load = 1
	if got := s.sliceFor(q); got != 10 {
		t.Fatalf("slice(load 1) = %d ticks", got)
	}
	q.load = 3 // two others → 10/2
	if got := s.sliceFor(q); got != 5 {
		t.Fatalf("slice(load 3) = %d ticks", got)
	}
	q.load = 16
	if got := s.sliceFor(q); got != 1 {
		t.Fatalf("slice(load 16) = %d ticks, want floor 1", got)
	}
}

func TestOneThreadPerCorePlacement(t *testing.T) {
	// The MG mechanism: N spinners on N cores — ULE places one per core
	// and never migrates them again.
	m, _ := newMachine(DefaultParams(), topo.Default(), 1)
	for i := 0; i < 32; i++ {
		m.StartThread("mg", "mg", 0, &looper{burst: time.Millisecond})
	}
	m.Run(5 * time.Second)
	for i, n := range m.RunnableCounts() {
		if n != 1 {
			t.Fatalf("core %d has %d threads: %v", i, n, m.RunnableCounts())
		}
	}
	// After the initial placement there is nothing to migrate.
	if migs := m.Trace.Count(trace.Migrate); migs > 4 {
		t.Fatalf("ULE migrated %d times on a static balanced workload", migs)
	}
}

func TestIdleStealTakesOneEach(t *testing.T) {
	m, _ := newMachine(DefaultParams(), topo.Small(), 1)
	// 16 spinners pinned to core 0; unpin → each idle core steals one, the
	// periodic balancer evens the rest over time.
	var ths []*sim.Thread
	for i := 0; i < 16; i++ {
		ths = append(ths, m.StartThreadCfg(sim.ThreadConfig{
			Name: "s", Group: "spin", Pinned: []int{0},
			Prog: &looper{burst: 10 * time.Millisecond},
		}))
	}
	m.Run(time.Second)
	for _, th := range ths {
		m.SetPinned(th, nil)
	}
	m.Run(m.Now() + 100*time.Millisecond)
	counts := m.RunnableCounts()
	// 7 idle cores steal exactly one each shortly after unpinning.
	for i := 1; i < 8; i++ {
		if counts[i] != 1 {
			t.Fatalf("core %d stole %d, want exactly 1: %v", i, counts[i], counts)
		}
	}
	if counts[0] != 16-7 {
		t.Fatalf("core 0 kept %d, want 9: %v", counts[0], counts)
	}
	// The long-run balancer converges to 2 per core, one migration per
	// invocation.
	m.Run(m.Now() + 30*time.Second)
	counts = m.RunnableCounts()
	for i, n := range counts {
		if n != 2 {
			t.Fatalf("core %d has %d after long balancing: %v", i, n, counts)
		}
	}
}

func TestBalancerMovesOneThreadPerInvocation(t *testing.T) {
	m, _ := newMachine(DefaultParams(), topo.Small(), 1)
	var ths []*sim.Thread
	for i := 0; i < 24; i++ {
		ths = append(ths, m.StartThreadCfg(sim.ThreadConfig{
			Name: "s", Group: "spin", Pinned: []int{0},
			Prog: &looper{burst: 10 * time.Millisecond},
		}))
	}
	m.Run(500 * time.Millisecond)
	for _, th := range ths {
		m.SetPinned(th, nil)
	}
	m.Run(m.Now() + 20*time.Second)
	// Steals: 7 (one per idle core). After that, only the balancer moves
	// threads: migrations - steals ≤ invocations (it can move at most one
	// per invocation: core 0 is the only donor).
	steals := m.Counters.Value("ule.steals")
	migs := m.Trace.Count(trace.Migrate)
	invocations := m.Counters.Value("ule.balance_invocations")
	if steals != 7 {
		t.Fatalf("steals = %d, want 7", steals)
	}
	if migs-steals > invocations {
		t.Fatalf("balancer moved %d threads in %d invocations", migs-steals, invocations)
	}
	if invocations < 10 {
		t.Fatalf("balancer ran only %d times in 20s", invocations)
	}
}

func TestBalancerBugAblation(t *testing.T) {
	p := DefaultParams()
	p.FixBalancerBug = false
	m, _ := newMachine(p, topo.Small(), 1)
	var ths []*sim.Thread
	for i := 0; i < 24; i++ {
		ths = append(ths, m.StartThreadCfg(sim.ThreadConfig{
			Name: "s", Group: "spin", Pinned: []int{0},
			Prog: &looper{burst: 10 * time.Millisecond},
		}))
	}
	m.Run(100 * time.Millisecond)
	for _, th := range ths {
		m.SetPinned(th, nil)
	}
	m.Run(m.Now() + 20*time.Second)
	if n := m.Counters.Value("ule.balance_invocations"); n != 0 {
		t.Fatalf("stock-bug mode ran the balancer %d times", n)
	}
	// Idle steal still works (7 steals), but core 0 keeps the rest forever.
	counts := m.RunnableCounts()
	if counts[0] != 24-7 {
		t.Fatalf("with the balancer bug core 0 should keep %d threads: %v", 24-7, counts)
	}
}

func TestForkInheritsInteractivity(t *testing.T) {
	m, s := newMachine(DefaultParams(), topo.SingleCore(), 1)
	var child *sim.Thread
	// Parent burns CPU for 4s, then forks: child must inherit a batch
	// classification.
	burned := false
	m.StartThread("parent", "app", 0, sim.ProgramFunc(func(ctx *sim.Ctx) sim.Op {
		if !burned {
			burned = true
			return sim.Run(4 * time.Second)
		}
		if child == nil {
			child = ctx.Fork("child", "app", 0, &looper{burst: time.Millisecond})
		}
		return sim.Run(10 * time.Millisecond)
	}))
	m.RunUntil(func() bool { return child != nil }, 20*time.Second)
	if child == nil {
		t.Fatal("never forked")
	}
	if s.Interactive(child) {
		t.Fatalf("child of CPU-burning parent classified interactive (score %d)", s.Score(child))
	}
}

func TestExitRefundsRuntimeToParent(t *testing.T) {
	m, s := newMachine(DefaultParams(), topo.SingleCore(), 1)
	var parent *sim.Thread
	state := 0
	parent = m.StartThread("parent", "app", 0, sim.ProgramFunc(func(ctx *sim.Ctx) sim.Op {
		switch state {
		case 0:
			state = 1
			// Sleep a lot first: strongly interactive parent.
			return sim.Sleep(4 * time.Second)
		case 1:
			state = 2
			ctx.Fork("child", "app", 0, &looper{burst: 500 * time.Millisecond})
			// Child will burn CPU; parent sleeps meanwhile.
			return sim.Sleep(2 * time.Second)
		default:
			return sim.Sleep(500 * time.Millisecond)
		}
	}))
	// Kill the child after it burned ~1.5s.
	m.RunUntil(func() bool { return state == 2 }, 20*time.Second)
	var child *sim.Thread
	for _, th := range m.Threads() {
		if th.Name == "child" {
			child = th
		}
	}
	if child == nil {
		t.Fatal("no child")
	}
	before := s.Score(parent)
	m.Run(m.Now() + 1500*time.Millisecond)
	// Make the child exit by replacing its behaviour: simplest is to let
	// it keep running and kill via exit op — use a direct approach: wake
	// parent's score check after child's natural death is not possible
	// (looper never exits), so emulate the refund directly.
	d := s.td(child)
	s.syncAccounting(child, d)
	s.Exit(child)
	after := s.Score(parent)
	if after <= before {
		t.Fatalf("parent score did not rise after batch child exit: %d -> %d", before, after)
	}
}

func TestWakeupPrevCPUAblationSkipsScans(t *testing.T) {
	p := DefaultParams()
	p.WakeupPrevCPUOnly = true
	cost := sim.CostModel{PerCoreScanCost: time.Microsecond}
	s := New(p)
	m := sim.NewMachine(topo.Default(), s, sim.Options{Seed: 1, Cost: &cost})
	for i := 0; i < 16; i++ {
		m.StartThread("svc", "db", 0, &sleeper{run: time.Millisecond, sleep: 3 * time.Millisecond})
	}
	m.Run(2 * time.Second)
	scans := m.Counters.Value("ule.scan_cores")
	// Only fork-time placements scan; wakeups must not.
	if scans > 16*40 {
		t.Fatalf("prev-CPU ablation still scanned %d cores", scans)
	}
}

func TestWakeupScansCostCycles(t *testing.T) {
	cost := sim.CostModel{PerCoreScanCost: time.Microsecond}
	s := New(DefaultParams())
	m := sim.NewMachine(topo.Default(), s, sim.Options{Seed: 1, Cost: &cost})
	for i := 0; i < 64; i++ {
		m.StartThread("svc", "db", 0, &sleeper{run: time.Millisecond, sleep: 3 * time.Millisecond})
	}
	m.Run(2 * time.Second)
	if scans := m.Counters.Value("ule.scan_cores"); scans == 0 {
		t.Fatal("no scan cost accounted")
	}
	var sched time.Duration
	for _, c := range m.Cores {
		sched += c.SchedTime
	}
	if sched == 0 {
		t.Fatal("no scheduler time charged")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() time.Duration {
		m, _ := newMachine(DefaultParams(), topo.Default(), 77)
		for i := 0; i < 20; i++ {
			m.StartThread("w", "app", 0, &sleeper{run: time.Millisecond, sleep: 3 * time.Millisecond})
		}
		for i := 0; i < 10; i++ {
			m.StartThread("s", "spin", 0, &looper{burst: 2 * time.Millisecond})
		}
		m.Run(3 * time.Second)
		var sum time.Duration
		for _, th := range m.Threads() {
			sum += th.RunTime
		}
		return sum
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

func TestPriorityBands(t *testing.T) {
	p := DefaultParams()
	pri, inter := p.priority(0, 0, 0)
	if !inter || pri != PriMinInteract {
		t.Fatalf("score 0 → pri %d interactive=%v", pri, inter)
	}
	pri, inter = p.priority(30, 0, 0)
	if !inter || pri != PriMaxInteract {
		t.Fatalf("score 30 → pri %d interactive=%v", pri, inter)
	}
	pri, inter = p.priority(31, time.Second, 0)
	if inter || pri < PriMinBatch || pri > PriMaxBatch {
		t.Fatalf("score 31 → pri %d interactive=%v", pri, inter)
	}
	// More runtime → lower priority (higher number).
	p1, _ := p.priority(80, time.Second, 0)
	p2, _ := p.priority(80, 4*time.Second, 0)
	if p2 <= p1 {
		t.Fatalf("batch priority did not degrade with runtime: %d vs %d", p1, p2)
	}
	// Nice shifts batch priority.
	pn, _ := p.priority(80, time.Second, 10)
	if pn <= p1 {
		t.Fatalf("nice did not degrade batch priority: %d vs %d", p1, pn)
	}
}
