package ule

import (
	"time"

	"repro/internal/sim"
	"repro/internal/topo"
)

// SelectCore implements sim.Scheduler (sched_pickcpu): affinity fast paths,
// then widening priority-filtered scans, then global lowest load — "at
// worst, may scan all cores of the machine three times" (§6.3), each
// examined core billed to the waking CPU via the cost model.
func (s *Sched) SelectCore(t *sim.Thread, origin *sim.Core, flags int) *sim.Core {
	d := s.td(t)
	prev := t.LastCore

	if s.P.WakeupPrevCPUOnly && flags&sim.FlagWakeup != 0 {
		// §6.3 ablation: "we replaced the ULE wakeup function by a simple
		// one that returns the CPU on which the thread was previously
		// running".
		if prev != nil && t.CanRunOn(prev.ID) {
			return prev
		}
	}

	if len(s.m.Cores) == 1 {
		return s.m.Cores[0]
	}

	// Fast path: previous core idle, or cache-affine and the thread would
	// be the highest priority there.
	if prev != nil && t.CanRunOn(prev.ID) {
		if s.tdqs[prev.ID].load == 0 {
			return prev
		}
		if s.affine(t, prev.ID, topo.LevelLLC) && d.pri < s.lowestPri(prev.ID) {
			return prev
		}
	}

	// Widening searches. Start from the highest level still considered
	// affine (or the previous core's LLC), looking for a core where this
	// thread would have the best priority, preferring the least loaded.
	start := prev
	if start == nil {
		start = origin
	}
	if start == nil {
		start = s.m.Cores[0]
	}

	payer := origin
	if payer == nil {
		// Timer wakeups run in interrupt context on the core the timer
		// fires on; bill the scan there.
		payer = start
	}
	if c := s.searchGroup(t, d, s.m.Topo.Group(start.ID, topo.LevelLLC), payer, true); c != nil {
		return c
	}
	if c := s.searchGroup(t, d, s.m.Topo.Group(start.ID, topo.LevelMachine), payer, true); c != nil {
		return c
	}
	if c := s.searchGroup(t, d, s.m.Topo.Group(start.ID, topo.LevelMachine), payer, false); c != nil {
		return c
	}
	// Affinity fallback.
	for id := range s.m.Cores {
		if t.CanRunOn(id) {
			return s.m.Cores[id]
		}
	}
	panic("ule: thread pinned to no cores")
}

// searchGroup scans ids for the least-loaded core; with priFilter it only
// accepts cores whose minimum priority is worse than the thread's
// ("sched_lowest with a priority bound"). payer is billed for the scan.
func (s *Sched) searchGroup(t *sim.Thread, d *tsd, ids []int, payer *sim.Core, priFilter bool) *sim.Core {
	best := -1
	bestLoad := 0
	scanned := 0
	for _, id := range ids {
		scanned++
		if !t.CanRunOn(id) {
			continue
		}
		if priFilter && s.lowestPri(id) <= d.pri {
			continue
		}
		load := s.tdqs[id].load
		if best < 0 || load < bestLoad {
			best, bestLoad = id, load
		}
	}
	s.chargeScan(payer, scanned)
	if best < 0 {
		return nil
	}
	return s.m.Cores[best]
}

// affine reports whether the thread ran on core id recently enough to still
// be cache affine at the given topology level (SCHED_AFFINITY: the window
// doubles per level).
func (s *Sched) affine(t *sim.Thread, id int, level topo.Level) bool {
	if t.LastCore == nil || t.LastCore.ID != id {
		return false
	}
	window := s.P.AffinityBase << uint(level)
	return s.m.Now()-t.LastRanAt < window
}

// chargeScan bills a placement scan to the paying core (the §6.3 "13% of
// all CPU cycles spent scanning cores").
func (s *Sched) chargeScan(payer *sim.Core, cores int) {
	if s.m.Cost.PerCoreScanCost <= 0 || cores == 0 {
		return
	}
	s.m.ChargeScan(payer, time.Duration(cores)*s.m.Cost.PerCoreScanCost)
	s.m.Counters.Get("ule.scan_cores").Inc(uint64(cores))
}
