package ule

import (
	"repro/internal/runq"
	"repro/internal/sim"
	"repro/internal/topo"
)

// armBalancer schedules the periodic balancer on core 0 with a uniformly
// random period — "ULE also balances threads periodically, every 500-1500ms
// (the duration of the period is chosen randomly). The periodic load
// balancing is performed only by core 0."
func (s *Sched) armBalancer() {
	var fire func()
	fire = func() {
		s.balance()
		s.m.After(s.m.Rand().DurationIn(s.P.BalanceMin, s.P.BalanceMax), fire)
	}
	s.m.After(s.m.Rand().DurationIn(s.P.BalanceMin, s.P.BalanceMax), fire)
}

// balance is sched_balance as the paper describes it: repeatedly pair the
// most-loaded unused core (donor) with the least-loaded unused core
// (receiver) and migrate exactly one thread; a core may be donor or
// receiver at most once per invocation.
func (s *Sched) balance() {
	s.m.TraceBalance(s.m.Cores[0])
	s.m.Counters.Get("ule.balance_invocations").Inc(1)
	used := make([]bool, len(s.tdqs))
	for {
		donor, receiver := -1, -1
		hi, lo := -1, int(^uint(0)>>1)
		for id := range s.tdqs {
			// Offline cores report load 0 and would otherwise always win
			// the receiver slot, silently burning a donor pairing per
			// invocation on a core that can accept nothing.
			if used[id] || s.tdqs[id].core.Offline() {
				continue
			}
			load := s.tdqs[id].load
			if load > hi {
				hi, donor = load, id
			}
			if load < lo {
				lo, receiver = load, id
			}
		}
		if donor < 0 || receiver < 0 || donor == receiver {
			return
		}
		// Moving one thread must reduce imbalance.
		if hi-lo < 2 {
			return
		}
		moved := s.moveOne(donor, receiver)
		used[donor] = true
		used[receiver] = true
		if moved {
			s.m.Counters.Get("ule.balance_migrations").Inc(1)
		}
	}
}

// moveOne migrates one transferable thread from donor to receiver
// (tdq_move): never the running thread (the port's §3 constraint), FIFO
// order within the queues, interactive queue first.
func (s *Sched) moveOne(donor, receiver int) bool {
	t := s.stealableFrom(donor, receiver)
	if t == nil {
		return false
	}
	s.m.Migrate(t, s.m.Cores[donor], s.m.Cores[receiver])
	return true
}

// stealableFrom returns the first queued thread on donor that may run on
// the receiving core (runq_steal's scan order).
func (s *Sched) stealableFrom(donor, receiver int) *sim.Thread {
	q := &s.tdqs[donor]
	var found *sim.Thread
	take := func(e *runq.Entry) bool {
		t := e.Payload.(*sim.Thread)
		if !t.CanRunOn(receiver) {
			return true // keep scanning
		}
		found = t
		return false
	}
	q.realtime.Each(take)
	if found == nil {
		q.timeshare.Each(take)
	}
	return found
}

// IdleBalance implements sim.Scheduler (tdq_idled): an idle core steals one
// thread from the most loaded core sharing a cache, widening outward until
// something is found — "the idle stealing mechanism steals at most one
// thread".
func (s *Sched) IdleBalance(c *sim.Core) bool {
	// Fast path: stealing needs a victim with load >= StealThresh. While no
	// core is that loaded the widening scan below finds nothing and has no
	// side effects, so skip it — the common case on mostly-idle machines,
	// where every idle core retries this scan on every tick.
	if s.loaded == 0 {
		return false
	}
	for _, level := range []topo.Level{topo.LevelLLC, topo.LevelNUMA, topo.LevelMachine} {
		victim := -1
		most := s.P.StealThresh - 1
		for _, id := range s.m.Topo.Group(c.ID, level) {
			if id == c.ID {
				continue
			}
			if l := s.tdqs[id].load; l > most {
				most, victim = l, id
			}
		}
		if victim < 0 {
			continue
		}
		t := s.stealableFrom(victim, c.ID)
		if t == nil {
			continue
		}
		s.m.TraceSteal(c, s.m.Cores[victim], t)
		s.m.Counters.Get("ule.steals").Inc(1)
		s.m.Migrate(t, s.m.Cores[victim], c)
		return true
	}
	return false
}
