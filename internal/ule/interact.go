package ule

import "time"

// interactHalf is the scaling factor m = 50 of the paper's penalty formula.
const interactHalf = 50

// interactScore is FreeBSD's sched_interact_score: 0..49 for threads that
// sleep more than they run, 50..100 for the opposite. (The paper's formula
// box renders the r ≥ s branch ambiguously; this is the shipped code: for
// r > s the score is 2m − m·s/r, rising to 100 as sleep time vanishes —
// which is exactly the "penalty of fibo quickly rises to the maximum value"
// behaviour of Figure 2.)
func interactScore(runtime, slptime time.Duration) int {
	switch {
	case runtime > slptime:
		div := runtime / interactHalf
		if div < 1 {
			div = 1
		}
		penalty := slptime / div
		if penalty > interactHalf {
			penalty = interactHalf
		}
		return interactHalf + (interactHalf - int(penalty))
	case slptime > runtime:
		div := slptime / interactHalf
		if div < 1 {
			div = 1
		}
		return int(runtime / div)
	default:
		if runtime > 0 {
			return interactHalf
		}
		return 0
	}
}

// interactUpdate clips the (runtime, sleeptime) history to the SlpRunMax
// window (sched_interact_update): large overshoots snap to the cap, medium
// ones halve, and the steady state decays by 4/5 — geometric forgetting
// that keeps roughly the last 5 seconds.
func (p Params) interactUpdate(runtime, slptime *time.Duration) {
	sum := *runtime + *slptime
	if sum < p.SlpRunMax {
		return
	}
	if sum > p.SlpRunMax*2 {
		if *runtime > *slptime {
			*runtime = p.SlpRunMax
			*slptime = 1
		} else {
			*slptime = p.SlpRunMax
			*runtime = 1
		}
		return
	}
	if sum > p.SlpRunMax/5*6 {
		*runtime /= 2
		*slptime /= 2
		return
	}
	*runtime = *runtime / 5 * 4
	*slptime = *slptime / 5 * 4
}

// interactFork compresses the history a child inherits
// (sched_interact_fork), bounding it to SlpRunForkMax while preserving the
// ratio — the mechanism that lets sysbench's later-forked workers inherit
// the master's by-then-batch classification (Figures 3/4).
func (p Params) interactFork(runtime, slptime *time.Duration) {
	sum := *runtime + *slptime
	if sum > p.SlpRunForkMax {
		ratio := int64(sum / p.SlpRunForkMax)
		if ratio < 1 {
			ratio = 1
		}
		*runtime /= time.Duration(ratio)
		*slptime /= time.Duration(ratio)
	}
}

// priority maps a thread's score and history to a queue priority
// (sched_priority): interactive scores spread linearly over the
// interactive band; batch priority grows with recent runtime plus
// niceness.
func (p Params) priority(score int, runtime time.Duration, nice int) (pri int, interactive bool) {
	if score <= p.InteractThresh {
		span := PriMaxInteract - PriMinInteract
		pri = PriMinInteract + score*span/p.InteractThresh
		return pri, true
	}
	// Batch: scale runtime over the history window into the batch band —
	// "the more a thread runs, the lower its priority", with niceness as a
	// linear offset.
	span := int64(PriMaxBatch - PriMinBatch)
	r := int64(runtime)
	w := int64(p.SlpRunMax)
	rel := int(r * span / w)
	if rel > int(span) {
		rel = int(span)
	}
	pri = PriMinBatch + rel + nice
	if pri < PriMinBatch {
		pri = PriMinBatch
	}
	if pri > PriMaxBatch {
		pri = PriMaxBatch
	}
	return pri, false
}
