package ule

import (
	"fmt"
	"time"

	"repro/internal/runq"
	"repro/internal/sim"
)

// Sched is the ULE scheduling class.
type Sched struct {
	// P holds the tunables (fixed after Attach).
	P Params

	m    *sim.Machine
	tdqs []tdq

	// stealThresh caches P.StealThresh (floored at 1); loaded counts the
	// tdqs whose load reaches it. While loaded is zero the idle-steal scan
	// provably finds no victim, so IdleBalance — which every idle core
	// retries on every tick — short-circuits without touching the topology.
	stealThresh int
	loaded      int
}

// tdq is the per-core queue state (struct tdq).
type tdq struct {
	core *sim.Core
	// realtime holds interactive threads: one FIFO per priority.
	realtime runq.Queue
	// timeshare is the rotating calendar queue of batch threads.
	timeshare runq.Calendar
	// load is the runnable thread count including the running one — ULE's
	// whole load metric ("the load of a core is simply defined as the
	// number of threads currently runnable on this core").
	load int
	// ticks counts scheduler ticks on this core.
	ticks int
	// softPreempt records that a higher-priority thread was enqueued from
	// this core's context (sched_setpreempt's TDF_NEEDRESCHED): honoured
	// at the next tick, never immediately — "full preemption is disabled".
	// Remote enqueues do not set it; they wait for the running thread's
	// slice to end (tdq_notify sends no IPI for user priorities), which is
	// the §6.4 "delays of up to the length of fibo's timeslice".
	softPreempt bool
}

// tsd is the per-thread scheduler data (struct td_sched).
type tsd struct {
	// runtime and slptime are the decayed interactivity history.
	runtime, slptime time.Duration
	// runSeen/slpSeen are high-water marks of the engine's cumulative
	// counters, so deltas can be folded into the decayed history.
	runSeen, slpSeen time.Duration
	// pri is the current scaled priority; interactive tells which band.
	pri         int
	interactive bool
	// slice is the remaining timeslice in stathz ticks.
	slice int
	// entry links the thread into a runq; entry.Payload is the thread.
	entry runq.Entry
	// onBatchQ remembers which structure holds the entry.
	onBatchQ bool
}

// New returns a ULE instance with the given parameters.
func New(p Params) *Sched { return &Sched{P: p} }

// NewDefault returns ULE with the paper's configuration.
func NewDefault() *Sched { return New(DefaultParams()) }

// Name implements sim.Scheduler.
func (s *Sched) Name() string { return "ule" }

// TickPeriod implements sim.Scheduler: stathz = 127.
func (s *Sched) TickPeriod() time.Duration { return tickPeriod }

// NeedsIdleTick implements sim.Scheduler: idle cores retry tdq_idled steals
// and rotate the timeshare calendar from Tick, so ULE opts in to idle
// ticks.
func (s *Sched) NeedsIdleTick() bool { return true }

// Attach implements sim.Scheduler: build per-core queues and arm the core-0
// periodic balancer.
func (s *Sched) Attach(m *sim.Machine) {
	s.m = m
	// One contiguous block of per-core queue state: the balancer and the
	// steal scans walk every core's load in sequence, so keeping the tdqs
	// in one allocation turns those walks into linear scans of adjacent
	// cache lines instead of pointer chases.
	s.tdqs = make([]tdq, len(m.Cores))
	for i, c := range m.Cores {
		s.tdqs[i] = tdq{core: c}
	}
	s.stealThresh = s.P.StealThresh
	if s.stealThresh < 1 {
		s.stealThresh = 1
	}
	if s.P.FixBalancerBug {
		s.armBalancer()
	}
	// Stock FreeBSD 11.1 (ref [1]): the balancer never runs.
}

func (s *Sched) td(t *sim.Thread) *tsd {
	d, ok := t.SchedData.(*tsd)
	if !ok {
		panic(fmt.Sprintf("ule: thread %v has no tsd", t))
	}
	return d
}

// Fork implements sim.Scheduler: "when a thread is created, it inherits the
// runtime and sleeptime (and thus the interactivity) of its parent", with
// the inherited history compressed (sched_interact_fork).
func (s *Sched) Fork(parent, child *sim.Thread) {
	d := &tsd{}
	d.entry.Payload = child
	if parent != nil {
		pd := s.td(parent)
		s.syncAccounting(parent, pd)
		d.runtime = pd.runtime
		d.slptime = pd.slptime
		s.P.interactFork(&d.runtime, &d.slptime)
	}
	child.SchedData = d
	s.updatePriority(child, d)
}

// Exit implements sim.Scheduler: "when a thread dies, its runtime in the
// last 5 seconds is returned to its parent", penalising interactive parents
// that spawned batch children.
func (s *Sched) Exit(t *sim.Thread) {
	d := s.td(t)
	s.syncAccounting(t, d)
	p := t.Parent
	if p == nil || p.State() == sim.StateDead {
		return
	}
	pd := s.td(p)
	pd.runtime += d.runtime
	s.P.interactUpdate(&pd.runtime, &pd.slptime)
}

// syncAccounting folds the engine's cumulative run/sleep counters into the
// decayed interactivity history. Runqueue waiting time counts as neither.
func (s *Sched) syncAccounting(t *sim.Thread, d *tsd) {
	if dr := t.RunTime - d.runSeen; dr > 0 {
		d.runtime += dr
		d.runSeen = t.RunTime
		s.P.interactUpdate(&d.runtime, &d.slptime)
	}
	if ds := t.SleepTime - d.slpSeen; ds > 0 {
		d.slptime += ds
		d.slpSeen = t.SleepTime
		s.P.interactUpdate(&d.runtime, &d.slptime)
	}
}

// updatePriority recomputes score and priority (sched_priority).
func (s *Sched) updatePriority(t *sim.Thread, d *tsd) {
	score := interactScore(d.runtime, d.slptime) + t.Nice
	if score < 0 {
		score = 0
	}
	d.pri, d.interactive = s.P.priority(score, d.runtime, t.Nice)
}

// Score exposes a thread's current interactivity penalty + nice (for the
// Figure 2/4 probes).
func (s *Sched) Score(t *sim.Thread) int {
	d := s.td(t)
	s.syncAccounting(t, d)
	score := interactScore(d.runtime, d.slptime) + t.Nice
	if score < 0 {
		score = 0
	}
	return score
}

// Interactive reports a thread's current classification.
func (s *Sched) Interactive(t *sim.Thread) bool {
	d := s.td(t)
	return d.interactive
}

// Enqueue implements sim.Scheduler (sched_add / sched_wakeup → tdq_runq_add).
func (s *Sched) Enqueue(c *sim.Core, t *sim.Thread, flags int) {
	q := &s.tdqs[c.ID]
	d := s.td(t)
	if flags&sim.FlagWakeup != 0 {
		s.syncAccounting(t, d)
	}
	s.updatePriority(t, d)
	if d.entry.OnQueue() {
		panic(fmt.Sprintf("ule: %v already queued", t))
	}
	if d.interactive {
		d.onBatchQ = false
		if flags&sim.FlagPreempted != 0 {
			// SRQ_PREEMPTED: preempted threads resume at the head.
			q.realtime.AddHead(&d.entry, d.pri)
		} else {
			q.realtime.Add(&d.entry, d.pri)
		}
	} else {
		d.onBatchQ = true
		q.timeshare.Add(&d.entry, s.batchQueuePri(d))
	}
	q.load++
	if q.load == s.stealThresh {
		s.loaded++
	}
	// sched_setpreempt: only wakeups performed from this core's own
	// context (syscall or local interrupt) mark the running thread for a
	// reschedule at the next tick.
	if flags&sim.FlagWakeup != 0 && c.Curr != nil {
		local := s.m.ExecCore() == c || (s.m.ExecCore() == nil && t.LastCore == c)
		if local && d.pri < s.td(c.Curr).pri {
			q.softPreempt = true
		}
	}
}

// batchQueuePri maps a batch priority into the calendar's 0..63 index
// space.
func (s *Sched) batchQueuePri(d *tsd) int {
	rel := d.pri - PriMinBatch
	span := PriMaxBatch - PriMinBatch
	idx := rel * (runq.NQS - 1) / span
	if idx < 0 {
		idx = 0
	}
	if idx >= runq.NQS {
		idx = runq.NQS - 1
	}
	return idx
}

// Dequeue implements sim.Scheduler (sched_rem).
func (s *Sched) Dequeue(c *sim.Core, t *sim.Thread, flags int) {
	q := &s.tdqs[c.ID]
	d := s.td(t)
	if c.Curr == t {
		// Running threads are not in the queues (ULE removes them, §3).
		s.syncAccounting(t, d)
	} else {
		s.removeEntry(q, d)
	}
	q.load--
	if q.load < 0 {
		panic("ule: negative load")
	}
	if q.load == s.stealThresh-1 {
		s.loaded--
	}
}

func (s *Sched) removeEntry(q *tdq, d *tsd) {
	if !d.entry.OnQueue() {
		panic("ule: dequeue of unqueued thread")
	}
	if d.onBatchQ {
		q.timeshare.Remove(&d.entry)
	} else {
		q.realtime.Remove(&d.entry)
	}
}

// PickNext implements sim.Scheduler (sched_choose → tdq_choose): interactive
// queue first — giving interactive threads absolute priority — then the
// batch calendar.
func (s *Sched) PickNext(c *sim.Core) *sim.Thread {
	q := &s.tdqs[c.ID]
	var e *runq.Entry
	if e = q.realtime.Choose(); e == nil {
		e = q.timeshare.Choose()
	}
	if e == nil {
		return nil
	}
	t := e.Payload.(*sim.Thread)
	d := s.td(t)
	s.removeEntry(q, d)
	if d.slice <= 0 {
		d.slice = s.sliceFor(q)
	}
	return t
}

// sliceFor is tdq_slice: 10 ticks for ≤1 thread, divided by the load with a
// 1-tick floor.
func (s *Sched) sliceFor(q *tdq) int {
	load := q.load - 1
	if load <= 1 {
		return s.P.SliceTicks
	}
	if load >= s.P.SliceMinDivisor {
		return s.P.SliceMinTicks
	}
	sl := s.P.SliceTicks / load
	if sl < s.P.SliceMinTicks {
		sl = s.P.SliceMinTicks
	}
	return sl
}

// PutPrev implements sim.Scheduler (sched_switch for a still-runnable
// thread): back into the queues, at the head when preempted.
func (s *Sched) PutPrev(c *sim.Core, t *sim.Thread, flags int) {
	q := &s.tdqs[c.ID]
	d := s.td(t)
	s.syncAccounting(t, d)
	s.updatePriority(t, d)
	if d.interactive {
		d.onBatchQ = false
		if flags&sim.FlagPreempted != 0 {
			q.realtime.AddHead(&d.entry, d.pri)
		} else {
			q.realtime.Add(&d.entry, d.pri)
		}
	} else {
		d.onBatchQ = true
		q.timeshare.Add(&d.entry, s.batchQueuePri(d))
	}
}

// Yield implements sim.Scheduler (sched_relinquish): consume the slice so
// the thread rotates to the back.
func (s *Sched) Yield(c *sim.Core, t *sim.Thread) {
	s.td(t).slice = 0
}

// CheckPreempt implements sim.Scheduler: "in ULE, full preemption is
// disabled, meaning that only kernel threads can preempt others" — user
// wakeups never preempt. The FullPreempt ablation restores priority
// preemption for interactive wakeups.
func (s *Sched) CheckPreempt(c *sim.Core, t *sim.Thread, flags int) bool {
	if !s.P.FullPreempt {
		return false
	}
	if flags&sim.FlagWakeup == 0 {
		return false
	}
	curr := c.Curr
	if curr == nil {
		return true
	}
	return s.td(t).pri < s.td(curr).pri
}

// Tick implements sim.Scheduler (sched_clock): rotate the calendar, account
// the running thread, recompute its priority, and expire its slice.
func (s *Sched) Tick(c *sim.Core, curr *sim.Thread) {
	q := &s.tdqs[c.ID]
	q.ticks++
	q.timeshare.Advance()
	if curr == nil {
		// tdq_idled runs from the idle loop; retry stealing each tick.
		if s.IdleBalance(c) {
			// Enqueue-side dispatch already filled the core if a steal
			// succeeded.
			_ = q
		}
		return
	}
	d := s.td(curr)
	s.syncAccounting(curr, d)
	s.updatePriority(curr, d)
	if q.softPreempt {
		q.softPreempt = false
		if s.bestQueuedPri(q) < d.pri {
			c.NeedResched = true
		}
	}
	d.slice--
	if d.slice <= 0 {
		// Slice expired: round-robin within the class. Only forces a
		// switch if someone else is waiting.
		if q.load > 1 {
			c.NeedResched = true
		} else {
			d.slice = s.sliceFor(q)
		}
	}
}

// NrRunnable implements sim.Scheduler.
func (s *Sched) NrRunnable(c *sim.Core) int { return s.tdqs[c.ID].load }

// bestQueuedPri is the best priority waiting in c's queues (running thread
// excluded), PriIdle when empty.
func (s *Sched) bestQueuedPri(q *tdq) int {
	best := PriIdle
	if rp := q.realtime.BestPri(); rp < runq.NQS && rp < best {
		best = rp
	}
	if e := q.timeshare.Choose(); e != nil {
		if p := s.td(e.Payload.(*sim.Thread)).pri; p < best {
			best = p
		}
	}
	return best
}

// lowestPri is the best (numerically lowest) priority present on a core,
// PriIdle when idle — tdq_lowpri, the value pickcpu's searches compare.
func (s *Sched) lowestPri(id int) int {
	q := &s.tdqs[id]
	best := PriIdle
	if q.core.Curr != nil {
		best = s.td(q.core.Curr).pri
	}
	if rp := q.realtime.BestPri(); rp < runq.NQS && rp < best {
		best = rp
	}
	if !q.timeshare.Empty() {
		if e := q.timeshare.Choose(); e != nil {
			if p := s.td(e.Payload.(*sim.Thread)).pri; p < best {
				best = p
			}
		}
	}
	return best
}

// ExplainPick implements sim.PickExplainer: the queued candidates on c —
// realtime FIFO band first (sched_choose's order), then the timeshare
// calendar in rotation order — keyed by each thread's scaled priority
// (lower = better). The running thread is not queued and does not appear.
func (s *Sched) ExplainPick(c *sim.Core, buf []sim.PickCandidate) []sim.PickCandidate {
	buf = buf[:0]
	q := &s.tdqs[c.ID]
	add := func(e *runq.Entry) bool {
		t := e.Payload.(*sim.Thread)
		buf = append(buf, sim.PickCandidate{TID: int32(t.ID), Key: int64(s.td(t).pri)})
		return true
	}
	q.realtime.Each(add)
	q.timeshare.Each(add)
	return buf
}

var _ sim.Scheduler = (*Sched)(nil)
var _ sim.PickExplainer = (*Sched)(nil)
