// Package fault is the deterministic fault-injection subsystem: it
// turns a declarative Plan of perturbations — CPU hotplug, frequency
// throttling, antagonist interference threads, wakeup storms — into
// timer events on a sim.Machine. Everything is scheduled up front from
// Install, in plan order, on the machine's own event queue, so a
// faulted run is exactly as deterministic as an unfaulted one: byte-
// identical across worker counts and across the wheel/heap engines.
//
// The paper compares ULE and CFS on static machines; its sharpest
// findings (ULE's slow rebalancing, CFS's missed idle cores) are really
// claims about recovery from perturbation. This package supplies the
// perturbations; the scenario layer derives recovery metrics from the
// machine's reaction to them.
package fault

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Kind names a fault mechanism.
type Kind string

const (
	// CPUOff hot-unplugs cores: the running thread and queue drain to
	// the survivors, and the cores come back Duration later.
	CPUOff Kind = "cpu_off"
	// Throttle scales the listed cores' execution speed by Factor.
	Throttle Kind = "throttle"
	// Antagonist spawns Threads bursty interference threads that hog
	// CPU while active and vanish (block) between activations.
	Antagonist Kind = "antagonist"
	// WakeupStorm wakes Threads sleeper threads simultaneously, each
	// running one Burst — a placement stress on SelectCore.
	WakeupStorm Kind = "wakeup_storm"
)

// Event is one resolved perturbation line of a plan. Times are absolute
// simulated times (the scenario layer has already applied trial scale).
// Every kind supports Count repeated activations Period apart.
type Event struct {
	Kind Kind
	// At is when the first activation strikes.
	At time.Duration
	// Duration is how long each activation stays active (cpu_off:
	// offline window; throttle: throttled window; antagonist: busy
	// phase). Zero means until the end of the run. Ignored for
	// wakeup_storm (storms are instantaneous).
	Duration time.Duration
	// Cores targets cpu_off and throttle; empty for throttle = all.
	Cores []int
	// Factor is the throttle speed factor, 0 < Factor <= 1.
	Factor float64
	// Threads is the antagonist / storm-sleeper thread count.
	Threads int
	// Burst is CPU consumed per antagonist iteration / per storm wake.
	Burst time.Duration
	// Period separates repeated activations; required when Count > 1.
	Period time.Duration
	// Count is the number of activations (0 means 1).
	Count int
	// Nice is the antagonist thread niceness.
	Nice int
}

// activations returns the event's activation count, flooring at 1.
func (e *Event) activations() int {
	if e.Count < 1 {
		return 1
	}
	return e.Count
}

// Plan is an ordered list of fault events. Order matters only for
// deterministic tie-breaking of same-instant activations.
type Plan struct {
	Events []Event
}

// Occurrence is one resolved activation inside a run window: [At, End)
// is its active (degraded) interval. End clamps to the window;
// instantaneous storms have End == At. Both edges are perturbation
// instants the recovery metrics measure from.
type Occurrence struct {
	Kind  Kind
	At    time.Duration
	End   time.Duration
	Cores []int
}

// Occurrences expands the plan into per-activation occurrences within
// window, in plan order. It is a pure function of (plan, window):
// scenario reports echo it, so every derived recovery metric is
// auditable from the report alone.
func (p *Plan) Occurrences(window time.Duration) []Occurrence {
	var out []Occurrence
	for i := range p.Events {
		e := &p.Events[i]
		for a := 0; a < e.activations(); a++ {
			at := e.At + time.Duration(a)*e.Period
			if at >= window {
				break
			}
			end := at
			if e.Kind != WakeupStorm {
				end = window
				if e.Duration > 0 && at+e.Duration < window {
					end = at + e.Duration
				}
			}
			out = append(out, Occurrence{Kind: e.Kind, At: at, End: end, Cores: e.Cores})
		}
	}
	return out
}

// Injector is a plan installed on a machine.
type Injector struct {
	m    *sim.Machine
	plan *Plan
}

// Install schedules every activation of plan on m's event queue and
// returns the injector. Call once per machine, before Run.
func Install(m *sim.Machine, plan *Plan) *Injector {
	inj := &Injector{m: m, plan: plan}
	for i := range plan.Events {
		e := &plan.Events[i]
		switch e.Kind {
		case CPUOff:
			inj.installCPUOff(e)
		case Throttle:
			inj.installThrottle(e)
		case Antagonist:
			inj.installAntagonist(i, e)
		case WakeupStorm:
			inj.installStorm(i, e)
		default:
			panic(fmt.Sprintf("fault: unknown kind %q", e.Kind))
		}
	}
	return inj
}

func (inj *Injector) installCPUOff(e *Event) {
	m := inj.m
	for a := 0; a < e.activations(); a++ {
		at := e.At + time.Duration(a)*e.Period
		cores := e.Cores
		m.At(at, func() {
			m.Counters.Get("fault.cpu_off").Inc(1)
			for _, id := range cores {
				if !m.OfflineCore(id) {
					// Already offline, or the last online core: refusing
					// is the deterministic safe outcome.
					m.Counters.Get("fault.offline_refused").Inc(1)
				}
			}
		})
		if e.Duration > 0 {
			m.At(at+e.Duration, func() {
				for _, id := range cores {
					m.OnlineCore(id)
				}
			})
		}
	}
}

func (inj *Injector) installThrottle(e *Event) {
	m := inj.m
	cores := e.Cores
	if len(cores) == 0 {
		cores = make([]int, len(m.Cores))
		for i := range cores {
			cores[i] = i
		}
	}
	for a := 0; a < e.activations(); a++ {
		at := e.At + time.Duration(a)*e.Period
		m.At(at, func() {
			m.Counters.Get("fault.throttle").Inc(1)
			for _, id := range cores {
				m.SetCoreSpeed(id, e.Factor)
			}
		})
		if e.Duration > 0 {
			m.At(at+e.Duration, func() {
				for _, id := range cores {
					m.SetCoreSpeed(id, 1.0)
				}
			})
		}
	}
}

// antagonist is the shared state of one antagonist event's thread gang:
// while active the threads loop Burst-sized CPU hogs; deactivation
// makes each block on wq at its next op boundary, and the next
// activation broadcasts them all back.
type antagonist struct {
	wq     *sim.WaitQueue
	burst  time.Duration
	active bool
}

func (a *antagonist) Next(ctx *sim.Ctx) sim.Op {
	if !a.active {
		return sim.Block(a.wq)
	}
	return sim.Run(a.burst)
}

func (inj *Injector) installAntagonist(idx int, e *Event) {
	m := inj.m
	a := &antagonist{wq: sim.NewWaitQueue(fmt.Sprintf("antag%d", idx)), burst: e.Burst}
	spawned := false
	for act := 0; act < e.activations(); act++ {
		at := e.At + time.Duration(act)*e.Period
		m.At(at, func() {
			m.Counters.Get("fault.antagonist_on").Inc(1)
			a.active = true
			if !spawned {
				// Lazy spawn keeps the pre-fault phase free of antagonist
				// forks; reactivations reuse the blocked gang.
				spawned = true
				for i := 0; i < e.Threads; i++ {
					m.StartThread(fmt.Sprintf("antag%d-%d", idx, i), "antagonist", e.Nice, a)
				}
				return
			}
			m.Broadcast(a.wq)
		})
		if e.Duration > 0 {
			m.At(at+e.Duration, func() { a.active = false })
		}
	}
}

// stormWorker alternates one Burst of CPU with a block on the storm's
// wait queue; each broadcast releases the whole gang at one instant.
type stormWorker struct {
	wq    *sim.WaitQueue
	burst time.Duration
	run   bool
}

func (w *stormWorker) Next(ctx *sim.Ctx) sim.Op {
	w.run = !w.run
	if w.run {
		return sim.Run(w.burst)
	}
	return sim.Block(w.wq)
}

func (inj *Injector) installStorm(idx int, e *Event) {
	m := inj.m
	wq := sim.NewWaitQueue(fmt.Sprintf("storm%d", idx))
	spawned := false
	for act := 0; act < e.activations(); act++ {
		at := e.At + time.Duration(act)*e.Period
		m.At(at, func() {
			m.Counters.Get("fault.storms").Inc(1)
			if !spawned {
				// The first storm is the fork placement storm: every
				// worker's first op is its Burst.
				spawned = true
				for i := 0; i < e.Threads; i++ {
					m.StartThread(fmt.Sprintf("storm%d-%d", idx, i), "storm",
						e.Nice, &stormWorker{wq: wq, burst: e.Burst})
				}
				return
			}
			// Workers still mid-burst (overloaded machine) miss this
			// storm; Broadcast wakes only the blocked ones.
			m.Broadcast(wq)
		})
	}
}
