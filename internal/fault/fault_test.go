package fault

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/topo"
)

func TestOccurrences(t *testing.T) {
	plan := &Plan{Events: []Event{
		{Kind: CPUOff, At: 100 * time.Millisecond, Duration: 50 * time.Millisecond,
			Cores: []int{1}, Count: 3, Period: 200 * time.Millisecond},
		{Kind: WakeupStorm, At: 300 * time.Millisecond, Threads: 4, Burst: time.Millisecond},
		{Kind: Throttle, At: 450 * time.Millisecond, Factor: 0.5}, // open-ended
	}}
	occs := plan.Occurrences(500 * time.Millisecond)
	want := []Occurrence{
		{Kind: CPUOff, At: 100 * time.Millisecond, End: 150 * time.Millisecond, Cores: []int{1}},
		{Kind: CPUOff, At: 300 * time.Millisecond, End: 350 * time.Millisecond, Cores: []int{1}},
		// Third activation at 500ms falls outside the window.
		{Kind: WakeupStorm, At: 300 * time.Millisecond, End: 300 * time.Millisecond},
		// Zero duration = until the end of the run.
		{Kind: Throttle, At: 450 * time.Millisecond, End: 500 * time.Millisecond},
	}
	if len(occs) != len(want) {
		t.Fatalf("got %d occurrences, want %d: %+v", len(occs), len(want), occs)
	}
	for i, w := range want {
		g := occs[i]
		if g.Kind != w.Kind || g.At != w.At || g.End != w.End {
			t.Fatalf("occ[%d] = %+v, want %+v", i, g, w)
		}
	}
}

// looper runs fixed CPU bursts forever.
type looper struct{ burst time.Duration }

func (l *looper) Next(ctx *sim.Ctx) sim.Op { return sim.Run(l.burst) }

func newMachine(seed int64) *sim.Machine {
	return sim.NewMachine(topo.Small(), sim.NewFIFO(),
		sim.Options{Seed: seed, Cost: &sim.CostModel{}, TraceCapacity: 0})
}

// TestAllKindsInstallAndRun drives every fault kind through a live
// machine and checks the mechanism counters plus engine determinism:
// the same faulted run must process the identical event count under the
// timer wheel and the binary heap.
func TestAllKindsInstallAndRun(t *testing.T) {
	plan := &Plan{Events: []Event{
		{Kind: CPUOff, At: 50 * time.Millisecond, Duration: 40 * time.Millisecond, Cores: []int{6, 7}},
		{Kind: Throttle, At: 60 * time.Millisecond, Duration: 60 * time.Millisecond, Cores: []int{0, 1}, Factor: 0.25},
		{Kind: Antagonist, At: 80 * time.Millisecond, Duration: 50 * time.Millisecond,
			Threads: 4, Burst: 500 * time.Microsecond, Count: 2, Period: 100 * time.Millisecond},
		{Kind: WakeupStorm, At: 120 * time.Millisecond, Threads: 16, Burst: 200 * time.Microsecond,
			Count: 2, Period: 60 * time.Millisecond},
	}}
	run := func(heap bool) (events uint64, counters map[string]uint64) {
		prev := sim.SetForceEventHeap(heap)
		defer sim.SetForceEventHeap(prev)
		m := newMachine(42)
		for i := 0; i < 8; i++ {
			m.StartThread("w", "app", 0, &looper{burst: 2 * time.Millisecond})
		}
		Install(m, plan)
		m.Run(300 * time.Millisecond)
		counters = map[string]uint64{}
		for _, name := range m.Counters.Names() {
			counters[name] = m.Counters.Value(name)
		}
		return m.EventsProcessed(), counters
	}
	ev, ctr := run(false)
	for name, wantMin := range map[string]uint64{
		"fault.cpu_off":       1,
		"fault.throttle":      1,
		"fault.antagonist_on": 2,
		"fault.storms":        2,
		"hotplug.offline":     2,
		"hotplug.online":      2,
	} {
		if ctr[name] < wantMin {
			t.Errorf("counter %s = %d, want >= %d", name, ctr[name], wantMin)
		}
	}
	hev, hctr := run(true)
	if ev != hev {
		t.Fatalf("engines diverged on a faulted run: wheel %d events, heap %d", ev, hev)
	}
	for name, v := range ctr {
		if hctr[name] != v {
			t.Fatalf("counter %s diverged: wheel %d, heap %d", name, v, hctr[name])
		}
	}
}

// TestOfflineRefusalCounted: a plan that tries to offline everything is
// refused deterministically, and the refusal is visible in counters.
func TestOfflineRefusalCounted(t *testing.T) {
	m := newMachine(1)
	m.StartThread("w", "app", 0, &looper{burst: time.Millisecond})
	Install(m, &Plan{Events: []Event{
		{Kind: CPUOff, At: 10 * time.Millisecond, Cores: []int{0, 1, 2, 3, 4, 5, 6, 7}},
	}})
	m.Run(50 * time.Millisecond)
	if got := m.Counters.Value("fault.offline_refused"); got != 1 {
		t.Fatalf("fault.offline_refused = %d, want 1 (the last survivor)", got)
	}
	if got := m.OnlineCores(); got != 1 {
		t.Fatalf("OnlineCores = %d, want 1", got)
	}
}

// TestAntagonistGangParksBetweenActivations: the gang spawns lazily at
// the first activation, blocks at deactivation, and rejoins on the next
// broadcast rather than respawning.
func TestAntagonistGangParksBetweenActivations(t *testing.T) {
	m := newMachine(7)
	m.StartThread("w", "app", 0, &looper{burst: time.Millisecond})
	Install(m, &Plan{Events: []Event{
		{Kind: Antagonist, At: 20 * time.Millisecond, Duration: 20 * time.Millisecond,
			Threads: 3, Burst: time.Millisecond, Count: 2, Period: 50 * time.Millisecond},
	}})
	m.Run(10 * time.Millisecond)
	if got := m.LiveThreads(); got != 1 {
		t.Fatalf("antagonists spawned before first activation: %d live", got)
	}
	m.Run(30 * time.Millisecond) // 40ms: first activation done
	if got := m.LiveThreads(); got != 4 {
		t.Fatalf("gang missing after first activation: %d live, want 4", got)
	}
	m.Run(200 * time.Millisecond)
	if got := m.LiveThreads(); got != 4 {
		t.Fatalf("gang must persist (blocked) between activations: %d live", got)
	}
	if got := m.Counters.Value("fault.antagonist_on"); got != 2 {
		t.Fatalf("fault.antagonist_on = %d, want 2", got)
	}
}
