// Package timeline is the scheduler flight recorder: an
// allocation-bounded per-thread state machine driven purely from the
// engine's observer hooks, answering "where did each thread's time go"
// (running vs. runnable-waiting vs. sleeping) and "what was the dispatch
// latency per wakeup" — the perf-sched-timehist view of a simulation.
//
// The engine exposes no hooks for preemption, sleep, or exit, so the
// recorder reconciles retroactively: the engine stamps Thread.LastRanAt at
// every leave-CPU instant, and whenever a thread's next hook fires the
// stale interval is classified exactly — a wake hook means the gap since
// LastRanAt was sleep, a dispatch or migrate hook means it was
// runnable-wait. Close classifies whatever state remains via
// Thread.State(). The invariant this buys (pinned by tests): for every
// recorded thread, run + wait + sleep == its observed span, to the
// nanosecond.
//
// Like internal/dtrace, attaching nothing costs nothing: the hook table's
// nil check is the entire zero-recorder fast path, so unrecorded runs stay
// 0 allocs/op (TestZeroTimelineAllocFree).
package timeline

import (
	"fmt"
	"math/bits"

	"repro/internal/sim"
)

// Track group names for the Perfetto export (Options.Tracks).
const (
	TrackSlices   = "slices"   // per-core running-slice tracks
	TrackInstants = "instants" // wakeup/migrate/steal instant events
	TrackCounters = "counters" // counter tracks fed from probe series
)

// TrackGroups lists the selectable Perfetto track groups.
func TrackGroups() []string { return []string{TrackSlices, TrackInstants, TrackCounters} }

// Byte-budget bounds. estEventBytes is the approximate rendered JSON size
// of one event; the event buffer is capped at MaxBytes/estEventBytes so
// the exported .trace.json respects the budget.
const (
	defaultMaxBytes = 32 << 20
	minMaxBytes     = 4096
	estEventBytes   = 128
)

// worstK bounds the online worst-dispatch-latency table. It is maintained
// independently of the event buffer, so the top-N view survives event
// drops under tiny byte budgets.
const worstK = 16

// Options configures a Recorder. The zero value records every thread and
// every track group under a 32 MiB export budget.
type Options struct {
	// Classes filters recorded threads by their Group (the workload entry
	// label for scenario primitives, the application's own group for app
	// threads, "kworker" for kernel noise). Empty records every thread.
	Classes []string
	// MaxBytes approximately caps the rendered Perfetto JSON (default
	// 32 MiB, min 4096): the event buffer is sized to the budget and
	// events past it are dropped whole, counted in Summary.DroppedEvents.
	// Accounting and latency histograms are exact regardless of drops.
	MaxBytes int64
	// Tracks selects the exported Perfetto track groups (TrackGroups:
	// slices, instants, counters). Empty selects all. Deselected event
	// tracks are not recorded at all, stretching the byte budget.
	Tracks []string
}

// normalized resolves defaults and validates track names.
func (o Options) normalized() (Options, error) {
	if o.MaxBytes <= 0 {
		o.MaxBytes = defaultMaxBytes
	}
	if o.MaxBytes < minMaxBytes {
		o.MaxBytes = minMaxBytes
	}
	for _, tr := range o.Tracks {
		switch tr {
		case TrackSlices, TrackInstants, TrackCounters:
		default:
			return o, fmt.Errorf("timeline: unknown track group %q (known: slices, instants, counters)", tr)
		}
	}
	return o, nil
}

// track reports whether a track group is selected.
func (o *Options) track(name string) bool {
	if len(o.Tracks) == 0 {
		return true
	}
	for _, tr := range o.Tracks {
		if tr == name {
			return true
		}
	}
	return false
}

// Per-thread model states. The model tracks the last hook-confirmed state;
// reconciliation closes stale intervals when the next hook fires.
const (
	modelNone uint8 = iota
	modelWait
	modelRun
	modelSleep
)

// tstate is one thread's recorder state: the current model state, its
// start, and the accumulated per-state durations.
type tstate struct {
	th    *sim.Thread
	class int32 // index into Recorder.classes; -1 = filtered out
	model uint8
	// fromWake marks the current wait as wakeup-originated: its length is
	// a dispatch latency (preemption re-waits are not). It survives
	// migrations, so the latency is measured from the wakeup instant.
	fromWake bool
	core     int32 // core of the current run slice
	// pendWaitNS/pendFromWake describe the wait that preceded the current
	// run slice; they ride into the slice event when it closes.
	pendWaitNS   int64
	pendFromWake bool
	startNS      int64 // current model state's start
	createdNS    int64
	exitedNS     int64 // -1 while alive
	runNS        int64
	waitNS       int64
	sleepNS      int64
	wakeups      uint64
}

// classAcc aggregates one thread class (Group): latency histogram online,
// time-in-state sums folded in at Close.
type classAcc struct {
	name    string
	threads int
	runNS   int64
	waitNS  int64
	sleepNS int64
	spanNS  int64
	wakeups uint64
	maxNS   int64
	hist    [histBuckets]uint64
}

// Event kinds of the bounded event buffer.
const (
	evSlice uint8 = iota + 1
	evWake
	evMigrate
	evSteal
)

// events is the bounded SoA event buffer. dur/wait are slice-only; other
// is the instant's second core (origin/from/victim; -1 = none).
type events struct {
	kind  []uint8
	tid   []int32
	core  []int32
	other []int32
	t     []int64
	dur   []int64
	wait  []int64
	flag  []uint8 // slice fromWake
}

func (e *events) append(kind uint8, tid, core, other int32, t, dur, wait int64, flag uint8) {
	e.kind = append(e.kind, kind)
	e.tid = append(e.tid, tid)
	e.core = append(e.core, core)
	e.other = append(e.other, other)
	e.t = append(e.t, t)
	e.dur = append(e.dur, dur)
	e.wait = append(e.wait, wait)
	e.flag = append(e.flag, flag)
}

// Recorder is an attached timeline recorder. All methods are single-trial,
// single-goroutine, like the simulation itself. Summary, Classes,
// Accounts, Worst, and AppendPerfetto are valid after Close.
type Recorder struct {
	m        *sim.Machine
	opts     Options
	maxEv    int
	recSlice bool
	recInst  bool

	st       []tstate // indexed by thread ID - 1
	classIdx map[string]int
	classes  []*classAcc
	include  map[string]bool // nil = all classes

	ev      events
	dropped uint64

	hist    [histBuckets]uint64
	maxNS   int64
	worst   [worstK]WakeLatency
	worstN  int
	wakeups uint64
	migs    uint64
	steals  uint64
	slices  uint64

	closed   bool
	closedNS int64
}

// WakeLatency is one entry of the worst-dispatch-latency table: thread
// TID, woken and then kept runnable-waiting for WaitNS, dispatched at
// AtNS.
type WakeLatency struct {
	TID    int   `json:"tid"`
	AtNS   int64 `json:"at_ns"`
	WaitNS int64 `json:"wait_ns"`
}

// Summary is the recorder's aggregate view, embedded in scenario reports.
// Fractions are of the summed per-thread spans (creation/attach to
// exit/close), so run+wait+sleep fractions sum to 1 exactly when any span
// exists.
type Summary struct {
	Threads       int     `json:"threads"`
	Slices        uint64  `json:"slices"`
	Wakeups       uint64  `json:"wakeups"`
	Migrations    uint64  `json:"migrations"`
	Steals        uint64  `json:"steals"`
	DroppedEvents uint64  `json:"dropped_events,omitempty"`
	SpanNS        int64   `json:"span_ns"`
	RunFrac       float64 `json:"run_frac"`
	WaitFrac      float64 `json:"wait_frac"`
	SleepFrac     float64 `json:"sleep_frac"`
	LatencyP50US  float64 `json:"latency_p50_us"`
	LatencyP99US  float64 `json:"latency_p99_us"`
	LatencyMaxUS  float64 `json:"latency_max_us"`
}

// ClassAccount is one thread class's slice of the accounting.
type ClassAccount struct {
	Class        string  `json:"class"`
	Threads      int     `json:"threads"`
	RunFrac      float64 `json:"run_frac"`
	WaitFrac     float64 `json:"wait_frac"`
	SleepFrac    float64 `json:"sleep_frac"`
	Wakeups      uint64  `json:"wakeups"`
	LatencyP99US float64 `json:"latency_p99_us"`
}

// ThreadAccount is one thread's time-in-state accounting. ExitedNS is -1
// for threads still alive at Close; the span [CreatedNS, end) — end being
// ExitedNS or the close instant — equals RunNS+WaitNS+SleepNS exactly.
type ThreadAccount struct {
	ID        int
	Name      string
	Class     string
	CreatedNS int64
	ExitedNS  int64
	RunNS     int64
	WaitNS    int64
	SleepNS   int64
	Wakeups   uint64
}

// Attach hooks a Recorder onto m. Threads already alive are snapshotted
// into the model (a thread running at attach contributes run time from the
// attach instant; a runnable one waits from its last enqueue; dead threads
// are ignored), so mid-run attachment still satisfies the conservation
// invariant over the observed window.
func Attach(m *sim.Machine, opts Options) (*Recorder, error) {
	opts, err := opts.normalized()
	if err != nil {
		return nil, err
	}
	r := &Recorder{
		m:        m,
		opts:     opts,
		maxEv:    int(opts.MaxBytes / estEventBytes),
		recSlice: opts.track(TrackSlices),
		recInst:  opts.track(TrackInstants),
		classIdx: map[string]int{},
	}
	if r.maxEv < 16 {
		r.maxEv = 16
	}
	if len(opts.Classes) > 0 {
		r.include = make(map[string]bool, len(opts.Classes))
		for _, c := range opts.Classes {
			r.include[c] = true
		}
	}

	now := int64(m.Now())
	for _, t := range m.Threads() {
		st := r.ensure(t)
		if st == nil || t.State() == sim.StateDead {
			continue
		}
		switch t.State() {
		case sim.StateRunnable:
			// Wait since the thread last became runnable — exact, and the
			// span start moves back with it so conservation holds.
			st.model = modelWait
			st.startNS = int64(t.LastEnqueuedAt)
			st.createdNS = st.startNS
		case sim.StateRunning:
			st.model = modelRun
			st.startNS = now
			st.createdNS = now
			if c := t.Core(); c != nil {
				st.core = int32(c.ID)
			}
		case sim.StateSleeping, sim.StateBlocked:
			// The sleep's true start is engine-private; account from here.
			st.model = modelSleep
			st.startNS = now
			st.createdNS = now
		}
		// StateNew keeps ensure's initialization: waiting from now.
	}

	m.OnEnqueue(r.onEnqueue)
	m.OnDispatch(r.onDispatch)
	m.OnMigrate(r.onMigrate)
	m.OnSteal(r.onSteal)
	m.OnWake(r.onWake)
	return r, nil
}

// ensure returns t's state slot, creating it on first sight (a fork): the
// thread starts its span now, runnable-waiting. Returns nil for threads
// filtered out by class.
func (r *Recorder) ensure(t *sim.Thread) *tstate {
	id := t.ID
	for len(r.st) < id {
		r.st = append(r.st, tstate{class: -1})
	}
	st := &r.st[id-1]
	if st.th == nil {
		now := int64(r.m.Now())
		*st = tstate{
			th: t, class: -1, model: modelWait,
			startNS: now, createdNS: now, exitedNS: -1,
		}
		if r.include == nil || r.include[t.Group] {
			ci, ok := r.classIdx[t.Group]
			if !ok {
				ci = len(r.classes)
				r.classIdx[t.Group] = ci
				r.classes = append(r.classes, &classAcc{name: t.Group})
			}
			st.class = int32(ci)
			r.classes[ci].threads++
		}
	}
	if st.class < 0 {
		return nil
	}
	return st
}

// lastRanNS reads the engine's leave-CPU stamp, clamped to the current
// state start (a snapshot-attached running thread carries a stale
// pre-attach stamp until it first leaves a CPU).
func (st *tstate) lastRanNS() int64 {
	lr := int64(st.th.LastRanAt)
	if lr < st.startNS {
		lr = st.startNS
	}
	return lr
}

// closeRun closes the current run slice at end, emitting its event.
func (r *Recorder) closeRun(st *tstate, end int64) {
	st.runNS += end - st.startNS
	r.slices++
	if r.recSlice {
		if len(r.ev.kind) < r.maxEv {
			var fw uint8
			if st.pendFromWake {
				fw = 1
			}
			r.ev.append(evSlice, int32(st.th.ID), st.core, -1, st.startNS, end-st.startNS, st.pendWaitNS, fw)
		} else {
			r.dropped++
		}
	}
	st.pendWaitNS, st.pendFromWake = 0, false
}

// instant records a non-slice event.
func (r *Recorder) instant(kind uint8, tid, core, other int32, t int64) {
	if !r.recInst {
		return
	}
	if len(r.ev.kind) >= r.maxEv {
		r.dropped++
		return
	}
	r.ev.append(kind, tid, core, other, t, 0, 0, 0)
}

// onWake fires at wakeup placement, before the enqueue: any stale RUN
// model means the thread slept hook-lessly since LastRanAt — close the run
// slice there and classify the gap as sleep. The new wait is
// wakeup-originated: its eventual length is a dispatch latency.
func (r *Recorder) onWake(target, origin *sim.Core, t *sim.Thread) {
	st := r.ensure(t)
	if st == nil {
		return
	}
	now := int64(r.m.Now())
	switch st.model {
	case modelRun:
		lr := st.lastRanNS()
		r.closeRun(st, lr)
		st.sleepNS += now - lr
	case modelSleep: // snapshot-attached sleeper waking
		st.sleepNS += now - st.startNS
	case modelWait: // defensive: engine wakes only sleepers
		st.waitNS += now - st.startNS
	}
	st.model = modelWait
	st.startNS = now
	st.fromWake = true
	st.wakeups++
	r.wakeups++
	if st.class >= 0 {
		r.classes[st.class].wakeups++
	}
	org := int32(-1)
	if origin != nil {
		org = int32(origin.ID)
	}
	r.instant(evWake, int32(t.ID), int32(target.ID), org, now)
}

// onEnqueue only matters for first sight (fork): ensure initializes the
// thread waiting from now. Wakeup and migration arrivals were already
// reconciled by their own hooks.
func (r *Recorder) onEnqueue(c *sim.Core, t *sim.Thread, flags int) {
	r.ensure(t)
}

// onDispatch closes the thread's wait (observing the dispatch latency when
// the wait began at a wakeup) and opens a run slice. A stale RUN model
// means the thread was preempted hook-lessly at LastRanAt: the slice
// closes there and the gap was runnable-wait.
func (r *Recorder) onDispatch(c *sim.Core, t *sim.Thread) {
	st := r.ensure(t)
	if st == nil {
		return
	}
	now := int64(r.m.Now())
	switch st.model {
	case modelWait:
		wait := now - st.startNS
		st.waitNS += wait
		st.pendWaitNS, st.pendFromWake = wait, st.fromWake
		if st.fromWake {
			r.observeLatency(st, wait, now)
		}
	case modelRun: // preempted at LastRanAt, re-dispatched now
		lr := st.lastRanNS()
		r.closeRun(st, lr)
		st.waitNS += now - lr
		st.pendWaitNS, st.pendFromWake = now-lr, false
	case modelSleep: // defensive: a wake hook precedes any dispatch
		st.sleepNS += now - st.startNS
	}
	st.model = modelRun
	st.startNS = now
	st.fromWake = false
	st.core = int32(c.ID)
}

// onMigrate reconciles a stale RUN model (preempted, then migrated: the
// gap since LastRanAt is wait, and keeps accruing on the new core) and
// marks the move. A wakeup-originated wait keeps its flag and start across
// the migration — dispatch latency is measured from the wakeup instant.
func (r *Recorder) onMigrate(from, to *sim.Core, t *sim.Thread) {
	st := r.ensure(t)
	if st == nil {
		return
	}
	if st.model == modelRun {
		lr := st.lastRanNS()
		r.closeRun(st, lr)
		st.model = modelWait
		st.startNS = lr
		st.fromWake = false
	}
	r.migs++
	r.instant(evMigrate, int32(t.ID), int32(to.ID), int32(from.ID), int64(r.m.Now()))
}

// onSteal marks an idle steal; the accompanying Migrate hook does the
// state reconciliation.
func (r *Recorder) onSteal(c, victim *sim.Core, t *sim.Thread) {
	st := r.ensure(t)
	if st == nil {
		return
	}
	r.steals++
	r.instant(evSteal, int32(t.ID), int32(c.ID), int32(victim.ID), int64(r.m.Now()))
}

// observeLatency records one wakeup→dispatch latency into the global and
// per-class histograms and the online worst-K table.
func (r *Recorder) observeLatency(st *tstate, waitNS, atNS int64) {
	idx := histIndex(waitNS)
	r.hist[idx]++
	if waitNS > r.maxNS {
		r.maxNS = waitNS
	}
	if st.class >= 0 {
		ca := r.classes[st.class]
		ca.hist[idx]++
		if waitNS > ca.maxNS {
			ca.maxNS = waitNS
		}
	}
	// Insertion into the fixed worst-K table, ordered by (wait desc,
	// at asc, tid asc) so the view is deterministic under ties.
	if r.worstN == worstK && waitNS <= r.worst[worstK-1].WaitNS {
		return
	}
	e := WakeLatency{TID: st.th.ID, AtNS: atNS, WaitNS: waitNS}
	i := r.worstN
	if i == worstK {
		i--
	}
	for i > 0 {
		p := r.worst[i-1]
		if p.WaitNS > e.WaitNS || (p.WaitNS == e.WaitNS && (p.AtNS < e.AtNS || (p.AtNS == e.AtNS && p.TID <= e.TID))) {
			break
		}
		r.worst[i] = p
		i--
	}
	r.worst[i] = e
	if r.worstN < worstK {
		r.worstN++
	}
}

// Close finalizes the accounting at the machine's current instant: every
// open state is closed, stale RUN models classified via Thread.State()
// (Runnable = preempted and still waiting; Sleeping/Blocked = slept at
// LastRanAt; Dead = exited at LastRanAt, the span ending there). Close is
// idempotent; the recorder keeps observing nothing afterwards only by
// convention (trials stop running the machine).
func (r *Recorder) Close() {
	if r.closed {
		return
	}
	r.closed = true
	now := int64(r.m.Now())
	r.closedNS = now
	for i := range r.st {
		st := &r.st[i]
		if st.th == nil || st.class < 0 {
			continue
		}
		switch st.model {
		case modelWait:
			st.waitNS += now - st.startNS
		case modelSleep:
			st.sleepNS += now - st.startNS
		case modelRun:
			switch st.th.State() {
			case sim.StateRunning:
				r.closeRun(st, now)
			case sim.StateRunnable:
				lr := st.lastRanNS()
				r.closeRun(st, lr)
				st.waitNS += now - lr
			case sim.StateSleeping, sim.StateBlocked:
				lr := st.lastRanNS()
				r.closeRun(st, lr)
				st.sleepNS += now - lr
			case sim.StateDead:
				lr := st.lastRanNS()
				r.closeRun(st, lr)
				st.exitedNS = lr
			}
		}
		st.model = modelNone
		end := now
		if st.exitedNS >= 0 {
			end = st.exitedNS
		}
		ca := r.classes[st.class]
		ca.runNS += st.runNS
		ca.waitNS += st.waitNS
		ca.sleepNS += st.sleepNS
		ca.spanNS += end - st.createdNS
	}
}

// Summary aggregates the accounting; valid after Close.
func (r *Recorder) Summary() Summary {
	s := Summary{
		Slices: r.slices, Wakeups: r.wakeups, Migrations: r.migs,
		Steals: r.steals, DroppedEvents: r.dropped,
	}
	var runNS, waitNS, sleepNS int64
	for _, ca := range r.classes {
		s.Threads += ca.threads
		runNS += ca.runNS
		waitNS += ca.waitNS
		sleepNS += ca.sleepNS
		s.SpanNS += ca.spanNS
	}
	if s.SpanNS > 0 {
		s.RunFrac = float64(runNS) / float64(s.SpanNS)
		s.WaitFrac = float64(waitNS) / float64(s.SpanNS)
		s.SleepFrac = float64(sleepNS) / float64(s.SpanNS)
	}
	s.LatencyP50US = float64(histQuantile(&r.hist, 0.50)) / 1e3
	s.LatencyP99US = float64(histQuantile(&r.hist, 0.99)) / 1e3
	s.LatencyMaxUS = float64(r.maxNS) / 1e3
	return s
}

// Classes returns the per-class accounting in first-seen order (workload
// install order, deterministic); valid after Close.
func (r *Recorder) Classes() []ClassAccount {
	out := make([]ClassAccount, 0, len(r.classes))
	for _, ca := range r.classes {
		a := ClassAccount{
			Class: ca.name, Threads: ca.threads, Wakeups: ca.wakeups,
			LatencyP99US: float64(histQuantile(&ca.hist, 0.99)) / 1e3,
		}
		if ca.spanNS > 0 {
			a.RunFrac = float64(ca.runNS) / float64(ca.spanNS)
			a.WaitFrac = float64(ca.waitNS) / float64(ca.spanNS)
			a.SleepFrac = float64(ca.sleepNS) / float64(ca.spanNS)
		}
		out = append(out, a)
	}
	return out
}

// Accounts returns every recorded thread's accounting in thread-ID order;
// valid after Close.
func (r *Recorder) Accounts() []ThreadAccount {
	var out []ThreadAccount
	for i := range r.st {
		st := &r.st[i]
		if st.th == nil || st.class < 0 {
			continue
		}
		out = append(out, ThreadAccount{
			ID: st.th.ID, Name: st.th.Name, Class: st.th.Group,
			CreatedNS: st.createdNS, ExitedNS: st.exitedNS,
			RunNS: st.runNS, WaitNS: st.waitNS, SleepNS: st.sleepNS,
			Wakeups: st.wakeups,
		})
	}
	return out
}

// Worst returns the worst observed wakeup→dispatch latencies, worst first
// (at most 16, deterministic tie order). Valid any time; complete after
// Close. The table is maintained outside the event buffer, so it is exact
// even when events were dropped.
func (r *Recorder) Worst() []WakeLatency {
	return append([]WakeLatency(nil), r.worst[:r.worstN]...)
}

// The latency histogram: 8 linear sub-buckets per power of two of
// nanoseconds — hdr-style, ≤12.5% value error, fixed 4 KiB footprint.
const histBuckets = 512

// histIndex buckets a nanosecond value.
func histIndex(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	v := uint64(ns)
	if v < 8 {
		return int(v)
	}
	msb := bits.Len64(v) - 1
	sub := int((v >> (uint(msb) - 3)) & 7)
	idx := (msb-2)*8 + sub
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// histValue is a bucket's representative (upper-bound) nanosecond value.
func histValue(idx int) int64 {
	if idx < 8 {
		return int64(idx)
	}
	msb := idx/8 + 2
	sub := idx % 8
	return int64(8+sub+1) << uint(msb-3)
}

// histQuantile reads quantile q (in [0,1]) off a histogram, in
// nanoseconds; 0 when empty.
func histQuantile(h *[histBuckets]uint64, q float64) int64 {
	var total uint64
	for _, c := range h {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i, c := range h {
		cum += c
		if cum >= rank {
			return histValue(i)
		}
	}
	return histValue(histBuckets - 1)
}
