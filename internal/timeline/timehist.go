package timeline

// The terminal timehist renderer, in the spirit of `perf sched timehist`:
// one row per running slice with the wait that preceded it, plus a top-N
// table of the worst wakeup→dispatch latencies. It renders from a decoded
// trace-event document — the same bytes `-timeline` exports — so the CLI
// needs no access to the live recorder.

import (
	"fmt"
	"io"
	"sort"
)

// timehistRow is one rendered slice.
type timehistRow struct {
	endUS    float64
	tsUS     float64
	durUS    float64
	waitUS   float64
	cpu      int
	name     string
	fromWake bool
}

// rows extracts the slice events in end-time order (ties by cpu, then
// start, then name — all deterministic).
func (tr *Trace) rows() []timehistRow {
	var rows []timehistRow
	for i := range tr.Events {
		e := &tr.Events[i]
		if e.Ph != "X" {
			continue
		}
		row := timehistRow{
			endUS: e.TsUS + e.DurUS, tsUS: e.TsUS, durUS: e.DurUS,
			cpu: e.Tid, name: e.Name,
		}
		if v, ok := e.Args["wait_us"].(float64); ok {
			row.waitUS = v
		}
		if v, ok := e.Args["from_wake"].(bool); ok {
			row.fromWake = v
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(a, b int) bool {
		ra, rb := &rows[a], &rows[b]
		if ra.endUS != rb.endUS {
			return ra.endUS < rb.endUS
		}
		if ra.cpu != rb.cpu {
			return ra.cpu < rb.cpu
		}
		if ra.tsUS != rb.tsUS {
			return ra.tsUS < rb.tsUS
		}
		return ra.name < rb.name
	})
	return rows
}

// Timehist renders the trace as a perf-sched-timehist-style table: the
// first maxRows slices chronologically (0 = all), then the topN worst
// wakeup dispatch latencies. Slice rows show the time the slice ended, the
// cpu it ran on, the wait that preceded it (blank when the slice resumed a
// preempted thread rather than serviced a wakeup), and the run length.
func (tr *Trace) Timehist(w io.Writer, maxRows, topN int) error {
	rows := tr.rows()
	if _, err := fmt.Fprintf(w, "%12s  %4s  %-28s %12s %12s\n",
		"time(ms)", "cpu", "task", "wait(us)", "run(us)"); err != nil {
		return err
	}
	shown := len(rows)
	if maxRows > 0 && shown > maxRows {
		shown = maxRows
	}
	for _, row := range rows[:shown] {
		wait := ""
		if row.fromWake {
			wait = fmt.Sprintf("%.3f", row.waitUS)
		}
		if _, err := fmt.Fprintf(w, "%12.3f  %4d  %-28s %12s %12.3f\n",
			row.endUS/1e3, row.cpu, row.name, wait, row.durUS); err != nil {
			return err
		}
	}
	if rest := len(rows) - shown; rest > 0 {
		if _, err := fmt.Fprintf(w, "  ... (%d more slices)\n", rest); err != nil {
			return err
		}
	}

	worst := make([]timehistRow, 0, len(rows))
	for _, row := range rows {
		if row.fromWake {
			worst = append(worst, row)
		}
	}
	sort.Slice(worst, func(a, b int) bool {
		ra, rb := &worst[a], &worst[b]
		if ra.waitUS != rb.waitUS {
			return ra.waitUS > rb.waitUS
		}
		if ra.tsUS != rb.tsUS {
			return ra.tsUS < rb.tsUS
		}
		return ra.name < rb.name
	})
	if topN > 0 && len(worst) > topN {
		worst = worst[:topN]
	}
	if len(worst) == 0 {
		_, err := fmt.Fprintln(w, "\nno wakeup dispatches recorded")
		return err
	}
	if _, err := fmt.Fprintf(w, "\nworst wakeup dispatch latencies:\n%12s  %12s  %4s  %s\n",
		"wait(us)", "time(ms)", "cpu", "task"); err != nil {
		return err
	}
	for _, row := range worst {
		if _, err := fmt.Fprintf(w, "%12.3f  %12.3f  %4d  %s\n",
			row.waitUS, row.tsUS/1e3, row.cpu, row.name); err != nil {
			return err
		}
	}
	return nil
}
