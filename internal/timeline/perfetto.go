package timeline

// Chrome trace-event / Perfetto JSON export of a recorded timeline, plus
// the decoder/validator its consumers (the -timehist renderer, the golden
// shape test, CI smoke) share. The rendering is a pure function of the
// recorder's deterministic state, so exported files are byte-identical at
// any -jobs width and across event engines.
//
// Mapping (loadable at ui.perfetto.dev):
//   - one process (pid 0) named after the machine, one named thread track
//     per core ("cpu0".."cpuN", sorted by core id);
//   - "X" complete events on a core's track for every running slice, the
//     thread name + id as the event name, args carrying tid, the wait that
//     preceded the slice, and whether it began at a wakeup;
//   - "i" instant events for wakeups (on the target core's track),
//     migrations (destination track, args.from), steals (stealer track,
//     args.victim);
//   - "C" counter events replaying probe series handed in by the caller.

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// SchemaName identifies the export in otherData.schema.
const SchemaName = "schedbattle/timeline/v1"

// CounterTrack is one counter series for the export: [t_us, value] points
// in time order (exactly the scenario report's series shape).
type CounterTrack struct {
	Name   string
	Points [][2]float64
}

// AppendPerfetto renders the timeline as trace-event JSON appended to buf.
// counters are emitted only when the "counters" track group is selected;
// pass nil when none apply. Valid after Close.
func (r *Recorder) AppendPerfetto(buf []byte, counters []CounterTrack) []byte {
	b := buf
	b = append(b, `{"displayTimeUnit":"ms","otherData":{"schema":"`+SchemaName+`"},"traceEvents":[`...)
	first := true
	sep := func() {
		if !first {
			b = append(b, ',', '\n')
		} else {
			b = append(b, '\n')
		}
		first = false
	}

	sep()
	b = append(b, `{"ph":"M","pid":0,"name":"process_name","args":{"name":"schedbattle"}}`...)
	nCores := len(r.m.Cores)
	for c := 0; c < nCores; c++ {
		sep()
		b = append(b, `{"ph":"M","pid":0,"tid":`...)
		b = strconv.AppendInt(b, int64(c), 10)
		b = append(b, `,"name":"thread_name","args":{"name":"cpu`...)
		b = strconv.AppendInt(b, int64(c), 10)
		b = append(b, `"}}`...)
		sep()
		b = append(b, `{"ph":"M","pid":0,"tid":`...)
		b = strconv.AppendInt(b, int64(c), 10)
		b = append(b, `,"name":"thread_sort_index","args":{"sort_index":`...)
		b = strconv.AppendInt(b, int64(c), 10)
		b = append(b, `}}`...)
	}

	us := func(ns int64) []byte {
		return strconv.AppendFloat(nil, float64(ns)/1e3, 'g', -1, 64)
	}
	for i := range r.ev.kind {
		sep()
		tid := r.ev.tid[i]
		name := ""
		if tid >= 1 && int(tid) <= len(r.st) && r.st[tid-1].th != nil {
			name = r.st[tid-1].th.Name
		}
		switch r.ev.kind[i] {
		case evSlice:
			b = append(b, `{"ph":"X","pid":0,"tid":`...)
			b = strconv.AppendInt(b, int64(r.ev.core[i]), 10)
			b = append(b, `,"ts":`...)
			b = append(b, us(r.ev.t[i])...)
			b = append(b, `,"dur":`...)
			b = append(b, us(r.ev.dur[i])...)
			b = append(b, `,"name":`...)
			b = appendJSONString(b, fmt.Sprintf("%s T%d", name, tid))
			b = append(b, `,"args":{"tid":`...)
			b = strconv.AppendInt(b, int64(tid), 10)
			b = append(b, `,"wait_us":`...)
			b = append(b, us(r.ev.wait[i])...)
			b = append(b, `,"from_wake":`...)
			b = strconv.AppendBool(b, r.ev.flag[i] != 0)
			b = append(b, `}}`...)
		case evWake, evMigrate, evSteal:
			kind, otherKey := "wake", "origin"
			switch r.ev.kind[i] {
			case evMigrate:
				kind, otherKey = "migrate", "from"
			case evSteal:
				kind, otherKey = "steal", "victim"
			}
			b = append(b, `{"ph":"i","s":"t","pid":0,"tid":`...)
			b = strconv.AppendInt(b, int64(r.ev.core[i]), 10)
			b = append(b, `,"ts":`...)
			b = append(b, us(r.ev.t[i])...)
			b = append(b, `,"name":"`...)
			b = append(b, kind...)
			b = append(b, `","args":{"tid":`...)
			b = strconv.AppendInt(b, int64(tid), 10)
			b = append(b, `,"`...)
			b = append(b, otherKey...)
			b = append(b, `":`...)
			b = strconv.AppendInt(b, int64(r.ev.other[i]), 10)
			b = append(b, `}}`...)
		}
	}

	if r.opts.track(TrackCounters) {
		g := func(v float64) []byte { return strconv.AppendFloat(nil, v, 'g', -1, 64) }
		for _, ct := range counters {
			for _, p := range ct.Points {
				sep()
				b = append(b, `{"ph":"C","pid":0,"ts":`...)
				b = append(b, g(p[0])...)
				b = append(b, `,"name":`...)
				b = appendJSONString(b, ct.Name)
				b = append(b, `,"args":{"value":`...)
				b = append(b, g(p[1])...)
				b = append(b, `}}`...)
			}
		}
	}
	b = append(b, "\n]}\n"...)
	return b
}

// appendJSONString appends s as a JSON string literal. ASCII control
// characters, quotes, and backslashes are escaped; everything else passes
// through byte-for-byte (names are UTF-8 already).
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c < 0x20:
			b = append(b, fmt.Sprintf(`\u%04x`, c)...)
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}

// TraceEvent is one decoded trace event.
type TraceEvent struct {
	Ph    string         `json:"ph"`
	Name  string         `json:"name"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	TsUS  float64        `json:"ts"`
	DurUS float64        `json:"dur"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// Trace is a decoded trace-event document.
type Trace struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	OtherData       struct {
		Schema string `json:"schema"`
	} `json:"otherData"`
	Events []TraceEvent `json:"traceEvents"`
}

// DecodeTrace parses and shape-checks a trace-event JSON document: the
// envelope must carry traceEvents, and every event must have a known phase
// with sane timestamps — the contract ui.perfetto.dev's legacy JSON
// importer needs. This is the validator CI's timeline smoke and the golden
// test run exports through.
func DecodeTrace(data []byte) (*Trace, error) {
	var tr Trace
	if err := json.Unmarshal(data, &tr); err != nil {
		return nil, fmt.Errorf("timeline: decoding trace JSON: %w", err)
	}
	if tr.Events == nil {
		return nil, fmt.Errorf("timeline: trace has no traceEvents array")
	}
	for i := range tr.Events {
		e := &tr.Events[i]
		switch e.Ph {
		case "M":
			if e.Name == "" {
				return nil, fmt.Errorf("timeline: event %d: metadata event without a name", i)
			}
		case "X":
			if e.Name == "" {
				return nil, fmt.Errorf("timeline: event %d: complete event without a name", i)
			}
			if e.TsUS < 0 || e.DurUS < 0 {
				return nil, fmt.Errorf("timeline: event %d: negative ts/dur", i)
			}
		case "i", "C":
			if e.TsUS < 0 {
				return nil, fmt.Errorf("timeline: event %d: negative ts", i)
			}
		default:
			return nil, fmt.Errorf("timeline: event %d: unknown phase %q", i, e.Ph)
		}
	}
	return &tr, nil
}
