package timeline

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/topo"
)

// benchMachine builds the standard overhead fixture: topo.Small(), FIFO,
// 12 run/sleep threads, warmed 250ms so steady state is reached before
// measurement (same shape as dtrace's benchTrace).
func benchMachine(attach bool) (*sim.Machine, *Recorder) {
	m := sim.NewMachine(topo.Small(), sim.NewFIFO(), sim.Options{Seed: 9})
	var r *Recorder
	if attach {
		var err error
		if r, err = Attach(m, Options{}); err != nil {
			panic(err)
		}
	}
	for i := 0; i < 12; i++ {
		m.StartThread("w", "app", 0, &runSleeper{run: 700 * time.Microsecond, sleep: 400 * time.Microsecond})
	}
	m.Run(250 * time.Millisecond)
	return m, r
}

// BenchmarkTimelineOverhead measures the engine with and without a
// timeline recorder attached; the off/on delta is the flight recorder's
// cost and feeds the pr9 BENCH_engine.json entry.
func BenchmarkTimelineOverhead(b *testing.B) {
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			m, _ := benchMachine(mode == "on")
			start := m.EventsProcessed()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Run(m.Now() + 5*time.Millisecond)
			}
			b.StopTimer()
			if b.N > 0 {
				b.ReportMetric(float64(m.EventsProcessed()-start)/float64(b.N), "events/op")
			}
		})
	}
}

// TestZeroTimelineAllocFree is the CI alloc gate: with no recorder
// attached the hook fast path must not allocate at all.
func TestZeroTimelineAllocFree(t *testing.T) {
	m, _ := benchMachine(false)
	allocs := testing.AllocsPerRun(20, func() {
		m.Run(m.Now() + 5*time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("zero-timeline run allocated %.1f allocs/op, want 0", allocs)
	}
}
