package timeline_test

// The ISSUE's property test: for EVERY bundled scenario, attach a
// timeline recorder to each compiled trial's machine and assert the core
// conservation invariant — per-thread run + wait + sleep time sums
// exactly to the thread's observed span (created/attach → exit/close).
// The trials run here exactly as the scenario engine would run them
// (same machine construction, same workload closures), just with the
// recorder attached directly so the per-thread accounts are inspectable.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/timeline"
)

func TestConservationAllBundledScenarios(t *testing.T) {
	specs, err := scenario.Builtin()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) == 0 {
		t.Fatal("no bundled scenarios")
	}
	for _, sp := range specs {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			trials, err := sp.Compile(0.05)
			if err != nil {
				t.Fatal(err)
			}
			for _, trial := range trials {
				m := core.NewMachine(trial.Machine)
				trial.Workload(m)
				r, err := timeline.Attach(m, timeline.Options{})
				if err != nil {
					t.Fatal(err)
				}
				m.Run(trial.Window)
				r.Close()
				now := int64(m.Now())
				accs := r.Accounts()
				if len(accs) == 0 {
					t.Fatalf("%s: no threads recorded", trial.Name)
				}
				var runNS, spanNS int64
				for _, a := range accs {
					end := now
					if a.ExitedNS >= 0 {
						end = a.ExitedNS
					}
					span := end - a.CreatedNS
					if sum := a.RunNS + a.WaitNS + a.SleepNS; sum != span {
						t.Errorf("%s: thread %d (%s): run %d + wait %d + sleep %d = %d != span %d",
							trial.Name, a.ID, a.Name, a.RunNS, a.WaitNS, a.SleepNS, sum, span)
					}
					if a.RunNS < 0 || a.WaitNS < 0 || a.SleepNS < 0 {
						t.Errorf("%s: thread %d: negative state time: %+v", trial.Name, a.ID, a)
					}
					runNS += a.RunNS
					spanNS += span
				}
				if runNS == 0 || spanNS == 0 {
					t.Errorf("%s: nothing ran (run %dns over span %dns)", trial.Name, runNS, spanNS)
				}
			}
		})
	}
}
