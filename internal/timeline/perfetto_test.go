package timeline

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/topo"
)

// record runs a tiny deterministic fixture and returns the recorder plus
// its exported trace bytes.
func record(t *testing.T, counters []CounterTrack) (*Recorder, []byte) {
	t.Helper()
	m := sim.NewMachine(topo.SingleCore(), sim.NewFIFO(), sim.Options{Seed: 11})
	r, err := Attach(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m.StartThread("a", "app", 0, &runSleeper{run: 500 * time.Microsecond, sleep: 300 * time.Microsecond})
	m.StartThread("b", "app", 0, &runSleeper{run: 200 * time.Microsecond, sleep: 600 * time.Microsecond})
	m.Run(5 * time.Millisecond)
	r.Close()
	return r, r.AppendPerfetto(nil, counters)
}

// TestPerfettoGoldenShape is the golden test the acceptance criteria ask
// for: the export must be valid trace-event JSON with the envelope,
// metadata, slices, and instants Perfetto's legacy importer understands.
func TestPerfettoGoldenShape(t *testing.T) {
	counters := []CounterTrack{{Name: "runq.core0", Points: [][2]float64{{0, 0}, {1000, 2}, {2000, 1}}}}
	r, data := record(t, counters)

	if !json.Valid(data) {
		t.Fatalf("export is not valid JSON:\n%s", data)
	}
	tr, err := DecodeTrace(data)
	if err != nil {
		t.Fatalf("DecodeTrace rejected own export: %v", err)
	}
	if tr.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", tr.DisplayTimeUnit)
	}
	if tr.OtherData.Schema != SchemaName {
		t.Fatalf("schema = %q, want %q", tr.OtherData.Schema, SchemaName)
	}

	var metas, slices, instants, cnts int
	var procNamed, cpuNamed bool
	for _, e := range tr.Events {
		switch e.Ph {
		case "M":
			metas++
			if e.Name == "process_name" {
				procNamed = true
			}
			if e.Name == "thread_name" {
				if n, _ := e.Args["name"].(string); n == "cpu0" {
					cpuNamed = true
				}
			}
		case "X":
			slices++
			if !strings.Contains(e.Name, " T") {
				t.Fatalf("slice name %q missing thread id suffix", e.Name)
			}
			if _, ok := e.Args["tid"].(float64); !ok {
				t.Fatalf("slice args missing tid: %+v", e.Args)
			}
			if _, ok := e.Args["wait_us"].(float64); !ok {
				t.Fatalf("slice args missing wait_us: %+v", e.Args)
			}
		case "i":
			instants++
			if e.Scope != "t" {
				t.Fatalf("instant scope = %q, want t", e.Scope)
			}
			if e.Name != "wake" && e.Name != "migrate" && e.Name != "steal" {
				t.Fatalf("unexpected instant name %q", e.Name)
			}
		case "C":
			cnts++
			if e.Name != "runq.core0" {
				t.Fatalf("counter name = %q", e.Name)
			}
			if _, ok := e.Args["value"].(float64); !ok {
				t.Fatalf("counter args missing value: %+v", e.Args)
			}
		}
	}
	if !procNamed || !cpuNamed {
		t.Fatalf("missing metadata: process_name=%v cpu0=%v", procNamed, cpuNamed)
	}
	if slices == 0 || instants == 0 {
		t.Fatalf("export has %d slices, %d instants — want both > 0", slices, instants)
	}
	if cnts != 3 {
		t.Fatalf("counter events = %d, want 3", cnts)
	}
	if got := uint64(slices); got != r.Summary().Slices {
		t.Fatalf("exported %d slices, recorder counted %d", got, r.Summary().Slices)
	}
}

// TestPerfettoDeterministic: same fixture twice → byte-identical export.
func TestPerfettoDeterministic(t *testing.T) {
	_, a := record(t, nil)
	_, b := record(t, nil)
	if !bytes.Equal(a, b) {
		t.Fatal("identical runs produced different trace bytes")
	}
}

func TestDecodeTraceRejectsBadShapes(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"not json", `{`, "decoding trace JSON"},
		{"no events", `{"displayTimeUnit":"ms"}`, "no traceEvents"},
		{"unknown phase", `{"traceEvents":[{"ph":"Z","ts":1}]}`, `unknown phase "Z"`},
		{"nameless slice", `{"traceEvents":[{"ph":"X","ts":1,"dur":1}]}`, "without a name"},
		{"negative ts", `{"traceEvents":[{"ph":"X","name":"x","ts":-1,"dur":1}]}`, "negative ts"},
		{"negative instant", `{"traceEvents":[{"ph":"i","name":"wake","ts":-5}]}`, "negative ts"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeTrace([]byte(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
	if _, err := DecodeTrace([]byte(`{"traceEvents":[]}`)); err != nil {
		t.Fatalf("empty traceEvents must be accepted: %v", err)
	}
}

func TestTimehistRender(t *testing.T) {
	_, data := record(t, nil)
	tr, err := DecodeTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Timehist(&buf, 10, 5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"time(ms)", "cpu", "task", "wait(us)", "run(us)",
		"worst wakeup dispatch latencies:", "more slices"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timehist output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 5 {
		t.Fatalf("suspiciously short output:\n%s", out)
	}

	// maxRows=0 renders everything; the truncation marker must vanish.
	buf.Reset()
	if err := tr.Timehist(&buf, 0, 3); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "more slices") {
		t.Fatal("maxRows=0 must not truncate")
	}

	// A trace without slices renders the empty-latency message.
	empty := &Trace{Events: []TraceEvent{{Ph: "M", Name: "process_name"}}}
	buf.Reset()
	if err := empty.Timehist(&buf, 0, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no wakeup dispatches recorded") {
		t.Fatalf("empty trace output:\n%s", buf.String())
	}
}

func TestAppendJSONStringEscapes(t *testing.T) {
	got := string(appendJSONString(nil, "a\"b\\c\nd"))
	want := `"a\"b\\c\u000ad"`
	if got != want {
		t.Fatalf("appendJSONString = %s, want %s", got, want)
	}
	var s string
	if err := json.Unmarshal([]byte(got), &s); err != nil || s != "a\"b\\c\nd" {
		t.Fatalf("round-trip failed: %q, %v", s, err)
	}
}
