package timeline

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/topo"
)

// runSleeper alternates CPU bursts and timed sleeps forever — enough to
// exercise dispatches, wakes, steals, and migrations on FIFO.
type runSleeper struct {
	run, sleep time.Duration
	sleeping   bool
}

func (p *runSleeper) Next(ctx *sim.Ctx) sim.Op {
	p.sleeping = !p.sleeping
	if p.sleeping {
		return sim.Run(p.run)
	}
	return sim.Sleep(p.sleep)
}

// spinner burns CPU forever.
type spinner struct{}

func (spinner) Next(ctx *sim.Ctx) sim.Op { return sim.Run(time.Millisecond) }

// checkConservation asserts the recorder's core invariant on every
// recorded thread: run+wait+sleep == span, exactly.
func checkConservation(t *testing.T, r *Recorder, closeNS int64) {
	t.Helper()
	accs := r.Accounts()
	if len(accs) == 0 {
		t.Fatal("no recorded threads")
	}
	for _, a := range accs {
		end := closeNS
		if a.ExitedNS >= 0 {
			end = a.ExitedNS
		}
		span := end - a.CreatedNS
		sum := a.RunNS + a.WaitNS + a.SleepNS
		if sum != span {
			t.Errorf("thread %d (%s): run %d + wait %d + sleep %d = %d, want span %d",
				a.ID, a.Name, a.RunNS, a.WaitNS, a.SleepNS, sum, span)
		}
		if a.RunNS < 0 || a.WaitNS < 0 || a.SleepNS < 0 {
			t.Errorf("thread %d: negative state time: %+v", a.ID, a)
		}
	}
}

func TestConservationRunSleepers(t *testing.T) {
	m := sim.NewMachine(topo.Small(), sim.NewFIFO(), sim.Options{Seed: 11})
	r, err := Attach(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		m.StartThread("w", "app", 0, &runSleeper{run: 700 * time.Microsecond, sleep: 400 * time.Microsecond})
	}
	m.Run(50 * time.Millisecond)
	r.Close()
	checkConservation(t, r, int64(m.Now()))

	sum := r.Summary()
	if sum.Threads != 12 {
		t.Fatalf("threads = %d, want 12", sum.Threads)
	}
	if sum.Wakeups == 0 || sum.Slices == 0 {
		t.Fatalf("no activity recorded: %+v", sum)
	}
	if f := sum.RunFrac + sum.WaitFrac + sum.SleepFrac; f < 0.999999 || f > 1.000001 {
		t.Fatalf("fractions sum to %g, want 1", f)
	}
}

// TestConservationMidRunAttach: attaching to a machine already running —
// threads runnable, running, and sleeping at the attach instant — still
// satisfies the invariant over the observed window.
func TestConservationMidRunAttach(t *testing.T) {
	m := sim.NewMachine(topo.Small(), sim.NewFIFO(), sim.Options{Seed: 7})
	for i := 0; i < 10; i++ {
		m.StartThread("w", "app", 0, &runSleeper{run: 900 * time.Microsecond, sleep: 300 * time.Microsecond})
	}
	m.Run(25 * time.Millisecond)
	r, err := Attach(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(50 * time.Millisecond)
	r.Close()
	checkConservation(t, r, int64(m.Now()))
	if got := r.Summary().Threads; got != 10 {
		t.Fatalf("threads = %d, want 10", got)
	}
}

// TestWakeLatencyObserved: a sleeper competing with pinned spinners on a
// single core must see positive dispatch latency, recorded in the
// histogram and the worst-K table.
func TestWakeLatencyObserved(t *testing.T) {
	m := sim.NewMachine(topo.SingleCore(), sim.NewFIFO(), sim.Options{Seed: 3})
	r, err := Attach(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m.StartThread("hog", "batch", 0, spinner{})
	m.StartThread("sleeper", "lat", 0, &runSleeper{run: 100 * time.Microsecond, sleep: 500 * time.Microsecond})
	m.Run(30 * time.Millisecond)
	r.Close()
	checkConservation(t, r, int64(m.Now()))

	sum := r.Summary()
	if sum.Wakeups == 0 {
		t.Fatal("no wakeups observed")
	}
	if sum.LatencyP99US <= 0 {
		t.Fatalf("p99 latency = %g, want > 0 (sleeper must queue behind the hog)", sum.LatencyP99US)
	}
	if sum.LatencyMaxUS < sum.LatencyP99US/2 {
		t.Fatalf("max %g inconsistent with p99 %g", sum.LatencyMaxUS, sum.LatencyP99US)
	}
	worst := r.Worst()
	if len(worst) == 0 {
		t.Fatal("worst-K table empty")
	}
	for i := 1; i < len(worst); i++ {
		if worst[i].WaitNS > worst[i-1].WaitNS {
			t.Fatalf("worst table out of order at %d: %+v", i, worst)
		}
	}
	if worst[0].WaitNS != int64(sum.LatencyMaxUS*1e3) {
		t.Fatalf("worst[0] %d ns != max %g us", worst[0].WaitNS, sum.LatencyMaxUS)
	}
}

func TestClassFilterAndAccounts(t *testing.T) {
	m := sim.NewMachine(topo.Small(), sim.NewFIFO(), sim.Options{Seed: 5})
	r, err := Attach(m, Options{Classes: []string{"keep"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		m.StartThread("k", "keep", 0, &runSleeper{run: 500 * time.Microsecond, sleep: 200 * time.Microsecond})
		m.StartThread("d", "drop", 0, &runSleeper{run: 500 * time.Microsecond, sleep: 200 * time.Microsecond})
	}
	m.Run(20 * time.Millisecond)
	r.Close()

	sum := r.Summary()
	if sum.Threads != 3 {
		t.Fatalf("threads = %d, want 3 (filtered)", sum.Threads)
	}
	classes := r.Classes()
	if len(classes) != 1 || classes[0].Class != "keep" || classes[0].Threads != 3 {
		t.Fatalf("classes = %+v, want one 'keep' class with 3 threads", classes)
	}
	for _, a := range r.Accounts() {
		if a.Class != "keep" {
			t.Fatalf("account for filtered class: %+v", a)
		}
	}
	checkConservation(t, r, int64(m.Now()))
}

func TestEventDropBoundedByBudget(t *testing.T) {
	m := sim.NewMachine(topo.Small(), sim.NewFIFO(), sim.Options{Seed: 9})
	r, err := Attach(m, Options{MaxBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		m.StartThread("w", "app", 0, &runSleeper{run: 300 * time.Microsecond, sleep: 100 * time.Microsecond})
	}
	m.Run(100 * time.Millisecond)
	r.Close()

	sum := r.Summary()
	if sum.DroppedEvents == 0 {
		t.Fatal("tiny budget did not drop events")
	}
	if got, max := len(r.ev.kind), 4096/estEventBytes; got > max {
		t.Fatalf("buffered %d events, budget allows %d", got, max)
	}
	// Accounting and the worst table must be exact despite drops.
	checkConservation(t, r, int64(m.Now()))
	if sum.Wakeups == 0 || len(r.Worst()) == 0 {
		t.Fatal("histogram/worst table must survive event drops")
	}
}

func TestTrackSelection(t *testing.T) {
	if _, err := Attach(sim.NewMachine(topo.SingleCore(), sim.NewFIFO(), sim.Options{}), Options{Tracks: []string{"slics"}}); err == nil {
		t.Fatal("unknown track group accepted")
	} else if !strings.Contains(err.Error(), "slics") {
		t.Fatalf("error %q does not name the bad group", err)
	}

	m := sim.NewMachine(topo.Small(), sim.NewFIFO(), sim.Options{Seed: 9})
	r, err := Attach(m, Options{Tracks: []string{TrackInstants}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		m.StartThread("w", "app", 0, &runSleeper{run: 700 * time.Microsecond, sleep: 400 * time.Microsecond})
	}
	m.Run(20 * time.Millisecond)
	r.Close()
	for i, k := range r.ev.kind {
		if k == evSlice {
			t.Fatalf("event %d is a slice despite instants-only selection", i)
		}
	}
	if len(r.ev.kind) == 0 {
		t.Fatal("no instants recorded")
	}
	// Slices are still accounted even when their events are not exported.
	if r.Summary().Slices == 0 {
		t.Fatal("slice accounting must not depend on track selection")
	}
	checkConservation(t, r, int64(m.Now()))
}

// TestExitedThreadSpan: finite threads' spans end at their exit, and the
// invariant holds over [created, exited].
func TestExitedThreadSpan(t *testing.T) {
	m := sim.NewMachine(topo.Small(), sim.NewFIFO(), sim.Options{Seed: 13})
	r, err := Attach(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m.StartThread("f", "job", 0, &finiteProg{n: 5, burst: 200 * time.Microsecond})
	m.StartThread("bg", "app", 0, &runSleeper{run: 400 * time.Microsecond, sleep: 400 * time.Microsecond})
	m.Run(20 * time.Millisecond)
	r.Close()
	checkConservation(t, r, int64(m.Now()))

	var exited bool
	for _, a := range r.Accounts() {
		if a.Class == "job" {
			if a.ExitedNS < 0 {
				t.Fatal("finite thread not marked exited")
			}
			if a.ExitedNS >= int64(m.Now()) {
				t.Fatalf("exit instant %d not inside the run (now %d)", a.ExitedNS, int64(m.Now()))
			}
			exited = true
		}
	}
	if !exited {
		t.Fatal("finite thread not recorded")
	}
}

// finiteProg runs n bursts then exits.
type finiteProg struct {
	n     int
	burst time.Duration
}

func (p *finiteProg) Next(ctx *sim.Ctx) sim.Op {
	if p.n == 0 {
		return sim.Exit()
	}
	p.n--
	return sim.Run(p.burst)
}

func TestHistQuantileShape(t *testing.T) {
	var h [histBuckets]uint64
	if got := histQuantile(&h, 0.99); got != 0 {
		t.Fatalf("empty histogram p99 = %d, want 0", got)
	}
	// 100 observations of ~1µs, one of ~1ms: p50 near 1µs, max bucket at p100.
	for i := 0; i < 100; i++ {
		h[histIndex(1000)]++
	}
	h[histIndex(1_000_000)]++
	p50 := histQuantile(&h, 0.50)
	p99 := histQuantile(&h, 0.99)
	if p50 < 900 || p50 > 1200 {
		t.Fatalf("p50 = %dns, want ≈1000", p50)
	}
	if p99 < 900 || p99 > 1200 {
		t.Fatalf("p99 = %dns, want ≈1000 (100 of 101 observations)", p99)
	}
	if p100 := histQuantile(&h, 1); p100 < 900_000 || p100 > 1_200_000 {
		t.Fatalf("p100 = %dns, want ≈1e6", p100)
	}
	// Bucket error bound: representative within 12.5% above the value.
	for _, v := range []int64{1, 7, 8, 100, 12345, 1 << 40} {
		rep := histValue(histIndex(v))
		if rep < v || float64(rep) > float64(v)*1.125+1 {
			t.Fatalf("value %d: representative %d outside (v, 1.125v]", v, rep)
		}
	}
}
