package runq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func entries(n int) []*Entry {
	es := make([]*Entry, n)
	for i := range es {
		es[i] = &Entry{Payload: i}
	}
	return es
}

func TestQueueFIFOWithinPriority(t *testing.T) {
	var q Queue
	es := entries(3)
	for _, e := range es {
		q.Add(e, 5)
	}
	for i := 0; i < 3; i++ {
		got := q.Choose()
		if got != es[i] {
			t.Fatalf("choose %d: got %v, want %v", i, got.Payload, es[i].Payload)
		}
		q.Remove(got)
	}
	if !q.Empty() {
		t.Fatal("queue not empty")
	}
}

func TestQueuePriorityOrder(t *testing.T) {
	var q Queue
	es := entries(3)
	q.Add(es[0], 40)
	q.Add(es[1], 3)
	q.Add(es[2], 63)
	if got := q.Choose(); got != es[1] {
		t.Fatalf("Choose = %v, want pri-3 entry", got.Payload)
	}
	if got := q.BestPri(); got != 3 {
		t.Fatalf("BestPri = %d", got)
	}
	if got := q.Last(); got != es[2] {
		t.Fatalf("Last = %v, want pri-63 entry", got.Payload)
	}
	q.Remove(es[1])
	if got := q.BestPri(); got != 40 {
		t.Fatalf("BestPri after remove = %d", got)
	}
}

func TestQueueAddHead(t *testing.T) {
	var q Queue
	es := entries(2)
	q.Add(es[0], 10)
	q.AddHead(es[1], 10)
	if got := q.Choose(); got != es[1] {
		t.Fatal("AddHead entry should be chosen first")
	}
}

func TestQueueBestPriEmpty(t *testing.T) {
	var q Queue
	if q.BestPri() != NQS {
		t.Fatalf("BestPri on empty = %d, want %d", q.BestPri(), NQS)
	}
	if q.Choose() != nil || q.Last() != nil {
		t.Fatal("empty queue returned an entry")
	}
}

func TestQueuePanics(t *testing.T) {
	var q Queue
	e := &Entry{}
	mustPanic(t, "double add", func() { q.Add(e, 0); q.Add(e, 0) })
	q.Remove(e)
	mustPanic(t, "remove unqueued", func() { q.Remove(e) })
	mustPanic(t, "bad pri", func() { q.Add(&Entry{}, NQS) })
	mustPanic(t, "neg pri", func() { q.Add(&Entry{}, -1) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: no panic", name)
		}
	}()
	fn()
}

func TestQueueEachOrder(t *testing.T) {
	var q Queue
	es := entries(4)
	q.Add(es[0], 9)
	q.Add(es[1], 2)
	q.Add(es[2], 9)
	q.Add(es[3], 30)
	var got []int
	q.Each(func(e *Entry) bool {
		got = append(got, e.Payload.(int))
		return true
	})
	want := []int{1, 0, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Each order = %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	q.Each(func(*Entry) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

// TestQueueBitmapConsistency drives random adds/removes and checks the
// bitmap always matches the FIFO occupancy.
func TestQueueBitmapConsistency(t *testing.T) {
	var q Queue
	rng := rand.New(rand.NewSource(3))
	var live []*Entry
	for step := 0; step < 3000; step++ {
		if len(live) == 0 || rng.Intn(10) < 6 {
			e := &Entry{Payload: step}
			q.Add(e, rng.Intn(NQS))
			live = append(live, e)
		} else {
			i := rng.Intn(len(live))
			q.Remove(live[i])
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if q.Len() != len(live) {
			t.Fatalf("step %d: Len=%d live=%d", step, q.Len(), len(live))
		}
		if (q.Len() == 0) != q.Empty() {
			t.Fatal("Empty inconsistent")
		}
		if q.Len() > 0 {
			best := q.BestPri()
			if q.Choose().Pri != best {
				t.Fatalf("step %d: Choose pri %d != BestPri %d", step, q.Choose().Pri, best)
			}
		}
	}
}

func TestCalendarRotation(t *testing.T) {
	var c Calendar
	es := entries(3)
	// Same priority, inserted at different calendar positions.
	c.Add(es[0], 10)
	c.Advance()
	c.Advance()
	c.Add(es[1], 10)
	c.Add(es[2], 0)
	// es[2] at slot insIdx+0=2, es[0] at slot 10, es[1] at slot 12.
	first := c.Choose()
	if first != es[2] {
		t.Fatalf("Choose = %v, want entry at nearest slot", first.Payload)
	}
	c.Remove(first)
	if got := c.Choose(); got != es[0] {
		t.Fatalf("second Choose = %v, want es[0]", got.Payload)
	}
}

func TestCalendarWraparound(t *testing.T) {
	var c Calendar
	// Advance insertion index near the end so slots wrap.
	for i := 0; i < NQS-2; i++ {
		c.Advance()
	}
	es := entries(2)
	c.Add(es[0], 5) // slot (62+5)%64 = 3
	c.Add(es[1], 1) // slot (62+1)%64 = 63
	if got := c.Choose(); got != es[1] {
		t.Fatalf("Choose = %v, want the pre-wrap entry", got.Payload)
	}
	c.Remove(es[1])
	if got := c.Choose(); got != es[0] {
		t.Fatalf("Choose after remove = %v", got.Payload)
	}
	c.Remove(es[0])
	if !c.Empty() {
		t.Fatal("not empty")
	}
	if c.Choose() != nil || c.Last() != nil {
		t.Fatal("empty calendar returned entry")
	}
}

func TestCalendarHigherRuntimeSchedulesLater(t *testing.T) {
	// A thread with larger batch priority (more accumulated runtime) must be
	// chosen after one with a smaller priority inserted at the same time.
	var c Calendar
	light := &Entry{Payload: "light"}
	heavy := &Entry{Payload: "heavy"}
	c.Add(heavy, 40)
	c.Add(light, 4)
	if got := c.Choose(); got != light {
		t.Fatalf("Choose = %v, want light", got.Payload)
	}
	if got := c.Last(); got != heavy {
		t.Fatalf("Last = %v, want heavy", got.Payload)
	}
}

// Property: every entry added to a calendar is eventually chosen exactly
// once when repeatedly choosing+removing (no starvation or loss in the data
// structure itself).
func TestQuickCalendarDrainsAll(t *testing.T) {
	f := func(pris []uint8, advances uint8) bool {
		var c Calendar
		for i := 0; i < int(advances%NQS); i++ {
			c.Advance()
		}
		want := map[*Entry]bool{}
		for _, p := range pris {
			e := &Entry{}
			c.Add(e, int(p)%NQS)
			want[e] = true
		}
		for !c.Empty() {
			e := c.Choose()
			if e == nil || !want[e] {
				return false
			}
			delete(want, e)
			c.Remove(e)
		}
		return len(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCalendarEach(t *testing.T) {
	var c Calendar
	es := entries(3)
	for i, e := range es {
		c.Add(e, i*10)
	}
	var n int
	c.Each(func(*Entry) bool { n++; return true })
	if n != 3 {
		t.Fatalf("Each visited %d", n)
	}
	n = 0
	c.Each(func(*Entry) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Each early stop visited %d", n)
	}
}

func TestOnQueue(t *testing.T) {
	var q Queue
	e := &Entry{}
	if e.OnQueue() {
		t.Fatal("fresh entry claims queued")
	}
	q.Add(e, 1)
	if !e.OnQueue() {
		t.Fatal("queued entry claims unqueued")
	}
	q.Remove(e)
	if e.OnQueue() {
		t.Fatal("removed entry claims queued")
	}
}

func TestFfsFls(t *testing.T) {
	if ffs(0b1000) != 3 || fls(0b1000) != 3 {
		t.Fatal("single bit")
	}
	if ffs(0b1010) != 1 || fls(0b1010) != 3 {
		t.Fatal("two bits")
	}
	if ffs(1<<63) != 63 || fls(1<<63|1) != 63 {
		t.Fatal("high bit")
	}
}
