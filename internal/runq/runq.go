// Package runq implements FreeBSD's run queues as ULE uses them: an array
// of 64 FIFO queues indexed by priority with a two-word bitmap for O(1)
// non-empty lookup, plus the rotating "calendar" variant used for the
// timeshare (batch) queue, where the insertion index advances over time so
// threads with more accumulated runtime land further from the head.
//
// This mirrors sys/kern/kern_switch.c (runq_*) and the tdq_runq_add /
// tdq_ridx machinery of sys/kern/sched_ule.c.
package runq

import "fmt"

// NQS is the number of distinct queues, matching FreeBSD's RQ_NQS after the
// 4-priority folding (FreeBSD folds 256 priorities into 64 queues; our
// priorities are already 0..63 per band, so the fold is 1:1).
const NQS = 64

// Entry is an element linked into a run queue. Embed or reference it from
// the scheduler's per-thread data. An Entry may be on at most one queue.
type Entry struct {
	// Payload is an opaque reference back to the owning thread.
	Payload any
	// Pri is the queue index the entry was inserted at (0 = highest).
	Pri        int
	next, prev *Entry
	q          *fifo
}

// OnQueue reports whether e is currently linked into some queue.
func (e *Entry) OnQueue() bool { return e.q != nil }

type fifo struct {
	head, tail *Entry
	size       int
}

func (f *fifo) pushTail(e *Entry) {
	e.q = f
	e.prev = f.tail
	e.next = nil
	if f.tail != nil {
		f.tail.next = e
	} else {
		f.head = e
	}
	f.tail = e
	f.size++
}

func (f *fifo) pushHead(e *Entry) {
	e.q = f
	e.next = f.head
	e.prev = nil
	if f.head != nil {
		f.head.prev = e
	} else {
		f.tail = e
	}
	f.head = e
	f.size++
}

func (f *fifo) remove(e *Entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		f.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		f.tail = e.prev
	}
	e.next, e.prev, e.q = nil, nil, nil
	f.size--
}

// Queue is a fixed-priority multi-FIFO run queue with a bitmap index.
type Queue struct {
	qs     [NQS]fifo
	bitmap uint64
	size   int
}

// Len returns the total number of queued entries.
func (q *Queue) Len() int { return q.size }

// Empty reports whether no entries are queued.
func (q *Queue) Empty() bool { return q.size == 0 }

func checkPri(pri int) {
	if pri < 0 || pri >= NQS {
		panic(fmt.Sprintf("runq: priority %d out of range [0,%d)", pri, NQS))
	}
}

// Add inserts e at the tail of the FIFO for priority pri (runq_add).
func (q *Queue) Add(e *Entry, pri int) {
	checkPri(pri)
	if e.q != nil {
		panic("runq: entry already queued")
	}
	e.Pri = pri
	q.qs[pri].pushTail(e)
	q.bitmap |= 1 << uint(pri)
	q.size++
}

// AddHead inserts e at the head of its priority FIFO; FreeBSD uses this for
// preempted threads that should resume first (SRQ_PREEMPTED).
func (q *Queue) AddHead(e *Entry, pri int) {
	checkPri(pri)
	if e.q != nil {
		panic("runq: entry already queued")
	}
	e.Pri = pri
	q.qs[pri].pushHead(e)
	q.bitmap |= 1 << uint(pri)
	q.size++
}

// Remove unlinks e from the queue (runq_remove).
func (q *Queue) Remove(e *Entry) {
	if e.q == nil {
		panic("runq: remove of unqueued entry")
	}
	pri := e.Pri
	q.qs[pri].remove(e)
	if q.qs[pri].size == 0 {
		q.bitmap &^= 1 << uint(pri)
	}
	q.size--
}

// Choose returns the first entry of the highest-priority (lowest index)
// non-empty FIFO without removing it (runq_choose), or nil if empty.
func (q *Queue) Choose() *Entry {
	if q.bitmap == 0 {
		return nil
	}
	pri := ffs(q.bitmap)
	return q.qs[pri].head
}

// BestPri returns the lowest non-empty queue index, or NQS if empty. ULE's
// pickcpu compares this against a candidate thread's priority.
func (q *Queue) BestPri() int {
	if q.bitmap == 0 {
		return NQS
	}
	return ffs(q.bitmap)
}

// Each visits entries from highest priority to lowest, FIFO order within a
// priority, until fn returns false. The queue must not be mutated during
// iteration.
func (q *Queue) Each(fn func(*Entry) bool) {
	bm := q.bitmap
	for bm != 0 {
		pri := ffs(bm)
		bm &^= 1 << uint(pri)
		for e := q.qs[pri].head; e != nil; e = e.next {
			if !fn(e) {
				return
			}
		}
	}
}

// Last returns the entry at the tail of the lowest-priority non-empty FIFO —
// the "least deserving" queued thread, which ULE's balancer prefers to
// migrate. Returns nil if empty.
func (q *Queue) Last() *Entry {
	if q.bitmap == 0 {
		return nil
	}
	pri := fls(q.bitmap)
	return q.qs[pri].tail
}

// ffs returns the index of the least significant set bit (bitmap != 0).
func ffs(bm uint64) int {
	i := 0
	for bm&1 == 0 {
		bm >>= 1
		i++
	}
	return i
}

// fls returns the index of the most significant set bit (bitmap != 0).
func fls(bm uint64) int {
	i := 0
	for bm > 1 {
		bm >>= 1
		i++
	}
	return i
}

// Calendar is the rotating timeshare queue (tdq_runq_add with ts_runq):
// entries are inserted at (idx + pri) % NQS where idx advances as the head
// empties, so a thread's batch priority becomes a *distance from the head*
// rather than an absolute rank. This gives ULE its round-robin-with-spread
// behaviour among batch threads and bounds waiting time: an entry can be
// overtaken at most once by each higher-priority entry per lap.
type Calendar struct {
	q Queue
	// ridx is the index selection currently scans from (tdq_ridx).
	ridx int
	// insIdx is the index insertion is relative to (tdq_idx); FreeBSD
	// advances it once per tick so freshly woken batch threads do not cut
	// ahead of the current head.
	insIdx int
}

// Len returns the number of queued entries.
func (c *Calendar) Len() int { return c.q.size }

// Empty reports whether no entries are queued.
func (c *Calendar) Empty() bool { return c.q.size == 0 }

// Add inserts e with batch priority pri (0..NQS-1) relative to the rotating
// insertion index.
func (c *Calendar) Add(e *Entry, pri int) {
	checkPri(pri)
	slot := (c.insIdx + pri) % NQS
	// FreeBSD tdq_runq_add: "This effectively shortens the queue by one so
	// we may avoid the queue currently being serviced" — a wrapped insert
	// must not cut into the in-service queue; slot-1 is the last slot of
	// the scan lap.
	if c.ridx != c.insIdx && slot == c.ridx {
		slot = (slot - 1 + NQS) % NQS
	}
	c.q.Add(e, slot)
}

// Remove unlinks e.
func (c *Calendar) Remove(e *Entry) { c.q.Remove(e) }

// Choose returns the next entry in calendar order without removing it: scan
// from ridx forward (with wraparound) to the first non-empty queue
// (runq_choose_from). Returns nil if empty. Choosing advances ridx past
// emptied slots lazily.
func (c *Calendar) Choose() *Entry {
	if c.q.size == 0 {
		return nil
	}
	for i := 0; i < NQS; i++ {
		slot := (c.ridx + i) % NQS
		if c.q.qs[slot].size > 0 {
			c.ridx = slot
			return c.q.qs[slot].head
		}
	}
	return nil
}

// Advance implements the sched_clock rotation: the insertion index advances
// one slot per tick, but only while it has not already run a full guard
// ahead of the in-service index; the in-service index catches up whenever
// its queue is empty. This is FreeBSD's exact rule:
//
//	if (tdq->tdq_idx == tdq->tdq_ridx) {
//	    tdq->tdq_idx = (tdq->tdq_idx + 1) % RQ_NQS;
//	    if (TAILQ_EMPTY(&tdq->tdq_timeshare.rq_queues[tdq->tdq_ridx]))
//	        tdq->tdq_ridx = tdq->tdq_idx;
//	}
func (c *Calendar) Advance() {
	if c.insIdx == c.ridx {
		c.insIdx = (c.insIdx + 1) % NQS
		if c.q.qs[c.ridx].size == 0 {
			c.ridx = c.insIdx
		}
	}
}

// Each visits all entries in calendar scan order until fn returns false.
func (c *Calendar) Each(fn func(*Entry) bool) {
	for i := 0; i < NQS; i++ {
		slot := (c.ridx + i) % NQS
		for e := c.q.qs[slot].head; e != nil; e = e.next {
			if !fn(e) {
				return
			}
		}
	}
}

// Last returns the entry furthest from the scan head, or nil if empty.
func (c *Calendar) Last() *Entry {
	if c.q.size == 0 {
		return nil
	}
	for i := NQS - 1; i >= 0; i-- {
		slot := (c.ridx + i) % NQS
		if c.q.qs[slot].size > 0 {
			return c.q.qs[slot].tail
		}
	}
	return nil
}
