// Package runner executes experiment trial grids across a bounded pool of
// goroutines. The simulator itself is strictly sequential and deterministic,
// but every trial of an experiment grid (app × scheduler × topology × seed)
// owns its own sim.Machine, so trials are independent and host-level
// parallelism is safe. The pool hands out trial indices in order, writes
// each result into its slot of a pre-sized slice, and returns the slice in
// trial order — so a parallel run is byte-identical to a sequential one no
// matter how the goroutines interleave.
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
)

// defaultWorkers holds the pool width set via SetWorkers; 0 means "auto"
// (GOMAXPROCS).
var defaultWorkers atomic.Int64

// Workers returns the current default pool width: the value installed by
// SetWorkers, or GOMAXPROCS(0) when unset.
func Workers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers installs the default pool width used by Map. n < 1 restores
// the automatic default (GOMAXPROCS). The CLI's -jobs flag lands here.
func SetWorkers(n int) {
	if n < 1 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Map runs fn(0..n-1) on the default worker pool and returns the results in
// index order.
func Map[T any](n int, fn func(i int) T) []T { return MapN(n, Workers(), fn) }

// WithWorkers runs fn with the default pool width temporarily set to n,
// then restores the previous setting (including "auto"). Byte-identity
// tests use it to run the same grid at -jobs 1 and -jobs 8 and compare
// outputs; it is not safe against concurrent SetWorkers callers, which
// matches the CLI's set-once usage.
func WithWorkers(n int, fn func()) {
	prev := defaultWorkers.Load()
	SetWorkers(n)
	defer defaultWorkers.Store(prev)
	fn()
}

// TrialPanic is the value MapN re-panics with when a job panicked: it
// preserves the failing job's index, the original panic value, and the
// stack captured at the panic site, so callers recovering it (e.g. the
// schedbattle sweep) can report the real failure instead of a flattened
// string.
type TrialPanic struct {
	Index int
	Value any
	Stack []byte
}

func (p *TrialPanic) Error() string {
	return fmt.Sprintf("runner: trial %d panicked: %v\n%s", p.Index, p.Value, p.Stack)
}

// MapN runs fn(0..n-1) across at most workers goroutines. Results come back
// in index order regardless of completion order. If any call panics, the
// remaining jobs still run (each job is isolated) and MapN re-panics on the
// caller with the lowest-index panic, so failure reporting is deterministic
// too.
func MapN[T any](n, workers int, fn func(i int) T) []T {
	out, panics := MapNErr(n, workers, fn)
	rethrow(panics)
	return out
}

// MapErr is Map with failures surfaced as values instead of a re-panic:
// every job runs regardless of other jobs' outcomes, and recovered
// panics come back sorted by job index. out[i] holds the zero value for
// failed jobs. This is the harness-hardening entry point: one bad trial
// in a 500-trial grid fails only its own slot.
func MapErr[T any](n int, fn func(i int) T) ([]T, []*TrialPanic) {
	return MapNErr(n, Workers(), fn)
}

// MapNErr is MapErr with an explicit worker count.
func MapNErr[T any](n, workers int, fn func(i int) T) ([]T, []*TrialPanic) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	var panics []*TrialPanic
	if workers == 1 {
		// Fast path: no goroutines, no synchronisation — the sequential
		// baseline that parallel runs must reproduce byte-for-byte.
		for i := range out {
			runOne(i, fn, out, &panics, nil)
		}
	} else {
		var (
			next atomic.Int64
			wg   sync.WaitGroup
			mu   sync.Mutex
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					runOne(i, fn, out, &panics, &mu)
				}
			}()
		}
		wg.Wait()
	}
	// Index order, so failure reporting is independent of pool width and
	// goroutine interleaving.
	sort.Slice(panics, func(a, b int) bool { return panics[a].Index < panics[b].Index })
	return out, panics
}

// runOne executes job i, recovering a panic into panics (under mu when
// non-nil) instead of unwinding the worker. The stack is captured inside
// the recover, so it still shows the original panic site.
func runOne[T any](i int, fn func(i int) T, out []T, panics *[]*TrialPanic, mu *sync.Mutex) {
	defer func() {
		if r := recover(); r != nil {
			p := &TrialPanic{Index: i, Value: r, Stack: debug.Stack()}
			if mu != nil {
				mu.Lock()
				defer mu.Unlock()
			}
			*panics = append(*panics, p)
		}
	}()
	out[i] = fn(i)
}

// rethrow re-raises the lowest-index recorded panic, if any (the slice
// is already in index order).
func rethrow(panics []*TrialPanic) {
	if len(panics) == 0 {
		return
	}
	panic(panics[0])
}

// DeriveSeed deterministically derives a per-trial seed from a base seed, a
// stable key (typically the trial or experiment name), and the trial's
// index in its grid. The derivation is a pure function of its inputs, so
// it is independent of pool width and scheduling order — the property the
// byte-identical-output guarantee rests on. The result is always positive.
func DeriveSeed(base int64, key string, index int) int64 {
	// FNV-1a over the key, folded with the base and index, finished with
	// the splitmix64 avalanche so nearby (base, index) pairs decorrelate.
	h := uint64(base) ^ 0xcbf29ce484222325
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 0x100000001b3
	}
	h ^= uint64(index+1) * 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	s := int64(h &^ (1 << 63))
	if s == 0 {
		s = 1
	}
	return s
}
