package runner

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapNOrdering(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		out := MapN(100, workers, func(i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapNEmptyAndClamp(t *testing.T) {
	if out := MapN(0, 8, func(i int) int { t.Fatal("called"); return 0 }); len(out) != 0 {
		t.Fatalf("empty grid returned %d results", len(out))
	}
	// workers > n and workers < 1 must both be safe.
	if out := MapN(3, 100, func(i int) int { return i }); len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
	if out := MapN(3, -1, func(i int) int { return i }); len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
}

func TestMapConcurrencyBound(t *testing.T) {
	var cur, peak atomic.Int64
	MapN(64, 4, func(i int) int {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		runtime.Gosched()
		cur.Add(-1)
		return i
	})
	if peak.Load() > 4 {
		t.Fatalf("observed %d concurrent jobs, bound was 4", peak.Load())
	}
}

func TestMapNPanicLowestIndex(t *testing.T) {
	for _, workers := range []int{1, 8} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: expected panic", workers)
				}
				// Both index 3 and 7 panic; the re-raise must deterministically
				// pick the lowest, and preserve the original value and stack.
				p, ok := r.(*TrialPanic)
				if !ok {
					t.Fatalf("workers=%d: panic value %T, want *TrialPanic", workers, r)
				}
				if p.Index != 3 {
					t.Fatalf("workers=%d: panicked trial %d, want 3", workers, p.Index)
				}
				if p.Value != "boom" {
					t.Fatalf("workers=%d: panic value %v, want boom", workers, p.Value)
				}
				if !strings.Contains(string(p.Stack), "runner_test") {
					t.Fatalf("workers=%d: stack missing panic site:\n%s", workers, p.Stack)
				}
				if !strings.Contains(p.Error(), "trial 3 panicked: boom") {
					t.Fatalf("workers=%d: Error() = %q", workers, p.Error())
				}
			}()
			MapN(10, workers, func(i int) int {
				if i == 3 || i == 7 {
					panic("boom")
				}
				return i
			})
		}()
	}
}

func TestSetWorkers(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers = %d", Workers())
	}
	SetWorkers(0)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("auto Workers = %d, want GOMAXPROCS %d", Workers(), runtime.GOMAXPROCS(0))
	}
	SetWorkers(-5)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("negative SetWorkers: Workers = %d", Workers())
	}
}

func TestDeriveSeed(t *testing.T) {
	// Pure function of its inputs.
	if DeriveSeed(42, "fig5/MG", 3) != DeriveSeed(42, "fig5/MG", 3) {
		t.Fatal("DeriveSeed not deterministic")
	}
	// Distinct along each axis.
	seen := map[int64]string{}
	add := func(s int64, what string) {
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: %s and %s both map to %d", prev, what, s)
		}
		seen[s] = what
	}
	add(DeriveSeed(42, "a", 0), "base42/a/0")
	add(DeriveSeed(42, "a", 1), "base42/a/1")
	add(DeriveSeed(42, "b", 0), "base42/b/0")
	add(DeriveSeed(7, "a", 0), "base7/a/0")
	// Always positive.
	for i := 0; i < 1000; i++ {
		if s := DeriveSeed(int64(i), "x", i); s <= 0 {
			t.Fatalf("DeriveSeed(%d) = %d, want > 0", i, s)
		}
	}
}

func TestMapNErrIsolation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		out, panics := MapNErr(10, workers, func(i int) int {
			if i == 2 || i == 6 {
				panic(i * 100)
			}
			return i * i
		})
		// Healthy jobs all completed; failed slots hold the zero value.
		for i, v := range out {
			want := i * i
			if i == 2 || i == 6 {
				want = 0
			}
			if v != want {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, want)
			}
		}
		// Panics come back sorted by index, regardless of completion order.
		if len(panics) != 2 || panics[0].Index != 2 || panics[1].Index != 6 {
			t.Fatalf("workers=%d: panics = %+v, want indices [2 6]", workers, panics)
		}
		if panics[0].Value != 200 || panics[1].Value != 600 {
			t.Fatalf("workers=%d: panic values %v, %v", workers, panics[0].Value, panics[1].Value)
		}
		for _, p := range panics {
			if len(p.Stack) == 0 {
				t.Fatalf("workers=%d: trial %d panic lost its stack", workers, p.Index)
			}
		}
	}
}

func TestMapErrNoFailures(t *testing.T) {
	out, panics := MapErr(5, func(i int) int { return i + 1 })
	if len(panics) != 0 {
		t.Fatalf("unexpected panics: %+v", panics)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
