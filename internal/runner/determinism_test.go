package runner_test

// Determinism contract tests: running an experiment's trial grid on a wide
// worker pool must produce output byte-identical to a sequential run. These
// live in an external test package so they can drive real experiments from
// internal/core through the runner they are testing.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/runner"
)

// snapshot serialises everything an experiment emits — the printed rows and
// notes plus every series point — so byte comparison covers the full output
// surface, not just the table.
func snapshot(t *testing.T, id string, scale float64) string {
	t.Helper()
	e, err := core.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run(scale)
	var b strings.Builder
	b.WriteString(res.String())
	setNames := make([]string, 0, len(res.Series))
	for name := range res.Series {
		setNames = append(setNames, name)
	}
	sort.Strings(setNames)
	for _, sn := range setNames {
		set := res.Series[sn]
		for _, name := range set.Names() {
			fmt.Fprintf(&b, "[%s/%s]\n%s", sn, name, set.Get(name).Gnuplot())
		}
	}
	return b.String()
}

// TestParallelMatchesSequential is the acceptance gate for the parallel
// runner: -jobs 8 output must be byte-identical to -jobs 1. The chosen
// experiments are cache-free (each Run executes fresh trials), cover
// single- and multi-core grids, and fig6 additionally exercises series
// merging.
func TestParallelMatchesSequential(t *testing.T) {
	defer runner.SetWorkers(0)
	cases := []struct {
		id    string
		scale float64
	}{
		{"ablation-preempt", 0.1},
		{"ablation-cgroup", 0.1},
		{"fig6", 0.12},
	}
	for _, c := range cases {
		runner.SetWorkers(1)
		seq := snapshot(t, c.id, c.scale)
		runner.SetWorkers(8)
		par := snapshot(t, c.id, c.scale)
		if seq != par {
			t.Errorf("%s: -jobs 8 output differs from -jobs 1\nseq:\n%s\npar:\n%s", c.id, seq, par)
		}
	}
}

// TestBaseSeedPerturbation checks that a non-zero base seed deterministically
// re-derives trial seeds (same base → same output; different base → a
// different, still internally consistent, grid).
func TestBaseSeedPerturbation(t *testing.T) {
	defer core.SetBaseSeed(0)
	core.SetBaseSeed(1234)
	a := snapshot(t, "ablation-cgroup", 0.1)
	b := snapshot(t, "ablation-cgroup", 0.1)
	if a != b {
		t.Fatal("same base seed produced different output")
	}
	core.SetBaseSeed(0)
	c := snapshot(t, "ablation-cgroup", 0.1)
	if a == c {
		t.Fatal("base seed 1234 did not perturb the trial seeds")
	}
}
