package runner_test

// Benchmarks comparing sequential vs parallel grid execution. On a
// multi-core host the parallel variants show the wall-clock speedup the
// runner exists for (≥2× on the experiment grid); BENCH_*.json tracks the
// ratio. On a single-core host they degenerate to the same numbers, which
// doubles as a check that the pool adds no meaningful overhead.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchExperimentGrid re-runs a cache-free three-trial experiment grid
// (ablation-preempt: apache under cfs, ule, ule-fullpreempt) at the scale
// the acceptance criterion names.
func benchExperimentGrid(b *testing.B, workers int) {
	runner.SetWorkers(workers)
	defer runner.SetWorkers(0)
	e, err := core.ByID("ablation-preempt")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := e.Run(0.25); len(res.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkExperimentGridSequential(b *testing.B) { benchExperimentGrid(b, 1) }
func BenchmarkExperimentGridParallel(b *testing.B)   { benchExperimentGrid(b, 0) }

// benchGridEngineEvents runs a grid of event-dense machines through the
// pool and reports aggregate engine throughput — the events/s a full
// experiment sweep actually gets, as opposed to the single-machine rate of
// sim's BenchmarkEngineEvents.
func benchGridEngineEvents(b *testing.B, workers int) {
	runner.SetWorkers(workers)
	defer runner.SetWorkers(0)
	trials := make([]core.Trial[uint64], 8)
	for i := range trials {
		trials[i] = core.Trial[uint64]{
			Name:    fmt.Sprintf("grid-events-%d", i),
			Machine: core.MachineConfig{Cores: 8, Kind: core.ULE, KernelNoise: true},
			Workload: func(m *sim.Machine) {
				for j := 0; j < 12; j++ {
					m.StartThread(fmt.Sprintf("w%d", j), "app", 0, &workload.Loop{Burst: time.Millisecond})
				}
			},
			Window:  250 * time.Millisecond,
			Extract: func(m *sim.Machine) uint64 { return m.EventsProcessed() },
		}
	}
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		for _, n := range core.RunTrials(trials) {
			events += n
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(events)/secs, "events/s")
	}
}

func BenchmarkGridEngineEventsSequential(b *testing.B) { benchGridEngineEvents(b, 1) }
func BenchmarkGridEngineEventsParallel(b *testing.B)   { benchGridEngineEvents(b, 0) }

// spin is a pure-CPU job, so the Map benchmarks measure pool scaling
// unconfounded by simulator allocation behaviour.
func spin(i int) uint64 {
	h := uint64(i) + 0x9e3779b97f4a7c15
	for j := 0; j < 2_000_000; j++ {
		h ^= h >> 12
		h *= 0x2545f4914f6cdd1d
	}
	return h
}

func benchMapSpin(b *testing.B, workers int) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := runner.MapN(16, workers, spin)
		if len(out) != 16 {
			b.Fatal("short result")
		}
	}
}

func BenchmarkMapSpinSequential(b *testing.B) { benchMapSpin(b, 1) }
func BenchmarkMapSpinParallel(b *testing.B)   { benchMapSpin(b, runtime.GOMAXPROCS(0)) }
