package cfs

import "repro/internal/sim"

// CoreOffline implements sim.Hotplugger — the migrate_tasks half of
// Linux's sched_cpu_deactivate: every thread runnable on the dead core
// is detached and re-placed with find_idlest (the core is already
// marked offline, so the sweep skips it via CanRunOn).
func (s *Sched) CoreOffline(c *sim.Core) {
	cs := &s.cores[c.ID]
	// Snapshot: Migrate mutates cs.threads, and the nested dispatch on
	// the target can start or sleep a later candidate.
	cands := append([]*sim.Thread(nil), cs.threads...)
	for _, t := range cands {
		if t.State() != sim.StateRunnable || t.Core() != c {
			continue
		}
		s.m.Migrate(t, c, s.findIdlest(t, nil))
	}
}

// CoreOnline implements sim.Hotplugger: the per-core runqueues survive
// the offline window empty; the engine's post-online dispatch runs
// newidle balance to pull work back.
func (s *Sched) CoreOnline(c *sim.Core) {}

var _ sim.Hotplugger = (*Sched)(nil)
