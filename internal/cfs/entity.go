package cfs

import (
	"time"

	"repro/internal/pelt"
	"repro/internal/rbtree"
	"repro/internal/sim"
)

// entity is a schedulable entity: either one thread or one task group's
// presence on one core (the group's sched_entity). Ordering in the
// red-black tree is by (vruntime, id).
type entity struct {
	// thread is non-nil for thread entities.
	thread *sim.Thread
	// repr is non-nil for group entities: the group this entity gives CPU
	// time to on this core.
	repr *taskGroup
	// owner is the runqueue level holding this entity.
	owner *cfsRQ

	id       int
	vruntime int64 // virtual runtime, ns scaled by nice-0/weight
	weight   int64
	onRQ     bool // enqueued in owner (queued in tree or curr)
	inTree   bool

	// avg is the PELT runnable average (thread entities only).
	avg pelt.Avg
	// loadContrib is the load currently folded into the root rq's loadAvg.
	loadContrib int64

	// accounted is how much of thread.RunTime has been charged to
	// vruntime already.
	accounted time.Duration
	// sliceStart is thread.RunTime when the entity was last picked, for
	// the tick preemption check.
	sliceStart time.Duration

	// wakeeFlips / lastWakee implement wake_wide's 1-to-many detector
	// (thread entities only).
	wakeeFlips int
	lastWakee  *entity
	flipDecay  time.Duration
}

// Less implements rbtree.Item.
func (e *entity) Less(other rbtree.Item) bool {
	o := other.(*entity)
	if e.vruntime != o.vruntime {
		return e.vruntime < o.vruntime
	}
	return e.id < o.id
}

// taskGroup is a cgroup: the unit of inter-application fairness. Each group
// owns one runqueue and one group entity per core; group entities live in
// the parent group's runqueue (here always the root, a two-level hierarchy:
// root → applications → threads, the shape systemd produces per the paper).
type taskGroup struct {
	name string
	// shares is the group's total weight, distributed across cores in
	// proportion to per-core runnable weight (calc_group_shares).
	shares int64
	// rqs/entities are per core.
	rqs      []*cfsRQ
	entities []*entity
	// totalWeight is Σ over cores of rq.weightSum, the denominator of the
	// share split.
	totalWeight int64
}

// cfsRQ is one runqueue level on one core: the root rq (holding group
// entities, or thread entities with cgroups off) or a group's per-core rq
// (holding thread entities).
type cfsRQ struct {
	core  int
	group *taskGroup // owning group; nil for the root rq

	tree        rbtree.Tree
	minVruntime int64
	// curr is the entity of this level currently running (not in tree).
	curr *entity
	// nrRunning counts entities on this level (tree + curr).
	nrRunning int
	// weightSum is Σ weights of entities on this level (tree + curr).
	weightSum int64
}

func (rq *cfsRQ) leftmost() *entity {
	it := rq.tree.Min()
	if it == nil {
		return nil
	}
	return it.(*entity)
}

func (rq *cfsRQ) enqueue(e *entity) {
	if e.inTree {
		panic("cfs: enqueue of entity already in tree")
	}
	rq.tree.Insert(e)
	e.inTree = true
	if !e.onRQ {
		e.onRQ = true
		rq.nrRunning++
		rq.weightSum += e.weight
	}
}

func (rq *cfsRQ) dequeue(e *entity) {
	if e.inTree {
		rq.tree.Delete(e)
		e.inTree = false
	}
	if e.onRQ {
		e.onRQ = false
		rq.nrRunning--
		rq.weightSum -= e.weight
	}
	if rq.curr == e {
		rq.curr = nil
	}
}

// setCurr marks e as the running entity at this level, removing it from
// the tree (set_next_entity).
func (rq *cfsRQ) setCurr(e *entity) {
	if e.inTree {
		rq.tree.Delete(e)
		e.inTree = false
	}
	rq.curr = e
}

// putCurr returns the running entity to the tree (put_prev_entity).
func (rq *cfsRQ) putCurr() {
	e := rq.curr
	if e == nil {
		return
	}
	rq.curr = nil
	if e.onRQ {
		rq.tree.Insert(e)
		e.inTree = true
	}
}

// updateMinVruntime advances min_vruntime monotonically towards the
// smallest runnable vruntime (update_min_vruntime).
func (rq *cfsRQ) updateMinVruntime() {
	min := rq.minVruntime
	cand := int64(-1 << 62)
	has := false
	if rq.curr != nil && rq.curr.onRQ {
		cand = rq.curr.vruntime
		has = true
	}
	if lm := rq.leftmost(); lm != nil {
		if !has || lm.vruntime < cand {
			cand = lm.vruntime
		}
		has = true
	}
	if has && cand > min {
		min = cand
	}
	rq.minVruntime = min
}

// chargeDelta advances e's vruntime by real time delta (update_curr's
// weighting: delta × nice0 / weight).
func (e *entity) chargeDelta(delta time.Duration) {
	if e.weight <= 0 {
		e.weight = 1
	}
	e.vruntime += int64(delta) * nice0Weight / e.weight
}

// reweight changes an entity's weight, fixing the owning rq's sum.
func (e *entity) reweight(w int64) {
	if w < 2 {
		w = 2
	}
	if e.onRQ && e.owner != nil {
		e.owner.weightSum += w - e.weight
	}
	e.weight = w
}
