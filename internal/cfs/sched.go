package cfs

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Sched is the CFS scheduling class.
type Sched struct {
	// P holds the tunables (fixed after Attach).
	P Params

	m      *sim.Machine
	cores  []coreState
	root   *taskGroup
	groups map[string]*taskGroup
	nextID int
}

// coreState is the per-core root runqueue plus flattened accounting.
type coreState struct {
	core *sim.Core
	root *cfsRQ
	// threads lists runnable threads on this core (including the running
	// one), in deterministic order, for the balancer's candidate scan.
	threads []*sim.Thread
	// hNr is the flattened runnable thread count (h_nr_running).
	hNr int
	// hWeight is the flattened runnable weight sum.
	hWeight int64
	// loadAvg is Σ PELT load of runnable thread entities — the paper's
	// "load of a core is the sum of the loads of the threads runnable on
	// that core".
	loadAvg int64
	ticks   int
}

// runnableLoad is the balancer's core-load metric: the exact runnable
// weight. For persistently queued threads kernel PELT converges to exactly
// this (queue-wait counts as runnable time); using the converged value
// avoids decay-staleness artifacts the simulator's sparser update points
// would otherwise introduce. Blocked threads contribute nothing, preserving
// the paper's "a thread that never sleeps has a higher load than one that
// sleeps a lot".
func (cs *coreState) runnableLoad() int64 { return cs.hWeight }

// New returns a CFS instance with the given parameters.
func New(p Params) *Sched {
	return &Sched{P: p, groups: make(map[string]*taskGroup)}
}

// NewDefault returns CFS with the paper's parameters.
func NewDefault() *Sched { return New(DefaultParams()) }

// Name implements sim.Scheduler.
func (s *Sched) Name() string { return "cfs" }

// TickPeriod implements sim.Scheduler: HZ=1000.
func (s *Sched) TickPeriod() time.Duration { return time.Millisecond }

// NeedsIdleTick implements sim.Scheduler: the periodic LLC/NUMA balancer
// runs from Tick on idle cores too (the Figure 6 convergence mechanism), so
// CFS opts in to idle ticks.
func (s *Sched) NeedsIdleTick() bool { return true }

// Attach implements sim.Scheduler.
func (s *Sched) Attach(m *sim.Machine) {
	s.m = m
	n := len(m.Cores)
	s.root = &taskGroup{name: "root", shares: nice0Weight}
	s.root.rqs = make([]*cfsRQ, n)
	for i := 0; i < n; i++ {
		s.root.rqs[i] = &cfsRQ{core: i}
	}
	// One contiguous block of per-core state: the balancer's busiest-core
	// and average-load sweeps read every core's counters, so adjacency
	// matters more than anything else about this layout.
	s.cores = make([]coreState, n)
	for i, c := range m.Cores {
		s.cores[i] = coreState{core: c, root: s.root.rqs[i]}
	}
}

func (s *Sched) ent(t *sim.Thread) *entity {
	e, ok := t.SchedData.(*entity)
	if !ok {
		panic(fmt.Sprintf("cfs: thread %v has no entity", t))
	}
	return e
}

// groupFor returns the task group for a thread, creating it on first use.
// Kernel threads live in the root group, like the real root cgroup.
func (s *Sched) groupFor(t *sim.Thread) *taskGroup {
	if !s.P.Cgroups || t.Group == "kernel" || t.Group == "" {
		return s.root
	}
	g, ok := s.groups[t.Group]
	if !ok {
		n := len(s.m.Cores)
		g = &taskGroup{name: t.Group, shares: nice0Weight}
		g.rqs = make([]*cfsRQ, n)
		g.entities = make([]*entity, n)
		for i := 0; i < n; i++ {
			g.rqs[i] = &cfsRQ{core: i, group: g}
			// Group-entity IDs live far above thread IDs to keep rbtree
			// tiebreaks deterministic and collision-free.
			g.entities[i] = &entity{repr: g, id: (len(s.groups)+1)*1_000_000 + i, weight: nice0Weight}
		}
		s.groups[t.Group] = g
	}
	return g
}

// rqFor returns the runqueue level a thread's entity enqueues on, for a
// given core.
func (s *Sched) rqFor(t *sim.Thread, core int) *cfsRQ {
	g := s.groupFor(t)
	if g == s.root {
		return s.root.rqs[core]
	}
	return g.rqs[core]
}

// Fork implements sim.Scheduler: allocate the child's entity. The vruntime
// is assigned at enqueue (place_entity initial).
func (s *Sched) Fork(parent, child *sim.Thread) {
	s.nextID++
	e := &entity{thread: child, id: child.ID, weight: weightOf(child.Nice)}
	// New tasks start with full load so placement sees them coming
	// (post_init_entity_util_avg).
	e.avg.Prime(s.m.Now(), 1)
	child.SchedData = e
}

// Exit implements sim.Scheduler.
func (s *Sched) Exit(t *sim.Thread) {}

// Enqueue implements sim.Scheduler.
func (s *Sched) Enqueue(c *sim.Core, t *sim.Thread, flags int) {
	cs := &s.cores[c.ID]
	se := s.ent(t)
	rq := s.rqFor(t, c.ID)

	wakeup := flags&sim.FlagWakeup != 0
	fork := flags&sim.FlagFork != 0
	migrate := flags&sim.FlagMigrate != 0

	switch {
	case fork:
		// place_entity(initial): start the child one slice into the
		// period — "a thread starts with a vruntime equal to the maximum
		// vruntime of the threads waiting in the runqueue" (§2.1).
		se.vruntime = rq.minVruntime + s.vslice(cs, se)
	case migrate:
		// Dequeue normalised vruntime to be relative; rebase here. Floor at
		// min_vruntime: carrying a sleeper credit across cores would let a
		// stream of migrants perpetually undercut this queue's waiters.
		se.vruntime += rq.minVruntime
		if se.vruntime < rq.minVruntime {
			se.vruntime = rq.minVruntime
		}
	case wakeup:
		if se.owner != nil && se.owner != rq {
			// Wakeup migration (migrate_task_rq_fair): subtract the old
			// rq's *current* min — for a long sleeper the old min has
			// advanced far past its stale vruntime, so the rebased value
			// goes deeply negative and the sleeper credit below applies in
			// full, exactly as in the kernel.
			se.vruntime = se.vruntime - se.owner.minVruntime + rq.minVruntime
		}
		// Sleeper credit, gentle: at most SleeperCredit below min, never
		// moving vruntime backwards relative to its own past.
		credit := rq.minVruntime - int64(s.P.SleeperCredit)
		if se.vruntime < credit {
			se.vruntime = credit
		}
	}
	se.owner = rq
	rq.enqueue(se)
	cs.hNr++
	cs.hWeight += se.weight
	cs.threads = append(cs.threads, t)
	// PELT: time until now was sleeping for wakeups, runnable for
	// migrations and fresh forks; syncLoad folds the entity into the core
	// load now that it is on the runnable set.
	s.syncLoad(cs, se, !wakeup)

	if rq.group != nil {
		s.updateGroupWeights(rq.group)
		ge := rq.group.entities[c.ID]
		if !ge.onRQ {
			root := cs.root
			if wakeup {
				credit := root.minVruntime - int64(s.P.SleeperCredit)
				if ge.vruntime < credit {
					ge.vruntime = credit
				}
			} else if ge.vruntime < root.minVruntime-int64(s.P.SleeperCredit) {
				ge.vruntime = root.minVruntime - int64(s.P.SleeperCredit)
			}
			ge.owner = root
			root.enqueue(ge)
		}
	}
}

// Dequeue implements sim.Scheduler.
func (s *Sched) Dequeue(c *sim.Core, t *sim.Thread, flags int) {
	cs := &s.cores[c.ID]
	se := s.ent(t)
	rq := se.owner
	if rq == nil || !se.onRQ {
		panic(fmt.Sprintf("cfs: dequeue of non-runnable %v", t))
	}
	if c.Curr == t {
		s.chargePath(cs, t)
	}
	rq.dequeue(se)
	rq.updateMinVruntime()
	cs.hNr--
	cs.hWeight -= se.weight
	cs.removeThread(t)
	cs.loadAvg -= se.loadContrib
	se.loadContrib = 0
	se.avg.Update(s.m.Now(), true)

	if flags&sim.FlagMigrate != 0 {
		se.vruntime -= rq.minVruntime // normalise; Enqueue rebases
	}

	if rq.group != nil {
		s.updateGroupWeights(rq.group)
		ge := rq.group.entities[c.ID]
		if rq.nrRunning == 0 && ge.onRQ {
			cs.root.dequeue(ge)
			cs.root.updateMinVruntime()
		} else if cs.root.curr == ge {
			// The thread blocked while running: the engine will not call
			// PutPrev, so return the still-runnable group entity to the
			// root tree here (the put_prev half of schedule()).
			cs.root.putCurr()
			cs.root.updateMinVruntime()
		}
	}
}

// PickNext implements sim.Scheduler: descend picking the leftmost entity
// at each level.
func (s *Sched) PickNext(c *sim.Core) *sim.Thread {
	cs := &s.cores[c.ID]
	if s.m.Cost.PickFixedCost > 0 {
		// Engine charges the fixed pick cost; nothing extra here.
		_ = cs
	}
	rq := cs.root
	for depth := 0; ; depth++ {
		e := rq.leftmost()
		if e == nil {
			if depth == 0 {
				return nil
			}
			panic("cfs: group entity enqueued with empty group rq")
		}
		rq.setCurr(e)
		if e.thread != nil {
			e.sliceStart = e.thread.RunTime
			s.syncLoad(cs, e, true)
			return e.thread
		}
		rq = e.repr.rqs[c.ID]
	}
}

// PutPrev implements sim.Scheduler: charge the descended path and return it
// to the trees.
func (s *Sched) PutPrev(c *sim.Core, t *sim.Thread, flags int) {
	cs := &s.cores[c.ID]
	s.chargePath(cs, t)
	se := s.ent(t)
	rq := se.owner
	rq.putCurr()
	rq.updateMinVruntime()
	if rq.group != nil {
		cs.root.putCurr()
		cs.root.updateMinVruntime()
	}
}

// Yield implements sim.Scheduler: vruntime has been charged; the entity
// re-queues at its tree position.
func (s *Sched) Yield(c *sim.Core, t *sim.Thread) {}

// chargePath advances vruntime for the thread entity and its group entity
// by the thread's un-accounted runtime (update_curr cascade).
func (s *Sched) chargePath(cs *coreState, t *sim.Thread) {
	se := s.ent(t)
	delta := t.RunTime - se.accounted
	if delta <= 0 {
		return
	}
	se.accounted = t.RunTime
	se.chargeDelta(delta)
	rq := se.owner
	rq.updateMinVruntime()
	if rq.group != nil {
		ge := rq.group.entities[cs.root.core]
		ge.chargeDelta(delta)
		cs.root.updateMinVruntime()
	}
	s.syncLoad(cs, se, true)
}

// syncLoad rolls the entity's PELT average to now and refreshes its
// contribution to the core load. The invariant: cs.loadAvg is the sum of
// loadContrib over entities currently on the core's runnable set.
func (s *Sched) syncLoad(cs *coreState, se *entity, active bool) {
	if se.thread == nil {
		return
	}
	if !se.onRQ {
		// Not runnable here (mid-transition): keep the average fresh but
		// contribute nothing.
		se.avg.Update(s.m.Now(), active)
		return
	}
	cs.loadAvg -= se.loadContrib
	se.avg.Update(s.m.Now(), active)
	se.loadContrib = se.avg.Load(se.weight)
	cs.loadAvg += se.loadContrib
}

// updateGroupWeights redistributes a group's shares across cores in
// proportion to per-core runnable weight (calc_group_shares).
func (s *Sched) updateGroupWeights(g *taskGroup) {
	var total int64
	for _, rq := range g.rqs {
		total += rq.weightSum
	}
	g.totalWeight = total
	for i, rq := range g.rqs {
		ge := g.entities[i]
		if total <= 0 {
			ge.reweight(2)
			continue
		}
		ge.reweight(g.shares * rq.weightSum / total)
	}
}

// vslice is the virtual-time slice a new entity gets placed after
// (sched_vslice).
func (s *Sched) vslice(cs *coreState, se *entity) int64 {
	w := cs.hWeight + se.weight
	if w <= 0 {
		w = se.weight
	}
	period := s.P.period(cs.hNr + 1)
	return int64(period) * nice0Weight / w
}

// sliceFor is the wall-clock slice of the running entity: the period share
// weighted by the entity's weight over the flattened runnable weight
// (sched_slice, flattened as §2.1 describes it).
func (s *Sched) sliceFor(cs *coreState, se *entity) time.Duration {
	w := cs.hWeight
	if w <= 0 {
		w = se.weight
	}
	slice := time.Duration(int64(s.P.period(cs.hNr)) * se.weight / w)
	if slice < s.P.MinGranularity {
		slice = s.P.MinGranularity
	}
	return slice
}

// CheckPreempt implements sim.Scheduler (check_preempt_wakeup): preempt
// when the woken entity's vruntime undercuts the running one by more than
// the wakeup granularity, compared at the common hierarchy level.
func (s *Sched) CheckPreempt(c *sim.Core, t *sim.Thread, flags int) bool {
	if flags&sim.FlagWakeup == 0 {
		return false // forks and migrations do not preempt
	}
	curr := c.Curr
	if curr == nil {
		return true
	}
	se := s.ent(t)
	ce := s.ent(curr)
	s.chargePath(&s.cores[c.ID], curr)
	a, b := se, ce
	if s.P.Cgroups && se.owner != ce.owner {
		// Compare the group entities at the root level.
		a = s.matchLevel(se, c.ID)
		b = s.matchLevel(ce, c.ID)
		if a == nil || b == nil || a == b {
			return false
		}
	}
	gran := int64(s.P.WakeupGranularity) * nice0Weight / a.weight
	return b.vruntime-a.vruntime > gran
}

// matchLevel lifts an entity to the root level (its group entity) when it
// lives in a group rq.
func (s *Sched) matchLevel(e *entity, core int) *entity {
	if e.owner == nil || e.owner.group == nil {
		return e
	}
	return e.owner.group.entities[core]
}

// Tick implements sim.Scheduler: update vruntime, enforce the slice
// (check_preempt_tick), and run the periodic balancer.
func (s *Sched) Tick(c *sim.Core, curr *sim.Thread) {
	cs := &s.cores[c.ID]
	cs.ticks++
	if curr != nil {
		s.chargePath(cs, curr)
		se := s.ent(curr)
		slice := s.sliceFor(cs, se)
		exec := curr.RunTime - se.sliceStart
		switch {
		case exec > slice && cs.hNr > 1:
			c.NeedResched = true
		case exec >= s.P.MinGranularity/2:
			// "CFS ensures that the vruntime difference between any two
			// threads is less than the preemption period (6ms)" — once the
			// running entity is a full preemption period ahead of the
			// leftmost waiter, switch. The exec floor is half the
			// granularity (kernel sysctl_sched_min_granularity is smaller
			// than the preemption period).
			if lm := se.owner.leftmost(); lm != nil &&
				se.vruntime-lm.vruntime > int64(s.P.MinGranularity)*nice0Weight/se.weight {
				c.NeedResched = true
			}
		}
	}
	s.balanceTick(c, cs, curr == nil)
}

// SelectCore implements sim.Scheduler; see placement.go.
func (s *Sched) SelectCore(t *sim.Thread, origin *sim.Core, flags int) *sim.Core {
	return s.selectCore(t, origin, flags)
}

// IdleBalance implements sim.Scheduler (newidle balance).
func (s *Sched) IdleBalance(c *sim.Core) bool {
	return s.newidle(c)
}

// NrRunnable implements sim.Scheduler.
func (s *Sched) NrRunnable(c *sim.Core) int { return s.cores[c.ID].hNr }

// CoreLoad exposes the PELT core load (tests and figures).
func (s *Sched) CoreLoad(core int) int64 { return s.cores[core].loadAvg }

// ExplainPick implements sim.PickExplainer: every thread CFS accounts
// runnable on c (the per-core deterministic list; a running or just-picked
// thread is still on it), keyed by the thread entity's vruntime within its
// group runqueue.
func (s *Sched) ExplainPick(c *sim.Core, buf []sim.PickCandidate) []sim.PickCandidate {
	buf = buf[:0]
	for _, t := range s.cores[c.ID].threads {
		buf = append(buf, sim.PickCandidate{TID: int32(t.ID), Key: s.ent(t).vruntime})
	}
	return buf
}

func (cs *coreState) removeThread(t *sim.Thread) {
	for i, x := range cs.threads {
		if x == t {
			cs.threads = append(cs.threads[:i], cs.threads[i+1:]...)
			return
		}
	}
	panic("cfs: thread missing from core list")
}

var _ sim.Scheduler = (*Sched)(nil)
var _ sim.PickExplainer = (*Sched)(nil)

// DebugEntity renders an entity's scheduling state for diagnostics.
func (s *Sched) DebugEntity(t *sim.Thread) string {
	se := s.ent(t)
	var ownerMin, lmVr int64 = -1, -1
	var ownerNr int
	if se.owner != nil {
		ownerMin = se.owner.minVruntime
		ownerNr = se.owner.nrRunning
		if lm := se.owner.leftmost(); lm != nil {
			lmVr = lm.vruntime
		}
	}
	geInfo := ""
	if se.owner != nil && se.owner.group != nil {
		ge := se.owner.group.entities[se.owner.core]
		geInfo = fmt.Sprintf(" ge{vr=%d w=%d onRQ=%v}", ge.vruntime, ge.weight, ge.onRQ)
	}
	return fmt.Sprintf("vr=%d ownerMin=%d leftmost=%d nr=%d onRQ=%v inTree=%v%s",
		se.vruntime, ownerMin, lmVr, ownerNr, se.onRQ, se.inTree, geInfo)
}

// DebugGroupRQ lists (name, vruntime) of entities in t's group rq on core,
// plus the rq identity check for t's own entity.
func (s *Sched) DebugGroupRQ(t *sim.Thread, core int) string {
	se := s.ent(t)
	rq := s.rqFor(t, core)
	out := fmt.Sprintf("rq==owner:%v curr=%v items:", rq == se.owner, rq.curr != nil)
	found := false
	for _, it := range rq.tree.Items() {
		e := it.(*entity)
		name := "?"
		if e.thread != nil {
			name = e.thread.Name
		}
		if e == se {
			found = true
			name += "*"
		}
		out += fmt.Sprintf(" %s@%d", name, e.vruntime)
	}
	out += fmt.Sprintf(" [stuckInThisTree=%v]", found)
	return out
}
