package cfs

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

type looper struct{ burst time.Duration }

func (l *looper) Next(ctx *sim.Ctx) sim.Op { return sim.Run(l.burst) }

// sleeper alternates short runs with long sleeps (an interactive thread).
type sleeper struct {
	run, sleep time.Duration
	state      int
	// WakeLatencies accumulates enqueue→run latencies via LastEnqueuedAt.
	Runs int
}

func (s *sleeper) Next(ctx *sim.Ctx) sim.Op {
	if s.state == 0 {
		s.state = 1
		s.Runs++
		return sim.Run(s.run)
	}
	s.state = 0
	return sim.Sleep(s.sleep)
}

func newMachine(p Params, tp *topo.Topology, seed int64) (*sim.Machine, *Sched) {
	s := New(p)
	m := sim.NewMachine(tp, s, sim.Options{Seed: seed, Cost: &sim.CostModel{}, TraceCapacity: 0})
	return m, s
}

func TestFairShareSameGroup(t *testing.T) {
	m, _ := newMachine(DefaultParams(), topo.SingleCore(), 1)
	a := m.StartThread("a", "app", 0, &looper{burst: time.Millisecond})
	b := m.StartThread("b", "app", 0, &looper{burst: time.Millisecond})
	m.Run(4 * time.Second)
	total := a.RunTime + b.RunTime
	if total < 3900*time.Millisecond {
		t.Fatalf("core idle: total=%v", total)
	}
	ratio := float64(a.RunTime) / float64(total)
	if ratio < 0.47 || ratio > 0.53 {
		t.Fatalf("share = %v, want ~0.5", ratio)
	}
}

func TestNiceWeighting(t *testing.T) {
	m, _ := newMachine(DefaultParams(), topo.SingleCore(), 1)
	hi := m.StartThread("hi", "app", 0, &looper{burst: time.Millisecond})
	lo := m.StartThread("lo", "app", 5, &looper{burst: time.Millisecond})
	m.Run(4 * time.Second)
	// weight(0)=1024, weight(5)=335 → hi share ≈ 0.754.
	ratio := float64(hi.RunTime) / float64(hi.RunTime+lo.RunTime)
	if ratio < 0.70 || ratio > 0.80 {
		t.Fatalf("nice-weighted share = %v, want ~0.75", ratio)
	}
}

func TestCgroupFairnessBetweenApps(t *testing.T) {
	// Paper Fig 1(a): one fibo thread vs many sysbench-like threads — with
	// group fairness the single-thread app still gets ~50%.
	m, _ := newMachine(DefaultParams(), topo.SingleCore(), 1)
	fibo := m.StartThread("fibo", "fibo", 0, &looper{burst: time.Millisecond})
	var dbRun []*sim.Thread
	for i := 0; i < 10; i++ {
		dbRun = append(dbRun, m.StartThread("db", "db", 0, &looper{burst: time.Millisecond}))
	}
	m.Run(4 * time.Second)
	var dbTotal time.Duration
	for _, th := range dbRun {
		dbTotal += th.RunTime
	}
	share := float64(fibo.RunTime) / float64(fibo.RunTime+dbTotal)
	if share < 0.40 || share > 0.60 {
		t.Fatalf("fibo share with cgroups = %v, want ~0.5", share)
	}
}

func TestNoCgroupsPerThreadFairness(t *testing.T) {
	p := DefaultParams()
	p.Cgroups = false
	m, _ := newMachine(p, topo.SingleCore(), 1)
	fibo := m.StartThread("fibo", "fibo", 0, &looper{burst: time.Millisecond})
	for i := 0; i < 10; i++ {
		m.StartThread("db", "db", 0, &looper{burst: time.Millisecond})
	}
	m.Run(4 * time.Second)
	share := float64(fibo.RunTime) / float64(m.Now())
	if share < 0.05 || share > 0.15 {
		t.Fatalf("fibo share without cgroups = %v, want ~1/11", share)
	}
}

func TestSleeperCreditSchedulesInteractiveFirst(t *testing.T) {
	// An interactive thread waking among CPU hogs should run promptly —
	// "threads that sleep a lot are scheduled first" (§2.1).
	m, _ := newMachine(DefaultParams(), topo.SingleCore(), 1)
	for i := 0; i < 4; i++ {
		m.StartThread("hog", "hogs", 0, &looper{burst: time.Millisecond})
	}
	inter := &sleeper{run: 100 * time.Microsecond, sleep: 20 * time.Millisecond}
	th := m.StartThread("inter", "inter", 0, inter)
	m.Run(4 * time.Second)
	if inter.Runs < 150 {
		t.Fatalf("interactive thread ran %d times in 4s, want ~190", inter.Runs)
	}
	// It should get nearly all the CPU it asks for (~0.5% demand).
	if th.RunTime < 15*time.Millisecond {
		t.Fatalf("interactive RunTime = %v", th.RunTime)
	}
}

func TestWakeupPreemption(t *testing.T) {
	m, _ := newMachine(DefaultParams(), topo.SingleCore(), 1)
	m.StartThread("hog", "hogs", 0, &looper{burst: 50 * time.Millisecond})
	m.StartThread("inter", "inter", 0, &sleeper{run: 200 * time.Microsecond, sleep: 30 * time.Millisecond})
	m.Run(2 * time.Second)
	if got := m.Trace.Count(trace.Preempt); got == 0 {
		t.Fatal("sleeper never preempted the hog despite huge vruntime gap")
	}
}

func TestForkDoesNotPreempt(t *testing.T) {
	m, _ := newMachine(DefaultParams(), topo.SingleCore(), 1)
	forked := false
	m.StartThread("parent", "app", 0, sim.ProgramFunc(func(ctx *sim.Ctx) sim.Op {
		if !forked {
			forked = true
			ctx.Fork("child", "app", 0, &looper{burst: time.Millisecond})
			return sim.Run(5 * time.Millisecond)
		}
		return sim.Run(5 * time.Millisecond)
	}))
	m.RunUntil(func() bool { return forked }, time.Second)
	pre := m.Trace.Count(trace.Preempt)
	m.Run(m.Now() + 2*time.Millisecond)
	if m.Trace.Count(trace.Preempt) != pre {
		t.Fatal("fork preempted the parent")
	}
}

func TestBalanceSpreadsSpinners(t *testing.T) {
	m, s := newMachine(DefaultParams(), topo.Default(), 1)
	// 64 spinners born on whatever cores placement picks; after a second
	// the machine must be近 evenly loaded: 2 per core.
	for i := 0; i < 64; i++ {
		m.StartThread("spin", "spin", 0, &looper{burst: time.Millisecond})
	}
	m.Run(3 * time.Second)
	counts := m.RunnableCounts()
	min, max := counts[0], counts[0]
	for _, n := range counts {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if min < 1 || max > 4 {
		t.Fatalf("unbalanced spinners: %v", counts)
	}
	_ = s
}

func TestNUMAThresholdLeavesResidualImbalance(t *testing.T) {
	// Mini Figure 6: pin spinners to core 0, unpin, let CFS balance. The
	// 25% NUMA threshold must leave cross-node differences while LLC
	// domains even out internally.
	m, _ := newMachine(DefaultParams(), topo.Default(), 1)
	var ths []*sim.Thread
	for i := 0; i < 128; i++ {
		th := m.StartThreadCfg(sim.ThreadConfig{
			Name: "spin", Group: "spin", Pinned: []int{0},
			Prog: &looper{burst: 10 * time.Millisecond},
		})
		ths = append(ths, th)
	}
	m.Run(2 * time.Second)
	for _, th := range ths {
		m.SetPinned(th, nil)
	}
	m.Run(m.Now() + 3*time.Second)
	counts := m.RunnableCounts()
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 128 {
		t.Fatalf("threads lost: %v", counts)
	}
	// Every core must have work (no idle cores with 4/core average).
	for i, n := range counts {
		if n == 0 {
			t.Fatalf("core %d idle after balancing: %v", i, counts)
		}
	}
}

func TestSelectIdleSiblingPrefersPrevCore(t *testing.T) {
	m, _ := newMachine(DefaultParams(), topo.Small(), 1)
	sl := &sleeper{run: time.Millisecond, sleep: 5 * time.Millisecond}
	th := m.StartThread("s", "app", 0, sl)
	m.Run(time.Second)
	// With an otherwise idle machine the thread should keep waking on the
	// same core (its previous, idle core).
	if th.LastCore == nil {
		t.Fatal("never ran")
	}
	migs := m.Trace.Count(trace.Migrate)
	if migs > 0 {
		t.Fatalf("idle-machine sleeper migrated %d times", migs)
	}
}

func TestVruntimeSpreadBounded(t *testing.T) {
	// §2.1: "CFS ensures that the vruntime difference between any two
	// threads is less than the preemption period". Allow slack for
	// tick-quantized charging.
	p := DefaultParams()
	m, s := newMachine(p, topo.SingleCore(), 1)
	for i := 0; i < 4; i++ {
		m.StartThread("w", "app", 0, &looper{burst: 500 * time.Microsecond})
	}
	for step := 0; step < 40; step++ {
		m.Run(m.Now() + 50*time.Millisecond)
		g := s.groups["app"]
		if g == nil {
			t.Fatal("group missing")
		}
		rq := g.rqs[0]
		lo, hi := int64(1<<62), int64(-1<<62)
		count := 0
		check := func(e *entity) {
			if e == nil {
				return
			}
			count++
			if e.vruntime < lo {
				lo = e.vruntime
			}
			if e.vruntime > hi {
				hi = e.vruntime
			}
		}
		check(rq.curr)
		for _, it := range rq.tree.Items() {
			check(it.(*entity))
		}
		if count < 2 {
			continue
		}
		if spread := hi - lo; spread > int64(3*p.Latency) {
			t.Fatalf("step %d: vruntime spread %v too large", step, time.Duration(spread))
		}
	}
}

func TestMostlySleepingCoreLoadIsLow(t *testing.T) {
	m, s := newMachine(DefaultParams(), topo.Small(), 1)
	// Pin a spinner to core 0 and 10 sleepers to core 1: core 0's load
	// must dominate — "a thread that never sleeps has a higher load than
	// one that sleeps a lot".
	m.StartThreadCfg(sim.ThreadConfig{Name: "spin", Group: "a", Pinned: []int{0}, Prog: &looper{burst: time.Millisecond}})
	for i := 0; i < 10; i++ {
		m.StartThreadCfg(sim.ThreadConfig{Name: "sl", Group: "b", Pinned: []int{1},
			Prog: &sleeper{run: 50 * time.Microsecond, sleep: 10 * time.Millisecond}})
	}
	m.Run(2 * time.Second)
	if s.CoreLoad(0) < 5*s.CoreLoad(1) {
		t.Fatalf("spinner core load %d not ≫ sleeper core load %d", s.CoreLoad(0), s.CoreLoad(1))
	}
}

func TestPeriodStretchesWithThreads(t *testing.T) {
	p := DefaultParams()
	if got := p.period(4); got != 48*time.Millisecond {
		t.Fatalf("period(4) = %v", got)
	}
	if got := p.period(8); got != 48*time.Millisecond {
		t.Fatalf("period(8) = %v", got)
	}
	if got := p.period(16); got != 96*time.Millisecond {
		t.Fatalf("period(16) = %v", got)
	}
}

func TestWeightTable(t *testing.T) {
	if weightOf(0) != 1024 {
		t.Fatal("nice 0 weight")
	}
	if weightOf(-20) != 88761 || weightOf(19) != 15 {
		t.Fatal("extremes")
	}
	if weightOf(-25) != weightOf(-20) || weightOf(25) != weightOf(19) {
		t.Fatal("clamping")
	}
	// Each step ≈ ×1.25.
	r := float64(weightOf(0)) / float64(weightOf(1))
	if r < 1.2 || r > 1.3 {
		t.Fatalf("step ratio = %v", r)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() time.Duration {
		m, _ := newMachine(DefaultParams(), topo.Default(), 42)
		for i := 0; i < 20; i++ {
			m.StartThread("w", "app", 0, &sleeper{run: time.Millisecond, sleep: 3 * time.Millisecond})
		}
		for i := 0; i < 10; i++ {
			m.StartThread("s", "spin", 0, &looper{burst: 2 * time.Millisecond})
		}
		m.Run(2 * time.Second)
		var sum time.Duration
		for _, th := range m.Threads() {
			sum += th.RunTime
		}
		return sum
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}
