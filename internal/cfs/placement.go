package cfs

import (
	"time"

	"repro/internal/sim"
	"repro/internal/topo"
)

// selectCore is select_task_rq_fair: wake_wide detection, affine
// select_idle_sibling within the waker's LLC for 1-to-1 patterns, and a
// find-idlest sweep over the whole machine for forks and 1-to-many
// patterns — "if CFS detects a 1-to-many producer-consumer pattern, then it
// spreads out the consumer threads as much as possible" (§2.1).
func (s *Sched) selectCore(t *sim.Thread, origin *sim.Core, flags int) *sim.Core {
	se := s.ent(t)

	if flags&sim.FlagFork != 0 {
		return s.findIdlest(t, origin)
	}

	// Wakeup: update the waker's flip counter.
	wide := false
	if origin != nil && origin.Curr != nil {
		waker := s.ent(origin.Curr)
		s.recordWakee(waker, se)
		wide = s.wakeWide(waker)
	}

	prev := t.LastCore
	if prev == nil {
		prev = origin
	}
	if prev == nil {
		prev = s.m.Cores[0]
	}

	if wide {
		return s.findIdlest(t, origin)
	}

	// Affine path: wake_affine chooses between the waker's core and the
	// previous core; prefer whichever side is less loaded, then run
	// select_idle_sibling in that LLC.
	target := prev
	if origin != nil && t.CanRunOn(origin.ID) &&
		s.cores[origin.ID].runnableLoad() < s.cores[prev.ID].runnableLoad() {
		target = origin
	}
	if !t.CanRunOn(target.ID) {
		return s.firstAllowed(t, origin)
	}
	return s.selectIdleSibling(t, target, origin)
}

// recordWakee maintains the wakee-flip counter (record_wakee): switching
// wakee targets frequently signals a 1-to-many pattern.
func (s *Sched) recordWakee(waker, wakee *entity) {
	now := s.m.Now()
	if now-waker.flipDecay > time.Second {
		waker.wakeeFlips >>= 1
		waker.flipDecay = now
	}
	if waker.lastWakee != wakee {
		waker.lastWakee = wakee
		waker.wakeeFlips++
	}
}

// wakeWide reports whether the waker fans out to enough distinct wakees to
// overflow an LLC (wake_wide).
func (s *Sched) wakeWide(waker *entity) bool {
	return waker.wakeeFlips > s.P.WakeWideFactor
}

// selectIdleSibling looks for an idle core in target's LLC, preferring
// target itself, then the previous core, then any idle sibling; falling
// back to target (select_idle_sibling).
func (s *Sched) selectIdleSibling(t *sim.Thread, target *sim.Core, origin *sim.Core) *sim.Core {
	if s.coreIdle(target.ID) {
		return target
	}
	group := s.m.Topo.Group(target.ID, topo.LevelLLC)
	scanned := 0
	var pick *sim.Core
	for _, id := range group {
		scanned++
		if !t.CanRunOn(id) {
			continue
		}
		if s.coreIdle(id) {
			pick = s.m.Cores[id]
			break
		}
	}
	s.chargeScan(origin, target, scanned)
	if pick != nil {
		return pick
	}
	return target
}

// findIdlest scans all allowed cores for the lowest PELT load
// (find_idlest_group/cpu collapsed to one sweep).
func (s *Sched) findIdlest(t *sim.Thread, origin *sim.Core) *sim.Core {
	var best *sim.Core
	var bestLoad int64
	scanned := 0
	for id := range s.cores {
		scanned++
		if !t.CanRunOn(id) {
			continue
		}
		if load := s.cores[id].runnableLoad(); best == nil || load < bestLoad {
			best = s.m.Cores[id]
			bestLoad = load
		}
	}
	s.chargeScan(origin, best, scanned)
	if best == nil {
		panic("cfs: no allowed core for " + t.Name)
	}
	return best
}

// firstAllowed is the affinity fallback.
func (s *Sched) firstAllowed(t *sim.Thread, origin *sim.Core) *sim.Core {
	for id := range s.cores {
		if t.CanRunOn(id) {
			return s.m.Cores[id]
		}
	}
	panic("cfs: thread pinned to no cores")
}

// coreIdle reports whether a core has no runnable threads.
func (s *Sched) coreIdle(id int) bool { return s.cores[id].hNr == 0 }

// chargeScan bills the placement scan to the waking core.
func (s *Sched) chargeScan(origin, fallback *sim.Core, cores int) {
	if s.m.Cost.PerCoreScanCost <= 0 || cores == 0 {
		return
	}
	payer := origin
	if payer == nil {
		payer = fallback
	}
	if payer == nil {
		return
	}
	s.m.ChargeScan(payer, time.Duration(cores)*s.m.Cost.PerCoreScanCost)
	s.m.Counters.Get("cfs.scan_cores").Inc(uint64(cores))
}
