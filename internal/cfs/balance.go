package cfs

import (
	"repro/internal/sim"
	"repro/internal/topo"
)

// balanceTick drives the periodic balancer from the scheduler tick: every
// BalanceInterval each core balances within its LLC, and on a stretched
// interval across NUMA nodes — "every 4ms every core tries to steal work
// from other cores ... cores try to steal work more frequently from cores
// that are close to them" (§2.1).
func (s *Sched) balanceTick(c *sim.Core, cs *coreState, idle bool) {
	interval := int(s.P.BalanceInterval / s.TickPeriod())
	if interval < 1 {
		interval = 1
	}
	// Stagger cores across the interval.
	if (cs.ticks+c.ID)%interval == 0 {
		if s.rebalanceLLC(c) {
			s.m.TraceBalance(c)
		}
	}
	numaInterval := interval * s.P.NUMABalanceMult
	if (cs.ticks+c.ID)%numaInterval == 0 {
		if s.rebalanceNUMA(c) {
			s.m.TraceBalance(c)
		}
	}
	if idle && c.Idle() && cs.hNr > 0 {
		// Work arrived during balancing; the engine dispatches on enqueue,
		// so nothing to do here.
		_ = idle
	}
}

// newidle is the immediate balance a core runs when it becomes idle
// ("cores also immediately call the periodic load balancer when they
// become idle").
func (s *Sched) newidle(c *sim.Core) bool {
	if s.rebalanceLLC(c) {
		return true
	}
	return s.rebalanceNUMA(c)
}

// rebalanceLLC pulls load from the busiest core in c's LLC domain.
func (s *Sched) rebalanceLLC(c *sim.Core) bool {
	cs := &s.cores[c.ID]
	group := s.m.Topo.Group(c.ID, topo.LevelLLC)
	busiest := s.busiestCore(group, c.ID)
	if busiest < 0 {
		return false
	}
	bs := &s.cores[busiest]
	if bs.runnableLoad()*100 <= cs.runnableLoad()*int64(s.P.LLCImbalancePct) {
		return false
	}
	// Sub-1.5-task differences are noise: moving a whole task would just
	// reverse the imbalance (fix_small_imbalance).
	if bs.runnableLoad()-cs.runnableLoad() <= nice0Weight*3/2 {
		return false
	}
	imbalance := (bs.runnableLoad() - cs.runnableLoad()) / 2
	n := s.pullFrom(busiest, c, imbalance)
	if n > 0 {
		s.m.Counters.Get("cfs.mig_llc").Inc(uint64(n))
	}
	return n > 0
}

// rebalanceNUMA compares node-average loads and pulls from the busiest
// node's busiest core when the 25% threshold is exceeded — the mechanism
// behind Figure 6's imperfect final balance.
func (s *Sched) rebalanceNUMA(c *sim.Core) bool {
	tp := s.m.Topo
	if tp.NNodes() < 2 {
		return false
	}
	myNode := tp.NodeOf(c.ID)
	localAvg := s.nodeAvgLoad(myNode)
	bestNode, bestAvg := -1, int64(0)
	for n := 0; n < tp.NNodes(); n++ {
		if n == myNode {
			continue
		}
		avg := s.nodeAvgLoad(n)
		if avg > bestAvg {
			bestNode, bestAvg = n, avg
		}
	}
	if bestNode < 0 {
		return false
	}
	// "If the load difference between the nodes is small (less than 25% in
	// practice), then no load balancing is performed."
	if bestAvg*100 <= localAvg*int64(s.P.NUMAImbalancePct) {
		return false
	}
	busiest := s.busiestCore(tp.NodeCores(bestNode), c.ID)
	if busiest < 0 {
		return false
	}
	bs := &s.cores[busiest]
	cs := &s.cores[c.ID]
	if bs.runnableLoad()-cs.runnableLoad() <= nice0Weight*3/2 {
		return false
	}
	imbalance := (bs.runnableLoad() - cs.runnableLoad()) / 2
	n := s.pullFrom(busiest, c, imbalance)
	if n > 0 {
		s.m.Counters.Get("cfs.mig_numa").Inc(uint64(n))
	}
	return n > 0
}

// busiestCore returns the id of the highest-loaded core in ids (excluding
// self), or -1 if none carries load.
func (s *Sched) busiestCore(ids []int, self int) int {
	best, bestLoad := -1, int64(0)
	for _, id := range ids {
		if id == self {
			continue
		}
		if l := s.cores[id].runnableLoad(); l > bestLoad {
			best, bestLoad = id, l
		}
	}
	return best
}

// nodeAvgLoad is the mean core load of a NUMA node — the paper's "load of
// the NUMA nodes (defined as the average load of their cores)".
func (s *Sched) nodeAvgLoad(node int) int64 {
	ids := s.m.Topo.NodeCores(node)
	var sum int64
	for _, id := range ids {
		sum += s.cores[id].runnableLoad()
	}
	return sum / int64(len(ids))
}

// pullFrom detaches up to MaxMigrate threads (or imbalance load) from the
// victim core onto c, skipping the running thread, pinned threads, and
// cache-hot threads (can_migrate_task).
func (s *Sched) pullFrom(victimID int, c *sim.Core, imbalance int64) int {
	if imbalance <= 0 {
		return 0
	}
	victim := s.m.Cores[victimID]
	vs := &s.cores[victimID]
	now := s.m.Now()

	// Collect candidates first: Migrate mutates the thread list.
	var cands []*sim.Thread
	var candLoad int64
	for _, t := range vs.threads {
		if t == victim.Curr {
			continue
		}
		if !t.CanRunOn(c.ID) {
			continue
		}
		// task_hot: recently-run threads are cache hot and skipped.
		if t.LastCore == victim && now-t.LastRanAt < s.P.MigrationCost && t.LastRanAt > 0 {
			continue
		}
		se := s.ent(t)
		// detach_tasks: moving a task whose half-load exceeds the remaining
		// imbalance would overshoot and ping-pong; skip it.
		if se.weight/2 >= imbalance-candLoad {
			continue
		}
		cands = append(cands, t)
		candLoad += se.weight
		if len(cands) >= s.P.MaxMigrate || candLoad >= imbalance {
			break
		}
	}
	moved := 0
	for _, t := range cands {
		// Re-validate: the first migration may have dispatched this core,
		// and the nested program activity can have started or slept a
		// later candidate in the meantime.
		if t.State() != sim.StateRunnable || t.Core() != victim || t == victim.Curr {
			continue
		}
		s.m.Migrate(t, victim, c)
		moved++
	}
	if moved > 0 {
		s.m.Counters.Get("cfs.balance_migrations").Inc(uint64(moved))
	}
	return moved
}
