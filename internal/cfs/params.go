// Package cfs implements the Linux Completely Fair Scheduler as the paper's
// §2.1 describes it (Linux 4.9 semantics): weighted fair queueing over
// vruntime on a red-black tree, cgroup fairness between applications,
// sleeper credit on wakeup, a 1 ms wakeup-preemption granularity, PELT load
// tracking, wake_wide/select_idle_sibling placement, and hierarchical load
// balancing every 4 ms with a 25% NUMA imbalance threshold.
package cfs

import "time"

// Params are the tunables; defaults mirror the constants the paper cites.
type Params struct {
	// Latency is the scheduling period for up to LatencyNrMax runnable
	// threads (the paper: "for a core executing fewer than 8 threads the
	// default time period is 48ms").
	Latency time.Duration
	// LatencyNrMax is the thread count beyond which the period stretches.
	LatencyNrMax int
	// MinGranularity is the per-thread floor of the period ("6ms ∗
	// number_of_threads").
	MinGranularity time.Duration
	// WakeupGranularity is the vruntime gap a waking thread needs to
	// preempt the running one ("less than 1ms, the current running thread
	// is not preempted").
	WakeupGranularity time.Duration
	// SleeperCredit caps how far below min_vruntime a waking sleeper is
	// placed (kernel GENTLE_FAIR_SLEEPERS: sysctl_sched_latency/2 = 3 ms);
	// together with the tick check it keeps the runnable vruntime spread
	// within the paper's 6 ms preemption period.
	SleeperCredit time.Duration
	// MigrationCost is the cache-hot window: a thread that ran within it
	// is skipped by the balancer (kernel sysctl_sched_migration_cost).
	MigrationCost time.Duration
	// BalanceInterval is the periodic load-balance interval per core ("every
	// 4ms every core tries to steal work from other cores").
	BalanceInterval time.Duration
	// NUMABalanceMult stretches the balance interval at the NUMA level
	// ("the greater the distance ... the higher the imbalance has to be",
	// and balancing across nodes happens less often).
	NUMABalanceMult int
	// LLCImbalancePct is the busiest/local load ratio (percent) required
	// to balance within an LLC domain (kernel imbalance_pct=117).
	LLCImbalancePct int
	// NUMAImbalancePct is the ratio across NUMA nodes ("less than 25% ...
	// no load balancing is performed" → 125).
	NUMAImbalancePct int
	// MaxMigrate caps threads moved per balance pass ("stealing as many as
	// 32 threads").
	MaxMigrate int
	// Cgroups enables per-application group fairness (post-2.6.38
	// behaviour; the ablation turns it off to recover per-thread
	// fairness).
	Cgroups bool
	// WakeWideFactor is the wakee-flip threshold (≈ LLC size) detecting
	// 1-to-many producer/consumer patterns.
	WakeWideFactor int
}

// DefaultParams returns the paper's CFS configuration.
func DefaultParams() Params {
	return Params{
		Latency:           48 * time.Millisecond,
		LatencyNrMax:      8,
		MinGranularity:    6 * time.Millisecond,
		WakeupGranularity: time.Millisecond,
		SleeperCredit:     3 * time.Millisecond,
		MigrationCost:     500 * time.Microsecond,
		BalanceInterval:   4 * time.Millisecond,
		NUMABalanceMult:   8,
		LLCImbalancePct:   117,
		NUMAImbalancePct:  125,
		MaxMigrate:        32,
		Cgroups:           true,
		WakeWideFactor:    8,
	}
}

// NiceToWeight is the kernel's sched_prio_to_weight table: nice 0 = 1024,
// each step ≈ ×1.25, indexed by nice+20.
var NiceToWeight = [40]int64{
	88761, 71755, 56483, 46273, 36291,
	29154, 23254, 18705, 14949, 11916,
	9548, 7620, 6100, 4904, 3906,
	3121, 2501, 1991, 1586, 1277,
	1024, 820, 655, 526, 423,
	335, 272, 215, 172, 137,
	110, 87, 70, 56, 45,
	36, 29, 23, 18, 15,
}

// nice0Weight is the unit weight (NICE_0_LOAD).
const nice0Weight = 1024

// weightOf maps a niceness to its load weight.
func weightOf(nice int) int64 {
	if nice < -20 {
		nice = -20
	}
	if nice > 19 {
		nice = 19
	}
	return NiceToWeight[nice+20]
}

// period returns the scheduling period for nr runnable threads.
func (p Params) period(nr int) time.Duration {
	if nr <= p.LatencyNrMax {
		return p.Latency
	}
	return time.Duration(nr) * p.MinGranularity
}
