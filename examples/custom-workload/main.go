// Custom-workload: author a workload directly against the simulator API —
// a state-machine Program, sim-level synchronization, and per-thread
// metrics — and see how the two schedulers classify and schedule it.
//
// The workload is a "ticker": a thread that sleeps 20ms, then does 1ms of
// work, forever (a heartbeat/telemetry thread), sharing a core with a
// compiler-like batch job.
package main

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/sim"
	"repro/internal/ule"
)

// ticker is a hand-written sim.Program: Next is called at every operation
// boundary and returns the thread's next action.
type ticker struct {
	beats   int
	working bool
}

func (tk *ticker) Next(ctx *sim.Ctx) sim.Op {
	if tk.working {
		tk.working = false
		tk.beats++
		return sim.Sleep(20 * time.Millisecond)
	}
	tk.working = true
	return sim.Run(time.Millisecond)
}

// churn is the batch job: 5ms bursts forever.
type churn struct{}

func (churn) Next(ctx *sim.Ctx) sim.Op { return sim.Run(5 * time.Millisecond) }

func main() {
	for _, kind := range []schedsim.SchedulerKind{schedsim.CFS, schedsim.ULE} {
		m := schedsim.New(schedsim.Config{Cores: 1, Scheduler: kind, Seed: 4})
		tk := &ticker{}
		tickThread := m.M.StartThread("ticker", "telemetry", 0, tk)
		m.M.StartThread("cc", "build", 0, churn{})
		m.RunFor(10 * time.Second)

		// A 21ms cycle yields ~476 beats in 10s if never delayed.
		fmt.Printf("--- %s ---\n", kind)
		fmt.Printf("  beats: %d/476 ideal; ticker CPU %v, slept %v\n",
			tk.beats, tickThread.RunTime.Round(time.Millisecond),
			tickThread.SleepTime.Round(time.Millisecond))
		if u, ok := m.M.Scheduler().(*ule.Sched); ok {
			fmt.Printf("  ULE classification: interactive=%v score=%d\n",
				u.Interactive(tickThread), u.Score(tickThread))
		}
	}
}
