// Loadbalance: the paper's Figure 6 in miniature — pin spinners to core 0,
// unpin them, and watch how each balancer spreads the pile: CFS floods
// threads outward within milliseconds but never reaches a perfectly even
// state (the 25% NUMA rule); ULE's idle steal takes one thread per core
// instantly, then core 0's periodic balancer drains one thread per 0.5-1.5s
// invocation until the counts are exactly even.
package main

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	const nThreads = 128
	for _, kind := range []schedsim.SchedulerKind{schedsim.CFS, schedsim.ULE} {
		m := schedsim.New(schedsim.Config{Cores: 32, Scheduler: kind, Seed: 3})
		var threads []*sim.Thread
		for i := 0; i < nThreads; i++ {
			threads = append(threads, m.M.StartThreadCfg(sim.ThreadConfig{
				Name: "spin", Group: "spin", Pinned: []int{0},
				Prog: &workload.Loop{Burst: 10 * time.Millisecond},
			}))
		}
		m.RunFor(2 * time.Second)
		for _, t := range threads {
			m.M.SetPinned(t, nil)
		}
		fmt.Printf("--- %s: %d spinners unpinned from core 0 ---\n", kind, nThreads)
		for _, wait := range []time.Duration{
			250 * time.Millisecond, 2 * time.Second, 10 * time.Second, 60 * time.Second,
		} {
			m.RunFor(wait)
			fmt.Printf("  +%-6v %v\n", (m.Now() - 2*time.Second).Round(time.Second), m.RunnableCounts())
		}
		fmt.Println()
	}
}
