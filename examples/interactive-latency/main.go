// Interactive-latency: how each scheduler treats a latency-sensitive
// server sharing one core with background compute — the paper's "we found
// the strategy used by the ULE scheduler to work well with
// latency-sensitive applications" (§5.1). The same effect requires the
// realtime scheduling class on Linux; ULE gives it to anything classified
// interactive.
package main

import (
	"fmt"
	"time"

	"repro"
)

func main() {
	fmt.Println("apache (ab + 100 httpd threads) sharing one core with a fibo CPU hog:")
	fmt.Printf("%-5s %12s %14s %14s\n", "sched", "req/s", "mean latency", "p99 latency")
	for _, kind := range []schedsim.SchedulerKind{schedsim.CFS, schedsim.ULE} {
		m := schedsim.New(schedsim.Config{Cores: 1, Scheduler: kind, Seed: 11})
		m.Start(schedsim.AppByName("fibo"))
		web := m.StartAt(schedsim.AppByName("apache"), schedsim.ShellWarmup+2*time.Second)
		m.RunFor(schedsim.ShellWarmup + 22*time.Second)
		fmt.Printf("%-5s %12.0f %14v %14v\n",
			kind, web.Perf(), web.Latency.Mean(), web.Latency.Quantile(0.99))
	}
	fmt.Println("\nULE's interactive classification gives the server absolute priority")
	fmt.Println("over the batch hog; CFS splits the core fairly between the two apps.")
}
