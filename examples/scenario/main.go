// Scenario engine: build a declarative scenario in code (the same Spec the
// JSON files describe), run its sweep on the worker pool, and read the
// structured report — tail latency per scheduler, no experiment driver
// written.
package main

import (
	"fmt"
	"os"

	"repro/internal/scenario"
)

func main() {
	// An interactive open-loop stream colocated with a batch farm on 8
	// cores, swept over both schedulers. scenario.Load("web-tail") would
	// fetch the bundled equivalent; building the Spec in code shows the
	// schema is just data.
	spec := &scenario.Spec{
		Name:        "example",
		Description: "open-loop web stream vs batch loops, built programmatically",
		Machine:     scenario.MachineSpec{Cores: []int{8}},
		Schedulers:  []scenario.SchedSpec{{Kind: "cfs"}, {Kind: "ule"}},
		Window:      scenario.Dur(2_000_000_000), // 2s, or scenario.Dur(2*time.Second)
		Workload: []scenario.Entry{
			{Name: "web", OpenLoop: &scenario.OpenLoopSpec{
				Workers: 16, Rate: 3000, Dist: "poisson",
				Service: scenario.Dur(200_000), // 200µs
			}},
			{Name: "batch", Count: 8, Loop: &scenario.LoopSpec{
				Burst: scenario.Dur(10_000_000), JitterPct: 10, // 10ms
			}},
		},
	}

	rep, err := spec.Run(1.0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("trial                      p50(us)   p99(us)   ops/s")
	for _, tr := range rep.Trials {
		// Latency and Throughput are omitted when the metric selection (or
		// an edited workload) records nothing for them — guard before
		// dereferencing so Spec experiments fail informatively.
		p50, p99, ops := 0.0, 0.0, 0.0
		if tr.Latency != nil {
			p50, p99 = tr.Latency.P50US, tr.Latency.P99US
		}
		if tr.Throughput != nil {
			ops = tr.Throughput.OpsPerSec
		}
		fmt.Printf("%-24s %9.0f %9.0f %9.0f\n", tr.Scheduler, p50, p99, ops)
	}
	fmt.Println("\nThe open-loop source keeps offering 3000 req/s regardless of how the")
	fmt.Println("scheduler treats the workers, so queueing delay — not a slowed-down")
	fmt.Println("client — shows up in the p99. Swap kinds, pin the batch loops, or add")
	fmt.Println("seeds to the sweep by editing the Spec; no driver code changes.")
}
