// Starvation: the paper's §5.1 headline — co-schedule a CPU hog (fibo)
// with a mostly-sleeping database (sysbench) on one core. CFS shares the
// core between the two applications; ULE classifies the database threads
// interactive and starves fibo for as long as the database runs.
package main

import (
	"fmt"
	"time"

	"repro"
)

func main() {
	for _, kind := range []schedsim.SchedulerKind{schedsim.CFS, schedsim.ULE} {
		m := schedsim.New(schedsim.Config{Cores: 1, Scheduler: kind, Seed: 1})
		fibo := m.Start(schedsim.AppByName("fibo"))
		db := m.StartAt(schedsim.AppByName("sysbench"), schedsim.ShellWarmup+5*time.Second)

		fmt.Printf("--- %s ---\n", kind)
		fmt.Println("  t(s)   fibo CPU(s)   db tx   db mean latency")
		var lastFibo time.Duration
		for i := 0; i < 6; i++ {
			m.RunFor(5 * time.Second)
			var fiboRun time.Duration
			if fibo.Master != nil {
				fiboRun = fibo.Master.RunTime
			}
			lat := time.Duration(0)
			if db.Latency != nil && db.Latency.Count() > 0 {
				lat = db.Latency.Mean()
			}
			marker := ""
			if i >= 1 && fiboRun-lastFibo < 100*time.Millisecond {
				marker = "   <- fibo starved"
			}
			fmt.Printf("  %4.0f   %11.2f   %5d   %15v%s\n",
				m.Now().Seconds(), fiboRun.Seconds(), db.Ops(), lat, marker)
			lastFibo = fiboRun
		}
		fmt.Println()
	}
	fmt.Println("Paper Table 2: sysbench 290 tx/s + fibo 50% share under CFS;")
	fmt.Println("532 tx/s + unbounded fibo starvation under ULE.")
}
