// Quickstart: run one application under both schedulers on the same
// simulated machine and compare throughput — the library's core loop.
package main

import (
	"fmt"
	"time"

	"repro"
)

func main() {
	fmt.Println("NAS MG (32 ranks, spin-then-sleep barriers) on the paper's 32-core box:")
	for _, kind := range []schedsim.SchedulerKind{schedsim.CFS, schedsim.ULE} {
		m := schedsim.New(schedsim.Config{
			Cores:       32,
			Scheduler:   kind,
			Seed:        7,
			KernelNoise: true, // the kworker noise behind CFS's placement mistakes
		})
		app := m.Start(schedsim.AppByName("MG"))
		m.RunFor(schedsim.ShellWarmup + 20*time.Second)
		fmt.Printf("  %-4s %6.2f barrier-phases/s  (runnable per core: %v)\n",
			kind, app.Perf(), m.RunnableCounts())
	}
	fmt.Println("\nThe paper's Figure 8 shows MG up to 73% faster on ULE: ULE places one")
	fmt.Println("rank per core and never migrates it; CFS reacts to kworker load noise")
	fmt.Println("and sometimes stacks two ranks on one core, stalling every barrier.")
}
